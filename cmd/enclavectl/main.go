// Command enclavectl is an interactive control shell for the simulated
// co-kernel node: create, boot, inspect, grow/shrink and destroy enclaves,
// toggle Covirt protection features, and inject faults — the management
// workflow a Pisces/Hobbes operator would drive with the real tools.
//
//	go run ./cmd/enclavectl
//
// Type "help" at the prompt for commands, or pipe a script:
//
//	printf 'create lwk 2 0 1024\nboot 1 mem\nstatus 1\nquit\n' | go run ./cmd/enclavectl
package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"covirt/internal/covirt"
	"covirt/internal/hw"
	"covirt/internal/kitten"
	"covirt/internal/linuxhost"
	"covirt/internal/pisces"
	"covirt/internal/testbed"
)

// shell holds the live simulation the commands operate on.
type shell struct {
	node    *testbed.Node
	machine *hw.Machine
	host    *linuxhost.Host
	ctrl    *covirt.Controller
	kernels map[int]*kitten.Kernel
}

func newShell() (*shell, error) {
	// A guest-less testbed: everything except core 0 of each socket plus
	// 24 GiB per node offlined for enclaves the operator creates later.
	probe := hw.DefaultSpec()
	var cores []int
	offMem := make(map[int]uint64)
	for node := 0; node < probe.NumNodes; node++ {
		for c := 1; c < probe.CoresPerNode; c++ {
			cores = append(cores, node*probe.CoresPerNode+c)
		}
		offMem[node] = 24 << 30
	}
	tb, err := testbed.Spec{
		OfflineCores: cores,
		OfflineMem:   offMem,
		Covirt:       true,
		Features:     covirt.FeaturesNone,
	}.Build()
	if err != nil {
		return nil, err
	}
	return &shell{node: tb, machine: tb.M, host: tb.Host, ctrl: tb.Ctrl, kernels: make(map[int]*kitten.Kernel)}, nil
}

// featureSet parses a feature spec like "mem", "mem+ipi", "all", "none".
func featureSet(s string) (covirt.Features, error) {
	switch s {
	case "", "none":
		return covirt.FeaturesNone, nil
	case "mem":
		return covirt.FeaturesMem, nil
	case "mem+ipi", "ipi":
		return covirt.FeaturesMemIPIPIV, nil
	case "mem+ipi-vapic", "ipi-vapic":
		return covirt.FeaturesMemIPIVAPIC, nil
	case "all":
		return covirt.FeaturesAll, nil
	}
	return covirt.Features{}, fmt.Errorf("unknown feature set %q (none|mem|mem+ipi|mem+ipi-vapic|all)", s)
}

const helpText = `commands:
  create <name> <cores> <node|0,1> <MB>   allocate an enclave
  boot <id> [none|mem|mem+ipi|all]        boot Kitten under covirt features
  list                                    list enclaves
  status <id>                             covirt status (exits, EPT, IPIs)
  ping <id>                               control-channel liveness check
  addmem <id> <node> <MB>                 hot-add memory
  addcpu <id> <node>                      hot-add a core
  rmcpu <id> <core>                       hot-remove a core
  run <id>                                run a demo computation task
  console <id>                            dump the enclave's console
  inject <id> wild|df|ipi                 inject a fault
  destroy <id>                            tear an enclave down
  help                                    this text
  quit                                    exit`

func (sh *shell) enclave(idStr string) (*pisces.Enclave, error) {
	id, err := strconv.Atoi(idStr)
	if err != nil {
		return nil, fmt.Errorf("bad enclave id %q", idStr)
	}
	enc := sh.host.Pisces.Enclave(id)
	if enc == nil {
		return nil, fmt.Errorf("no enclave %d", id)
	}
	return enc, nil
}

func (sh *shell) exec(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		fmt.Println(helpText)

	case "create":
		if len(args) < 4 {
			return fmt.Errorf("usage: create <name> <cores> <node|0,1> <MB>")
		}
		ncores, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		var nodes []int
		for _, ns := range strings.Split(args[2], ",") {
			n, err := strconv.Atoi(ns)
			if err != nil {
				return err
			}
			nodes = append(nodes, n)
		}
		mb, err := strconv.Atoi(args[3])
		if err != nil {
			return err
		}
		enc, err := sh.host.Pisces.CreateEnclave(pisces.EnclaveSpec{
			Name: args[0], NumCores: ncores, Nodes: nodes, MemBytes: uint64(mb) << 20,
		})
		if err != nil {
			return err
		}
		fmt.Printf("enclave %d created: cores %v, %s\n", enc.ID, enc.Cores, fmtExtents(enc.Mem()))

	case "boot":
		if len(args) < 1 {
			return fmt.Errorf("usage: boot <id> [features]")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		feat := covirt.FeaturesNone
		if len(args) > 1 {
			if feat, err = featureSet(args[1]); err != nil {
				return err
			}
		}
		be, err := sh.node.BootInto(enc, testbed.Guest{Name: enc.Name, Features: &feat})
		if err != nil {
			return err
		}
		sh.kernels[enc.ID] = be.Kitten
		fmt.Printf("enclave %d booted under covirt %q\n", enc.ID, feat)

	case "list":
		encs := sh.host.Pisces.Enclaves()
		sort.Slice(encs, func(i, j int) bool { return encs[i].ID < encs[j].ID })
		for _, e := range encs {
			fmt.Printf("%3d  %-12s %-8s cores=%v mem=%s covirt=%q\n",
				e.ID, e.Name, e.State(), e.Cores, fmtExtents(e.Mem()), sh.ctrl.FeaturesFor(e.ID))
		}
		if len(encs) == 0 {
			fmt.Println("(no enclaves)")
		}

	case "status":
		if len(args) < 1 {
			return fmt.Errorf("usage: status <id>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		stAny, err := sh.host.Pisces.Ioctl(covirt.IoctlStatus, enc.ID)
		if err != nil {
			return err
		}
		st := stAny.(*covirt.Status)
		fmt.Printf("features: %q\nEPT: %d bytes in %d mappings (4K=%d 2M=%d 1G=%d)\n",
			st.Features, st.EPT.Bytes, st.EPT.Pages(), st.EPT.Mapped4K, st.EPT.Mapped2M, st.EPT.Mapped1G)
		fmt.Printf("exits: %v (cycles %d)\ndropped IPIs: %d, map/unmap/flush: %d/%d/%d\n",
			st.Exits, st.ExitCycles, st.DroppedIPIs, st.MapOps, st.UnmapOps, st.FlushCmds)

	case "ping":
		if len(args) < 1 {
			return fmt.Errorf("usage: ping <id>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		if err := sh.host.Pisces.Ping(enc); err != nil {
			return err
		}
		fmt.Println("pong")

	case "addmem":
		if len(args) < 3 {
			return fmt.Errorf("usage: addmem <id> <node> <MB>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		node, _ := strconv.Atoi(args[1])
		mb, _ := strconv.Atoi(args[2])
		ext, err := sh.host.Pisces.AddMemory(enc, node, uint64(mb)<<20)
		if err != nil {
			return err
		}
		fmt.Printf("added %v\n", ext)

	case "addcpu":
		if len(args) < 2 {
			return fmt.Errorf("usage: addcpu <id> <node>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		node, _ := strconv.Atoi(args[1])
		core, err := sh.host.Pisces.AddCPU(enc, node)
		if err != nil {
			return err
		}
		fmt.Printf("added core %d\n", core)

	case "rmcpu":
		if len(args) < 2 {
			return fmt.Errorf("usage: rmcpu <id> <core>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		core, _ := strconv.Atoi(args[1])
		if err := sh.host.Pisces.RemoveCPU(enc, core); err != nil {
			return err
		}
		fmt.Printf("removed core %d\n", core)

	case "run":
		if len(args) < 1 {
			return fmt.Errorf("usage: run <id>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		k := sh.kernels[enc.ID]
		if k == nil {
			return fmt.Errorf("enclave %d not booted by this shell", enc.ID)
		}
		task, err := k.Spawn("demo", 0, func(e *kitten.Env) error {
			buf := e.Alloc(e.CPU.Node, 8<<20)
			defer e.Free(buf)
			e.Stream(buf.Start, buf.Size, true)
			e.Compute(1_000_000)
			return e.WriteConsole("demo task done\n")
		})
		if err != nil {
			return err
		}
		if err := task.Wait(); err != nil {
			return err
		}
		fmt.Println("task completed")

	case "console":
		if len(args) < 1 {
			return fmt.Errorf("usage: console <id>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		fmt.Print(sh.host.Console(enc.ID))

	case "inject":
		if len(args) < 2 {
			return fmt.Errorf("usage: inject <id> wild|df|ipi")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		k := sh.kernels[enc.ID]
		if k == nil {
			return fmt.Errorf("enclave %d not booted by this shell", enc.ID)
		}
		var fn func(e *kitten.Env) error
		switch args[1] {
		case "wild":
			fn = func(e *kitten.Env) error { return e.RawWrite64(0x40, 0xBAD) }
		case "df":
			fn = func(e *kitten.Env) error { return e.CPU.RaiseDoubleFault("injected") }
		case "ipi":
			fn = func(e *kitten.Env) error { return e.SendIPIRaw(0, 0x99) }
		default:
			return fmt.Errorf("unknown fault %q", args[1])
		}
		task, err := k.Spawn("inject", 0, fn)
		if err != nil {
			return err
		}
		werr := task.Wait()
		fmt.Printf("fault result: %v\nenclave: %v, node crashed: %v\n", werr, enc.State(), sh.machine.Crashed())

	case "destroy":
		if len(args) < 1 {
			return fmt.Errorf("usage: destroy <id>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		if err := sh.host.Pisces.Destroy(enc); err != nil {
			return err
		}
		delete(sh.kernels, enc.ID)
		fmt.Printf("enclave %d destroyed, resources reclaimed\n", enc.ID)

	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return nil
}

// fmtExtents renders a memory assignment compactly.
func fmtExtents(exts []hw.Extent) string {
	var parts []string
	for _, e := range exts {
		parts = append(parts, fmt.Sprintf("%dMB@n%d", e.Size>>20, e.Node))
	}
	return strings.Join(parts, "+")
}

func main() {
	sh, err := newShell()
	if err != nil {
		fmt.Fprintln(os.Stderr, "enclavectl:", err)
		os.Exit(1)
	}
	fmt.Println("enclavectl — simulated Pisces/Covirt node (type 'help')")
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("covirt> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "quit" || line == "exit" {
			return
		}
		if err := sh.exec(line); err != nil {
			fmt.Println("error:", err)
		}
	}
}
