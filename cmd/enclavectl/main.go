// Command enclavectl is an interactive control shell for the simulated
// co-kernel node: create, boot, inspect, grow/shrink and destroy enclaves,
// toggle Covirt protection features, inject faults, and put enclaves under
// watchdog supervision — the management workflow a Pisces/Hobbes operator
// would drive with the real tools.
//
//	go run ./cmd/enclavectl
//
// Type "help" at the prompt for commands, or pipe a script:
//
//	printf 'create lwk 2 0 1024\nboot 1 mem\nstatus 1\nquit\n' | go run ./cmd/enclavectl
//
// A supervised crash-and-recover session:
//
//	create lwk 1 0 512 hb
//	boot 1 all
//	supervise 1 3
//	inject 1 df
//	scan 3
//	status 2
//
// Fleet operations run against a separate simulated multi-node cluster
// (see internal/cluster): boot one with "fleet", then place gang apps
// and drain nodes through it:
//
//	fleet 8
//	place web 3 1 32
//	nodes
//	drain 2
package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"covirt/internal/cluster"
	"covirt/internal/covirt"
	"covirt/internal/hw"
	"covirt/internal/kitten"
	"covirt/internal/linuxhost"
	"covirt/internal/pisces"
	"covirt/internal/supervisor"
	"covirt/internal/testbed"
	"covirt/internal/trace"
)

// shell holds the live simulation the commands operate on.
type shell struct {
	node    *testbed.Node
	machine *hw.Machine
	host    *linuxhost.Host
	ctrl    *covirt.Controller
	kernels map[int]*kitten.Kernel
	encs    map[int]*testbed.Enclave
	specs   map[int]pisces.EnclaveSpec // create-time specs, the restart recipe

	// sup and buf come up lazily on the first "supervise"; the buffer
	// doubles as the node-wide flight recorder from that point on.
	sup *supervisor.Supervisor
	buf *trace.Buffer

	// fleet is a separate simulated multi-node cluster, booted on demand
	// by the "fleet" verb; nodes/place/drain operate on it.
	fleet *cluster.Cluster
}

func newShell() (*shell, error) {
	// A guest-less testbed: everything except core 0 of each socket plus
	// 24 GiB per node offlined for enclaves the operator creates later.
	probe := hw.DefaultSpec()
	var cores []int
	offMem := make(map[int]uint64)
	for node := 0; node < probe.NumNodes; node++ {
		for c := 1; c < probe.CoresPerNode; c++ {
			cores = append(cores, node*probe.CoresPerNode+c)
		}
		offMem[node] = 24 << 30
	}
	tb, err := testbed.Spec{
		OfflineCores: cores,
		OfflineMem:   offMem,
		Covirt:       true,
		Features:     covirt.FeaturesNone,
	}.Build()
	if err != nil {
		return nil, err
	}
	return &shell{
		node: tb, machine: tb.M, host: tb.Host, ctrl: tb.Ctrl,
		kernels: make(map[int]*kitten.Kernel),
		encs:    make(map[int]*testbed.Enclave),
		specs:   make(map[int]pisces.EnclaveSpec),
	}, nil
}

// featureSet parses a feature spec like "mem", "mem+ipi", "all", "none".
func featureSet(s string) (covirt.Features, error) {
	switch s {
	case "", "none":
		return covirt.FeaturesNone, nil
	case "mem":
		return covirt.FeaturesMem, nil
	case "mem+ipi", "ipi":
		return covirt.FeaturesMemIPIPIV, nil
	case "mem+ipi-vapic", "ipi-vapic":
		return covirt.FeaturesMemIPIVAPIC, nil
	case "all":
		return covirt.FeaturesAll, nil
	}
	return covirt.Features{}, fmt.Errorf("unknown feature set %q (none|mem|mem+ipi|mem+ipi-vapic|all)", s)
}

const helpText = `commands:
  create <name> <cores> <node|0,1> <MB> [hb]  allocate an enclave ("hb" adds a heartbeat page)
  boot <id> [none|mem|mem+ipi|all]        boot Kitten under covirt features
  list                                    list enclaves
  status <id>                             covirt status (exits, EPT, IPIs) + supervision
  qstats <id>                             command-queue/ingest stats (depth, epochs, QoS)
  ping <id>                               control-channel liveness check
  addmem <id> <node> <MB>                 hot-add memory
  addcpu <id> <node>                      hot-add a core
  rmcpu <id> <core>                       hot-remove a core
  run <id>                                run a demo computation task
  console <id>                            dump the enclave's console
  caps [id]                               list live capabilities (all holders, or one enclave)
  revoke <capid>                          revoke a capability (and everything delegated from it)
  inject <id> wild|df|ipi                 inject a fault
  supervise <id> [maxRestarts]            put the enclave under watchdog supervision
  scan [n]                                run n watchdog scans (default 1) and report
  destroy <id>                            tear an enclave down
  fleet <n> [seed]                        boot a simulated n-node fleet (cluster verbs below)
  nodes                                   fleet node table: state, version, free cores/mem
  place <app> <members> <cores> <MB>      gang-place an app across the fleet
  drain <node>                            migrate a fleet node's members away and cordon it
  undrain <node>                          re-admit a drained fleet node
  help                                    this text
  quit                                    exit`

func (sh *shell) enclave(idStr string) (*pisces.Enclave, error) {
	id, err := strconv.Atoi(idStr)
	if err != nil {
		return nil, fmt.Errorf("bad enclave id %q", idStr)
	}
	enc := sh.host.Pisces.Enclave(id)
	if enc == nil {
		return nil, fmt.Errorf("no enclave %d", id)
	}
	return enc, nil
}

func (sh *shell) exec(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		fmt.Println(helpText)

	case "create":
		if len(args) < 4 {
			return fmt.Errorf("usage: create <name> <cores> <node|0,1> <MB>")
		}
		ncores, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		var nodes []int
		for _, ns := range strings.Split(args[2], ",") {
			n, err := strconv.Atoi(ns)
			if err != nil {
				return err
			}
			nodes = append(nodes, n)
		}
		mb, err := strconv.Atoi(args[3])
		if err != nil {
			return err
		}
		heartbeat := len(args) > 4 && args[4] == "hb"
		spec := pisces.EnclaveSpec{
			Name: args[0], NumCores: ncores, Nodes: nodes, MemBytes: uint64(mb) << 20,
			Heartbeat: heartbeat,
		}
		enc, err := sh.host.Pisces.CreateEnclave(spec)
		if err != nil {
			return err
		}
		sh.specs[enc.ID] = spec
		extra := ""
		if heartbeat {
			extra = ", heartbeat page armed"
		}
		fmt.Printf("enclave %d created: cores %v, %s%s\n", enc.ID, enc.Cores, fmtExtents(enc.Mem()), extra)

	case "boot":
		if len(args) < 1 {
			return fmt.Errorf("usage: boot <id> [features]")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		feat := covirt.FeaturesNone
		if len(args) > 1 {
			if feat, err = featureSet(args[1]); err != nil {
				return err
			}
		}
		// The Guest declaration doubles as the restart recipe: ReplaceGuest
		// reboots from it verbatim, so carry the create-time spec over.
		spec := sh.specs[enc.ID]
		g := testbed.Guest{
			Name: enc.Name, Cores: spec.NumCores, Nodes: spec.Nodes,
			MemBytes: spec.MemBytes, Features: &feat, Heartbeat: spec.Heartbeat,
		}
		be, err := sh.node.BootInto(enc, g)
		if err != nil {
			return err
		}
		sh.kernels[enc.ID] = be.Kitten
		sh.encs[enc.ID] = be
		fmt.Printf("enclave %d booted under covirt %q\n", enc.ID, feat)

	case "list":
		encs := sh.host.Pisces.Enclaves()
		sort.Slice(encs, func(i, j int) bool { return encs[i].ID < encs[j].ID })
		for _, e := range encs {
			fmt.Printf("%3d  %-12s %-8s cores=%v mem=%s covirt=%q\n",
				e.ID, e.Name, e.State(), e.Cores, fmtExtents(e.Mem()), sh.ctrl.FeaturesFor(e.ID))
		}
		if len(encs) == 0 {
			fmt.Println("(no enclaves)")
		}

	case "status":
		if len(args) < 1 {
			return fmt.Errorf("usage: status <id>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		stAny, err := sh.host.Pisces.Ioctl(covirt.IoctlStatus, enc.ID)
		if err == nil {
			st := stAny.(*covirt.Status)
			fmt.Printf("features: %q\nEPT: %d bytes in %d mappings (4K=%d 2M=%d 1G=%d)\n",
				st.Features, st.EPT.Bytes, st.EPT.Pages(), st.EPT.Mapped4K, st.EPT.Mapped2M, st.EPT.Mapped1G)
			fmt.Printf("exits: %v (cycles %d)\ndropped IPIs: %d, map/unmap/flush: %d/%d/%d\n",
				st.Exits, st.ExitCycles, st.DroppedIPIs, st.MapOps, st.UnmapOps, st.FlushCmds)
		}
		// A quarantined or torn-down enclave has no covirt state left, but
		// its supervision record explains what happened to it.
		supervised := false
		if sh.sup != nil {
			for _, ss := range sh.sup.Statuses() {
				if ss.EnclaveID != enc.ID {
					continue
				}
				supervised = true
				fmt.Printf("supervision: %s, failures=%d restarts=%d lastBeat=%d",
					ss.State, ss.Failures, ss.Restarts, ss.LastBeat)
				if ss.LastReason != "" {
					fmt.Printf(", last failure: %s", ss.LastReason)
				}
				fmt.Println()
			}
		}
		if err != nil && !supervised {
			return err
		}

	case "qstats":
		if len(args) < 1 {
			return fmt.Errorf("usage: qstats <id>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		qsAny, err := sh.host.Pisces.Ioctl(covirt.IoctlQueueStats, enc.ID)
		if err != nil {
			return err
		}
		qs := qsAny.(*covirt.QueueStats)
		in := qs.Ingest
		fmt.Printf("ring: %d slots/core; events=%d epochs=%d (issued %d)\n",
			qs.Slots, in.Events, in.Epochs, qs.EpochIssued)
		fmt.Printf("flush cmds: %d issued, %d coalesced away; push stalls: %d cycles\n",
			in.FlushCmds, in.FlushCmdsSaved, in.StallCycles)
		fmt.Printf("admission: tokens=%d waits=%d (%d cycles)\n",
			qs.Tokens, in.AdmissionWaits, in.AdmissionWaitCycles)
		cores := make([]int, 0, len(qs.Depth))
		for c := range qs.Depth {
			cores = append(cores, c)
		}
		sort.Ints(cores)
		for _, c := range cores {
			fmt.Printf("  core %-3d depth=%-4d epoch applied=%d\n", c, qs.Depth[c], qs.EpochApplied[c])
		}

	case "ping":
		if len(args) < 1 {
			return fmt.Errorf("usage: ping <id>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		if err := sh.host.Pisces.Ping(enc); err != nil {
			return err
		}
		fmt.Println("pong")

	case "addmem":
		if len(args) < 3 {
			return fmt.Errorf("usage: addmem <id> <node> <MB>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		node, _ := strconv.Atoi(args[1])
		mb, _ := strconv.Atoi(args[2])
		ext, err := sh.host.Pisces.AddMemory(enc, node, uint64(mb)<<20)
		if err != nil {
			return err
		}
		fmt.Printf("added %v\n", ext)

	case "addcpu":
		if len(args) < 2 {
			return fmt.Errorf("usage: addcpu <id> <node>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		node, _ := strconv.Atoi(args[1])
		core, err := sh.host.Pisces.AddCPU(enc, node)
		if err != nil {
			return err
		}
		fmt.Printf("added core %d\n", core)

	case "rmcpu":
		if len(args) < 2 {
			return fmt.Errorf("usage: rmcpu <id> <core>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		core, _ := strconv.Atoi(args[1])
		if err := sh.host.Pisces.RemoveCPU(enc, core); err != nil {
			return err
		}
		fmt.Printf("removed core %d\n", core)

	case "run":
		if len(args) < 1 {
			return fmt.Errorf("usage: run <id>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		k := sh.kernels[enc.ID]
		if k == nil {
			return fmt.Errorf("enclave %d not booted by this shell", enc.ID)
		}
		task, err := k.Spawn("demo", 0, func(e *kitten.Env) error {
			buf := e.Alloc(e.CPU.Node, 8<<20)
			defer e.Free(buf)
			e.Stream(buf.Start, buf.Size, true)
			e.Compute(1_000_000)
			return e.WriteConsole("demo task done\n")
		})
		if err != nil {
			return err
		}
		if err := task.Wait(); err != nil {
			return err
		}
		fmt.Println("task completed")

	case "console":
		if len(args) < 1 {
			return fmt.Errorf("usage: console <id>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		fmt.Print(sh.host.Console(enc.ID))

	case "caps":
		auth := sh.host.Pisces.Auth
		holders := auth.Holders()
		if len(args) > 0 {
			id, err := strconv.Atoi(args[0])
			if err != nil {
				return fmt.Errorf("bad holder id %q", args[0])
			}
			holders = []int{id}
		}
		total := 0
		for _, h := range holders {
			infos := auth.CapsOf(h)
			total += len(infos)
			for _, in := range infos {
				parent := "-"
				if in.Parent != 0 {
					parent = strconv.FormatUint(in.Parent, 10)
				}
				fmt.Printf("%4d  holder=%-3d %-6s rights=%-7s parent=%-4s %-24s %s\n",
					in.Cap.ID, in.Cap.Holder, in.Cap.Kind, in.Cap.Rights,
					parent, in.Scope.String(in.Cap.Kind), in.Label)
			}
		}
		if total == 0 {
			fmt.Println("(no live capabilities)")
		}

	case "revoke":
		if len(args) < 1 {
			return fmt.Errorf("usage: revoke <capid>")
		}
		capID, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad capability id %q", args[0])
		}
		c, ok := sh.host.Pisces.Auth.Lookup(capID)
		if !ok {
			return fmt.Errorf("no live capability %d", capID)
		}
		before := len(sh.host.Pisces.Auth.CapsOf(c.Holder))
		if err := sh.host.Master.RevokeCap(c); err != nil {
			return err
		}
		after := len(sh.host.Pisces.Auth.CapsOf(c.Holder))
		fmt.Printf("capability %d revoked (%s held by %d; holder's live keys %d -> %d)\n",
			capID, c.Kind, c.Holder, before, after)

	case "inject":
		if len(args) < 2 {
			return fmt.Errorf("usage: inject <id> wild|df|ipi")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		k := sh.kernels[enc.ID]
		if k == nil {
			return fmt.Errorf("enclave %d not booted by this shell", enc.ID)
		}
		var fn func(e *kitten.Env) error
		switch args[1] {
		case "wild":
			fn = func(e *kitten.Env) error { return e.RawWrite64(0x40, 0xBAD) }
		case "df":
			fn = func(e *kitten.Env) error { return e.CPU.RaiseDoubleFault("injected") }
		case "ipi":
			fn = func(e *kitten.Env) error { return e.SendIPIRaw(0, 0x99) }
		default:
			return fmt.Errorf("unknown fault %q", args[1])
		}
		task, err := k.Spawn("inject", 0, fn)
		if err != nil {
			return err
		}
		werr := task.Wait()
		fmt.Printf("fault result: %v\nenclave: %v, node crashed: %v\n", werr, enc.State(), sh.machine.Crashed())

	case "supervise":
		if len(args) < 1 {
			return fmt.Errorf("usage: supervise <id> [maxRestarts]")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		be := sh.encs[enc.ID]
		if be == nil {
			return fmt.Errorf("enclave %d not booted by this shell", enc.ID)
		}
		maxRestarts := 3
		if len(args) > 1 {
			if maxRestarts, err = strconv.Atoi(args[1]); err != nil {
				return err
			}
		}
		if sh.sup == nil {
			sh.buf = sh.node.EnableTracing(4096)
			sh.sup = supervisor.New(sh.node, supervisor.Options{Seed: 1, Tracer: sh.buf})
		}
		pol := supervisor.Policy{MaxRestarts: maxRestarts, JitterPct: 10}
		if err := sh.sup.Watch(be, pol); err != nil {
			return err
		}
		hbNote := "crash supervision only (no heartbeat page)"
		if be.Guest.Heartbeat {
			hbNote = "crash + hang supervision (heartbeat armed)"
		}
		fmt.Printf("enclave %d supervised: restart budget %d, %s\n", enc.ID, maxRestarts, hbNote)

	case "scan":
		if sh.sup == nil {
			return fmt.Errorf("nothing supervised yet (try supervise <id>)")
		}
		n := 1
		if len(args) > 0 {
			var err error
			if n, err = strconv.Atoi(args[0]); err != nil {
				return err
			}
		}
		for i := 0; i < n; i++ {
			if err := sh.sup.Scan(); err != nil {
				return err
			}
		}
		// Restarted enclaves come back under fresh IDs: re-sync the
		// shell's per-ID maps from the node's authoritative list.
		sh.resync()
		for _, st := range sh.sup.Statuses() {
			fmt.Printf("%-12s id=%-3d %-15s failures=%d restarts=%d lastBeat=%d",
				st.Name, st.EnclaveID, st.State, st.Failures, st.Restarts, st.LastBeat)
			if st.LastReason != "" {
				fmt.Printf("  last: %s", st.LastReason)
			}
			fmt.Println()
		}
		if counts := sh.buf.KindCounts("sup:"); len(counts) > 0 {
			kinds := make([]string, 0, len(counts))
			for k := range counts {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			var parts []string
			for _, k := range kinds {
				parts = append(parts, fmt.Sprintf("%s=%d", strings.TrimPrefix(k, "sup:"), counts[k]))
			}
			fmt.Printf("supervision events: %s\n", strings.Join(parts, " "))
		}

	case "destroy":
		if len(args) < 1 {
			return fmt.Errorf("usage: destroy <id>")
		}
		enc, err := sh.enclave(args[0])
		if err != nil {
			return err
		}
		if err := sh.host.Pisces.Destroy(enc); err != nil {
			return err
		}
		delete(sh.kernels, enc.ID)
		delete(sh.encs, enc.ID)
		delete(sh.specs, enc.ID)
		fmt.Printf("enclave %d destroyed, resources reclaimed\n", enc.ID)

	case "fleet":
		if len(args) < 1 {
			return fmt.Errorf("usage: fleet <n> [seed]")
		}
		if sh.fleet != nil {
			return fmt.Errorf("fleet already booted (%d nodes)", len(sh.fleet.Nodes))
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		var seed uint64 = 1
		if len(args) > 1 {
			if seed, err = strconv.ParseUint(args[1], 10, 64); err != nil {
				return err
			}
		}
		fl, err := cluster.New(cluster.Options{Nodes: n, Seed: seed})
		if err != nil {
			return err
		}
		sh.fleet = fl
		fmt.Printf("fleet booted: %d nodes, %d registry shards, fabric seed %d\n",
			len(fl.Nodes), fl.Opt.Shards, seed)

	case "nodes":
		if sh.fleet == nil {
			return fmt.Errorf("no fleet booted yet (try fleet <n>)")
		}
		for _, st := range sh.fleet.Status() {
			encs := "-"
			if len(st.Enclaves) > 0 {
				encs = strings.Join(st.Enclaves, ",")
			}
			fmt.Printf("%4d  %-8s v%-2d cores=%d mem=%dMB  %s\n",
				st.ID, st.State, st.Version, st.FreeCores, st.FreeMem>>20, encs)
		}

	case "place":
		if len(args) < 4 {
			return fmt.Errorf("usage: place <app> <members> <cores> <MB>")
		}
		if sh.fleet == nil {
			return fmt.Errorf("no fleet booted yet (try fleet <n>)")
		}
		members, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		ncores, err := strconv.Atoi(args[2])
		if err != nil {
			return err
		}
		mb, err := strconv.Atoi(args[3])
		if err != nil {
			return err
		}
		app := cluster.App{Name: args[0]}
		for i := 0; i < members; i++ {
			app.Members = append(app.Members, cluster.Member{
				Name: fmt.Sprintf("m%d", i), Cores: ncores, MemBytes: uint64(mb) << 20,
			})
		}
		pl, err := sh.fleet.Place(app)
		if err != nil {
			return err
		}
		fmt.Printf("placed %s (placement %d, app key %d):\n", app.Name, pl.ID, pl.AppKey.ID)
		for _, m := range pl.Members {
			fmt.Printf("  %-20s node=%-3d enclave=%-3d key=%d\n",
				m.Member.Name, m.Node, m.Enc.Enc.ID, m.Key.ID)
		}

	case "drain":
		if len(args) < 1 {
			return fmt.Errorf("usage: drain <node>")
		}
		if sh.fleet == nil {
			return fmt.Errorf("no fleet booted yet (try fleet <n>)")
		}
		node, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		moved, err := sh.fleet.Drain(node)
		if err != nil {
			return err
		}
		fmt.Printf("node %d drained: %d member(s) migrated\n", node, moved)

	case "undrain":
		if len(args) < 1 {
			return fmt.Errorf("usage: undrain <node>")
		}
		if sh.fleet == nil {
			return fmt.Errorf("no fleet booted yet (try fleet <n>)")
		}
		node, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		sh.fleet.Undrain(node)
		fmt.Printf("node %d re-admitted\n", node)

	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return nil
}

// resync rebuilds the shell's per-enclave-ID maps from the node's
// authoritative enclave list. A supervised restart replaces a dead enclave
// with a fresh one under a new ID, so the old keys go stale after a scan.
// Create-time specs stay keyed by the original ID; restarts reboot from
// the Guest declaration, which already carries the spec.
func (sh *shell) resync() {
	sh.kernels = make(map[int]*kitten.Kernel)
	sh.encs = make(map[int]*testbed.Enclave)
	for _, be := range sh.node.Encs {
		sh.encs[be.Enc.ID] = be
		if be.Kitten != nil {
			sh.kernels[be.Enc.ID] = be.Kitten
		}
	}
}

// fmtExtents renders a memory assignment compactly.
func fmtExtents(exts []hw.Extent) string {
	var parts []string
	for _, e := range exts {
		parts = append(parts, fmt.Sprintf("%dMB@n%d", e.Size>>20, e.Node))
	}
	return strings.Join(parts, "+")
}

func main() {
	sh, err := newShell()
	if err != nil {
		fmt.Fprintln(os.Stderr, "enclavectl:", err)
		os.Exit(1)
	}
	fmt.Println("enclavectl — simulated Pisces/Covirt node (type 'help')")
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("covirt> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "quit" || line == "exit" {
			return
		}
		if err := sh.exec(line); err != nil {
			fmt.Println("error:", err)
		}
	}
}
