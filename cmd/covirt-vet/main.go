// Command covirt-vet runs the repository's domain-specific static-analysis
// suite (internal/analysis) over one or more package trees and reports
// invariant violations with file:line positions.
//
// Usage:
//
//	covirt-vet [-checks c1,c2] [-list] [-json] [-time] [dir | dir/... ...]
//
// With no arguments it analyzes the module containing the current
// directory. Each argument names a directory; the enclosing module is
// located via go.mod and analyzed in full, with findings filtered to the
// given subtree. Exit status: 0 when clean, 1 when findings were
// reported, 2 on usage or load errors — suitable as a CI gate.
//
// -json emits the findings as a JSON array on stdout (stable fields:
// check, file, line, col, msg, witness), for machine consumption and CI
// artifacts. -time prints per-analyzer wall-clock cost to stderr.
//
// Vetted exceptions are annotated at the offending line with:
//
//	//covirt:allow <check>[,<check>...] <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"covirt/internal/analysis"
)

func main() {
	os.Exit(run())
}

// jsonFinding is the stable machine-readable finding shape.
type jsonFinding struct {
	Check   string   `json:"check"`
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Col     int      `json:"col"`
	Msg     string   `json:"msg"`
	Witness []string `json:"witness,omitempty"`
}

func run() int {
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	listFlag := flag.Bool("list", false, "list available checks and exit")
	quietFlag := flag.Bool("q", false, "suppress the summary line")
	jsonFlag := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	timeFlag := flag.Bool("time", false, "report per-analyzer wall-clock cost on stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: covirt-vet [-checks c1,c2] [-list] [-json] [-time] [dir | dir/... ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var names []string
	if *checksFlag != "" {
		names = strings.Split(*checksFlag, ",")
	}

	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}

	total := 0
	out := []jsonFinding{} // non-nil: -json emits [] when clean
	seenModules := make(map[string]bool)
	for _, target := range targets {
		dir := strings.TrimSuffix(target, "...")
		dir = strings.TrimSuffix(dir, string(filepath.Separator))
		if dir == "" {
			dir = "."
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "covirt-vet: %v\n", err)
			return 2
		}
		// A typo'd target must not pass green: the module lookup would
		// still succeed from an ancestor and the subtree filter would
		// silently drop every finding.
		if info, serr := os.Stat(abs); serr != nil || !info.IsDir() {
			fmt.Fprintf(os.Stderr, "covirt-vet: %s is not a directory\n", target)
			return 2
		}
		mod, err := analysis.LoadModule(abs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "covirt-vet: %v\n", err)
			return 2
		}
		if seenModules[mod.Root] {
			continue // several targets inside one module: analyzed already
		}
		seenModules[mod.Root] = true
		findings, times, err := analysis.RunModuleChecksTimed(mod, names)
		if err != nil {
			fmt.Fprintf(os.Stderr, "covirt-vet: %v\n", err)
			return 2
		}
		if *timeFlag {
			for _, ct := range times {
				fmt.Fprintf(os.Stderr, "covirt-vet: timing %-18s %8.1fms\n",
					ct.Name, float64(ct.Elapsed.Microseconds())/1000)
			}
		}
		for _, f := range findings {
			// Filter to the requested subtree and print module-relative
			// paths so output is stable across checkouts.
			if !strings.HasPrefix(f.Pos.Filename, abs+string(filepath.Separator)) && f.Pos.Filename != abs {
				if abs != mod.Root {
					continue
				}
			}
			rel, rerr := filepath.Rel(mod.Root, f.Pos.Filename)
			if rerr == nil {
				f.Pos.Filename = filepath.ToSlash(rel)
			}
			if *jsonFlag {
				out = append(out, jsonFinding{
					Check: f.Check, File: f.Pos.Filename,
					Line: f.Pos.Line, Col: f.Pos.Column,
					Msg: f.Msg, Witness: f.Witness,
				})
			} else {
				fmt.Println(f.String())
			}
			total++
		}
		for _, terr := range mod.TypeErrors {
			fmt.Fprintf(os.Stderr, "covirt-vet: warning: %v\n", terr)
		}
	}
	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "covirt-vet: %v\n", err)
			return 2
		}
	}
	if !*quietFlag {
		fmt.Fprintf(os.Stderr, "covirt-vet: %d finding(s)\n", total)
	}
	if total > 0 {
		return 1
	}
	return 0
}
