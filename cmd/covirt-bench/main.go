// Command covirt-bench regenerates the paper's evaluation tables and
// figures on the simulated co-kernel stack.
//
// Usage:
//
//	covirt-bench [-experiment id] [-reps n] [-parallel n] [-full] [-list]
//
// With no -experiment flag every experiment runs in paper order; a failing
// experiment does not stop the rest — failures are summarized at the end
// and the exit status is non-zero. Use -list to see the available ids
// (table1, fig3, fig4, fig5a, fig5b, fig6, fig7, fig8).
//
// -parallel fans the experiment's job matrix out over n workers (default
// GOMAXPROCS). Every job's seed is derived from its matrix coordinates and
// results are aggregated in enumeration order, so output is byte-identical
// at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"covirt/internal/harness"
)

func main() {
	var (
		expID    = flag.String("experiment", "", "experiment id to run (default: all)")
		reps     = flag.Int("reps", 3, "repetitions per data point (paper used 10)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrently simulated nodes")
		full     = flag.Bool("full", false, "use the paper's full problem sizes (slow)")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := harness.Options{Reps: *reps, Full: *full, Parallel: *parallel}
	run := func(e *harness.Experiment) error {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(opt, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "covirt-bench: %s: %v\n", e.ID, err)
			return err
		}
		fmt.Printf("--- %s done in %v ---\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *expID != "" {
		e := harness.ByID(*expID)
		if e == nil {
			fmt.Fprintf(os.Stderr, "covirt-bench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		if run(e) != nil {
			os.Exit(1)
		}
		return
	}
	var failed []string
	for i := range harness.All {
		if run(&harness.All[i]) != nil {
			failed = append(failed, harness.All[i].ID)
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "covirt-bench: %d of %d experiments failed: %v\n",
			len(failed), len(harness.All), failed)
		os.Exit(1)
	}
}
