// Command covirt-bench regenerates the paper's evaluation tables and
// figures on the simulated co-kernel stack.
//
// Usage:
//
//	covirt-bench [-experiment id] [-reps n] [-full] [-list]
//
// With no -experiment flag every experiment runs in paper order. Use
// -list to see the available ids (table1, fig3, fig4, fig5a, fig5b, fig6,
// fig7, fig8).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"covirt/internal/harness"
)

func main() {
	var (
		expID = flag.String("experiment", "", "experiment id to run (default: all)")
		reps  = flag.Int("reps", 3, "repetitions per data point (paper used 10)")
		full  = flag.Bool("full", false, "use the paper's full problem sizes (slow)")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := harness.Options{Reps: *reps, Full: *full}
	run := func(e *harness.Experiment) {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(opt, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "covirt-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v ---\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *expID != "" {
		e := harness.ByID(*expID)
		if e == nil {
			fmt.Fprintf(os.Stderr, "covirt-bench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		run(e)
		return
	}
	for i := range harness.All {
		run(&harness.All[i])
	}
}
