// Command covirt-faults runs a fault-injection campaign: every co-kernel
// bug class the paper targets is injected into an enclave twice — bare and
// under Covirt — and the blast radius is reported.
//
//	go run ./cmd/covirt-faults
//
// With -recover the campaign continues past containment: faults are
// injected into supervised enclaves and the watchdog drives detection,
// backed-off restarts, and quarantine escalation, reporting detection
// latency and mean time to recovery per restart policy.
//
//	go run ./cmd/covirt-faults -recover
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"covirt/internal/covirt"
	"covirt/internal/harness"
	"covirt/internal/hw"
	"covirt/internal/kitten"
	"covirt/internal/pisces"
	"covirt/internal/testbed"
)

// outcome describes the blast radius of one injected fault.
type outcome struct {
	taskErr       error
	nodeCrashed   bool
	hostCorrupted bool
	spuriousIRQ   bool
	msrClobbered  bool
	enclaveDead   bool
	dropped       uint64 // filtered IPIs
}

// verdict renders the outcome as the campaign table cell.
func (o outcome) verdict() string {
	switch {
	case o.nodeCrashed:
		return "NODE CRASH"
	case o.hostCorrupted:
		return "HOST CORRUPTED"
	case o.dropped > 0:
		return "filtered"
	case o.enclaveDead:
		return "contained (enclave terminated)"
	case o.spuriousIRQ:
		return "SPURIOUS IRQ pending at host"
	case o.msrClobbered:
		return "MSR silently clobbered (latent)"
	case o.taskErr != nil:
		return "task failed"
	default:
		return "no effect observed"
	}
}

// resetDevice models the 0xCF9 reset-control port: a write resets the node.
type resetDevice struct{ m *hw.Machine }

func (d resetDevice) In(port uint16) uint32 { return 0 }
func (d resetDevice) Out(port uint16, val uint32) {
	d.m.Crash("system reset via port 0xCF9")
}

// injection is one bug class.
type injection struct {
	name string
	run  func(e *kitten.Env, victim hw.Extent, hostCore int) error
}

var injections = []injection{
	{"wild write to host memory", func(e *kitten.Env, victim hw.Extent, _ int) error {
		return e.RawWrite64(victim.Start+8192, 0xBAD)
	}},
	{"wild read of unbacked space", func(e *kitten.Env, _ hw.Extent, _ int) error {
		_, err := e.RawRead64(0x30)
		return err
	}},
	{"double fault (abort)", func(e *kitten.Env, _ hw.Extent, _ int) error {
		return e.CPU.RaiseDoubleFault("IST gone")
	}},
	{"errant IPI to host core", func(e *kitten.Env, _ hw.Extent, hostCore int) error {
		return e.SendIPIRaw(hostCore, 0x99)
	}},
	{"write to protected MSR", func(e *kitten.Env, _ hw.Extent, _ int) error {
		return e.CPU.WRMSR(hw.MSR_IA32_APIC_BASE, 0)
	}},
	{"write to reset I/O port", func(e *kitten.Env, _ hw.Extent, _ int) error {
		return e.CPU.IOOut(hw.PortReset, 0x6)
	}},
}

// inject builds a fresh node, injects one fault, and reports the outcome.
func inject(inj injection, protected bool) outcome {
	tb, err := testbed.Spec{
		OfflineCores: []int{1},
		OfflineMem:   map[int]uint64{0: 1 << 30},
		Covirt:       protected,
		Features:     covirt.FeaturesAll,
		Guests: []testbed.Guest{{
			Name: "faulty", Cores: 1, Nodes: []int{0}, MemBytes: 256 << 20,
		}},
	}.Build()
	if err != nil {
		panic(err)
	}
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	machine, host, ctrl := tb.M, tb.Host, tb.Ctrl
	enc, k := tb.Enc(), tb.Kitten()
	machine.Ports.Register(hw.PortReset, resetDevice{machine})
	victim, err := host.HostAlloc(0, 4<<20)
	must(err)
	must(host.PlantCanary(victim, 0xACE))

	task, err := k.Spawn("inject", 0, func(e *kitten.Env) error {
		return inj.run(e, victim, 0)
	})
	must(err)
	var o outcome
	o.taskErr = task.Wait()
	o.nodeCrashed = machine.Crashed()
	if addr, _ := host.CheckCanary(victim, 0xACE); addr != 0 {
		o.hostCorrupted = true
	}
	o.enclaveDead = enc.State() == pisces.StateCrashed
	if ctrl != nil {
		if st := ctrl.StatusFor(enc.ID); st != nil {
			o.dropped = st.DroppedIPIs
		}
	}
	// Did the errant IPI reach the host core (delivered or still pending)?
	if machine.CPU(0).IRQsTaken > 0 || machine.CPU(0).APIC.HasPending() {
		o.spuriousIRQ = true
	}
	// Did the MSR write land (the enclave CPU's APIC base relocated)?
	if k.CPU(0).MSRs.Read(hw.MSR_IA32_APIC_BASE) == 0 {
		o.msrClobbered = true
	}
	tb.Close()
	return o
}

func main() {
	recoverMode := flag.Bool("recover", false, "supervised-recovery campaign: inject faults under a watchdog and report detection latency and MTTR per restart policy")
	reps := flag.Int("reps", 3, "repetitions per cell in -recover mode")
	parallel := flag.Int("parallel", 0, "concurrent jobs in -recover mode (0 = GOMAXPROCS); output is byte-identical at any setting")
	flag.Parse()
	if *recoverMode {
		if err := harness.RunMTTR(harness.Options{Reps: *reps, Parallel: *parallel}, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "covirt-faults:", err)
			os.Exit(1)
		}
		return
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "fault injected\tunprotected\tcovirt (all features)")
	for _, inj := range injections {
		bare := inject(inj, false)
		prot := inject(inj, true)
		fmt.Fprintf(tw, "%s\t%s\t%s\n", inj.name, bare.verdict(), prot.verdict())
	}
	tw.Flush()
	fmt.Println("\nEvery fault class that takes down or corrupts the unprotected node")
	fmt.Println("is contained to the faulting enclave once Covirt is interposed.")
}
