// Package covirt_test holds the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation section. Each
// benchmark regenerates its artifact (printing the same rows/series the
// paper reports) and publishes headline numbers as benchmark metrics.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// or a single artifact with e.g. -bench=Fig5b. The -short flag (and the
// default benchtime of 1x iterations these benchmarks force via b.N
// handling) keeps runtimes in simulation-scaled sizes; use the covirt-bench
// command with -full for paper-sized problems.
package covirt_test

import (
	"io"
	"os"
	"testing"

	"covirt/internal/harness"
	"covirt/internal/workloads"
)

// benchOpts returns scaled-down options so `go test -bench` terminates
// quickly; covirt-bench -full runs the paper-sized problems. Parallel 0
// lets the harness engine fan each experiment's job matrix out over
// GOMAXPROCS workers — aggregation order (and thus output) is unaffected.
func benchOpts() harness.Options { return harness.Options{Reps: 1, Parallel: 0} }

// out returns the destination for the regenerated tables: stdout on
// -bench -v runs, discarded otherwise to keep benchmark output parseable.
func out(b *testing.B) io.Writer {
	if testing.Verbose() {
		return os.Stdout
	}
	return io.Discard
}

// runExperiment executes one harness experiment once per benchmark
// iteration.
func runExperiment(b *testing.B, id string) {
	e := harness.ByID(id)
	if e == nil {
		b.Fatalf("no experiment %q", id)
	}
	w := out(b)
	for i := 0; i < b.N; i++ {
		if err := e.Run(benchOpts(), w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Workloads regenerates Table I (benchmark inventory).
func BenchmarkTable1Workloads(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig3SelfishDetour regenerates Fig. 3 (noise profiles).
func BenchmarkFig3SelfishDetour(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4XememAttach regenerates Fig. 4 (attach delay vs size).
func BenchmarkFig4XememAttach(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5aStream regenerates Fig. 5a (STREAM).
func BenchmarkFig5aStream(b *testing.B) { runExperiment(b, "fig5a") }

// BenchmarkFig5bRandomAccess regenerates Fig. 5b (GUPS).
func BenchmarkFig5bRandomAccess(b *testing.B) { runExperiment(b, "fig5b") }

// BenchmarkFig6MiniFE regenerates Fig. 6 (MiniFE scaling).
func BenchmarkFig6MiniFE(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7HPCG regenerates Fig. 7 (HPCG scaling).
func BenchmarkFig7HPCG(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8LAMMPS regenerates Fig. 8 (LAMMPS loop times).
func BenchmarkFig8LAMMPS(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkIPCCosts regenerates the extension experiment quantifying the
// paper's zero-overhead-IPC claim (data path vs notification path costs).
func BenchmarkIPCCosts(b *testing.B) { runExperiment(b, "ipc") }

// BenchmarkGUPSOverhead reports the paper's headline micro-overhead (Fig.
// 5b worst case) as benchmark metrics: simulated GUPS under native and
// covirt-mem, plus the overhead percentage.
func BenchmarkGUPSOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := &workloads.RandomAccess{LogTableSize: 25, Updates: 1 << 17}
		nat, err := harness.RunWorkload(harness.CfgNative, harness.SingleCore, harness.NodeOptions{}, g, 1)
		if err != nil {
			b.Fatal(err)
		}
		cov, err := harness.RunWorkload(harness.CfgCovirtMem, harness.SingleCore, harness.NodeOptions{}, g, 1)
		if err != nil {
			b.Fatal(err)
		}
		natG := nat[0].Metric("GUPS")
		covG := cov[0].Metric("GUPS")
		b.ReportMetric(natG*1e3, "native-mGUPS")
		b.ReportMetric(covG*1e3, "covirt-mGUPS")
		b.ReportMetric(harness.OverheadPct(covG, natG), "overhead-%")
	}
}

// benchCtlSat runs one control-plane saturation leg and reports its
// simulated throughput and tail latency as benchmark metrics — the two
// numbers the batched-ingest acceptance bar compares across legs.
func benchCtlSat(b *testing.B, batch int) {
	for i := 0; i < b.N; i++ {
		r, err := harness.CtlSatLeg(batch, 256)
		if err != nil {
			b.Fatal(err)
		}
		eps := r.Metric("events") / (r.Metric("ctl_cycles") / workloads.CyclesPerSecond)
		b.ReportMetric(eps, "sim-events/sec")
		b.ReportMetric(r.Metric("p99_us"), "p99-apply-us")
		b.ReportMetric(r.Metric("flush_saved"), "flush-saved")
	}
}

// BenchmarkCtlSatPerEvent is the per-event control-plane baseline: every
// grant/revoke applies and shoots down individually.
func BenchmarkCtlSatPerEvent(b *testing.B) { benchCtlSat(b, 1) }

// BenchmarkCtlSatBatched drives the same event stream through batched
// submission with epoch-coalesced shootdowns (one merged flush per core
// per batch).
func BenchmarkCtlSatBatched(b *testing.B) { benchCtlSat(b, 32) }

// BenchmarkEPTAblationPageSizes quantifies the design choice DESIGN.md
// calls out: large-page coalescing in the EPT. It compares GUPS overhead
// with coalesced (2M/1G) mappings against an EPT restricted to 4K pages.
func BenchmarkEPTAblationPageSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := &workloads.RandomAccess{LogTableSize: 25, Updates: 1 << 17}
		run := func(cfg harness.Config) float64 {
			res, err := harness.RunWorkload(cfg, harness.SingleCore, harness.NodeOptions{}, g, 1)
			if err != nil {
				b.Fatal(err)
			}
			return res[0].Metric("GUPS")
		}
		base := run(harness.CfgNative)
		coalesced := run(harness.CfgCovirtMem)
		small := run(harness.CfgCovirtMem4K)
		b.ReportMetric(harness.OverheadPct(coalesced, base), "coalesced-overhead-%")
		b.ReportMetric(harness.OverheadPct(small, base), "4konly-overhead-%")
	}
}
