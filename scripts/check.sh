#!/bin/sh
# check.sh — the repository's CI gate. Run it locally before pushing:
#
#   ./scripts/check.sh
#
# It must pass with zero findings; vetted exceptions are annotated in the
# source with //covirt:allow (see DESIGN.md "Static analysis & invariants").
# Each stage reports its wall-clock seconds so CI regressions are visible
# per gate, not just in the job total.
set -eu
cd "$(dirname "$0")/.."

stage_start=0
begin() {
    echo "==> $1"
    stage_start=$(date +%s)
}
end() {
    echo "    ($(( $(date +%s) - stage_start ))s)"
}

begin "go build ./..."
go build ./...
end

# Interprocedural smoke first: a lock-order cycle or discipline break is
# the kind of bug the race tier might need minutes (or luck) to surface,
# so it fails the gate before any expensive stage runs.
begin "covirt-vet interprocedural smoke"
go run ./cmd/covirt-vet -checks lock-order,atomic-discipline,transitive-hot ./...
end

begin "go vet ./..."
go vet ./...
end

begin "covirt-vet ./... (-time: per-analyzer cost)"
go run ./cmd/covirt-vet -time ./...
end

# The zero-alloc gate deserves its own visible stage: a hotalloc finding
# means a //covirt:hot solver loop grew an allocation, which silently
# erodes the benchmarked speedups long before anything functionally fails.
begin "covirt-vet -checks hotalloc ./..."
go run ./cmd/covirt-vet -checks hotalloc ./...
end

# The capability gate: the module must sweep clean under cap-discipline
# (no resource-mutating mechanism reachable without a key-naming function
# or a written //covirt:ambient justification), and the analyzer must
# still have teeth — its fixture has to keep producing its known findings.
begin "covirt-vet -checks cap-discipline ./..."
go run ./cmd/covirt-vet -checks cap-discipline ./...
if go run ./cmd/covirt-vet -q -checks cap-discipline ./internal/analysis/testdata/capdiscipline/ 2>/dev/null; then
    echo "check.sh: cap-discipline fixture produced no findings" >&2
    exit 1
fi
end

begin "covirt-vet negative fixtures (must fail)"
for fixture in internal/analysis/testdata/*/; do
    if go run ./cmd/covirt-vet -q "./$fixture" 2>/dev/null; then
        echo "check.sh: fixture $fixture produced no findings" >&2
        exit 1
    fi
done
end

begin "go test -race ./..."
go test -race ./...
end

echo "check.sh: all gates passed"
