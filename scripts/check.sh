#!/bin/sh
# check.sh — the repository's CI gate. Run it locally before pushing:
#
#   ./scripts/check.sh                # full gate (static + smoke + race)
#   ./scripts/check.sh static        # build/vet/analyzers + -short smoke only
#   ./scripts/check.sh race <group>  # one race shard: harness | workloads | rest
#
# It must pass with zero findings; vetted exceptions are annotated in the
# source with //covirt:allow (see DESIGN.md "Static analysis & invariants").
# Each stage reports its wall-clock seconds so CI regressions are visible
# per gate, not just in the job total.
#
# The race tier is sharded into package groups so its long pole (the
# harness experiment matrix) no longer serializes behind everything else:
# locally the groups run as parallel jobs, and in CI they fan out as a
# matrix. The -short smoke tier always runs first for fast signal.
set -eu
cd "$(dirname "$0")/.."

stage_start=0
begin() {
    echo "==> $1"
    stage_start=$(date +%s)
}
end() {
    echo "    ($(( $(date +%s) - stage_start ))s)"
}

# race_group_pkgs maps a shard name to its package list. The harness
# matrix is the measured long pole and gets a shard to itself; workloads
# carries the solver suites (and the fleet, which exercises them); rest is
# everything else.
race_group_pkgs() {
    case "$1" in
    harness)   echo "covirt/internal/harness" ;;
    workloads) echo "covirt/internal/workloads covirt/internal/cluster" ;;
    rest)      go list ./... | grep -v -E 'internal/(harness|workloads|cluster)$' | tr '\n' ' ' ;;
    *)
        echo "check.sh: unknown race group '$1' (want harness|workloads|rest)" >&2
        exit 2
        ;;
    esac
}

mode="${1:-all}"

if [ "$mode" = race ]; then
    group="${2:?usage: check.sh race <harness|workloads|rest>}"
    begin "go test -race (group: $group)"
    # shellcheck disable=SC2046
    go test -race $(race_group_pkgs "$group")
    end
    echo "check.sh: race group $group passed"
    exit 0
fi

begin "go build ./..."
go build ./...
end

# Interprocedural smoke first: a lock-order cycle or discipline break is
# the kind of bug the race tier might need minutes (or luck) to surface,
# so it fails the gate before any expensive stage runs.
begin "covirt-vet interprocedural smoke"
go run ./cmd/covirt-vet -checks lock-order,atomic-discipline,transitive-hot ./...
end

begin "go vet ./..."
go vet ./...
end

begin "covirt-vet ./... (-time: per-analyzer cost)"
go run ./cmd/covirt-vet -time ./...
end

# The zero-alloc gate deserves its own visible stage: a hotalloc finding
# means a //covirt:hot solver loop grew an allocation, which silently
# erodes the benchmarked speedups long before anything functionally fails.
begin "covirt-vet -checks hotalloc ./..."
go run ./cmd/covirt-vet -checks hotalloc ./...
end

# The capability gate: the module must sweep clean under cap-discipline
# (no resource-mutating mechanism reachable without a key-naming function
# or a written //covirt:ambient justification), and the analyzer must
# still have teeth — its fixture has to keep producing its known findings.
begin "covirt-vet -checks cap-discipline ./..."
go run ./cmd/covirt-vet -checks cap-discipline ./...
if go run ./cmd/covirt-vet -q -checks cap-discipline ./internal/analysis/testdata/capdiscipline/ 2>/dev/null; then
    echo "check.sh: cap-discipline fixture produced no findings" >&2
    exit 1
fi
end

begin "covirt-vet negative fixtures (must fail)"
for fixture in internal/analysis/testdata/*/; do
    if go run ./cmd/covirt-vet -q "./$fixture" 2>/dev/null; then
        echo "check.sh: fixture $fixture produced no findings" >&2
        exit 1
    fi
done
end

begin "go test -short ./... (smoke tier)"
go test -short ./...
end

if [ "$mode" = static ]; then
    echo "check.sh: static gates passed"
    exit 0
fi

begin "go test -race (parallel shards: harness | workloads+cluster | rest)"
race_logs=$(mktemp -d)
race_fail=0
for group in harness workloads rest; do
    (
        # shellcheck disable=SC2046
        go test -race $(race_group_pkgs "$group")
    ) > "$race_logs/$group.log" 2>&1 &
    eval "race_pid_$group=$!"
done
for group in harness workloads rest; do
    eval "pid=\$race_pid_$group"
    if wait "$pid"; then
        echo "    race shard $group: ok"
    else
        echo "check.sh: race shard $group failed:" >&2
        cat "$race_logs/$group.log" >&2
        race_fail=1
    fi
done
rm -rf "$race_logs"
[ "$race_fail" -eq 0 ]
end

echo "check.sh: all gates passed"
