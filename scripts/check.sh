#!/bin/sh
# check.sh — the repository's CI gate. Run it locally before pushing:
#
#   ./scripts/check.sh
#
# It must pass with zero findings; vetted exceptions are annotated in the
# source with //covirt:allow (see DESIGN.md "Static analysis & invariants").
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> covirt-vet ./..."
go run ./cmd/covirt-vet ./...

echo "==> covirt-vet negative fixtures (must fail)"
for fixture in internal/analysis/testdata/*/; do
    if go run ./cmd/covirt-vet -q "./$fixture" 2>/dev/null; then
        echo "check.sh: fixture $fixture produced no findings" >&2
        exit 1
    fi
done

echo "==> go test -race ./..."
go test -race ./...

echo "check.sh: all gates passed"
