#!/bin/sh
# flake-repro.sh — stress repro for the known multi-rank cycle jitter
# flake (ROADMAP "Known flake"): under a saturated host with the whole
# -race suite running concurrently, multi-rank cells occasionally shift
# by a few hundred cycles between identical runs. Seen at the PR 6 seed
# in TestWorkloadCyclesStableAcrossRepeats, TestSpanRoutingEquivalence/
# hpcg, and (by one cycle) the fig5b leg of
# TestSpanRoutingOutputEquivalence. All three pass reliably on an idle
# host or package-serially, which is exactly what makes the flake hard
# to catch in CI — this script recreates the scheduler pressure on
# purpose and loops the suspects until one trips or the iteration
# budget runs out.
#
#   ./scripts/flake-repro.sh [iterations] [load-procs]
#
# iterations  loops of the suspect battery (default 20)
# load-procs  background antagonist processes generating scheduler
#             pressure (default: number of CPUs)
#
# Exit status: 1 as soon as any iteration fails (the repro), 0 if the
# budget runs out without a failure. A clean exit is NOT proof the
# flake is fixed — raise the iteration count and run on a loaded host
# before claiming that. The antagonists are plain spinning go test
# compile/run loops rather than synthetic spinners so the pressure
# profile (GC, goroutine churn, mmap traffic) matches the real CI job
# that surfaced the jitter.
set -eu
cd "$(dirname "$0")/.."

iters="${1:-20}"
nproc_guess=$( (nproc || sysctl -n hw.ncpu || echo 4) 2>/dev/null | head -n1 )
load="${2:-$nproc_guess}"

# Build the test binaries once so every iteration measures the same
# artifact and the loop isn't dominated by recompiles.
echo "==> building race-instrumented suspect binaries"
mkdir -p /tmp/covirt-flake
go test -race -c -o /tmp/covirt-flake/workloads.test ./internal/workloads
go test -race -c -o /tmp/covirt-flake/harness.test ./internal/harness

# Antagonists: saturate the scheduler with GC-heavy churn for the whole
# run. Killed on exit no matter how we leave.
pids=""
cleanup() {
    for p in $pids; do
        kill "$p" 2>/dev/null || true
    done
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM
echo "==> starting $load antagonist processes"
i=0
while [ "$i" -lt "$load" ]; do
    (
        while :; do
            /tmp/covirt-flake/workloads.test -test.run TestRankOrder -test.count 4 >/dev/null 2>&1 || :
        done
    ) &
    pids="$pids $!"
    i=$((i + 1))
done

fail=0
n=1
while [ "$n" -le "$iters" ]; do
    echo "==> iteration $n/$iters"
    if ! /tmp/covirt-flake/workloads.test \
        -test.run 'TestWorkloadCyclesStableAcrossRepeats|TestSpanRoutingEquivalence' \
        -test.count 2; then
        fail=1
    fi
    if ! /tmp/covirt-flake/harness.test \
        -test.run 'TestSpanRoutingOutputEquivalence' \
        -test.count 1; then
        fail=1
    fi
    if [ "$fail" -ne 0 ]; then
        echo "flake-repro.sh: REPRODUCED on iteration $n" >&2
        exit 1
    fi
    n=$((n + 1))
done
echo "flake-repro.sh: no failure in $iters iterations (not proof of a fix)"
