#!/bin/sh
# bench.sh — run the repository's benchmark suite and snapshot the results
# as a committed JSON artifact (BENCH_5.json by default):
#
#   ./scripts/bench.sh [output.json]
#
# Two tiers run back to back: the hot-path microbenchmarks (TLB lookup,
# EPT walks, PhysMem accessors, STREAM triad) and the paper-figure
# benchmarks in the root package (fig5a/fig5b/fig7/GUPS, one full
# experiment pass each). The figure benchmarks dominate wall clock, so a
# full run takes a couple of minutes on an idle machine; benchmark on an
# otherwise-quiet host or the numbers are meaningless.
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_5.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "==> microbenchmarks (internal/hw, internal/vmx, internal/workloads)"
go test -run '^$' -bench 'EPTWalk|PhysMemReadWrite|TLBLookup|StreamTriad' \
    ./internal/hw ./internal/vmx ./internal/workloads | tee -a "$tmp"

echo "==> figure benchmarks (root package, one pass each)"
go test -run '^$' -bench . -benchtime 1x . | tee -a "$tmp"

# Fold the `go test -bench` text into a JSON array: one object per
# benchmark line carrying the package, iteration count, and every
# value/unit metric pair (ns/op plus any ReportMetric extras).
awk '
BEGIN { print "["; first = 1 }
/^pkg:/ { pkg = $2 }
/^Benchmark/ {
    if (!first) printf ",\n"
    first = 0
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    printf "  {\"name\": \"%s\", \"pkg\": \"%s\", \"iters\": %s", name, pkg, $2
    for (i = 3; i < NF; i += 2) printf ", \"%s\": %s", $(i+1), $i
    printf "}"
}
END { print "\n]" }
' "$tmp" > "$out"

echo "bench.sh: wrote $out"
