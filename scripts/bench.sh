#!/bin/sh
# bench.sh — run the repository's benchmark suite and snapshot the results
# as a committed JSON artifact (BENCH_10.json by default):
#
#   ./scripts/bench.sh [output.json]
#   ./scripts/bench.sh --compare OLD.json [NEW.json]
#
# Three tiers run back to back: the hot-path microbenchmarks (TLB lookup,
# EPT walks, PhysMem accessors, STREAM triad), the control-plane tier
# (both ctl-saturation legs: per-event baseline and batched ingest with
# epoch-coalesced shootdowns), and the paper-figure benchmarks in the root
# package (fig5a/fig5b/fig7/GUPS, one full experiment pass each). All run
# under -benchmem, so the snapshots carry B/op and allocs/op alongside
# ns/op — the allocation columns are the regression teeth on the
# zero-alloc workload discipline. The figure benchmarks dominate wall
# clock, so a full run takes a couple of minutes on an idle machine;
# benchmark on an otherwise-quiet host or the numbers are meaningless.
#
# --compare prints per-benchmark deltas between two snapshots (e.g.
# BENCH_7.json vs BENCH_10.json) without running anything.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--compare" ]; then
    old="${2:?usage: bench.sh --compare OLD.json [NEW.json]}"
    new="${3:-BENCH_10.json}"
    awk '
    function field(line, key,   s) {
        s = line
        if (match(s, "\"" key "\": [0-9.e+-]+")) {
            s = substr(s, RSTART, RLENGTH)
            sub(/.*: /, "", s)
            return s
        }
        return ""
    }
    /"name":/ {
        name = $0
        sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        if (FILENAME == ARGV[1]) {
            oldns[name] = field($0, "ns/op")
            oldal[name] = field($0, "allocs/op")
        } else if (!(name in newns)) {
            newns[name] = field($0, "ns/op")
            newal[name] = field($0, "allocs/op")
            order[n++] = name
        }
    }
    END {
        printf "%-34s %15s %15s %9s %16s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op"
        for (i = 0; i < n; i++) {
            name = order[i]
            al = newal[name]; if (al == "") al = "-"
            if (oldal[name] != "" && oldal[name] != newal[name]) al = oldal[name] " -> " al
            if (oldns[name] == "") {
                printf "%-34s %15s %15s %9s %16s\n", name, "-", newns[name], "new", al
                continue
            }
            d = (newns[name] - oldns[name]) / oldns[name] * 100
            printf "%-34s %15s %15s %+8.1f%% %16s\n", name, oldns[name], newns[name], d, al
        }
    }
    ' "$old" "$new"
    exit 0
fi

out="${1:-BENCH_10.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "==> microbenchmarks (internal/hw, internal/vmx, internal/workloads)"
go test -run '^$' -bench 'EPTWalk|PhysMemReadWrite|TLBLookup|StreamTriad|FillGatherAddrs' -benchmem \
    ./internal/hw ./internal/vmx ./internal/workloads | tee -a "$tmp"

echo "==> control-plane tier (ctl-saturation legs: per-event vs batched)"
go test -run '^$' -bench 'CtlSat' -benchtime 1x -benchmem . | tee -a "$tmp"

echo "==> figure benchmarks (root package, one pass each)"
go test -run '^$' -bench 'Table1|Fig|IPC|GUPS|EPTAblation' -benchtime 1x -benchmem . | tee -a "$tmp"

# Fold the `go test -bench` text into a JSON array: one object per
# benchmark line carrying the package, iteration count, and every
# value/unit metric pair (ns/op and the -benchmem B/op and allocs/op
# columns, plus any ReportMetric extras).
awk '
BEGIN { print "["; first = 1 }
/^pkg:/ { pkg = $2 }
/^Benchmark/ {
    if (!first) printf ",\n"
    first = 0
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    printf "  {\"name\": \"%s\", \"pkg\": \"%s\", \"iters\": %s", name, pkg, $2
    for (i = 3; i < NF; i += 2) printf ", \"%s\": %s", $(i+1), $i
    printf "}"
}
END { print "\n]" }
' "$tmp" > "$out"

echo "bench.sh: wrote $out"
