// Composition: a Hobbes-style composite application spanning two enclaves.
// A simulation kernel in one enclave produces timesteps into an XEMEM
// shared segment; an analytics component in a second enclave consumes them.
// Cross-enclave notification uses a Hobbes-granted IPI vector, and the
// whole thing runs under Covirt's full protection feature set — including
// the IPI whitelist that the granted vector passes through.
//
//	go run ./examples/composition
package main

import (
	"fmt"
	"log"

	"covirt/internal/covirt"
	"covirt/internal/kitten"
	"covirt/internal/testbed"
)

const (
	segName     = "sim.output"
	notifyVec   = 0x77
	timesteps   = 8
	valuesPerTS = 512
)

func main() {
	// One core + 1 GiB on each NUMA node for the two components, both
	// enclaves under Covirt's full protection feature set.
	tb, err := testbed.Spec{
		OfflineCores: []int{1, 7},
		OfflineMem:   map[int]uint64{0: 1 << 30, 1: 1 << 30},
		Covirt:       true,
		Features:     covirt.FeaturesAll,
		Guests: []testbed.Guest{
			{Name: "sim", Cores: 1, Nodes: []int{0}, MemBytes: 512 << 20},
			{Name: "analytics", Cores: 1, Nodes: []int{1}, MemBytes: 512 << 20},
		},
	}.Build()
	if err != nil {
		log.Fatal(err)
	}
	host, ctrl := tb.Host, tb.Ctrl
	simEnc, simK := tb.Encs[0].Enc, tb.Encs[0].Kitten
	anaEnc, anaK := tb.Encs[1].Enc, tb.Encs[1].Kitten
	fmt.Printf("booted %s (core %v) and %s (core %v), features %q\n",
		simEnc.Name, simEnc.Cores, anaEnc.Name, anaEnc.Cores, ctrl.FeaturesFor(simEnc.ID))

	// Hobbes grants the simulation the right to signal the analytics core.
	if err := host.Master.GrantIPI(simEnc, anaEnc.Cores[0], notifyVec); err != nil {
		log.Fatal(err)
	}

	// The segment layout: slot 0 is the producer's progress counter, data
	// follows. The IPI is only a wakeup hint — IPIs of the same vector
	// coalesce in the IRR, exactly as on real hardware, so progress state
	// must live in the shared memory itself.
	const hdrSlots = 1

	// Analytics waits for the doorbell, then drains every timestep the
	// counter says is ready.
	anaK.OnIPI(notifyVec, func(e *kitten.Env) {}) // wakeup only
	anaTask, _ := anaK.Spawn("analyze", 0, func(e *kitten.Env) error {
		// The producer may not have exported the segment yet: poll the
		// name service until it appears.
		var segid uint64
		var err error
		for {
			segid, err = e.XemGet(segName)
			if err == nil {
				break
			}
			e.Compute(20_000)
		}
		exts, err := e.XemAttach(segid)
		if err != nil {
			return err
		}
		base := exts[0].Start
		data := base + hdrSlots*8
		var sums []uint64
		for ts := 0; ts < timesteps; {
			for e.Read64(base) <= uint64(ts) {
				if err := e.CPU.Idle(nil); err != nil {
					return err
				}
			}
			var sum uint64
			for i := 0; i < valuesPerTS; i++ {
				sum += e.Read64(data + uint64(ts*valuesPerTS+i)*8)
			}
			sums = append(sums, sum)
			ts++
		}
		fmt.Printf("analytics reduced %d timesteps: first=%d last=%d\n",
			len(sums), sums[0], sums[len(sums)-1])
		return e.XemDetach(segid)
	})

	// Simulation produces timesteps, publishes progress, rings the bell.
	simTask, _ := simK.Spawn("simulate", 0, func(e *kitten.Env) error {
		seg := e.Alloc(0, uint64((hdrSlots+timesteps*valuesPerTS)*8))
		if _, err := e.XemMake(segName, seg); err != nil {
			return err
		}
		data := seg.Start + hdrSlots*8
		for ts := 0; ts < timesteps; ts++ {
			for i := 0; i < valuesPerTS; i++ {
				e.Write64(data+uint64(ts*valuesPerTS+i)*8, uint64(ts*i))
			}
			e.Compute(50_000) // the "physics"
			e.Write64(seg.Start, uint64(ts+1))
			if err := e.SendIPIRaw(anaEnc.Cores[0], notifyVec); err != nil {
				return err
			}
		}
		return nil
	})

	if err := simTask.Wait(); err != nil {
		log.Fatalf("sim: %v", err)
	}
	if err := anaTask.Wait(); err != nil {
		log.Fatalf("analytics: %v", err)
	}

	// The analytics enclave's EPT saw the segment come and go.
	st := ctrl.StatusFor(anaEnc.ID)
	fmt.Printf("analytics covirt status: mapOps=%d unmapOps=%d flushCmds=%d dropped IPIs=%d\n",
		st.MapOps, st.UnmapOps, st.FlushCmds, st.DroppedIPIs)

	// An ungranted IPI from the simulation to a host core is filtered.
	errant, _ := simK.Spawn("errant", 0, func(e *kitten.Env) error {
		return e.SendIPIRaw(0, notifyVec) // host core: not whitelisted
	})
	if err := errant.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("errant IPI to host core dropped by whitelist: dropped=%d\n",
		ctrl.StatusFor(simEnc.ID).DroppedIPIs)

	tb.Close()
	fmt.Println("composition complete; both enclaves shut down cleanly")
}
