// Faultisolation reproduces the paper's §V war story: a bug in an XEMEM
// cleanup path leaves a stale shared-memory mapping in a co-kernel for a
// short window after the host has reclaimed the memory. At scale this
// caused "extremely rare system crashes that could not be reproduced in
// local development environments".
//
// The scenario is run three times:
//
//  1. unprotected, stale memory reused by the host  -> silent corruption
//
//  2. unprotected, stale memory already unbacked    -> the node crashes
//
//  3. under Covirt memory protection                -> the enclave is
//     terminated, the node and the host's data survive, and the fault is
//     logged with the exact address — the debugging gift the paper
//     describes.
//
//     go run ./examples/faultisolation
package main

import (
	"fmt"
	"log"

	"covirt/internal/covirt"
	"covirt/internal/hw"
	"covirt/internal/kitten"
	"covirt/internal/linuxhost"
	"covirt/internal/pisces"
	"covirt/internal/testbed"
)

// buildNode boots a host with one enclave, optionally protected by Covirt.
func buildNode(protected bool) *testbed.Node {
	tb, err := testbed.Spec{
		OfflineCores: []int{1},
		OfflineMem:   map[int]uint64{0: 1 << 30},
		Covirt:       protected,
		Features:     covirt.FeaturesMem,
		Guests: []testbed.Guest{{
			Name: "victim-of-its-own-bug", Cores: 1, Nodes: []int{0}, MemBytes: 512 << 20,
		}},
	}.Build()
	if err != nil {
		log.Fatal(err)
	}
	return tb
}

// staleSegmentBug exports a host segment, attaches it in the enclave, then
// runs the buggy cleanup: the detach protocol completes with the host (so
// the host reclaims the memory) but the co-kernel "forgets" to drop its own
// mapping. The co-kernel then touches the segment through the stale map.
func staleSegmentBug(host *linuxhost.Host, k *kitten.Kernel, seg hw.Extent, name string) error {
	task, err := k.Spawn("buggy-cleanup", 0, func(e *kitten.Env) error {
		segid, err := e.XemGet(name)
		if err != nil {
			return err
		}
		if _, err := e.XemAttach(segid); err != nil {
			return err
		}
		// --- the bug: detach protocol completes, local mapping remains ---
		if _, _, err := e.Syscall(pisces.SysXemDetach, segid); err != nil {
			return err
		}
		if _, _, err := e.Syscall(pisces.SysXemDetachDone, segid); err != nil {
			return err
		}
		// Later, unrelated co-kernel code writes through the "still
		// mapped" page — its own memory map says the access is fine.
		e.Write64(seg.Start+8192, 0x4141414141414141)
		return nil
	})
	if err != nil {
		return err
	}
	return task.Wait()
}

func main() {
	// ---- Run 1: unprotected; the host reuses the reclaimed memory. ----
	fmt.Println("== run 1: no protection, host has reused the memory ==")
	tb := buildNode(false)
	host, k := tb.Host, tb.Kitten()
	seg, _ := host.HostAlloc(0, 4<<20)
	_ = host.PlantCanary(seg, 0xFEED) // the host's new data lives here
	if _, err := host.Master.Reg.Make(hashName("stale.seg"), host.Pisces.RootMem, []hw.Extent{seg}); err != nil {
		log.Fatal(err)
	}
	err := staleSegmentBug(host, k, seg, "stale.seg")
	fmt.Printf("  bug ran: err=%v, node crashed=%v\n", err, host.M.Crashed())
	if addr, _ := host.CheckCanary(seg, 0xFEED); addr != 0 {
		fmt.Printf("  SILENT CORRUPTION of host data at %#x — nobody noticed\n", addr)
	} else {
		fmt.Println("  host data survived (this run got lucky)")
	}
	tb.Close()

	// ---- Run 2: unprotected; the stale page is no longer backed. ----
	fmt.Println("== run 2: no protection, stale page unbacked ==")
	tb2 := buildNode(false)
	task, _ := tb2.Kitten().Spawn("wild", 0, func(e *kitten.Env) error {
		// The stale mapping points into address space the host has since
		// offlined — nothing is there any more.
		return e.RawWrite64(0x20, 0xDEAD)
	})
	err = task.Wait()
	fmt.Printf("  bug ran: err=%v\n  NODE CRASHED: %v (reason: %s)\n",
		err, tb2.M.Crashed(), tb2.M.CrashReason())

	// ---- Run 3: the same bugs under Covirt memory protection. ----
	fmt.Println("== run 3: covirt memory protection ==")
	tb3 := buildNode(true)
	host3, enc3, k3 := tb3.Host, tb3.Enc(), tb3.Kitten()
	seg3, _ := host3.HostAlloc(0, 4<<20)
	_ = host3.PlantCanary(seg3, 0xFEED)
	if _, err := host3.Master.Reg.Make(hashName("stale.seg"), host3.Pisces.RootMem, []hw.Extent{seg3}); err != nil {
		log.Fatal(err)
	}
	err = staleSegmentBug(host3, k3, seg3, "stale.seg")
	fmt.Printf("  bug ran: err=%v\n", err)
	fmt.Printf("  node crashed: %v\n", host3.M.Crashed())
	if addr, _ := host3.CheckCanary(seg3, 0xFEED); addr == 0 {
		fmt.Println("  host data intact")
	} else {
		fmt.Printf("  host data corrupted at %#x\n", addr)
	}
	fmt.Printf("  enclave: %v (%s)\n", enc3.State(), enc3.CrashReason())
	for _, f := range host3.M.Faults() {
		fmt.Printf("  fault log: %s at %#x (cpu %d, write=%v)\n", f.Kind, f.Addr, f.CPU, f.Write)
	}
	fmt.Println("  -> diagnosis takes minutes, not weeks: the first wild access is pinpointed")
}

// hashName mirrors the kitten-side FNV-1a name encoding.
func hashName(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
