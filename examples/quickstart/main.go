// Quickstart: boot a Kitten co-kernel enclave under Covirt, run a guest
// application, then inject the canonical co-kernel bug — a wild write
// through a misconfigured memory map — and watch Covirt contain it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"covirt/internal/covirt"
	"covirt/internal/kitten"
	"covirt/internal/testbed"
)

func main() {
	// 1. Declare the testbed: a simulated dual-socket node with two cores
	//    and 2 GiB offlined for the enclave, the Covirt controller loaded
	//    with memory protection + abort handling, and one Kitten enclave.
	//    Build assembles and boots the whole stack; Covirt interposes
	//    transparently, so the co-kernel boots exactly as if Pisces had
	//    launched it directly.
	tb, err := testbed.Spec{
		OfflineCores: []int{1, 2},
		OfflineMem:   map[int]uint64{0: 2 << 30},
		Covirt:       true,
		Features:     covirt.FeaturesMem,
		Guests: []testbed.Guest{{
			Name: "quickstart", Cores: 2, Nodes: []int{0}, MemBytes: 1 << 30,
		}},
	}.Build()
	if err != nil {
		log.Fatal(err)
	}
	machine, host, ctrl := tb.M, tb.Host, tb.Ctrl
	enc, kernel := tb.Enc(), tb.Kitten()
	fmt.Printf("enclave %d (%s) booted on cores %v under covirt features %q\n",
		enc.ID, enc.Name, enc.Cores, ctrl.FeaturesFor(enc.ID))

	// 2. Run a well-behaved guest application.
	task, err := kernel.Spawn("app", 0, func(e *kitten.Env) error {
		buf := e.Alloc(0, 16<<20)
		defer e.Free(buf)
		e.Stream(buf.Start, buf.Size, true)
		e.Write64(buf.Start, 42)
		fmt.Printf("guest computed fine; value=%d, tsc=%d cycles\n", e.Read64(buf.Start), e.TSC())
		return e.WriteConsole("hello from the enclave\n")
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := task.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host console captured: %q\n", host.Console(enc.ID))

	// 3. Plant a canary in host memory and inject the bug: the co-kernel's
	//    (simulated) memory map claims a host-owned region is its own.
	victim, err := host.HostAlloc(0, 4<<20)
	if err != nil {
		log.Fatal(err)
	}
	if err := host.PlantCanary(victim, 0xC0DE); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninjecting wild write into host memory at %#x ...\n", victim.Start)
	bug, _ := kernel.Spawn("bug", 0, func(e *kitten.Env) error {
		return e.RawWrite64(victim.Start, 0xDEADBEEF)
	})
	err = bug.Wait()

	// 4. Containment report.
	fmt.Printf("guest task result: %v\n", err)
	fmt.Printf("node crashed: %v\n", machine.Crashed())
	if addr, _ := host.CheckCanary(victim, 0xC0DE); addr == 0 {
		fmt.Println("host memory intact: the EPT violation was contained")
	} else {
		fmt.Printf("host memory CORRUPTED at %#x\n", addr)
	}
	fmt.Printf("enclave state: %v (reason: %s)\n", enc.State(), enc.CrashReason())
	if st := ctrl.StatusFor(enc.ID); st != nil {
		fmt.Printf("hypervisor exits: %v\n", st.Exits)
	} else {
		fmt.Println("controller state reclaimed after termination")
	}
}
