// Elastic: a co-kernel compute service that grows on demand. The enclave
// reads its job description from the host filesystem via system-call
// forwarding, the operator hot-adds cores and memory while it runs — every
// grant flowing through the Hobbes event bus into EPT updates and a fresh
// per-core Covirt hypervisor — and the results land back in a host file.
//
//	go run ./examples/elastic
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"covirt/internal/covirt"
	"covirt/internal/kitten"
	"covirt/internal/pisces"
	"covirt/internal/testbed"
	"covirt/internal/workloads"
)

func main() {
	// Explicit offline overrides keep spare capacity beyond the enclave's
	// initial footprint — the headroom the hot-adds below grow into.
	tb, err := testbed.Spec{
		OfflineCores: []int{1, 2, 3, 4},
		OfflineMem:   map[int]uint64{0: 8 << 30},
		Covirt:       true,
		Features:     covirt.FeaturesMemIPIPIV,
	}.Build()
	if err != nil {
		log.Fatal(err)
	}
	host, ctrl := tb.Host, tb.Ctrl

	// The operator stages the job description on the host, then boots the
	// service into its enclave.
	host.WriteFile("/jobs/cg.conf", []byte("grid=32\niters=12\n"))
	be, err := tb.BootGuest(testbed.Guest{
		Name: "elastic", Cores: 1, Nodes: []int{0}, MemBytes: 2 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	enc, kernel := be.Enc, be.Kitten
	fmt.Printf("service booted: 1 core, %q\n", ctrl.FeaturesFor(enc.ID))

	// Phase 1: the service reads its configuration (forwarded file I/O).
	var grid, iters int
	cfgTask, _ := kernel.Spawn("read-config", 0, func(e *kitten.Env) error {
		f, err := e.Open("/jobs/cg.conf", pisces.OpenRead)
		if err != nil {
			return err
		}
		defer f.Close()
		buf := make([]byte, 256)
		n, err := f.Read(buf)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(strings.TrimSpace(string(buf[:n])), "\n") {
			k, v, ok := strings.Cut(line, "=")
			if !ok {
				continue
			}
			if k == "grid" {
				grid, _ = strconv.Atoi(v)
			}
			if k == "iters" {
				iters, _ = strconv.Atoi(v)
			}
		}
		return nil
	})
	if err := cfgTask.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job: %d^3 grid, %d CG iterations\n", grid, iters)

	// Phase 2: run once on the single core.
	hpcg := &workloads.HPCG{NX: grid, NY: grid, NZ: grid, Iters: iters}
	r1, err := hpcg.Run(kernel, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1-core solve: %.4fs (residual %.2g)\n",
		workloads.Seconds(r1.Cycles), r1.Metric("residual"))

	// Phase 3: the operator grows the service: three more cores and more
	// memory, hot-added while the enclave stays up and protected.
	for i := 0; i < 3; i++ {
		core, err := host.Pisces.AddCPU(enc, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hot-added core %d (hypervisor launched, whitelist extended)\n", core)
	}
	if ext, err := host.Pisces.AddMemory(enc, 0, 1<<30); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("hot-added %d MiB at %#x (EPT mapped before the kernel saw it)\n",
			ext.Size>>20, ext.Start)
	}

	// Phase 4: the same job on four cores.
	r4, err := (&workloads.HPCG{NX: grid, NY: grid, NZ: grid, Iters: iters}).Run(kernel, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-core solve: %.4fs (residual %.2g) — %.2fx speedup\n",
		workloads.Seconds(r4.Cycles), r4.Metric("residual"),
		float64(r1.Cycles)/float64(r4.Cycles))

	// Phase 5: publish results to the host filesystem.
	report := fmt.Sprintf("grid=%d iters=%d t1=%.4fs t4=%.4fs speedup=%.2f\n",
		grid, iters, workloads.Seconds(r1.Cycles), workloads.Seconds(r4.Cycles),
		float64(r1.Cycles)/float64(r4.Cycles))
	pub, _ := kernel.Spawn("publish", 0, func(e *kitten.Env) error {
		f, err := e.Open("/jobs/cg.result", pisces.OpenWrite)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = f.Write([]byte(report))
		return err
	})
	if err := pub.Wait(); err != nil {
		log.Fatal(err)
	}
	if out, ok := host.ReadFile("/jobs/cg.result"); ok {
		fmt.Printf("host collected result file: %s", out)
	}
	st := ctrl.StatusFor(enc.ID)
	fmt.Printf("covirt state: EPT %d MiB in %d mappings, %d exits\n",
		st.EPT.Bytes>>20, st.EPT.Pages(), func() uint64 {
			var n uint64
			for _, v := range st.Exits {
				n += v
			}
			return n
		}())
	tb.Close()
	fmt.Println("service shut down; resources reclaimed")
}
