package pisces

import (
	"fmt"
	"sort"
	"sync"

	"covirt/internal/hw"
)

// Ledger tracks free physical memory extents and offline cores available
// for assignment to enclaves. The host OS donates resources into the ledger
// (taking them offline) and Pisces allocates them to enclaves from there.
type Ledger struct {
	mu      sync.Mutex
	free    map[int][]hw.Extent // per node, sorted by Start
	cores   map[int]bool        // offline cores available for enclaves
	granule uint64
}

// NewLedger returns an empty ledger. Allocations are made in multiples of
// the 2 MiB granule, matching Pisces' large-page-aligned memory handoff.
func NewLedger() *Ledger {
	return NewLedgerGranule(hw.PageSize2M)
}

// NewLedgerGranule returns a ledger with a custom allocation granule (a
// power of two, at least 4 KiB). Co-kernels use a finer granule for their
// internal allocators than the framework uses for enclave handoff.
func NewLedgerGranule(granule uint64) *Ledger {
	if granule < hw.PageSize4K {
		granule = hw.PageSize4K
	}
	return &Ledger{
		free:    make(map[int][]hw.Extent),
		cores:   make(map[int]bool),
		granule: granule,
	}
}

// DonateMemory adds a free extent to the ledger. The extent must be
// granule-aligned.
func (l *Ledger) DonateMemory(e hw.Extent) error {
	if e.Start%l.granule != 0 || e.Size%l.granule != 0 {
		return fmt.Errorf("pisces: extent %v not %d-aligned", e, l.granule)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.free[e.Node] = insertExtent(l.free[e.Node], e)
	return nil
}

// DonateCore marks a core available for enclave assignment.
func (l *Ledger) DonateCore(core int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cores[core] = true
}

// AllocMemory carves size bytes from node's free extents. Size is rounded
// up to the granule. The allocation is contiguous, matching the lightweight
// kernels' contiguous-memory policy.
func (l *Ledger) AllocMemory(node int, size uint64) (hw.Extent, error) {
	size = hw.AlignUp(size, l.granule)
	l.mu.Lock()
	defer l.mu.Unlock()
	frees := l.free[node]
	for i, f := range frees {
		if f.Size >= size {
			out := hw.Extent{Start: f.Start, Size: size, Node: node}
			if f.Size == size {
				l.free[node] = append(frees[:i], frees[i+1:]...)
			} else {
				frees[i] = hw.Extent{Start: f.Start + size, Size: f.Size - size, Node: node}
			}
			return out, nil
		}
	}
	return hw.Extent{}, fmt.Errorf("pisces: node %d has no contiguous %d bytes free", node, size)
}

// FreeMemory returns an extent to the ledger, coalescing with neighbours.
func (l *Ledger) FreeMemory(e hw.Extent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.free[e.Node] = insertExtent(l.free[e.Node], e)
}

// AllocCores takes n offline cores from node (or any node if node < 0).
func (l *Ledger) AllocCores(topo *hw.Topology, node, n int) ([]int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var got []int
	for core := range l.cores {
		if node >= 0 && topo.NodeOfCore(core) != node {
			continue
		}
		got = append(got, core)
	}
	sort.Ints(got)
	if len(got) < n {
		return nil, fmt.Errorf("pisces: want %d cores on node %d, have %d offline", n, node, len(got))
	}
	got = got[:n]
	for _, c := range got {
		delete(l.cores, c)
	}
	return got, nil
}

// FreeCores returns cores to the offline pool.
func (l *Ledger) FreeCores(cores []int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range cores {
		l.cores[c] = true
	}
}

// WithdrawCore removes an offline core from the pool entirely (it is no
// longer allocatable to enclaves), reporting whether the core was free.
// Quarantine uses it to return hardware to the host for good: the exact
// counterpart of Reserve for cores.
func (l *Ledger) WithdrawCore(core int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.cores[core] {
		return false
	}
	delete(l.cores, core)
	return true
}

// Reserve removes exactly the given extent from the free lists, failing if
// any part of it is not currently free. A co-kernel uses this to pull a
// specific range (e.g. memory the host asked it to relinquish) out of its
// allocator.
func (l *Ledger) Reserve(e hw.Extent) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	frees := l.free[e.Node]
	for i, f := range frees {
		if f.Start <= e.Start && f.End() >= e.End() {
			var repl []hw.Extent
			if f.Start < e.Start {
				repl = append(repl, hw.Extent{Start: f.Start, Size: e.Start - f.Start, Node: e.Node})
			}
			if f.End() > e.End() {
				repl = append(repl, hw.Extent{Start: e.End(), Size: f.End() - e.End(), Node: e.Node})
			}
			out := append(append(append([]hw.Extent{}, frees[:i]...), repl...), frees[i+1:]...)
			l.free[e.Node] = out
			return nil
		}
	}
	return fmt.Errorf("pisces: extent %v not fully free", e)
}

// FreeBytes reports free memory on node.
func (l *Ledger) FreeBytes(node int) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return hw.TotalSize(l.free[node])
}

// insertExtent inserts e into a Start-sorted extent list, merging adjacent
// extents.
func insertExtent(list []hw.Extent, e hw.Extent) []hw.Extent {
	i := sort.Search(len(list), func(i int) bool { return list[i].Start >= e.Start })
	list = append(list, hw.Extent{})
	copy(list[i+1:], list[i:])
	list[i] = e
	// Merge with next.
	if i+1 < len(list) && list[i].End() == list[i+1].Start {
		list[i].Size += list[i+1].Size
		list = append(list[:i+1], list[i+2:]...)
	}
	// Merge with previous.
	if i > 0 && list[i-1].End() == list[i].Start {
		list[i-1].Size += list[i].Size
		list = append(list[:i], list[i+1:]...)
	}
	return list
}
