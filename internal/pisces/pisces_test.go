package pisces

import (
	"testing"
	"testing/quick"

	"covirt/internal/hw"
)

func TestLedgerAllocFree(t *testing.T) {
	l := NewLedger()
	if err := l.DonateMemory(hw.Extent{Start: 0, Size: 64 << 20, Node: 0}); err != nil {
		t.Fatal(err)
	}
	e1, err := l.AllocMemory(0, 10<<20)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Size != 10<<20 || e1.Start != 0 {
		t.Errorf("e1 = %v", e1)
	}
	e2, err := l.AllocMemory(0, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Start != e1.End() {
		t.Errorf("e2 = %v, not adjacent to e1", e2)
	}
	if l.FreeBytes(0) != 64<<20-12<<20 {
		t.Errorf("free = %d", l.FreeBytes(0))
	}
	l.FreeMemory(e1)
	l.FreeMemory(e2)
	if l.FreeBytes(0) != 64<<20 {
		t.Errorf("free after return = %d", l.FreeBytes(0))
	}
	// Coalescing: a full-size alloc must succeed again.
	if _, err := l.AllocMemory(0, 64<<20); err != nil {
		t.Errorf("coalescing failed: %v", err)
	}
}

func TestLedgerRoundsToGranule(t *testing.T) {
	l := NewLedger()
	if err := l.DonateMemory(hw.Extent{Start: 0, Size: 8 << 20, Node: 0}); err != nil {
		t.Fatal(err)
	}
	e, err := l.AllocMemory(0, 1) // rounds to 2M
	if err != nil {
		t.Fatal(err)
	}
	if e.Size != hw.PageSize2M {
		t.Errorf("size = %d", e.Size)
	}
	if err := l.DonateMemory(hw.Extent{Start: 1 << 30, Size: 12345, Node: 0}); err == nil {
		t.Error("unaligned donation accepted")
	}
}

func TestLedgerExhaustion(t *testing.T) {
	l := NewLedger()
	_ = l.DonateMemory(hw.Extent{Start: 0, Size: 4 << 20, Node: 0})
	if _, err := l.AllocMemory(0, 8<<20); err == nil {
		t.Error("over-allocation succeeded")
	}
	if _, err := l.AllocMemory(1, 1<<20); err == nil {
		t.Error("allocation from empty node succeeded")
	}
}

func TestLedgerReserve(t *testing.T) {
	l := NewLedger()
	_ = l.DonateMemory(hw.Extent{Start: 0, Size: 16 << 20, Node: 0})
	mid := hw.Extent{Start: 4 << 20, Size: 4 << 20, Node: 0}
	if err := l.Reserve(mid); err != nil {
		t.Fatal(err)
	}
	if l.FreeBytes(0) != 12<<20 {
		t.Errorf("free = %d", l.FreeBytes(0))
	}
	// The reserved range cannot be reserved again.
	if err := l.Reserve(mid); err == nil {
		t.Error("double reserve succeeded")
	}
	// Both remaining halves are allocatable.
	a, err := l.AllocMemory(0, 4<<20)
	if err != nil || a.Start != 0 {
		t.Errorf("a = %v, %v", a, err)
	}
	b, err := l.AllocMemory(0, 8<<20)
	if err != nil || b.Start != 8<<20 {
		t.Errorf("b = %v, %v", b, err)
	}
}

func TestLedgerCores(t *testing.T) {
	topo := &hw.Topology{Nodes: []hw.NodeSpec{
		{ID: 0, Cores: []int{0, 1, 2}},
		{ID: 1, Cores: []int{3, 4, 5}},
	}}
	l := NewLedger()
	for c := 0; c < 6; c++ {
		l.DonateCore(c)
	}
	got, err := l.AllocCores(topo, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range got {
		if topo.NodeOfCore(c) != 1 {
			t.Errorf("core %d not on node 1", c)
		}
	}
	if _, err := l.AllocCores(topo, 1, 2); err == nil {
		t.Error("over-allocation of node-1 cores succeeded")
	}
	l.FreeCores(got)
	if _, err := l.AllocCores(topo, 1, 2); err != nil {
		t.Errorf("realloc after free: %v", err)
	}
}

// Property: alloc/free sequences never lose or duplicate bytes.
func TestLedgerConservationProperty(t *testing.T) {
	const total = 256 << 20
	f := func(ops []uint8) bool {
		l := NewLedger()
		_ = l.DonateMemory(hw.Extent{Start: 0, Size: total, Node: 0})
		var held []hw.Extent
		var heldBytes uint64
		for _, op := range ops {
			if op%2 == 0 || len(held) == 0 {
				size := (uint64(op)%16 + 1) * hw.PageSize2M
				e, err := l.AllocMemory(0, size)
				if err != nil {
					continue
				}
				held = append(held, e)
				heldBytes += e.Size
			} else {
				i := int(op) % len(held)
				l.FreeMemory(held[i])
				heldBytes -= held[i].Size
				held = append(held[:i], held[i+1:]...)
			}
			if l.FreeBytes(0)+heldBytes != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBootParamsRoundTrip(t *testing.T) {
	pm := hw.NewPhysMem()
	if _, err := pm.AddRegion(0x100000, 1<<20, 0, "bp"); err != nil {
		t.Fatal(err)
	}
	io := NativeMemIO{Mem: pm}
	bp := &BootParams{
		EnclaveID:    7,
		Cores:        []int{3, 4, 9},
		Mem:          []hw.Extent{{Start: 0x200000, Size: 1 << 24, Node: 0}, {Start: 1 << 38, Size: 1 << 24, Node: 1}},
		CtlReqRing:   0x101000,
		CtlRespRing:  0x102000,
		LcReqRing:    0x103000,
		LcRespRing:   0x104000,
		CovirtParams: 0x105000,
	}
	if err := EncodeBootParams(io, 0x100000, bp); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBootParams(io, 0x100000)
	if err != nil {
		t.Fatal(err)
	}
	if got.EnclaveID != 7 || len(got.Cores) != 3 || got.Cores[2] != 9 {
		t.Errorf("cores = %+v", got)
	}
	if len(got.Mem) != 2 || got.Mem[1].Node != 1 {
		t.Errorf("mem = %+v", got.Mem)
	}
	if got.CovirtParams != 0x105000 || got.LcRespRing != 0x104000 {
		t.Errorf("rings = %+v", got)
	}
	// Corrupt magic is detected.
	if err := pm.Write64(0x100000, 0xBAD); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBootParams(io, 0x100000); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestBootParamsLimits(t *testing.T) {
	pm := hw.NewPhysMem()
	if _, err := pm.AddRegion(0, 1<<20, 0, "bp"); err != nil {
		t.Fatal(err)
	}
	io := NativeMemIO{Mem: pm}
	tooManyCores := &BootParams{Cores: make([]int, MaxBootCores+1)}
	if err := EncodeBootParams(io, 0, tooManyCores); err == nil {
		t.Error("oversized core list accepted")
	}
	tooManyExts := &BootParams{Mem: make([]hw.Extent, MaxBootExtents+1)}
	if err := EncodeBootParams(io, 0, tooManyExts); err == nil {
		t.Error("oversized extent list accepted")
	}
}

func TestRingPushPop(t *testing.T) {
	pm := hw.NewPhysMem()
	if _, err := pm.AddRegion(0, 1<<20, 0, "ring"); err != nil {
		t.Fatal(err)
	}
	io := NativeMemIO{Mem: pm}
	done := make(chan struct{})
	defer close(done)
	r := NewRing(0x1000, done)
	if err := r.Init(io); err != nil {
		t.Fatal(err)
	}
	var m Msg
	m.Type = 42
	m.Seq = 7
	copy(m.Payload[:], "payload bytes")
	if err := r.Push(io, &m); err != nil {
		t.Fatal(err)
	}
	var out Msg
	if err := r.Pop(io, &out); err != nil {
		t.Fatal(err)
	}
	if out.Type != 42 || out.Seq != 7 || string(out.Payload[:13]) != "payload bytes" {
		t.Errorf("out = %+v", out)
	}
	// Empty ring: TryPop reports nothing.
	ok, err := r.TryPop(io, &out)
	if err != nil || ok {
		t.Errorf("TryPop on empty = %v, %v", ok, err)
	}
}

func TestRingOrderAndCapacity(t *testing.T) {
	pm := hw.NewPhysMem()
	if _, err := pm.AddRegion(0, 1<<20, 0, "ring"); err != nil {
		t.Fatal(err)
	}
	io := NativeMemIO{Mem: pm}
	r := NewRing(0, nil)
	_ = r.Init(io)
	for i := 0; i < RingSlots; i++ {
		m := Msg{Type: uint32(i)}
		if err := r.Push(io, &m); err != nil {
			t.Fatal(err)
		}
	}
	// Ring is full now; a blocked Push should complete once we Pop.
	donePush := make(chan error, 1)
	go func() {
		m := Msg{Type: 999}
		donePush <- r.Push(io, &m)
	}()
	var out Msg
	for i := 0; i < RingSlots; i++ {
		if err := r.Pop(io, &out); err != nil {
			t.Fatal(err)
		}
		if out.Type != uint32(i) {
			t.Fatalf("pop %d = type %d (FIFO violated)", i, out.Type)
		}
	}
	if err := <-donePush; err != nil {
		t.Fatal(err)
	}
	if err := r.Pop(io, &out); err != nil || out.Type != 999 {
		t.Errorf("blocked push message = %+v, %v", out, err)
	}
}

func TestRingCloseUnblocks(t *testing.T) {
	pm := hw.NewPhysMem()
	if _, err := pm.AddRegion(0, 1<<20, 0, "ring"); err != nil {
		t.Fatal(err)
	}
	io := NativeMemIO{Mem: pm}
	r := NewRing(0, nil)
	_ = r.Init(io)
	errc := make(chan error, 1)
	go func() {
		var m Msg
		errc <- r.Pop(io, &m)
	}()
	r.Close()
	if err := <-errc; err == nil {
		t.Error("Pop on closed ring returned nil")
	}
	var m Msg
	if err := r.Push(io, &m); err == nil {
		t.Error("Push on closed ring succeeded")
	}
}

// Property: any sequence of messages round-trips in order through the ring.
func TestRingFIFOProperty(t *testing.T) {
	pm := hw.NewPhysMem()
	if _, err := pm.AddRegion(0, 1<<20, 0, "ring"); err != nil {
		t.Fatal(err)
	}
	io := NativeMemIO{Mem: pm}
	f := func(types []uint32) bool {
		r := NewRing(0x2000, nil)
		if r.Init(io) != nil {
			return false
		}
		if len(types) > RingSlots {
			types = types[:RingSlots]
		}
		for _, ty := range types {
			if r.Push(io, &Msg{Type: ty}) != nil {
				return false
			}
		}
		for _, ty := range types {
			var out Msg
			if r.Pop(io, &out) != nil || out.Type != ty {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExtentHelpers(t *testing.T) {
	pm := hw.NewPhysMem()
	if _, err := pm.AddRegion(0, 1<<20, 0, "x"); err != nil {
		t.Fatal(err)
	}
	io := NativeMemIO{Mem: pm}
	exts := []hw.Extent{{Start: 0x1000, Size: 0x2000, Node: 0}, {Start: 1 << 38, Size: 1 << 21, Node: 1}}
	if err := PutExtents(io, 0x8000, exts); err != nil {
		t.Fatal(err)
	}
	got, err := GetExtents(io, 0x8000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != exts[0] || got[1] != exts[1] {
		t.Errorf("got = %v", got)
	}
	if _, err := GetExtents(io, 0x8000, LcDataBytes); err == nil {
		t.Error("oversized extent count accepted")
	}
	if err := PutExtents(io, 0x8000, make([]hw.Extent, LcDataBytes)); err == nil {
		t.Error("oversized extent list accepted")
	}
}
