package pisces

import (
	"encoding/binary"

	"covirt/internal/hw"
)

// MemIO abstracts who is touching shared physical memory: the host OS
// accesses it natively (trusted, unprotected), while an enclave co-kernel
// goes through its CPU so translation costs are charged and protection
// layers can intervene.
type MemIO interface {
	ReadBytes(addr uint64, p []byte) error
	WriteBytes(addr uint64, p []byte) error
	Read64(addr uint64) (uint64, error)
	Write64(addr uint64, v uint64) error
}

// NativeMemIO is host-side direct access to physical memory.
type NativeMemIO struct {
	Mem *hw.PhysMem
}

// ReadBytes implements MemIO.
func (n NativeMemIO) ReadBytes(addr uint64, p []byte) error { return n.Mem.Read(addr, p) }

// WriteBytes implements MemIO.
func (n NativeMemIO) WriteBytes(addr uint64, p []byte) error { return n.Mem.Write(addr, p) }

// Read64 implements MemIO.
func (n NativeMemIO) Read64(addr uint64) (uint64, error) { return n.Mem.Read64(addr) }

// Write64 implements MemIO.
func (n NativeMemIO) Write64(addr uint64, v uint64) error { return n.Mem.Write64(addr, v) }

// CPUMemIO is enclave-side access through a simulated CPU: every access is
// charged and subject to the CPU's protection layer.
type CPUMemIO struct {
	CPU *hw.CPU
}

// ReadBytes implements MemIO.
func (c CPUMemIO) ReadBytes(addr uint64, p []byte) error { return c.CPU.ReadBytesG(addr, p) }

// WriteBytes implements MemIO.
func (c CPUMemIO) WriteBytes(addr uint64, p []byte) error { return c.CPU.WriteBytesG(addr, p) }

// Read64 implements MemIO.
func (c CPUMemIO) Read64(addr uint64) (uint64, error) { return c.CPU.Read64G(addr) }

// Write64 implements MemIO.
func (c CPUMemIO) Write64(addr uint64, v uint64) error { return c.CPU.Write64G(addr, v) }

// put64/get64 are little helpers for message payload packing.
func put64(p []byte, off int, v uint64) { binary.LittleEndian.PutUint64(p[off:], v) }
func get64(p []byte, off int) uint64    { return binary.LittleEndian.Uint64(p[off:]) }
func put32(p []byte, off int, v uint32) { binary.LittleEndian.PutUint32(p[off:], v) }
func get32(p []byte, off int) uint32    { return binary.LittleEndian.Uint32(p[off:]) }
