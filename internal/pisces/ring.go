package pisces

import (
	"fmt"
	"sync"
)

// Msg is one fixed-size command-ring message. Fixed-size messages mirror
// Covirt's "commands are fixed-size messages" design and keep the
// shared-memory layout trivial for both kernels to parse.
type Msg struct {
	Type    uint32
	Seq     uint32
	Payload [MsgPayloadSize]byte
}

// Message geometry.
const (
	MsgPayloadSize = 56
	msgSize        = 64 // 4 type + 4 seq + 56 payload
	ringHdrSize    = 16 // head (8) + tail (8)
)

// RingSlots is the capacity of each command ring.
const RingSlots = 32

// RingBytes is the shared-memory footprint of one ring.
const RingBytes = ringHdrSize + RingSlots*msgSize

// Ring is a single-producer single-consumer command ring living in shared
// physical memory. Head and tail indices and all message bytes are stored
// in guest-visible memory and accessed through a MemIO, so an enclave-side
// endpoint pays simulated access costs and is subject to protection.
//
// Go-level blocking (cond + done channel) stands in for the interrupt-based
// wakeups of the real system; the IPI "doorbell" side effects are modelled
// by the callers, which send IPIs around Push as the real stack does.
type Ring struct {
	base uint64

	mu   sync.Mutex
	cond *sync.Cond
	done <-chan struct{}

	closed bool
}

// NewRing creates the Go-side handle for a ring at base. The memory is not
// initialized; call Init from the owning (host) side first.
func NewRing(base uint64, done <-chan struct{}) *Ring {
	r := &Ring{base: base, done: done}
	r.cond = sync.NewCond(&r.mu)
	if done != nil {
		go func() {
			<-done
			r.markClosed()
		}()
	}
	return r
}

// markClosed latches the closed flag and releases all blocked endpoints.
// The broadcast runs under the lock so a racing Pop between its closed
// check and cond.Wait cannot miss it.
func (r *Ring) markClosed() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.cond.Broadcast()
}

// Init zeroes the ring header through io.
func (r *Ring) Init(io MemIO) error {
	if err := io.Write64(r.base, 0); err != nil {
		return err
	}
	return io.Write64(r.base+8, 0)
}

// slotAddr returns the physical address of slot i.
func (r *Ring) slotAddr(i uint64) uint64 {
	return r.base + ringHdrSize + (i%RingSlots)*msgSize
}

// Push appends m, blocking while the ring is full. It returns an error if
// the ring is shut down or the memory access faults.
func (r *Ring) Push(io MemIO, m *Msg) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.closed {
			return fmt.Errorf("pisces: ring shut down")
		}
		head, err := io.Read64(r.base)
		if err != nil {
			return err
		}
		tail, err := io.Read64(r.base + 8)
		if err != nil {
			return err
		}
		if head-tail < RingSlots {
			var buf [msgSize]byte
			put32(buf[:], 0, m.Type)
			put32(buf[:], 4, m.Seq)
			copy(buf[8:], m.Payload[:])
			if err := io.WriteBytes(r.slotAddr(head), buf[:]); err != nil {
				return err
			}
			if err := io.Write64(r.base, head+1); err != nil {
				return err
			}
			r.cond.Broadcast()
			return nil
		}
		r.cond.Wait()
	}
}

// Pop removes the oldest message, blocking while the ring is empty.
func (r *Ring) Pop(io MemIO, m *Msg) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.closed {
			return fmt.Errorf("pisces: ring shut down")
		}
		head, err := io.Read64(r.base)
		if err != nil {
			return err
		}
		tail, err := io.Read64(r.base + 8)
		if err != nil {
			return err
		}
		if head > tail {
			var buf [msgSize]byte
			if err := io.ReadBytes(r.slotAddr(tail), buf[:]); err != nil {
				return err
			}
			m.Type = get32(buf[:], 0)
			m.Seq = get32(buf[:], 4)
			copy(m.Payload[:], buf[8:])
			if err := io.Write64(r.base+8, tail+1); err != nil {
				return err
			}
			r.cond.Broadcast()
			return nil
		}
		r.cond.Wait()
	}
}

// TryPop is Pop without blocking; ok reports whether a message was taken.
func (r *Ring) TryPop(io MemIO, m *Msg) (ok bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false, fmt.Errorf("pisces: ring shut down")
	}
	head, err := io.Read64(r.base)
	if err != nil {
		return false, err
	}
	tail, err := io.Read64(r.base + 8)
	if err != nil {
		return false, err
	}
	if head == tail {
		return false, nil
	}
	var buf [msgSize]byte
	if err := io.ReadBytes(r.slotAddr(tail), buf[:]); err != nil {
		return false, err
	}
	m.Type = get32(buf[:], 0)
	m.Seq = get32(buf[:], 4)
	copy(m.Payload[:], buf[8:])
	if err := io.Write64(r.base+8, tail+1); err != nil {
		return false, err
	}
	r.cond.Broadcast()
	return true, nil
}

// Close shuts the ring down, releasing all blocked endpoints.
func (r *Ring) Close() {
	r.markClosed()
}
