package pisces

import (
	"fmt"

	"covirt/internal/hw"
)

// Longcall (forwarded system call) numbers. Longcalls are the Pisces
// mechanism by which co-kernel applications delegate heavyweight operations
// to the general-purpose host OS; XEMEM's name-service operations ride the
// same channel.
const (
	SysWriteConsole uint32 = 201 // payload: addr(8) len(8) of message in enclave memory
	SysNanosleep    uint32 = 202 // payload: cycles(8) to advance
	SysGetPID       uint32 = 203
	SysNodeInfo     uint32 = 204

	SysXemMake   uint32 = 210 // payload: name-hash(8) addr(8) size(8) -> segid
	SysXemGet    uint32 = 211 // payload: name-hash(8) -> segid
	SysXemAttach uint32 = 212 // payload: segid(8) -> extent list in LcData
	SysXemDetach uint32 = 213 // payload: segid(8) -> extent list to unmap
	SysXemRemove uint32 = 214 // payload: segid(8)
	// SysXemDetachDone completes a detach after the co-kernel has
	// relinquished its mappings; protection layers unmap and flush here,
	// before the operation is reported complete to the management layer.
	SysXemDetachDone uint32 = 215 // payload: segid(8)

	// File I/O forwarding: the LWK has no filesystem; open/read/write all
	// delegate to the host OS, with path and data staged through LcData.
	SysOpen   uint32 = 220 // payload: pathlen(8) flags(8); path in LcData -> fd
	SysClose  uint32 = 221 // payload: fd(8)
	SysRead   uint32 = 222 // payload: fd(8) off(8) len(8) -> data in LcData, n
	SysWrite  uint32 = 223 // payload: fd(8) off(8) len(8); data in LcData -> n
	SysUnlink uint32 = 224 // payload: pathlen(8); path in LcData
	SysFsize  uint32 = 225 // payload: fd(8) -> size
)

// Open flags for SysOpen.
const (
	OpenRead   uint64 = 0
	OpenWrite  uint64 = 1 // create/truncate for writing
	OpenAppend uint64 = 2
)

// Longcall response layout within Msg.Payload:
//
//	[0:8)   status (0 = OK, else errno-style code)
//	[8:16)  host-side processing cycles (charged to the caller as wait time)
//	[16:24) primary result value
//	[24:32) secondary result value (e.g. extent count in LcData)
const (
	LcRespStatus = 0
	LcRespCycles = 8
	LcRespVal0   = 16
	LcRespVal1   = 24
)

// VectorLcResp is the host -> enclave doorbell announcing a longcall
// response; the calling core identifies itself in the request payload's
// LcReqCallerCore slot so the host knows which core to kick.
const VectorLcResp uint8 = 0xF4

// LcReqCallerCore is the payload offset where the calling machine core id
// is stored in every longcall request (limits requests to 6 argument
// slots).
const LcReqCallerCore = 48

// Longcall status codes.
const (
	LcOK uint64 = iota
	LcErrNoSys
	LcErrInval
	LcErrNoEnt
	LcErrFault
)

// LcData is a per-enclave shared buffer for longcall bulk data (page-frame
// extent lists, console strings). It lives in the reserved head of the
// enclave's first extent.
const (
	OffLcData   = 0x8000
	LcDataBytes = 0x8000
)

// ExtentRecordBytes is the wire size of one extent record in LcData.
const ExtentRecordBytes = 24

// PutExtents serializes an extent list into shared memory at base via io.
// It fails if the list would overflow the LcData buffer.
func PutExtents(io MemIO, base uint64, exts []hw.Extent) error {
	if len(exts)*ExtentRecordBytes > LcDataBytes {
		return fmt.Errorf("pisces: %d extents overflow LcData", len(exts))
	}
	buf := make([]byte, len(exts)*ExtentRecordBytes)
	for i, e := range exts {
		put64(buf, i*ExtentRecordBytes, e.Start)
		put64(buf, i*ExtentRecordBytes+8, e.Size)
		put64(buf, i*ExtentRecordBytes+16, uint64(e.Node))
	}
	return io.WriteBytes(base, buf)
}

// GetExtents deserializes n extent records from shared memory at base.
func GetExtents(io MemIO, base uint64, n int) ([]hw.Extent, error) {
	if n < 0 || n*ExtentRecordBytes > LcDataBytes {
		return nil, fmt.Errorf("pisces: bad extent count %d", n)
	}
	buf := make([]byte, n*ExtentRecordBytes)
	if err := io.ReadBytes(base, buf); err != nil {
		return nil, err
	}
	out := make([]hw.Extent, n)
	for i := range out {
		out[i] = hw.Extent{
			Start: get64(buf, i*ExtentRecordBytes),
			Size:  get64(buf, i*ExtentRecordBytes+8),
			Node:  int(get64(buf, i*ExtentRecordBytes+16)),
		}
	}
	return out, nil
}
