// Package pisces simulates the Pisces co-kernel framework: dynamic
// partitioning of a node's hardware into enclaves, each booted with an
// independent OS/R that fully manages its assigned cores and memory.
//
// The framework mirrors the real Pisces control plane:
//
//   - a resource ledger carves per-NUMA-node memory extents and cores out
//     of the host OS's holdings;
//   - enclave boot passes a boot-parameter structure in memory, with a
//     trampoline that normally jumps straight into the co-kernel — or,
//     when a BootInterposer (Covirt) is installed, into the hypervisor,
//     which then launches the co-kernel transparently;
//   - shared-memory command rings plus IPI doorbells implement the control
//     channel (host→enclave management commands) and the longcall channel
//     (enclave→host forwarded system calls);
//   - an ioctl-style ABI lets management tools (and the Covirt controller
//     module, which "piggy-backs on the Pisces kernel ABI") drive the
//     framework;
//   - hook points around memory add/remove let a protection layer update
//     its mappings in the required order (map before the enclave learns of
//     new memory; unmap and flush after the enclave has released it).
package pisces
