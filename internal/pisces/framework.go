package pisces

import (
	"fmt"
	"sync"

	"covirt/internal/authority"
	"covirt/internal/hw"
)

// EventKind classifies framework notifications delivered to event sinks
// (the Hobbes runtime and, through it, the Covirt controller module).
type EventKind int

// Framework event kinds. The Pre/Post distinction encodes Covirt's ordering
// rule: resources are mapped into the protection context before the enclave
// learns of them, and unmapped (with TLB shootdown) only after the enclave
// has relinquished them.
const (
	EvCreated EventKind = iota
	EvBootPre           // before any enclave core starts executing
	EvBooted
	EvMemAddPre     // extent allocated, enclave not yet notified
	EvMemRemovePost // enclave acked removal, host has not yet reclaimed
	EvCPUAddPre     // core allocated, enclave not yet notified
	EvCPURemovePost // enclave released the core, host has not yet reclaimed
	EvCrashed
	EvDestroyed
)

// Event is a framework notification.
type Event struct {
	Kind    EventKind
	Enclave *Enclave
	Extent  hw.Extent
	Core    int // CPU add/remove events
	Reason  string
	// Cap names the capability authorizing the resource crossing (memory
	// add/remove events). Protection layers verify it before mapping.
	Cap authority.Cap
	// MoreInBatch marks an event as part of a batch whose final member
	// carries false: protection layers may defer expensive
	// synchronization (TLB shootdowns) to the batch's last event. Set by
	// the batch emit paths (RemoveMemoryBatch), never by single-event
	// operations.
	MoreInBatch bool
}

// EventSink receives framework events synchronously. Returning an error
// from a Pre event aborts the operation.
type EventSink func(ev *Event) error

// BootInterposer hooks an enclave's CPU boot path. Covirt registers one to
// slide its hypervisor underneath the co-kernel: Pisces "instead boots into
// the Covirt hypervisor, which handles the virtualization hardware setup
// before directly invoking the actual co-kernel".
type BootInterposer interface {
	// InterposeBoot runs on each enclave core before the co-kernel's entry
	// point. bpAddr is the Pisces boot-parameter address the co-kernel
	// will receive, unmodified.
	InterposeBoot(enc *Enclave, cpu *hw.CPU, bpAddr uint64) error
}

// BootContext is everything a co-kernel needs to bring itself up.
type BootContext struct {
	Machine *hw.Machine
	Enclave *Enclave
	Params  *BootParams
	// Auth is the node's capability table; the co-kernel verifies the
	// memory capabilities in Params.MemCaps before adopting extents.
	Auth *authority.Table
}

// Bootable is a co-kernel image the framework can launch in an enclave.
type Bootable interface {
	// Boot initializes the kernel across the enclave's cores and returns
	// once the kernel is ready for work (services run on goroutines /
	// interrupt handlers).
	Boot(bc *BootContext) error
	// Shutdown stops the kernel's execution contexts.
	Shutdown()
}

// Quiescer is implemented by kernels whose execution contexts can be
// awaited after Shutdown. The framework quiesces a kernel before handing
// its cores to a new enclave, so no stale execution context can race with
// the successor.
type Quiescer interface {
	Quiesce()
}

// EnclaveSpec configures CreateEnclave.
type EnclaveSpec struct {
	Name string
	// NumCores cores are allocated round-robin across Nodes.
	NumCores int
	// Nodes lists the NUMA nodes the enclave spans (default node 0).
	Nodes []int
	// MemBytes of memory, split evenly across Nodes.
	MemBytes uint64
	// Heartbeat enables the liveness heartbeat protocol: the boot
	// parameters point the co-kernel at the reserved heartbeat page, and
	// it must beat from its boot core's timer interrupt. Off by default —
	// unsupervised enclaves charge no heartbeat cycles.
	Heartbeat bool
}

// Control command message types.
const (
	CmdPing uint32 = iota + 1
	CmdMemAdd
	CmdMemRemove
	CmdCPUAdd
	CmdCPURemove
	CmdShutdown
	AckOK  uint32 = 100
	AckErr uint32 = 101
)

// Framework is the Pisces co-kernel framework instance (the "kernel
// module" on the host).
type Framework struct {
	Machine *hw.Machine
	Ledger  *Ledger

	// Auth is the node's capability table. RootMem is the host's root
	// memory capability; every extent handed to an enclave is delegated
	// from it, so the delegation tree mirrors the resource handoff graph.
	Auth    *authority.Table
	RootMem authority.Cap

	hostIO NativeMemIO

	mu       sync.Mutex
	enclaves map[int]*Enclave
	nextID   int
	sinks    []EventSink
	interp   BootInterposer

	ioctlMu sync.Mutex
	ioctls  map[uint32]func(arg any) (any, error)
}

// NewFramework loads the Pisces framework on machine m with the given
// resource ledger (populated by the host OS).
func NewFramework(m *hw.Machine, ledger *Ledger) *Framework {
	fw := &Framework{
		Machine:  m,
		Ledger:   ledger,
		Auth:     authority.NewTable(),
		hostIO:   NativeMemIO{Mem: m.Mem},
		enclaves: make(map[int]*Enclave),
		nextID:   1,
		ioctls:   make(map[uint32]func(any) (any, error)),
	}
	fw.RootMem = fw.Auth.Mint(0, authority.KindMemory, authority.RightsAll,
		authority.WildScope(), "root-mem")
	return fw
}

// HostIO returns the host-side (native) memory accessor.
func (fw *Framework) HostIO() MemIO { return fw.hostIO }

// Subscribe registers an event sink. Sinks run synchronously in
// registration order.
func (fw *Framework) Subscribe(s EventSink) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.sinks = append(fw.sinks, s)
}

// SetInterposer installs the boot interposer (at most one; Covirt).
func (fw *Framework) SetInterposer(bi BootInterposer) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.interp = bi
}

// interposer returns the registered boot interposer, or nil.
func (fw *Framework) interposer() BootInterposer {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.interp
}

// snapshotSinks copies the sink list under the lock so emit can run the
// sinks (which may Subscribe re-entrantly) without holding it.
func (fw *Framework) snapshotSinks() []EventSink {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return append([]EventSink(nil), fw.sinks...)
}

// allocID reserves the next enclave ID.
func (fw *Framework) allocID() int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	id := fw.nextID
	fw.nextID++
	return id
}

// register publishes a fully-constructed enclave in the table.
func (fw *Framework) register(enc *Enclave) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.enclaves[enc.ID] = enc
}

// emit delivers ev to all sinks, stopping at the first error.
func (fw *Framework) emit(ev *Event) error {
	for _, s := range fw.snapshotSinks() {
		if err := s(ev); err != nil {
			return err
		}
	}
	return nil
}

// Enclave returns the enclave with the given id, or nil.
func (fw *Framework) Enclave(id int) *Enclave {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.enclaves[id]
}

// Enclaves returns all enclaves.
func (fw *Framework) Enclaves() []*Enclave {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	out := make([]*Enclave, 0, len(fw.enclaves))
	for _, e := range fw.enclaves {
		out = append(out, e)
	}
	return out
}

// CreateEnclave allocates resources and prepares (but does not boot) a new
// enclave.
func (fw *Framework) CreateEnclave(spec EnclaveSpec) (*Enclave, error) {
	if spec.NumCores <= 0 {
		return nil, fmt.Errorf("pisces: enclave needs at least one core")
	}
	nodes := spec.Nodes
	if len(nodes) == 0 {
		nodes = []int{0}
	}
	if spec.MemBytes == 0 {
		return nil, fmt.Errorf("pisces: enclave needs memory")
	}

	// Allocate cores round-robin across the requested nodes.
	var cores []int
	perNode := make(map[int]int)
	for i := 0; i < spec.NumCores; i++ {
		perNode[nodes[i%len(nodes)]]++
	}
	for _, n := range nodes {
		got, err := fw.Ledger.AllocCores(&fw.Machine.Topo, n, perNode[n])
		if err != nil {
			fw.Ledger.FreeCores(cores)
			return nil, err
		}
		cores = append(cores, got...)
	}

	// Allocate memory split evenly across nodes.
	var mem []hw.Extent
	per := spec.MemBytes / uint64(len(nodes))
	for _, n := range nodes {
		ext, err := fw.Ledger.AllocMemory(n, per)
		if err != nil {
			for _, e := range mem {
				fw.Ledger.FreeMemory(e)
			}
			fw.Ledger.FreeCores(cores)
			return nil, err
		}
		mem = append(mem, ext)
	}

	id := fw.allocID()

	// Delegate one memory capability per extent from the host root: the
	// enclave's authority over its own memory is explicit from birth, and
	// dies (recursively, through anything it delegated onward) with it.
	memCaps := make([]authority.Cap, len(mem))
	for i, e := range mem {
		c, err := fw.Auth.Delegate(fw.RootMem, id,
			authority.RightRead|authority.RightWrite|authority.RightMap|authority.RightDelegate,
			authority.MemScope(e.Start, e.Size), fmt.Sprintf("%s/mem%d", spec.Name, i))
		if err != nil {
			return nil, fmt.Errorf("pisces: mint memory cap: %w", err)
		}
		memCaps[i] = c
	}

	enc := &Enclave{
		ID:        id,
		Name:      spec.Name,
		Cores:     cores,
		mem:       mem,
		memCaps:   memCaps,
		state:     StateCreated,
		done:      make(chan struct{}),
		reclaimed: make(chan struct{}),
		fw:        fw,
	}

	// Lay out control channels in the reserved head of the first extent.
	// Rings shut down when the enclave stops OR the whole node crashes.
	ringDone := make(chan struct{})
	go func() {
		select {
		case <-enc.done:
		case <-fw.Machine.CrashedCh():
		}
		close(ringDone)
	}()
	base := mem[0].Start
	enc.CtlReq = NewRing(base+OffCtlReqRing, ringDone)
	enc.CtlResp = NewRing(base+OffCtlRespRing, ringDone)
	enc.LcReq = NewRing(base+OffLcReqRing, ringDone)
	enc.LcResp = NewRing(base+OffLcRespRing, ringDone)
	for _, r := range []*Ring{enc.CtlReq, enc.CtlResp, enc.LcReq, enc.LcResp} {
		if err := r.Init(fw.hostIO); err != nil {
			return nil, fmt.Errorf("pisces: ring init: %w", err)
		}
	}

	memRefs := make([]authority.Ref, len(memCaps))
	for i, c := range memCaps {
		memRefs[i] = c.Ref()
	}
	bp := &BootParams{
		EnclaveID:   uint64(id),
		Cores:       cores,
		Mem:         mem,
		MemCaps:     memRefs,
		CtlReqRing:  base + OffCtlReqRing,
		CtlRespRing: base + OffCtlRespRing,
		LcReqRing:   base + OffLcReqRing,
		LcRespRing:  base + OffLcRespRing,
	}
	if spec.Heartbeat {
		bp.Heartbeat = base + OffHeartbeat
		// The extent may be recycled from a previous enclave; a stale beat
		// record would look like instant liveness to the watchdog.
		for _, off := range []uint64{HbCount, HbTSC} {
			if err := fw.hostIO.Write64(bp.Heartbeat+off, 0); err != nil {
				return nil, fmt.Errorf("pisces: heartbeat init: %w", err)
			}
		}
	}
	if err := EncodeBootParams(fw.hostIO, base+OffBootParams, bp); err != nil {
		return nil, fmt.Errorf("pisces: boot params: %w", err)
	}

	fw.register(enc)
	if err := fw.emit(&Event{Kind: EvCreated, Enclave: enc}); err != nil {
		return nil, err
	}
	return enc, nil
}

// Boot launches kernel inside enc, interposing the registered boot
// interposer (if any) on every core first.
func (fw *Framework) Boot(enc *Enclave, kernel Bootable) error {
	if s := enc.State(); s != StateCreated {
		return fmt.Errorf("pisces: enclave %d is %s, cannot boot", enc.ID, s)
	}
	enc.setState(StateBooting)
	// Reset the cores: they may carry kill latches and a stale
	// virtualization layer from a previous enclave that crashed on them.
	for _, cpu := range enc.CPUs() {
		cpu.Revive()
		cpu.Virt = nil
		cpu.SetIRQHandler(nil)
		cpu.SetNMIHandler(nil)
		cpu.TLB.FlushAll()
	}
	if err := fw.emit(&Event{Kind: EvBootPre, Enclave: enc}); err != nil {
		enc.setState(StateCreated)
		return err
	}

	bpAddr := enc.Base() + OffBootParams
	if interp := fw.interposer(); interp != nil {
		for _, cpu := range enc.CPUs() {
			if err := interp.InterposeBoot(enc, cpu, bpAddr); err != nil {
				enc.setState(StateCreated)
				return fmt.Errorf("pisces: boot interposer on cpu %d: %w", cpu.ID, err)
			}
		}
	}

	params, err := DecodeBootParams(fw.hostIO, bpAddr)
	if err != nil {
		enc.setState(StateCreated)
		return err
	}
	bc := &BootContext{Machine: fw.Machine, Enclave: enc, Params: params, Auth: fw.Auth}
	if err := kernel.Boot(bc); err != nil {
		enc.setState(StateCreated)
		return fmt.Errorf("pisces: kernel boot: %w", err)
	}
	enc.setRunning(kernel)
	return fw.emit(&Event{Kind: EvBooted, Enclave: enc})
}

// sendCtl issues one control command and waits for the enclave's ack.
func (fw *Framework) sendCtl(enc *Enclave, m *Msg) (*Msg, error) {
	if fw.Machine.Crashed() {
		return nil, fmt.Errorf("pisces: node is down")
	}
	enc.ctlMu.Lock()
	defer enc.ctlMu.Unlock()
	enc.ctlSeq++
	m.Seq = enc.ctlSeq
	if err := enc.CtlReq.Push(fw.hostIO, m); err != nil {
		return nil, err
	}
	// Doorbell: kick the enclave's boot core.
	fw.Machine.RouteIPI(-1, enc.Cores[0], VectorCtl)
	var resp Msg
	if err := enc.CtlResp.Pop(fw.hostIO, &resp); err != nil {
		return nil, err
	}
	if resp.Seq != m.Seq {
		return nil, fmt.Errorf("pisces: ctl ack seq %d, want %d", resp.Seq, m.Seq)
	}
	if resp.Type == AckErr {
		return &resp, fmt.Errorf("pisces: enclave %d rejected command %d", enc.ID, m.Type)
	}
	return &resp, nil
}

// Ping round-trips a no-op control command (liveness check).
func (fw *Framework) Ping(enc *Enclave) error {
	_, err := fw.sendCtl(enc, &Msg{Type: CmdPing})
	return err
}

// AddMemory grows the enclave by size bytes on node. The extent is made
// visible to protection layers (EvMemAddPre) before the enclave is told
// about it, preserving Covirt's map-before-notify ordering.
func (fw *Framework) AddMemory(enc *Enclave, node int, size uint64) (hw.Extent, error) {
	if enc.State() != StateRunning {
		return hw.Extent{}, fmt.Errorf("pisces: enclave %d not running", enc.ID)
	}
	ext, err := fw.Ledger.AllocMemory(node, size)
	if err != nil {
		return hw.Extent{}, err
	}
	cap, err := fw.Auth.Delegate(fw.RootMem, enc.ID,
		authority.RightRead|authority.RightWrite|authority.RightMap|authority.RightDelegate,
		authority.MemScope(ext.Start, ext.Size), fmt.Sprintf("%s/mem-add", enc.Name))
	if err != nil {
		fw.Ledger.FreeMemory(ext)
		return hw.Extent{}, err
	}
	if err := fw.emit(&Event{Kind: EvMemAddPre, Enclave: enc, Extent: ext, Cap: cap}); err != nil {
		_, _ = fw.Auth.Revoke(cap)
		fw.Ledger.FreeMemory(ext)
		return hw.Extent{}, err
	}
	var m Msg
	m.Type = CmdMemAdd
	put64(m.Payload[:], 0, ext.Start)
	put64(m.Payload[:], 8, ext.Size)
	put64(m.Payload[:], 16, uint64(ext.Node))
	// The grant names its capability on the wire; the co-kernel verifies
	// the reference against the shared table before adopting the extent.
	put64(m.Payload[:], 24, cap.Ref().ID)
	put64(m.Payload[:], 32, cap.Ref().Gen)
	if _, err := fw.sendCtl(enc, &m); err != nil {
		// The enclave rejected (or died before accepting) the grant: undo
		// the protection-layer mapping before reclaiming, or the enclave
		// would retain hardware access to memory it never accepted.
		_ = fw.emit(&Event{Kind: EvMemRemovePost, Enclave: enc, Extent: ext, Cap: cap})
		_, _ = fw.Auth.Revoke(cap)
		fw.Ledger.FreeMemory(ext)
		return hw.Extent{}, err
	}
	enc.appendMem(ext, cap)
	return ext, nil
}

// RemoveMemory shrinks the enclave by the given extent. The enclave
// relinquishes the memory first; only then do protection layers unmap and
// flush (EvMemRemovePost), and only after that is the memory reclaimed.
func (fw *Framework) RemoveMemory(enc *Enclave, ext hw.Extent) error {
	if enc.State() != StateRunning {
		return fmt.Errorf("pisces: enclave %d not running", enc.ID)
	}
	found := enc.memIndex(ext)
	if found < 0 {
		return fmt.Errorf("pisces: extent %v not removable from enclave %d", ext, enc.ID)
	}
	var m Msg
	m.Type = CmdMemRemove
	put64(m.Payload[:], 0, ext.Start)
	put64(m.Payload[:], 8, ext.Size)
	if _, err := fw.sendCtl(enc, &m); err != nil {
		return err
	}
	cap := enc.dropMem(found)
	if err := fw.emit(&Event{Kind: EvMemRemovePost, Enclave: enc, Extent: ext, Cap: cap}); err != nil {
		return err
	}
	// Protection teardown already ran through the event; the key itself
	// (and anything the enclave delegated from it) dies here.
	if !cap.Zero() {
		_, _ = fw.Auth.Revoke(cap)
	}
	fw.Ledger.FreeMemory(ext)
	return nil
}

// RemoveMemoryBatch shrinks the enclave by several extents as one batched
// operation. Each extent is relinquished and evented exactly as in
// RemoveMemory, but the events are marked as a batch so protection layers
// can coalesce their TLB shootdowns into one invalidation per core at the
// batch's final event. Reclaim (key revocation and ledger free) happens
// only after the whole batch has been flushed, so the
// unmap-flush-before-reclaim ordering holds at batch granularity: no frame
// returns to the allocator while any enclave core could still hold a
// translation to it. On a mid-batch failure the already-relinquished
// extents are flushed (via a closing zero-extent event) and reclaimed
// before the error is reported; the failing extent and its successors stay
// with the enclave.
func (fw *Framework) RemoveMemoryBatch(enc *Enclave, exts []hw.Extent) error {
	if len(exts) == 0 {
		return nil
	}
	if enc.State() != StateRunning {
		return fmt.Errorf("pisces: enclave %d not running", enc.ID)
	}
	for _, ext := range exts {
		if enc.memIndex(ext) < 0 {
			return fmt.Errorf("pisces: extent %v not removable from enclave %d", ext, enc.ID)
		}
	}
	type relinquished struct {
		ext hw.Extent
		cap authority.Cap
	}
	var flushed []relinquished
	var firstErr error
	for i, ext := range exts {
		idx := enc.memIndex(ext)
		if idx < 0 {
			firstErr = fmt.Errorf("pisces: extent %v vanished from enclave %d mid-batch", ext, enc.ID)
			break
		}
		var m Msg
		m.Type = CmdMemRemove
		put64(m.Payload[:], 0, ext.Start)
		put64(m.Payload[:], 8, ext.Size)
		if _, err := fw.sendCtl(enc, &m); err != nil {
			firstErr = err
			break
		}
		cap := enc.dropMem(idx)
		flushed = append(flushed, relinquished{ext, cap})
		ev := &Event{Kind: EvMemRemovePost, Enclave: enc, Extent: ext, Cap: cap, MoreInBatch: i < len(exts)-1}
		if err := fw.emit(ev); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		// The batch aborted with its closing event unsent: emit a
		// zero-extent closer so deferred shootdowns run before anything
		// is reclaimed.
		_ = fw.emit(&Event{Kind: EvMemRemovePost, Enclave: enc})
	}
	for _, r := range flushed {
		if !r.cap.Zero() {
			_, _ = fw.Auth.Revoke(r.cap)
		}
		fw.Ledger.FreeMemory(r.ext)
	}
	return firstErr
}

// AddCPU hot-adds an offline core from node to a running enclave. The
// protection layer sees the core first (EvCPUAddPre: build the per-core
// virtualization context and launch the hypervisor) and only then is the
// co-kernel told to online it.
func (fw *Framework) AddCPU(enc *Enclave, node int) (int, error) {
	if enc.State() != StateRunning {
		return -1, fmt.Errorf("pisces: enclave %d not running", enc.ID)
	}
	cores, err := fw.Ledger.AllocCores(&fw.Machine.Topo, node, 1)
	if err != nil {
		return -1, err
	}
	core := cores[0]
	cpu := fw.Machine.CPU(core)
	cpu.Revive()
	cpu.Virt = nil
	cpu.SetIRQHandler(nil)
	cpu.SetNMIHandler(nil)
	cpu.TLB.FlushAll()
	if err := fw.emit(&Event{Kind: EvCPUAddPre, Enclave: enc, Core: core}); err != nil {
		fw.Ledger.FreeCores(cores)
		return -1, err
	}
	if interp := fw.interposer(); interp != nil {
		if err := interp.InterposeBoot(enc, cpu, enc.Base()+OffBootParams); err != nil {
			fw.Ledger.FreeCores(cores)
			return -1, err
		}
	}
	var m Msg
	m.Type = CmdCPUAdd
	put64(m.Payload[:], 0, uint64(core))
	if _, err := fw.sendCtl(enc, &m); err != nil {
		_ = fw.emit(&Event{Kind: EvCPURemovePost, Enclave: enc, Core: core})
		fw.Ledger.FreeCores(cores)
		return -1, err
	}
	enc.appendCore(core)
	return core, nil
}

// RemoveCPU offlines a core from a running enclave: the co-kernel
// relinquishes it first (rejecting if it is busy), then the protection
// layer tears down that core's context, then the host reclaims it. The
// enclave's boot core cannot be removed.
func (fw *Framework) RemoveCPU(enc *Enclave, core int) error {
	if enc.State() != StateRunning {
		return fmt.Errorf("pisces: enclave %d not running", enc.ID)
	}
	idx := enc.coreIndex(core)
	if idx < 0 {
		return fmt.Errorf("pisces: core %d not removable from enclave %d", core, enc.ID)
	}
	var m Msg
	m.Type = CmdCPURemove
	put64(m.Payload[:], 0, uint64(core))
	if _, err := fw.sendCtl(enc, &m); err != nil {
		return err
	}
	enc.dropCore(idx)
	if err := fw.emit(&Event{Kind: EvCPURemovePost, Enclave: enc, Core: core}); err != nil {
		return err
	}
	cpu := fw.Machine.CPU(core)
	cpu.Virt = nil
	cpu.SetIRQHandler(nil)
	fw.Ledger.FreeCores([]int{core})
	return nil
}

// ReportCrash is called (by the Covirt hypervisor, or host-side detection)
// when an enclave has been terminated. The framework reclaims the enclave's
// resources and notifies dependents — the master control process's cleanup
// duty in the paper.
func (fw *Framework) ReportCrash(enc *Enclave, reason string) {
	mem, ok := enc.beginTeardown(StateCrashed, reason)
	if !ok {
		return
	}

	close(enc.done)
	enc.CloseRings()
	for _, cpu := range enc.CPUs() {
		cpu.Kill()
	}
	kernel := enc.Kernel()
	if kernel != nil {
		kernel.Shutdown()
	}
	_ = fw.emit(&Event{Kind: EvCrashed, Enclave: enc, Reason: reason})
	// A dead enclave holds no authority: every key it held — and every key
	// delegated from those (shared segments, narrowed grants to peers) —
	// dies with it, closing the stale-owner window.
	fw.Auth.RevokeHolder(enc.ID)
	for _, e := range mem {
		fw.Ledger.FreeMemory(e)
	}
	// The crash report may originate from one of the enclave's own
	// execution contexts (the hypervisor's exit handler), so waiting for
	// the kernel to quiesce must happen off to the side; the cores return
	// to the pool only once no stale context can touch them.
	go func() {
		if q, ok := kernel.(Quiescer); ok {
			q.Quiesce()
		}
		fw.Ledger.FreeCores(enc.Cores)
		close(enc.reclaimed)
	}()
}

// Destroy gracefully stops a running enclave and reclaims its resources.
func (fw *Framework) Destroy(enc *Enclave) error {
	if enc.State() == StateRunning && !fw.Machine.Crashed() {
		_, _ = fw.sendCtl(enc, &Msg{Type: CmdShutdown})
	}
	mem, ok := enc.beginTeardown(StateStopped, "")
	if !ok {
		return nil
	}

	close(enc.done)
	enc.CloseRings()
	kernel := enc.Kernel()
	if kernel != nil {
		kernel.Shutdown()
	}
	for _, cpu := range enc.CPUs() {
		cpu.Kill()
	}
	// Destroy runs in a management context, never on an enclave core, so
	// the kernel can be quiesced synchronously before the hardware is
	// recycled.
	if q, ok := kernel.(Quiescer); ok {
		q.Quiesce()
	}
	err := fw.emit(&Event{Kind: EvDestroyed, Enclave: enc})
	fw.Auth.RevokeHolder(enc.ID)
	for _, e := range mem {
		fw.Ledger.FreeMemory(e)
	}
	fw.Ledger.FreeCores(enc.Cores)
	close(enc.reclaimed)
	fw.unregister(enc.ID)
	return err
}

// unregister drops an enclave from the table.
func (fw *Framework) unregister(encID int) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	delete(fw.enclaves, encID)
}

// RegisterIoctl extends the framework's control ABI with a new command —
// the hook Covirt's userspace controller uses ("piggy-backs on the Pisces
// kernel ABI by adding a new set of ioctl commands").
func (fw *Framework) RegisterIoctl(cmd uint32, h func(arg any) (any, error)) error {
	fw.ioctlMu.Lock()
	defer fw.ioctlMu.Unlock()
	if _, dup := fw.ioctls[cmd]; dup {
		return fmt.Errorf("pisces: ioctl %#x already registered", cmd)
	}
	fw.ioctls[cmd] = h
	return nil
}

// ioctlFor looks up an extension handler under the lock; the handler runs
// outside it (handlers call back into the framework).
func (fw *Framework) ioctlFor(cmd uint32) func(arg any) (any, error) {
	fw.ioctlMu.Lock()
	defer fw.ioctlMu.Unlock()
	return fw.ioctls[cmd]
}

// Ioctl dispatches an extension command.
func (fw *Framework) Ioctl(cmd uint32, arg any) (any, error) {
	h := fw.ioctlFor(cmd)
	if h == nil {
		return nil, fmt.Errorf("pisces: unknown ioctl %#x", cmd)
	}
	return h(arg)
}
