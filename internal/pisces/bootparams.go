package pisces

import (
	"fmt"

	"covirt/internal/authority"
	"covirt/internal/hw"
)

// BootParamsMagic identifies a Pisces boot-parameter block in memory.
const BootParamsMagic = 0x5049534345530001 // "PISCES\0\1"

// Limits of the fixed-layout boot parameter block.
const (
	MaxBootCores   = 16
	MaxBootExtents = 16
)

// Reserved layout inside an enclave's first memory extent. The co-kernel
// treats this area as kernel data; applications never receive it.
const (
	OffBootParams   = 0x0000
	OffCtlReqRing   = 0x1000
	OffCtlRespRing  = 0x2000
	OffLcReqRing    = 0x3000
	OffLcRespRing   = 0x4000
	OffCovirtParams = 0x5000 // Covirt boot-parameter block (hypervisor-owned)
	OffHeartbeat    = 0x7000 // liveness heartbeat page (supervisor-watched)
	// OffCovirtCmdQ is the Covirt controller->hypervisor command-queue
	// array: one 4 KiB ring per core, MaxBootCores rings. It sits above
	// the longcall data window so a full 16-core enclave's queues cannot
	// collide with the heartbeat page or the data window (the old 0x6000
	// placement left room for only 8 cores before running into 0x7000).
	OffCovirtCmdQ = 0x10000
	ReservedBytes = 0x20000
)

// Heartbeat page layout: two 64-bit words the supervised co-kernel writes
// from its boot core's timer interrupt and the host-side watchdog reads
// natively. The count is monotonic; the TSC records the boot core's cycle
// counter at the moment of the beat, so "missed beats" can be judged
// against the core's own elapsed cycles rather than any wall clock.
const (
	HbCount = 0 // offset of the monotonic beat counter
	HbTSC   = 8 // offset of the boot core's TSC at the last beat
)

// Interrupt vectors used by the co-kernel control plane.
const (
	VectorCtl   uint8 = 0xF2 // host -> enclave: control command pending
	VectorTimer uint8 = 0xEF // local APIC timer
)

// BootParams is the boot-parameter structure Pisces passes to a co-kernel:
// the assigned hardware plus the communication channels used to coordinate
// with the master control process. Covirt wraps (but does not modify) this
// block; the co-kernel always sees the original.
type BootParams struct {
	EnclaveID uint64
	Cores     []int
	Mem       []hw.Extent
	// MemCaps carries the capability reference for each extent in Mem
	// (parallel slices). The co-kernel resolves and verifies each key
	// against the node's table before adopting the extent.
	MemCaps []authority.Ref

	CtlReqRing  uint64
	CtlRespRing uint64
	LcReqRing   uint64
	LcRespRing  uint64

	// CovirtParams points at the Covirt boot-parameter block, or 0 when
	// the enclave boots bare. The co-kernel itself never reads this; it is
	// consumed by the interposed hypervisor.
	CovirtParams uint64

	// Heartbeat points at the liveness heartbeat page the co-kernel must
	// beat from its boot core's timer interrupt, or 0 when the enclave is
	// unsupervised (no beats, no extra cycles charged).
	Heartbeat uint64
}

// bootParamsBytes is the serialized size (fits well inside one 4K page):
// each extent record carries (start, size, node) plus its 16-byte
// capability reference.
const bootParamsBytes = 8 + 8 + 8 + MaxBootCores*8 + 8 + MaxBootExtents*(24+16) + 6*8

// EncodeBootParams writes bp at addr via io.
func EncodeBootParams(io MemIO, addr uint64, bp *BootParams) error {
	if len(bp.Cores) > MaxBootCores {
		return fmt.Errorf("pisces: %d cores exceeds boot-param limit %d", len(bp.Cores), MaxBootCores)
	}
	if len(bp.Mem) > MaxBootExtents {
		return fmt.Errorf("pisces: %d extents exceeds boot-param limit %d", len(bp.Mem), MaxBootExtents)
	}
	buf := make([]byte, bootParamsBytes)
	off := 0
	w := func(v uint64) { put64(buf, off, v); off += 8 }
	w(BootParamsMagic)
	w(bp.EnclaveID)
	w(uint64(len(bp.Cores)))
	for i := 0; i < MaxBootCores; i++ {
		if i < len(bp.Cores) {
			w(uint64(bp.Cores[i]))
		} else {
			w(0)
		}
	}
	w(uint64(len(bp.Mem)))
	for i := 0; i < MaxBootExtents; i++ {
		var ref authority.Ref
		if i < len(bp.MemCaps) {
			ref = bp.MemCaps[i]
		}
		if i < len(bp.Mem) {
			w(bp.Mem[i].Start)
			w(bp.Mem[i].Size)
			w(uint64(bp.Mem[i].Node))
		} else {
			w(0)
			w(0)
			w(0)
		}
		w(ref.ID)
		w(ref.Gen)
	}
	w(bp.CtlReqRing)
	w(bp.CtlRespRing)
	w(bp.LcReqRing)
	w(bp.LcRespRing)
	w(bp.CovirtParams)
	w(bp.Heartbeat)
	return io.WriteBytes(addr, buf)
}

// DecodeBootParams reads a boot-parameter block at addr via io, validating
// the magic.
func DecodeBootParams(io MemIO, addr uint64) (*BootParams, error) {
	buf := make([]byte, bootParamsBytes)
	if err := io.ReadBytes(addr, buf); err != nil {
		return nil, err
	}
	off := 0
	r := func() uint64 { v := get64(buf, off); off += 8; return v }
	if m := r(); m != BootParamsMagic {
		return nil, fmt.Errorf("pisces: bad boot-param magic %#x at %#x", m, addr)
	}
	bp := &BootParams{EnclaveID: r()}
	n := int(r())
	if n > MaxBootCores {
		return nil, fmt.Errorf("pisces: corrupt core count %d", n)
	}
	for i := 0; i < MaxBootCores; i++ {
		v := int(r())
		if i < n {
			bp.Cores = append(bp.Cores, v)
		}
	}
	ne := int(r())
	if ne > MaxBootExtents {
		return nil, fmt.Errorf("pisces: corrupt extent count %d", ne)
	}
	for i := 0; i < MaxBootExtents; i++ {
		s, sz, nd := r(), r(), r()
		cid, cgen := r(), r()
		if i < ne {
			bp.Mem = append(bp.Mem, hw.Extent{Start: s, Size: sz, Node: int(nd)})
			bp.MemCaps = append(bp.MemCaps, authority.Ref{ID: cid, Gen: cgen})
		}
	}
	bp.CtlReqRing = r()
	bp.CtlRespRing = r()
	bp.LcReqRing = r()
	bp.LcRespRing = r()
	bp.CovirtParams = r()
	bp.Heartbeat = r()
	return bp, nil
}
