package pisces

import (
	"fmt"
	"sync"

	"covirt/internal/hw"
)

// State is an enclave's lifecycle state.
type State int

// Enclave lifecycle states.
const (
	StateCreated State = iota
	StateBooting
	StateRunning
	StateCrashed
	StateStopped
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateBooting:
		return "booting"
	case StateRunning:
		return "running"
	case StateCrashed:
		return "crashed"
	case StateStopped:
		return "stopped"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Enclave is one hardware partition running an independent OS/R.
type Enclave struct {
	ID    int
	Name  string
	Cores []int

	mu          sync.Mutex
	mem         []hw.Extent
	state       State
	crashReason string

	// Control-plane channels (created by the framework).
	CtlReq  *Ring // host -> enclave commands
	CtlResp *Ring // enclave -> host acks
	LcReq   *Ring // enclave -> host longcalls
	LcResp  *Ring // host -> enclave longcall results

	// done closes when the enclave stops or crashes; rings unblock on it.
	done chan struct{}
	// reclaimed closes once every resource (cores included) has returned
	// to the pool and no stale execution context remains.
	reclaimed chan struct{}

	kernel Bootable
	fw     *Framework

	ctlSeq uint32
	ctlMu  sync.Mutex // serializes control commands
}

// Base returns the start of the enclave's first memory extent, which hosts
// the reserved boot-parameter/ring area.
func (e *Enclave) Base() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mem[0].Start
}

// Mem returns a snapshot of the enclave's assigned memory extents.
func (e *Enclave) Mem() []hw.Extent {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]hw.Extent, len(e.mem))
	copy(out, e.mem)
	return out
}

// State returns the enclave's lifecycle state.
func (e *Enclave) State() State {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state
}

// CrashReason returns the recorded crash cause, if any.
func (e *Enclave) CrashReason() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashReason
}

// Done returns a channel closed when the enclave stops or crashes.
func (e *Enclave) Done() <-chan struct{} { return e.done }

// Reclaimed returns a channel closed when teardown has fully completed:
// the kernel quiesced and all hardware returned to the resource pool.
func (e *Enclave) Reclaimed() <-chan struct{} { return e.reclaimed }

// CloseRings shuts down the enclave's control and longcall channels,
// releasing any endpoint blocked on them. Called during teardown before
// the backing memory can be reused.
func (e *Enclave) CloseRings() {
	for _, r := range []*Ring{e.CtlReq, e.CtlResp, e.LcReq, e.LcResp} {
		if r != nil {
			r.Close()
		}
	}
}

// Kernel returns the booted co-kernel, or nil before boot.
func (e *Enclave) Kernel() Bootable {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.kernel
}

// setState transitions the lifecycle state.
func (e *Enclave) setState(s State) {
	e.mu.Lock()
	e.state = s
	e.mu.Unlock()
}

// CPUs resolves the enclave's cores to simulated CPUs.
func (e *Enclave) CPUs() []*hw.CPU {
	out := make([]*hw.CPU, 0, len(e.Cores))
	for _, id := range e.Cores {
		out = append(out, e.fw.Machine.CPU(id))
	}
	return out
}

// BootCPU returns the enclave's boot core (first assigned core).
func (e *Enclave) BootCPU() *hw.CPU { return e.fw.Machine.CPU(e.Cores[0]) }

// OwnsAddr reports whether addr lies in the enclave's assigned memory.
func (e *Enclave) OwnsAddr(addr uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, x := range e.mem {
		if x.Contains(addr) {
			return true
		}
	}
	return false
}
