package pisces

import (
	"fmt"
	"sync"

	"covirt/internal/authority"
	"covirt/internal/hw"
)

// State is an enclave's lifecycle state.
type State int

// Enclave lifecycle states.
const (
	StateCreated State = iota
	StateBooting
	StateRunning
	StateCrashed
	StateStopped
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateBooting:
		return "booting"
	case StateRunning:
		return "running"
	case StateCrashed:
		return "crashed"
	case StateStopped:
		return "stopped"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Enclave is one hardware partition running an independent OS/R.
type Enclave struct {
	ID    int
	Name  string
	Cores []int

	mu          sync.Mutex
	mem         []hw.Extent
	memCaps     []authority.Cap // parallel to mem: the key for each extent
	state       State
	crashReason string

	// Control-plane channels (created by the framework).
	CtlReq  *Ring // host -> enclave commands
	CtlResp *Ring // enclave -> host acks
	LcReq   *Ring // enclave -> host longcalls
	LcResp  *Ring // host -> enclave longcall results

	// done closes when the enclave stops or crashes; rings unblock on it.
	done chan struct{}
	// reclaimed closes once every resource (cores included) has returned
	// to the pool and no stale execution context remains.
	reclaimed chan struct{}

	kernel Bootable
	fw     *Framework

	ctlSeq uint32
	ctlMu  sync.Mutex // serializes control commands
}

// Base returns the start of the enclave's first memory extent, which hosts
// the reserved boot-parameter/ring area.
func (e *Enclave) Base() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mem[0].Start
}

// Mem returns a snapshot of the enclave's assigned memory extents.
func (e *Enclave) Mem() []hw.Extent {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]hw.Extent, len(e.mem))
	copy(out, e.mem)
	return out
}

// State returns the enclave's lifecycle state.
func (e *Enclave) State() State {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state
}

// CrashReason returns the recorded crash cause, if any.
func (e *Enclave) CrashReason() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashReason
}

// Done returns a channel closed when the enclave stops or crashes.
func (e *Enclave) Done() <-chan struct{} { return e.done }

// Reclaimed returns a channel closed when teardown has fully completed:
// the kernel quiesced and all hardware returned to the resource pool.
func (e *Enclave) Reclaimed() <-chan struct{} { return e.reclaimed }

// CloseRings shuts down the enclave's control and longcall channels,
// releasing any endpoint blocked on them. Called during teardown before
// the backing memory can be reused.
func (e *Enclave) CloseRings() {
	for _, r := range []*Ring{e.CtlReq, e.CtlResp, e.LcReq, e.LcResp} {
		if r != nil {
			r.Close()
		}
	}
}

// Kernel returns the booted co-kernel, or nil before boot.
func (e *Enclave) Kernel() Bootable {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.kernel
}

// setState transitions the lifecycle state.
func (e *Enclave) setState(s State) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.state = s
}

// setRunning publishes the booted kernel and marks the enclave running.
func (e *Enclave) setRunning(kernel Bootable) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.kernel = kernel
	e.state = StateRunning
}

// beginTeardown transitions to a terminal state (StateCrashed or
// StateStopped) and snapshots the memory assignment for reclaim. It
// reports false if the enclave already reached a terminal state, so crash
// and destroy paths cannot double-tear-down.
func (e *Enclave) beginTeardown(final State, crashReason string) ([]hw.Extent, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state == StateCrashed || e.state == StateStopped {
		return nil, false
	}
	e.state = final
	if final == StateCrashed {
		e.crashReason = crashReason
	}
	return append([]hw.Extent(nil), e.mem...), true
}

// appendMem records a hot-added memory extent with its capability.
func (e *Enclave) appendMem(ext hw.Extent, cap authority.Cap) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mem = append(e.mem, ext)
	e.memCaps = append(e.memCaps, cap)
}

// memIndex locates a removable extent; extent 0 holds the reserved area
// and is never removable. Returns -1 if absent.
func (e *Enclave) memIndex(ext hw.Extent) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, x := range e.mem {
		if i > 0 && x == ext {
			return i
		}
	}
	return -1
}

// dropMem removes the extent at index i, returning its capability so the
// caller can revoke it after protection teardown.
func (e *Enclave) dropMem(i int) authority.Cap {
	e.mu.Lock()
	defer e.mu.Unlock()
	cap := e.memCaps[i]
	e.mem = append(e.mem[:i], e.mem[i+1:]...)
	e.memCaps = append(e.memCaps[:i], e.memCaps[i+1:]...)
	return cap
}

// appendCore records a hot-added core.
func (e *Enclave) appendCore(core int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.Cores = append(e.Cores, core)
}

// coreIndex locates a removable core; index 0 is the boot core and never
// removable. Returns -1 if absent.
func (e *Enclave) coreIndex(core int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, c := range e.Cores {
		if i > 0 && c == core {
			return i
		}
	}
	return -1
}

// dropCore removes the core at index i.
func (e *Enclave) dropCore(i int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.Cores = append(e.Cores[:i], e.Cores[i+1:]...)
}

// CPUs resolves the enclave's cores to simulated CPUs.
func (e *Enclave) CPUs() []*hw.CPU {
	out := make([]*hw.CPU, 0, len(e.Cores))
	for _, id := range e.Cores {
		out = append(out, e.fw.Machine.CPU(id))
	}
	return out
}

// BootCPU returns the enclave's boot core (first assigned core).
func (e *Enclave) BootCPU() *hw.CPU { return e.fw.Machine.CPU(e.Cores[0]) }

// MemCaps returns a snapshot of the enclave's memory capabilities,
// parallel to Mem().
func (e *Enclave) MemCaps() []authority.Cap {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]authority.Cap, len(e.memCaps))
	copy(out, e.memCaps)
	return out
}

// CapForAddr returns the memory capability covering addr, if any. Host
// services use it to resolve a guest request's backing authority — the
// guest names addresses, the host names keys — so a guest can never
// exercise authority over memory it was not granted.
func (e *Enclave) CapForAddr(addr uint64) (authority.Cap, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, x := range e.mem {
		if x.Contains(addr) && i < len(e.memCaps) {
			return e.memCaps[i], true
		}
	}
	return authority.Cap{}, false
}

// OwnsAddr reports whether addr lies in the enclave's assigned memory.
func (e *Enclave) OwnsAddr(addr uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, x := range e.mem {
		if x.Contains(addr) {
			return true
		}
	}
	return false
}
