package pisces_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"covirt/internal/hw"
	"covirt/internal/pisces"
	"covirt/internal/testbed"
)

// stubKernel is a minimal Bootable that services the control ring from an
// idle loop, accepting or rejecting commands per configuration.
type stubKernel struct {
	acceptMem bool

	bc     *pisces.BootContext
	done   chan struct{}
	stop   sync.Once
	wg     sync.WaitGroup
	booted bool

	mu     sync.Mutex
	memAdd []hw.Extent
}

func newStubKernel(acceptMem bool) *stubKernel {
	return &stubKernel{acceptMem: acceptMem, done: make(chan struct{})}
}

func (s *stubKernel) Boot(bc *pisces.BootContext) error {
	s.bc = bc
	s.booted = true
	for _, id := range bc.Params.Cores {
		cpu := bc.Machine.CPU(id)
		cpu.SetIRQHandler(func(c *hw.CPU, vector uint8, external bool) {
			if vector == pisces.VectorCtl {
				s.drainCtl(c)
			}
		})
		s.wg.Add(1)
		go func(c *hw.CPU) {
			defer s.wg.Done()
			for {
				select {
				case <-s.done:
					return
				default:
				}
				if err := c.Idle(s.done); err != nil {
					return
				}
			}
		}(cpu)
	}
	return nil
}

func (s *stubKernel) drainCtl(c *hw.CPU) {
	io := pisces.CPUMemIO{CPU: c}
	for {
		var m pisces.Msg
		ok, err := s.bc.Enclave.CtlReq.TryPop(io, &m)
		if err != nil || !ok {
			return
		}
		resp := pisces.Msg{Type: pisces.AckOK, Seq: m.Seq}
		switch m.Type {
		case pisces.CmdPing:
		case pisces.CmdMemAdd:
			if s.acceptMem {
				s.recordMemAdd()
			} else {
				resp.Type = pisces.AckErr
			}
		case pisces.CmdMemRemove:
			if !s.acceptMem {
				resp.Type = pisces.AckErr
			}
		case pisces.CmdShutdown:
			_ = s.bc.Enclave.CtlResp.Push(io, &resp)
			go s.Shutdown()
			return
		default:
			resp.Type = pisces.AckErr
		}
		if err := s.bc.Enclave.CtlResp.Push(io, &resp); err != nil {
			return
		}
	}
}

func (s *stubKernel) Shutdown() {
	s.stop.Do(func() {
		close(s.done)
		if s.bc != nil {
			for _, cpu := range s.bc.Enclave.CPUs() {
				cpu.APIC.RaiseNMI()
			}
		}
	})
}

func (s *stubKernel) Quiesce() { s.wg.Wait() }

func (s *stubKernel) recordMemAdd() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.memAdd = append(s.memAdd, hw.Extent{})
}

// fwFixture builds a host with donated resources via the testbed layer and
// hands back the machine plus its Pisces framework.
func fwFixture(t *testing.T) (*hw.Machine, *pisces.Framework) {
	t.Helper()
	spec := hw.DefaultSpec()
	spec.MemPerNode = 2 << 30
	var cores []int
	offMem := make(map[int]uint64)
	for n := 0; n < spec.NumNodes; n++ {
		for c := 1; c < spec.CoresPerNode; c++ {
			cores = append(cores, n*spec.CoresPerNode+c)
		}
		offMem[n] = 1 << 30
	}
	node, err := testbed.Spec{
		Machine:      spec,
		OfflineCores: cores,
		OfflineMem:   offMem,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return node.M, node.Host.Pisces
}

func TestCreateEnclaveValidation(t *testing.T) {
	_, fw := fwFixture(t)
	if _, err := fw.CreateEnclave(pisces.EnclaveSpec{Name: "x", NumCores: 0, MemBytes: 1 << 20}); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := fw.CreateEnclave(pisces.EnclaveSpec{Name: "x", NumCores: 1}); err == nil {
		t.Error("zero memory accepted")
	}
	if _, err := fw.CreateEnclave(pisces.EnclaveSpec{Name: "x", NumCores: 50, MemBytes: 1 << 20}); err == nil {
		t.Error("impossible core count accepted")
	}
	if _, err := fw.CreateEnclave(pisces.EnclaveSpec{Name: "x", NumCores: 1, MemBytes: 1 << 45}); err == nil {
		t.Error("impossible memory accepted")
	}
	// Resources from failed creations were rolled back.
	enc, err := fw.CreateEnclave(pisces.EnclaveSpec{Name: "ok", NumCores: 5, Nodes: []int{0}, MemBytes: 1 << 30})
	if err != nil {
		t.Fatalf("rollback leaked resources: %v", err)
	}
	if fw.Enclave(enc.ID) != enc {
		t.Error("lookup failed")
	}
	if len(fw.Enclaves()) != 1 {
		t.Error("enclave list wrong")
	}
}

func TestBootStateMachine(t *testing.T) {
	_, fw := fwFixture(t)
	enc, err := fw.CreateEnclave(pisces.EnclaveSpec{Name: "sm", NumCores: 1, Nodes: []int{0}, MemBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if enc.State() != pisces.StateCreated {
		t.Fatalf("state = %v", enc.State())
	}
	// Operations on a non-running enclave fail.
	if _, err := fw.AddMemory(enc, 0, 1<<20); err == nil {
		t.Error("AddMemory on created enclave accepted")
	}
	if _, err := fw.AddCPU(enc, 0); err == nil {
		t.Error("AddCPU on created enclave accepted")
	}
	k := newStubKernel(true)
	if err := fw.Boot(enc, k); err != nil {
		t.Fatal(err)
	}
	if enc.State() != pisces.StateRunning {
		t.Fatalf("state = %v", enc.State())
	}
	// Double boot is rejected.
	if err := fw.Boot(enc, newStubKernel(true)); err == nil {
		t.Error("double boot accepted")
	}
	if err := fw.Ping(enc); err != nil {
		t.Fatal(err)
	}
	if err := fw.Destroy(enc); err != nil {
		t.Fatal(err)
	}
	if enc.State() != pisces.StateStopped {
		t.Fatalf("state = %v", enc.State())
	}
	// Idempotent destroy.
	if err := fw.Destroy(enc); err != nil {
		t.Fatal(err)
	}
	select {
	case <-enc.Reclaimed():
	default:
		t.Error("reclaimed channel not closed after destroy")
	}
}

func TestBootPreEventAbortsBoot(t *testing.T) {
	_, fw := fwFixture(t)
	sentinel := errors.New("veto")
	fw.Subscribe(func(ev *pisces.Event) error {
		if ev.Kind == pisces.EvBootPre {
			return sentinel
		}
		return nil
	})
	enc, err := fw.CreateEnclave(pisces.EnclaveSpec{Name: "veto", NumCores: 1, Nodes: []int{0}, MemBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Boot(enc, newStubKernel(true)); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if enc.State() != pisces.StateCreated {
		t.Errorf("state after vetoed boot = %v", enc.State())
	}
}

// failingInterposer rejects interposition on a specific core.
type failingInterposer struct{}

func (failingInterposer) InterposeBoot(enc *pisces.Enclave, cpu *hw.CPU, bpAddr uint64) error {
	return fmt.Errorf("no VMX on core %d", cpu.ID)
}

func TestInterposerFailureAbortsBoot(t *testing.T) {
	_, fw := fwFixture(t)
	fw.SetInterposer(failingInterposer{})
	enc, err := fw.CreateEnclave(pisces.EnclaveSpec{Name: "novmx", NumCores: 1, Nodes: []int{0}, MemBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Boot(enc, newStubKernel(true)); err == nil {
		t.Fatal("boot succeeded despite interposer failure")
	}
	if enc.State() != pisces.StateCreated {
		t.Errorf("state = %v", enc.State())
	}
}

func TestMemAddRejectionRollsBack(t *testing.T) {
	_, fw := fwFixture(t)
	enc, _ := fw.CreateEnclave(pisces.EnclaveSpec{Name: "nomem", NumCores: 1, Nodes: []int{0}, MemBytes: 64 << 20})
	if err := fw.Boot(enc, newStubKernel(false)); err != nil { // rejects mem ops
		t.Fatal(err)
	}
	defer fw.Destroy(enc)
	free := fw.Ledger.FreeBytes(0)
	var sawRollback bool
	fw.Subscribe(func(ev *pisces.Event) error {
		if ev.Kind == pisces.EvMemRemovePost {
			sawRollback = true
		}
		return nil
	})
	if _, err := fw.AddMemory(enc, 0, 32<<20); err == nil {
		t.Fatal("rejected mem-add reported success")
	}
	if got := fw.Ledger.FreeBytes(0); got != free {
		t.Errorf("free bytes %d -> %d: extent leaked", free, got)
	}
	if !sawRollback {
		t.Error("no compensating unmap event emitted")
	}
	if len(enc.Mem()) != 1 {
		t.Errorf("enclave mem = %v", enc.Mem())
	}
}

func TestRemoveMemoryValidation(t *testing.T) {
	_, fw := fwFixture(t)
	enc, _ := fw.CreateEnclave(pisces.EnclaveSpec{Name: "rm", NumCores: 1, Nodes: []int{0}, MemBytes: 64 << 20})
	if err := fw.Boot(enc, newStubKernel(true)); err != nil {
		t.Fatal(err)
	}
	defer fw.Destroy(enc)
	// The boot extent (index 0) can never be removed.
	if err := fw.RemoveMemory(enc, enc.Mem()[0]); err == nil {
		t.Error("boot extent removal accepted")
	}
	// An extent the enclave does not own cannot be removed.
	if err := fw.RemoveMemory(enc, hw.Extent{Start: 0x1000, Size: 0x1000}); err == nil {
		t.Error("foreign extent removal accepted")
	}
}

func TestReportCrashIsIdempotentAndReclaims(t *testing.T) {
	m, fw := fwFixture(t)
	free := fw.Ledger.FreeBytes(0)
	enc, _ := fw.CreateEnclave(pisces.EnclaveSpec{Name: "crash", NumCores: 2, Nodes: []int{0}, MemBytes: 64 << 20})
	k := newStubKernel(true)
	if err := fw.Boot(enc, k); err != nil {
		t.Fatal(err)
	}
	var crashes int
	fw.Subscribe(func(ev *pisces.Event) error {
		if ev.Kind == pisces.EvCrashed {
			crashes++
		}
		return nil
	})
	fw.ReportCrash(enc, "bang")
	fw.ReportCrash(enc, "bang again") // second report is a no-op
	if crashes != 1 {
		t.Errorf("crash events = %d", crashes)
	}
	if enc.CrashReason() != "bang" {
		t.Errorf("reason = %q", enc.CrashReason())
	}
	<-enc.Reclaimed()
	if got := fw.Ledger.FreeBytes(0); got != free {
		t.Errorf("free bytes = %d, want %d", got, free)
	}
	// The cores really came back: a new enclave can use them.
	enc2, err := fw.CreateEnclave(pisces.EnclaveSpec{Name: "next", NumCores: 2, Nodes: []int{0}, MemBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Boot(enc2, newStubKernel(true)); err != nil {
		t.Fatal(err)
	}
	_ = fw.Destroy(enc2)
	_ = m
}

func TestIoctlRegistry(t *testing.T) {
	_, fw := fwFixture(t)
	called := false
	if err := fw.RegisterIoctl(0x42, func(arg any) (any, error) {
		called = true
		return arg, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := fw.RegisterIoctl(0x42, nil); err == nil {
		t.Error("duplicate ioctl registration accepted")
	}
	out, err := fw.Ioctl(0x42, "echo")
	if err != nil || out != "echo" || !called {
		t.Errorf("ioctl = %v, %v", out, err)
	}
	if _, err := fw.Ioctl(0x99, nil); err == nil {
		t.Error("unknown ioctl accepted")
	}
}

func TestEnclaveAccessors(t *testing.T) {
	_, fw := fwFixture(t)
	enc, _ := fw.CreateEnclave(pisces.EnclaveSpec{Name: "acc", NumCores: 2, Nodes: []int{0}, MemBytes: 64 << 20})
	if !enc.OwnsAddr(enc.Base()) || !enc.OwnsAddr(enc.Mem()[0].End()-1) {
		t.Error("OwnsAddr false for own memory")
	}
	if enc.OwnsAddr(0x10) {
		t.Error("OwnsAddr true for foreign memory")
	}
	if enc.BootCPU() == nil || len(enc.CPUs()) != 2 {
		t.Error("CPU accessors wrong")
	}
	for _, s := range []pisces.State{pisces.StateCreated, pisces.StateBooting, pisces.StateRunning, pisces.StateCrashed, pisces.StateStopped, pisces.State(99)} {
		if s.String() == "" {
			t.Errorf("state %d unnamed", s)
		}
	}
}
