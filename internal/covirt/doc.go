// Package covirt implements the paper's contribution: a lightweight fault
// isolation and resource protection layer for co-kernels, built from two
// cooperating components.
//
// The per-core hypervisor (Hypervisor) is deliberately minimal: it loads a
// pre-built VMCS, launches the co-kernel transparently (the co-kernel sees
// exactly the hardware state the Pisces trampoline would have handed it),
// and thereafter only runs on VM exits — terminating the enclave on access
// violations, filtering IPIs against a whitelist, emulating the handful of
// unconditionally-trapping instructions, and servicing the controller's
// command queue when an NMI doorbell rings. It has a fixed 8 KiB stack, no
// dynamic allocation after setup, and each instance manages a single CPU
// with no knowledge of its siblings.
//
// The controller module (Controller) lives in the management plane: it
// registers with the Pisces framework's boot path (boot interposition and
// the new Covirt ioctls) and subscribes to the Hobbes resource-management
// event bus. Resource events are translated into direct edits of the
// enclave's virtualization data structures — EPT mappings, MSR/IO bitmaps,
// the IPI whitelist — asynchronously with respect to the enclave's
// execution. Only changes that may be cached by an enclave CPU (unmapped
// translations in its TLB) require synchronizing with the hypervisor, via
// fixed-size commands in a shared-memory queue signalled by NMI.
//
// Ordering rules enforced (paper §IV):
//
//   - map-before-notify: new memory (assignment or XEMEM attach) is mapped
//     into the EPT before the co-kernel is told it exists;
//   - unmap-after-release: memory leaves the EPT only after the co-kernel
//     has acknowledged relinquishing it, and the completion is reported to
//     the management layer only after every enclave CPU has flushed its
//     TLB.
//
// Protection features are modular (Features): memory, IPI (full APIC
// virtualization or posted-interrupt mode), MSR, I/O port, and abort
// handling can each be enabled independently per enclave at boot.
package covirt
