package covirt

import (
	"fmt"
	"sync/atomic"

	"covirt/internal/hw"
	"covirt/internal/pisces"
	"covirt/internal/trace"
	"covirt/internal/vmx"
)

// HypervisorStackBytes is the fixed, preallocated stack budget of one
// hypervisor context (the paper's "small, 8KB stack ... preallocated by the
// control module"). The simulation tracks a symbolic stack-depth budget so
// tests can assert the minimal-execution-environment property.
const HypervisorStackBytes = 8 << 10

// MSRs the hypervisor permits a co-kernel to write when MSR protection is
// enabled: per-thread bases and timer programming are normal LWK behaviour;
// everything else is a violation.
var allowedGuestMSRWrites = map[uint32]bool{
	hw.MSR_IA32_FS_BASE:      true,
	hw.MSR_IA32_GS_BASE:      true,
	hw.MSR_IA32_TSC_DEADLINE: true,
	hw.MSR_IA32_PAT:          true,
	hw.MSR_IA32_STAR:         true,
	hw.MSR_IA32_LSTAR:        true,
}

// Hypervisor is one per-core Covirt hypervisor context. It implements
// vmx.ExitHandler; it owns no dynamic memory after construction and is
// unaware of the hypervisor instances managing the enclave's other cores.
type Hypervisor struct {
	cpu   *hw.CPU
	vcpu  *vmx.VCPU
	enc   *pisces.Enclave
	feat  Features
	flt   *IPIFilter
	queue *cmdQueue
	io    *IOTable // granted I/O ports (shared, controller-edited, cap-checked)

	// onFault is the termination callback into the controller (which in
	// turn notifies the master control process).
	onFault func(h *Hypervisor, reason string)

	// tracer is the optional flight recorder (nil-safe).
	tracer *trace.Buffer

	terminated atomic.Bool

	// stackDepth tracks the symbolic stack budget during exit handling.
	stackDepth int
}

// Stats returns the per-core exit statistics.
func (h *Hypervisor) Stats() *vmx.ExitStats { return &h.vcpu.Stats }

// CPU returns the core this hypervisor manages.
func (h *Hypervisor) CPU() *hw.CPU { return h.cpu }

// Terminated reports whether this hypervisor has killed its guest.
func (h *Hypervisor) Terminated() bool { return h.terminated.Load() }

// terminate ends the enclave's execution on this core: the guest context is
// killed, the master control process is notified so it can reclaim the
// enclave's resources and inform dependents, and the CPU halts safely.
func (h *Hypervisor) terminate(reason string) {
	if !h.terminated.CompareAndSwap(false, true) {
		return
	}
	h.cpu.Kill()
	if h.onFault != nil {
		h.onFault(h, reason)
	}
}

// push/pop model the fixed stack budget of the minimal execution context.
func (h *Hypervisor) push(frame int) {
	h.stackDepth += frame
	if h.stackDepth > HypervisorStackBytes {
		panic(fmt.Sprintf("covirt: hypervisor stack overflow (%d > %d)", h.stackDepth, HypervisorStackBytes))
	}
}

func (h *Hypervisor) pop(frame int) { h.stackDepth -= frame }

// HandleExit implements vmx.ExitHandler: the entirety of Covirt's runtime
// logic.
func (h *Hypervisor) HandleExit(c *hw.CPU, info *vmx.ExitInfo) vmx.ExitAction {
	h.push(256)
	defer h.pop(256)
	h.tracer.Record(c.ID, c.TSC, "exit:"+info.Reason.String(),
		"gpa=%#x write=%v vec=%#x msr=%#x port=%#x ipi=%d/%#x",
		info.GPA, info.Write, info.Vector, info.MSR, info.Port, info.IPIDest, info.IPIVector)

	switch info.Reason {
	case vmx.ExitEPTViolation:
		// An access outside the enclave's mapped memory is an abort-class
		// error: terminate, notify, halt (paper §IV-B).
		h.terminate(fmt.Sprintf("EPT violation at %#x (write=%v)", info.GPA, info.Write))
		return vmx.ActionKill

	case vmx.ExitICRWrite:
		if !h.feat.IPI {
			return vmx.ActionResume
		}
		if h.flt.Permitted(info.IPIDest, info.IPIVector) {
			return vmx.ActionResume
		}
		// Errant IPIs are simply dropped by the hypervisor.
		return vmx.ActionDrop

	case vmx.ExitMSRWrite:
		if !h.feat.MSR {
			return vmx.ActionResume
		}
		if allowedGuestMSRWrites[info.MSR] {
			return vmx.ActionResume
		}
		h.terminate(fmt.Sprintf("forbidden WRMSR %#x = %#x", info.MSR, info.MSRVal))
		return vmx.ActionKill

	case vmx.ExitMSRRead:
		// Reads are harmless; pass the architectural value through.
		return vmx.ActionResume

	case vmx.ExitIO:
		if !h.feat.IO {
			return vmx.ActionResume
		}
		if h.io != nil && h.io.Allowed(info.Port) {
			return vmx.ActionResume
		}
		h.terminate(fmt.Sprintf("forbidden I/O to port %#x", info.Port))
		return vmx.ActionKill

	case vmx.ExitExternalInterrupt:
		// Re-inject into the guest; cost is carried by the exit itself.
		return vmx.ActionResume

	case vmx.ExitNMI:
		// The controller's doorbell: synchronize local state.
		if h.queue != nil {
			c.TSC += h.queue.drain(c)
		}
		return vmx.ActionResume

	case vmx.ExitCPUID, vmx.ExitXSETBV:
		// Trap-and-execute with no modification (single-instruction
		// emulation, the simplest case in the paper).
		c.TSC += 150
		return vmx.ActionResume

	case vmx.ExitDoubleFault, vmx.ExitTripleFault:
		if h.feat.Abort {
			h.terminate(fmt.Sprintf("abort exception contained: %s", info.Reason))
			return vmx.ActionKill
		}
		// Without abort handling the exception escalates (node reset).
		return vmx.ActionResume
	}
	return vmx.ActionResume
}

var _ vmx.ExitHandler = (*Hypervisor)(nil)
