package covirt

import "strings"

// IPIMode selects how IPI protection is implemented, matching the two
// hardware paths in the paper.
type IPIMode int

const (
	// IPIVAPICFull fully virtualizes the APIC: every ICR write and every
	// incoming interrupt causes a VM exit.
	IPIVAPICFull IPIMode = iota
	// IPIPostedInterrupt uses Posted Interrupt Vector support: ICR writes
	// still trap for filtering, but incoming IPIs are delivered through
	// the posted-interrupt descriptor without exits. External (device)
	// interrupts, including the local APIC timer, still exit.
	IPIPostedInterrupt
)

// String names the mode.
func (m IPIMode) String() string {
	if m == IPIPostedInterrupt {
		return "piv"
	}
	return "vapic"
}

// Features selects which protection mechanisms Covirt enables for an
// enclave. Each is independent, letting an operator trade protection for
// performance per workload (paper design goal 3).
type Features struct {
	// Memory enables EPT-based memory protection: accesses outside the
	// enclave's assigned (plus shared) memory are abort-class violations.
	Memory bool
	// IPI enables ICR interception and whitelist filtering of outbound
	// IPIs.
	IPI bool
	// IPIMode selects the implementation when IPI is set.
	IPIMode IPIMode
	// MSR intercepts model-specific register writes, terminating the
	// enclave on writes outside the permitted set.
	MSR bool
	// IO intercepts port I/O, terminating the enclave on access to ports
	// it has not been granted.
	IO bool
	// Abort contains abort-class exceptions (double faults) that would
	// otherwise reset the node.
	Abort bool
	// EPTMaxPage caps EPT leaf sizes (0 = coalesce up to 1 GiB). Setting
	// hw.PageSize4K disables the paper's large-page coalescing
	// optimization — used by the ablation benchmarks.
	EPTMaxPage uint64
	// CmdQSlots sets the per-CPU command-queue ring capacity (0 = the
	// default burst-sized ring). Must be a power of two that fits the
	// queue stride; the 8-slot setting reproduces the pre-batching
	// geometry for regression tests.
	CmdQSlots uint64
}

// Common configurations used throughout the evaluation.
var (
	// FeaturesNone runs the enclave under the hypervisor with every
	// protection disabled — the paper's "no features" baseline isolating
	// the cost of virtualized execution itself.
	FeaturesNone = Features{}
	// FeaturesMem is memory protection only.
	FeaturesMem = Features{Memory: true, Abort: true}
	// FeaturesMemIPIVAPIC adds fully-virtualized-APIC IPI protection.
	FeaturesMemIPIVAPIC = Features{Memory: true, IPI: true, IPIMode: IPIVAPICFull, Abort: true}
	// FeaturesMemIPIPIV adds posted-interrupt IPI protection.
	FeaturesMemIPIPIV = Features{Memory: true, IPI: true, IPIMode: IPIPostedInterrupt, Abort: true}
	// FeaturesAll enables everything (PIV mode for IPIs).
	FeaturesAll = Features{Memory: true, IPI: true, IPIMode: IPIPostedInterrupt, MSR: true, IO: true, Abort: true}
)

// String renders a compact config label, e.g. "mem+ipi(piv)".
func (f Features) String() string {
	var parts []string
	if f.Memory {
		parts = append(parts, "mem")
	}
	if f.IPI {
		parts = append(parts, "ipi("+f.IPIMode.String()+")")
	}
	if f.MSR {
		parts = append(parts, "msr")
	}
	if f.IO {
		parts = append(parts, "io")
	}
	if f.Abort {
		parts = append(parts, "abort")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}
