package covirt

import (
	"sync"
	"sync/atomic"

	"covirt/internal/authority"
)

// IOTable is the per-enclave I/O port whitelist consulted by the
// hypervisor on every trapped port access. Like the IPI filter, it is
// shared between the controller (which installs grants from verified
// capabilities) and the hypervisor instances (which read it at exit
// time); each granted port remembers the capability that opened it and is
// honored only while that key's generation is current, so revoking the
// capability closes the port without touching the hypervisor.
type IOTable struct {
	mu    sync.RWMutex
	ports map[uint16]authority.Cap
	auth  *authority.Table

	// Denied counts accesses to ports with no live grant.
	Denied atomic.Uint64
}

// NewIOTable builds an empty whitelist verified against auth (nil
// disables the liveness check, for self-contained tests).
func NewIOTable(auth *authority.Table) *IOTable {
	return &IOTable{ports: make(map[uint16]authority.Cap), auth: auth}
}

// Grant opens every port in the capability's range.
func (t *IOTable) Grant(cap authority.Cap, lo, hi uint16) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for p := uint32(lo); p <= uint32(hi); p++ {
		t.ports[uint16(p)] = cap
	}
}

// RevokeCap closes every port opened by the given key.
func (t *IOTable) RevokeCap(cap authority.Cap) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for p, c := range t.ports {
		if c.ID == cap.ID {
			delete(t.ports, p)
		}
	}
}

// Allowed reports whether an access to port may proceed: the port must
// have a grant whose capability is still alive.
func (t *IOTable) Allowed(port uint16) bool {
	if t.lookup(port) {
		return true
	}
	t.Denied.Add(1)
	return false
}

// lookup resolves the port's grant and checks the key's generation.
func (t *IOTable) lookup(port uint16) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cap, ok := t.ports[port]
	return ok && (t.auth == nil || t.auth.Alive(cap))
}

// Count returns the number of open ports (live or not).
func (t *IOTable) Count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.ports)
}
