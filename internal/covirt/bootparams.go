package covirt

import (
	"fmt"

	"covirt/internal/hw"
)

// BootParamsMagic identifies a Covirt boot-parameter block.
const BootParamsMagic = 0x434F564952540001 // "COVIRT\0\1"

// BootParams is the specialized boot-parameter structure the Covirt
// hypervisor receives instead of the raw Pisces block: the VM configuration
// handle, the command-queue location, and a pointer to the *unmodified*
// Pisces boot parameters, which the hypervisor passes to the co-kernel in a
// register at VM launch.
type BootParams struct {
	NumCPUs        uint64
	CmdQueueBase   uint64 // base of the per-CPU command queue array
	CmdQueueStride uint64
	CmdQueueSlots  uint64 // ring capacity of each per-CPU queue
	PiscesParams   uint64 // address of the untouched Pisces boot parameters
}

// encodeBootParams writes bp at addr (host/native access).
func encodeBootParams(mem *hw.PhysMem, addr uint64, bp *BootParams) error {
	vals := []uint64{BootParamsMagic, bp.NumCPUs, bp.CmdQueueBase, bp.CmdQueueStride, bp.CmdQueueSlots, bp.PiscesParams}
	for i, v := range vals {
		if err := mem.Write64(addr+uint64(i)*8, v); err != nil {
			return err
		}
	}
	return nil
}

// decodeBootParams reads a block written by encodeBootParams.
func decodeBootParams(mem *hw.PhysMem, addr uint64) (*BootParams, error) {
	var vals [6]uint64
	for i := range vals {
		v, err := mem.Read64(addr + uint64(i)*8)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	if vals[0] != BootParamsMagic {
		return nil, fmt.Errorf("covirt: bad boot-param magic %#x at %#x", vals[0], addr)
	}
	return &BootParams{
		NumCPUs:        vals[1],
		CmdQueueBase:   vals[2],
		CmdQueueStride: vals[3],
		CmdQueueSlots:  vals[4],
		PiscesParams:   vals[5],
	}, nil
}
