package covirt

import "covirt/internal/pisces"

// Test-only exports for the external covirt_test package, which builds its
// fixtures through internal/testbed (a package that imports covirt, so the
// tests cannot live inside this package).

// DecodeBootParams exposes decodeBootParams.
var DecodeBootParams = decodeBootParams

// HasState reports whether the controller holds live state for enc.
func (c *Controller) HasState(enc *pisces.Enclave) bool { return c.stateFor(enc) != nil }

// EPTMapped reports whether enc's EPT currently maps addr.
func (c *Controller) EPTMapped(enc *pisces.Enclave, addr uint64) bool {
	st := c.stateFor(enc)
	return st != nil && st.ept.Mapped(addr)
}

// StackDepth exposes the hypervisor's current nested exit-handling depth.
func (h *Hypervisor) StackDepth() int { return h.stackDepth }
