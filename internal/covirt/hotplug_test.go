package covirt_test

import (
	"testing"

	"covirt/internal/covirt"
	"covirt/internal/hw"
	"covirt/internal/kitten"
)

func TestCPUHotAddRunsProtectedWork(t *testing.T) {
	r := newRig(t, covirt.FeaturesMemIPIPIV)
	enc, k := r.boot(t, "lwk", 1, []int{0}, 128<<20)
	if k.NumCores() != 1 {
		t.Fatalf("cores = %d", k.NumCores())
	}

	core, err := r.h.Pisces.AddCPU(enc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.NumCores() != 2 {
		t.Fatalf("cores after add = %d", k.NumCores())
	}
	if len(enc.Cores) != 2 || enc.Cores[1] != core {
		t.Fatalf("enclave cores = %v", enc.Cores)
	}
	// The hot-added core runs in VMX non-root mode with a live hypervisor.
	cpu := r.h.M.CPU(core)
	if cpu.Virt == nil {
		t.Fatal("hot-added core not virtualized")
	}
	if r.ctrl.Hypervisor(enc.ID, core) == nil {
		t.Fatal("no hypervisor for hot-added core")
	}

	// Protected work runs on the new core...
	task, _ := k.Spawn("work", 1, func(e *kitten.Env) error {
		buf := e.Alloc(0, 2<<20)
		e.Write64(buf.Start, 11)
		if e.Read64(buf.Start) != 11 {
			t.Error("bad read on hot-added core")
		}
		return nil
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	// ... and wild accesses from it are contained.
	bad, _ := k.Spawn("wild", 1, func(e *kitten.Env) error {
		return e.RawWrite64(0x60, 1)
	})
	if err := bad.Wait(); !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("wild write on hot-added core: %v", err)
	}
	if r.h.M.Crashed() {
		t.Fatal("node crashed")
	}
}

func TestCPUHotAddJoinsFlushProtocol(t *testing.T) {
	r := newRig(t, covirt.FeaturesMem)
	enc, k := r.boot(t, "lwk", 1, []int{0}, 128<<20)
	if _, err := r.h.Pisces.AddCPU(enc, 0); err != nil {
		t.Fatal(err)
	}
	ext, err := r.h.Pisces.AddMemory(enc, 0, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the hot-added core's TLB inside the extent.
	warm, _ := k.Spawn("warm", 1, func(e *kitten.Env) error {
		e.Access(ext.Start+4096, false, hw.AccessHot)
		return nil
	})
	if err := warm.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := r.h.Pisces.RemoveMemory(enc, ext); err != nil {
		t.Fatal(err)
	}
	// RemoveMemory waited for BOTH cores' flush acknowledgements.
	if st := r.ctrl.StatusFor(enc.ID); st.FlushCmds != 2 {
		t.Errorf("flush cmds = %d, want 2", st.FlushCmds)
	}
	if k.CPU(1).TLB.Lookup(ext.Start + 4096) {
		t.Error("hot-added core kept a stale translation")
	}
}

func TestCPUHotRemove(t *testing.T) {
	r := newRig(t, covirt.FeaturesMem)
	enc, k := r.boot(t, "lwk", 1, []int{0}, 128<<20)
	core, err := r.h.Pisces.AddCPU(enc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.h.Pisces.RemoveCPU(enc, core); err != nil {
		t.Fatal(err)
	}
	if k.NumCores() != 1 {
		t.Errorf("cores after remove = %d", k.NumCores())
	}
	if len(enc.Cores) != 1 {
		t.Errorf("enclave cores = %v", enc.Cores)
	}
	if r.ctrl.Hypervisor(enc.ID, core) != nil {
		t.Error("hypervisor survived hot-remove")
	}
	if r.h.M.CPU(core).Virt != nil {
		t.Error("VirtLayer survived hot-remove")
	}
	// The core is reusable by another enclave.
	enc2, k2 := r.boot(t, "second", 1, []int{0}, 128<<20)
	if enc2.Cores[0] != core {
		t.Skipf("ledger handed out a different core (%d)", enc2.Cores[0])
	}
	ok, _ := k2.Spawn("reuse", 0, func(e *kitten.Env) error { e.Compute(10); return nil })
	if err := ok.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestCPUHotRemoveRefusals(t *testing.T) {
	r := newRig(t, covirt.FeaturesMem)
	enc, _ := r.boot(t, "lwk", 2, []int{0}, 128<<20)
	// The boot core can never be removed.
	if err := r.h.Pisces.RemoveCPU(enc, enc.Cores[0]); err == nil {
		t.Error("boot core removal accepted")
	}
	// A core not in the enclave cannot be removed.
	if err := r.h.Pisces.RemoveCPU(enc, 11); err == nil {
		t.Error("foreign core removal accepted")
	}
	// A busy core is refused by the co-kernel.
	victim := enc.Cores[1]
	stop := make(chan struct{})
	k := enc.Kernel().(*kitten.Kernel)
	busy, _ := k.Spawn("busy", 1, func(e *kitten.Env) error {
		for {
			select {
			case <-stop:
				return nil
			default:
			}
			if err := e.CPU.Compute(500); err != nil {
				return err
			}
		}
	})
	if err := r.h.Pisces.RemoveCPU(enc, victim); err == nil {
		t.Error("busy core removal accepted")
	}
	close(stop)
	if err := busy.Wait(); err != nil {
		t.Fatal(err)
	}
}
