package covirt_test

import (
	"strings"
	"testing"

	"covirt/internal/covirt"
	"covirt/internal/hw"
	"covirt/internal/kitten"
)

func TestFlightRecorderCapturesDiagnosis(t *testing.T) {
	r := newRig(t, covirt.FeaturesMem)
	buf := r.ctrl.EnableTracing(512)
	if r.ctrl.EnableTracing(512) != buf {
		t.Fatal("second EnableTracing returned a different buffer")
	}
	enc, k := r.boot(t, "lwk", 1, []int{0}, 128<<20)

	// Dynamic reconfiguration leaves controller breadcrumbs.
	ext, err := r.h.Pisces.AddMemory(enc, 0, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.h.Pisces.RemoveMemory(enc, ext); err != nil {
		t.Fatal(err)
	}
	if len(buf.Filter("ctl:map")) == 0 || len(buf.Filter("ctl:unmap")) == 0 {
		t.Errorf("controller events missing:\n%s", buf.Dump())
	}
	if len(buf.Filter("exit:EXCEPTION_NMI")) == 0 {
		t.Error("NMI doorbell exits not traced")
	}

	// The injected bug's first bad access is pinpointed in the trace —
	// the debugging capability §V describes.
	victim, _ := r.h.HostAlloc(0, 2<<20)
	task, _ := k.Spawn("bug", 0, func(e *kitten.Env) error {
		return e.RawWrite64(victim.Start, 1)
	})
	if err := task.Wait(); !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("err = %v", err)
	}
	viol := buf.Filter("exit:EPT_VIOLATION")
	if len(viol) != 1 {
		t.Fatalf("violations traced = %d", len(viol))
	}
	if !strings.Contains(viol[0].Msg, "write=true") {
		t.Errorf("violation detail = %q", viol[0].Msg)
	}
}
