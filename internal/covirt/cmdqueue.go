package covirt

import (
	"fmt"
	"sync"

	"covirt/internal/hw"
	"covirt/internal/vmx"
)

// invalidateTransCache drops the VCPU's cached nested walks alongside a TLB
// shootdown, keeping both translation caches on the same doorbell. The
// drain runs on the guest CPU's own execution goroutine (NMI handler), so
// touching the VCPU-owned cache is safe.
func invalidateTransCache(cpu *hw.CPU) {
	if v, ok := cpu.Virt.(*vmx.VCPU); ok {
		v.InvalidateTransCache()
	}
}

// Hypervisor command types carried on the command queue.
const (
	// CmdFlushAll invalidates the CPU's entire TLB (INVEPT global).
	CmdFlushAll uint64 = iota + 1
	// CmdFlushRange invalidates translations overlapping [arg0, arg0+arg1).
	CmdFlushRange
	// CmdPing is a no-op synchronization point.
	CmdPing
	// CmdReloadVMCS re-serializes the virtualization context to the CPU
	// (after controller edits to non-cached VMCS fields it is a no-op in
	// this simulation beyond its cost).
	CmdReloadVMCS
)

// Command queue shared-memory geometry. Each enclave CPU has one queue in
// the Covirt boot-parameter area; commands are fixed-size records.
const (
	cmdqSlots    = 8
	cmdqSlotSize = 32 // type, arg0, arg1, seq
	cmdqHdrSize  = 24 // head, tail, completed
	// CmdQueueStride is the per-CPU footprint of one command queue.
	CmdQueueStride = 0x200
)

// cmdQueue is the controller->hypervisor channel for one enclave CPU. The
// queue contents live in shared physical memory (written natively by the
// controller, read natively by the root-mode hypervisor); the Go-side
// condition variable stands in for the hardware's NMI wait loop.
type cmdQueue struct {
	mem  *hw.PhysMem
	base uint64

	mu   sync.Mutex
	cond *sync.Cond
	seq  uint64
}

// newCmdQueue initializes a queue at base.
func newCmdQueue(mem *hw.PhysMem, base uint64) (*cmdQueue, error) {
	q := &cmdQueue{mem: mem, base: base}
	q.cond = sync.NewCond(&q.mu)
	for off := uint64(0); off < cmdqHdrSize; off += 8 {
		if err := mem.Write64(base+off, 0); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// push enqueues a command, returning its sequence number. It fails if the
// queue is full (the controller never has more than a few outstanding).
func (q *cmdQueue) push(typ, arg0, arg1 uint64) (uint64, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	head, err := q.mem.Read64(q.base)
	if err != nil {
		return 0, err
	}
	tail, err := q.mem.Read64(q.base + 8)
	if err != nil {
		return 0, err
	}
	if head-tail >= cmdqSlots {
		return 0, fmt.Errorf("covirt: command queue full")
	}
	q.seq++
	slot := q.base + cmdqHdrSize + (head%cmdqSlots)*cmdqSlotSize
	for i, v := range []uint64{typ, arg0, arg1, q.seq} {
		if err := q.mem.Write64(slot+uint64(i)*8, v); err != nil {
			return 0, err
		}
	}
	if err := q.mem.Write64(q.base, head+1); err != nil {
		return 0, err
	}
	return q.seq, nil
}

// completed returns the last completed sequence number.
func (q *cmdQueue) completed() uint64 {
	v, err := q.mem.Read64(q.base + 16)
	if err != nil {
		return 0
	}
	return v
}

// waitCompleted blocks until the hypervisor reports seq complete or done
// closes (enclave death).
func (q *cmdQueue) waitCompleted(seq uint64, done <-chan struct{}) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.completed() < seq {
		select {
		case <-done:
			return fmt.Errorf("covirt: enclave died before command %d completed", seq)
		default:
		}
		// Wait with a wakeup guarantee: the hypervisor broadcasts after
		// each command, and enclave teardown broadcasts too.
		q.cond.Wait()
	}
	return nil
}

// wake unblocks waiters (teardown). The broadcast runs under the lock so
// it cannot land between a waiter's done-channel check and its cond.Wait
// and be lost — the waiter would then sleep forever on a dead queue.
func (q *cmdQueue) wake() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.cond.Broadcast()
}

// drain processes all pending commands on cpu (the hypervisor's NMI
// handler body). It returns cycles spent.
func (q *cmdQueue) drain(cpu *hw.CPU) uint64 {
	cs := cpu.Costs()
	var spent uint64
	for {
		rec, tail, ok := q.fetch()
		if !ok {
			// Empty queue, or the backing region vanished mid-teardown
			// (waiters are then released by teardown's wake).
			return spent
		}
		spent += 80 // fetch/decode of one fixed-size command
		switch rec[0] {
		case CmdFlushAll:
			cpu.TLB.FlushAll()
			invalidateTransCache(cpu)
			spent += cs.TLBFlushAll
		case CmdFlushRange:
			cpu.TLB.FlushRange(rec[1], rec[2])
			invalidateTransCache(cpu)
			spent += cs.TLBFlushPage
		case CmdReloadVMCS:
			spent += cs.VMEntry / 2
		case CmdPing:
			// Synchronization only.
		}
		if err := q.publishCompletion(tail, rec[3]); err != nil {
			return spent
		}
	}
}

// fetch reads the next pending command record and its tail index. It runs
// under the lock: the controller publishes slot contents before advancing
// the head pointer inside push's critical section, so a locked read is the
// simulation's stand-in for the hardware's acquire-ordered head load.
func (q *cmdQueue) fetch() (rec [4]uint64, tail uint64, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	head, err := q.mem.Read64(q.base)
	if err != nil {
		return rec, 0, false
	}
	tail, err = q.mem.Read64(q.base + 8)
	if err != nil || tail >= head {
		return rec, 0, false
	}
	slot := q.base + cmdqHdrSize + (tail%cmdqSlots)*cmdqSlotSize
	for i := range rec {
		v, err := q.mem.Read64(slot + uint64(i)*8)
		if err != nil {
			return rec, 0, false
		}
		rec[i] = v
	}
	return rec, tail, true
}

// publishCompletion advances the tail pointer and publishes seq as the
// last completed command. It runs under the lock so a controller thread
// between its completed() check and cond.Wait cannot miss the wakeup; the
// broadcast fires even when the backing region vanished mid-teardown so
// no waiter is left hanging on a dead queue.
func (q *cmdQueue) publishCompletion(tail, seq uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	defer q.cond.Broadcast()
	if err := q.mem.Write64(q.base+8, tail+1); err != nil {
		return err
	}
	return q.mem.Write64(q.base+16, seq)
}
