package covirt

import (
	"fmt"
	"sync"

	"covirt/internal/hw"
	"covirt/internal/vmx"
)

// invalidateTransCache drops the VCPU's cached nested walks alongside a TLB
// shootdown, keeping both translation caches on the same doorbell. The
// drain runs on the guest CPU's own execution goroutine (NMI handler), so
// touching the VCPU-owned cache is safe.
func invalidateTransCache(cpu *hw.CPU) {
	if v, ok := cpu.Virt.(*vmx.VCPU); ok {
		v.InvalidateTransCache()
	}
}

// Hypervisor command types carried on the command queue.
const (
	// CmdFlushAll invalidates the CPU's entire TLB (INVEPT global).
	CmdFlushAll uint64 = iota + 1
	// CmdFlushRange invalidates translations overlapping [arg0, arg0+arg1).
	CmdFlushRange
	// CmdPing is a no-op synchronization point.
	CmdPing
	// CmdReloadVMCS re-serializes the virtualization context to the CPU
	// (after controller edits to non-cached VMCS fields it is a no-op in
	// this simulation beyond its cost).
	CmdReloadVMCS
	// CmdEpoch publishes arg0 as the applied shootdown epoch: every
	// command pushed before this marker is guaranteed processed once the
	// header's epoch word reaches arg0. Waiters block on "epoch E
	// applied" instead of per-command sequence numbers.
	CmdEpoch
)

// Command queue shared-memory geometry. Each enclave CPU has one queue in
// the Covirt boot-parameter area; commands are fixed-size records.
const (
	// cmdqDefaultSlots is the ring capacity used when the enclave's
	// features don't request another size (Features.CmdQSlots). Sized for
	// bursts: a revocation storm's merged flush batch fits without ever
	// touching the backpressure path.
	cmdqDefaultSlots = 64
	cmdqSlotSize     = 32 // type, arg0, arg1, seq
	cmdqHdrSize      = 32 // head, tail, completed, epoch
	// CmdQueueStride is the per-CPU footprint of one command queue: the
	// header plus cmdqMaxSlots records, padded to a page.
	CmdQueueStride = 0x1000
	// cmdqMaxSlots is the largest ring that fits in one stride.
	cmdqMaxSlots = 64
)

// Header word offsets within a queue's base page.
const (
	cmdqOffHead      = 0
	cmdqOffTail      = 8
	cmdqOffCompleted = 16
	cmdqOffEpoch     = 24
)

// Cycle charges local to the queue protocol.
const (
	// cmdqFetchCycles is the hypervisor-side fetch/decode of one record.
	cmdqFetchCycles = 80
	// cmdqStallCycles is charged to the pusher each time it finds the
	// ring full and must park until the drainer frees slots. The charge
	// models the doorbell + wait handshake; the number of stalls depends
	// on drain progress, so this cost only appears on genuinely
	// overloaded paths, never on the deterministic golden workloads
	// (their bursts fit the ring).
	cmdqStallCycles = 500
)

// cmdRec is one fixed-size command record as the controller composes it
// (the sequence number is assigned inside pushBatch).
type cmdRec struct {
	Typ, Arg0, Arg1 uint64
}

// cmdQueue is the controller->hypervisor channel for one enclave CPU. The
// queue contents live in shared physical memory (written natively by the
// controller, read natively by the root-mode hypervisor); the Go-side
// condition variable stands in for the hardware's NMI wait loop.
type cmdQueue struct {
	mem   *hw.PhysMem
	base  uint64
	slots uint64 // ring capacity, power of two
	mask  uint64 // slots - 1

	mu   sync.Mutex
	cond *sync.Cond
	seq  uint64

	// scratch is the drainer's snapshot buffer. The drain runs on the
	// guest CPU's own execution goroutine, one drainer per queue, so the
	// buffer is reused across NMIs without allocation.
	scratch [][4]uint64
}

// newCmdQueue initializes a queue at base with the given ring capacity
// (0 selects the default). Capacity must be a power of two that fits the
// per-CPU stride.
func newCmdQueue(mem *hw.PhysMem, base uint64, slots uint64) (*cmdQueue, error) {
	if slots == 0 {
		slots = cmdqDefaultSlots
	}
	if slots&(slots-1) != 0 || slots > cmdqMaxSlots {
		return nil, fmt.Errorf("covirt: command-queue capacity %d not a power of two <= %d", slots, cmdqMaxSlots)
	}
	q := &cmdQueue{mem: mem, base: base, slots: slots, mask: slots - 1}
	q.cond = sync.NewCond(&q.mu)
	q.scratch = make([][4]uint64, slots)
	for off := uint64(0); off < cmdqHdrSize; off += 8 {
		if err := mem.Write64(base+off, 0); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// push enqueues a single command, returning its sequence number. It is the
// one-record case of pushBatch and shares its backpressure behaviour.
func (q *cmdQueue) push(typ, arg0, arg1 uint64) (uint64, error) {
	seq, _, err := q.pushBatch([]cmdRec{{typ, arg0, arg1}}, nil, nil)
	return seq, err
}

// pushBatch enqueues all records under as few critical sections as
// possible: every record that fits the ring is written and then made
// visible with ONE head publish. When the ring is full the push applies
// bounded backpressure instead of failing — it publishes what fits, rings
// doorbell (so the drainer is guaranteed to be on its way), and parks on
// the queue's condition variable until slots free up, charging
// cmdqStallCycles per stall to the returned wait cost. A closed done
// channel (enclave death) aborts the wait; teardown's wake releases the
// parked pusher.
//
// It returns the sequence number of the last record pushed and the cycles
// spent stalled on a full ring.
func (q *cmdQueue) pushBatch(recs []cmdRec, doorbell func(), done <-chan struct{}) (uint64, uint64, error) {
	var lastSeq, waitCycles uint64
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(recs) > 0 {
		head, err := q.mem.Read64(q.base + cmdqOffHead)
		if err != nil {
			return 0, waitCycles, err
		}
		tail, err := q.mem.Read64(q.base + cmdqOffTail)
		if err != nil {
			return 0, waitCycles, err
		}
		free := q.slots - (head - tail)
		if free == 0 {
			select {
			case <-done:
				return 0, waitCycles, fmt.Errorf("covirt: enclave died with %d commands unpushed", len(recs))
			default:
			}
			waitCycles += cmdqStallCycles
			if doorbell != nil {
				q.ringDoorbell(doorbell)
				// The drainer may have freed slots (and broadcast) while
				// the lock was dropped; re-checking occupancy before
				// parking makes that wakeup impossible to lose — any
				// later completion publish broadcasts under this lock.
				h, e1 := q.mem.Read64(q.base + cmdqOffHead)
				t, e2 := q.mem.Read64(q.base + cmdqOffTail)
				if e1 == nil && e2 == nil && q.slots-(h-t) > 0 {
					continue
				}
			}
			// Wait with a wakeup guarantee: the drainer broadcasts after
			// each completion publish, and teardown broadcasts too.
			q.cond.Wait()
			continue
		}
		n := uint64(len(recs))
		if n > free {
			n = free
		}
		for i := uint64(0); i < n; i++ {
			q.seq++
			slot := q.base + cmdqHdrSize + ((head+i)&q.mask)*cmdqSlotSize
			for j, v := range [4]uint64{recs[i].Typ, recs[i].Arg0, recs[i].Arg1, q.seq} {
				if err := q.mem.Write64(slot+uint64(j)*8, v); err != nil {
					return 0, waitCycles, err
				}
			}
		}
		lastSeq = q.seq
		// Slot contents are fully written; one head store publishes the
		// whole chunk (the hardware analogue is a release store the
		// drainer's acquire load of head pairs with).
		if err := q.mem.Write64(q.base+cmdqOffHead, head+n); err != nil {
			return 0, waitCycles, err
		}
		recs = recs[n:]
	}
	return lastSeq, waitCycles, nil
}

// ringDoorbell releases the queue lock around the doorbell and re-acquires
// it before returning: the drainer needs the lock to fetch, and the NMI
// raise may synchronously reach a core parked in its idle loop. Called with
// q.mu held.
func (q *cmdQueue) ringDoorbell(doorbell func()) {
	q.mu.Unlock()
	defer q.mu.Lock()
	doorbell()
}

// depth returns the number of pushed-but-undrained records.
func (q *cmdQueue) depth() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	head, err := q.mem.Read64(q.base + cmdqOffHead)
	if err != nil {
		return 0
	}
	tail, err := q.mem.Read64(q.base + cmdqOffTail)
	if err != nil {
		return 0
	}
	return head - tail
}

// completed returns the last completed sequence number.
func (q *cmdQueue) completed() uint64 {
	v, err := q.mem.Read64(q.base + cmdqOffCompleted)
	if err != nil {
		return 0
	}
	return v
}

// epochApplied returns the last applied shootdown epoch.
func (q *cmdQueue) epochApplied() uint64 {
	v, err := q.mem.Read64(q.base + cmdqOffEpoch)
	if err != nil {
		return 0
	}
	return v
}

// waitCompleted blocks until the hypervisor reports seq complete or done
// closes (enclave death).
func (q *cmdQueue) waitCompleted(seq uint64, done <-chan struct{}) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.completed() < seq {
		select {
		case <-done:
			return fmt.Errorf("covirt: enclave died before command %d completed", seq)
		default:
		}
		// Wait with a wakeup guarantee: the hypervisor broadcasts after
		// each drain pass, and enclave teardown broadcasts too.
		q.cond.Wait()
	}
	return nil
}

// waitEpoch blocks until the hypervisor reports epoch e applied or done
// closes (enclave death).
func (q *cmdQueue) waitEpoch(e uint64, done <-chan struct{}) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.epochApplied() < e {
		select {
		case <-done:
			return fmt.Errorf("covirt: enclave died before epoch %d applied", e)
		default:
		}
		q.cond.Wait()
	}
	return nil
}

// wake unblocks waiters (teardown). The broadcast runs under the lock so
// it cannot land between a waiter's done-channel check and its cond.Wait
// and be lost — the waiter would then sleep forever on a dead queue.
func (q *cmdQueue) wake() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.cond.Broadcast()
}

// flushRangeLeaves counts the 2 MiB translation leaves overlapping
// [start, start+size): the units a ranged shootdown actually invalidates,
// and therefore the units it is charged in. A merged range prices exactly
// like the sum of its parts.
func flushRangeLeaves(start, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	lo := start &^ (hw.PageSize2M - 1)
	hi := hw.AlignUp(start+size, hw.PageSize2M)
	return (hi - lo) / hw.PageSize2M
}

// drain processes all pending commands on cpu (the hypervisor's NMI
// handler body). Each pass snapshots the whole ring under one critical
// section, applies every record, then retires them with one tail advance,
// one completion publish, and one broadcast — the NMI does not
// lock-roundtrip per record. It returns cycles spent.
func (q *cmdQueue) drain(cpu *hw.CPU) uint64 {
	cs := cpu.Costs()
	var spent uint64
	for {
		recs, tail, ok := q.fetchAll()
		if !ok || len(recs) == 0 {
			// Empty queue, or the backing region vanished mid-teardown
			// (waiters are then released by teardown's wake).
			return spent
		}
		var lastSeq, epoch uint64
		for _, rec := range recs {
			spent += cmdqFetchCycles // fetch/decode of one fixed-size command
			switch rec[0] {
			case CmdFlushAll:
				cpu.TLB.FlushAll()
				invalidateTransCache(cpu)
				spent += cs.TLBFlushAll
			case CmdFlushRange:
				cpu.TLB.FlushRange(rec[1], rec[2])
				invalidateTransCache(cpu)
				spent += flushRangeLeaves(rec[1], rec[2]) * cs.TLBFlushPage
			case CmdReloadVMCS:
				spent += cs.VMEntry / 2
			case CmdEpoch:
				if rec[1] > epoch {
					epoch = rec[1]
				}
			case CmdPing:
				// Synchronization only.
			}
			lastSeq = rec[3]
		}
		if err := q.publishCompletion(tail, uint64(len(recs)), lastSeq, epoch); err != nil {
			return spent
		}
	}
}

// fetchAll snapshots every pending command record and the tail index under
// one critical section. The locked read is the simulation's stand-in for
// the hardware's acquire-ordered head load: the controller publishes slot
// contents before advancing the head pointer inside pushBatch's critical
// section.
func (q *cmdQueue) fetchAll() ([][4]uint64, uint64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	head, err := q.mem.Read64(q.base + cmdqOffHead)
	if err != nil {
		return nil, 0, false
	}
	tail, err := q.mem.Read64(q.base + cmdqOffTail)
	if err != nil || tail >= head {
		return nil, 0, false
	}
	// The ring holds at most q.slots records, and scratch was sized to
	// exactly that in newCmdQueue, so the snapshot is written in place —
	// the NMI-path drain never allocates.
	n := head - tail
	for k := uint64(0); k < n; k++ {
		slot := q.base + cmdqHdrSize + ((tail+k)&q.mask)*cmdqSlotSize
		var rec [4]uint64
		for i := range rec {
			v, err := q.mem.Read64(slot + uint64(i)*8)
			if err != nil {
				return nil, 0, false
			}
			rec[i] = v
		}
		q.scratch[k] = rec
	}
	return q.scratch[:n], tail, true
}

// publishCompletion retires n drained records in one critical section: the
// tail advances, seq is published as the last completed command, and —
// when the batch carried an epoch marker — the applied-epoch word is
// raised. The epoch publish is guarded to be monotonic: a stale marker
// (reordered relative to a newer epoch already applied) must never move
// the counter backwards, or waiters would unblock on invalidations that
// have not happened. The broadcast runs under the lock so a controller
// thread between its check and cond.Wait cannot miss the wakeup, and it
// fires even when the backing region vanished mid-teardown so no waiter is
// left hanging on a dead queue.
func (q *cmdQueue) publishCompletion(tail, n, seq, epoch uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	defer q.cond.Broadcast()
	if err := q.mem.Write64(q.base+cmdqOffTail, tail+n); err != nil {
		return err
	}
	if err := q.mem.Write64(q.base+cmdqOffCompleted, seq); err != nil {
		return err
	}
	if epoch > q.epochApplied() {
		if err := q.mem.Write64(q.base+cmdqOffEpoch, epoch); err != nil {
			return err
		}
	}
	return nil
}
