package covirt

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"covirt/internal/authority"
	"covirt/internal/hobbes"
	"covirt/internal/hw"
	"covirt/internal/pisces"
	"covirt/internal/trace"
	"covirt/internal/vmx"
)

// Management-plane cycle costs charged onto synchronous paths (the
// controller runs on host cores; guests blocked on an operation wait for
// this work, so it surfaces in latencies like the XEMEM attach delay).
const (
	costPerEPTLeaf   = 25  // writing one EPT leaf entry
	costPerUnmapLeaf = 30  // clearing entries, possibly splitting
	costCmdIssue     = 250 // queue write + NMI doorbell
)

// flushAllThreshold is the merged-range count past which an epoch's
// shootdown collapses into one CmdFlushAll: invalidating everything is
// cheaper than walking a long range list on every core.
const flushAllThreshold = 8

// coalesceDefault is the package-wide default for epoch-based shootdown
// coalescing, consulted when a Controller attaches. The equivalence suite
// flips it to prove the coalesced and per-extent paths invalidate
// identically; per-controller SetCoalescing overrides it afterwards.
var coalesceDefault atomic.Bool

func init() { coalesceDefault.Store(true) }

// SetCoalescingDefault sets the package-wide coalescing default for
// controllers attached afterwards. Returns the previous value.
func SetCoalescingDefault(on bool) bool { return coalesceDefault.Swap(on) }

// QoS is a per-enclave token-bucket admission policy on the controller's
// ingest path. Refill is deterministic integer arithmetic on the
// controller's virtual clock: tokens accrue at one per CyclesPerToken
// cycles, capped at Burst. An enclave whose bucket is empty waits out the
// remainder of the current refill interval — the wait advances the virtual
// clock (the stall itself is the passage of time) and is charged to the
// event's cost, so a grant-storming enclave self-paces at the refill rate
// while its neighbors' buckets are untouched. The zero value disables
// admission control.
type QoS struct {
	Burst          uint64 // bucket capacity in tokens (0 disables)
	CyclesPerToken uint64 // virtual cycles per accrued token
}

// enabled reports whether this policy actually admits.
func (q QoS) enabled() bool { return q.Burst > 0 && q.CyclesPerToken > 0 }

// qosDefault is the package-wide admission default, consulted at Attach
// time (same pattern as coalesceDefault; the QoS-off/on equivalence suite
// flips it around experiment runs).
var qosDefault atomic.Value // QoS

// SetQoSDefault sets the package-wide admission default for controllers
// attached afterwards. Returns the previous value.
func SetQoSDefault(q QoS) QoS {
	prev, _ := qosDefault.Swap(q).(QoS)
	return prev
}

// IngestStats counts one enclave's traffic through the controller's
// ingest path (resource-assignment events, admission decisions, epochs,
// and flush-command economics).
type IngestStats struct {
	// Events is the number of admitted resource-assignment events.
	Events uint64
	// AdmissionWaits / AdmissionWaitCycles count token-bucket stalls.
	AdmissionWaits      uint64
	AdmissionWaitCycles uint64
	// Epochs is the number of shootdown epochs closed.
	Epochs uint64
	// FlushCmds is the number of flush commands pushed (all cores).
	FlushCmds uint64
	// FlushCmdsSaved is how many per-extent flush commands coalescing
	// avoided pushing (all cores).
	FlushCmdsSaved uint64
	// StallCycles counts cycles spent in ring backpressure (all cores).
	StallCycles uint64
}

// QueueStats is the per-enclave command-queue / admission snapshot behind
// the enclavectl qstats verb.
type QueueStats struct {
	EnclaveID int
	Slots     uint64 // ring capacity per core
	// Depth maps machine core id -> pushed-but-undrained records.
	Depth map[int]uint64
	// EpochIssued is the last shootdown epoch the controller opened;
	// EpochApplied maps core id -> last epoch that core has applied.
	EpochIssued  uint64
	EpochApplied map[int]uint64
	// Tokens is the enclave's current admission-bucket fill (only
	// meaningful when QoS is configured).
	Tokens uint64
	Ingest IngestStats
}

// Ioctl numbers the controller registers with the Pisces framework's
// control ABI (the paper's "new set of ioctl commands").
const (
	IoctlSetFeatures uint32 = 0xC0560001 // arg: SetFeaturesArgs (pre-boot)
	IoctlStatus      uint32 = 0xC0560002 // arg: enclave id (int) -> *Status
	IoctlGrantIO     uint32 = 0xC0560003 // arg: GrantIOArgs
	IoctlQueueStats  uint32 = 0xC0560004 // arg: enclave id (int) -> *QueueStats
)

// SetFeaturesArgs selects an enclave's protection features (before boot).
type SetFeaturesArgs struct {
	EnclaveID int
	Features  Features
}

// GrantIOArgs permits an enclave to access an I/O port. Cap must be an
// I/O capability held by the enclave whose scope covers the port
// (delegated via Controller.DelegateIO or directly from the table).
type GrantIOArgs struct {
	EnclaveID int
	Port      uint16
	Cap       authority.Cap
}

// Status reports an enclave's Covirt runtime state.
type Status struct {
	EnclaveID   int
	Features    Features
	EPT         vmx.EPTStats
	Exits       map[string]uint64
	ExitCycles  uint64
	DroppedIPIs uint64
	MapOps      uint64
	UnmapOps    uint64
	FlushCmds   uint64
}

// enclaveState is the controller's view of one protected enclave: the
// hardware-level virtualization data structures it edits directly.
type enclaveState struct {
	enc  *pisces.Enclave
	feat Features

	ept    *vmx.EPT
	msrBM  *vmx.MSRBitmap
	ioBM   *vmx.IOBitmap
	filter *IPIFilter
	io     *IOTable

	vmcs   map[int]*vmx.VMCS
	hvs    map[int]*Hypervisor
	queues map[int]*cmdQueue

	// nextSlot indexes the per-CPU command-queue array for hot-added
	// cores (the reserved area holds pisces.MaxBootCores slots).
	nextSlot int
	// slots is the enclave's per-CPU ring capacity (Features.CmdQSlots
	// or the default).
	slots uint64

	mapOps    uint64
	unmapOps  uint64
	flushCmds uint64

	// ingestMu serializes the enclave's ingest path: the shootdown-epoch
	// accumulator and the admission bucket below. Events for one enclave
	// are normally sequential (one longcall service goroutine), but
	// host-side revocations can overlap a guest-driven detach.
	ingestMu sync.Mutex
	// epoch is the last shootdown epoch the controller opened; dirty
	// accumulates the open epoch's unmapped ranges (batched events defer
	// the flush to the batch's final event).
	epoch       uint64
	dirty       []hw.Extent
	dirtyEvents int
	// Admission token bucket (QoS): current fill and the virtual-clock
	// stamp the last refill was computed against.
	qosInit   bool
	qosTokens uint64
	qosStamp  uint64

	ingest IngestStats
}

// Controller is the Covirt controller module: it integrates with the
// Hobbes master control process and the Pisces framework, monitoring
// resource-management operations and translating them into hypervisor
// configuration changes.
type Controller struct {
	mach   *hw.Machine
	fw     *pisces.Framework
	master *hobbes.Master

	// auth is the node's capability table (shared with the framework);
	// rootIO is the host's root I/O capability from which port grants are
	// delegated.
	auth   *authority.Table
	rootIO authority.Cap

	mu       sync.Mutex
	defaults Features
	pending  map[int]Features // pre-boot per-enclave overrides
	states   map[int]*enclaveState

	// coalesce enables epoch-based shootdown coalescing (merge the open
	// epoch's dirty ranges into one flush per core); qos is the admission
	// policy applied to every enclave; clock is the controller's virtual
	// ingest timeline (advanced by admission stalls — the stall is the
	// passage of time). All are initialized from the package defaults at
	// Attach and overridable per controller.
	coalesce bool
	qos      QoS
	clock    hw.Clock

	// tracer is the optional flight recorder shared with all hypervisor
	// instances (nil-safe; see EnableTracing).
	tracer *trace.Buffer
}

// SetCoalescing enables or disables epoch-based shootdown coalescing on
// this controller (the per-extent path pushes one flush per dirty range;
// both paths share the epoch completion protocol, so invalidation
// semantics are identical — the equivalence suite proves it).
func (c *Controller) SetCoalescing(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.coalesce = on
}

// SetQoS installs the admission policy for this controller's enclaves
// (zero disables).
func (c *Controller) SetQoS(q QoS) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.qos = q
}

// IngestClock exposes the controller's virtual ingest timeline. Tests and
// management tooling advance it to model elapsed time between bursts
// (admission buckets refill against it).
func (c *Controller) IngestClock() *hw.Clock { return &c.clock }

// coalesceOn / qosPolicy read the switches under the lock.
func (c *Controller) coalesceOn() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coalesce
}

func (c *Controller) qosPolicy() QoS {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.qos
}

// EnableTracing attaches a flight recorder capturing every VM exit and
// controller action; returns the buffer for inspection. Must be called
// before enclaves boot to capture their hypervisors' events.
func (c *Controller) EnableTracing(capacity int) *trace.Buffer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tracer == nil {
		c.tracer = trace.New(capacity)
	}
	return c.tracer
}

// Trace returns the flight recorder, or nil if tracing is disabled.
func (c *Controller) Trace() *trace.Buffer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tracer
}

// Attach loads the Covirt controller: it hooks the framework's boot path,
// subscribes to the Hobbes event bus, and registers its ioctl extensions.
// defaults are the protection features used for enclaves without an
// explicit IoctlSetFeatures/SetFeatures call.
func Attach(mach *hw.Machine, fw *pisces.Framework, master *hobbes.Master, defaults Features) (*Controller, error) {
	c := &Controller{
		mach:     mach,
		fw:       fw,
		master:   master,
		auth:     fw.Auth,
		defaults: defaults,
		pending:  make(map[int]Features),
		states:   make(map[int]*enclaveState),
		coalesce: coalesceDefault.Load(),
	}
	if q, ok := qosDefault.Load().(QoS); ok {
		c.qos = q
	}
	c.rootIO = c.auth.Mint(0, authority.KindIO, authority.RightsAll,
		authority.WildScope(), "root-io")
	fw.SetInterposer(c)
	master.Bus.Subscribe(c.onEvent)
	for cmd, h := range map[uint32]func(any) (any, error){
		IoctlSetFeatures: c.ioctlSetFeatures,
		IoctlStatus:      c.ioctlStatus,
		IoctlGrantIO:     c.ioctlGrantIO,
		IoctlQueueStats:  c.ioctlQueueStats,
	} {
		if err := fw.RegisterIoctl(cmd, h); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// SetFeatures overrides the protection features for an enclave; it must be
// called before the enclave boots.
func (c *Controller) SetFeatures(encID int, f Features) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, booted := c.states[encID]; booted {
		return fmt.Errorf("covirt: enclave %d already booted", encID)
	}
	c.pending[encID] = f
	return nil
}

func (c *Controller) ioctlSetFeatures(arg any) (any, error) {
	a, ok := arg.(SetFeaturesArgs)
	if !ok {
		return nil, fmt.Errorf("covirt: IoctlSetFeatures wants SetFeaturesArgs")
	}
	return nil, c.SetFeatures(a.EnclaveID, a.Features)
}

func (c *Controller) ioctlStatus(arg any) (any, error) {
	id, ok := arg.(int)
	if !ok {
		return nil, fmt.Errorf("covirt: IoctlStatus wants an enclave id")
	}
	st := c.StatusFor(id)
	if st == nil {
		return nil, fmt.Errorf("covirt: enclave %d not under covirt", id)
	}
	return st, nil
}

func (c *Controller) ioctlQueueStats(arg any) (any, error) {
	id, ok := arg.(int)
	if !ok {
		return nil, fmt.Errorf("covirt: IoctlQueueStats wants an enclave id")
	}
	qs := c.QueueStatsFor(id)
	if qs == nil {
		return nil, fmt.Errorf("covirt: enclave %d not under covirt", id)
	}
	return qs, nil
}

// QueueStatsFor snapshots an enclave's per-core command-queue depths,
// epoch progress, and admission counters (the qstats operator view), or
// nil when the enclave is not under Covirt.
func (c *Controller) QueueStatsFor(encID int) *QueueStats {
	st := c.stateByID(encID)
	if st == nil {
		return nil
	}
	st.ingestMu.Lock()
	defer st.ingestMu.Unlock()
	out := &QueueStats{
		EnclaveID:    encID,
		Slots:        st.slots,
		Depth:        make(map[int]uint64, len(st.queues)),
		EpochIssued:  st.epoch,
		EpochApplied: make(map[int]uint64, len(st.queues)),
		Tokens:       st.qosTokens,
		Ingest:       st.ingest,
	}
	for coreID, q := range st.queues {
		out.Depth[coreID] = q.depth()
		out.EpochApplied[coreID] = q.epochApplied()
	}
	return out
}

func (c *Controller) ioctlGrantIO(arg any) (any, error) {
	a, ok := arg.(GrantIOArgs)
	if !ok {
		return nil, fmt.Errorf("covirt: IoctlGrantIO wants GrantIOArgs")
	}
	st := c.stateByID(a.EnclaveID)
	if st == nil {
		return nil, fmt.Errorf("covirt: enclave %d not under covirt", a.EnclaveID)
	}
	if !c.auth.Covers(a.Cap, a.EnclaveID, authority.KindIO, authority.RightMap,
		authority.IOScope(a.Port, a.Port)) {
		return nil, fmt.Errorf("covirt: I/O grant for port %#x denied (cap %d)", a.Port, a.Cap.ID)
	}
	st.io.Grant(a.Cap, a.Port, a.Port)
	return nil, nil
}

// DelegateIO mints an I/O capability for encID covering [lo, hi] from the
// controller's root — the assembly-time path testbeds and tools use before
// granting ports through IoctlGrantIO.
func (c *Controller) DelegateIO(encID int, lo, hi uint16) (authority.Cap, error) {
	return c.auth.Delegate(c.rootIO, encID,
		authority.RightRead|authority.RightWrite|authority.RightMap,
		authority.IOScope(lo, hi), fmt.Sprintf("io-e%d", encID))
}

// StatusFor returns runtime statistics for an enclave, or nil.
func (c *Controller) StatusFor(encID int) *Status {
	st := c.stateByID(encID)
	if st == nil {
		return nil
	}
	out := &Status{
		EnclaveID:   encID,
		Features:    st.feat,
		DroppedIPIs: st.filter.Dropped.Load(),
		MapOps:      st.mapOps,
		UnmapOps:    st.unmapOps,
		FlushCmds:   st.flushCmds,
		Exits:       make(map[string]uint64),
	}
	if st.ept != nil {
		out.EPT = st.ept.Stats()
	}
	for _, h := range st.hvs {
		for k, v := range h.Stats().Snapshot() {
			out.Exits[k] += v
		}
		_, cyc := h.Stats().Total()
		out.ExitCycles += cyc
	}
	return out
}

// Hypervisor returns the per-core hypervisor managing machine core cpuID of
// enclave encID (tests and tooling).
func (c *Controller) Hypervisor(encID, cpuID int) *Hypervisor {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.states[encID]; st != nil {
		return st.hvs[cpuID]
	}
	return nil
}

// FeaturesFor returns the active (or pending) features for an enclave.
func (c *Controller) FeaturesFor(encID int) Features {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.states[encID]; st != nil {
		return st.feat
	}
	if f, ok := c.pending[encID]; ok {
		return f
	}
	return c.defaults
}

// onEvent is the Hobbes bus subscription: every resource-management event
// becomes a direct edit of the affected enclave's virtualization context.
func (c *Controller) onEvent(ev *hobbes.Event) error {
	switch ev.Kind {
	case hobbes.EvEnclaveBootPre:
		return c.buildState(ev.Enclave)
	case hobbes.EvMemAddPre, hobbes.EvXememAttachPre:
		return c.mapExtents(ev)
	case hobbes.EvMemRemovePost, hobbes.EvXememDetachPost:
		return c.unmapAndFlush(ev)
	case hobbes.EvIngestFlush:
		return c.flushIngest(ev)
	case hobbes.EvCPUAddPre:
		return c.addCPU(ev)
	case hobbes.EvCPURemovePost:
		return c.removeCPU(ev)
	case hobbes.EvIPIGrant:
		if st := c.stateFor(ev.Enclave); st != nil {
			st.filter.Grant(ev.DestCore, ev.Vector, ev.Cap)
		}
	case hobbes.EvIPIRevoke:
		if st := c.stateFor(ev.Enclave); st != nil {
			st.filter.Revoke(ev.DestCore, ev.Vector)
		}
	case hobbes.EvCapRevoked:
		return c.capRevoked(ev)
	case hobbes.EvEnclaveCrashed, hobbes.EvEnclaveDestroyed:
		c.teardown(ev.Enclave)
	}
	return nil
}

// capRevoked propagates a capability kill into the holder's protection
// context: withdrawn memory and segment frames leave the EPT with a full
// command-queue TLB shootdown (the holder's next touch is a contained EPT
// violation), IPI routes leave the filter, I/O ports close. The key itself
// is already dead — the generation checks in the filter and I/O table make
// this cleanup, not enforcement.
//
//covirt:ambient revocation withdraws authority; the key was verified when granted
func (c *Controller) capRevoked(ev *hobbes.Event) error {
	st := c.stateFor(ev.Enclave)
	if st == nil {
		return nil
	}
	switch ev.Cap.Kind {
	case authority.KindMemory, authority.KindXemem:
		if len(ev.Extents) > 0 {
			return c.unmapAndFlush(ev)
		}
	case authority.KindIPI:
		st.filter.Revoke(ev.DestCore, ev.Vector)
	case authority.KindIO:
		st.io.RevokeCap(ev.Cap)
	}
	return nil
}

// stateFor looks up the controller state of an enclave.
func (c *Controller) stateFor(enc *pisces.Enclave) *enclaveState {
	if enc == nil {
		return nil
	}
	return c.stateByID(enc.ID)
}

// stateByID looks up controller state under the lock.
func (c *Controller) stateByID(encID int) *enclaveState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.states[encID]
}

// takeFeatures consumes the pending feature request for an enclave,
// falling back to the controller defaults.
func (c *Controller) takeFeatures(encID int) Features {
	c.mu.Lock()
	defer c.mu.Unlock()
	feat, ok := c.pending[encID]
	if !ok {
		feat = c.defaults
	}
	delete(c.pending, encID)
	return feat
}

// setState publishes a fully-built enclave state.
func (c *Controller) setState(encID int, st *enclaveState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.states[encID] = st
}

// takeState removes and returns the state of a dead enclave.
func (c *Controller) takeState(encID int) *enclaveState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.states[encID]
	delete(c.states, encID)
	delete(c.pending, encID)
	return st
}

// buildState constructs the full virtualization configuration for an
// enclave before any of its cores boot: EPT identity map of its assignment,
// intercept bitmaps, IPI whitelist, per-core VMCS, and per-core command
// queues — all written by the controller so the hypervisor can simply load
// and launch.
func (c *Controller) buildState(enc *pisces.Enclave) error {
	feat := c.takeFeatures(enc.ID)

	slots := feat.CmdQSlots
	if slots == 0 {
		slots = cmdqDefaultSlots
	}
	st := &enclaveState{
		enc:    enc,
		feat:   feat,
		filter: NewIPIFilter(enc.Cores, c.auth),
		io:     NewIOTable(c.auth),
		vmcs:   make(map[int]*vmx.VMCS),
		hvs:    make(map[int]*Hypervisor),
		queues: make(map[int]*cmdQueue),
		slots:  slots,
	}
	if feat.Memory {
		st.ept = vmx.NewEPT()
		if feat.EPTMaxPage > 0 {
			st.ept.SetMaxPageSize(feat.EPTMaxPage)
		}
		// The initial identity map covers exactly the extents the enclave
		// holds keys for: each EPT range is established from a verified
		// memory capability, never from the extent list alone.
		caps := enc.MemCaps()
		for i, ext := range enc.Mem() {
			if i >= len(caps) || !c.auth.Covers(caps[i], enc.ID, authority.KindMemory,
				authority.RightMap, authority.MemScope(ext.Start, ext.Size)) {
				return fmt.Errorf("covirt: no memory capability for boot extent %v of enclave %d", ext, enc.ID)
			}
			if err := st.ept.MapRange(ext.Start, ext.Size, vmx.PermAll); err != nil {
				return fmt.Errorf("covirt: initial EPT map %v: %w", ext, err)
			}
		}
	}
	if feat.MSR {
		st.msrBM = vmx.NewMSRBitmap()
		st.msrBM.InterceptAllWrites()
	}
	if feat.IO {
		st.ioBM = vmx.NewIOBitmap()
		st.ioBM.InterceptAll()
	}

	for _, coreID := range enc.Cores {
		if err := c.buildCPU(st, enc, coreID); err != nil {
			return err
		}
	}

	// Publish the Covirt boot-parameter block and point the Pisces boot
	// parameters at it, leaving everything else untouched.
	base := enc.Base()
	cbp := &BootParams{
		NumCPUs:        uint64(len(enc.Cores)),
		CmdQueueBase:   base + pisces.OffCovirtCmdQ,
		CmdQueueStride: CmdQueueStride,
		CmdQueueSlots:  st.slots,
		PiscesParams:   base + pisces.OffBootParams,
	}
	if err := encodeBootParams(c.mach.Mem, base+pisces.OffCovirtParams, cbp); err != nil {
		return err
	}
	hostIO := pisces.NativeMemIO{Mem: c.mach.Mem}
	pbp, err := pisces.DecodeBootParams(hostIO, base+pisces.OffBootParams)
	if err != nil {
		return err
	}
	pbp.CovirtParams = base + pisces.OffCovirtParams
	if err := pisces.EncodeBootParams(hostIO, base+pisces.OffBootParams, pbp); err != nil {
		return err
	}

	c.setState(enc.ID, st)
	return nil
}

// buildCPU constructs the per-core virtualization context — command queue
// slot, VMCS with feature-derived controls, pre-set guest state — for one
// enclave core. Used for every boot core and for hot-added cores.
func (c *Controller) buildCPU(st *enclaveState, enc *pisces.Enclave, coreID int) error {
	if st.nextSlot >= pisces.MaxBootCores {
		return fmt.Errorf("covirt: enclave %d exhausted its %d command-queue slots", enc.ID, pisces.MaxBootCores)
	}
	base := enc.Base()
	q, err := newCmdQueue(c.mach.Mem, base+pisces.OffCovirtCmdQ+uint64(st.nextSlot)*CmdQueueStride, st.slots)
	if err != nil {
		return err
	}
	st.nextSlot++
	st.queues[coreID] = q

	vmcs := vmx.NewVMCS(coreID)
	vmcs.Controls = vmx.Controls{
		EnableEPT:        st.feat.Memory,
		VirtualAPIC:      st.feat.IPI,
		PostedInterrupts: st.feat.IPI && st.feat.IPIMode == IPIPostedInterrupt,
		InterceptDF:      st.feat.Abort,
	}
	vmcs.EPT = st.ept
	vmcs.MSRBitmap = st.msrBM
	vmcs.IOBitmap = st.ioBM
	if vmcs.Controls.PostedInterrupts {
		vmcs.PID = &vmx.PostedIntDescriptor{}
		vmcs.NotificationVector = 0xF9
	}
	// Guest state mirrors what the Pisces trampoline would have set:
	// launch directly into the co-kernel entry in 64-bit mode with the
	// boot-parameter pointer in RSI.
	vmcs.Guest = vmx.GuestState{
		RIP: enc.Mem()[0].Start + pisces.ReservedBytes, // kernel entry
		RSP: enc.Mem()[0].End(),
		CR3: enc.Mem()[0].Start + pisces.ReservedBytes - hw.PageSize4K,
		RSI: base + pisces.OffBootParams,
	}
	st.vmcs[coreID] = vmcs
	return nil
}

// addCPU handles a hot-added core: build its virtualization context before
// the enclave is told about it (the framework then calls InterposeBoot on
// the new core), and extend the IPI whitelist.
func (c *Controller) addCPU(ev *hobbes.Event) error {
	st := c.stateFor(ev.Enclave)
	if st == nil {
		return nil
	}
	if err := c.buildCPU(st, ev.Enclave, ev.Core); err != nil {
		return err
	}
	st.filter.AddOwnCore(ev.Core)
	c.Trace().Record(-1, 0, "ctl:cpu-add", "enclave %d core %d", ev.Enclave.ID, ev.Core)
	return nil
}

// removeCPU tears down a hot-removed core's context after the co-kernel
// has released it.
func (c *Controller) removeCPU(ev *hobbes.Event) error {
	st := c.stateFor(ev.Enclave)
	if st == nil {
		return nil
	}
	st.filter.RemoveOwnCore(ev.Core)
	if q := st.queues[ev.Core]; q != nil {
		q.wake()
	}
	delete(st.queues, ev.Core)
	delete(st.vmcs, ev.Core)
	delete(st.hvs, ev.Core)
	if cpu := c.mach.CPU(ev.Core); cpu != nil {
		cpu.Virt = nil
	}
	c.Trace().Record(-1, 0, "ctl:cpu-remove", "enclave %d core %d", ev.Enclave.ID, ev.Core)
	return nil
}

// InterposeBoot implements pisces.BootInterposer: instead of booting the
// co-kernel directly, each core first enters the Covirt hypervisor, which
// validates its pre-built configuration and launches the guest.
func (c *Controller) InterposeBoot(enc *pisces.Enclave, cpu *hw.CPU, bpAddr uint64) error {
	st := c.stateFor(enc)
	if st == nil {
		return fmt.Errorf("covirt: no state for enclave %d (boot-pre event missed?)", enc.ID)
	}
	vmcs := st.vmcs[cpu.ID]
	if vmcs == nil {
		return fmt.Errorf("covirt: no VMCS for core %d", cpu.ID)
	}
	// The hypervisor reads its own boot parameters (validating the chain
	// the controller wrote) before launching.
	cbp, err := decodeBootParams(c.mach.Mem, enc.Base()+pisces.OffCovirtParams)
	if err != nil {
		return err
	}
	if cbp.PiscesParams != bpAddr {
		return fmt.Errorf("covirt: boot-parameter chain mismatch: %#x != %#x", cbp.PiscesParams, bpAddr)
	}
	tracer := c.Trace()
	h := &Hypervisor{
		cpu:    cpu,
		enc:    enc,
		feat:   st.feat,
		flt:    st.filter,
		queue:  st.queues[cpu.ID],
		io:     st.io,
		tracer: tracer,
		onFault: func(h *Hypervisor, reason string) {
			c.fw.ReportCrash(enc, "covirt: "+reason)
		},
	}
	h.vcpu = vmx.Launch(cpu, vmcs, h)
	st.hvs[cpu.ID] = h
	// World switch into the guest.
	cpu.TSC += cpu.Costs().VMEntry
	return nil
}

// mapExtents handles map-before-notify events: the extents become
// EPT-accessible before the enclave learns of them. No hypervisor
// synchronization is needed — nothing about an *absent* translation can be
// cached in a TLB.
func (c *Controller) mapExtents(ev *hobbes.Event) error {
	st := c.stateFor(ev.Enclave)
	if st == nil || st.ept == nil {
		return nil
	}
	ev.Cost += c.admit(st, ev)
	// Every mapping names its authorizing capability: a fresh memory grant
	// presents a memory key covering the extent; a XEMEM attach presents
	// the consumer's attach key. An absent or dead key aborts the
	// operation before anything reaches the EPT.
	switch ev.Kind {
	case hobbes.EvMemAddPre:
		for _, ext := range ev.Extents {
			if !c.auth.Covers(ev.Cap, ev.Enclave.ID, authority.KindMemory,
				authority.RightMap, authority.MemScope(ext.Start, ext.Size)) {
				return fmt.Errorf("covirt: memory grant %v denied for enclave %d (cap %d)",
					ext, ev.Enclave.ID, ev.Cap.ID)
			}
		}
	case hobbes.EvXememAttachPre:
		if !c.auth.Verify(ev.Cap, ev.Enclave.ID, authority.KindXemem, authority.RightAttach) {
			return fmt.Errorf("covirt: xemem attach of seg %d denied for enclave %d (cap %d)",
				ev.SegID, ev.Enclave.ID, ev.Cap.ID)
		}
	}
	for _, ext := range ev.Extents {
		before := st.ept.Stats().Pages()
		if err := st.ept.MapRange(ext.Start, ext.Size, vmx.PermAll); err != nil {
			return fmt.Errorf("covirt: EPT map %v: %w", ext, err)
		}
		st.mapOps++
		ev.Cost += (st.ept.Stats().Pages() - before) * costPerEPTLeaf
		c.Trace().Record(-1, 0, "ctl:map", "enclave %d %v (%s)", ev.Enclave.ID, ext, ev.Kind)
	}
	return nil
}

// admit applies the controller's admission policy to one ingest event of
// st's enclave and returns the stall cycles the caller charges to the
// event (outside the ingest lock, like every other event-cost charge). A
// stalled admission advances the controller's virtual clock by the stall
// (the wait IS the passage of time — deterministic for sequentially driven
// event streams), so a storming enclave self-paces without touching its
// neighbors' buckets.
func (c *Controller) admit(st *enclaveState, ev *hobbes.Event) uint64 {
	st.ingestMu.Lock()
	defer st.ingestMu.Unlock()
	st.ingest.Events++
	q := c.qosPolicy()
	if !q.enabled() {
		return 0
	}
	now := c.clock.Now()
	if !st.qosInit {
		st.qosInit = true
		st.qosTokens = q.Burst
		st.qosStamp = now
	}
	if refill := (now - st.qosStamp) / q.CyclesPerToken; refill > 0 {
		st.qosTokens += refill
		if st.qosTokens > q.Burst {
			st.qosTokens = q.Burst
		}
		st.qosStamp += refill * q.CyclesPerToken
	}
	var wait uint64
	if st.qosTokens == 0 {
		// Wait out the remainder of the current refill interval; the
		// token that accrues at its end is the one this event consumes.
		wait = q.CyclesPerToken - (now - st.qosStamp)
		c.clock.Advance(wait)
		st.qosStamp += q.CyclesPerToken
		st.qosTokens = 1
		st.ingest.AdmissionWaits++
		st.ingest.AdmissionWaitCycles += wait
	}
	st.qosTokens--
	return wait
}

// mergeExtents sorts ranges by start address and merges overlapping or
// adjacent ones in place, returning the shortened slice.
func mergeExtents(exts []hw.Extent) []hw.Extent {
	if len(exts) < 2 {
		return exts
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i].Start < exts[j].Start })
	out := exts[:1]
	for _, e := range exts[1:] {
		last := &out[len(out)-1]
		if e.Start <= last.Start+last.Size {
			if end := e.Start + e.Size; end > last.Start+last.Size {
				last.Size = end - last.Start
			}
			continue
		}
		out = append(out, e)
	}
	return out
}

// unmapAndFlush handles unmap-after-release events: the extents leave the
// EPT immediately and join the enclave's open shootdown epoch. For a
// standalone event the epoch closes right here — one merged flush per
// core, then wait until every core applies the epoch. An event marked
// MoreInBatch leaves the epoch open: the batch's final event (or the
// emitter's ingest-flush sweep) closes it, so N grants coalesce into one
// invalidation per core instead of N.
func (c *Controller) unmapAndFlush(ev *hobbes.Event) error {
	st := c.stateFor(ev.Enclave)
	if st == nil || st.ept == nil {
		return nil
	}
	ev.Cost += c.admit(st, ev)
	cost, err := c.unmapExtents(st, ev)
	ev.Cost += cost
	if err != nil {
		// Flush what already left the EPT before reporting: the failed
		// extent is still mapped, but the unmapped ones must not linger
		// in any TLB while the caller unwinds.
		fcost, _ := c.closeEpoch(st, ev.Enclave)
		ev.Cost += fcost
		return err
	}
	if ev.MoreInBatch {
		return nil
	}
	fcost, err := c.closeEpoch(st, ev.Enclave)
	ev.Cost += fcost
	return err
}

// unmapExtents removes the event's extents from the EPT and adds them to
// the enclave's open shootdown epoch, returning the unmap cycles charged
// to the event.
func (c *Controller) unmapExtents(st *enclaveState, ev *hobbes.Event) (uint64, error) {
	st.ingestMu.Lock()
	defer st.ingestMu.Unlock()
	var cost uint64
	for _, ext := range ev.Extents {
		if err := st.ept.UnmapRange(ext.Start, ext.Size); err != nil {
			return cost, fmt.Errorf("covirt: EPT unmap %v: %w", ext, err)
		}
		st.unmapOps++
		cost += (ext.Size / hw.PageSize2M) * costPerUnmapLeaf
		st.dirty = append(st.dirty, ext)
		c.Trace().Record(-1, 0, "ctl:unmap", "enclave %d %v (%s)", ev.Enclave.ID, ext, ev.Kind)
	}
	st.dirtyEvents++
	return cost, nil
}

// flushIngest closes an enclave's open shootdown epoch without unmapping
// anything — the defensive sweep batched emitters run so an aborted batch
// can never leave dirty ranges waiting on a closing event that will not
// come.
func (c *Controller) flushIngest(ev *hobbes.Event) error {
	st := c.stateFor(ev.Enclave)
	if st == nil || st.ept == nil {
		return nil
	}
	cost, err := c.closeEpoch(st, ev.Enclave)
	ev.Cost += cost
	return err
}

// closeEpoch seals the open shootdown epoch: the accumulated dirty ranges
// become one batched command push per core — merged (and collapsed to a
// CmdFlushAll past flushAllThreshold) when coalescing is on, verbatim
// per-extent when off — terminated by a CmdEpoch marker. Every core gets
// one doorbell, and the operation completes only when every core reports
// the epoch applied. Returns the issue and stall cycles charged to the
// triggering event.
func (c *Controller) closeEpoch(st *enclaveState, enc *pisces.Enclave) (uint64, error) {
	st.ingestMu.Lock()
	defer st.ingestMu.Unlock()
	if st.dirtyEvents == 0 && len(st.dirty) == 0 {
		return 0, nil
	}
	ranges := st.dirty
	st.dirty = nil
	st.dirtyEvents = 0
	raw := uint64(len(ranges))
	flushAll := false
	if c.coalesceOn() {
		ranges = mergeExtents(ranges)
		flushAll = len(ranges) > flushAllThreshold
	}
	st.epoch++
	epoch := st.epoch
	st.ingest.Epochs++

	recs := make([]cmdRec, 0, len(ranges)+1)
	if flushAll {
		recs = append(recs, cmdRec{Typ: CmdFlushAll})
	} else {
		for _, r := range ranges {
			recs = append(recs, cmdRec{Typ: CmdFlushRange, Arg0: r.Start, Arg1: r.Size})
		}
	}
	flushRecs := uint64(len(recs))
	recs = append(recs, cmdRec{Typ: CmdEpoch, Arg0: epoch})

	var cost uint64
	var queues []*cmdQueue
	for coreID, q := range st.queues {
		cpu := c.mach.CPU(coreID)
		_, stall, err := q.pushBatch(recs, cpu.APIC.RaiseNMI, enc.Done())
		if err != nil {
			// The enclave died under backpressure; nothing left to
			// synchronize.
			return cost, nil
		}
		cpu.APIC.RaiseNMI()
		st.flushCmds += flushRecs
		st.ingest.FlushCmds += flushRecs
		st.ingest.FlushCmdsSaved += raw - flushRecs
		st.ingest.StallCycles += stall
		cost += costCmdIssue + stall
		queues = append(queues, q)
	}
	for _, q := range queues {
		if err := q.waitEpoch(epoch, enc.Done()); err != nil {
			// The enclave died mid-flush; nothing left to synchronize.
			return cost, nil
		}
	}
	return cost, nil
}

// teardown drops controller state for a dead enclave and releases any
// waiters stuck on its command queues.
func (c *Controller) teardown(enc *pisces.Enclave) {
	if enc == nil {
		return
	}
	if st := c.takeState(enc.ID); st != nil {
		for _, q := range st.queues {
			q.wake()
		}
		c.Trace().Record(-1, 0, "ctl:teardown", "enclave %d state dropped (%d cores)", enc.ID, len(st.vmcs))
	}
}

var _ pisces.BootInterposer = (*Controller)(nil)
