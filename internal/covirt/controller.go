package covirt

import (
	"fmt"
	"sync"

	"covirt/internal/authority"
	"covirt/internal/hobbes"
	"covirt/internal/hw"
	"covirt/internal/pisces"
	"covirt/internal/trace"
	"covirt/internal/vmx"
)

// Management-plane cycle costs charged onto synchronous paths (the
// controller runs on host cores; guests blocked on an operation wait for
// this work, so it surfaces in latencies like the XEMEM attach delay).
const (
	costPerEPTLeaf   = 25  // writing one EPT leaf entry
	costPerUnmapLeaf = 30  // clearing entries, possibly splitting
	costCmdIssue     = 250 // queue write + NMI doorbell
)

// Ioctl numbers the controller registers with the Pisces framework's
// control ABI (the paper's "new set of ioctl commands").
const (
	IoctlSetFeatures uint32 = 0xC0560001 // arg: SetFeaturesArgs (pre-boot)
	IoctlStatus      uint32 = 0xC0560002 // arg: enclave id (int) -> *Status
	IoctlGrantIO     uint32 = 0xC0560003 // arg: GrantIOArgs
)

// SetFeaturesArgs selects an enclave's protection features (before boot).
type SetFeaturesArgs struct {
	EnclaveID int
	Features  Features
}

// GrantIOArgs permits an enclave to access an I/O port. Cap must be an
// I/O capability held by the enclave whose scope covers the port
// (delegated via Controller.DelegateIO or directly from the table).
type GrantIOArgs struct {
	EnclaveID int
	Port      uint16
	Cap       authority.Cap
}

// Status reports an enclave's Covirt runtime state.
type Status struct {
	EnclaveID   int
	Features    Features
	EPT         vmx.EPTStats
	Exits       map[string]uint64
	ExitCycles  uint64
	DroppedIPIs uint64
	MapOps      uint64
	UnmapOps    uint64
	FlushCmds   uint64
}

// enclaveState is the controller's view of one protected enclave: the
// hardware-level virtualization data structures it edits directly.
type enclaveState struct {
	enc  *pisces.Enclave
	feat Features

	ept    *vmx.EPT
	msrBM  *vmx.MSRBitmap
	ioBM   *vmx.IOBitmap
	filter *IPIFilter
	io     *IOTable

	vmcs   map[int]*vmx.VMCS
	hvs    map[int]*Hypervisor
	queues map[int]*cmdQueue

	// nextSlot indexes the per-CPU command-queue array for hot-added
	// cores (the reserved area holds pisces.MaxBootCores slots).
	nextSlot int

	mapOps    uint64
	unmapOps  uint64
	flushCmds uint64
}

// Controller is the Covirt controller module: it integrates with the
// Hobbes master control process and the Pisces framework, monitoring
// resource-management operations and translating them into hypervisor
// configuration changes.
type Controller struct {
	mach   *hw.Machine
	fw     *pisces.Framework
	master *hobbes.Master

	// auth is the node's capability table (shared with the framework);
	// rootIO is the host's root I/O capability from which port grants are
	// delegated.
	auth   *authority.Table
	rootIO authority.Cap

	mu       sync.Mutex
	defaults Features
	pending  map[int]Features // pre-boot per-enclave overrides
	states   map[int]*enclaveState

	// tracer is the optional flight recorder shared with all hypervisor
	// instances (nil-safe; see EnableTracing).
	tracer *trace.Buffer
}

// EnableTracing attaches a flight recorder capturing every VM exit and
// controller action; returns the buffer for inspection. Must be called
// before enclaves boot to capture their hypervisors' events.
func (c *Controller) EnableTracing(capacity int) *trace.Buffer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tracer == nil {
		c.tracer = trace.New(capacity)
	}
	return c.tracer
}

// Trace returns the flight recorder, or nil if tracing is disabled.
func (c *Controller) Trace() *trace.Buffer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tracer
}

// Attach loads the Covirt controller: it hooks the framework's boot path,
// subscribes to the Hobbes event bus, and registers its ioctl extensions.
// defaults are the protection features used for enclaves without an
// explicit IoctlSetFeatures/SetFeatures call.
func Attach(mach *hw.Machine, fw *pisces.Framework, master *hobbes.Master, defaults Features) (*Controller, error) {
	c := &Controller{
		mach:     mach,
		fw:       fw,
		master:   master,
		auth:     fw.Auth,
		defaults: defaults,
		pending:  make(map[int]Features),
		states:   make(map[int]*enclaveState),
	}
	c.rootIO = c.auth.Mint(0, authority.KindIO, authority.RightsAll,
		authority.WildScope(), "root-io")
	fw.SetInterposer(c)
	master.Bus.Subscribe(c.onEvent)
	for cmd, h := range map[uint32]func(any) (any, error){
		IoctlSetFeatures: c.ioctlSetFeatures,
		IoctlStatus:      c.ioctlStatus,
		IoctlGrantIO:     c.ioctlGrantIO,
	} {
		if err := fw.RegisterIoctl(cmd, h); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// SetFeatures overrides the protection features for an enclave; it must be
// called before the enclave boots.
func (c *Controller) SetFeatures(encID int, f Features) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, booted := c.states[encID]; booted {
		return fmt.Errorf("covirt: enclave %d already booted", encID)
	}
	c.pending[encID] = f
	return nil
}

func (c *Controller) ioctlSetFeatures(arg any) (any, error) {
	a, ok := arg.(SetFeaturesArgs)
	if !ok {
		return nil, fmt.Errorf("covirt: IoctlSetFeatures wants SetFeaturesArgs")
	}
	return nil, c.SetFeatures(a.EnclaveID, a.Features)
}

func (c *Controller) ioctlStatus(arg any) (any, error) {
	id, ok := arg.(int)
	if !ok {
		return nil, fmt.Errorf("covirt: IoctlStatus wants an enclave id")
	}
	st := c.StatusFor(id)
	if st == nil {
		return nil, fmt.Errorf("covirt: enclave %d not under covirt", id)
	}
	return st, nil
}

func (c *Controller) ioctlGrantIO(arg any) (any, error) {
	a, ok := arg.(GrantIOArgs)
	if !ok {
		return nil, fmt.Errorf("covirt: IoctlGrantIO wants GrantIOArgs")
	}
	st := c.stateByID(a.EnclaveID)
	if st == nil {
		return nil, fmt.Errorf("covirt: enclave %d not under covirt", a.EnclaveID)
	}
	if !c.auth.Covers(a.Cap, a.EnclaveID, authority.KindIO, authority.RightMap,
		authority.IOScope(a.Port, a.Port)) {
		return nil, fmt.Errorf("covirt: I/O grant for port %#x denied (cap %d)", a.Port, a.Cap.ID)
	}
	st.io.Grant(a.Cap, a.Port, a.Port)
	return nil, nil
}

// DelegateIO mints an I/O capability for encID covering [lo, hi] from the
// controller's root — the assembly-time path testbeds and tools use before
// granting ports through IoctlGrantIO.
func (c *Controller) DelegateIO(encID int, lo, hi uint16) (authority.Cap, error) {
	return c.auth.Delegate(c.rootIO, encID,
		authority.RightRead|authority.RightWrite|authority.RightMap,
		authority.IOScope(lo, hi), fmt.Sprintf("io-e%d", encID))
}

// StatusFor returns runtime statistics for an enclave, or nil.
func (c *Controller) StatusFor(encID int) *Status {
	st := c.stateByID(encID)
	if st == nil {
		return nil
	}
	out := &Status{
		EnclaveID:   encID,
		Features:    st.feat,
		DroppedIPIs: st.filter.Dropped.Load(),
		MapOps:      st.mapOps,
		UnmapOps:    st.unmapOps,
		FlushCmds:   st.flushCmds,
		Exits:       make(map[string]uint64),
	}
	if st.ept != nil {
		out.EPT = st.ept.Stats()
	}
	for _, h := range st.hvs {
		for k, v := range h.Stats().Snapshot() {
			out.Exits[k] += v
		}
		_, cyc := h.Stats().Total()
		out.ExitCycles += cyc
	}
	return out
}

// Hypervisor returns the per-core hypervisor managing machine core cpuID of
// enclave encID (tests and tooling).
func (c *Controller) Hypervisor(encID, cpuID int) *Hypervisor {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.states[encID]; st != nil {
		return st.hvs[cpuID]
	}
	return nil
}

// FeaturesFor returns the active (or pending) features for an enclave.
func (c *Controller) FeaturesFor(encID int) Features {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.states[encID]; st != nil {
		return st.feat
	}
	if f, ok := c.pending[encID]; ok {
		return f
	}
	return c.defaults
}

// onEvent is the Hobbes bus subscription: every resource-management event
// becomes a direct edit of the affected enclave's virtualization context.
func (c *Controller) onEvent(ev *hobbes.Event) error {
	switch ev.Kind {
	case hobbes.EvEnclaveBootPre:
		return c.buildState(ev.Enclave)
	case hobbes.EvMemAddPre, hobbes.EvXememAttachPre:
		return c.mapExtents(ev)
	case hobbes.EvMemRemovePost, hobbes.EvXememDetachPost:
		return c.unmapAndFlush(ev)
	case hobbes.EvCPUAddPre:
		return c.addCPU(ev)
	case hobbes.EvCPURemovePost:
		return c.removeCPU(ev)
	case hobbes.EvIPIGrant:
		if st := c.stateFor(ev.Enclave); st != nil {
			st.filter.Grant(ev.DestCore, ev.Vector, ev.Cap)
		}
	case hobbes.EvIPIRevoke:
		if st := c.stateFor(ev.Enclave); st != nil {
			st.filter.Revoke(ev.DestCore, ev.Vector)
		}
	case hobbes.EvCapRevoked:
		return c.capRevoked(ev)
	case hobbes.EvEnclaveCrashed, hobbes.EvEnclaveDestroyed:
		c.teardown(ev.Enclave)
	}
	return nil
}

// capRevoked propagates a capability kill into the holder's protection
// context: withdrawn memory and segment frames leave the EPT with a full
// command-queue TLB shootdown (the holder's next touch is a contained EPT
// violation), IPI routes leave the filter, I/O ports close. The key itself
// is already dead — the generation checks in the filter and I/O table make
// this cleanup, not enforcement.
//
//covirt:ambient revocation withdraws authority; the key was verified when granted
func (c *Controller) capRevoked(ev *hobbes.Event) error {
	st := c.stateFor(ev.Enclave)
	if st == nil {
		return nil
	}
	switch ev.Cap.Kind {
	case authority.KindMemory, authority.KindXemem:
		if len(ev.Extents) > 0 {
			return c.unmapAndFlush(ev)
		}
	case authority.KindIPI:
		st.filter.Revoke(ev.DestCore, ev.Vector)
	case authority.KindIO:
		st.io.RevokeCap(ev.Cap)
	}
	return nil
}

// stateFor looks up the controller state of an enclave.
func (c *Controller) stateFor(enc *pisces.Enclave) *enclaveState {
	if enc == nil {
		return nil
	}
	return c.stateByID(enc.ID)
}

// stateByID looks up controller state under the lock.
func (c *Controller) stateByID(encID int) *enclaveState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.states[encID]
}

// takeFeatures consumes the pending feature request for an enclave,
// falling back to the controller defaults.
func (c *Controller) takeFeatures(encID int) Features {
	c.mu.Lock()
	defer c.mu.Unlock()
	feat, ok := c.pending[encID]
	if !ok {
		feat = c.defaults
	}
	delete(c.pending, encID)
	return feat
}

// setState publishes a fully-built enclave state.
func (c *Controller) setState(encID int, st *enclaveState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.states[encID] = st
}

// takeState removes and returns the state of a dead enclave.
func (c *Controller) takeState(encID int) *enclaveState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.states[encID]
	delete(c.states, encID)
	delete(c.pending, encID)
	return st
}

// buildState constructs the full virtualization configuration for an
// enclave before any of its cores boot: EPT identity map of its assignment,
// intercept bitmaps, IPI whitelist, per-core VMCS, and per-core command
// queues — all written by the controller so the hypervisor can simply load
// and launch.
func (c *Controller) buildState(enc *pisces.Enclave) error {
	feat := c.takeFeatures(enc.ID)

	st := &enclaveState{
		enc:    enc,
		feat:   feat,
		filter: NewIPIFilter(enc.Cores, c.auth),
		io:     NewIOTable(c.auth),
		vmcs:   make(map[int]*vmx.VMCS),
		hvs:    make(map[int]*Hypervisor),
		queues: make(map[int]*cmdQueue),
	}
	if feat.Memory {
		st.ept = vmx.NewEPT()
		if feat.EPTMaxPage > 0 {
			st.ept.SetMaxPageSize(feat.EPTMaxPage)
		}
		// The initial identity map covers exactly the extents the enclave
		// holds keys for: each EPT range is established from a verified
		// memory capability, never from the extent list alone.
		caps := enc.MemCaps()
		for i, ext := range enc.Mem() {
			if i >= len(caps) || !c.auth.Covers(caps[i], enc.ID, authority.KindMemory,
				authority.RightMap, authority.MemScope(ext.Start, ext.Size)) {
				return fmt.Errorf("covirt: no memory capability for boot extent %v of enclave %d", ext, enc.ID)
			}
			if err := st.ept.MapRange(ext.Start, ext.Size, vmx.PermAll); err != nil {
				return fmt.Errorf("covirt: initial EPT map %v: %w", ext, err)
			}
		}
	}
	if feat.MSR {
		st.msrBM = vmx.NewMSRBitmap()
		st.msrBM.InterceptAllWrites()
	}
	if feat.IO {
		st.ioBM = vmx.NewIOBitmap()
		st.ioBM.InterceptAll()
	}

	for _, coreID := range enc.Cores {
		if err := c.buildCPU(st, enc, coreID); err != nil {
			return err
		}
	}

	// Publish the Covirt boot-parameter block and point the Pisces boot
	// parameters at it, leaving everything else untouched.
	base := enc.Base()
	cbp := &BootParams{
		NumCPUs:        uint64(len(enc.Cores)),
		CmdQueueBase:   base + pisces.OffCovirtCmdQ,
		CmdQueueStride: CmdQueueStride,
		PiscesParams:   base + pisces.OffBootParams,
	}
	if err := encodeBootParams(c.mach.Mem, base+pisces.OffCovirtParams, cbp); err != nil {
		return err
	}
	hostIO := pisces.NativeMemIO{Mem: c.mach.Mem}
	pbp, err := pisces.DecodeBootParams(hostIO, base+pisces.OffBootParams)
	if err != nil {
		return err
	}
	pbp.CovirtParams = base + pisces.OffCovirtParams
	if err := pisces.EncodeBootParams(hostIO, base+pisces.OffBootParams, pbp); err != nil {
		return err
	}

	c.setState(enc.ID, st)
	return nil
}

// buildCPU constructs the per-core virtualization context — command queue
// slot, VMCS with feature-derived controls, pre-set guest state — for one
// enclave core. Used for every boot core and for hot-added cores.
func (c *Controller) buildCPU(st *enclaveState, enc *pisces.Enclave, coreID int) error {
	if st.nextSlot >= pisces.MaxBootCores {
		return fmt.Errorf("covirt: enclave %d exhausted its %d command-queue slots", enc.ID, pisces.MaxBootCores)
	}
	base := enc.Base()
	q, err := newCmdQueue(c.mach.Mem, base+pisces.OffCovirtCmdQ+uint64(st.nextSlot)*CmdQueueStride)
	if err != nil {
		return err
	}
	st.nextSlot++
	st.queues[coreID] = q

	vmcs := vmx.NewVMCS(coreID)
	vmcs.Controls = vmx.Controls{
		EnableEPT:        st.feat.Memory,
		VirtualAPIC:      st.feat.IPI,
		PostedInterrupts: st.feat.IPI && st.feat.IPIMode == IPIPostedInterrupt,
		InterceptDF:      st.feat.Abort,
	}
	vmcs.EPT = st.ept
	vmcs.MSRBitmap = st.msrBM
	vmcs.IOBitmap = st.ioBM
	if vmcs.Controls.PostedInterrupts {
		vmcs.PID = &vmx.PostedIntDescriptor{}
		vmcs.NotificationVector = 0xF9
	}
	// Guest state mirrors what the Pisces trampoline would have set:
	// launch directly into the co-kernel entry in 64-bit mode with the
	// boot-parameter pointer in RSI.
	vmcs.Guest = vmx.GuestState{
		RIP: enc.Mem()[0].Start + pisces.ReservedBytes, // kernel entry
		RSP: enc.Mem()[0].End(),
		CR3: enc.Mem()[0].Start + pisces.ReservedBytes - hw.PageSize4K,
		RSI: base + pisces.OffBootParams,
	}
	st.vmcs[coreID] = vmcs
	return nil
}

// addCPU handles a hot-added core: build its virtualization context before
// the enclave is told about it (the framework then calls InterposeBoot on
// the new core), and extend the IPI whitelist.
func (c *Controller) addCPU(ev *hobbes.Event) error {
	st := c.stateFor(ev.Enclave)
	if st == nil {
		return nil
	}
	if err := c.buildCPU(st, ev.Enclave, ev.Core); err != nil {
		return err
	}
	st.filter.AddOwnCore(ev.Core)
	c.Trace().Record(-1, 0, "ctl:cpu-add", "enclave %d core %d", ev.Enclave.ID, ev.Core)
	return nil
}

// removeCPU tears down a hot-removed core's context after the co-kernel
// has released it.
func (c *Controller) removeCPU(ev *hobbes.Event) error {
	st := c.stateFor(ev.Enclave)
	if st == nil {
		return nil
	}
	st.filter.RemoveOwnCore(ev.Core)
	if q := st.queues[ev.Core]; q != nil {
		q.wake()
	}
	delete(st.queues, ev.Core)
	delete(st.vmcs, ev.Core)
	delete(st.hvs, ev.Core)
	if cpu := c.mach.CPU(ev.Core); cpu != nil {
		cpu.Virt = nil
	}
	c.Trace().Record(-1, 0, "ctl:cpu-remove", "enclave %d core %d", ev.Enclave.ID, ev.Core)
	return nil
}

// InterposeBoot implements pisces.BootInterposer: instead of booting the
// co-kernel directly, each core first enters the Covirt hypervisor, which
// validates its pre-built configuration and launches the guest.
func (c *Controller) InterposeBoot(enc *pisces.Enclave, cpu *hw.CPU, bpAddr uint64) error {
	st := c.stateFor(enc)
	if st == nil {
		return fmt.Errorf("covirt: no state for enclave %d (boot-pre event missed?)", enc.ID)
	}
	vmcs := st.vmcs[cpu.ID]
	if vmcs == nil {
		return fmt.Errorf("covirt: no VMCS for core %d", cpu.ID)
	}
	// The hypervisor reads its own boot parameters (validating the chain
	// the controller wrote) before launching.
	cbp, err := decodeBootParams(c.mach.Mem, enc.Base()+pisces.OffCovirtParams)
	if err != nil {
		return err
	}
	if cbp.PiscesParams != bpAddr {
		return fmt.Errorf("covirt: boot-parameter chain mismatch: %#x != %#x", cbp.PiscesParams, bpAddr)
	}
	tracer := c.Trace()
	h := &Hypervisor{
		cpu:    cpu,
		enc:    enc,
		feat:   st.feat,
		flt:    st.filter,
		queue:  st.queues[cpu.ID],
		io:     st.io,
		tracer: tracer,
		onFault: func(h *Hypervisor, reason string) {
			c.fw.ReportCrash(enc, "covirt: "+reason)
		},
	}
	h.vcpu = vmx.Launch(cpu, vmcs, h)
	st.hvs[cpu.ID] = h
	// World switch into the guest.
	cpu.TSC += cpu.Costs().VMEntry
	return nil
}

// mapExtents handles map-before-notify events: the extents become
// EPT-accessible before the enclave learns of them. No hypervisor
// synchronization is needed — nothing about an *absent* translation can be
// cached in a TLB.
func (c *Controller) mapExtents(ev *hobbes.Event) error {
	st := c.stateFor(ev.Enclave)
	if st == nil || st.ept == nil {
		return nil
	}
	// Every mapping names its authorizing capability: a fresh memory grant
	// presents a memory key covering the extent; a XEMEM attach presents
	// the consumer's attach key. An absent or dead key aborts the
	// operation before anything reaches the EPT.
	switch ev.Kind {
	case hobbes.EvMemAddPre:
		for _, ext := range ev.Extents {
			if !c.auth.Covers(ev.Cap, ev.Enclave.ID, authority.KindMemory,
				authority.RightMap, authority.MemScope(ext.Start, ext.Size)) {
				return fmt.Errorf("covirt: memory grant %v denied for enclave %d (cap %d)",
					ext, ev.Enclave.ID, ev.Cap.ID)
			}
		}
	case hobbes.EvXememAttachPre:
		if !c.auth.Verify(ev.Cap, ev.Enclave.ID, authority.KindXemem, authority.RightAttach) {
			return fmt.Errorf("covirt: xemem attach of seg %d denied for enclave %d (cap %d)",
				ev.SegID, ev.Enclave.ID, ev.Cap.ID)
		}
	}
	for _, ext := range ev.Extents {
		before := st.ept.Stats().Pages()
		if err := st.ept.MapRange(ext.Start, ext.Size, vmx.PermAll); err != nil {
			return fmt.Errorf("covirt: EPT map %v: %w", ext, err)
		}
		st.mapOps++
		ev.Cost += (st.ept.Stats().Pages() - before) * costPerEPTLeaf
		c.Trace().Record(-1, 0, "ctl:map", "enclave %d %v (%s)", ev.Enclave.ID, ext, ev.Kind)
	}
	return nil
}

// unmapAndFlush handles unmap-after-release events: the extents leave the
// EPT, then every enclave CPU is told (command queue + NMI) to flush its
// TLB, and the operation completes only after all CPUs have done so.
func (c *Controller) unmapAndFlush(ev *hobbes.Event) error {
	st := c.stateFor(ev.Enclave)
	if st == nil || st.ept == nil {
		return nil
	}
	for _, ext := range ev.Extents {
		if err := st.ept.UnmapRange(ext.Start, ext.Size); err != nil {
			return fmt.Errorf("covirt: EPT unmap %v: %w", ext, err)
		}
		st.unmapOps++
		ev.Cost += (ext.Size / hw.PageSize2M) * costPerUnmapLeaf
		c.Trace().Record(-1, 0, "ctl:unmap", "enclave %d %v (%s)", ev.Enclave.ID, ext, ev.Kind)
	}
	// Synchronize: stale translations may be cached on any enclave core.
	type pendingWait struct {
		q   *cmdQueue
		seq uint64
	}
	var waits []pendingWait
	for coreID, q := range st.queues {
		var firstErr error
		var lastSeq uint64
		for _, ext := range ev.Extents {
			seq, err := q.push(CmdFlushRange, ext.Start, ext.Size)
			if err != nil {
				firstErr = err
				break
			}
			lastSeq = seq
		}
		if firstErr != nil {
			return firstErr
		}
		c.mach.CPU(coreID).APIC.RaiseNMI()
		st.flushCmds++
		ev.Cost += costCmdIssue
		waits = append(waits, pendingWait{q, lastSeq})
	}
	for _, w := range waits {
		if err := w.q.waitCompleted(w.seq, ev.Enclave.Done()); err != nil {
			// The enclave died mid-flush; nothing left to synchronize.
			return nil
		}
	}
	return nil
}

// teardown drops controller state for a dead enclave and releases any
// waiters stuck on its command queues.
func (c *Controller) teardown(enc *pisces.Enclave) {
	if enc == nil {
		return
	}
	if st := c.takeState(enc.ID); st != nil {
		for _, q := range st.queues {
			q.wake()
		}
		c.Trace().Record(-1, 0, "ctl:teardown", "enclave %d state dropped (%d cores)", enc.ID, len(st.vmcs))
	}
}

var _ pisces.BootInterposer = (*Controller)(nil)
