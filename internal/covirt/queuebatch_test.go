package covirt_test

import (
	"fmt"
	"sync"
	"testing"

	"covirt/internal/covirt"
	"covirt/internal/hobbes"
	"covirt/internal/hw"
	"covirt/internal/kitten"
	"covirt/internal/pisces"
	"covirt/internal/testbed"
)

// addAndWarm grants count 2 MiB extents to enc and warms every enclave
// core's TLB with one page inside each, returning the extents.
func addAndWarm(t *testing.T, r *rig, enc *pisces.Enclave, k *kitten.Kernel, cores, count int) []hw.Extent {
	t.Helper()
	exts := make([]hw.Extent, 0, count)
	for i := 0; i < count; i++ {
		ext, err := r.h.Pisces.AddMemory(enc, 0, 2<<20)
		if err != nil {
			t.Fatal(err)
		}
		exts = append(exts, ext)
	}
	for core := 0; core < cores; core++ {
		exts := exts
		task, _ := k.Spawn("warm", core, func(e *kitten.Env) error {
			for _, ext := range exts {
				e.Access(ext.Start+4096, false, hw.AccessHot)
			}
			return nil
		})
		if err := task.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	return exts
}

// TestEpochCoalescingEquivalence proves the invalidation semantics of the
// coalesced path: a batched removal with range merging on and the same
// removal with merging off must leave every enclave core's TLB in the same
// state (no stale translation for any removed page), while the coalesced
// run pushes strictly fewer flush commands. Both runs close exactly one
// epoch per batch.
func TestEpochCoalescingEquivalence(t *testing.T) {
	const cores, extents = 2, 4
	for _, coalesce := range []bool{true, false} {
		r := newRig(t, covirt.FeaturesMem)
		r.ctrl.SetCoalescing(coalesce)
		enc, k := r.boot(t, "lwk", cores, []int{0}, 128<<20)
		exts := addAndWarm(t, r, enc, k, cores, extents)
		if err := r.h.Pisces.RemoveMemoryBatch(enc, exts); err != nil {
			t.Fatalf("coalesce=%v: %v", coalesce, err)
		}
		for core := 0; core < cores; core++ {
			for _, ext := range exts {
				if k.CPU(core).TLB.Lookup(ext.Start + 4096) {
					t.Errorf("coalesce=%v: core %d holds a stale translation for %v", coalesce, core, ext)
				}
			}
		}
		qs := r.ctrl.QueueStatsFor(enc.ID)
		if qs.Ingest.Epochs != 1 {
			t.Errorf("coalesce=%v: epochs = %d, want 1", coalesce, qs.Ingest.Epochs)
		}
		// Adjacent 2 MiB grants merge into one range: one flush per core
		// coalesced, one per extent per core verbatim.
		want := uint64(cores * extents)
		if coalesce {
			want = uint64(cores)
		}
		if qs.Ingest.FlushCmds != want {
			t.Errorf("coalesce=%v: flush cmds = %d, want %d", coalesce, qs.Ingest.FlushCmds, want)
		}
		if coalesce && qs.Ingest.FlushCmdsSaved == 0 {
			t.Error("coalescing saved no flush commands")
		}
	}
}

// TestBatchedRemoveFlushAllThreshold: past the range-count threshold the
// coalesced epoch collapses to a single CmdFlushAll per core, and every
// removed translation is still gone.
func TestBatchedRemoveFlushAllThreshold(t *testing.T) {
	const cores = 2
	r := newRig(t, covirt.FeaturesMem)
	enc, k := r.boot(t, "lwk", cores, []int{0}, 128<<20)
	// Interleave two enclave-owned regions so merging cannot collapse the
	// batch below the threshold: grant 2 MiB extents, keeping every other
	// one, then remove the 9+ disjoint survivors in one batch.
	var keep, remove []hw.Extent
	for i := 0; i < 20; i++ {
		ext, err := r.h.Pisces.AddMemory(enc, 0, 2<<20)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			remove = append(remove, ext)
		} else {
			keep = append(keep, ext)
		}
	}
	for core := 0; core < cores; core++ {
		remove := remove
		task, _ := k.Spawn("warm", core, func(e *kitten.Env) error {
			for _, ext := range remove {
				e.Access(ext.Start+4096, false, hw.AccessHot)
			}
			return nil
		})
		if err := task.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.h.Pisces.RemoveMemoryBatch(enc, remove); err != nil {
		t.Fatal(err)
	}
	qs := r.ctrl.QueueStatsFor(enc.ID)
	// 10 disjoint ranges > flushAllThreshold: one CmdFlushAll per core.
	if qs.Ingest.FlushCmds != cores {
		t.Errorf("flush cmds = %d, want %d (one CmdFlushAll per core)", qs.Ingest.FlushCmds, cores)
	}
	for core := 0; core < cores; core++ {
		for _, ext := range remove {
			if k.CPU(core).TLB.Lookup(ext.Start + 4096) {
				t.Errorf("core %d holds a stale translation for %v", core, ext)
			}
		}
	}
	for _, ext := range keep {
		if err := r.h.Pisces.RemoveMemory(enc, ext); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOldGeometryBackpressure is the end-to-end regression for the hard
// "command queue full" failure: with the pre-batching 8-slot ring and
// coalescing off, a 16-extent batch pushes 17 records per core — the old
// code errored out of the unmap; the new path parks under backpressure and
// completes, charging the stall.
func TestOldGeometryBackpressure(t *testing.T) {
	r := newRig(t, covirt.FeaturesMem)
	r.ctrl.SetCoalescing(false)
	feat := covirt.FeaturesMem
	feat.CmdQSlots = 8
	be, err := r.node.BootGuest(testbed.Guest{
		Name: "old", Cores: 2, Nodes: []int{0}, MemBytes: 128 << 20, Features: &feat,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.h.Pisces.Destroy(be.Enc) })
	enc, k := be.Enc, be.Kitten

	exts := addAndWarm(t, r, enc, k, 2, 16)
	if err := r.h.Pisces.RemoveMemoryBatch(enc, exts); err != nil {
		t.Fatalf("batched remove overflowing the old geometry: %v", err)
	}
	qs := r.ctrl.QueueStatsFor(enc.ID)
	if qs.Slots != 8 {
		t.Fatalf("ring slots = %d, want the old 8-slot geometry", qs.Slots)
	}
	if qs.Ingest.StallCycles == 0 {
		t.Error("overflowing the 8-slot ring charged no backpressure stall")
	}
	for core := 0; core < 2; core++ {
		for _, ext := range exts {
			if k.CPU(core).TLB.Lookup(ext.Start + 4096) {
				t.Errorf("core %d holds a stale translation for %v", core, ext)
			}
		}
	}
}

// TestQoSStarvation measures the admission isolation property: a
// grant-storming enclave is paced by its token bucket (admission waits
// accumulate) while an interleaved well-behaved victim is admitted without
// a single wait — its per-event apply cost, including p99, is identical to
// a run with no stormer at all.
func TestQoSStarvation(t *testing.T) {
	policy := covirt.QoS{Burst: 8, CyclesPerToken: 10000}
	const victimPairs = 4

	// victimCosts drives the victim's event sequence on rig r and returns
	// the per-remove-event costs observed on the bus.
	victimCosts := func(r *rig, victim *pisces.Enclave, storm func(i int)) []uint64 {
		var costs []uint64
		r.h.Master.Bus.Subscribe(func(ev *hobbes.Event) error {
			if ev.Kind == hobbes.EvMemRemovePost && ev.Enclave == victim {
				costs = append(costs, ev.Cost)
			}
			return nil
		})
		for i := 0; i < victimPairs; i++ {
			if storm != nil {
				storm(i)
			}
			ext, err := r.h.Pisces.AddMemory(victim, 0, 2<<20)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.h.Pisces.RemoveMemory(victim, ext); err != nil {
				t.Fatal(err)
			}
		}
		return costs
	}

	// Control: the victim alone under the same QoS policy.
	ctl := newRig(t, covirt.FeaturesMem)
	ctl.ctrl.SetQoS(policy)
	victimAlone, _ := ctl.boot(t, "victim", 1, []int{0}, 128<<20)
	baseline := victimCosts(ctl, victimAlone, nil)

	// Measured: the victim interleaved with a storming neighbor that
	// bursts 10 grant/revoke pairs (20 admissions) before every victim
	// pair.
	r := newRig(t, covirt.FeaturesMem)
	r.ctrl.SetQoS(policy)
	stormer, _ := r.boot(t, "stormer", 1, []int{0}, 128<<20)
	victim, _ := r.boot(t, "victim", 1, []int{0}, 128<<20)
	costs := victimCosts(r, victim, func(int) {
		for s := 0; s < 10; s++ {
			ext, err := r.h.Pisces.AddMemory(stormer, 0, 2<<20)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.h.Pisces.RemoveMemory(stormer, ext); err != nil {
				t.Fatal(err)
			}
		}
	})

	sq := r.ctrl.QueueStatsFor(stormer.ID)
	if sq.Ingest.AdmissionWaits == 0 {
		t.Error("storming enclave was never paced by its token bucket")
	}
	vq := r.ctrl.QueueStatsFor(victim.ID)
	if vq.Ingest.AdmissionWaits != 0 {
		t.Errorf("victim enclave hit %d admission waits; QoS leaked across enclaves", vq.Ingest.AdmissionWaits)
	}
	if len(costs) != len(baseline) {
		t.Fatalf("victim events = %d with stormer, %d alone", len(costs), len(baseline))
	}
	for i := range costs {
		if costs[i] != baseline[i] {
			t.Errorf("victim event %d cost %d with stormer, %d alone; p99 not flat", i, costs[i], baseline[i])
		}
	}
}

// TestConcurrentMultiEnclaveIngest is the -race stress for the ingest
// path: several enclaves push grant/revoke traffic (single events and
// batches) concurrently while an observer polls queue statistics. Any data
// race between pushers, the per-core drainers, and the stats snapshots is
// the failure.
func TestConcurrentMultiEnclaveIngest(t *testing.T) {
	const enclaves = 3
	r := newRig(t, covirt.FeaturesMem)
	r.ctrl.SetQoS(covirt.QoS{Burst: 64, CyclesPerToken: 1000})
	// The rig donates three cores per node; the third two-core enclave
	// straddles both nodes.
	nodeSets := [][]int{{0}, {1}, {0, 1}}
	encs := make([]*pisces.Enclave, enclaves)
	for i := range encs {
		encs[i], _ = r.boot(t, fmt.Sprintf("lwk%d", i), 2, nodeSets[i], 64<<20)
	}

	iters := 24
	if testing.Short() {
		iters = 8
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	observerDone := make(chan struct{})
	go func() { // observer: stats snapshots race against pushers/drainers
		defer close(observerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, enc := range encs {
				_ = r.ctrl.QueueStatsFor(enc.ID)
			}
		}
	}()
	for i, enc := range encs {
		wg.Add(1)
		go func(node int, enc *pisces.Enclave) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				if it%3 == 0 { // batched revoke
					var exts []hw.Extent
					for j := 0; j < 4; j++ {
						ext, err := r.h.Pisces.AddMemory(enc, node, 2<<20)
						if err != nil {
							t.Errorf("enclave %d: add: %v", enc.ID, err)
							return
						}
						exts = append(exts, ext)
					}
					if err := r.h.Pisces.RemoveMemoryBatch(enc, exts); err != nil {
						t.Errorf("enclave %d: batch remove: %v", enc.ID, err)
						return
					}
					continue
				}
				ext, err := r.h.Pisces.AddMemory(enc, node, 2<<20)
				if err != nil {
					t.Errorf("enclave %d: add: %v", enc.ID, err)
					return
				}
				if err := r.h.Pisces.RemoveMemory(enc, ext); err != nil {
					t.Errorf("enclave %d: remove: %v", enc.ID, err)
					return
				}
			}
		}(i%2, enc)
	}
	wg.Wait()
	close(stop)
	<-observerDone

	for _, enc := range encs {
		qs := r.ctrl.QueueStatsFor(enc.ID)
		if qs == nil {
			t.Fatalf("no stats for enclave %d", enc.ID)
		}
		if qs.Ingest.Epochs == 0 || qs.Ingest.FlushCmds == 0 {
			t.Errorf("enclave %d saw no ingest traffic: %+v", enc.ID, qs.Ingest)
		}
		for core, d := range qs.Depth {
			if d != 0 {
				t.Errorf("enclave %d core %d left %d undrained records", enc.ID, core, d)
			}
		}
	}
}
