package covirt_test

import (
	"testing"

	"covirt/internal/covirt"
	"covirt/internal/hobbes"
	"covirt/internal/hw"
	"covirt/internal/kitten"
)

// TestMapBeforeNotifyOrdering verifies the paper's assignment ordering: by
// the time the mem-add event propagates (and hence before the enclave is
// told about the memory), the extent is already present in the EPT.
func TestMapBeforeNotifyOrdering(t *testing.T) {
	r := newRig(t, covirt.FeaturesMem)
	enc, _ := r.boot(t, "lwk", 1, []int{0}, 128<<20)

	var sawMapped bool
	// Subscribed after the controller: runs once the controller handled
	// the same event.
	r.h.Master.Bus.Subscribe(func(ev *hobbes.Event) error {
		if ev.Kind == hobbes.EvMemAddPre && ev.Enclave == enc {
			for _, x := range ev.Extents {
				if r.ctrl.EPTMapped(enc, x.Start) && r.ctrl.EPTMapped(enc, x.End()-hw.PageSize4K) {
					sawMapped = true
				}
			}
		}
		return nil
	})
	if _, err := r.h.Pisces.AddMemory(enc, 0, 32<<20); err != nil {
		t.Fatal(err)
	}
	if !sawMapped {
		t.Fatal("extent not EPT-mapped before the enclave was notified")
	}
}

// TestUnmapFlushBeforeReclaim verifies the release ordering: when
// RemoveMemory returns, every enclave core's TLB has dropped translations
// for the removed range — even cores that never ran a task during the
// operation (their flush is NMI-driven in the idle loop).
func TestUnmapFlushBeforeReclaim(t *testing.T) {
	r := newRig(t, covirt.FeaturesMem)
	enc, k := r.boot(t, "lwk", 2, []int{0}, 128<<20)
	ext, err := r.h.Pisces.AddMemory(enc, 0, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Warm both cores' TLBs inside the new extent.
	for core := 0; core < 2; core++ {
		task, _ := k.Spawn("warm", core, func(e *kitten.Env) error {
			e.Access(ext.Start+8192, false, hw.AccessHot)
			return nil
		})
		if err := task.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.h.Pisces.RemoveMemory(enc, ext); err != nil {
		t.Fatal(err)
	}
	// RemoveMemory has returned: the hypervisor on every core must have
	// processed its flush command (the controller waited for completion).
	st := r.ctrl.StatusFor(enc.ID)
	if st.FlushCmds != 2 {
		t.Errorf("flush commands = %d, want one per core", st.FlushCmds)
	}
	for core := 0; core < 2; core++ {
		if k.CPU(core).TLB.Lookup(ext.Start + 8192) {
			t.Errorf("core %d holds a stale translation after RemoveMemory returned", core)
		}
	}
	if st.Exits["EXCEPTION_NMI"] == 0 {
		t.Error("no NMI doorbells recorded")
	}
}

// TestAsyncUpdateDoesNotPauseEnclave verifies that a configuration change
// (memory grant) does not stop a concurrently running guest: the update is
// asynchronous with respect to the enclave's execution.
func TestAsyncUpdateDoesNotPauseEnclave(t *testing.T) {
	r := newRig(t, covirt.FeaturesMem)
	enc, k := r.boot(t, "lwk", 2, []int{0}, 256<<20)

	stop := make(chan struct{})
	progress := make(chan uint64, 1)
	worker, _ := k.Spawn("worker", 1, func(e *kitten.Env) error {
		var ops uint64
		for {
			select {
			case <-stop:
				progress <- ops
				return nil
			default:
			}
			if err := e.CPU.Compute(1000); err != nil {
				return err
			}
			ops++
		}
	})
	// Issue several grows/shrinks while the worker runs.
	for i := 0; i < 4; i++ {
		ext, err := r.h.Pisces.AddMemory(enc, 0, 16<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.h.Pisces.RemoveMemory(enc, ext); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := worker.Wait(); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if ops := <-progress; ops == 0 {
		t.Error("worker made no progress during reconfiguration")
	}
	if st := r.ctrl.StatusFor(enc.ID); st.MapOps != 4 || st.UnmapOps != 4 {
		t.Errorf("map/unmap ops = %d/%d", st.MapOps, st.UnmapOps)
	}
}

// TestHypervisorStackBudget verifies the minimal-execution-context
// property: exit handling never exceeds the fixed 8 KiB stack and always
// unwinds fully.
func TestHypervisorStackBudget(t *testing.T) {
	r := newRig(t, covirt.FeaturesAll)
	enc, k := r.boot(t, "lwk", 1, []int{0}, 128<<20)
	task, _ := k.Spawn("exits", 0, func(e *kitten.Env) error {
		for i := 0; i < 50; i++ {
			e.SendIPI(0, 0x70) // ICR exits
			if err := e.CPU.CPUID(); err != nil {
				return err
			}
		}
		return nil
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	hv := r.ctrl.Hypervisor(enc.ID, k.CPU(0).ID)
	if hv == nil {
		t.Fatal("no hypervisor")
	}
	if d := hv.StackDepth(); d != 0 {
		t.Errorf("stack depth %d after exits; leak", d)
	}
	if exits, _ := hv.Stats().Total(); exits < 100 {
		t.Errorf("exits = %d", exits)
	}
}

// TestControllerRejectsDoubleAttachState exercises buildState error paths:
// booting an enclave whose extents were (incorrectly) already mapped.
func TestControllerStateLifecycle(t *testing.T) {
	r := newRig(t, covirt.FeaturesMem)
	enc, _ := r.boot(t, "lwk", 1, []int{0}, 128<<20)
	if !r.ctrl.HasState(enc) {
		t.Fatal("no controller state while running")
	}
	if err := r.h.Pisces.Destroy(enc); err != nil {
		t.Fatal(err)
	}
	if r.ctrl.HasState(enc) {
		t.Error("controller state survived destroy")
	}
	if r.ctrl.StatusFor(enc.ID) != nil {
		t.Error("status available for destroyed enclave")
	}
}
