package covirt

import (
	"sync"
	"sync/atomic"

	"covirt/internal/authority"
)

// ipiKey identifies one (destination core, vector) pair.
type ipiKey struct {
	dest   int
	vector uint8
}

// IPIFilter is the per-enclave IPI whitelist consulted by the hypervisor
// on every trapped ICR write. Enclave-internal IPIs are always permitted
// (any vector to the enclave's own cores); cross-enclave notification
// vectors must be granted through the Hobbes master control process.
//
// The filter is shared state between the controller (which edits it) and
// the hypervisor instances (which read it at exit time). Because it is
// consulted on every trapped send and never cached by the guest CPU,
// grants and revocations take effect without hypervisor synchronization —
// one of the "many cases" where the controller updates state directly.
//
// Each grant stores the capability that authorized it, and every send
// re-checks the key's generation against the table (one atomic load), so
// revoking the capability kills the route even before the controller's
// bookkeeping catches up.
type IPIFilter struct {
	mu       sync.RWMutex
	ownCores map[int]bool
	grants   map[ipiKey]authority.Cap
	auth     *authority.Table

	// Dropped counts filtered (errant) IPIs.
	Dropped atomic.Uint64
	// Checked counts whitelist consultations.
	Checked atomic.Uint64
}

// NewIPIFilter builds a filter whitelisting the enclave's own cores;
// cross-enclave grants are verified against auth (nil disables the
// liveness check, for self-contained tests).
func NewIPIFilter(ownCores []int, auth *authority.Table) *IPIFilter {
	f := &IPIFilter{
		ownCores: make(map[int]bool),
		grants:   make(map[ipiKey]authority.Cap),
		auth:     auth,
	}
	for _, c := range ownCores {
		f.ownCores[c] = true
	}
	return f
}

// AddOwnCore whitelists a hot-added enclave core for all vectors.
func (f *IPIFilter) AddOwnCore(core int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ownCores[core] = true
}

// RemoveOwnCore drops a hot-removed core from the whitelist.
func (f *IPIFilter) RemoveOwnCore(core int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.ownCores, core)
}

// Grant permits sending vector to machine core dest, recording the
// capability that authorized the route.
func (f *IPIFilter) Grant(dest int, vector uint8, cap authority.Cap) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.grants[ipiKey{dest, vector}] = cap
}

// Revoke withdraws a grant.
func (f *IPIFilter) Revoke(dest int, vector uint8) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.grants, ipiKey{dest, vector})
}

// allowed consults the whitelist under the read lock. A cross-enclave
// route is honored only while its capability's generation is current.
func (f *IPIFilter) allowed(dest int, vector uint8) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.ownCores[dest] {
		return true
	}
	cap, ok := f.grants[ipiKey{dest, vector}]
	if !ok {
		return false
	}
	return f.auth == nil || f.auth.Alive(cap)
}

// Permitted reports whether an IPI to (dest, vector) may be delivered,
// updating the filter counters.
func (f *IPIFilter) Permitted(dest int, vector uint8) bool {
	f.Checked.Add(1)
	ok := f.allowed(dest, vector)
	if !ok {
		f.Dropped.Add(1)
	}
	return ok
}
