package covirt_test

import (
	"strings"
	"testing"
	"time"

	"covirt/internal/covirt"
	"covirt/internal/hw"
	"covirt/internal/kitten"
	"covirt/internal/linuxhost"
	"covirt/internal/pisces"
	"covirt/internal/testbed"
	"covirt/internal/vmx"
)

// rig is a full simulated node: host OS, Pisces, Hobbes, and the Covirt
// controller, assembled through the declarative testbed layer.
type rig struct {
	node *testbed.Node
	h    *linuxhost.Host
	ctrl *covirt.Controller
}

func newRig(t *testing.T, defaults covirt.Features) *rig {
	t.Helper()
	spec := hw.DefaultSpec()
	spec.MemPerNode = 2 << 30
	node, err := testbed.Spec{
		Machine:      spec,
		OfflineCores: []int{1, 2, 3, 7, 8, 9},
		OfflineMem:   map[int]uint64{0: 512 << 20, 1: 512 << 20},
		Covirt:       true,
		Features:     defaults,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &rig{node: node, h: node.Host, ctrl: node.Ctrl}
}

func (r *rig) boot(t *testing.T, name string, cores int, nodes []int, mem uint64) (*pisces.Enclave, *kitten.Kernel) {
	t.Helper()
	be, err := r.node.BootGuest(testbed.Guest{
		Name: name, Cores: cores, Nodes: nodes, MemBytes: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.h.Pisces.Destroy(be.Enc) })
	return be.Enc, be.Kitten
}

func TestBootTransparencyUnderCovirt(t *testing.T) {
	r := newRig(t, covirt.FeaturesMem)
	enc, k := r.boot(t, "lwk", 2, []int{0}, 128<<20)

	// The kernel sees its normal Pisces environment and works normally.
	task, _ := k.Spawn("hello", 0, func(e *kitten.Env) error {
		e.Compute(1000)
		buf := e.Alloc(0, 2<<20)
		e.Write64(buf.Start, 99)
		if v := e.Read64(buf.Start); v != 99 {
			t.Errorf("read %d", v)
		}
		return e.WriteConsole("under covirt\n")
	})
	if err := task.Wait(); err != nil {
		t.Fatalf("task: %v", err)
	}
	if got := r.h.Console(enc.ID); got != "under covirt\n" {
		t.Errorf("console = %q", got)
	}
	// Every enclave core runs in VMX non-root mode.
	for _, cpu := range enc.CPUs() {
		if cpu.Virt == nil {
			t.Errorf("core %d not virtualized", cpu.ID)
		}
	}
	st := r.ctrl.StatusFor(enc.ID)
	if st == nil || !st.Features.Memory {
		t.Fatalf("status = %+v", st)
	}
	if st.EPT.Bytes != 128<<20 {
		t.Errorf("EPT maps %d bytes, want %d", st.EPT.Bytes, 128<<20)
	}
	// The boot-parameter chain is intact: Covirt block points back at the
	// unmodified Pisces block.
	cbp, err := covirt.DecodeBootParams(r.h.M.Mem, enc.Base()+pisces.OffCovirtParams)
	if err != nil {
		t.Fatal(err)
	}
	if cbp.PiscesParams != enc.Base()+pisces.OffBootParams {
		t.Error("covirt boot params do not chain to pisces params")
	}
	if cbp.NumCPUs != 2 {
		t.Errorf("NumCPUs = %d", cbp.NumCPUs)
	}
}

func TestWildWriteContained(t *testing.T) {
	r := newRig(t, covirt.FeaturesMem)
	// A host-side buffer standing in for "someone else's memory".
	victim, err := r.h.HostAlloc(0, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.h.PlantCanary(victim, 0x5A5A); err != nil {
		t.Fatal(err)
	}

	encA, kA := r.boot(t, "buggy", 1, []int{0}, 128<<20)
	encB, kB := r.boot(t, "bystander", 1, []int{1}, 128<<20)

	task, _ := kA.Spawn("wild", 0, func(e *kitten.Env) error {
		// Simulates a memory-map bug: the co-kernel thinks this address is
		// its own and writes through it.
		return e.RawWrite64(victim.Start+8192, 0xEF11)
	})
	err = task.Wait()
	if !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("task err = %v, want enclave-killed", err)
	}

	// Containment: host memory intact, machine alive, bystander running.
	if addr, _ := r.h.CheckCanary(victim, 0x5A5A); addr != 0 {
		t.Errorf("host memory corrupted at %#x", addr)
	}
	if r.h.M.Crashed() {
		t.Fatal("node crashed")
	}
	if encA.State() != pisces.StateCrashed {
		t.Errorf("buggy enclave state = %v", encA.State())
	}
	if !strings.Contains(encA.CrashReason(), "EPT violation") {
		t.Errorf("crash reason = %q", encA.CrashReason())
	}
	if encB.State() != pisces.StateRunning {
		t.Errorf("bystander state = %v", encB.State())
	}
	tB, _ := kB.Spawn("alive", 0, func(e *kitten.Env) error { e.Compute(100); return nil })
	if err := tB.Wait(); err != nil {
		t.Errorf("bystander task: %v", err)
	}
}

func TestWildWriteWithoutCovirtCorrupts(t *testing.T) {
	// Same bug, no protection: the canary is corrupted and nothing stops it.
	spec := hw.DefaultSpec()
	spec.MemPerNode = 2 << 30
	node, err := testbed.Spec{
		Machine:      spec,
		OfflineCores: []int{1},
		OfflineMem:   map[int]uint64{0: 256 << 20},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := node.Host
	victim, _ := h.HostAlloc(0, 4<<20)
	_ = h.PlantCanary(victim, 0x5A5A)

	be, err := node.BootGuest(testbed.Guest{Name: "buggy", Cores: 1, Nodes: []int{0}, MemBytes: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	task, _ := be.Kitten.Spawn("wild", 0, func(e *kitten.Env) error {
		return e.RawWrite64(victim.Start+8192, 0xBAD)
	})
	if err := task.Wait(); err != nil {
		t.Fatalf("unprotected wild write errored: %v", err)
	}
	addr, _ := h.CheckCanary(victim, 0x5A5A)
	if addr == 0 {
		t.Fatal("canary survived an unprotected wild write")
	}
}

func TestWildUnbackedAccessContainedVsCrash(t *testing.T) {
	// With memory protection, a read of unbacked physical space is an EPT
	// violation (contained). Natively it is a bus error that takes the
	// node down (covered in hw tests); with covirt-none it becomes an
	// abort the hypervisor can still contain if Abort is enabled.
	r := newRig(t, covirt.FeaturesMem)
	_, k := r.boot(t, "lwk", 1, []int{0}, 128<<20)
	task, _ := k.Spawn("wild", 0, func(e *kitten.Env) error {
		_, err := e.RawRead64(0x10) // legacy low memory: unbacked
		return err
	})
	err := task.Wait()
	if !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("err = %v", err)
	}
	if r.h.M.Crashed() {
		t.Fatal("node crashed despite EPT")
	}
}

func TestAbortContainment(t *testing.T) {
	r := newRig(t, covirt.Features{Abort: true})
	enc, k := r.boot(t, "lwk", 1, []int{0}, 128<<20)
	task, _ := k.Spawn("df", 0, func(e *kitten.Env) error {
		return e.CPU.RaiseDoubleFault("corrupted IST")
	})
	err := task.Wait()
	if !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("err = %v", err)
	}
	if r.h.M.Crashed() {
		t.Fatal("double fault escaped containment")
	}
	if enc.State() != pisces.StateCrashed {
		t.Errorf("state = %v", enc.State())
	}
}

func TestAbortWithoutFeatureCrashesNode(t *testing.T) {
	r := newRig(t, covirt.FeaturesNone) // no abort handling
	_, k := r.boot(t, "lwk", 1, []int{0}, 128<<20)
	task, _ := k.Spawn("df", 0, func(e *kitten.Env) error {
		return e.CPU.RaiseDoubleFault("corrupted IST")
	})
	err := task.Wait()
	if !hw.IsFault(err, hw.FaultMachineCrashed) {
		t.Fatalf("err = %v", err)
	}
	if !r.h.M.Crashed() {
		t.Fatal("node survived, expected crash without abort feature")
	}
}

func TestMemoryAddRemoveUnderCovirt(t *testing.T) {
	r := newRig(t, covirt.FeaturesMem)
	enc, k := r.boot(t, "lwk", 2, []int{0}, 128<<20)
	st := r.ctrl.StatusFor(enc.ID)
	baseBytes := st.EPT.Bytes

	ext, err := r.h.Pisces.AddMemory(enc, 0, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ctrl.StatusFor(enc.ID).EPT.Bytes; got != baseBytes+ext.Size {
		t.Errorf("EPT bytes after add = %d, want %d", got, baseBytes+ext.Size)
	}
	// The enclave can use it through the protection layer.
	task, _ := k.Spawn("use", 0, func(e *kitten.Env) error {
		e.Write64(ext.Start+4096, 1234)
		return nil
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}

	if err := r.h.Pisces.RemoveMemory(enc, ext); err != nil {
		t.Fatal(err)
	}
	after := r.ctrl.StatusFor(enc.ID)
	if after.EPT.Bytes != baseBytes {
		t.Errorf("EPT bytes after remove = %d, want %d", after.EPT.Bytes, baseBytes)
	}
	if after.FlushCmds == 0 {
		t.Error("no flush commands issued on unmap")
	}
	// Stale access to the removed memory — even bypassing the kernel map,
	// and even though it was recently in the TLB — is now contained.
	task2, _ := k.Spawn("stale", 0, func(e *kitten.Env) error {
		return e.RawWrite64(ext.Start+4096, 0xDEAD)
	})
	err = task2.Wait()
	if !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("stale access err = %v, want enclave-killed", err)
	}
}

func TestXememUnderCovirt(t *testing.T) {
	r := newRig(t, covirt.FeaturesMem)
	_, kA := r.boot(t, "producer", 1, []int{0}, 128<<20)
	encB, kB := r.boot(t, "consumer", 1, []int{1}, 128<<20)

	var seg hw.Extent
	tA, _ := kA.Spawn("export", 0, func(e *kitten.Env) error {
		seg = e.Alloc(0, 4<<20)
		e.Write64(seg.Start, 0xC0FFEE)
		_, err := e.XemMake("cv.shared", seg)
		return err
	})
	if err := tA.Wait(); err != nil {
		t.Fatal(err)
	}

	stBefore := r.ctrl.StatusFor(encB.ID).EPT.Bytes
	tB, _ := kB.Spawn("attach", 0, func(e *kitten.Env) error {
		segid, err := e.XemGet("cv.shared")
		if err != nil {
			return err
		}
		exts, err := e.XemAttach(segid)
		if err != nil {
			return err
		}
		if v := e.Read64(exts[0].Start); v != 0xC0FFEE {
			t.Errorf("shared read = %#x", v)
		}
		e.Write64(exts[0].Start+8, 0xFEED)
		return e.XemDetach(segid)
	})
	if err := tB.Wait(); err != nil {
		t.Fatalf("consumer: %v", err)
	}
	// EPT returned to its pre-attach footprint.
	if got := r.ctrl.StatusFor(encB.ID).EPT.Bytes; got != stBefore {
		t.Errorf("EPT bytes after detach = %d, want %d", got, stBefore)
	}
	// Stale access to the detached segment is contained by the EPT even if
	// the co-kernel's own map were stale.
	tB2, _ := kB.Spawn("stale", 0, func(e *kitten.Env) error {
		return e.RawWrite64(seg.Start, 0xBAD)
	})
	if err := tB2.Wait(); !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("stale access err = %v", err)
	}
}

func TestStaleXememSegmentBugContained(t *testing.T) {
	// Reproduce the paper's §V anecdote: a cleanup-path bug leaves a stale
	// shared-memory mapping in the co-kernel after the host reclaimed it.
	// The co-kernel then touches it "legitimately" (its own map says yes).
	r := newRig(t, covirt.FeaturesMem)
	_, kA := r.boot(t, "producer", 1, []int{0}, 128<<20)
	_, kB := r.boot(t, "consumer", 1, []int{1}, 128<<20)

	var seg hw.Extent
	tA, _ := kA.Spawn("export", 0, func(e *kitten.Env) error {
		seg = e.Alloc(0, 4<<20)
		_, err := e.XemMake("stale.seg", seg)
		return err
	})
	if err := tA.Wait(); err != nil {
		t.Fatal(err)
	}

	tB, _ := kB.Spawn("buggy-detach", 0, func(e *kitten.Env) error {
		segid, err := e.XemGet("stale.seg")
		if err != nil {
			return err
		}
		if _, err := e.XemAttach(segid); err != nil {
			return err
		}
		// BUG: complete the detach protocol with the host WITHOUT removing
		// the local mapping (the stale-state window from the paper).
		if _, _, err := e.Syscall(pisces.SysXemDetach, segid); err != nil {
			return err
		}
		if _, _, err := e.Syscall(pisces.SysXemDetachDone, segid); err != nil {
			return err
		}
		// The co-kernel's map still says this memory is fine. Touch it.
		e.Access(seg.Start, true, hw.AccessHot)
		return nil
	})
	err := tB.Wait()
	if !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("stale-segment access err = %v, want enclave-killed", err)
	}
	if r.h.M.Crashed() {
		t.Fatal("node crashed; covirt should have contained the stale access")
	}
}

func TestIPIFilteringVAPIC(t *testing.T) {
	testIPIFiltering(t, covirt.FeaturesMemIPIVAPIC)
}

func TestIPIFilteringPIV(t *testing.T) {
	testIPIFiltering(t, covirt.FeaturesMemIPIPIV)
}

func testIPIFiltering(t *testing.T, feat covirt.Features) {
	r := newRig(t, feat)
	enc, k := r.boot(t, "lwk", 2, []int{0}, 128<<20)

	// Intra-enclave IPIs pass the whitelist.
	got := make(chan struct{}, 4)
	k.OnIPI(0x70, func(e *kitten.Env) { got <- struct{}{} })
	busy, _ := k.Spawn("busy", 1, func(e *kitten.Env) error {
		for i := 0; i < 2000; i++ {
			e.Compute(100)
		}
		return nil
	})
	send, _ := k.Spawn("send", 0, func(e *kitten.Env) error {
		e.SendIPI(1, 0x70)
		// Errant IPI to a host core: must be dropped silently.
		return e.SendIPIRaw(0, 0x70)
	})
	if err := send.Wait(); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := busy.Wait(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Error("intra-enclave IPI not delivered")
	}
	st := r.ctrl.StatusFor(enc.ID)
	if st.DroppedIPIs != 1 {
		t.Errorf("dropped IPIs = %d, want 1", st.DroppedIPIs)
	}
	if st.Exits["APIC_ICR_WRITE"] == 0 {
		t.Error("no ICR exits recorded")
	}
	// Host core 0 never saw the errant vector.
	if r.h.M.CPU(0).IRQsTaken != 0 {
		t.Error("errant IPI reached host core")
	}
}

func TestIPIGrantAllowsCrossEnclave(t *testing.T) {
	r := newRig(t, covirt.FeaturesMemIPIPIV)
	encA, kA := r.boot(t, "a", 1, []int{0}, 128<<20)
	encB, kB := r.boot(t, "b", 1, []int{1}, 128<<20)
	_ = encB

	destCore := kB.CPU(0).ID
	notified := make(chan struct{}, 1)
	kB.OnIPI(0x71, func(e *kitten.Env) { notified <- struct{}{} })

	// Without a grant the cross-enclave IPI is dropped.
	busy1, _ := kB.Spawn("busy1", 0, func(e *kitten.Env) error {
		for i := 0; i < 1000; i++ {
			e.Compute(100)
		}
		return nil
	})
	s1, _ := kA.Spawn("send1", 0, func(e *kitten.Env) error {
		return e.SendIPIRaw(destCore, 0x71)
	})
	if err := s1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := busy1.Wait(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-notified:
		t.Fatal("ungranted cross-enclave IPI delivered")
	default:
	}

	// Grant through the master control process; now it is delivered.
	if err := r.h.Master.GrantIPI(encA, destCore, 0x71); err != nil {
		t.Fatal(err)
	}
	busy2, _ := kB.Spawn("busy2", 0, func(e *kitten.Env) error {
		for i := 0; i < 1000; i++ {
			e.Compute(100)
		}
		return nil
	})
	s2, _ := kA.Spawn("send2", 0, func(e *kitten.Env) error {
		return e.SendIPIRaw(destCore, 0x71)
	})
	if err := s2.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := busy2.Wait(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-notified:
	case <-time.After(5 * time.Second):
		t.Fatal("granted cross-enclave IPI not delivered")
	}

	// Revoking closes the path again.
	if err := r.h.Master.RevokeIPI(encA, destCore, 0x71); err != nil {
		t.Fatal(err)
	}
	if r.ctrl.StatusFor(encA.ID).DroppedIPIs != 1 {
		t.Errorf("dropped = %d", r.ctrl.StatusFor(encA.ID).DroppedIPIs)
	}
}

func TestMSRProtection(t *testing.T) {
	r := newRig(t, covirt.Features{MSR: true, Abort: true})
	_, k := r.boot(t, "lwk", 1, []int{0}, 128<<20)
	// Permitted MSR write goes through.
	t1, _ := k.Spawn("ok", 0, func(e *kitten.Env) error {
		return e.CPU.WRMSR(hw.MSR_IA32_FS_BASE, 0x7000)
	})
	if err := t1.Wait(); err != nil {
		t.Fatalf("allowed MSR write: %v", err)
	}
	// Forbidden MSR write terminates the enclave.
	t2, _ := k.Spawn("bad", 0, func(e *kitten.Env) error {
		return e.CPU.WRMSR(hw.MSR_IA32_APIC_BASE, 0)
	})
	err := t2.Wait()
	if !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("forbidden MSR write err = %v", err)
	}
	if r.h.M.Crashed() {
		t.Fatal("node crashed")
	}
}

func TestIOProtection(t *testing.T) {
	r := newRig(t, covirt.Features{IO: true, Abort: true})
	enc, k := r.boot(t, "lwk", 1, []int{0}, 128<<20)
	// Grant the serial port via the Covirt ioctl ABI: the caller first
	// obtains an I/O key for the enclave, then names it in the grant.
	ioCap, err := r.ctrl.DelegateIO(enc.ID, hw.PortSerialCOM1, hw.PortSerialCOM1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.h.Pisces.Ioctl(covirt.IoctlGrantIO, covirt.GrantIOArgs{EnclaveID: enc.ID, Port: hw.PortSerialCOM1, Cap: ioCap}); err != nil {
		t.Fatal(err)
	}
	sink := &hw.SerialSink{}
	r.h.M.Ports.Register(hw.PortSerialCOM1, sink)

	t1, _ := k.Spawn("serial", 0, func(e *kitten.Env) error {
		return e.CPU.IOOut(hw.PortSerialCOM1, 'k')
	})
	if err := t1.Wait(); err != nil {
		t.Fatalf("granted port: %v", err)
	}
	if sink.String() != "k" {
		t.Error("serial byte lost")
	}
	// The reset port was never granted: touching it kills the enclave
	// before the write reaches hardware.
	t2, _ := k.Spawn("reset", 0, func(e *kitten.Env) error {
		return e.CPU.IOOut(hw.PortReset, 0x6)
	})
	err = t2.Wait()
	if !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("reset port err = %v", err)
	}
	if r.h.M.Crashed() {
		t.Fatal("reset reached hardware")
	}
}

func TestIoctlABI(t *testing.T) {
	r := newRig(t, covirt.FeaturesNone)
	enc, err := r.h.Pisces.CreateEnclave(pisces.EnclaveSpec{Name: "x", NumCores: 1, Nodes: []int{0}, MemBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Select features pre-boot via ioctl.
	if _, err := r.h.Pisces.Ioctl(covirt.IoctlSetFeatures, covirt.SetFeaturesArgs{EnclaveID: enc.ID, Features: covirt.FeaturesMemIPIPIV}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.node.BootInto(enc, testbed.Guest{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	defer r.h.Pisces.Destroy(enc)

	stAny, err := r.h.Pisces.Ioctl(covirt.IoctlStatus, enc.ID)
	if err != nil {
		t.Fatal(err)
	}
	st := stAny.(*covirt.Status)
	if !st.Features.Memory || !st.Features.IPI || st.Features.IPIMode != covirt.IPIPostedInterrupt {
		t.Errorf("features = %v", st.Features)
	}
	// Post-boot feature changes are rejected.
	if err := r.ctrl.SetFeatures(enc.ID, covirt.FeaturesNone); err == nil {
		t.Error("post-boot SetFeatures accepted")
	}
	// Unknown ioctls and bad args fail cleanly.
	if _, err := r.h.Pisces.Ioctl(0xDEAD, nil); err == nil {
		t.Error("unknown ioctl accepted")
	}
	if _, err := r.h.Pisces.Ioctl(covirt.IoctlStatus, "nope"); err == nil {
		t.Error("bad ioctl arg accepted")
	}
}

func TestCrashReclaimsResourcesAndCleansState(t *testing.T) {
	r := newRig(t, covirt.FeaturesMem)
	free0 := r.h.EnclaveLedger.FreeBytes(0)
	enc, k := r.boot(t, "lwk", 1, []int{0}, 128<<20)
	task, _ := k.Spawn("wild", 0, func(e *kitten.Env) error {
		return e.RawWrite64(0x20, 1)
	})
	if err := task.Wait(); !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("err = %v", err)
	}
	// Wait for teardown to fully reclaim the enclave's resources.
	<-enc.Reclaimed()
	if got := r.h.EnclaveLedger.FreeBytes(0); got != free0 {
		t.Errorf("free bytes after crash = %d, want %d", got, free0)
	}
	if r.ctrl.StatusFor(enc.ID) != nil {
		t.Error("controller state survived crash")
	}
}

func TestRebootAfterCrashReusesCores(t *testing.T) {
	// After a contained crash the master reclaims the enclave's cores and
	// memory; a new enclave booted on the same hardware must start clean
	// (no kill latch, no stale hypervisor, no stale TLB entries).
	r := newRig(t, covirt.FeaturesMem)
	enc1, k1 := r.boot(t, "first", 1, []int{0}, 128<<20)
	firstCores := append([]int(nil), enc1.Cores...)

	task, _ := k1.Spawn("wild", 0, func(e *kitten.Env) error {
		return e.RawWrite64(0x50, 1)
	})
	if err := task.Wait(); !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("err = %v", err)
	}
	<-enc1.Reclaimed()

	// Same resources, new enclave — still protected, fully functional.
	enc2, k2 := r.boot(t, "second", 1, []int{0}, 128<<20)
	if enc2.Cores[0] != firstCores[0] {
		t.Fatalf("cores not reused: %v vs %v", enc2.Cores, firstCores)
	}
	ok, _ := k2.Spawn("work", 0, func(e *kitten.Env) error {
		buf := e.Alloc(0, 2<<20)
		e.Write64(buf.Start, 7)
		if e.Read64(buf.Start) != 7 {
			t.Error("bad read")
		}
		return nil
	})
	if err := ok.Wait(); err != nil {
		t.Fatalf("second enclave task: %v", err)
	}
	// The protection layer is the NEW enclave's, and it still contains.
	bad, _ := k2.Spawn("wild2", 0, func(e *kitten.Env) error {
		return e.RawWrite64(0x50, 2)
	})
	if err := bad.Wait(); !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("second wild write err = %v", err)
	}
	if r.h.M.Crashed() {
		t.Fatal("node crashed")
	}
}

func TestNativeRebootAfterCovirtEnclave(t *testing.T) {
	// A native (unprotected) enclave booted on cores previously managed
	// by a Covirt hypervisor must not inherit the old VirtLayer.
	r := newRig(t, covirt.FeaturesMem)
	enc1, _ := r.boot(t, "protected", 1, []int{0}, 128<<20)
	if err := r.h.Pisces.Destroy(enc1); err != nil {
		t.Fatal(err)
	}
	// Boot the next enclave with covirt disabled for it.
	enc2, err := r.h.Pisces.CreateEnclave(pisces.EnclaveSpec{Name: "bare", NumCores: 1, Nodes: []int{0}, MemBytes: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// covirt-none still interposes; to get a truly bare boot the rig
	// would omit the controller — here we just verify the old enclave's
	// EPT is gone and the new interposition is fresh.
	be, err := r.node.BootInto(enc2, testbed.Guest{Name: "bare"})
	if err != nil {
		t.Fatal(err)
	}
	k := be.Kitten
	defer r.h.Pisces.Destroy(enc2)
	if cpu := k.CPU(0); cpu.Virt == nil {
		t.Fatal("controller did not interpose on reboot")
	}
	task, _ := k.Spawn("ok", 0, func(e *kitten.Env) error {
		buf := e.Alloc(0, 2<<20)
		e.Write64(buf.Start, 1)
		return nil
	})
	if err := task.Wait(); err != nil {
		t.Fatalf("task on rebooted core: %v", err)
	}
}

func TestExitStatisticsAccumulate(t *testing.T) {
	r := newRig(t, covirt.FeaturesMemIPIVAPIC)
	enc, k := r.boot(t, "lwk", 1, []int{0}, 128<<20)
	task, _ := k.Spawn("loop", 0, func(e *kitten.Env) error {
		buf := e.Alloc(0, 2<<20)
		for i := uint64(0); i < 64; i++ {
			e.Write64(buf.Start+i*4096%buf.Size, i)
		}
		e.SendIPI(0, 0x72) // self-IPI: trapped by VAPIC
		e.Compute(10_000)
		return nil
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	st := r.ctrl.StatusFor(enc.ID)
	if st.Exits["APIC_ICR_WRITE"] != 1 {
		t.Errorf("ICR exits = %d", st.Exits["APIC_ICR_WRITE"])
	}
	if st.ExitCycles == 0 {
		t.Error("no exit cycles recorded")
	}
	hv := r.ctrl.Hypervisor(enc.ID, k.CPU(0).ID)
	if hv == nil || hv.Terminated() {
		t.Fatal("hypervisor missing or terminated")
	}
	if hv.Stats().Count(vmx.ExitICRWrite) != 1 {
		t.Error("per-core stats missing ICR exit")
	}
}
