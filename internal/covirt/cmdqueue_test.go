package covirt

import (
	"sync"
	"testing"
	"testing/quick"

	"covirt/internal/authority"
	"covirt/internal/hw"
)

func queueFixture(t *testing.T) (*hw.Machine, *cmdQueue, *hw.CPU) {
	t.Helper()
	spec := hw.DefaultSpec()
	spec.MemPerNode = 1 << 30
	m, err := hw.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	base := hw.AlignUp(m.Topo.Nodes[0].MemBase, hw.PageSize4K)
	q, err := newCmdQueue(m.Mem, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m, q, m.CPU(0)
}

func TestCmdQueuePushDrain(t *testing.T) {
	_, q, cpu := queueFixture(t)
	seq1, err := q.push(CmdPing, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := q.push(CmdFlushRange, 0x1000, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if seq2 != seq1+1 {
		t.Errorf("seqs = %d, %d", seq1, seq2)
	}
	if q.completed() != 0 {
		t.Error("completed before drain")
	}
	// Warm a TLB entry in the to-be-flushed range.
	cpu.TLB.Insert(0x1800, hw.PageSize4K)
	spent := q.drain(cpu)
	if spent == 0 {
		t.Error("drain charged nothing")
	}
	if q.completed() != seq2 {
		t.Errorf("completed = %d, want %d", q.completed(), seq2)
	}
	if cpu.TLB.Lookup(0x1800) {
		t.Error("flush command did not flush")
	}
	// Draining an empty queue is free.
	if q.drain(cpu) != 0 {
		t.Error("empty drain charged cycles")
	}
}

func TestCmdQueueFlushAll(t *testing.T) {
	_, q, cpu := queueFixture(t)
	cpu.TLB.Insert(0x1000, hw.PageSize4K)
	cpu.TLB.Insert(hw.PageSize1G, hw.PageSize2M)
	if _, err := q.push(CmdFlushAll, 0, 0); err != nil {
		t.Fatal(err)
	}
	q.drain(cpu)
	if cpu.TLB.Len() != 0 {
		t.Error("entries survived CmdFlushAll")
	}
}

// Regression for the old hard-failure semantics: overflowing the
// pre-batching 8-slot geometry must apply backpressure (publish what fits,
// ring the doorbell, park until the drainer frees slots) rather than fail.
// The doorbell here runs the drain synchronously, exactly as the NMI
// handler does on a parked idle core.
func TestCmdQueueFullBackpressure(t *testing.T) {
	m, _, _ := queueFixture(t)
	base := hw.AlignUp(m.Topo.Nodes[0].MemBase, hw.PageSize4K)
	q, err := newCmdQueue(m.Mem, base+CmdQueueStride, 8) // old geometry
	if err != nil {
		t.Fatal(err)
	}
	cpu := m.CPU(0)
	for i := 0; i < 8; i++ {
		if _, err := q.push(CmdPing, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// The ring is now full: a 16-record batch cannot fit even an empty
	// ring, so the push must stall at least once and still deliver all
	// records.
	recs := make([]cmdRec, 16)
	for i := range recs {
		recs[i] = cmdRec{CmdPing, 0, 0}
	}
	var doorbells int
	seq, wait, err := q.pushBatch(recs, func() { doorbells++; q.drain(cpu) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if doorbells == 0 {
		t.Error("overflowing push never rang the doorbell")
	}
	if wait == 0 {
		t.Error("overflowing push charged no stall cycles")
	}
	if seq != 8+16 {
		t.Errorf("last seq = %d, want %d", seq, 8+16)
	}
	q.drain(cpu)
	if q.completed() != seq {
		t.Errorf("completed = %d, want %d", q.completed(), seq)
	}
	if q.depth() != 0 {
		t.Errorf("depth = %d after full drain", q.depth())
	}
}

// A pushBatch stalled on a full ring must abort when the enclave dies
// instead of parking forever.
func TestCmdQueueBackpressureAbortsOnDeath(t *testing.T) {
	m, _, _ := queueFixture(t)
	base := hw.AlignUp(m.Topo.Nodes[0].MemBase, hw.PageSize4K)
	q, err := newCmdQueue(m.Mem, base+CmdQueueStride, 8)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	close(done) // enclave already dead; no drainer will ever run
	recs := make([]cmdRec, 9) // one more than the ring holds
	for i := range recs {
		recs[i] = cmdRec{CmdPing, 0, 0}
	}
	if _, _, err := q.pushBatch(recs, func() {}, done); err == nil {
		t.Error("overflow push on dead enclave returned nil")
	}
}

func TestCmdQueueWaitCompleted(t *testing.T) {
	_, q, cpu := queueFixture(t)
	seq, err := q.push(CmdPing, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := q.waitCompleted(seq, done); err != nil {
			t.Errorf("waitCompleted: %v", err)
		}
	}()
	q.drain(cpu)
	wg.Wait()
	// Waiting for an already-completed sequence returns immediately.
	if err := q.waitCompleted(seq, done); err != nil {
		t.Fatal(err)
	}
}

func TestCmdQueueWaitAbortsOnDeath(t *testing.T) {
	_, q, _ := queueFixture(t)
	seq, _ := q.push(CmdPing, 0, 0)
	done := make(chan struct{})
	close(done) // the enclave is already dead
	errc := make(chan error, 1)
	go func() { errc <- q.waitCompleted(seq, done) }()
	// Teardown wakes all waiters.
	q.wake()
	if err := <-errc; err == nil {
		t.Error("wait on dead enclave returned nil")
	}
}

// Regression: concurrent pushers (some parking on a full ring), a drainer,
// and waiters must be race-free, and a mid-flight enclave death must
// release every waiter. Run under -race (scripts/check.sh does).
func TestCmdQueueConcurrentPushDrainWake(t *testing.T) {
	m, q, _ := queueFixture(t)
	// The drainer runs on its own core, as the real hypervisor NMI
	// handler does, while controller threads push from elsewhere.
	drainCPU := m.CPU(1)
	done := make(chan struct{})
	stop := make(chan struct{})

	drained := make(chan struct{})
	go func() { // hypervisor: drain until told to stop
		defer close(drained)
		for {
			q.drain(drainCPU)
			select {
			case <-stop:
				q.drain(drainCPU)
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	const pushers = 4
	const perPusher = 64
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func() { // controller threads: push (parking when full), then wait
			defer wg.Done()
			for i := 0; i < perPusher; i++ {
				seq, err := q.push(CmdPing, 0, 0)
				if err != nil {
					t.Errorf("push: %v", err)
					return
				}
				if err := q.waitCompleted(seq, done); err != nil {
					t.Errorf("waitCompleted(%d): %v", seq, err)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-drained

	// Now the dying-enclave path: a waiter parked on a sequence that will
	// never complete must be released by teardown's wake.
	seq, err := q.push(CmdPing, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- q.waitCompleted(seq, done) }()
	close(done) // enclave death
	q.wake()    // teardown releases waiters
	if err := <-errc; err == nil {
		t.Error("waiter survived enclave death")
	}
}

// Property: any sequence of flush-range commands leaves exactly the pages
// outside all flushed ranges in the TLB.
func TestCmdQueueFlushProperty(t *testing.T) {
	f := func(pages [6]uint8, flushes [3]uint8) bool {
		spec := hw.DefaultSpec()
		spec.MemPerNode = 1 << 30
		m, err := hw.NewMachine(spec)
		if err != nil {
			return false
		}
		q, err := newCmdQueue(m.Mem, hw.AlignUp(m.Topo.Nodes[0].MemBase, hw.PageSize4K), 0)
		if err != nil {
			return false
		}
		cpu := m.CPU(0)
		for _, p := range pages {
			cpu.TLB.Insert(uint64(p)*hw.PageSize4K, hw.PageSize4K)
		}
		flushed := map[uint64]bool{}
		for _, f := range flushes {
			start := uint64(f%32) * hw.PageSize4K
			if _, err := q.push(CmdFlushRange, start, 2*hw.PageSize4K); err != nil {
				return false
			}
			flushed[start] = true
			flushed[start+hw.PageSize4K] = true
		}
		q.drain(cpu)
		for _, p := range pages {
			base := uint64(p) * hw.PageSize4K
			want := !flushed[base]
			if cpu.TLB.Lookup(base) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFeaturesString(t *testing.T) {
	cases := []struct {
		f    Features
		want string
	}{
		{FeaturesNone, "none"},
		{FeaturesMem, "mem+abort"},
		{FeaturesMemIPIVAPIC, "mem+ipi(vapic)+abort"},
		{FeaturesMemIPIPIV, "mem+ipi(piv)+abort"},
		{FeaturesAll, "mem+ipi(piv)+msr+io+abort"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("%+v -> %q, want %q", c.f, got, c.want)
		}
	}
}

func TestIPIFilterSemantics(t *testing.T) {
	f := NewIPIFilter([]int{3, 4}, nil)
	// Own cores: any vector.
	if !f.Permitted(3, 0x10) || !f.Permitted(4, 0xFE) {
		t.Error("own-core IPI denied")
	}
	// Foreign core: denied until granted.
	if f.Permitted(7, 0x10) {
		t.Error("foreign IPI permitted without grant")
	}
	f.Grant(7, 0x10, authority.Cap{})
	if !f.Permitted(7, 0x10) {
		t.Error("granted IPI denied")
	}
	if f.Permitted(7, 0x11) {
		t.Error("grant leaked across vectors")
	}
	f.Revoke(7, 0x10)
	if f.Permitted(7, 0x10) {
		t.Error("revoked IPI permitted")
	}
	if f.Dropped.Load() != 3 {
		t.Errorf("dropped = %d, want 3", f.Dropped.Load())
	}
	if f.Checked.Load() != 6 {
		t.Errorf("checked = %d, want 6", f.Checked.Load())
	}
}

// With an authority table attached, a grant stops working the instant its
// backing key is revoked — no filter edit required.
func TestIPIFilterCapLiveness(t *testing.T) {
	tab := authority.NewTable()
	f := NewIPIFilter([]int{0}, tab)
	c := tab.Mint(1, authority.KindIPI, authority.RightSend, authority.IPIScope(7, 0x10), "test-ipi")
	f.Grant(7, 0x10, c)
	if !f.Permitted(7, 0x10) {
		t.Fatal("granted IPI denied")
	}
	if _, err := tab.Revoke(c); err != nil {
		t.Fatal(err)
	}
	if f.Permitted(7, 0x10) {
		t.Error("IPI permitted through a revoked key")
	}
}

func TestCovirtBootParamsRoundTrip(t *testing.T) {
	spec := hw.DefaultSpec()
	spec.MemPerNode = 1 << 30
	m, err := hw.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	addr := hw.AlignUp(m.Topo.Nodes[0].MemBase, hw.PageSize4K)
	in := &BootParams{NumCPUs: 4, CmdQueueBase: 0x10000, CmdQueueStride: CmdQueueStride, CmdQueueSlots: cmdqDefaultSlots, PiscesParams: 0x1000}
	if err := encodeBootParams(m.Mem, addr, in); err != nil {
		t.Fatal(err)
	}
	out, err := decodeBootParams(m.Mem, addr)
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
	if err := m.Mem.Write64(addr, 0xBAD); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeBootParams(m.Mem, addr); err == nil {
		t.Error("bad magic accepted")
	}
}
