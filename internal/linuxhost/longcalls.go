package linuxhost

import (
	"encoding/binary"

	"covirt/internal/hobbes"
	"covirt/internal/hw"
	"covirt/internal/pisces"
)

func put64(p []byte, off int, v uint64) { binary.LittleEndian.PutUint64(p[off:], v) }
func get64(p []byte, off int) uint64    { return binary.LittleEndian.Uint64(p[off:]) }

// setResp fills the standard response slots.
func setResp(resp *pisces.Msg, status, val0, val1 uint64) {
	put64(resp.Payload[:], pisces.LcRespStatus, status)
	put64(resp.Payload[:], pisces.LcRespVal0, val0)
	put64(resp.Payload[:], pisces.LcRespVal1, val1)
}

// pagesOf counts 4 KiB frames backing a set of extents — the granularity
// at which the host assembles page-frame lists, which dominates the cost
// of large attach operations (and masks the protection layer's per-entry
// EPT work, as the paper's Fig. 4 discussion concludes).
func pagesOf(exts []hw.Extent) uint64 {
	var p uint64
	for _, e := range exts {
		p += (e.Size + hw.PageSize4K - 1) / hw.PageSize4K
	}
	return p
}

// registerDefaultLongcalls wires up the standard forwarded system calls and
// the XEMEM name-service operations.
func (h *Host) registerDefaultLongcalls() {
	h.RegisterLongcall(pisces.SysGetPID, func(h *Host, enc *pisces.Enclave, m, resp *pisces.Msg) uint64 {
		setResp(resp, pisces.LcOK, uint64(enc.ID)<<16|1, 0)
		return 50
	})

	h.RegisterLongcall(pisces.SysNodeInfo, func(h *Host, enc *pisces.Enclave, m, resp *pisces.Msg) uint64 {
		setResp(resp, pisces.LcOK, uint64(len(h.M.Topo.Nodes)), uint64(len(h.M.CPUs)))
		return 50
	})

	h.RegisterLongcall(pisces.SysNanosleep, func(h *Host, enc *pisces.Enclave, m, resp *pisces.Msg) uint64 {
		cycles := get64(m.Payload[:], 0)
		setResp(resp, pisces.LcOK, 0, 0)
		return cycles
	})

	h.RegisterLongcall(pisces.SysWriteConsole, func(h *Host, enc *pisces.Enclave, m, resp *pisces.Msg) uint64 {
		addr := get64(m.Payload[:], 0)
		n := get64(m.Payload[:], 8)
		if n > pisces.LcDataBytes || !enc.OwnsAddr(addr) {
			setResp(resp, pisces.LcErrFault, 0, 0)
			return 100
		}
		buf := make([]byte, n)
		if err := h.io.ReadBytes(addr, buf); err != nil {
			setResp(resp, pisces.LcErrFault, 0, 0)
			return 100
		}
		h.appendConsole(enc.ID, buf)
		setResp(resp, pisces.LcOK, n, 0)
		return n * lcConsolePerB
	})

	h.RegisterLongcall(pisces.SysXemMake, func(h *Host, enc *pisces.Enclave, m, resp *pisces.Msg) uint64 {
		nameHash := get64(m.Payload[:], 0)
		start := get64(m.Payload[:], 8)
		size := get64(m.Payload[:], 16)
		if size == 0 || !enc.OwnsAddr(start) || !enc.OwnsAddr(start+size-1) {
			setResp(resp, pisces.LcErrInval, 0, 0)
			return 100
		}
		ext := hw.Extent{Start: start, Size: size, Node: h.M.Mem.NodeOf(start)}
		// The guest names an address range; the host resolves the memory
		// capability backing it. The registry re-verifies the key covers
		// the exported frames, so a guest can never export memory it was
		// not granted.
		memCap, ok := enc.CapForAddr(start)
		if !ok {
			setResp(resp, pisces.LcErrInval, 0, 0)
			return 100
		}
		seg, err := h.Master.Reg.Make(nameHash, memCap, []hw.Extent{ext})
		if err != nil {
			setResp(resp, pisces.LcErrInval, 0, 0)
			return 100
		}
		setResp(resp, pisces.LcOK, seg.ID, 0)
		return lcPerExtent + pagesOf(seg.Extents)*lcPerPage4K
	})

	h.RegisterLongcall(pisces.SysXemGet, func(h *Host, enc *pisces.Enclave, m, resp *pisces.Msg) uint64 {
		segid, err := h.Master.Reg.Get(get64(m.Payload[:], 0))
		if err != nil {
			setResp(resp, pisces.LcErrNoEnt, 0, 0)
			return 100
		}
		setResp(resp, pisces.LcOK, segid, 0)
		return 150
	})

	h.RegisterLongcall(pisces.SysXemAttach, func(h *Host, enc *pisces.Enclave, m, resp *pisces.Msg) uint64 {
		segid := get64(m.Payload[:], 0)
		exts, attachCap, err := h.Master.Reg.Attach(segid, enc.ID)
		if err != nil {
			setResp(resp, pisces.LcErrNoEnt, 0, 0)
			return 100
		}
		// Protection layers map the consumer's context BEFORE the frame
		// list is transmitted (Covirt's map-before-notify ordering); the
		// event names the consumer's freshly delegated attach key.
		ev := &hobbes.Event{Kind: hobbes.EvXememAttachPre, Enclave: enc, Extents: exts, SegID: segid, Cap: attachCap}
		if err := h.Master.Bus.Emit(ev); err != nil {
			_, _ = h.Master.Reg.DetachDone(segid, enc.ID) // roll back
			setResp(resp, pisces.LcErrFault, 0, 0)
			return 200
		}
		if err := pisces.PutExtents(h.io, enc.Base()+pisces.OffLcData, exts); err != nil {
			setResp(resp, pisces.LcErrFault, 0, 0)
			return 200
		}
		setResp(resp, pisces.LcOK, segid, uint64(len(exts)))
		return uint64(len(exts))*lcPerExtent + pagesOf(exts)*lcPerPage4K + ev.Cost +
			h.attachSurcharge(segid)
	})

	h.RegisterLongcall(pisces.SysXemDetach, func(h *Host, enc *pisces.Enclave, m, resp *pisces.Msg) uint64 {
		segid := get64(m.Payload[:], 0)
		exts, err := h.Master.Reg.DetachStart(segid, enc.ID)
		if err != nil {
			setResp(resp, pisces.LcErrNoEnt, 0, 0)
			return 100
		}
		if err := pisces.PutExtents(h.io, enc.Base()+pisces.OffLcData, exts); err != nil {
			setResp(resp, pisces.LcErrFault, 0, 0)
			return 200
		}
		setResp(resp, pisces.LcOK, segid, uint64(len(exts)))
		return uint64(len(exts))*lcPerExtent + pagesOf(exts)*lcPerPage4K
	})

	h.RegisterLongcall(pisces.SysXemDetachDone, func(h *Host, enc *pisces.Enclave, m, resp *pisces.Msg) uint64 {
		segid := get64(m.Payload[:], 0)
		exts, err := h.Master.Reg.DetachDone(segid, enc.ID)
		if err != nil {
			setResp(resp, pisces.LcErrNoEnt, 0, 0)
			return 100
		}
		// The co-kernel has acknowledged removal; protection layers now
		// unmap and flush, before completion is reported.
		ev := &hobbes.Event{Kind: hobbes.EvXememDetachPost, Enclave: enc, Extents: exts, SegID: segid}
		if err := h.Master.Bus.Emit(ev); err != nil {
			setResp(resp, pisces.LcErrFault, 0, 0)
			return 200
		}
		setResp(resp, pisces.LcOK, 0, 0)
		return uint64(len(exts))*lcPerExtent + ev.Cost
	})

	h.RegisterLongcall(pisces.SysXemRemove, func(h *Host, enc *pisces.Enclave, m, resp *pisces.Msg) uint64 {
		segid := get64(m.Payload[:], 0)
		// Resolve the segment's owner key for the caller; a non-owner (or
		// an owner whose authority died) cannot name a valid key.
		ownerCap, err := h.Master.Reg.OwnerCapOf(segid, enc.ID)
		if err != nil {
			setResp(resp, pisces.LcErrNoEnt, 0, 0)
			return 100
		}
		if err := h.Master.Reg.Remove(segid, ownerCap); err != nil {
			setResp(resp, pisces.LcErrNoEnt, 0, 0)
			return 100
		}
		setResp(resp, pisces.LcOK, 0, 0)
		return 200
	})
}
