// Package linuxhost simulates the general-purpose host OS of a co-kernel
// node: it owns all hardware at boot, donates (offlines) cores and memory
// to the Pisces framework for enclave use, hosts the Hobbes master control
// process and XEMEM name service, and services longcalls (forwarded system
// calls) from co-kernel enclaves.
package linuxhost

import (
	"bytes"
	"fmt"
	"sync"

	"covirt/internal/hobbes"
	"covirt/internal/hw"
	"covirt/internal/pisces"
)

// Host-side longcall processing costs (simulated cycles, charged to the
// calling guest as wait time).
const (
	lcBaseCost    = 3500 // syscall forwarding fixed overhead
	lcPerExtent   = 400  // per extent record handled
	lcPerPage4K   = 150  // per 4 KiB frame walked when building page lists
	lcConsolePerB = 2    // per console byte
)

// LongcallHandler services one forwarded system call. It fills resp's
// payload (status/val0/val1 slots) and returns the host cycles consumed.
type LongcallHandler func(h *Host, enc *pisces.Enclave, m *pisces.Msg, resp *pisces.Msg) uint64

// Host is the simulated general-purpose OS instance.
type Host struct {
	M *hw.Machine
	// HostLedger tracks resources the host retains for itself.
	HostLedger *pisces.Ledger
	// EnclaveLedger holds offlined resources available to Pisces enclaves.
	EnclaveLedger *pisces.Ledger
	Pisces        *pisces.Framework
	Master        *hobbes.Master

	io pisces.NativeMemIO

	mu         sync.Mutex
	consoles   map[int]*bytes.Buffer
	handlers   map[uint32]LongcallHandler
	hostCores  map[int]bool
	fs         *memFS
	services   map[int]chan struct{} // enclave id -> longcall service exited
	surcharges map[uint64]uint64     // segid -> extra attach cycles (fabric pulls)
}

// New boots the host OS on machine m: the host initially owns every core
// and all (large-page-aligned) memory.
func New(m *hw.Machine) (*Host, error) {
	h := &Host{
		M:             m,
		HostLedger:    pisces.NewLedger(),
		EnclaveLedger: pisces.NewLedger(),
		io:            pisces.NativeMemIO{Mem: m.Mem},
		consoles:      make(map[int]*bytes.Buffer),
		handlers:      make(map[uint32]LongcallHandler),
		hostCores:     make(map[int]bool),
		fs:            newMemFS(),
		services:      make(map[int]chan struct{}),
		surcharges:    make(map[uint64]uint64),
	}
	for _, n := range m.Topo.Nodes {
		start := hw.AlignUp(n.MemBase, hw.PageSize2M)
		end := hw.AlignDown(n.MemBase+n.MemSize, hw.PageSize2M)
		if err := h.HostLedger.DonateMemory(hw.Extent{Start: start, Size: end - start, Node: n.ID}); err != nil {
			return nil, err
		}
		for _, c := range n.Cores {
			h.hostCores[c] = true
		}
	}
	h.Pisces = pisces.NewFramework(m, h.EnclaveLedger)
	h.Master = hobbes.NewMaster(h.Pisces)

	// Start the longcall service for every enclave as it boots, and drop
	// dead enclaves' descriptor tables.
	h.Pisces.Subscribe(func(ev *pisces.Event) error {
		switch ev.Kind {
		case pisces.EvBooted:
			svcDone := make(chan struct{})
			h.setService(ev.Enclave.ID, svcDone)
			go func() {
				defer close(svcDone)
				h.longcallService(ev.Enclave)
			}()
		case pisces.EvCrashed, pisces.EvDestroyed:
			// The rings are closed by teardown; wait for the service to
			// stop touching the enclave's (about to be recycled) memory.
			if svcDone := h.takeService(ev.Enclave.ID); svcDone != nil {
				<-svcDone
			}
			h.fs.dropEnclave(ev.Enclave.ID)
		}
		return nil
	})
	h.registerDefaultLongcalls()
	h.registerFileLongcalls()
	return h, nil
}

// OfflineCores removes cores from the host and donates them to the enclave
// resource pool, as the Pisces kernel module does at enclave setup.
func (h *Host) OfflineCores(ids ...int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, id := range ids {
		if !h.hostCores[id] {
			return fmt.Errorf("linuxhost: core %d not owned by host", id)
		}
		delete(h.hostCores, id)
		h.EnclaveLedger.DonateCore(id)
	}
	return nil
}

// OfflineMemory carves size bytes on node out of the host's memory and
// donates them for enclave use.
func (h *Host) OfflineMemory(node int, size uint64) error {
	ext, err := h.HostLedger.AllocMemory(node, size)
	if err != nil {
		return err
	}
	return h.EnclaveLedger.DonateMemory(ext)
}

// QuarantineResources permanently withdraws a dead enclave's hardware from
// the enclave pool and returns it to the host — the supervisor's terminal
// escalation when an enclave has exhausted its restart budget. The caller
// must pass resources that have already been reclaimed into the enclave
// ledger (wait for the enclave's Reclaimed channel first); the exact cores
// and extents are pulled back out and onlined for the host.
func (h *Host) QuarantineResources(cores []int, mem []hw.Extent) error {
	for _, c := range cores {
		if !h.EnclaveLedger.WithdrawCore(c) {
			return fmt.Errorf("linuxhost: core %d not reclaimable for quarantine", c)
		}
	}
	h.onlineCores(cores)
	for _, e := range mem {
		if err := h.EnclaveLedger.Reserve(e); err != nil {
			return fmt.Errorf("linuxhost: quarantine memory: %w", err)
		}
		h.HostLedger.FreeMemory(e)
	}
	return nil
}

// ReclaimMemory withdraws extents from a running enclave back to the host
// in one batched operation — the host-pressure path of elastic memory
// management. The enclave relinquishes every extent, the protection layer
// coalesces the whole set into one TLB shootdown epoch per core (instead
// of one per extent), and the freed frames leave the enclave pool for the
// host ledger. On error nothing moves to the host: whatever the batch did
// reclaim stays in the enclave pool, safe but still donated.
func (h *Host) ReclaimMemory(enc *pisces.Enclave, exts []hw.Extent) error {
	if err := h.Pisces.RemoveMemoryBatch(enc, exts); err != nil {
		return err
	}
	// The batch freed the extents into the enclave pool; pull them back
	// out and online them for the host.
	for _, e := range exts {
		if err := h.EnclaveLedger.Reserve(e); err != nil {
			return fmt.Errorf("linuxhost: reclaim %v: %w", e, err)
		}
		h.HostLedger.FreeMemory(e)
	}
	return nil
}

// onlineCores marks cores as host-owned again under the lock.
func (h *Host) onlineCores(cores []int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, c := range cores {
		h.hostCores[c] = true
	}
}

// HostAlloc allocates host-private memory (buffers, canaries, host-side
// shared segments).
func (h *Host) HostAlloc(node int, size uint64) (hw.Extent, error) {
	return h.HostLedger.AllocMemory(node, size)
}

// HostFree returns memory from HostAlloc.
func (h *Host) HostFree(e hw.Extent) { h.HostLedger.FreeMemory(e) }

// Console returns everything enclave encID has written to its console.
func (h *Host) Console(encID int) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if b := h.consoles[encID]; b != nil {
		return b.String()
	}
	return ""
}

// appendConsole buffers console output from enclave encID.
func (h *Host) appendConsole(encID int, buf []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.consoles[encID]
	if b == nil {
		b = &bytes.Buffer{}
		h.consoles[encID] = b
	}
	b.Write(buf)
}

// SetAttachSurcharge attaches extra host-side cycles to every XEMEM
// attach of segid. The cluster fabric uses this hook to charge a
// cross-node window pull (latency + bytes/bandwidth) through the same
// longcall cost path every local attach already rides, so remote attach
// latency lands on the attaching guest's TSC like any other host work.
// A zero value clears the surcharge.
func (h *Host) SetAttachSurcharge(segid, cycles uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if cycles == 0 {
		delete(h.surcharges, segid)
		return
	}
	h.surcharges[segid] = cycles
}

// attachSurcharge returns the extra attach cycles registered for segid.
func (h *Host) attachSurcharge(segid uint64) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.surcharges[segid]
}

// RegisterLongcall installs (or overrides) a longcall handler.
func (h *Host) RegisterLongcall(nr uint32, fn LongcallHandler) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.handlers[nr] = fn
}

// handlerFor looks up the longcall handler for nr, or nil.
func (h *Host) handlerFor(nr uint32) LongcallHandler {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.handlers[nr]
}

// setService records the done channel of an enclave's longcall service.
func (h *Host) setService(encID int, done chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.services[encID] = done
}

// takeService removes and returns an enclave's longcall-service done
// channel; the caller waits on it outside the lock.
func (h *Host) takeService(encID int) chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	done := h.services[encID]
	delete(h.services, encID)
	return done
}

// longcallService processes forwarded system calls for one enclave until
// the enclave goes away.
func (h *Host) longcallService(enc *pisces.Enclave) {
	for {
		var m pisces.Msg
		if err := enc.LcReq.Pop(h.io, &m); err != nil {
			return // enclave stopped or crashed
		}
		resp := pisces.Msg{Type: m.Type, Seq: m.Seq}
		fn := h.handlerFor(m.Type)
		var cycles uint64 = lcBaseCost
		if fn == nil {
			put64(resp.Payload[:], pisces.LcRespStatus, pisces.LcErrNoSys)
		} else {
			cycles += fn(h, enc, &m, &resp)
		}
		put64(resp.Payload[:], pisces.LcRespCycles, cycles)
		if err := enc.LcResp.Push(h.io, &resp); err != nil {
			return
		}
		// Response doorbell: kick the calling core so its idle wait wakes.
		caller := int(get64(m.Payload[:], pisces.LcReqCallerCore))
		h.M.RouteIPI(-1, caller, pisces.VectorLcResp)
	}
}

// PlantCanary fills [e.Start, e.End) with a deterministic pattern derived
// from seed. Used to detect cross-enclave corruption.
func (h *Host) PlantCanary(e hw.Extent, seed uint64) error {
	for off := uint64(0); off < e.Size; off += 4096 {
		if err := h.M.Mem.Write64(e.Start+off, seed^(e.Start+off)); err != nil {
			return err
		}
	}
	return nil
}

// CheckCanary verifies a pattern from PlantCanary, returning the first
// corrupted address or 0 if intact.
func (h *Host) CheckCanary(e hw.Extent, seed uint64) (uint64, error) {
	for off := uint64(0); off < e.Size; off += 4096 {
		v, err := h.M.Mem.Read64(e.Start + off)
		if err != nil {
			return 0, err
		}
		if v != seed^(e.Start+off) {
			return e.Start + off, nil
		}
	}
	return 0, nil
}
