package linuxhost

import (
	"bytes"
	"testing"
	"testing/quick"

	"covirt/internal/pisces"
)

func TestMemFSOpenModes(t *testing.T) {
	fs := newMemFS()
	if _, err := fs.open(1, "/missing", pisces.OpenRead); err == nil {
		t.Error("read-open of missing file succeeded")
	}
	if _, err := fs.open(1, "", pisces.OpenWrite); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := fs.open(1, "/f", 99); err == nil {
		t.Error("bad flags accepted")
	}
	fd, err := fs.open(1, "/f", pisces.OpenWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.write(1, fd, 0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	// OpenWrite truncates.
	fd2, _ := fs.open(1, "/f", pisces.OpenWrite)
	if n, _ := fs.size(1, fd2); n != 0 {
		t.Errorf("size after truncating open = %d", n)
	}
}

func TestMemFSDescriptorIsolationBetweenEnclaves(t *testing.T) {
	fs := newMemFS()
	fdA, err := fs.open(1, "/shared", pisces.OpenWrite)
	if err != nil {
		t.Fatal(err)
	}
	// Enclave 2 cannot use enclave 1's descriptor number.
	if _, err := fs.read(2, fdA, 0, 4); err == nil {
		t.Error("cross-enclave fd use succeeded")
	}
	// But both can open the same path independently.
	if _, err := fs.write(1, fdA, 0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	fdB, err := fs.open(2, "/shared", pisces.OpenRead)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.read(2, fdB, 0, 16)
	if err != nil || !bytes.Equal(got, []byte("data")) {
		t.Errorf("read = %q, %v", got, err)
	}
}

func TestMemFSCursorAndOffsets(t *testing.T) {
	fs := newMemFS()
	fd, _ := fs.open(1, "/c", pisces.OpenWrite)
	_, _ = fs.write(1, fd, cursorOff, []byte("aaaa"))
	_, _ = fs.write(1, fd, cursorOff, []byte("bbbb"))
	if n, _ := fs.size(1, fd); n != 8 {
		t.Errorf("size = %d", n)
	}
	// Absolute write inside the file does not move the cursor.
	_, _ = fs.write(1, fd, 0, []byte("XX"))
	_, _ = fs.write(1, fd, cursorOff, []byte("cc"))
	got, _ := fs.read(1, fd, 0, 16)
	if string(got) != "XXaabbbbcc" {
		t.Errorf("contents = %q", got)
	}
	// Reads past EOF return nil.
	if out, _ := fs.read(1, fd, 100, 4); out != nil {
		t.Errorf("past-EOF read = %q", out)
	}
}

// cursorOff mirrors the kitten-side sentinel for "use the fd cursor".
const cursorOff = ^uint64(0)

func TestMemFSDropEnclave(t *testing.T) {
	fs := newMemFS()
	fd, _ := fs.open(3, "/x", pisces.OpenWrite)
	fs.dropEnclave(3)
	if _, err := fs.write(3, fd, 0, []byte("y")); err == nil {
		t.Error("fd survived dropEnclave")
	}
	// The file itself persists (the host still owns the data).
	if _, err := fs.open(4, "/x", pisces.OpenRead); err != nil {
		t.Errorf("file lost after enclave drop: %v", err)
	}
}

// Property: write-then-read round-trips arbitrary content at arbitrary
// (bounded) offsets.
func TestMemFSRoundTripProperty(t *testing.T) {
	f := func(off uint16, data []byte) bool {
		if len(data) > pisces.LcDataBytes {
			data = data[:pisces.LcDataBytes]
		}
		fs := newMemFS()
		fd, err := fs.open(1, "/p", pisces.OpenWrite)
		if err != nil {
			return false
		}
		if _, err := fs.write(1, fd, uint64(off), data); err != nil {
			return false
		}
		got, err := fs.read(1, fd, uint64(off), uint64(len(data)))
		if err != nil {
			return false
		}
		if len(data) == 0 {
			return len(got) == 0
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
