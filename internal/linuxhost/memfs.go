package linuxhost

import (
	"fmt"
	"sort"
	"sync"

	"covirt/internal/pisces"
)

// memFS is the host's in-memory filesystem serving forwarded file I/O from
// co-kernel applications — the "access to the Linux environment" half of
// the co-kernel bargain. Per-enclave descriptor tables keep enclaves from
// touching each other's open files.
type memFS struct {
	mu     sync.Mutex
	files  map[string][]byte
	fds    map[int]map[uint64]*fdState // enclave id -> fd -> state
	nextFD map[int]uint64
}

type fdState struct {
	path   string
	flags  uint64
	offset uint64
}

func newMemFS() *memFS {
	return &memFS{
		files:  make(map[string][]byte),
		fds:    make(map[int]map[uint64]*fdState),
		nextFD: make(map[int]uint64),
	}
}

// open resolves path for an enclave, creating the file for write modes.
func (fs *memFS) open(enc int, path string, flags uint64) (uint64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if path == "" {
		return 0, fmt.Errorf("memfs: empty path")
	}
	_, exists := fs.files[path]
	switch flags {
	case pisces.OpenRead:
		if !exists {
			return 0, fmt.Errorf("memfs: %s: no such file", path)
		}
	case pisces.OpenWrite:
		fs.files[path] = nil // create/truncate
	case pisces.OpenAppend:
		if !exists {
			fs.files[path] = nil
		}
	default:
		return 0, fmt.Errorf("memfs: bad flags %d", flags)
	}
	t := fs.fds[enc]
	if t == nil {
		t = make(map[uint64]*fdState)
		fs.fds[enc] = t
	}
	fs.nextFD[enc]++
	fd := fs.nextFD[enc] + 2 // leave 0-2 for std streams
	st := &fdState{path: path, flags: flags}
	if flags == pisces.OpenAppend {
		st.offset = uint64(len(fs.files[path]))
	}
	t[fd] = st
	return fd, nil
}

// lookup returns the fd state for an enclave.
func (fs *memFS) lookup(enc int, fd uint64) (*fdState, error) {
	t := fs.fds[enc]
	if t == nil || t[fd] == nil {
		return nil, fmt.Errorf("memfs: bad fd %d", fd)
	}
	return t[fd], nil
}

// read copies up to n bytes from offset off (or the cursor when off is
// ^0), returning the data.
func (fs *memFS) read(enc int, fd, off, n uint64) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st, err := fs.lookup(enc, fd)
	if err != nil {
		return nil, err
	}
	data := fs.files[st.path]
	pos := off
	if off == ^uint64(0) {
		pos = st.offset
	}
	if pos >= uint64(len(data)) {
		return nil, nil // EOF
	}
	end := pos + n
	if end > uint64(len(data)) {
		end = uint64(len(data))
	}
	out := make([]byte, end-pos)
	copy(out, data[pos:end])
	if off == ^uint64(0) {
		st.offset = end
	}
	return out, nil
}

// write stores p at offset off (or the cursor when off is ^0).
func (fs *memFS) write(enc int, fd, off uint64, p []byte) (uint64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st, err := fs.lookup(enc, fd)
	if err != nil {
		return 0, err
	}
	if st.flags == pisces.OpenRead {
		return 0, fmt.Errorf("memfs: fd %d is read-only", fd)
	}
	data := fs.files[st.path]
	pos := off
	if off == ^uint64(0) {
		pos = st.offset
	}
	if need := pos + uint64(len(p)); need > uint64(len(data)) {
		grown := make([]byte, need)
		copy(grown, data)
		data = grown
	}
	copy(data[pos:], p)
	fs.files[st.path] = data
	if off == ^uint64(0) {
		st.offset = pos + uint64(len(p))
	}
	return uint64(len(p)), nil
}

// size returns the file length behind fd.
func (fs *memFS) size(enc int, fd uint64) (uint64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st, err := fs.lookup(enc, fd)
	if err != nil {
		return 0, err
	}
	return uint64(len(fs.files[st.path])), nil
}

// close drops the descriptor.
func (fs *memFS) close(enc int, fd uint64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.lookup(enc, fd); err != nil {
		return err
	}
	delete(fs.fds[enc], fd)
	return nil
}

// unlink removes a file.
func (fs *memFS) unlink(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("memfs: %s: no such file", path)
	}
	delete(fs.files, path)
	return nil
}

// dropEnclave closes all of an enclave's descriptors (crash cleanup).
func (fs *memFS) dropEnclave(enc int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.fds, enc)
	delete(fs.nextFD, enc)
}

// --- Host-side convenience API ---

// WriteFile stores contents under path in the host filesystem (staging
// input data for enclaves).
func (h *Host) WriteFile(path string, contents []byte) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.fs.files[path] = append([]byte(nil), contents...)
}

// ReadFile returns a file's contents (collecting enclave output).
func (h *Host) ReadFile(path string) ([]byte, bool) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	data, ok := h.fs.files[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// ListFiles returns the host filesystem's paths, sorted.
func (h *Host) ListFiles() []string {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	out := make([]string, 0, len(h.fs.files))
	for p := range h.fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// registerFileLongcalls wires the file-forwarding system calls.
func (h *Host) registerFileLongcalls() {
	const perByteCost = 1 // host memcpy bandwidth

	h.RegisterLongcall(pisces.SysOpen, func(h *Host, enc *pisces.Enclave, m, resp *pisces.Msg) uint64 {
		plen := get64(m.Payload[:], 0)
		flags := get64(m.Payload[:], 8)
		if plen == 0 || plen > 4096 {
			setResp(resp, pisces.LcErrInval, 0, 0)
			return 100
		}
		buf := make([]byte, plen)
		if err := h.io.ReadBytes(enc.Base()+pisces.OffLcData, buf); err != nil {
			setResp(resp, pisces.LcErrFault, 0, 0)
			return 100
		}
		fd, err := h.fs.open(enc.ID, string(buf), flags)
		if err != nil {
			setResp(resp, pisces.LcErrNoEnt, 0, 0)
			return 600
		}
		setResp(resp, pisces.LcOK, fd, 0)
		return 900 // path resolution
	})

	h.RegisterLongcall(pisces.SysClose, func(h *Host, enc *pisces.Enclave, m, resp *pisces.Msg) uint64 {
		if err := h.fs.close(enc.ID, get64(m.Payload[:], 0)); err != nil {
			setResp(resp, pisces.LcErrInval, 0, 0)
			return 100
		}
		setResp(resp, pisces.LcOK, 0, 0)
		return 200
	})

	h.RegisterLongcall(pisces.SysRead, func(h *Host, enc *pisces.Enclave, m, resp *pisces.Msg) uint64 {
		fd := get64(m.Payload[:], 0)
		off := get64(m.Payload[:], 8)
		n := get64(m.Payload[:], 16)
		if n > pisces.LcDataBytes {
			n = pisces.LcDataBytes
		}
		data, err := h.fs.read(enc.ID, fd, off, n)
		if err != nil {
			setResp(resp, pisces.LcErrInval, 0, 0)
			return 100
		}
		if len(data) > 0 {
			if err := h.io.WriteBytes(enc.Base()+pisces.OffLcData, data); err != nil {
				setResp(resp, pisces.LcErrFault, 0, 0)
				return 100
			}
		}
		setResp(resp, pisces.LcOK, uint64(len(data)), 0)
		return 700 + uint64(len(data))*perByteCost
	})

	h.RegisterLongcall(pisces.SysWrite, func(h *Host, enc *pisces.Enclave, m, resp *pisces.Msg) uint64 {
		fd := get64(m.Payload[:], 0)
		off := get64(m.Payload[:], 8)
		n := get64(m.Payload[:], 16)
		if n > pisces.LcDataBytes {
			setResp(resp, pisces.LcErrInval, 0, 0)
			return 100
		}
		buf := make([]byte, n)
		if err := h.io.ReadBytes(enc.Base()+pisces.OffLcData, buf); err != nil {
			setResp(resp, pisces.LcErrFault, 0, 0)
			return 100
		}
		wrote, err := h.fs.write(enc.ID, fd, off, buf)
		if err != nil {
			setResp(resp, pisces.LcErrInval, 0, 0)
			return 100
		}
		setResp(resp, pisces.LcOK, wrote, 0)
		return 700 + wrote*perByteCost
	})

	h.RegisterLongcall(pisces.SysUnlink, func(h *Host, enc *pisces.Enclave, m, resp *pisces.Msg) uint64 {
		plen := get64(m.Payload[:], 0)
		if plen == 0 || plen > 4096 {
			setResp(resp, pisces.LcErrInval, 0, 0)
			return 100
		}
		buf := make([]byte, plen)
		if err := h.io.ReadBytes(enc.Base()+pisces.OffLcData, buf); err != nil {
			setResp(resp, pisces.LcErrFault, 0, 0)
			return 100
		}
		if err := h.fs.unlink(string(buf)); err != nil {
			setResp(resp, pisces.LcErrNoEnt, 0, 0)
			return 300
		}
		setResp(resp, pisces.LcOK, 0, 0)
		return 600
	})

	h.RegisterLongcall(pisces.SysFsize, func(h *Host, enc *pisces.Enclave, m, resp *pisces.Msg) uint64 {
		size, err := h.fs.size(enc.ID, get64(m.Payload[:], 0))
		if err != nil {
			setResp(resp, pisces.LcErrInval, 0, 0)
			return 100
		}
		setResp(resp, pisces.LcOK, size, 0)
		return 150
	})
}
