package linuxhost

import (
	"strings"
	"testing"
	"time"

	"covirt/internal/hw"
	"covirt/internal/kitten"
	"covirt/internal/pisces"
)

// newTestHost boots a host on a small machine and offlines resources for
// enclave use.
func newTestHost(t *testing.T) *Host {
	t.Helper()
	spec := hw.DefaultSpec()
	spec.MemPerNode = 2 << 30
	m, err := hw.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.OfflineCores(1, 2, 3, 7, 8, 9); err != nil {
		t.Fatal(err)
	}
	if err := h.OfflineMemory(0, 512<<20); err != nil {
		t.Fatal(err)
	}
	if err := h.OfflineMemory(1, 512<<20); err != nil {
		t.Fatal(err)
	}
	return h
}

// bootEnclave creates and boots a Kitten enclave.
func bootEnclave(t *testing.T, h *Host, name string, cores int, nodes []int, mem uint64) (*pisces.Enclave, *kitten.Kernel) {
	t.Helper()
	enc, err := h.Pisces.CreateEnclave(pisces.EnclaveSpec{
		Name: name, NumCores: cores, Nodes: nodes, MemBytes: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	k := kitten.New(kitten.Config{})
	if err := h.Pisces.Boot(enc, k); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Pisces.Destroy(enc) })
	return enc, k
}

func TestHostResourceOfflining(t *testing.T) {
	h := newTestHost(t)
	if got := h.EnclaveLedger.FreeBytes(0); got != 512<<20 {
		t.Errorf("enclave pool node0 = %d", got)
	}
	// Offlining a core twice fails.
	if err := h.OfflineCores(1); err == nil {
		t.Error("double-offline of core 1 accepted")
	}
	// Core 0 still belongs to the host.
	if err := h.OfflineCores(0); err != nil {
		t.Errorf("offline core 0: %v", err)
	}
}

func TestEnclaveBootAndPing(t *testing.T) {
	h := newTestHost(t)
	enc, k := bootEnclave(t, h, "lwk0", 2, []int{0}, 128<<20)
	if enc.State() != pisces.StateRunning {
		t.Fatalf("state = %v", enc.State())
	}
	if k.NumCores() != 2 {
		t.Fatalf("cores = %d", k.NumCores())
	}
	if err := h.Pisces.Ping(enc); err != nil {
		t.Fatalf("ping: %v", err)
	}
}

func TestTaskRunsAndCharges(t *testing.T) {
	h := newTestHost(t)
	_, k := bootEnclave(t, h, "lwk0", 1, []int{0}, 128<<20)
	task, err := k.Spawn("work", 0, func(e *kitten.Env) error {
		start := e.TSC()
		e.Compute(10_000)
		if e.TSC() <= start {
			t.Error("TSC did not advance")
		}
		buf := e.Alloc(0, 4<<20)
		e.Stream(buf.Start, buf.Size, true)
		e.Write64(buf.Start+128, 0xABCD)
		if v := e.Read64(buf.Start + 128); v != 0xABCD {
			t.Errorf("read back %#x", v)
		}
		e.Free(buf)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Wait(); err != nil {
		t.Fatalf("task: %v", err)
	}
}

func TestTaskSegfaultKillsTaskNotKernel(t *testing.T) {
	h := newTestHost(t)
	enc, k := bootEnclave(t, h, "lwk0", 1, []int{0}, 128<<20)
	task, err := k.Spawn("bad", 0, func(e *kitten.Env) error {
		e.Access(0xDEAD0000, true, hw.AccessHot) // outside memory map
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	werr := task.Wait()
	if werr == nil || !strings.Contains(werr.Error(), "segmentation fault") {
		t.Fatalf("err = %v", werr)
	}
	// Kernel still alive.
	if err := h.Pisces.Ping(enc); err != nil {
		t.Fatalf("ping after task fault: %v", err)
	}
}

func TestConsoleLongcall(t *testing.T) {
	h := newTestHost(t)
	enc, k := bootEnclave(t, h, "lwk0", 1, []int{0}, 128<<20)
	task, _ := k.Spawn("hello", 0, func(e *kitten.Env) error {
		return e.WriteConsole("hello from the enclave\n")
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := h.Console(enc.ID); got != "hello from the enclave\n" {
		t.Errorf("console = %q", got)
	}
}

func TestMemoryAddRemove(t *testing.T) {
	h := newTestHost(t)
	enc, k := bootEnclave(t, h, "lwk0", 1, []int{0}, 128<<20)
	before := k.MemMap().Bytes()
	ext, err := h.Pisces.AddMemory(enc, 0, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if k.MemMap().Bytes() != before+ext.Size {
		t.Errorf("memmap bytes = %d, want %d", k.MemMap().Bytes(), before+ext.Size)
	}
	// The enclave can use the new memory.
	task, _ := k.Spawn("useit", 0, func(e *kitten.Env) error {
		e.Write64(ext.Start+4096, 7)
		return nil
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := h.Pisces.RemoveMemory(enc, ext); err != nil {
		t.Fatal(err)
	}
	if k.MemMap().Bytes() != before {
		t.Errorf("memmap bytes after remove = %d, want %d", k.MemMap().Bytes(), before)
	}
	// Accessing removed memory now segfaults at the kitten level.
	task2, _ := k.Spawn("stale", 0, func(e *kitten.Env) error {
		e.Access(ext.Start+4096, false, hw.AccessHot)
		return nil
	})
	if err := task2.Wait(); err == nil {
		t.Error("access to removed memory succeeded")
	}
}

func TestRemoveInUseMemoryRejected(t *testing.T) {
	h := newTestHost(t)
	enc, k := bootEnclave(t, h, "lwk0", 1, []int{0}, 128<<20)
	ext, err := h.Pisces.AddMemory(enc, 0, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Allocate from the new extent so it is in use.
	var held hw.Extent
	task, _ := k.Spawn("hold", 0, func(e *kitten.Env) error {
		// Drain allocations until one lands inside ext.
		for i := 0; i < 64; i++ {
			b := e.Alloc(0, 2<<20)
			if ext.Contains(b.Start) {
				held = b
				return nil
			}
		}
		return nil
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	if held.Size == 0 {
		t.Skip("allocator never used the new extent")
	}
	if err := h.Pisces.RemoveMemory(enc, ext); err == nil {
		t.Error("removal of in-use extent accepted")
	}
}

func TestXememCrossEnclave(t *testing.T) {
	h := newTestHost(t)
	_, kA := bootEnclave(t, h, "producer", 1, []int{0}, 128<<20)
	_, kB := bootEnclave(t, h, "consumer", 1, []int{1}, 128<<20)

	var seg hw.Extent
	tA, _ := kA.Spawn("export", 0, func(e *kitten.Env) error {
		seg = e.Alloc(0, 4<<20)
		e.Write64(seg.Start, 0xC0FFEE)
		_, err := e.XemMake("shared.data", seg)
		return err
	})
	if err := tA.Wait(); err != nil {
		t.Fatalf("export: %v", err)
	}

	tB, _ := kB.Spawn("import", 0, func(e *kitten.Env) error {
		segid, err := e.XemGet("shared.data")
		if err != nil {
			return err
		}
		exts, err := e.XemAttach(segid)
		if err != nil {
			return err
		}
		if len(exts) != 1 || exts[0].Start != seg.Start {
			t.Errorf("attached %v, want %v", exts, seg)
		}
		if v := e.Read64(exts[0].Start); v != 0xC0FFEE {
			t.Errorf("shared read = %#x", v)
		}
		e.Write64(exts[0].Start+8, 0xBEEF)
		return e.XemDetach(segid)
	})
	if err := tB.Wait(); err != nil {
		t.Fatalf("import: %v", err)
	}

	// Producer observes the consumer's write.
	tA2, _ := kA.Spawn("check", 0, func(e *kitten.Env) error {
		if v := e.Read64(seg.Start + 8); v != 0xBEEF {
			t.Errorf("producer sees %#x", v)
		}
		return nil
	})
	if err := tA2.Wait(); err != nil {
		t.Fatal(err)
	}

	// After detach the consumer can no longer touch the segment.
	tB2, _ := kB.Spawn("after", 0, func(e *kitten.Env) error {
		e.Access(seg.Start, false, hw.AccessHot)
		return nil
	})
	if err := tB2.Wait(); err == nil {
		t.Error("consumer accessed detached segment")
	}
}

func TestXememNameErrors(t *testing.T) {
	h := newTestHost(t)
	_, k := bootEnclave(t, h, "lwk0", 1, []int{0}, 128<<20)
	task, _ := k.Spawn("lookup", 0, func(e *kitten.Env) error {
		if _, err := e.XemGet("no.such.segment"); err == nil {
			t.Error("lookup of absent name succeeded")
		}
		seg := e.Alloc(0, 2<<20)
		if _, err := e.XemMake("dup", seg); err != nil {
			return err
		}
		if _, err := e.XemMake("dup", seg); err == nil {
			t.Error("duplicate name accepted")
		}
		// Exporting memory we do not own is rejected by the host.
		if _, err := e.XemMake("evil", hw.Extent{Start: 0x100000, Size: 1 << 20}); err == nil {
			t.Error("export of foreign memory accepted")
		}
		return nil
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelTasksAcrossCores(t *testing.T) {
	h := newTestHost(t)
	_, k := bootEnclave(t, h, "lwk0", 4, []int{0, 1}, 256<<20)
	counts := make([]uint64, 4)
	err := k.RunParallel("spin", 4, func(e *kitten.Env, rank int) error {
		e.Compute(50_000)
		counts[rank] = e.TSC()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, c := range counts {
		if c == 0 {
			t.Errorf("rank %d never ran", r)
		}
	}
}

func TestIntraEnclaveIPI(t *testing.T) {
	h := newTestHost(t)
	_, k := bootEnclave(t, h, "lwk0", 2, []int{0}, 128<<20)
	got := make(chan int, 1)
	k.OnIPI(0x60, func(e *kitten.Env) { got <- e.Core })
	t0, _ := k.Spawn("send", 0, func(e *kitten.Env) error {
		e.SendIPI(1, 0x60)
		return nil
	})
	if err := t0.Wait(); err != nil {
		t.Fatal(err)
	}
	// Core 1's idle loop services the interrupt on its own schedule.
	select {
	case core := <-got:
		if core != 1 {
			t.Errorf("IPI handled on core %d", core)
		}
	case <-time.After(5 * time.Second):
		t.Error("IPI never delivered")
	}
}

func TestCanaries(t *testing.T) {
	h := newTestHost(t)
	buf, err := h.HostAlloc(0, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.PlantCanary(buf, 0x1234); err != nil {
		t.Fatal(err)
	}
	if addr, _ := h.CheckCanary(buf, 0x1234); addr != 0 {
		t.Fatalf("fresh canary corrupt at %#x", addr)
	}
	if err := h.M.Mem.Write64(buf.Start+8192, 666); err != nil {
		t.Fatal(err)
	}
	if addr, _ := h.CheckCanary(buf, 0x1234); addr != buf.Start+8192 {
		t.Fatalf("corruption not found, got %#x", addr)
	}
}

func TestEnclaveDestroyReclaims(t *testing.T) {
	h := newTestHost(t)
	free0 := h.EnclaveLedger.FreeBytes(0)
	enc, _ := bootEnclave(t, h, "lwk0", 2, []int{0}, 128<<20)
	if h.EnclaveLedger.FreeBytes(0) >= free0 {
		t.Fatal("enclave consumed no memory")
	}
	if err := h.Pisces.Destroy(enc); err != nil {
		t.Fatal(err)
	}
	if got := h.EnclaveLedger.FreeBytes(0); got != free0 {
		t.Errorf("free after destroy = %d, want %d", got, free0)
	}
	if enc.State() != pisces.StateStopped {
		t.Errorf("state = %v", enc.State())
	}
}
