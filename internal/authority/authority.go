// Package authority reifies resource ownership as explicit, unforgeable,
// revocable capability keys. Every grant/attach/assign crossing in the
// stack — memory regions handed to an enclave, IPI vectors whitelisted in
// the Covirt filter, I/O port ranges opened in the exit bitmap, XEMEM
// segments exported and attached — names a Cap minted from one Table per
// node, replacing the scattered per-subsystem "owner int" checks with a
// single auditable authority model (brittle-kernel Rule 1: no ambient
// authority).
//
// Unforgeability is table-authoritative: a Cap is just a value, but Verify
// compares every field against the table entry it claims to be, so a guest
// that fabricates or mutates a key fails the match. Revocation is a
// generation bump on the entry — O(1), recursive over delegation children
// — and verification on the hot path is a lock-free slice load plus one
// atomic generation compare, following the PR 5 cache discipline
// (immutable-after-publish entries behind an atomic pointer; mutations
// serialized under a mutex that readers never take).
package authority

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Kind classifies the resource a capability governs.
type Kind uint8

// The resource classes of the Covirt protection model.
const (
	KindMemory Kind = iota // a physical memory range
	KindIPI                // an (destination core, vector) IPI route
	KindIO                 // an I/O port range
	KindXemem              // a XEMEM segment
	KindPlace              // a fleet placement (gang of enclaves across nodes)
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindMemory:
		return "memory"
	case KindIPI:
		return "ipi"
	case KindIO:
		return "io"
	case KindXemem:
		return "xemem"
	case KindPlace:
		return "place"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rights is the bitmask of operations a capability permits.
type Rights uint32

// Rights bits. Delegation may only narrow: a child's rights must be a
// subset of its parent's.
const (
	RightRead Rights = 1 << iota
	RightWrite
	RightMap      // install into a protection structure (EPT, IO bitmap)
	RightSend     // send the IPI vector
	RightAttach   // attach the XEMEM segment
	RightRemove   // remove/unexport the resource
	RightDelegate // mint narrowed children
)

// RightsAll is every right; root capabilities carry it.
const RightsAll = RightRead | RightWrite | RightMap | RightSend |
	RightAttach | RightRemove | RightDelegate

// String renders the rights as a compact flag string (e.g. "rwm---d").
func (r Rights) String() string {
	flags := []struct {
		bit Rights
		ch  byte
	}{
		{RightRead, 'r'}, {RightWrite, 'w'}, {RightMap, 'm'},
		{RightSend, 's'}, {RightAttach, 'a'}, {RightRemove, 'x'},
		{RightDelegate, 'd'},
	}
	b := make([]byte, len(flags))
	for i, f := range flags {
		if r&f.bit != 0 {
			b[i] = f.ch
		} else {
			b[i] = '-'
		}
	}
	return string(b)
}

// Scope bounds the resource a capability covers. The fields used depend on
// the Kind; delegation may only narrow the scope (child ⊆ parent).
type Scope struct {
	// KindMemory: the physical range [Start, Start+Size).
	Start, Size uint64
	// KindIPI: the exact (destination core, vector) route.
	Dest   int
	Vector uint8
	// KindIO: the inclusive port range [PortLo, PortHi].
	PortLo, PortHi uint16
	// KindXemem: the segment id.
	SegID uint64
	// KindPlace: the fleet placement (app) id.
	App uint64
	// Wild marks a root scope covering every resource of its kind.
	Wild bool
}

// MemScope bounds a physical memory range.
func MemScope(start, size uint64) Scope { return Scope{Start: start, Size: size} }

// IPIScope bounds one (destination core, vector) route.
func IPIScope(dest int, vector uint8) Scope { return Scope{Dest: dest, Vector: vector} }

// IOScope bounds an inclusive port range.
func IOScope(lo, hi uint16) Scope { return Scope{PortLo: lo, PortHi: hi} }

// XememScope bounds one segment.
func XememScope(segid uint64) Scope { return Scope{SegID: segid} }

// PlaceScope bounds one fleet placement.
func PlaceScope(app uint64) Scope { return Scope{App: app} }

// WildScope covers every resource of a kind; only roots carry it.
func WildScope() Scope { return Scope{Wild: true} }

// Contains reports whether s covers inner under kind semantics: range
// subset for memory and I/O, exact route for IPI, segment equality for
// XEMEM. A Wild scope covers everything (including another Wild).
func (s Scope) Contains(kind Kind, inner Scope) bool {
	if s.Wild {
		return true
	}
	if inner.Wild {
		return false
	}
	switch kind {
	case KindMemory:
		return inner.Start >= s.Start && inner.Start+inner.Size <= s.Start+s.Size
	case KindIPI:
		return inner.Dest == s.Dest && inner.Vector == s.Vector
	case KindIO:
		return inner.PortLo >= s.PortLo && inner.PortHi <= s.PortHi
	case KindXemem:
		return inner.SegID == s.SegID
	case KindPlace:
		return inner.App == s.App
	}
	return false
}

// String renders the scope for the given kind.
func (s Scope) String(kind Kind) string {
	if s.Wild {
		return "*"
	}
	switch kind {
	case KindMemory:
		return fmt.Sprintf("[%#x,%#x)", s.Start, s.Start+s.Size)
	case KindIPI:
		return fmt.Sprintf("core%d/vec%#x", s.Dest, s.Vector)
	case KindIO:
		return fmt.Sprintf("ports[%#x,%#x]", s.PortLo, s.PortHi)
	case KindXemem:
		return fmt.Sprintf("seg%d", s.SegID)
	case KindPlace:
		return fmt.Sprintf("app%d", s.App)
	}
	return "?"
}

// Cap is a capability key. It is a plain value — safe to copy across wire
// formats and payloads — whose authority derives entirely from matching
// its Table entry: a forged or stale Cap fails Verify. Gen is the entry
// generation at mint time; revocation bumps the entry generation so every
// outstanding copy dies at once.
type Cap struct {
	ID     uint64
	Gen    uint64
	Holder int // enclave id (0 = host)
	Kind   Kind
	Rights Rights
}

// Zero reports whether c is the zero (absent) capability.
func (c Cap) Zero() bool { return c.ID == 0 }

// Ref is the compact 16-byte wire form of a Cap (boot params, command
// payloads, longcall data). Resolve reconstructs the full key host-side.
type Ref struct {
	ID  uint64
	Gen uint64
}

// Ref returns the wire form.
func (c Cap) Ref() Ref { return Ref{ID: c.ID, Gen: c.Gen} }

// entry is the table-side record backing a Cap. All fields except gen and
// children are immutable after publication; gen is the revocation switch
// read lock-free on hot paths; children is guarded by the table mutex.
type entry struct {
	id     uint64
	holder int
	kind   Kind
	rights Rights
	scope  Scope
	parent uint64
	label  string
	gen    atomic.Uint64
	// children is guarded by Table.mu (cross-struct; the mutex lives on
	// the table so entries stay flat and cheap to publish).
	children []uint64
}

// Revoked describes one capability killed by a revocation, with enough
// context (kind, scope, holder) for the caller to propagate the withdrawal
// to protection structures.
type Revoked struct {
	Cap   Cap
	Scope Scope
}

// Info is a live capability with its table-side context, for inspection
// (enclavectl caps).
type Info struct {
	Cap    Cap
	Scope  Scope
	Parent uint64
	Label  string
}

// Table is one node's capability table. Mint/Delegate/Revoke serialize
// under mu; Verify/Alive/Covers are lock-free (atomic snapshot of the
// entry slice + one generation load) so the exit-handler hot paths pay a
// constant, allocation-free cost per check.
type Table struct {
	mu      sync.Mutex // serializes mutations (mint/delegate/revoke)
	entries atomic.Pointer[[]*entry]

	enforced atomic.Bool

	// Verifies counts every hot-path check; Denies counts checks that
	// failed (counted even when enforcement is off, so a twin run can
	// report would-be violations without changing outcomes).
	Verifies atomic.Uint64
	Denies   atomic.Uint64
}

// NewTable returns an empty, enforcing table.
func NewTable() *Table {
	t := &Table{}
	t.entries.Store(&[]*entry{})
	t.enforced.Store(true)
	return t
}

// SetEnforced toggles enforcement. When off, Verify/Alive/Covers report
// success regardless of the check result — but still count Denies — so a
// violation-free workload produces byte-identical output either way.
func (t *Table) SetEnforced(on bool) { t.enforced.Store(on) }

// Enforced reports whether checks are enforced.
func (t *Table) Enforced() bool { return t.enforced.Load() }

// snapshot returns the published entry slice (never nil).
func (t *Table) snapshot() []*entry {
	if p := t.entries.Load(); p != nil {
		return *p
	}
	return nil
}

// lookup returns the entry a Cap claims to be, or nil if the id is out of
// range. Lock-free.
func (t *Table) lookup(id uint64) *entry {
	es := t.snapshot()
	if id == 0 || id > uint64(len(es)) {
		return nil
	}
	return es[id-1]
}

// publish appends e under mu and republishes the slice. The old snapshot
// stays valid for concurrent readers: entry pointers are stable and the
// prefix is immutable.
func (t *Table) publish(e *entry) {
	es := t.snapshot()
	next := append(es[:len(es):len(es)], e)
	t.entries.Store(&next)
}

// capOf reconstructs the key for a live entry.
func capOf(e *entry) Cap {
	return Cap{ID: e.id, Gen: e.gen.Load(), Holder: e.holder, Kind: e.kind, Rights: e.rights}
}

// Mint issues a root capability. Roots are created by the host control
// plane at assembly time (framework root memory, master root IPI,
// controller root I/O); everything an enclave holds is delegated from one.
func (t *Table) Mint(holder int, kind Kind, rights Rights, scope Scope, label string) Cap {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := &entry{
		id:     uint64(len(t.snapshot()) + 1),
		holder: holder,
		kind:   kind,
		rights: rights,
		scope:  scope,
		label:  label,
	}
	e.gen.Store(1)
	t.publish(e)
	return capOf(e)
}

// Delegate mints a child of parent for holder. Delegation only narrows:
// the child's rights and scope must be subsets of the parent's, the parent
// must be live and authentic, and must itself carry RightDelegate.
// Revoking the parent later revokes the child.
func (t *Table) Delegate(parent Cap, holder int, rights Rights, scope Scope, label string) (Cap, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pe := t.lookup(parent.ID)
	if pe == nil || !authentic(pe, parent) {
		return Cap{}, fmt.Errorf("authority: delegate from dead or forged cap %d", parent.ID)
	}
	if pe.rights&RightDelegate == 0 {
		return Cap{}, fmt.Errorf("authority: cap %d lacks delegate right", parent.ID)
	}
	if pe.rights&rights != rights {
		return Cap{}, fmt.Errorf("authority: delegation widens rights of cap %d", parent.ID)
	}
	if !pe.scope.Contains(pe.kind, scope) {
		return Cap{}, fmt.Errorf("authority: delegation escapes scope of cap %d", parent.ID)
	}
	e := &entry{
		id:     uint64(len(t.snapshot()) + 1),
		holder: holder,
		kind:   pe.kind,
		rights: rights,
		scope:  scope,
		parent: parent.ID,
		label:  label,
	}
	e.gen.Store(1)
	t.publish(e)
	pe.children = append(pe.children, e.id)
	return capOf(e), nil
}

// authentic reports whether c matches e field-for-field at e's current
// generation — the unforgeability check.
func authentic(e *entry, c Cap) bool {
	return e.gen.Load() == c.Gen && e.holder == c.Holder &&
		e.kind == c.Kind && e.rights == c.Rights
}

// Revoke kills c and, recursively, every capability delegated from it,
// returning the killed set in deterministic (depth-first, mint) order. The
// caller propagates the withdrawals to protection structures — this table
// only manages keys.
func (t *Table) Revoke(c Cap) ([]Revoked, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.lookup(c.ID)
	if e == nil || !authentic(e, c) {
		return nil, fmt.Errorf("authority: revoke of dead or forged cap %d", c.ID)
	}
	return t.revokeLocked(e, nil), nil
}

// revokeLocked bumps e's generation and recurses over its children.
func (t *Table) revokeLocked(e *entry, out []Revoked) []Revoked {
	out = append(out, Revoked{Cap: capOf(e), Scope: e.scope})
	e.gen.Add(1)
	for _, id := range e.children {
		ce := t.lookup(id)
		if ce != nil && !dead(ce) {
			out = t.revokeLocked(ce, out)
		}
	}
	return out
}

// dead reports whether e has been revoked (generation moved past mint).
func dead(e *entry) bool { return e.gen.Load() != 1 }

// RevokeHolder kills every live capability held by holder (and, per the
// delegation tree, everything delegated from those keys — an enclave's
// death revokes what it shared). Deterministic ID order.
func (t *Table) RevokeHolder(holder int) []Revoked {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Revoked
	for _, e := range t.snapshot() {
		if e.holder == holder && !dead(e) {
			out = t.revokeLocked(e, out)
		}
	}
	return out
}

// Verify is the full authority check: c must be live and authentic, held
// by holder, of the stated kind, and carry every right in need. Lock-free,
// allocation-free, O(1). With enforcement off the result is always true
// (Denies still counts the would-be failure).
func (t *Table) Verify(c Cap, holder int, kind Kind, need Rights) bool {
	t.Verifies.Add(1)
	e := t.lookup(c.ID)
	ok := e != nil && authentic(e, c) && c.Holder == holder &&
		c.Kind == kind && c.Rights&need == need
	if !ok {
		t.Denies.Add(1)
		return !t.enforced.Load()
	}
	return true
}

// Covers extends Verify with scope containment: the capability's recorded
// scope must contain want.
func (t *Table) Covers(c Cap, holder int, kind Kind, need Rights, want Scope) bool {
	t.Verifies.Add(1)
	e := t.lookup(c.ID)
	ok := e != nil && authentic(e, c) && c.Holder == holder &&
		c.Kind == kind && c.Rights&need == need &&
		e.scope.Contains(e.kind, want)
	if !ok {
		t.Denies.Add(1)
		return !t.enforced.Load()
	}
	return true
}

// Alive is the minimal hot-path check — is this exact key still valid? One
// slice load plus one generation compare; the IPI filter and I/O table run
// it on every guarded exit.
func (t *Table) Alive(c Cap) bool {
	t.Verifies.Add(1)
	e := t.lookup(c.ID)
	if e == nil || !authentic(e, c) {
		t.Denies.Add(1)
		return !t.enforced.Load()
	}
	return true
}

// Resolve reconstructs the full key for a wire Ref, failing if the entry
// has been revoked since the Ref was cut.
func (t *Table) Resolve(r Ref) (Cap, bool) {
	e := t.lookup(r.ID)
	if e == nil || e.gen.Load() != r.Gen {
		return Cap{}, false
	}
	return Cap{ID: e.id, Gen: r.Gen, Holder: e.holder, Kind: e.kind, Rights: e.rights}, true
}

// Lookup returns the live capability with the given id, for control-plane
// inspection (enclavectl revoke <capid>).
func (t *Table) Lookup(id uint64) (Cap, bool) {
	e := t.lookup(id)
	if e == nil || dead(e) {
		return Cap{}, false
	}
	return capOf(e), true
}

// ScopeOf returns the recorded scope of a live, authentic capability.
func (t *Table) ScopeOf(c Cap) (Scope, bool) {
	e := t.lookup(c.ID)
	if e == nil || !authentic(e, c) {
		return Scope{}, false
	}
	return e.scope, true
}

// CapsOf lists the live capabilities held by holder in mint order.
func (t *Table) CapsOf(holder int) []Info {
	var out []Info
	for _, e := range t.snapshot() {
		if e.holder == holder && !dead(e) {
			out = append(out, Info{Cap: capOf(e), Scope: e.scope, Parent: e.parent, Label: e.label})
		}
	}
	return out
}

// Holders lists every holder id with at least one live capability, in
// ascending order.
func (t *Table) Holders() []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range t.snapshot() {
		if !dead(e) && !seen[e.holder] {
			seen[e.holder] = true
			out = append(out, e.holder)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
