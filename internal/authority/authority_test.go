package authority_test

import (
	"testing"

	"covirt/internal/authority"
)

func TestMintVerify(t *testing.T) {
	tb := authority.NewTable()
	c := tb.Mint(1, authority.KindMemory, authority.RightsAll, authority.MemScope(0x1000, 0x2000), "root")
	if c.ID == 0 || c.Gen != 1 {
		t.Fatalf("unexpected cap %+v", c)
	}
	if !tb.Verify(c, 1, authority.KindMemory, authority.RightWrite) {
		t.Fatal("verify of freshly minted cap failed")
	}
	if !tb.Covers(c, 1, authority.KindMemory, authority.RightMap, authority.MemScope(0x1800, 0x100)) {
		t.Fatal("covers rejected in-scope range")
	}
	if tb.Covers(c, 1, authority.KindMemory, authority.RightMap, authority.MemScope(0x2800, 0x1000)) {
		t.Fatal("covers accepted out-of-scope range")
	}
}

func TestForgedCapFails(t *testing.T) {
	tb := authority.NewTable()
	c := tb.Mint(2, authority.KindIPI, authority.RightSend, authority.IPIScope(3, 0xF0), "ipi")

	wrongHolder := c
	wrongHolder.Holder = 7
	if tb.Verify(wrongHolder, 7, authority.KindIPI, authority.RightSend) {
		t.Fatal("forged holder verified")
	}
	widened := c
	widened.Rights = authority.RightsAll
	if tb.Verify(widened, 2, authority.KindIPI, authority.RightDelegate) {
		t.Fatal("forged rights verified")
	}
	wrongKind := c
	wrongKind.Kind = authority.KindMemory
	if tb.Verify(wrongKind, 2, authority.KindMemory, authority.RightSend) {
		t.Fatal("forged kind verified")
	}
	bogus := authority.Cap{ID: 99, Gen: 1, Holder: 2, Kind: authority.KindIPI, Rights: authority.RightSend}
	if tb.Verify(bogus, 2, authority.KindIPI, authority.RightSend) {
		t.Fatal("out-of-range id verified")
	}
}

func TestDelegateNarrowsOnly(t *testing.T) {
	tb := authority.NewTable()
	root := tb.Mint(0, authority.KindMemory, authority.RightsAll, authority.WildScope(), "root")
	child, err := tb.Delegate(root, 1, authority.RightRead|authority.RightWrite|authority.RightDelegate,
		authority.MemScope(0x1000, 0x1000), "child")
	if err != nil {
		t.Fatalf("delegate: %v", err)
	}
	if !tb.Covers(child, 1, authority.KindMemory, authority.RightWrite, authority.MemScope(0x1000, 0x800)) {
		t.Fatal("child covers failed")
	}
	// Widening rights must fail.
	if _, err := tb.Delegate(child, 2, authority.RightsAll, authority.MemScope(0x1000, 0x100), "w"); err == nil {
		t.Fatal("rights widening accepted")
	}
	// Escaping scope must fail.
	if _, err := tb.Delegate(child, 2, authority.RightRead, authority.MemScope(0x3000, 0x100), "e"); err == nil {
		t.Fatal("scope escape accepted")
	}
	// Delegating from a cap without RightDelegate must fail.
	leaf, err := tb.Delegate(child, 2, authority.RightRead, authority.MemScope(0x1000, 0x100), "leaf")
	if err != nil {
		t.Fatalf("leaf delegate: %v", err)
	}
	if _, err := tb.Delegate(leaf, 3, authority.RightRead, authority.MemScope(0x1000, 0x10), "x"); err == nil {
		t.Fatal("delegation from non-delegable cap accepted")
	}
}

func TestRevokeRecursive(t *testing.T) {
	tb := authority.NewTable()
	root := tb.Mint(0, authority.KindXemem, authority.RightsAll, authority.XememScope(5), "seg")
	a, _ := tb.Delegate(root, 1, authority.RightAttach|authority.RightDelegate, authority.XememScope(5), "a")
	b, _ := tb.Delegate(a, 2, authority.RightAttach, authority.XememScope(5), "b")

	revoked, err := tb.Revoke(a)
	if err != nil {
		t.Fatalf("revoke: %v", err)
	}
	if len(revoked) != 2 || revoked[0].Cap.ID != a.ID || revoked[1].Cap.ID != b.ID {
		t.Fatalf("unexpected revocation set %+v", revoked)
	}
	if tb.Alive(a) || tb.Alive(b) {
		t.Fatal("revoked caps still alive")
	}
	if !tb.Alive(root) {
		t.Fatal("parent died with child revocation")
	}
	// Double revoke of a dead key is an error.
	if _, err := tb.Revoke(a); err == nil {
		t.Fatal("double revoke accepted")
	}
}

func TestRevokeHolder(t *testing.T) {
	tb := authority.NewTable()
	root := tb.Mint(0, authority.KindMemory, authority.RightsAll, authority.WildScope(), "root")
	c1, _ := tb.Delegate(root, 1, authority.RightsAll, authority.MemScope(0, 0x1000), "e1-mem")
	shared, _ := tb.Delegate(c1, 2, authority.RightRead, authority.MemScope(0, 0x100), "e1-to-e2")
	c2, _ := tb.Delegate(root, 2, authority.RightsAll, authority.MemScope(0x2000, 0x1000), "e2-mem")

	revoked := tb.RevokeHolder(1)
	// Holder 1's cap dies, and so does what it delegated onward to holder 2.
	if len(revoked) != 2 {
		t.Fatalf("expected 2 revocations, got %+v", revoked)
	}
	if tb.Alive(c1) || tb.Alive(shared) {
		t.Fatal("holder revocation incomplete")
	}
	if !tb.Alive(c2) || !tb.Alive(root) {
		t.Fatal("holder revocation overreached")
	}
}

func TestResolveAndLookup(t *testing.T) {
	tb := authority.NewTable()
	c := tb.Mint(3, authority.KindIO, authority.RightsAll, authority.IOScope(0x70, 0x71), "rtc")
	got, ok := tb.Resolve(c.Ref())
	if !ok || got != c {
		t.Fatalf("resolve mismatch: %+v vs %+v", got, c)
	}
	if _, ok := tb.Lookup(c.ID); !ok {
		t.Fatal("lookup of live cap failed")
	}
	if _, err := tb.Revoke(c); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Resolve(c.Ref()); ok {
		t.Fatal("resolve of revoked ref succeeded")
	}
	if _, ok := tb.Lookup(c.ID); ok {
		t.Fatal("lookup of revoked cap succeeded")
	}
}

func TestEnforcementToggle(t *testing.T) {
	tb := authority.NewTable()
	c := tb.Mint(1, authority.KindMemory, authority.RightRead, authority.MemScope(0, 0x1000), "m")
	if _, err := tb.Revoke(c); err != nil {
		t.Fatal(err)
	}
	tb.SetEnforced(false)
	if !tb.Verify(c, 1, authority.KindMemory, authority.RightRead) {
		t.Fatal("unenforced verify should pass")
	}
	if !tb.Alive(c) {
		t.Fatal("unenforced alive should pass")
	}
	denies := tb.Denies.Load()
	if denies == 0 {
		t.Fatal("denies not counted while unenforced")
	}
	tb.SetEnforced(true)
	if tb.Alive(c) {
		t.Fatal("enforced alive passed for revoked cap")
	}
}

func TestCapsOfAndHolders(t *testing.T) {
	tb := authority.NewTable()
	root := tb.Mint(0, authority.KindMemory, authority.RightsAll, authority.WildScope(), "root")
	tb.Delegate(root, 2, authority.RightRead, authority.MemScope(0, 0x100), "a")
	tb.Delegate(root, 1, authority.RightRead, authority.MemScope(0x100, 0x100), "b")
	infos := tb.CapsOf(2)
	if len(infos) != 1 || infos[0].Label != "a" || infos[0].Parent != root.ID {
		t.Fatalf("capsOf mismatch: %+v", infos)
	}
	h := tb.Holders()
	if len(h) != 3 || h[0] != 0 || h[1] != 1 || h[2] != 2 {
		t.Fatalf("holders mismatch: %v", h)
	}
}

func BenchmarkAlive(b *testing.B) {
	tb := authority.NewTable()
	c := tb.Mint(1, authority.KindIPI, authority.RightSend, authority.IPIScope(0, 0xF0), "hot")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !tb.Alive(c) {
			b.Fatal("dead")
		}
	}
}

func TestAliveZeroAlloc(t *testing.T) {
	tb := authority.NewTable()
	c := tb.Mint(1, authority.KindMemory, authority.RightsAll, authority.WildScope(), "hot")
	allocs := testing.AllocsPerRun(100, func() {
		tb.Alive(c)
		tb.Verify(c, 1, authority.KindMemory, authority.RightMap)
	})
	if allocs != 0 {
		t.Fatalf("hot-path verification allocates: %v allocs/op", allocs)
	}
}
