package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file computes per-function lock facts shared by the
// interprocedural analyzers: which lock classes a function acquires, and
// which are held at each program point.
//
// A lock class abstracts all instances of one mutex declaration:
//
//	<pkgpath>.<Type>.<field>   a struct field mutex (all instances)
//	<pkgpath>.<var>            a package-level mutex variable
//
// Locks the scanner cannot name (a mutex behind a local pointer, an
// anonymous struct) produce no class and are ignored — under-reporting,
// never false edges.
//
// Held sets follow the repository's lock-discipline invariant (every
// Lock pairs with a deferred Unlock in the same function): a class
// acquired at position p is held from p to the end of the enclosing
// function scope, unless a plain (non-deferred) Unlock releases it
// earlier. Function literals open a fresh scope: their bodies neither
// see nor extend the declaring function's held set, since a literal may
// run on another frame long after the declaration returned.

// acquireEv is one non-deferred Lock/RLock with the classes already held
// in its scope at that point.
type acquireEv struct {
	pos   token.Pos
	class string
	held  []string
}

// heldPoint is a held-set snapshot taken after a lock event took effect.
type heldPoint struct {
	pos  token.Pos
	held []string
}

// scopeEvents are the lock events of one scope (a declaration body or
// one function literal body), in source order.
type scopeEvents struct {
	body   *ast.BlockStmt
	points []heldPoint
}

// lockScan is the per-declaration lock fact set.
type lockScan struct {
	// acquires: every class acquired anywhere in the declaration,
	// including inside function literals.
	acquires map[string]token.Pos // class -> first acquire position
	// acquireEvs in source order.
	acquireEvs []acquireEv
	// callHeld: held classes (of the call's own scope) at each call
	// expression position.
	callHeld map[token.Pos][]string
	// scopes: per-scope held-set history, for arbitrary-position lookups.
	scopes []scopeEvents
}

// scanLocks walks one declaration body.
func scanLocks(u *Pkg, body *ast.BlockStmt) *lockScan {
	s := &lockScan{
		acquires: make(map[string]token.Pos),
		callHeld: make(map[token.Pos][]string),
	}
	s.walkScope(u, body)
	return s
}

// walkScope processes one scope (the declaration body or one function
// literal body) with a fresh held set, recursing into nested literals.
func (s *lockScan) walkScope(u *Pkg, body *ast.BlockStmt) {
	var held []string
	scope := scopeEvents{body: body}
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.walkScope(u, n.Body)
			return false
		case *ast.DeferStmt:
			deferred[n.Call] = true
			return true
		case *ast.CallExpr:
			s.callHeld[n.Pos()] = append([]string(nil), held...)
			recvExpr, method, typ, ok := syncCallExpr(u, n)
			if !ok || typ == "Cond" {
				return true
			}
			class, ok := lockClassForSyncCall(u, n, recvExpr)
			if !ok {
				return true
			}
			switch method {
			case "Lock", "RLock":
				if deferred[n] {
					return true
				}
				if _, seen := s.acquires[class]; !seen {
					s.acquires[class] = n.Pos()
				}
				s.acquireEvs = append(s.acquireEvs, acquireEv{
					pos: n.Pos(), class: class, held: append([]string(nil), held...),
				})
				held = appendMissing(held, class)
				scope.points = append(scope.points, heldPoint{n.Pos(), append([]string(nil), held...)})
			case "Unlock", "RUnlock":
				if !deferred[n] {
					held = removeClass(held, class)
					scope.points = append(scope.points, heldPoint{n.Pos(), append([]string(nil), held...)})
				}
			}
			return true
		}
		return true
	})
	s.scopes = append(s.scopes, scope)
}

func appendMissing(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func removeClass(s []string, v string) []string {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// heldAt returns the classes held at pos inside the given scope body (a
// declaration body or function-literal body): the held set after the
// last lock event of that scope at or before pos. Positions inside a
// nested literal must be looked up against the literal's own scope —
// literals neither see nor extend the enclosing held set.
func (s *lockScan) heldAt(scope *ast.BlockStmt, pos token.Pos) []string {
	for _, sc := range s.scopes {
		if sc.body != scope {
			continue
		}
		var held []string
		for _, p := range sc.points {
			if p.pos > pos {
				break
			}
			held = p.held
		}
		return held
	}
	return nil
}

// syncCallExpr is syncCall over a unit instead of a Pass: it inspects
// call and, when it is a method call on a sync.Mutex/RWMutex/Locker/Cond,
// returns the receiver selector expression, the method name, and the
// receiver type name.
func syncCallExpr(u *Pkg, call *ast.CallExpr) (recv *ast.SelectorExpr, method, typ string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	fn, isFn := u.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return nil, "", "", false
	}
	rt := sig.Recv().Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return nil, "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex", "Locker", "Cond":
		return sel, fn.Name(), named.Obj().Name(), true
	}
	return nil, "", "", false
}

// lockClassForSyncCall names the mutex behind one sync method call:
// either the X of the selector is the mutex expression (x.mu.Lock()), or
// the method is promoted from an embedded mutex (x.Lock()) and the
// selection's field path names it.
func lockClassForSyncCall(u *Pkg, call *ast.CallExpr, sel *ast.SelectorExpr) (string, bool) {
	if s, ok := u.Info.Selections[sel]; ok && s.Kind() == types.MethodVal && len(s.Index()) > 1 {
		// Promoted method: the embedded field hops name the mutex.
		idx := s.Index()
		return fieldClassByIndex(s.Recv(), idx[:len(idx)-1])
	}
	return lockClassOf(u, sel.X)
}

// lockClassOf canonicalizes a mutex-valued expression to its lock class.
func lockClassOf(u *Pkg, expr ast.Expr) (string, bool) {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if s, ok := u.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
			return fieldClassByIndex(s.Recv(), s.Index())
		}
		// Package-qualified variable: pkg.mu.
		if v, ok := u.Info.Uses[e.Sel].(*types.Var); ok && pkgLevelVar(v) {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	case *ast.Ident:
		if v, ok := u.Info.Uses[e].(*types.Var); ok && pkgLevelVar(v) {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return lockClassOf(u, e.X)
		}
	case *ast.StarExpr:
		return lockClassOf(u, e.X)
	}
	return "", false
}

// pkgLevelVar reports whether v is a package-scope variable.
func pkgLevelVar(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// fieldClassByIndex resolves a field path from a receiver type to the
// class of the final field: "<pkgpath>.<OwnerType>.<field>", where the
// owner is the named struct type directly declaring that field.
func fieldClassByIndex(recv types.Type, index []int) (string, bool) {
	t := recv
	var owner *types.TypeName
	for hop, i := range index {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			owner = named.Obj()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return "", false
		}
		f := st.Field(i)
		if hop == len(index)-1 {
			if owner == nil || owner.Pkg() == nil {
				return "", false
			}
			return owner.Pkg().Path() + "." + owner.Name() + "." + f.Name(), true
		}
		t = f.Type()
	}
	return "", false
}

// classDisplay shortens a lock/field class for finding messages.
func classDisplay(mod *Module, class string) string {
	return strings.TrimPrefix(class, mod.Path+"/")
}
