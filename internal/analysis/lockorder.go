package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// lockOrder detects potential deadlocks from inconsistent lock
// acquisition order, interprocedurally. For every function the scanner
// records which lock classes it acquires while which others are held
// (lockfacts.go); the call-graph fixpoint extends "acquires" through
// callees, so holding A and calling a function that (transitively) locks
// B establishes the ordering edge A -> B. Any cycle in the resulting
// module-global lock-ordering graph — including the self-loop of
// re-acquiring a held, non-reentrant mutex through a call chain — is
// reported once, with the witness call chains that establish each edge.
//
// Goroutine launches (`go f()`) do not extend the caller's held set:
// locks taken on another goroutine impose no ordering against the
// spawner's holdings.
var lockOrder = &Analyzer{
	Name:      checkLockOrder,
	Doc:       "the module-global lock-ordering graph (held-while-acquiring, through calls) must be acyclic",
	RunModule: runLockOrder,
}

// lockEdge is one ordering edge with its first (deterministic) witness.
type lockEdge struct {
	from, to string
	fn       *FuncNode // function establishing the edge
	pos      token.Pos // acquire or call position inside fn
	callee   string    // callee key for call-established edges, "" for local
}

func runLockOrder(m *Module) []Finding {
	g := m.CallGraph()
	allow := buildAllowIndex(m)
	barred := func(site *CallSite) bool {
		return site.Go || allow.barrier(m, site.Pos, checkLockOrder)
	}
	scans := make(map[string]*lockScan, len(g.Keys()))
	for _, k := range g.Keys() {
		n := g.Nodes[k]
		scans[k] = scanLocks(n.Unit, n.Decl.Body)
	}

	// Fixpoint: acq[f] = classes f may acquire, directly or through any
	// non-goroutine callee.
	acq := make(map[string]map[string]bool, len(g.Keys()))
	for k, s := range scans {
		set := make(map[string]bool, len(s.acquires))
		for c := range s.acquires {
			set[c] = true
		}
		acq[k] = set
	}
	g.Propagate(func(n *FuncNode) bool {
		mine := acq[n.Key]
		changed := false
		for _, site := range n.Sites {
			if barred(site) {
				continue
			}
			for _, callee := range site.Callees {
				for c := range acq[callee] {
					if !mine[c] {
						mine[c] = true
						changed = true
					}
				}
			}
		}
		return changed
	})

	// Edge construction, in deterministic node/event order; the first
	// witness for each (from, to) pair wins.
	edges := make(map[[2]string]*lockEdge)
	addEdge := func(from, to string, fn *FuncNode, pos token.Pos, callee string) {
		k := [2]string{from, to}
		if _, ok := edges[k]; !ok {
			edges[k] = &lockEdge{from: from, to: to, fn: fn, pos: pos, callee: callee}
		}
	}
	for _, k := range g.Keys() {
		n := g.Nodes[k]
		s := scans[k]
		for _, ev := range s.acquireEvs {
			for _, held := range ev.held {
				addEdge(held, ev.class, n, ev.pos, "")
			}
		}
		for _, site := range n.Sites {
			if barred(site) {
				continue
			}
			held := s.callHeld[site.Pos]
			if len(held) == 0 {
				continue
			}
			for _, callee := range site.Callees {
				var targets []string
				for c := range acq[callee] {
					targets = append(targets, c)
				}
				sort.Strings(targets)
				for _, b := range targets {
					for _, a := range held {
						addEdge(a, b, n, site.Pos, callee)
					}
				}
			}
		}
	}

	// Cycle detection over the class graph.
	adj := make(map[string][]string)
	var classes []string
	seenClass := make(map[string]bool)
	note := func(c string) {
		if !seenClass[c] {
			seenClass[c] = true
			classes = append(classes, c)
		}
	}
	for ek := range edges {
		note(ek[0])
		note(ek[1])
		adj[ek[0]] = append(adj[ek[0]], ek[1])
	}
	sort.Strings(classes)
	for c := range adj {
		sort.Strings(adj[c])
	}

	var out []Finding
	for _, scc := range stronglyConnected(classes, adj) {
		cycle := shortestCycle(scc, adj)
		if cycle == nil {
			continue
		}
		out = append(out, cycleFinding(m, g, scans, barred, edges, cycle))
	}
	return out
}

// stronglyConnected returns the strongly connected components of the
// class graph that can contain a cycle: components of size > 1, plus
// single nodes with a self-loop. Components are sorted by their smallest
// class, members sorted. (Iterative Kosaraju; the graphs are tiny.)
func stronglyConnected(classes []string, adj map[string][]string) [][]string {
	// First pass: finish order.
	visited := make(map[string]bool)
	var order []string
	var dfs1 func(c string)
	dfs1 = func(c string) {
		visited[c] = true
		for _, n := range adj[c] {
			if !visited[n] {
				dfs1(n)
			}
		}
		order = append(order, c)
	}
	for _, c := range classes {
		if !visited[c] {
			dfs1(c)
		}
	}
	// Reverse graph, second pass in reverse finish order.
	radj := make(map[string][]string)
	for c, ns := range adj {
		for _, n := range ns {
			radj[n] = append(radj[n], c)
		}
	}
	comp := make(map[string]int)
	for c := range visited {
		comp[c] = -1
	}
	var members [][]string
	var dfs2 func(c string, id int)
	dfs2 = func(c string, id int) {
		comp[c] = id
		members[id] = append(members[id], c)
		for _, n := range radj[c] {
			if comp[n] == -1 {
				dfs2(n, id)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		if comp[order[i]] == -1 {
			members = append(members, nil)
			dfs2(order[i], len(members)-1)
		}
	}
	var out [][]string
	for _, ms := range members {
		sort.Strings(ms)
		if len(ms) > 1 {
			out = append(out, ms)
			continue
		}
		for _, n := range adj[ms[0]] {
			if n == ms[0] {
				out = append(out, ms)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// shortestCycle finds a shortest cycle through the component's smallest
// class, restricted to component members: start -> ... -> start.
func shortestCycle(scc []string, adj map[string][]string) []string {
	start := scc[0]
	in := make(map[string]bool, len(scc))
	for _, c := range scc {
		in[c] = true
	}
	// BFS from start's successors back to start.
	parent := make(map[string]string)
	queue := []string{}
	for _, n := range adj[start] {
		if in[n] && n == start {
			return []string{start, start} // self-loop
		}
		if in[n] {
			if _, seen := parent[n]; !seen {
				parent[n] = start
				queue = append(queue, n)
			}
		}
	}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, n := range adj[c] {
			if n == start {
				path := []string{start}
				for x := c; x != start; x = parent[x] {
					path = append(path, x)
				}
				// path is reversed tail; flip to start..c and close.
				for i, j := 1, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return append(path, start)
			}
			if !in[n] {
				continue
			}
			if _, seen := parent[n]; !seen {
				parent[n] = c
				queue = append(queue, n)
			}
		}
	}
	return nil
}

// cycleFinding renders one lock-order cycle with per-edge witnesses.
func cycleFinding(m *Module, g *CallGraph, scans map[string]*lockScan, barred func(*CallSite) bool, edges map[[2]string]*lockEdge, cycle []string) Finding {
	var names []string
	for _, c := range cycle {
		names = append(names, classDisplay(m, c))
	}
	var witness []string
	var pos token.Pos
	for i := 0; i+1 < len(cycle); i++ {
		e := edges[[2]string{cycle[i], cycle[i+1]}]
		if e == nil {
			continue
		}
		if pos == token.NoPos {
			pos = e.pos
		}
		p := m.Fset.Position(e.pos)
		loc := fmt.Sprintf("%s:%d", relPath(m, p.Filename), p.Line)
		if e.callee == "" {
			witness = append(witness, fmt.Sprintf("%s holds %s and acquires %s at %s",
				e.fn.Display(m), classDisplay(m, e.from), classDisplay(m, e.to), loc))
		} else {
			chain := acquireChain(m, g, scans, barred, e.callee, e.to)
			witness = append(witness, fmt.Sprintf("%s holds %s and calls %s at %s, which acquires %s",
				e.fn.Display(m), classDisplay(m, e.from), strings.Join(chain, " -> "), loc, classDisplay(m, e.to)))
		}
	}
	return Finding{
		Check:   checkLockOrder,
		Pos:     m.Fset.Position(pos),
		Msg:     fmt.Sprintf("lock-order cycle %s: potential deadlock", strings.Join(names, " -> ")),
		Witness: witness,
	}
}

// acquireChain reconstructs a shortest deterministic call chain from
// start to a function that locally acquires class.
func acquireChain(m *Module, g *CallGraph, scans map[string]*lockScan, barred func(*CallSite) bool, start, class string) []string {
	type qe struct {
		key  string
		path []string
	}
	seen := map[string]bool{start: true}
	queue := []qe{{start, []string{g.Nodes[start].Display(m)}}}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if s := scans[e.key]; s != nil {
			if _, ok := s.acquires[class]; ok {
				return e.path
			}
		}
		n := g.Nodes[e.key]
		var nexts []string
		for _, site := range n.Sites {
			if barred(site) {
				continue
			}
			nexts = append(nexts, site.Callees...)
		}
		sort.Strings(nexts)
		for _, nx := range nexts {
			if seen[nx] || g.Nodes[nx] == nil {
				continue
			}
			seen[nx] = true
			queue = append(queue, qe{nx, append(append([]string(nil), e.path...), g.Nodes[nx].Display(m))})
		}
	}
	return []string{g.Nodes[start].Display(m)}
}

// relPath renders a filename module-relative for witness text.
func relPath(m *Module, filename string) string {
	if rel, ok := strings.CutPrefix(filename, m.Root+"/"); ok {
		return rel
	}
	return filename
}
