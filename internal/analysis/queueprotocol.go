package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// queueProtocol keeps cmdqueue.go the single owner of the
// controller↔hypervisor command-queue shared-memory layout, and holds the
// owner itself to the publish discipline the batched protocol depends on:
//
//  1. within the covirt package, the unexported fields of cmdQueue
//     (mem, base, mu, cond, seq, scratch) may only be touched from
//     cmdqueue.go — other files must go through its methods;
//  2. no code outside cmdqueue.go may issue raw physical-memory accesses
//     whose address expression is derived from the queue-area layout
//     constants (OffCovirtCmdQ, CmdQueueStride, the cmdq* sizes and
//     header offsets);
//  3. inside cmdqueue.go, no function may write a slot record after
//     publishing the head: the head store is the release that makes a
//     chunk visible to the drainer, so it must be the final write of the
//     chunk (head-publish-after-slot-write ordering);
//  4. inside cmdqueue.go, every store to the applied-epoch header word
//     must sit under a monotonic (>) guard — an unguarded publish could
//     move the counter backwards on a stale marker and release epoch
//     waiters before their invalidations ran.
var queueProtocol = &Analyzer{
	Name: checkQueue,
	Doc:  "command-queue shared memory is accessed only through cmdqueue.go",
	Run:  runQueueProtocol,
}

// queueOwnerFile is the sole file allowed to touch the queue layout.
const queueOwnerFile = "cmdqueue.go"

// queueLayoutIdents are identifiers that mark an address expression as
// queue-layout arithmetic.
var queueLayoutIdents = []string{
	"OffCovirtCmdQ", "CmdQueueStride", "cmdqHdrSize",
	"cmdqDefaultSlots", "cmdqMaxSlots", "cmdqSlotSize",
	"cmdqOffHead", "cmdqOffTail", "cmdqOffCompleted", "cmdqOffEpoch",
}

// memAccessors are the raw physical-memory accessor method names.
var memAccessors = map[string]bool{
	"Read": true, "Write": true,
	"Read32": true, "Write32": true,
	"Read64": true, "Write64": true,
}

func runQueueProtocol(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Unit.Files {
		if fileBase(p.Mod, file) == queueOwnerFile {
			queueOwnerChecks(p, file, &out)
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				// Rule 1: field access on a cmdQueue value.
				s := p.Unit.Info.Selections[n]
				if s != nil && s.Kind() == types.FieldVal && recvIsCmdQueue(s.Recv()) {
					p.report(&out, checkQueue, n,
						"direct access to cmdQueue.%s outside %s; the queue protocol is owned by %s",
						n.Sel.Name, queueOwnerFile, queueOwnerFile)
				}
			case *ast.CallExpr:
				// Rule 2: raw memory access at a queue-layout address.
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok || !memAccessors[sel.Sel.Name] || len(n.Args) == 0 {
					return true
				}
				fn, ok := p.Unit.Info.Uses[sel.Sel].(*types.Func)
				if !ok {
					return true
				}
				if !memAccessorOnPhysMem(fn) {
					return true
				}
				addr := types.ExprString(n.Args[0])
				for _, id := range queueLayoutIdents {
					if strings.Contains(addr, id) {
						p.report(&out, checkQueue, n,
							"raw %s at queue-layout address (%s) outside %s; use the cmdQueue API",
							sel.Sel.Name, addr, queueOwnerFile)
						break
					}
				}
			}
			return true
		})
	}
	return out
}

// queueOwnerChecks enforces rules 3 and 4 on the owner file itself. Both
// are per-function source-order properties of the raw header/slot stores:
// a head publish must be the chunk's final write (rule 3), and an
// applied-epoch store must sit inside an if whose condition carries a
// strict > comparison (rule 4).
func queueOwnerChecks(p *Pass, file *ast.File, out *[]Finding) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		var headPublish token.Pos // first head store seen, in source order
		var guards []*ast.IfStmt  // if statements whose condition compares with >
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if ifs, isIf := n.(*ast.IfStmt); isIf && condHasGreater(ifs.Cond) {
				guards = append(guards, ifs)
			}
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			addr, kind := queueStoreKind(p, call)
			switch kind {
			case "head":
				if !headPublish.IsValid() {
					headPublish = call.Pos()
				}
			case "slot":
				if headPublish.IsValid() && call.Pos() > headPublish {
					p.report(out, checkQueue, call,
						"slot record written after the head publish (%s); the head store releases the chunk and must be the final write",
						addr)
				}
			case "epoch":
				guarded := false
				for _, g := range guards {
					if g.Body.Pos() <= call.Pos() && call.End() <= g.Body.End() {
						guarded = true
						break
					}
				}
				if !guarded {
					p.report(out, checkQueue, call,
						"applied-epoch store (%s) outside a monotonic guard; publish only under an `if epoch > applied` check",
						addr)
				}
			}
			return true
		})
	}
}

// queueStoreKind classifies a call as a raw store to the head word, a slot
// record, or the applied-epoch word of the queue layout, returning the
// address expression and the kind ("" when the call is none of these).
func queueStoreKind(p *Pass, call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Write") || !memAccessors[sel.Sel.Name] || len(call.Args) == 0 {
		return "", ""
	}
	fn, ok := p.Unit.Info.Uses[sel.Sel].(*types.Func)
	if !ok || !memAccessorOnPhysMem(fn) {
		return "", ""
	}
	addr := types.ExprString(call.Args[0])
	switch {
	case strings.Contains(addr, "cmdqOffHead"):
		return addr, "head"
	case strings.Contains(addr, "cmdqSlotSize"):
		return addr, "slot"
	case strings.Contains(addr, "cmdqOffEpoch"):
		return addr, "epoch"
	}
	return "", ""
}

// condHasGreater reports whether a strict > comparison appears anywhere in
// the condition expression.
func condHasGreater(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.GTR {
			found = true
		}
		return !found
	})
	return found
}

// recvIsCmdQueue reports whether t is the covirt cmdQueue type (possibly
// behind a pointer).
func recvIsCmdQueue(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "cmdQueue" && strings.HasSuffix(named.Obj().Pkg().Path(), "internal/covirt")
}

// memAccessorOnPhysMem reports whether fn is a method of hw.PhysMem or of
// a MemIO-style interface declared in an internal package (pisces.MemIO) —
// i.e. a raw physical-memory accessor rather than some unrelated
// Read/Write method.
func memAccessorOnPhysMem(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if strings.HasSuffix(path, "internal/hw") {
		return true
	}
	rt := sig.Recv().Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	if named, isNamed := rt.(*types.Named); isNamed {
		name := named.Obj().Name()
		return strings.Contains(name, "MemIO") || strings.Contains(name, "PhysMem")
	}
	return false
}
