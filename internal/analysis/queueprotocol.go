package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// queueProtocol keeps cmdqueue.go the single owner of the
// controller↔hypervisor command-queue shared-memory layout:
//
//  1. within the covirt package, the unexported fields of cmdQueue
//     (mem, base, mu, cond, seq) may only be touched from cmdqueue.go —
//     other files must go through its methods;
//  2. no code outside cmdqueue.go may issue raw physical-memory accesses
//     whose address expression is derived from the queue-area layout
//     constants (OffCovirtCmdQ, CmdQueueStride, cmdqHdrSize, cmdqSlots,
//     cmdqSlotSize).
var queueProtocol = &Analyzer{
	Name: checkQueue,
	Doc:  "command-queue shared memory is accessed only through cmdqueue.go",
	Run:  runQueueProtocol,
}

// queueOwnerFile is the sole file allowed to touch the queue layout.
const queueOwnerFile = "cmdqueue.go"

// queueLayoutIdents are identifiers that mark an address expression as
// queue-layout arithmetic.
var queueLayoutIdents = []string{
	"OffCovirtCmdQ", "CmdQueueStride", "cmdqHdrSize", "cmdqSlots", "cmdqSlotSize",
}

// memAccessors are the raw physical-memory accessor method names.
var memAccessors = map[string]bool{
	"Read": true, "Write": true,
	"Read32": true, "Write32": true,
	"Read64": true, "Write64": true,
}

func runQueueProtocol(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Unit.Files {
		if fileBase(p.Mod, file) == queueOwnerFile {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				// Rule 1: field access on a cmdQueue value.
				s := p.Unit.Info.Selections[n]
				if s != nil && s.Kind() == types.FieldVal && recvIsCmdQueue(s.Recv()) {
					p.report(&out, checkQueue, n,
						"direct access to cmdQueue.%s outside %s; the queue protocol is owned by %s",
						n.Sel.Name, queueOwnerFile, queueOwnerFile)
				}
			case *ast.CallExpr:
				// Rule 2: raw memory access at a queue-layout address.
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok || !memAccessors[sel.Sel.Name] || len(n.Args) == 0 {
					return true
				}
				fn, ok := p.Unit.Info.Uses[sel.Sel].(*types.Func)
				if !ok {
					return true
				}
				if !memAccessorOnPhysMem(fn) {
					return true
				}
				addr := types.ExprString(n.Args[0])
				for _, id := range queueLayoutIdents {
					if strings.Contains(addr, id) {
						p.report(&out, checkQueue, n,
							"raw %s at queue-layout address (%s) outside %s; use the cmdQueue API",
							sel.Sel.Name, addr, queueOwnerFile)
						break
					}
				}
			}
			return true
		})
	}
	return out
}

// recvIsCmdQueue reports whether t is the covirt cmdQueue type (possibly
// behind a pointer).
func recvIsCmdQueue(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "cmdQueue" && strings.HasSuffix(named.Obj().Pkg().Path(), "internal/covirt")
}

// memAccessorOnPhysMem reports whether fn is a method of hw.PhysMem or of
// a MemIO-style interface declared in an internal package (pisces.MemIO) —
// i.e. a raw physical-memory accessor rather than some unrelated
// Read/Write method.
func memAccessorOnPhysMem(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if strings.HasSuffix(path, "internal/hw") {
		return true
	}
	rt := sig.Recv().Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	if named, isNamed := rt.(*types.Named); isNamed {
		name := named.Obj().Name()
		return strings.Contains(name, "MemIO") || strings.Contains(name, "PhysMem")
	}
	return false
}
