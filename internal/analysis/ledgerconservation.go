package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ledgerConservation enforces the resource-conservation invariant on the
// Pisces ledger: every extent or core set carved out by Ledger.AllocMemory
// / Ledger.AllocCores transfers exclusive ownership to the caller, so the
// allocated value must be bound to a name — handed to an enclave, stored,
// or explicitly freed back. A call whose allocation is dropped (expression
// statement, blank-assigned first result, or fired under go/defer) charges
// the ledger without anyone holding the resource: memory or cores leak
// from the accounting silently and later boots fail with spurious
// exhaustion.
//
// The same conservation law applies to the fleet fabric's cost model:
// cluster.Fabric.Latency/Transfer price cross-node work in cycles, and a
// priced charge that nobody binds is work the fleet performed for free —
// MTTR tables and attach surcharges silently undercount. Fabric pricing
// calls are therefore held to the identical must-bind rule.
var ledgerConservation = &Analyzer{
	Name: checkLedger,
	Doc:  "every Ledger.AllocMemory/AllocCores result and Fabric.Latency/Transfer charge must be bound, not discarded",
	Run:  runLedgerConservation,
}

// ledgerAllocCall reports whether call resolves to an allocating method of
// the pisces Ledger, returning the callee for diagnostics.
func ledgerAllocCall(p *Pass, call *ast.CallExpr) (*types.Func, bool) {
	fn, ok := methodCallee(p, call)
	if !ok {
		return nil, false
	}
	if fn.Name() != "AllocMemory" && fn.Name() != "AllocCores" {
		return nil, false
	}
	return fn, recvIsNamed(fn, "Ledger", "internal/pisces")
}

// fabricCostCall reports whether call resolves to a pricing method of the
// cluster Fabric, whose returned cycles must reach an accounting sink.
func fabricCostCall(p *Pass, call *ast.CallExpr) (*types.Func, bool) {
	fn, ok := methodCallee(p, call)
	if !ok {
		return nil, false
	}
	if fn.Name() != "Latency" && fn.Name() != "Transfer" {
		return nil, false
	}
	return fn, recvIsNamed(fn, "Fabric", "internal/cluster")
}

// methodCallee resolves call to a method (a *types.Func with a receiver).
func methodCallee(p *Pass, call *ast.CallExpr) (*types.Func, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, ok := p.Unit.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	return fn, true
}

// recvIsNamed reports whether fn's receiver (possibly behind a pointer) is
// the named type name declared in a package whose path ends in pkgSuffix.
func recvIsNamed(fn *types.Func, name, pkgSuffix string) bool {
	t := fn.Type().(*types.Signature).Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == name && strings.HasSuffix(named.Obj().Pkg().Path(), pkgSuffix)
}

func runLedgerConservation(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Unit.Files {
		if isTestFile(p.Mod, file) {
			continue // tests probe exhaustion paths on throwaway ledgers
		}
		walkStack(file, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			kind := ""
			fn, ok := ledgerAllocCall(p, call)
			if ok {
				kind = "allocation"
			} else if fn, ok = fabricCostCall(p, call); ok {
				kind = "fabric charge"
			} else {
				return
			}
			parent := ast.Node(nil)
			if len(stack) >= 2 {
				parent = stack[len(stack)-2]
			}
			switch st := parent.(type) {
			case *ast.ExprStmt:
				p.report(&out, checkLedger, call, "%s from %s discarded: the cost is priced but nothing holds it", kind, fn.Name())
			case *ast.GoStmt, *ast.DeferStmt:
				p.report(&out, checkLedger, call, "%s from %s unobservable under go/defer", kind, fn.Name())
			case *ast.AssignStmt:
				if blankDiscardsAlloc(st, call) {
					p.report(&out, checkLedger, call, "%s from %s blank-assigned: charge it to an owner or don't price it", kind, fn.Name())
				}
			}
		})
	}
	return out
}

// blankDiscardsAlloc reports whether assign drops call's first (resource)
// result into the blank identifier: `_, err := l.AllocMemory(...)` leaks
// the extent even though the error is checked.
func blankDiscardsAlloc(assign *ast.AssignStmt, call *ast.CallExpr) bool {
	if len(assign.Rhs) == 1 && assign.Rhs[0] == ast.Expr(call) {
		return len(assign.Lhs) >= 1 && isBlank(assign.Lhs[0])
	}
	return false
}
