package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ledgerConservation enforces the resource-conservation invariant on the
// Pisces ledger: every extent or core set carved out by Ledger.AllocMemory
// / Ledger.AllocCores transfers exclusive ownership to the caller, so the
// allocated value must be bound to a name — handed to an enclave, stored,
// or explicitly freed back. A call whose allocation is dropped (expression
// statement, blank-assigned first result, or fired under go/defer) charges
// the ledger without anyone holding the resource: memory or cores leak
// from the accounting silently and later boots fail with spurious
// exhaustion.
var ledgerConservation = &Analyzer{
	Name: checkLedger,
	Doc:  "every Ledger.AllocMemory/AllocCores result must be bound, not discarded",
	Run:  runLedgerConservation,
}

// ledgerAllocCall reports whether call resolves to an allocating method of
// the pisces Ledger, returning the callee for diagnostics.
func ledgerAllocCall(p *Pass, call *ast.CallExpr) (*types.Func, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, ok := p.Unit.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, false
	}
	if fn.Name() != "AllocMemory" && fn.Name() != "AllocCores" {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	return fn, recvIsLedger(sig.Recv().Type())
}

// recvIsLedger reports whether t is pisces.Ledger (possibly behind a
// pointer).
func recvIsLedger(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Ledger" && strings.HasSuffix(named.Obj().Pkg().Path(), "internal/pisces")
}

func runLedgerConservation(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Unit.Files {
		if isTestFile(p.Mod, file) {
			continue // tests probe exhaustion paths on throwaway ledgers
		}
		walkStack(file, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			fn, ok := ledgerAllocCall(p, call)
			if !ok {
				return
			}
			parent := ast.Node(nil)
			if len(stack) >= 2 {
				parent = stack[len(stack)-2]
			}
			switch st := parent.(type) {
			case *ast.ExprStmt:
				p.report(&out, checkLedger, call, "allocation from %s discarded: the ledger is charged but nothing owns the resource", fn.Name())
			case *ast.GoStmt, *ast.DeferStmt:
				p.report(&out, checkLedger, call, "allocation from %s unobservable under go/defer", fn.Name())
			case *ast.AssignStmt:
				if blankDiscardsAlloc(st, call) {
					p.report(&out, checkLedger, call, "allocation from %s blank-assigned: charge it to an owner or don't allocate", fn.Name())
				}
			}
		})
	}
	return out
}

// blankDiscardsAlloc reports whether assign drops call's first (resource)
// result into the blank identifier: `_, err := l.AllocMemory(...)` leaks
// the extent even though the error is checked.
func blankDiscardsAlloc(assign *ast.AssignStmt, call *ast.CallExpr) bool {
	if len(assign.Rhs) == 1 && assign.Rhs[0] == ast.Expr(call) {
		return len(assign.Lhs) >= 1 && isBlank(assign.Lhs[0])
	}
	return false
}
