package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
)

// TestAnalyzersOnFixtures runs each analyzer against its fixture module
// under testdata/ and compares the full finding set (as module-relative
// file:line keys) against expectations. The fixtures also exercise the
// //covirt:allow directive (see physmem/use/use.go) and the seeded-source
// exemption (determinism/internal/hw/clock.go).
func TestAnalyzersOnFixtures(t *testing.T) {
	cases := []struct {
		fixture string
		checks  []string
		want    []string
	}{
		{
			fixture: "physmem",
			checks:  []string{checkPhysmem},
			want: []string{
				"use/use.go:7",  // result ignored entirely
				"use/use.go:9",  // discarded via _
				"use/use.go:11", // unobservable under go
				// use/use.go:14 is suppressed by //covirt:allow
			},
		},
		{
			fixture: "lock",
			checks:  []string{checkLock},
			want: []string{
				"locks/locks.go:15", // Lock without defer Unlock
				"locks/locks.go:21", // RLock without defer RUnlock
				"locks/locks.go:37", // Cond.Wait outside for loop
			},
		},
		{
			fixture: "determinism",
			checks:  []string{checkDeterminism},
			want: []string{
				"internal/hw/clock.go:9",  // time.Now
				"internal/hw/clock.go:11", // time.Since
				"internal/hw/clock.go:13", // global rand.Intn
				// the seeded rand.New(rand.NewSource(...)) use is exempt,
				// and harness/ is not a sim package
			},
		},
		{
			fixture: "cost",
			checks:  []string{checkCost},
			want: []string{
				"internal/hw/costs.go:7", // Costs.Dead never charged
			},
		},
		{
			fixture: "ledger",
			checks:  []string{checkLedger},
			want: []string{
				"use/use.go:10", // allocation discarded entirely
				"use/use.go:12", // extent blank-assigned
				"use/use.go:17", // unobservable under go
				// use/use.go:20 is suppressed by //covirt:allow
			},
		},
		{
			fixture: "fabric",
			checks:  []string{checkLedger, checkDeterminism},
			want: []string{
				"internal/cluster/fabric.go:14", // time.Now in a sim package
				"use/use.go:7",                  // fabric charge discarded entirely
				"use/use.go:9",                  // charge blank-assigned
				"use/use.go:11",                 // unobservable under go
				// use/use.go:15 is suppressed by //covirt:allow
			},
		},
		{
			fixture: "tracecov",
			checks:  []string{checkTrace},
			want: []string{
				"internal/hobbes/hobbes.go:7", // EventKind has no Record emission site
				"internal/vmx/exit.go:13",     // ExitDead never used outside String
			},
		},
		{
			fixture: "queue",
			checks:  []string{checkQueue},
			want: []string{
				"internal/covirt/other.go:6",     // cmdQueue field access
				"internal/covirt/other.go:7",     // raw read at layout address
				"internal/covirt/cmdqueue.go:46", // slot written after head publish
				"internal/covirt/cmdqueue.go:64", // epoch published without monotonic guard
				// pushGood orders slot-then-head; publishGood guards with >
			},
		},
		{
			fixture: "hotalloc",
			checks:  []string{checkHotalloc},
			want: []string{
				"internal/workloads/hot.go:11", // make in loop
				"internal/workloads/hot.go:12", // append in loop
				"internal/workloads/hot.go:13", // map literal in loop
				"internal/workloads/hot.go:19", // make in loop inside closure
				// line 26 is suppressed by //covirt:allow; cold is
				// unmarked; sized allocates before its loop
			},
		},
		{
			fixture: "lockorder",
			checks:  []string{checkLockOrder},
			want: []string{
				"locks/locks.go:18",  // AB: a->b via call, b->a local
				"locks/locks.go:41",  // Re: self-deadlock through helper
				"locks/locks.go:143", // Iface: x->y through interface widening
				// Clean orders consistently; Spawn's goroutine launch makes
				// no edge; Vetted's call edge carries //covirt:allow
			},
		},
		{
			fixture: "atomicdiscipline",
			checks:  []string{checkAtomic},
			want: []string{
				"fields/fields.go:22",  // bare read of atomic field
				"fields/fields.go:40",  // write outside declared guard
				"fields/fields.go:73",  // bare write to inferred-guarded field
				"fields/fields.go:102", // //covirt:guards names unknown field
				// Guarded.helper is proven locked on entry; NewInferred is a
				// constructor; MakeMsg writes a local copy; RacyVetted is
				// suppressed by //covirt:allow all
			},
		},
		{
			fixture: "transhot",
			checks:  []string{checkTransHot},
			want: []string{
				"internal/workloads/hot.go:23", // time.Now behind interface dispatch
				"internal/workloads/hot.go:44", // append one hop from the loop
				"internal/workloads/hot.go:50", // map literal two hops down
				// setup is called before the loop; vetted's make carries a
				// suppression; flush is behind a //covirt:allow barrier
			},
		},
		{
			fixture: "capdiscipline",
			checks:  []string{checkCapDiscipline},
			want: []string{
				"internal/covirt/ctrl.go:17", // bare mutation, no capability
				"internal/covirt/ctrl.go:35", // bare chain Outer -> inner
				// MapChecked names a Cap param; MapAmbient is annotated;
				// MapVetted carries //covirt:allow; mech's only caller
				// names a capability
			},
		},
		{
			fixture: "geninvalidation",
			checks:  []string{checkGenInval},
			want: []string{
				"internal/hw/cache.go:22", // cache read, no gen consulted
				// validatedRead mentions gens, fill only writes, drop
				// invalidates, vetted carries //covirt:allow, and the
				// harness package is not a sim package
			},
		},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			root := filepath.Join("testdata", c.fixture)
			findings, mod, err := Run(root, c.checks)
			if err != nil {
				t.Fatal(err)
			}
			if len(mod.TypeErrors) > 0 {
				t.Fatalf("fixture has type errors: %v", mod.TypeErrors)
			}
			var got []string
			for _, f := range findings {
				rel, err := filepath.Rel(mod.Root, f.Pos.Filename)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, fmt.Sprintf("%s:%d", filepath.ToSlash(rel), f.Pos.Line))
			}
			sort.Strings(got)
			want := append([]string(nil), c.want...)
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("findings = %v, want %v", got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("finding %d = %s, want %s", i, got[i], want[i])
				}
			}
		})
	}
}

// TestBuildConstraintExclusion pins the loader's default-build file
// selection: custom tags (race, integration) exclude a file, their
// negations and platform/release tags keep it. Without this, a
// //go:build race + !race twin pair type-checks as a redeclaration.
func TestBuildConstraintExclusion(t *testing.T) {
	cases := []struct {
		src      string
		excluded bool
	}{
		{"//go:build race\n\npackage p\n", true},
		{"//go:build !race\n\npackage p\n", false},
		{"//go:build integration && linux\n\npackage p\n", true},
		{"//go:build " + runtime.GOOS + "\n\npackage p\n", false},
		{"//go:build " + runtime.GOARCH + " && go1.18\n\npackage p\n", false},
		{"//go:build !" + runtime.GOOS + "\n\npackage p\n", true},
		{"package p\n\n//go:build race\n", false}, // after package clause: not a constraint
		{"package p\n", false},
	}
	fset := token.NewFileSet()
	for _, c := range cases {
		f, err := parser.ParseFile(fset, "x.go", c.src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		if got := buildExcluded(f); got != c.excluded {
			t.Errorf("buildExcluded(%q) = %v, want %v", c.src, got, c.excluded)
		}
	}
}

// TestUnknownCheckRejected ensures a bad -checks selection is an error,
// not a silent no-op — including when mixed with valid names.
func TestUnknownCheckRejected(t *testing.T) {
	if _, _, err := Run(filepath.Join("testdata", "lock"), []string{"no-such-check"}); err == nil {
		t.Fatal("unknown check accepted")
	}
	if _, _, err := Run(filepath.Join("testdata", "lock"), []string{checkLock, "no-such-check"}); err == nil {
		t.Fatal("unknown check accepted when mixed with a valid one")
	}
	if _, err := byName([]string{"lock-discipline,determinism"}); err == nil {
		t.Fatal("comma-joined names accepted as one check name")
	}
}

// TestLockOrderWitness pins the shape of interprocedural witness chains:
// each cycle edge renders as one holds-and-calls (or holds-and-acquires)
// step naming the functions, classes and module-relative positions.
func TestLockOrderWitness(t *testing.T) {
	findings, _, err := Run(filepath.Join("testdata", "lockorder"), []string{checkLockOrder})
	if err != nil {
		t.Fatal(err)
	}
	byMsg := make(map[string]Finding)
	for _, f := range findings {
		byMsg[f.Msg] = f
	}
	ab, ok := byMsg["lock-order cycle locks.AB.a -> locks.AB.b -> locks.AB.a: potential deadlock"]
	if !ok {
		t.Fatalf("AB cycle not reported; findings: %v", findings)
	}
	wantWitness := []string{
		"(*locks.AB).First holds locks.AB.a and calls (*locks.AB).lockB at locks/locks.go:18, which acquires locks.AB.b",
		"(*locks.AB).Second holds locks.AB.b and acquires locks.AB.a at locks/locks.go:29",
	}
	if len(ab.Witness) != len(wantWitness) {
		t.Fatalf("witness = %v, want %v", ab.Witness, wantWitness)
	}
	for i := range wantWitness {
		if ab.Witness[i] != wantWitness[i] {
			t.Errorf("witness[%d] = %q, want %q", i, ab.Witness[i], wantWitness[i])
		}
	}
	if len(byMsg["lock-order cycle locks.Re.m -> locks.Re.m: potential deadlock"].Witness) != 1 {
		t.Errorf("self-loop should carry exactly one witness step")
	}
}

// TestAllowDirectiveParsing covers the directive grammar.
func TestAllowDirectiveParsing(t *testing.T) {
	cases := []struct {
		text   string
		checks []string
		ok     bool
	}{
		{"//covirt:allow lock-discipline reason here", []string{"lock-discipline"}, true},
		{"// covirt:allow lock-discipline spaced form", []string{"lock-discipline"}, true},
		{"//covirt:allow a,b multi", []string{"a", "b"}, true},
		{"//covirt:allow all everything", []string{"all"}, true},
		{"//covirt:allow a,b: trailing colon on the list", []string{"a", "b"}, true},
		{"//covirt:allow lock-order,transitive-hot: colon form", []string{"lock-order", "transitive-hot"}, true},
		{"//covirt:allow a,,b empty element dropped", []string{"a", "b"}, true},
		{"//covirt:allow", nil, false},
		{"//covirt:allowed not the directive", nil, false},
		{"// plain comment", nil, false},
	}
	for _, c := range cases {
		got, ok := parseAllow(c.text)
		if ok != c.ok {
			t.Errorf("parseAllow(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(got) != len(c.checks) {
			t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.checks)
			continue
		}
		for i := range got {
			if got[i] != c.checks[i] {
				t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.checks)
			}
		}
	}
}

// TestRepoSelfClean is the suite's own CI gate: the repository must stay
// free of findings (fix the code or annotate with //covirt:allow).
func TestRepoSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	findings, mod, err := Run(filepath.Join("..", ".."), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, te := range mod.TypeErrors {
		t.Errorf("type error: %v", te)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
