package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// physmemErrcheck reports calls to error-returning internal/hw accessors
// (PhysMem.Read64/Write64 and friends) whose error result is discarded —
// assigned to the blank identifier, dropped in an expression statement, or
// made unobservable by go/defer. A swallowed bus error means the simulated
// machine silently diverges from the modelled hardware.
var physmemErrcheck = &Analyzer{
	Name: checkPhysmem,
	Doc:  "errors from internal/hw memory/MSR/IO accessors must be handled",
	Run:  runPhysmemErrcheck,
}

// hwErrorCall reports whether call resolves to a function or method of an
// internal/hw package whose final result is an error, returning the callee
// for diagnostics.
func hwErrorCall(p *Pass, call *ast.CallExpr) (*types.Func, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil, false
	}
	fn, ok := p.Unit.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, false
	}
	path := fn.Pkg().Path()
	if !strings.HasSuffix(path, "internal/hw") {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil, false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return fn, last.String() == "error"
}

func runPhysmemErrcheck(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Unit.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			fn, ok := hwErrorCall(p, call)
			if !ok {
				return
			}
			parent := ast.Node(nil)
			if len(stack) >= 2 {
				parent = stack[len(stack)-2]
			}
			switch st := parent.(type) {
			case *ast.ExprStmt:
				p.report(&out, checkPhysmem, call, "result of %s.%s ignored: a dropped hw error silently corrupts the simulation", fn.Pkg().Name(), fn.Name())
			case *ast.GoStmt, *ast.DeferStmt:
				p.report(&out, checkPhysmem, call, "error from %s.%s unobservable under go/defer", fn.Pkg().Name(), fn.Name())
			case *ast.AssignStmt:
				if blankDiscardsError(p, st, call) {
					p.report(&out, checkPhysmem, call, "error from %s.%s discarded via _", fn.Pkg().Name(), fn.Name())
				}
			}
		})
	}
	return out
}

// blankDiscardsError reports whether assign drops call's error result into
// the blank identifier.
func blankDiscardsError(p *Pass, assign *ast.AssignStmt, call *ast.CallExpr) bool {
	sig, ok := p.Unit.Info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return false
	}
	nres := sig.Results().Len()
	if len(assign.Rhs) == 1 && assign.Rhs[0] == ast.Expr(call) {
		// x, err := f() — the error is the last LHS.
		if len(assign.Lhs) == nres {
			return isBlank(assign.Lhs[nres-1])
		}
		return false
	}
	// a, b = f(), g(): each call yields one value.
	for i, rhs := range assign.Rhs {
		if rhs == ast.Expr(call) && i < len(assign.Lhs) {
			return nres == 1 && isBlank(assign.Lhs[i])
		}
	}
	return false
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
