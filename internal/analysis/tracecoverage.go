package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// traceCoverage verifies that the simulation's trace-visible enums stay
// observable in the flight recorder. Two rules per enum:
//
//  1. The enum must have a trace emission site: some non-test code must
//     pass `<enum>.String()` into a Record call (the "exit:<reason>" and
//     "ev:<kind>" record kinds). Without one, the whole enum is invisible
//     to `trace` output and to analysis built on it.
//  2. Every exported constant of the enum must be used by non-test code
//     outside the enum's own String method. A constant nobody produces or
//     matches can never appear in a trace — it is a dead record kind that
//     readers of DESIGN.md will wait for forever.
//
// The enums covered are the VM-exit reasons (vmx.ExitReason) and the
// Hobbes resource-event kinds (hobbes.EventKind), including the
// supervision lifecycle events.
var traceCoverage = &Analyzer{
	Name:      checkTrace,
	Doc:       "every exit-reason / event-kind constant must reach a trace emission site",
	RunModule: runTraceCoverage,
}

// traceEnums lists the trace-visible enum types by declaring package
// suffix. Enums absent from a module (fixture trees) are skipped.
var traceEnums = []struct {
	pkg string // module-relative package suffix
	typ string // named enum type
}{
	{"internal/vmx", "ExitReason"},
	{"internal/hobbes", "EventKind"},
}

func runTraceCoverage(m *Module) []Finding {
	var out []Finding
	for _, enum := range traceEnums {
		out = append(out, checkTraceEnum(m, enum.pkg, enum.typ)...)
	}
	return out
}

// checkTraceEnum runs both rules for one enum type.
func checkTraceEnum(m *Module, pkgSuffix, typName string) []Finding {
	type constDecl struct {
		name ast.Node
		used bool
	}
	consts := make(map[string]*constDecl)
	var order []string
	var typeDecl ast.Node

	// Locate the enum's declaration and its exported constants in the
	// declaring package's non-test files.
	for _, u := range m.Units {
		if !unitIs(u, pkgSuffix) {
			continue
		}
		for _, f := range u.Files {
			if isTestFile(m, f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch d := n.(type) {
				case *ast.TypeSpec:
					if d.Name.Name == typName {
						typeDecl = d.Name
					}
				case *ast.ValueSpec:
					for _, name := range d.Names {
						if !name.IsExported() {
							continue
						}
						obj, ok := u.Info.Defs[name].(*types.Const)
						if !ok || !namedIs(obj.Type(), pkgSuffix, typName) {
							continue
						}
						if consts[name.Name] == nil {
							consts[name.Name] = &constDecl{name: name}
							order = append(order, name.Name)
						}
					}
				}
				return true
			})
		}
	}
	if typeDecl == nil {
		return nil // module has no such enum (e.g. an unrelated fixture)
	}

	// Scan all non-test code for constant uses (outside the enum's own
	// String method) and for Record calls fed by <enum>.String().
	emitted := false
	for _, u := range m.Units {
		for _, f := range u.Files {
			if isTestFile(m, f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				inString := ok && isEnumString(u, fd, pkgSuffix, typName)
				ast.Inspect(decl, func(n ast.Node) bool {
					switch e := n.(type) {
					case *ast.Ident:
						if inString {
							return true
						}
						obj, ok := u.Info.Uses[e].(*types.Const)
						if !ok || !namedIs(obj.Type(), pkgSuffix, typName) {
							return true
						}
						if cd := consts[obj.Name()]; cd != nil {
							cd.used = true
						}
					case *ast.CallExpr:
						if !emitted && isRecordCall(e) && callFeedsString(u, e, pkgSuffix, typName) {
							emitted = true
						}
					}
					return true
				})
			}
		}
	}

	var out []Finding
	if !emitted {
		out = append(out, Finding{
			Check: checkTrace,
			Pos:   m.Fset.Position(typeDecl.Pos()),
			Msg: typName + " has no trace emission site: no non-test Record call " +
				"is fed by " + typName + ".String(), so the enum never reaches the flight recorder",
		})
	}
	for _, name := range order {
		cd := consts[name]
		if !cd.used {
			out = append(out, Finding{
				Check: checkTrace,
				Pos:   m.Fset.Position(cd.name.Pos()),
				Msg: name + " is never used by non-test code outside " + typName +
					".String; the record kind it names can never appear in a trace",
			})
		}
	}
	return out
}

// unitIs reports whether the unit is the base package at the given
// module-relative suffix (external test units excluded).
func unitIs(u *Pkg, pkgSuffix string) bool {
	return !strings.HasSuffix(u.Path, ".test") && strings.HasSuffix(u.Path, pkgSuffix)
}

// isEnumString reports whether fd is the String method of the enum type.
func isEnumString(u *Pkg, fd *ast.FuncDecl, pkgSuffix, typName string) bool {
	if fd.Name.Name != "String" || fd.Recv == nil {
		return false
	}
	fn, ok := u.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Signature().Recv()
	return recv != nil && namedIs(recv.Type(), pkgSuffix, typName)
}

// isRecordCall reports whether e is a method call named Record (the trace
// flight-recorder entry point; matched by name so fixtures with their own
// trace package are covered too).
func isRecordCall(e *ast.CallExpr) bool {
	sel, ok := e.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Record"
}

// callFeedsString reports whether any argument subtree of the call
// contains <expr>.String() where expr has the enum type.
func callFeedsString(u *Pkg, call *ast.CallExpr, pkgSuffix, typName string) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := c.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "String" {
				return true
			}
			if tv, ok := u.Info.Types[sel.X]; ok && namedIs(tv.Type, pkgSuffix, typName) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// namedIs reports whether t is the named type typName declared in a
// package whose import path ends with pkgSuffix (pointers unwrapped).
func namedIs(t types.Type, pkgSuffix, typName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == typName && strings.HasSuffix(named.Obj().Pkg().Path(), pkgSuffix)
}
