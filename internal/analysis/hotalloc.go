package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotalloc enforces the zero-alloc workload discipline (DESIGN.md
// "Zero-alloc workload discipline"): a function whose doc comment carries
// the //covirt:hot directive declares itself a steady-state hot path, and
// must not allocate inside any of its loops. The check flags make calls,
// append calls (growth beyond capacity allocates, and hot paths must
// pre-size instead), and map composite literals when a for/range statement
// sits between them and the function — including loops inside function
// literals. Allocations before the loops (sizing scratch once per call)
// are fine; vetted exceptions use //covirt:allow hotalloc.
var hotalloc = &Analyzer{
	Name: checkHotalloc,
	Doc:  "//covirt:hot functions must not make/append/build maps inside loops",
	Run:  runHotalloc,
}

// isHotMarked reports whether the function's doc comment contains a
// //covirt:hot directive line.
func isHotMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//covirt:hot" {
			return true
		}
	}
	return false
}

// inLoop reports whether any proper ancestor on the stack is a for or
// range statement.
func inLoop(stack []ast.Node) bool {
	for _, a := range stack[:len(stack)-1] {
		switch a.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

func runHotalloc(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Unit.Files {
		if isTestFile(p.Mod, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotMarked(fd) {
				continue
			}
			walkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
				if !inLoop(stack) {
					return
				}
				switch n := n.(type) {
				case *ast.CallExpr:
					id, ok := n.Fun.(*ast.Ident)
					if !ok || (id.Name != "make" && id.Name != "append") {
						return
					}
					// Only the builtins count, not shadowing declarations.
					if obj, ok := p.Unit.Info.Uses[id]; ok {
						if _, builtin := obj.(*types.Builtin); !builtin {
							return
						}
					}
					p.report(&out, checkHotalloc, n,
						"%s inside a loop of hot function %s", id.Name, fd.Name.Name)
				case *ast.CompositeLit:
					if _, ok := n.Type.(*ast.MapType); ok {
						p.report(&out, checkHotalloc, n,
							"map literal inside a loop of hot function %s", fd.Name.Name)
					}
				}
			})
		}
	}
	return out
}
