package analysis

import (
	"go/ast"
	"go/types"
)

// determinism forbids wall-clock and global-RNG use inside the simulation
// core. Cycle accounting there must be a pure function of the machine
// history: two runs of the same experiment must produce identical TSC
// values, or the paper's tables stop being reproducible. Harness and CLI
// packages (and _test.go files, which may set real-time deadlines) are
// exempt; seeded sources (hw.Rand, rand.New(rand.NewSource(seed))) are
// always fine.
var determinism = &Analyzer{
	Name: checkDeterminism,
	Doc:  "simulation packages must not use wall-clock time or the global math/rand source",
	Run:  runDeterminism,
}

// bannedFuncs maps package path -> top-level functions whose results
// depend on wall-clock time or global process-seeded randomness.
var bannedFuncs = map[string]map[string]bool{
	"time": set("Now", "Since", "Until", "Sleep", "After", "Tick",
		"NewTicker", "NewTimer", "AfterFunc"),
	"math/rand": set("Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
		"Uint32", "Uint64", "Float32", "Float64", "ExpFloat64",
		"NormFloat64", "Perm", "Shuffle", "Read", "Seed"),
	"math/rand/v2": set("Int", "IntN", "Int32", "Int32N", "Int64", "Int64N",
		"Uint", "UintN", "Uint32", "Uint32N", "Uint64", "Uint64N",
		"Float32", "Float64", "ExpFloat64", "NormFloat64", "Perm",
		"Shuffle", "N"),
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func runDeterminism(p *Pass) []Finding {
	if !isSimPackage(p.Unit.Path) {
		return nil
	}
	var out []Finding
	for _, file := range p.Unit.Files {
		if isTestFile(p.Mod, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := p.Unit.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only top-level functions are banned: methods on a seeded
			// *rand.Rand are deterministic and fine.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if banned := bannedFuncs[fn.Pkg().Path()]; banned != nil && banned[fn.Name()] {
				p.report(&out, checkDeterminism, id,
					"%s.%s breaks cycle determinism in simulation package %s; use CPU TSC / hw.Rand instead",
					fn.Pkg().Name(), fn.Name(), p.Unit.Path)
			}
			return true
		})
	}
	return out
}
