package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// capDiscipline proves the capability model has no back doors: every call
// chain that reaches a resource-mutating sink (EPT map/unmap, IPI filter
// edits, I/O port table edits, XEMEM registry mutations, the co-kernel's
// memory map) must pass through a function that names a capability — a
// parameter, result or local of an internal/authority type, a call into
// the authority package, or an explicit //covirt:ambient <reason>
// annotation on the declaration, reviewed as legitimately pre-authority
// (boot identity mapping, post-revocation teardown).
//
// The check rides the module call graph (callgraph.go): for each call
// site targeting a sink, if neither the sink itself nor the calling
// function names a capability, the callers are walked backwards; finding
// an externally reachable root (no module callers, address-taken, or
// test-referenced) with no capability-naming function on the chain is a
// reported leak, with the witness chain from the root to the sink.
//
// A //covirt:allow cap-discipline directive on a call-site line is a
// traversal barrier, as for the other interprocedural checks.
var capDiscipline = &Analyzer{
	Name:      checkCapDiscipline,
	Doc:       "resource-mutating call chains must name an authority capability or be annotated //covirt:ambient",
	RunModule: runCapDiscipline,
}

// capSinkNames are the module-relative resource-mutating methods, as
// (pointer-receiver type, method) pairs. Absent types (e.g. in fixture
// modules) are simply not in the graph and are skipped.
var capSinkNames = [][2]string{
	{"internal/vmx.EPT", "MapRange"},
	{"internal/vmx.EPT", "UnmapRange"},
	{"internal/covirt.IPIFilter", "Grant"},
	{"internal/covirt.IPIFilter", "Revoke"},
	{"internal/covirt.IOTable", "Grant"},
	{"internal/covirt.IOTable", "RevokeCap"},
	{"internal/xemem.Registry", "Make"},
	{"internal/xemem.Registry", "Attach"},
	{"internal/xemem.Registry", "Remove"},
	{"internal/xemem.Registry", "ForceDrop"},
	{"internal/xemem.Registry", "DropAttachment"},
	{"internal/kitten.MemMap", "Add"},
	{"internal/kitten.MemMap", "Remove"},
	{"internal/hobbes.Master", "GrantIPI"},
	{"internal/hobbes.Master", "RevokeIPI"},
}

func runCapDiscipline(m *Module) []Finding {
	g := m.CallGraph()
	allow := buildAllowIndex(m)
	authPath := m.Path + "/internal/authority"

	sinks := make(map[string]bool, len(capSinkNames))
	for _, s := range capSinkNames {
		sinks[fmt.Sprintf("(*%s/%s).%s", m.Path, s[0], s[1])] = true
	}

	covered := make(map[string]bool)
	isCovered := func(key string) bool {
		if v, ok := covered[key]; ok {
			return v
		}
		v := nodeNamesCapability(g.Nodes[key], authPath)
		covered[key] = v
		return v
	}

	// chain memoizes the backwards walk: for an uncovered function, the
	// witness chain (root first) proving it is reachable with no
	// capability in scope, or nil when every path passes a covered node.
	chain := make(map[string][]string)
	var uncoveredChain func(key string, visiting map[string]bool) []string
	uncoveredChain = func(key string, visiting map[string]bool) []string {
		if c, ok := chain[key]; ok {
			return c
		}
		if visiting[key] {
			return nil // cycle: no root on this path
		}
		visiting[key] = true
		defer delete(visiting, key)
		n := g.Nodes[key]
		var result []string
		if len(n.Callers) == 0 || n.AddrTaken || n.TestRef {
			result = []string{n.Display(m)} // externally reachable root
		} else {
			for _, caller := range n.Callers {
				if isCovered(caller) {
					continue // authority established upstream on this path
				}
				if c := uncoveredChain(caller, visiting); c != nil {
					result = append(append([]string(nil), c...), n.Display(m))
					break
				}
			}
		}
		chain[key] = result
		return result
	}

	var out []Finding
	for _, key := range g.Keys() {
		n := g.Nodes[key]
		for _, site := range n.Sites {
			for _, callee := range site.Callees {
				if !sinks[callee] {
					continue
				}
				if allow.barrier(m, site.Pos, checkCapDiscipline) {
					continue
				}
				// A sink that itself names capabilities (the registry
				// verifies its keys internally) discharges the obligation.
				if isCovered(callee) {
					continue
				}
				if isCovered(key) {
					continue
				}
				c := uncoveredChain(key, map[string]bool{})
				if c == nil {
					continue
				}
				out = append(out, Finding{
					Check: checkCapDiscipline,
					Pos:   m.Fset.Position(site.Pos),
					Msg: fmt.Sprintf("call to %s reachable from %s with no capability in scope (need a Cap parameter, an authority check, or //covirt:ambient)",
						g.Nodes[callee].Display(m), c[0]),
					Witness: renderCapChain(m, c, g.Nodes[callee].Display(m), site.Pos),
				})
			}
		}
	}
	return out
}

// renderCapChain renders the uncovered chain root → … → caller → sink.
func renderCapChain(m *Module, chain []string, sink string, pos token.Pos) []string {
	var out []string
	for i := 0; i+1 < len(chain); i++ {
		out = append(out, fmt.Sprintf("%s calls %s (no capability named)", chain[i], chain[i+1]))
	}
	p := m.Fset.Position(pos)
	out = append(out, fmt.Sprintf("%s calls sink %s at %s:%d", chain[len(chain)-1], sink, relPath(m, p.Filename), p.Line))
	return out
}

// nodeNamesCapability reports whether n establishes authority: a
// //covirt:ambient annotation, an authority-typed parameter, result or
// receiver, or any identifier in its body defined in — or typed by — the
// authority package.
func nodeNamesCapability(n *FuncNode, authPath string) bool {
	if n == nil {
		return false
	}
	if hasAmbient(n.Decl) {
		return true
	}
	sig := n.Fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isAuthorityType(sig.Params().At(i).Type(), authPath) {
			return true
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isAuthorityType(sig.Results().At(i).Type(), authPath) {
			return true
		}
	}
	if r := sig.Recv(); r != nil && isAuthorityType(r.Type(), authPath) {
		return true
	}
	found := false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if found {
			return false
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		obj := n.Unit.Info.Uses[id]
		if obj == nil {
			obj = n.Unit.Info.Defs[id]
		}
		if obj == nil {
			return true
		}
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == authPath {
			found = true
			return false
		}
		if v, ok := obj.(*types.Var); ok && isAuthorityType(v.Type(), authPath) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isAuthorityType reports whether t (unwrapping pointers, slices, arrays
// and maps) is a named type declared in the authority package.
func isAuthorityType(t types.Type, authPath string) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			obj := u.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == authPath
		default:
			return false
		}
	}
}

// hasAmbient reports a //covirt:ambient <reason> directive in the
// declaration's doc comment. A bare //covirt:ambient with no reason does
// not count: the reason is the review record.
func hasAmbient(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if rest, ok := cutDirective(c.Text, "covirt:ambient"); ok && len(rest) > 1 {
			return true
		}
	}
	return false
}
