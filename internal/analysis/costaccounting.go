package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// costAccounting verifies that every exported field of the hw.Costs cycle
// model is actually charged somewhere: read through a selector expression
// by non-test code. Keyed composite literals (DefaultCosts, test configs)
// do not count — populating a field is not charging it. A field nobody
// charges is a dead model entry — its value silently drifts away from the
// paper's calibration tables without any test noticing.
var costAccounting = &Analyzer{
	Name:      checkCost,
	Doc:       "every exported hw.Costs field must be charged by simulation code",
	RunModule: runCostAccounting,
}

func runCostAccounting(m *Module) []Finding {
	type fieldDecl struct {
		name ast.Node
		used bool
	}
	var declFile string
	fields := make(map[string]*fieldDecl)
	var order []string

	// Locate the Costs struct in the hw package and record its exported
	// fields and declaring file.
	for _, u := range m.Units {
		if !strings.HasSuffix(strings.TrimSuffix(u.Path, ".test"), "internal/hw") || strings.HasSuffix(u.Path, ".test") {
			continue
		}
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Costs" {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				declFile = m.Fset.Position(ts.Pos()).Filename
				for _, fld := range st.Fields.List {
					for _, name := range fld.Names {
						if name.IsExported() {
							fields[name.Name] = &fieldDecl{name: name}
							order = append(order, name.Name)
						}
					}
				}
				return false
			})
		}
	}
	if declFile == "" {
		return nil // module has no hw.Costs (e.g. an unrelated fixture)
	}

	// Scan every non-test file for selector references to Costs fields
	// (cost-model helpers like remoteScale live next to the struct and
	// count as charges; they are themselves called from charging code).
	for _, u := range m.Units {
		for _, f := range u.Files {
			if isTestFile(m, f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fd := fields[sel.Sel.Name]
				if fd == nil || fd.used {
					return true
				}
				s := u.Info.Selections[sel]
				if s == nil || s.Kind() != types.FieldVal {
					return true
				}
				if recvIsCosts(s.Recv()) {
					fd.used = true
				}
				return true
			})
		}
	}

	var out []Finding
	for _, name := range order {
		fd := fields[name]
		if !fd.used {
			out = append(out, Finding{
				Check: checkCost,
				Pos:   m.Fset.Position(fd.name.Pos()),
				Msg: "Costs." + name + " is never charged by any simulation code; " +
					"dead cost-model entries drift from the paper's tables",
			})
		}
	}
	return out
}

// recvIsCosts reports whether t is hw.Costs (possibly behind a pointer).
func recvIsCosts(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Costs" && strings.HasSuffix(named.Obj().Pkg().Path(), "internal/hw")
}
