// Package hw exercises the cost-accounting analyzer.
package hw

// Costs is a fixture stub of the cycle model.
type Costs struct {
	Charged uint64
	Dead    uint64 // want: never charged
}

func charge(c *Costs) uint64 { return c.Charged }
