// Package covirt holds the fixture's exit-reason emission site: ExitA and
// ExitB are matched here and the reason flows into a Record call, so only
// the dead constant in internal/vmx should be reported.
package covirt

import (
	"covirt/internal/trace"
	"covirt/internal/vmx"
)

// HandleExit records every handled exit by reason.
func HandleExit(t *trace.Buffer, r vmx.ExitReason) {
	if r == vmx.ExitA || r == vmx.ExitB {
		t.Record(0, 0, "exit:"+r.String(), "handled")
	}
}
