// Package hobbes: every EventKind constant is produced by non-test code,
// but no Record call is ever fed by EventKind.String() — the bus forgot
// its tracer hook — so trace-coverage must flag the enum itself.
package hobbes

// EventKind classifies bus events.
type EventKind int // want: no trace emission site

// Event kinds.
const (
	EvCreated EventKind = iota
	EvDestroyed
)

// String names the event kind.
func (k EventKind) String() string {
	if k == EvCreated {
		return "created"
	}
	return "destroyed"
}

// Event is one notification.
type Event struct{ Kind EventKind }

// Created and Destroyed build the two event shapes.
func Created() *Event { return &Event{Kind: EvCreated} }

// Destroyed builds a teardown event.
func Destroyed() *Event { return &Event{Kind: EvDestroyed} }
