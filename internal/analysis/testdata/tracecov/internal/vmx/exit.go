// Package vmx: ExitReason has an emission site (internal/covirt records
// "exit:"+String()), but ExitDead is only ever named by String — no code
// produces or matches it, so trace-coverage must flag the constant.
package vmx

// ExitReason identifies why a VM exit occurred.
type ExitReason int

// Exit reasons.
const (
	ExitA ExitReason = iota
	ExitB
	ExitDead // want: never used outside String
)

// String names the exit reason.
func (r ExitReason) String() string {
	switch r {
	case ExitA:
		return "A"
	case ExitB:
		return "B"
	case ExitDead:
		return "DEAD"
	}
	return "?"
}
