// Package trace is a minimal stand-in for the repository's flight
// recorder, just enough surface for the trace-coverage fixture.
package trace

// Buffer records trace events.
type Buffer struct{}

// Record appends one event.
func (b *Buffer) Record(cpu int, tsc uint64, kind, format string, args ...any) {}
