// Package use exercises the ledger-conservation analyzer.
package use

import (
	"covirt/internal/hw"
	"covirt/internal/pisces"
)

func bad(l *pisces.Ledger, topo *hw.Topology) (hw.Extent, error) {
	l.AllocMemory(0, 1<<20) // want: allocation discarded entirely

	_, err := l.AllocMemory(0, 1<<20) // want: extent blank-assigned
	if err != nil {
		return hw.Extent{}, err
	}

	go l.AllocCores(topo, 0, 2) // want: unobservable under go

	//covirt:allow ledger-conservation fixture: vetted exception
	l.AllocMemory(1, 1<<20) // suppressed

	ext, err := l.AllocMemory(0, 2<<20) // ok: extent owned, freed below
	if err != nil {
		return hw.Extent{}, err
	}
	defer l.FreeMemory(ext)

	cores, err := l.AllocCores(topo, 0, 1) // ok: cores bound
	if err != nil {
		return hw.Extent{}, err
	}
	_ = cores
	return ext, nil
}
