// Package pisces is a fixture stub of the real resource ledger surface.
package pisces

import "covirt/internal/hw"

// Ledger mimics the Pisces resource ledger.
type Ledger struct{}

func (l *Ledger) AllocMemory(node int, size uint64) (hw.Extent, error) { return hw.Extent{}, nil }

func (l *Ledger) AllocCores(topo *hw.Topology, node, n int) ([]int, error) { return nil, nil }

func (l *Ledger) FreeMemory(e hw.Extent) {}
