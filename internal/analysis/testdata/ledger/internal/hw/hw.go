// Package hw is a fixture stub of the types the ledger hands out.
package hw

// Extent mimics the simulator's physical extent.
type Extent struct {
	Start, Size uint64
	Node        int
}

// Topology mimics the machine topology consulted for core placement.
type Topology struct{}
