// Package locks exercises the lock-order analyzer: acquisition-order
// cycles through calls, self-deadlock through a call chain, interface
// widening, and the exemptions (goroutine launches, //covirt:allow).
package locks

import "sync"

// AB and BA invert each other's order; the a->b edge is established
// through a call, the b->a edge locally.
type AB struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *AB) First() {
	s.a.Lock()
	defer s.a.Unlock()
	s.lockB()
}

func (s *AB) lockB() {
	s.b.Lock()
	defer s.b.Unlock()
}

func (s *AB) Second() {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock()
	defer s.a.Unlock()
}

// Re re-acquires its own mutex through a helper: a self-loop.
type Re struct {
	m sync.Mutex
}

func (s *Re) Outer() {
	s.m.Lock()
	defer s.m.Unlock()
	s.helper()
}

func (s *Re) helper() {
	s.m.Lock()
	defer s.m.Unlock()
}

// Clean takes a then b everywhere: a consistent global order.
type Clean struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *Clean) Both() {
	s.a.Lock()
	defer s.a.Unlock()
	s.lockB()
}

func (s *Clean) lockB() {
	s.b.Lock()
	defer s.b.Unlock()
}

func (s *Clean) Again() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock()
	defer s.b.Unlock()
}

// Spawn holds a while launching a goroutine that locks b; the goroutine
// runs on its own frame, so no a->b edge forms and the b-then-a order
// elsewhere is fine.
type Spawn struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *Spawn) Launch() {
	s.a.Lock()
	defer s.a.Unlock()
	go s.lockB()
}

func (s *Spawn) lockB() {
	s.b.Lock()
	defer s.b.Unlock()
}

func (s *Spawn) Inverse() {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock()
	defer s.a.Unlock()
}

// Vetted is the AB shape with the call edge annotated away.
type Vetted struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *Vetted) First() {
	s.a.Lock()
	defer s.a.Unlock()
	//covirt:allow lock-order callee runs after handoff, not on this frame
	s.lockB()
}

func (s *Vetted) lockB() {
	s.b.Lock()
	defer s.b.Unlock()
}

func (s *Vetted) Second() {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock()
	defer s.a.Unlock()
}

// Grabber is dispatched through an interface: the x->y edge must be
// found by name+signature widening.
type Grabber interface {
	Grab()
}

type Iface struct {
	x sync.Mutex
	y sync.Mutex
}

func (s *Iface) Grab() {
	s.y.Lock()
	defer s.y.Unlock()
}

func (s *Iface) Call(g Grabber) {
	s.x.Lock()
	defer s.x.Unlock()
	g.Grab()
}

func (s *Iface) Inverse() {
	s.y.Lock()
	defer s.y.Unlock()
	s.x.Lock()
	defer s.x.Unlock()
}
