// Package locks exercises the lock-discipline analyzer.
package locks

import "sync"

type box struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	n    int
	done bool
}

func bad(b *box) {
	b.mu.Lock() // want: no deferred unlock
	b.n++
	b.mu.Unlock()
}

func badRead(b *box) int {
	b.rw.RLock() // want: no deferred runlock
	n := b.n
	b.rw.RUnlock()
	return n
}

func good(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func condBad(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.done {
		b.cond.Wait() // want: Wait outside for loop
	}
}

func condGood(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for !b.done {
		b.cond.Wait()
	}
}
