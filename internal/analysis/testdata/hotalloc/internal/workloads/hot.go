package workloads

// step is a steady-state kernel; every allocation form inside its loops
// must be flagged.
//
//covirt:hot
func step(n int) []float64 {
	scratch := make([]float64, n) // before the loop: allowed
	var events []int
	for i := 0; i < n; i++ {
		tmp := make([]float64, 8)     // flagged: make in loop
		events = append(events, i)    // flagged: append in loop
		seen := map[int]bool{i: true} // flagged: map literal in loop
		_ = seen
		scratch[i] = tmp[0]
	}
	for range scratch {
		f := func() {
			buf := make([]byte, 4) // flagged: make in loop via closure
			_ = buf
		}
		f()
	}
	for i := 0; i < n; i++ {
		//covirt:allow hotalloc growth is measurement semantics here
		events = append(events, i)
	}
	_ = events
	return scratch
}

// cold has the same shapes but no marker: nothing is flagged.
func cold(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// sized allocates only outside its loop: nothing is flagged.
//
//covirt:hot
func sized(n int) float64 {
	buf := make([]float64, n)
	s := 0.0
	for i := range buf {
		s += buf[i]
	}
	return s
}
