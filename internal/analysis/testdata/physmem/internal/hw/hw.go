// Package hw is a fixture stub of the real internal/hw accessors.
package hw

// PhysMem mimics the simulator's physical-memory accessor surface.
type PhysMem struct{}

func (m *PhysMem) Read64(addr uint64) (uint64, error) { return 0, nil }
func (m *PhysMem) Write64(addr, v uint64) error       { return nil }
func (m *PhysMem) AddRegion(start, size uint64) error { return nil }
