// Package use exercises the physmem-errcheck analyzer.
package use

import "covirt/internal/hw"

func bad(m *hw.PhysMem) uint64 {
	m.Write64(0, 1) // want: ignored entirely

	v, _ := m.Read64(0) // want: discarded via _

	go m.Write64(16, 4) // want: ignored in go statement

	//covirt:allow physmem-errcheck fixture: vetted exception
	m.Write64(4, 2) // suppressed

	if err := m.Write64(8, 3); err != nil { // ok: error handled
		return 0
	}
	w, err := m.Read64(8) // ok: error handled
	if err != nil {
		return 0
	}
	return v + w
}
