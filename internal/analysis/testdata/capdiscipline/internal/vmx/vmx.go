package vmx

// EPT is the fixture's resource-mutating mechanism: MapRange/UnmapRange
// are cap-discipline sinks and name no capability themselves.
type EPT struct{ mapped uint64 }

func (e *EPT) MapRange(gpa, size uint64) { e.mapped += size }

func (e *EPT) UnmapRange(gpa, size uint64) { e.mapped -= size }
