package covirt

import (
	"covirt/internal/authority"
	"covirt/internal/vmx"
)

// MapChecked names and verifies a capability before mutating: vetted.
func MapChecked(t *authority.Table, c authority.Cap, e *vmx.EPT) {
	if t.Verify(c) {
		e.MapRange(0, 4096)
	}
}

// MapBare mutates with no capability anywhere on the chain: reported.
func MapBare(e *vmx.EPT) {
	e.MapRange(0, 4096)
}

//covirt:ambient teardown path after a verified kill, reviewed
func MapAmbient(e *vmx.EPT) {
	e.UnmapRange(0, 4096)
}

// MapVetted carries a call-site suppression instead.
func MapVetted(e *vmx.EPT) {
	e.MapRange(0, 4096) //covirt:allow cap-discipline boot identity map
}

// Outer reaches the sink through a bare helper chain from an external
// root: reported at the sink call inside inner.
func Outer(e *vmx.EPT) { inner(e) }

func inner(e *vmx.EPT) {
	e.MapRange(4096, 4096)
}

// OuterCovered discharges the chain for its mechanism helper: the only
// path to mech's sink call passes a capability-naming function.
func OuterCovered(t *authority.Table, c authority.Cap, e *vmx.EPT) {
	if t.Verify(c) {
		mech(e)
	}
}

func mech(e *vmx.EPT) {
	e.UnmapRange(4096, 4096)
}
