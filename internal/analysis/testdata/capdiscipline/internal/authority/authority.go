package authority

// Cap is the fixture's stand-in capability.
type Cap struct{ ID, Gen uint64 }

// Table is the fixture's stand-in capability table.
type Table struct{}

// Verify always passes; only the naming matters to the analyzer.
func (t *Table) Verify(c Cap) bool { return c.ID != 0 }
