// Package hw exercises the determinism analyzer inside a sim package.
package hw

import (
	"math/rand"
	"time"
)

func stamp() int64 { return time.Now().UnixNano() } // want: time.Now

func elapsed(t0 time.Time) time.Duration { return time.Since(t0) } // want: time.Since

func roll() int { return rand.Intn(6) } // want: global math/rand

func seeded() uint64 {
	r := rand.New(rand.NewSource(42)) // ok: seeded source
	return r.Uint64()
}
