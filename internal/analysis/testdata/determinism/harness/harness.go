// Package harness is exempt from the determinism check.
package harness

import "time"

func Wall() time.Time { return time.Now() } // ok: not a sim package
