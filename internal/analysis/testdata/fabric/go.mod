module covirt

go 1.24
