// Package use exercises fabric-charge conservation.
package use

import "covirt/internal/cluster"

func bad(f *cluster.Fabric) uint64 {
	f.Latency(0, 1) // want: charge discarded entirely

	_ = f.Transfer(0, 1, 4096) // want: charge blank-assigned

	go f.Latency(1, 2) // want: unobservable under go

	//covirt:allow ledger-conservation fixture: vetted exception
	f.Latency(2, 3) // suppressed

	cycles := f.Latency(0, 2)         // ok: bound and returned
	cycles += f.Transfer(0, 2, 1<<20) // ok: folded into the total
	return cycles
}
