// Package cluster is a fixture stub of the fleet fabric cost surface.
package cluster

import "time"

// Fabric mimics the fleet interconnect cost model.
type Fabric struct{}

func (f *Fabric) Latency(src, dst int) uint64 { return 0 }

func (f *Fabric) Transfer(src, dst int, bytes uint64) uint64 { return 0 }

// Jitter breaks cycle determinism: wall-clock time in a sim package.
func Jitter() uint64 { return uint64(time.Now().UnixNano()) }
