// Package fields exercises the atomic-discipline analyzer: mixed
// atomic/bare access, declared guards (//covirt:guards), inferred
// guards, entry-held propagation through the call graph, and the
// constructor / local-value exemptions.
package fields

import (
	"sync"
	"sync/atomic"
)

// Mixed reads n atomically in one place and bare in another.
type Mixed struct {
	n uint64
}

func (m *Mixed) Bump() {
	atomic.AddUint64(&m.n, 1)
}

func (m *Mixed) Peek() uint64 {
	return m.n // bare read of an atomically-written field
}

// Guarded declares mu as state's guard. set writes it correctly;
// Sneak writes it bare; helper relies on the caller's lock, which the
// entry-held fixpoint proves.
type Guarded struct {
	mu    sync.Mutex //covirt:guards state
	state int
}

func (g *Guarded) Set(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.state = v
}

func (g *Guarded) Sneak(v int) {
	g.state = v // write outside declared guard
}

func (g *Guarded) Locked(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.helper(v)
}

func (g *Guarded) helper(v int) {
	g.state = v // fine: every caller holds mu on entry
}

// Inferred has no annotation: two locked writes establish mu as the
// inferred guard, so the bare write is a finding.
type Inferred struct {
	mu sync.Mutex
	v  int
}

func (i *Inferred) SetA(v int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.v = v
}

func (i *Inferred) SetB(v int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.v = v + 1
}

func (i *Inferred) Racy(v int) {
	i.v = v // bare write to a field mu guards twice
}

// RacyVetted is the same shape with a blanket suppression.
func (i *Inferred) RacyVetted(v int) {
	//covirt:allow all single-threaded setup phase
	i.v = v
}

// NewInferred writes fields of a value it just allocated: exempt.
func NewInferred(v int) *Inferred {
	i := &Inferred{}
	i.v = v
	return i
}

// Value writes go to a local copy: exempt everywhere.
type Msg struct {
	Kind int
}

func MakeMsg(k int) Msg {
	var m Msg
	m.Kind = k
	return m
}

// Bad declares a guard over a field that does not exist.
type Bad struct {
	mu sync.Mutex //covirt:guards missing
	ok int
}

func (b *Bad) Set(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ok = v
}
