// Package workloads exercises the transitive-hot analyzer: allocation
// and non-determinism reached from a hot loop through direct calls,
// deeper chains, and interface dispatch, plus the exemptions (calls
// outside loops, //covirt:allow barriers and suppressions).
package workloads

import "time"

type charger struct {
	scratch []byte
	sink    uint64
	src     Source
}

// Source is dispatched from the hot loop: implementations are widened in.
type Source interface {
	Next() uint64
}

type clockSource struct{}

func (clockSource) Next() uint64 {
	return uint64(time.Now().UnixNano()) // non-determinism behind an interface
}

//covirt:hot
func (c *charger) Charge(n int) {
	c.setup(n) // outside any loop: setup may allocate
	for i := 0; i < n; i++ {
		c.step(i)
		c.sink += c.src.Next()
		//covirt:allow transitive-hot drain runs on the flush path, not per iteration
		c.flush()
	}
}

// setup is only called before the loop: its make is fine.
func (c *charger) setup(n int) {
	c.scratch = make([]byte, n)
}

// step is called every iteration and calls deeper.
func (c *charger) step(i int) {
	c.scratch = append(c.scratch, byte(i))
	c.deeper(i)
}

// deeper is two hops from the loop.
func (c *charger) deeper(i int) {
	m := map[int]int{i: i}
	c.sink += uint64(len(m))
	c.vetted()
}

// vetted allocates, but the site carries a suppression.
func (c *charger) vetted() {
	//covirt:allow transitive-hot scratch table rebuilt rarely, amortized
	c.scratch = make([]byte, 1)
}

// flush allocates, but the hot loop's call to it is a vetted barrier.
func (c *charger) flush() {
	c.scratch = make([]byte, 0, 64)
}
