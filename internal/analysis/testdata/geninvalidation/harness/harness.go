// Package harness is not a sim package: cache reads here are exempt.
package harness

type stats struct{ hitCache uint64 }

func (s *stats) hits() uint64 { return s.hitCache }
