// Package hw exercises the gen-invalidation analyzer inside a sim package.
package hw

// world is the cached state's source of truth.
type world struct{ gen uint64 }

func (w *world) Gen() uint64 { return w.gen }

type entry struct{ base, size uint64 }

func (e entry) covers(a uint64) bool { return a-e.base < e.size }

// box holds a generation-validated software cache.
type box struct {
	w          *world
	transCache entry
	cacheGen   uint64
}

// staleRead consumes the cache without ever consulting a generation.
func (b *box) staleRead(a uint64) bool {
	return b.transCache.covers(a) // want: read without gen validation
}

// validatedRead checks the generation first — the sanctioned pattern.
func (b *box) validatedRead(a uint64) bool {
	if b.cacheGen != b.w.Gen() {
		return false
	}
	return b.transCache.covers(a)
}

// fill only writes the cache; filling needs no validation.
func (b *box) fill(e entry) {
	b.transCache = e
}

// drop calls an invalidation-style method on the cache field.
func (b *box) drop() {
	b.transCache.clear()
}

func (e *entry) clear() { *e = entry{} }

// vetted reads the cache gen-free but carries a reviewed justification.
func (b *box) vetted(a uint64) bool {
	//covirt:allow gen-invalidation caller validated the generation this tick
	return b.transCache.covers(a)
}
