// Package covirt is a fixture stub of the command-queue owner file.
package covirt

import "covirt/internal/hw"

const (
	cmdqHdrSize = 24
	// OffCovirtCmdQ marks queue-layout address arithmetic.
	OffCovirtCmdQ = 0x6000
)

type cmdQueue struct {
	mem  *hw.PhysMem
	base uint64
}

func (q *cmdQueue) completed() (uint64, error) {
	return q.mem.Read64(q.base + 16) // ok: owner file
}
