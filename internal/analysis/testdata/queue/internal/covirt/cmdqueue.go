// Package covirt is a fixture stub of the command-queue owner file.
package covirt

import "covirt/internal/hw"

const (
	cmdqHdrSize  = 32
	cmdqSlotSize = 32
	// OffCovirtCmdQ marks queue-layout address arithmetic.
	OffCovirtCmdQ = 0x10000
	cmdqOffHead   = 0
	cmdqOffEpoch  = 24
)

type cmdQueue struct {
	mem  *hw.PhysMem
	base uint64
}

func (q *cmdQueue) completed() (uint64, error) {
	return q.mem.Read64(q.base + 16) // ok: owner file
}

// pushGood writes the slot body first and releases it with the head store.
func (q *cmdQueue) pushGood(rec uint64) error {
	head, err := q.mem.Read64(q.base + cmdqOffHead)
	if err != nil {
		return err
	}
	if err := q.mem.Write64(q.base+cmdqHdrSize+head*cmdqSlotSize, rec); err != nil {
		return err
	}
	return q.mem.Write64(q.base+cmdqOffHead, head+1)
}

// pushBroken publishes the head before the slot contents exist: the
// drainer's acquire load can observe the new head and fetch a stale slot.
func (q *cmdQueue) pushBroken(rec uint64) error {
	head, err := q.mem.Read64(q.base + cmdqOffHead)
	if err != nil {
		return err
	}
	if err := q.mem.Write64(q.base+cmdqOffHead, head+1); err != nil {
		return err
	}
	return q.mem.Write64(q.base+cmdqHdrSize+head*cmdqSlotSize, rec) // want: slot write after head publish
}

// publishGood raises the applied epoch only monotonically.
func (q *cmdQueue) publishGood(epoch uint64) error {
	cur, err := q.mem.Read64(q.base + cmdqOffEpoch)
	if err != nil {
		return err
	}
	if epoch > cur {
		return q.mem.Write64(q.base+cmdqOffEpoch, epoch)
	}
	return nil
}

// publishBroken stores the epoch unconditionally: a stale marker moves the
// counter backwards and releases waiters early.
func (q *cmdQueue) publishBroken(epoch uint64) error {
	return q.mem.Write64(q.base+cmdqOffEpoch, epoch) // want: unguarded epoch publish
}
