package covirt

import "covirt/internal/hw"

func poke(q *cmdQueue, m *hw.PhysMem) (uint64, error) {
	addr := q.base                                      // want: cmdQueue field access outside cmdqueue.go
	return m.Read64(addr + OffCovirtCmdQ + cmdqHdrSize) // want: raw access at queue-layout address
}
