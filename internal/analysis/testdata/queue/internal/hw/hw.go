// Package hw is a fixture stub of the physical-memory accessors.
package hw

type PhysMem struct{}

func (m *PhysMem) Read64(addr uint64) (uint64, error) { return 0, nil }
func (m *PhysMem) Write64(addr, v uint64) error       { return nil }
