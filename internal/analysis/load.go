package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Pkg is one analysis unit: the type-checked files of a package directory.
// A directory yields up to two units — the package itself (non-test files
// plus in-package _test.go files) and, when present, the external
// <name>_test package.
type Pkg struct {
	// Path is the import path ("covirt/internal/hw"); external test units
	// carry a ".test" suffix for display only.
	Path string
	// Dir is the absolute directory.
	Dir string
	// Name is the package name.
	Name string
	// Files are the parsed files of this unit.
	Files []*ast.File
	// Types and Info hold the type-checking results. Info is always
	// non-nil; Types may carry partial information if the package had
	// type errors (recorded in Module.TypeErrors).
	Types *types.Package
	Info  *types.Info
}

// Module is a fully loaded Go module: every package directory parsed and
// type-checked, using only the standard library toolchain.
type Module struct {
	// Path is the module path from go.mod.
	Path string
	// Root is the absolute module root directory.
	Root string
	// Fset positions every file in the module.
	Fset *token.FileSet
	// Units are the analysis units in deterministic (path) order.
	Units []*Pkg
	// TypeErrors collects non-fatal type-checking diagnostics. A module
	// that builds with `go build ./...` produces none; they are surfaced
	// as warnings so analysis stays best-effort on broken trees.
	TypeErrors []error

	cg    *CallGraph // lazily built module call graph (see callgraph.go)
	allow allowIndex // lazily built //covirt:allow index (see analysis.go)
}

// pkgDir is one package directory before type checking.
type pkgDir struct {
	dir     string // absolute
	path    string // import path of the base package
	name    string // base package name ("" if only external tests)
	base    []*ast.File
	inTest  []*ast.File // _test.go files in the base package
	extTest []*ast.File // _test.go files in package <name>_test
}

// LoadModule parses and type-checks every package under root, which must
// contain (or sit inside) a go.mod. Imports within the module resolve to
// the loaded packages themselves; all other imports (standard library)
// are type-checked from source via go/importer. No external tooling or
// dependencies are involved.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	dirs, err := parseTree(fset, modRoot, modPath)
	if err != nil {
		return nil, err
	}

	m := &Module{Path: modPath, Root: modRoot, Fset: fset}
	ld := &moduleLoader{
		mod:     m,
		dirs:    dirs,
		byPath:  make(map[string]*pkgDir),
		checked: make(map[string]*types.Package),
		src:     importer.ForCompiler(fset, "source", nil),
	}
	for _, d := range dirs {
		ld.byPath[d.path] = d
	}
	// Type-check base packages in dependency order (imports first), then
	// build the analysis units.
	for _, d := range dirs {
		if len(d.base) == 0 {
			continue // external tests only (e.g. a root bench package)
		}
		if _, err := ld.check(d.path, nil); err != nil {
			return nil, err
		}
	}
	for _, d := range dirs {
		units, err := ld.units(d)
		if err != nil {
			return nil, err
		}
		m.Units = append(m.Units, units...)
	}
	sort.Slice(m.Units, func(i, j int) bool { return m.Units[i].Path < m.Units[j].Path })
	return m, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (string, string, error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
	}
}

// parseTree parses every package directory under modRoot, skipping
// testdata, vendor, hidden directories, and nested modules.
func parseTree(fset *token.FileSet, modRoot, modPath string) ([]*pkgDir, error) {
	var dirs []*pkgDir
	err := filepath.WalkDir(modRoot, func(path string, de os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if de.IsDir() {
			name := de.Name()
			if path != modRoot {
				if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
					return filepath.SkipDir
				}
				if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
					return filepath.SkipDir // nested module
				}
			}
			d, perr := parseDir(fset, path, modRoot, modPath)
			if perr != nil {
				return perr
			}
			if d != nil {
				dirs = append(dirs, d)
			}
			return nil
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].path < dirs[j].path })
	return dirs, nil
}

// buildExcluded reports whether a //go:build constraint before the
// package clause rules the file out of a default build. The analyzer
// loads what `go build` with no extra tags would compile: GOOS, GOARCH,
// the gc toolchain, "unix", and go1.x release tags satisfy; anything
// else (race, integration, ...) does not.
func buildExcluded(file *ast.File) bool {
	for _, cg := range file.Comments {
		if cg.Pos() >= file.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			ok := expr.Eval(func(tag string) bool {
				switch tag {
				case runtime.GOOS, runtime.GOARCH, "gc", "unix":
					return true
				}
				return strings.HasPrefix(tag, "go1")
			})
			if !ok {
				return true
			}
		}
	}
	return false
}

// parseDir parses the .go files of one directory, or returns nil if it
// holds none.
func parseDir(fset *token.FileSet, dir, modRoot, modPath string) (*pkgDir, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(modRoot, dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}
	d := &pkgDir{dir: dir, path: importPath}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if buildExcluded(file) {
			// e.g. a //go:build race file: loading it alongside its
			// !race twin would redeclare symbols the real toolchain
			// never compiles together.
			continue
		}
		name := file.Name.Name
		switch {
		case strings.HasSuffix(e.Name(), "_test.go") && strings.HasSuffix(name, "_test"):
			d.extTest = append(d.extTest, file)
		case strings.HasSuffix(e.Name(), "_test.go"):
			d.inTest = append(d.inTest, file)
		default:
			if d.name != "" && d.name != name {
				return nil, fmt.Errorf("analysis: %s: multiple packages %q and %q", dir, d.name, name)
			}
			d.name = name
			d.base = append(d.base, file)
		}
	}
	if d.name == "" && len(d.inTest) > 0 {
		d.name = d.inTest[0].Name.Name
	}
	if len(d.base) == 0 && len(d.inTest) == 0 && len(d.extTest) == 0 {
		return nil, nil
	}
	return d, nil
}

// moduleLoader type-checks packages on demand, memoizing results so each
// base package is checked exactly once for import resolution.
type moduleLoader struct {
	mod     *Module
	dirs    []*pkgDir
	byPath  map[string]*pkgDir
	checked map[string]*types.Package
	src     types.Importer // source importer for non-module packages
	stack   []string       // import cycle detection
}

// Import implements types.Importer: module-internal paths resolve to the
// loader's own packages; everything else (standard library) goes through
// the source importer.
func (ld *moduleLoader) Import(path string) (*types.Package, error) {
	if path == ld.mod.Path || strings.HasPrefix(path, ld.mod.Path+"/") {
		return ld.check(path, nil)
	}
	return ld.src.Import(path)
}

// check type-checks the base package at path (memoized). When extra test
// files are supplied, a fresh, non-memoized check of base+extra runs
// instead (used to build analysis units).
func (ld *moduleLoader) check(path string, extra []*ast.File) (*types.Package, error) {
	if extra == nil {
		if pkg, ok := ld.checked[path]; ok {
			return pkg, nil
		}
	}
	d := ld.byPath[path]
	if d == nil || len(d.base) == 0 && extra == nil {
		return nil, fmt.Errorf("analysis: cannot find module package %q", path)
	}
	for _, p := range ld.stack {
		if p == path {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
	}
	ld.stack = append(ld.stack, path)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()

	files := append(append([]*ast.File(nil), d.base...), extra...)
	pkg, _, err := ld.typeCheck(path, files)
	if err != nil {
		return nil, err
	}
	if extra == nil {
		ld.checked[path] = pkg
	}
	return pkg, nil
}

// importsOf returns the module-internal import paths of a package's base
// (non-test) files.
func (ld *moduleLoader) importsOf(d *pkgDir) []string {
	var out []string
	for _, f := range d.base {
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if p == ld.mod.Path || strings.HasPrefix(p, ld.mod.Path+"/") {
				out = append(out, p)
			}
		}
	}
	return out
}

// dependsOn reports whether the base package at path (transitively)
// imports target.
func (ld *moduleLoader) dependsOn(path, target string) bool {
	seen := make(map[string]bool)
	var walk func(p string) bool
	walk = func(p string) bool {
		if seen[p] {
			return false
		}
		seen[p] = true
		d := ld.byPath[p]
		if d == nil {
			return false
		}
		for _, imp := range ld.importsOf(d) {
			if imp == target || walk(imp) {
				return true
			}
		}
		return false
	}
	return walk(path)
}

// variantLoader is a types.Importer that resolves target to its test
// variant (base + in-package _test.go files) and re-checks any module
// package on the import path between the external test unit and target
// against that variant — mirroring how the go tool builds external test
// binaries, so export_test.go hooks are visible both directly and through
// intermediate packages.
type variantLoader struct {
	ld     *moduleLoader
	target string
	cache  map[string]*types.Package
}

func (v *variantLoader) Import(path string) (*types.Package, error) {
	if pkg, ok := v.cache[path]; ok {
		return pkg, nil
	}
	if path != v.ld.mod.Path && !strings.HasPrefix(path, v.ld.mod.Path+"/") {
		return v.ld.src.Import(path)
	}
	if path != v.target && !v.ld.dependsOn(path, v.target) {
		return v.ld.check(path, nil)
	}
	d := v.ld.byPath[path]
	if d == nil || len(d.base) == 0 {
		return nil, fmt.Errorf("analysis: cannot find module package %q", path)
	}
	files := append([]*ast.File(nil), d.base...)
	if path == v.target {
		files = append(files, d.inTest...)
	}
	pkg, _, err := v.ld.typeCheckWith(v, path, files)
	if err != nil {
		return nil, err
	}
	v.cache[path] = pkg
	return pkg, nil
}

// typeCheck runs go/types over files, collecting soft errors into the
// module diagnostics.
func (ld *moduleLoader) typeCheck(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	return ld.typeCheckWith(ld, path, files)
}

// typeCheckWith is typeCheck with an explicit importer (used for test
// variant closures).
func (ld *moduleLoader) typeCheckWith(imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := &types.Config{
		Importer: imp,
		Error:    func(err error) { ld.mod.TypeErrors = append(ld.mod.TypeErrors, err) },
	}
	pkg, err := cfg.Check(path, ld.mod.Fset, files, info)
	if pkg == nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return pkg, info, nil
}

// units builds the analysis units for one directory: the package with its
// in-package test files, and the external test package if present.
func (ld *moduleLoader) units(d *pkgDir) ([]*Pkg, error) {
	var out []*Pkg
	if len(d.base) > 0 || len(d.inTest) > 0 {
		var pkg *types.Package
		var info *types.Info
		var files []*ast.File
		var err error
		if len(d.inTest) == 0 {
			// No in-package tests: reuse the memoized base check, but we
			// need its Info, so recheck once with Info collection.
			files = d.base
		} else {
			files = append(append([]*ast.File(nil), d.base...), d.inTest...)
		}
		pkg, info, err = ld.typeCheck(d.path, files)
		if err != nil {
			return nil, err
		}
		out = append(out, &Pkg{Path: d.path, Dir: d.dir, Name: d.name, Files: files, Types: pkg, Info: info})
	}
	if len(d.extTest) > 0 {
		name := d.extTest[0].Name.Name
		var imp types.Importer = ld
		if len(d.inTest) > 0 && len(d.base) > 0 {
			// export_test.go-style hooks: build the external unit against
			// the test variant of its package under test.
			imp = &variantLoader{ld: ld, target: d.path, cache: make(map[string]*types.Package)}
		}
		pkg, info, err := ld.typeCheckWith(imp, d.path+".test", d.extTest)
		if err != nil {
			return nil, err
		}
		out = append(out, &Pkg{Path: d.path + ".test", Dir: d.dir, Name: name, Files: d.extTest, Types: pkg, Info: info})
	}
	return out, nil
}
