package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// atomicDiscipline enforces per-field access discipline across the whole
// module. Every read/write of a struct field in non-test code is
// classified as
//
//   - atomic: the field's type is a sync/atomic type, or the site passes
//     &s.f to a sync/atomic function;
//   - guard-held: some mutex is held at the site — locally (lock facts,
//     lockfacts.go) or on entry, where "held on entry" is the
//     intersection of the held sets at every call site, propagated over
//     the call graph to a fixpoint (exported, address-taken and
//     test-referenced functions are roots with nothing held);
//   - bare: neither.
//
// Findings:
//
//  1. a field with any atomic access site must have no bare access —
//     mixing atomic and plain loads/stores is a data race even when the
//     plain side holds a lock the atomic side does not take;
//  2. a field listed in a //covirt:guards <field,...> directive on a
//     mutex field of the same struct must only be written while that
//     mutex is held;
//  3. inferred guards: a field (unannotated, non-atomic) written at two
//     or more sites under one mutex class must not also be written bare
//     — the bare write is a latent race the race detector only catches
//     if the schedule cooperates.
//
// Writes from the function that just allocated the struct (the value is
// still unshared) are constructor writes and exempt everywhere.
var atomicDiscipline = &Analyzer{
	Name:      checkAtomic,
	Doc:       "struct fields must not mix atomic and bare access; guarded fields are written under their mutex",
	RunModule: runAtomicDiscipline,
}

// accessKind classifies one field access site.
type accessKind int

const (
	accRead accessKind = iota
	accWrite
	accAddr   // address taken outside sync/atomic: writable elsewhere
	accAtomic // &s.f passed to a sync/atomic function
)

// fieldAccess is one access site of a field class.
type fieldAccess struct {
	class   string
	kind    accessKind
	pos     token.Pos
	node    string // enclosing graph-node key ("" if outside the graph)
	held    []string
	ctor    bool // write to a struct allocated in this function
	litSafe bool // see below: access on a loop-local/unshared value
}

// guardDecl is one //covirt:guards directive.
type guardDecl struct {
	mutexClass string
	fields     []string // protected field classes
	pos        token.Pos
}

func runAtomicDiscipline(m *Module) []Finding {
	g := m.CallGraph()
	scans := make(map[string]*lockScan, len(g.Keys()))
	declKey := make(map[*ast.FuncDecl]string)
	for _, k := range g.Keys() {
		n := g.Nodes[k]
		scans[k] = scanLocks(n.Unit, n.Decl.Body)
		declKey[n.Decl] = k
	}
	entry := heldAtEntry(g, scans)

	var out []Finding
	guards, atomicTyped := collectGuards(m, &out)

	// Gather every field access in non-test module code.
	var accesses []fieldAccess
	for _, u := range m.Units {
		if strings.HasSuffix(u.Path, ".test") {
			continue
		}
		for _, file := range u.Files {
			if isTestFile(m, file) {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := declKey[fd]
				collectAccesses(u, fd, key, scans[key], entry, atomicTyped, &accesses)
			}
		}
	}

	byClass := make(map[string][]fieldAccess)
	var classes []string
	for _, a := range accesses {
		if byClass[a.class] == nil {
			classes = append(classes, a.class)
		}
		byClass[a.class] = append(byClass[a.class], a)
	}
	sort.Strings(classes)

	guardOf := make(map[string]guardDecl)
	for _, gd := range guards {
		for _, f := range gd.fields {
			guardOf[f] = gd
		}
	}

	for _, class := range classes {
		accs := byClass[class]
		sort.Slice(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })

		// Rule 1: atomic sites poison bare access.
		var firstAtomic token.Pos
		for _, a := range accs {
			if a.kind == accAtomic {
				firstAtomic = a.pos
				break
			}
		}
		if firstAtomic != token.NoPos {
			loc := m.Fset.Position(firstAtomic)
			for _, a := range accs {
				if a.kind == accAtomic || a.ctor {
					continue
				}
				out = append(out, Finding{
					Check: checkAtomic,
					Pos:   m.Fset.Position(a.pos),
					Msg: fmt.Sprintf("field %s mixes sync/atomic access (%s:%d) with this plain %s",
						classDisplay(m, class), relPath(m, loc.Filename), loc.Line, accessVerb(a.kind)),
				})
			}
			continue
		}

		// Rule 2: annotated guard.
		if gd, ok := guardOf[class]; ok {
			for _, a := range accs {
				if a.kind != accWrite && a.kind != accAddr || a.ctor {
					continue
				}
				if !holdsClass(a.held, gd.mutexClass) {
					out = append(out, Finding{
						Check: checkAtomic,
						Pos:   m.Fset.Position(a.pos),
						Msg: fmt.Sprintf("%s to field %s outside its declared guard %s (//covirt:guards)",
							accessVerb(a.kind), classDisplay(m, class), classDisplay(m, gd.mutexClass)),
					})
				}
			}
			continue
		}

		// Rule 3: inferred guard. Count writes per held mutex class; a
		// mutex guarding >= 2 writes makes lock-free writes findings.
		lockCount := make(map[string]int)
		for _, a := range accs {
			if a.kind != accWrite || a.ctor {
				continue
			}
			for _, h := range a.held {
				lockCount[h]++
			}
		}
		var guard string
		for cls, n := range lockCount {
			if n >= 2 && (guard == "" || cls < guard) {
				guard = cls
			}
		}
		if guard == "" {
			continue
		}
		for _, a := range accs {
			if a.kind != accWrite || a.ctor || len(a.held) > 0 {
				continue
			}
			out = append(out, Finding{
				Check: checkAtomic,
				Pos:   m.Fset.Position(a.pos),
				Msg: fmt.Sprintf("write to field %s without %s, which guards %d other writes (take the lock, or declare //covirt:guards)",
					classDisplay(m, class), classDisplay(m, guard), lockCount[guard]),
			})
		}
	}
	return out
}

func accessVerb(k accessKind) string {
	switch k {
	case accWrite:
		return "write"
	case accAddr:
		return "address-taken access"
	}
	return "read"
}

func holdsClass(held []string, class string) bool {
	for _, h := range held {
		if h == class {
			return true
		}
	}
	return false
}

// heldAtEntry computes, for every graph node, the lock classes held at
// every call site targeting it (their intersection) — the forward
// dataflow of the suite. Roots (exported, address-taken, referenced from
// tests, main/init) enter with nothing held; goroutine launches and
// function-literal call sites contribute an empty (respectively
// literal-local) held set, since those bodies run on other frames.
func heldAtEntry(g *CallGraph, scans map[string]*lockScan) map[string][]string {
	entry := make(map[string][]string, len(g.Keys()))
	top := make(map[string]bool, len(g.Keys())) // true: still unconstrained
	for _, k := range g.Keys() {
		n := g.Nodes[k]
		if isDataflowRoot(n) {
			entry[k] = nil
		} else {
			top[k] = true
		}
	}
	g.Propagate(func(n *FuncNode) bool {
		if top[n.Key] {
			return false // nothing known about this node's own entry yet
		}
		s := scans[n.Key]
		changed := false
		for _, site := range n.Sites {
			var heldHere []string
			switch {
			case site.Go:
				heldHere = nil
			case site.InLit:
				heldHere = s.callHeld[site.Pos]
			case site.Defer:
				heldHere = entry[n.Key]
			default:
				heldHere = unionClasses(entry[n.Key], s.callHeld[site.Pos])
			}
			for _, callee := range site.Callees {
				cn := g.Nodes[callee]
				if cn == nil || isDataflowRoot(cn) {
					continue
				}
				if top[callee] {
					delete(top, callee)
					entry[callee] = append([]string(nil), heldHere...)
					sort.Strings(entry[callee])
					changed = true
					continue
				}
				if next := intersectClasses(entry[callee], heldHere); len(next) != len(entry[callee]) {
					entry[callee] = next
					changed = true
				}
			}
		}
		return changed
	})
	return entry
}

// isDataflowRoot reports whether the function can be entered from
// outside the analyzed call sites with no locks held.
func isDataflowRoot(n *FuncNode) bool {
	if n.AddrTaken || n.TestRef {
		return true
	}
	name := n.Fn.Name()
	if name == "main" || name == "init" {
		return true
	}
	return n.Fn.Exported()
}

func unionClasses(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, v := range b {
		out = appendMissing(out, v)
	}
	sort.Strings(out)
	return out
}

func intersectClasses(a, b []string) []string {
	var out []string
	for _, v := range a {
		if holdsClass(b, v) {
			out = append(out, v)
		}
	}
	return out
}

// collectGuards parses //covirt:guards directives on struct fields,
// reporting malformed ones, and records which field classes are typed as
// sync/atomic values or sync mutexes (exempt from access bookkeeping).
func collectGuards(m *Module, out *[]Finding) ([]guardDecl, map[string]bool) {
	var guards []guardDecl
	exempt := make(map[string]bool)
	for _, u := range m.Units {
		if strings.HasSuffix(u.Path, ".test") {
			continue
		}
		for _, file := range u.Files {
			if isTestFile(m, file) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				owner, ok := u.Info.Defs[ts.Name].(*types.TypeName)
				if !ok || owner.Pkg() == nil {
					return true
				}
				ownerClass := owner.Pkg().Path() + "." + owner.Name()
				fieldNames := make(map[string]bool)
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						fieldNames[name.Name] = true
						if t, ok := u.Info.Types[f.Type]; ok && syncExemptType(t.Type) {
							exempt[ownerClass+"."+name.Name] = true
						}
					}
				}
				for _, f := range st.Fields.List {
					protected, found := parseGuardsDirective(f)
					if !found {
						continue
					}
					if len(f.Names) != 1 {
						reportAt(m, out, f.Pos(), "//covirt:guards must annotate exactly one named mutex field")
						continue
					}
					gd := guardDecl{mutexClass: ownerClass + "." + f.Names[0].Name, pos: f.Pos()}
					for _, p := range protected {
						if !fieldNames[p] {
							reportAt(m, out, f.Pos(), fmt.Sprintf("//covirt:guards names unknown field %q of %s", p, classDisplay(m, ownerClass)))
							continue
						}
						gd.fields = append(gd.fields, ownerClass+"."+p)
					}
					guards = append(guards, gd)
				}
				return true
			})
		}
	}
	return guards, exempt
}

func reportAt(m *Module, out *[]Finding, pos token.Pos, msg string) {
	*out = append(*out, Finding{Check: checkAtomic, Pos: m.Fset.Position(pos), Msg: msg})
}

// parseGuardsDirective extracts the protected field list from a field's
// doc or line comment: //covirt:guards f1,f2 [reason...].
func parseGuardsDirective(f *ast.Field) ([]string, bool) {
	var groups []*ast.CommentGroup
	if f.Doc != nil {
		groups = append(groups, f.Doc)
	}
	if f.Comment != nil {
		groups = append(groups, f.Comment)
	}
	for _, cg := range groups {
		for _, c := range cg.List {
			rest, ok := cutDirective(c.Text, "covirt:guards")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				return nil, true // malformed: directive with no fields
			}
			var names []string
			for _, n := range strings.Split(strings.TrimSuffix(fields[0], ":"), ",") {
				if n != "" {
					names = append(names, n)
				}
			}
			return names, true
		}
	}
	return nil, false
}

// syncExemptType reports field types whose access discipline is already
// type-safe (sync/atomic values) or that are the guards themselves
// (sync primitives, accessed only through their methods).
func syncExemptType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sync/atomic":
		return true
	case "sync":
		return true
	}
	return false
}

// collectAccesses records every field access inside one declaration.
func collectAccesses(u *Pkg, fd *ast.FuncDecl, nodeKey string, scan *lockScan, entry map[string][]string, exempt map[string]bool, out *[]fieldAccess) {
	ctorVars := constructorVars(u, fd)
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		s, ok := u.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return
		}
		class, ok := fieldClassByIndex(s.Recv(), s.Index())
		if !ok || exempt[class] {
			return
		}
		if localValueAccess(u, sel, s) {
			return // a local copy: no other goroutine can observe it
		}
		kind := classifyAccess(u, sel, stack)
		if kind < 0 {
			return // intermediate hop of a longer selector: skip
		}
		var held []string
		scope := enclosingScope(fd, stack)
		if scope == fd.Body {
			held = unionClasses(entryHeld(entry, nodeKey), scanHeld(scan, scope, sel.Pos()))
		} else {
			// Inside a function literal: only the literal's own locks
			// are known to be held when it runs.
			held = scanHeld(scan, scope, sel.Pos())
		}
		*out = append(*out, fieldAccess{
			class: class,
			kind:  kind,
			pos:   sel.Pos(),
			node:  nodeKey,
			held:  held,
			ctor:  ctorVars[rootVar(u, sel)],
		})
	})
}

func entryHeld(entry map[string][]string, key string) []string {
	if key == "" {
		return nil
	}
	return entry[key]
}

func scanHeld(scan *lockScan, scope *ast.BlockStmt, pos token.Pos) []string {
	if scan == nil {
		return nil
	}
	return scan.heldAt(scope, pos)
}

// enclosingScope returns the innermost function-literal body containing
// the access, or the declaration body.
func enclosingScope(fd *ast.FuncDecl, stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			return lit.Body
		}
	}
	return fd.Body
}

// classifyAccess decides how a field selector is used. It returns -1 for
// selectors that are just hops of a longer selection path (x.a in
// x.a.b): only the full path's final field is the accessed class.
func classifyAccess(u *Pkg, sel *ast.SelectorExpr, stack []ast.Node) accessKind {
	// Skip if the parent extends the selection to a deeper field.
	if len(stack) >= 2 {
		if pSel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && pSel.X == sel {
			if ps, ok := u.Info.Selections[pSel]; ok && ps.Kind() == types.FieldVal {
				return -1
			}
		}
	}
	parent := func(i int) ast.Node {
		if len(stack) >= i+1 {
			return stack[len(stack)-1-i]
		}
		return nil
	}
	// Written?
	switch p := parent(1).(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == sel {
				return accWrite
			}
		}
	case *ast.IncDecStmt:
		if ast.Unparen(p.X) == sel {
			return accWrite
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			// &s.f: atomic if it feeds a sync/atomic call directly.
			if call, ok := parent(2).(*ast.CallExpr); ok && isAtomicCall(u, call) {
				return accAtomic
			}
			return accAddr
		}
	case *ast.RangeStmt:
		if ast.Unparen(p.Key) == sel || ast.Unparen(p.Value) == sel {
			return accWrite
		}
	}
	return accRead
}

// isAtomicCall reports a call to a sync/atomic package function.
func isAtomicCall(u *Pkg, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := u.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// constructorVars returns the local variables of fd initialized from a
// fresh allocation (composite literal, &composite, or new): writes
// through them happen before the value is shared.
func constructorVars(u *Pkg, fd *ast.FuncDecl) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !freshAlloc(u, rhs) {
				continue
			}
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := u.Info.Defs[id]; obj != nil {
					vars[obj] = true
				} else if obj := u.Info.Uses[id]; obj != nil {
					vars[obj] = true
				}
			}
		}
		return true
	})
	return vars
}

// freshAlloc reports expressions that allocate a fresh value.
func freshAlloc(u *Pkg, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.AND && freshAlloc(u, e.X)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			if _, builtin := u.Info.Uses[id].(*types.Builtin); builtin {
				return true
			}
		}
	}
	return false
}

// localValueAccess reports a field access rooted at a function-local
// variable of struct (non-pointer) type, reached through plain selectors
// with no pointer indirection: x.a.b where x is `var x T` or a value
// parameter/receiver. Such an access touches a local copy of the struct,
// so it is exempt from every discipline rule. Index expressions do not
// qualify (a slice element is shared backing), and Selection.Indirect
// rejects paths through embedded pointers.
func localValueAccess(u *Pkg, sel *ast.SelectorExpr, s *types.Selection) bool {
	if s.Indirect() {
		return false
	}
	e := ast.Expr(sel)
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			v, ok := u.Info.Uses[x].(*types.Var)
			if !ok || v.IsField() || pkgLevelVar(v) {
				return false
			}
			_, isPtr := v.Type().Underlying().(*types.Pointer)
			return !isPtr
		default:
			return false
		}
	}
}

// rootVar resolves the base identifier of a selector chain to its
// object (x in x.a.b), unwrapping parens, stars, and indexes.
func rootVar(u *Pkg, sel *ast.SelectorExpr) types.Object {
	e := ast.Expr(sel)
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return u.Info.Uses[x]
		default:
			return nil
		}
	}
}
