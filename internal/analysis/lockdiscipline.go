package analysis

import (
	"go/ast"
	"go/types"
)

// lockDiscipline enforces the repository's locking idiom:
//
//  1. every sync.Mutex/RWMutex Lock (or RLock) is paired with a deferred
//     Unlock (or RUnlock) of the same mutex later in the same function
//     body, so no early return or panic can leak a held lock — critical
//     sections that must release early are extracted into small locked
//     helpers instead;
//  2. sync.Cond.Wait is always enclosed in a for loop re-checking its
//     predicate (a bare Wait misses spurious and stolen wakeups).
var lockDiscipline = &Analyzer{
	Name: checkLock,
	Doc:  "Lock pairs with defer Unlock in the same function; Cond.Wait sits in a for loop",
	Run:  runLockDiscipline,
}

// unlockFor maps an acquire method to its release method.
var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// syncCall inspects call; if it is a method call on a sync.Mutex,
// sync.RWMutex, sync.Locker or sync.Cond it returns the receiver
// expression rendered as source text, the method name, and the receiver
// type's name ("Mutex", "RWMutex", "Locker", "Cond").
func syncCall(p *Pass, call *ast.CallExpr) (recv, method, typ string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	fn, isFn := p.Unit.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", "", false
	}
	rt := sig.Recv().Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return "", "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex", "Locker", "Cond":
		return types.ExprString(sel.X), fn.Name(), named.Obj().Name(), true
	}
	return "", "", "", false
}

func runLockDiscipline(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Unit.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					lockCheckFunc(p, fn.Body, &out)
				}
			case *ast.FuncLit:
				lockCheckFunc(p, fn.Body, &out)
				return false // the literal's own Inspect found nested lits
			}
			return true
		})
	}
	return out
}

// lockCheckFunc applies both rules to one function body, without
// descending into nested function literals (they are separate scopes with
// their own defers).
func lockCheckFunc(p *Pass, body *ast.BlockStmt, out *[]Finding) {
	type acquire struct {
		call   *ast.CallExpr
		recv   string
		method string
	}
	type release struct {
		recv   string
		method string
		pos    int
	}
	var acquires []acquire
	var deferred []release

	walkStack(body, func(n ast.Node, stack []ast.Node) {
		if insideNestedFuncLit(stack, body) {
			return
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return
		}
		recv, method, typ, ok := syncCall(p, call)
		if !ok {
			return
		}
		inDefer := len(stack) >= 2 && isDeferStmt(stack[len(stack)-2], call)
		switch {
		case typ == "Cond" && method == "Wait":
			if !enclosedInFor(stack, body) {
				p.report(out, checkLock, call,
					"%s.Wait() must run inside a for loop re-checking its predicate", recv)
			}
		case (method == "Lock" || method == "RLock") && typ != "Cond" && !inDefer:
			acquires = append(acquires, acquire{call, recv, method})
		case (method == "Unlock" || method == "RUnlock") && inDefer:
			deferred = append(deferred, release{recv, method, int(call.Pos())})
		}
	})

	for _, a := range acquires {
		want := unlockFor[a.method]
		found := false
		for _, r := range deferred {
			if r.recv == a.recv && r.method == want && r.pos > int(a.call.Pos()) {
				found = true
				break
			}
		}
		if !found {
			p.report(out, checkLock, a.call,
				"%s.%s() is not followed by defer %s.%s() in this function; use defer or extract a locked helper",
				a.recv, a.method, a.recv, want)
		}
	}
}

// isDeferStmt reports whether parent is a defer statement of call.
func isDeferStmt(parent ast.Node, call *ast.CallExpr) bool {
	d, ok := parent.(*ast.DeferStmt)
	return ok && d.Call == call
}

// insideNestedFuncLit reports whether the current node sits inside a
// function literal nested under body (such nodes belong to another scope).
func insideNestedFuncLit(stack []ast.Node, body *ast.BlockStmt) bool {
	// Find body in the stack, then look for a FuncLit deeper than it.
	started := false
	for _, n := range stack {
		if n == ast.Node(body) {
			started = true
			continue
		}
		if !started {
			continue
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// enclosedInFor reports whether the innermost statement context of the
// current node (within body, not crossing function literals) is a for or
// range loop.
func enclosedInFor(stack []ast.Node, body *ast.BlockStmt) bool {
	started := false
	inFor := false
	for _, n := range stack {
		if n == ast.Node(body) {
			started = true
			continue
		}
		if !started {
			continue
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			inFor = true
		case *ast.FuncLit:
			inFor = false // a new function scope resets the loop context
		}
	}
	return inFor
}
