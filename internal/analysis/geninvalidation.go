package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// genInvalidation guards the hot-path caching protocol: the simulation's
// software caches (translation caches, cached regions/extents — any struct
// field whose name contains "cache") are validated by generation counters,
// not by shootdown alone. A function that reads such a field without
// consulting a generation anywhere in its body is one remap away from
// serving stale state, so every read must sit in a function that also
// references a gen/Gen identifier. Writes are exempt (filling a cache is
// harmless), as are invalidation-style calls (invalidate/clear/flush/
// reset) — dropping entries never needs validation — and functions whose
// own name marks them as invalidators.
var genInvalidation = &Analyzer{
	Name: checkGenInval,
	Doc:  "cache-named fields must only be read in functions that consult a generation counter",
	Run:  runGenInvalidation,
}

// invalidationVerbs are method-name markers for operations that drop cache
// state rather than consume it.
var invalidationVerbs = []string{"invalidate", "clear", "flush", "reset"}

func isInvalidationName(name string) bool {
	l := strings.ToLower(name)
	for _, v := range invalidationVerbs {
		if strings.Contains(l, v) {
			return true
		}
	}
	return false
}

// mentionsGen reports whether any identifier in the body references a
// generation (contains "gen", case-insensitive): a Gen() accessor, a
// cached gen field, a local holding one.
func mentionsGen(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "gen") {
			found = true
			return false
		}
		return !found
	})
	return found
}

func runGenInvalidation(p *Pass) []Finding {
	if !isSimPackage(p.Unit.Path) {
		return nil
	}
	var out []Finding
	for _, file := range p.Unit.Files {
		if isTestFile(p.Mod, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isInvalidationName(fd.Name.Name) || mentionsGen(fd.Body) {
				continue
			}
			out = append(out, p.cacheReads(fd)...)
		}
	}
	return out
}

// cacheReads reports reads of cache-named struct fields within fd, which
// has already been established to contain no generation reference.
func (p *Pass) cacheReads(fd *ast.FuncDecl) []Finding {
	// Selector expressions appearing as assignment targets (cache fills)
	// or as receivers of invalidation calls are exempt.
	exempt := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok {
					exempt[sel] = true
				}
			}
		case *ast.CallExpr:
			// x.cache.invalidate(): the method selector's receiver is the
			// cache field selector itself.
			if m, ok := n.Fun.(*ast.SelectorExpr); ok && isInvalidationName(m.Sel.Name) {
				if recv, ok := m.X.(*ast.SelectorExpr); ok {
					exempt[recv] = true
				}
			}
		}
		return true
	})
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || exempt[sel] {
			return true
		}
		if !strings.Contains(strings.ToLower(sel.Sel.Name), "cache") {
			return true
		}
		// Only struct-field reads count; selecting a method (e.g. an
		// InvalidateFooCache call) is not cache-state consumption.
		s, ok := p.Unit.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		p.report(&out, checkGenInval, sel,
			"%s is read without generation validation: function %s never consults a gen counter",
			sel.Sel.Name, fd.Name.Name)
		return true
	})
	return out
}
