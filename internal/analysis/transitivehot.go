package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// transitiveHot extends the hotalloc and determinism invariants through
// the call graph: a function reachable from inside a loop of a
// //covirt:hot function executes once per steady-state iteration, so it
// must not allocate (make/append/map literals — anywhere in its body,
// not just its own loops) and must not consult wall-clock time or the
// global math/rand source, regardless of which package it lives in.
// Dynamic calls are widened (callgraph.go), so an interface method or
// function value invoked from a hot loop pulls every possible
// implementation into the checked set.
//
// Hot functions themselves are exempt here: hotalloc and determinism
// check their bodies directly, with loop-local precision.
//
// A //covirt:allow transitive-hot directive on a call-site line is a
// traversal barrier: that call is vetted as leaving the hot path (the
// canonical case is interrupt dispatch, which the simulator models as a
// synchronous call but which charges interrupt-context cycles, not the
// hot loop's budget).
var transitiveHot = &Analyzer{
	Name:      checkTransHot,
	Doc:       "functions reachable from //covirt:hot loops must be allocation-free and deterministic",
	RunModule: runTransitiveHot,
}

// hotStep is one call edge of a reachability witness.
type hotStep struct {
	caller string // display name
	callee string // display name
	pos    token.Pos
}

func runTransitiveHot(m *Module) []Finding {
	g := m.CallGraph()
	allow := buildAllowIndex(m)

	// BFS from the in-loop call sites of every hot function. The first
	// (deterministic: hot roots and callees in key order) discovery of a
	// node fixes its witness chain.
	type qe struct {
		key  string
		path []hotStep
	}
	seen := make(map[string]bool)
	var queue []qe
	for _, k := range g.Keys() {
		n := g.Nodes[k]
		if !n.Hot {
			continue
		}
		for _, site := range n.Sites {
			if !site.InLoop || allow.barrier(m, site.Pos, checkTransHot) {
				continue
			}
			for _, callee := range site.Callees {
				if seen[callee] {
					continue
				}
				seen[callee] = true
				queue = append(queue, qe{callee, []hotStep{{
					caller: n.Display(m), callee: g.Nodes[callee].Display(m), pos: site.Pos,
				}}})
			}
		}
	}

	var out []Finding
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		n := g.Nodes[e.key]
		if !n.Hot {
			out = append(out, checkHotReached(m, n, e.path)...)
		}
		for _, site := range n.Sites {
			if allow.barrier(m, site.Pos, checkTransHot) {
				continue
			}
			for _, callee := range site.Callees {
				if seen[callee] {
					continue
				}
				seen[callee] = true
				step := hotStep{caller: n.Display(m), callee: g.Nodes[callee].Display(m), pos: site.Pos}
				queue = append(queue, qe{callee, append(append([]hotStep(nil), e.path...), step)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

// checkHotReached scans one reached (non-hot) function for allocations
// and non-determinism.
func checkHotReached(m *Module, n *FuncNode, path []hotStep) []Finding {
	u := n.Unit
	witness := renderHotPath(m, path)
	hotRoot := path[0].caller
	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Check:   checkTransHot,
			Pos:     m.Fset.Position(pos),
			Msg:     fmt.Sprintf(format, args...) + fmt.Sprintf(" in %s, reachable from a loop of hot function %s", n.Display(m), hotRoot),
			Witness: witness,
		})
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(node.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "make" || fun.Name == "append" {
					if _, builtin := u.Info.Uses[fun].(*types.Builtin); builtin {
						report(node.Pos(), "%s", fun.Name)
					}
				}
			case *ast.SelectorExpr:
				fn, ok := u.Info.Uses[fun.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
				if banned := bannedFuncs[fn.Pkg().Path()]; banned != nil && banned[fn.Name()] {
					report(node.Pos(), "%s.%s", fn.Pkg().Name(), fn.Name())
				}
			}
		case *ast.CompositeLit:
			if _, ok := node.Type.(*ast.MapType); ok {
				report(node.Pos(), "map literal")
			}
		}
		return true
	})
	return out
}

// renderHotPath renders the witness call chain, one step per line.
func renderHotPath(m *Module, path []hotStep) []string {
	var out []string
	for _, s := range path {
		p := m.Fset.Position(s.pos)
		out = append(out, fmt.Sprintf("%s calls %s at %s:%d", s.caller, s.callee, relPath(m, p.Filename), p.Line))
	}
	return out
}
