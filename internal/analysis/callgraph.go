package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide call graph that the interprocedural
// analyzers (lock-order, atomic-discipline, transitive-hot) run over, and
// the small fixpoint driver that propagates dataflow facts across it.
//
// Nodes are the module's declared functions and methods, keyed by their
// go/types full name (stable across the loader's per-unit type-check
// universes). Function literals are inlined into their enclosing
// declaration: calls made inside a literal are attributed to the
// declaring function, and a literal used as a value registers its
// encloser as a widening target — conservative in the safe direction for
// every client (reachability and lock summaries over-approximate).
//
// Dynamic calls are widened, never dropped:
//
//   - a call through an interface method resolves to every module method
//     with the same name and receiver-less signature;
//   - a call through a function value (variable, field, parameter)
//     resolves to every module function whose address is taken somewhere
//     and whose signature matches.
//
// Function literals are NOT widening targets: their bodies are already
// attributed to their enclosing declaration (calls, lock events,
// allocations), so registering the encloser again under the literal's
// signature would only manufacture edges — with common signatures like
// func(), nearly every function in the module becomes the callee of
// every dynamic call. The accepted imprecision is the ordering of a
// literal's effects relative to the dynamic call site that runs it.
//
// Signatures are compared as package-path-qualified strings so objects
// from different type-check universes compare correctly.

// CallSite is one call expression inside a function body, with the
// conservatively widened set of module-internal callees.
type CallSite struct {
	// Pos is the call position.
	Pos token.Pos
	// Callees are the node keys this call may reach, sorted.
	Callees []string
	// InLoop reports a for/range ancestor inside the declaration
	// (function literals do not reset it: a loop outside a literal still
	// iterates the literal's body).
	InLoop bool
	// InLit reports that the call sits inside a nested function literal,
	// i.e. it may run on another frame or goroutine than the declaration.
	InLit bool
	// Go and Defer report invocation via go/defer statements.
	Go    bool
	Defer bool
}

// FuncNode is one declared function or method.
type FuncNode struct {
	Key  string
	Fn   *types.Func
	Decl *ast.FuncDecl
	Unit *Pkg
	// Sites are the node's call sites in source order.
	Sites []*CallSite
	// Callers are the keys of nodes with a site targeting this node.
	Callers []string
	// AddrTaken reports the function is used as a value somewhere
	// (callable from anywhere a matching function type flows).
	AddrTaken bool
	// TestRef reports a reference from a _test.go file: dataflow roots,
	// since tests call into the module with no locks held.
	TestRef bool
	// Hot reports a //covirt:hot directive on the declaration.
	Hot bool
}

// Display renders the node key for finding messages: the full name with
// the module path prefix trimmed ("(*internal/hw.CPU).Access").
func (n *FuncNode) Display(mod *Module) string {
	return strings.ReplaceAll(n.Key, mod.Path+"/", "")
}

// CallGraph is the module-wide call graph.
type CallGraph struct {
	mod   *Module
	Nodes map[string]*FuncNode
	keys  []string // sorted node keys, the deterministic iteration order
}

// Keys returns the sorted node keys.
func (g *CallGraph) Keys() []string { return g.keys }

// Propagate runs update over every node, in key order, repeatedly until
// a full pass reports no change, and returns the number of passes. It is
// the suite's dataflow driver: update reads the facts of a node's
// neighbors (callees for backward summaries, callers for forward entry
// facts) and returns whether the node's own fact changed. Monotone
// updates over finite fact domains terminate.
func (g *CallGraph) Propagate(update func(n *FuncNode) bool) int {
	for pass := 1; ; pass++ {
		changed := false
		for _, k := range g.keys {
			if update(g.Nodes[k]) {
				changed = true
			}
		}
		if !changed {
			return pass
		}
	}
}

// CallGraph builds (once) and returns the module's call graph.
func (m *Module) CallGraph() *CallGraph {
	if m.cg == nil {
		m.cg = buildCallGraph(m)
	}
	return m.cg
}

// funcKey returns the stable node key of fn: the types.Func full name,
// which renders identically for the same declaration across type-check
// universes (package paths qualify both receiver and name).
func funcKey(fn *types.Func) string {
	return fn.Origin().FullName()
}

// sigKey renders a signature with package-path qualification, receiver
// excluded, for cross-universe widening comparisons.
func sigKey(sig *types.Signature) string {
	q := func(p *types.Package) string { return p.Path() }
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), q))
	}
	b.WriteByte(')')
	if sig.Variadic() {
		b.WriteString("...")
	}
	b.WriteByte('(')
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), q))
	}
	b.WriteByte(')')
	return b.String()
}

// inModule reports whether fn is declared in this module.
func (m *Module) inModule(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == m.Path || strings.HasPrefix(p, m.Path+"/")
}

// graphBuilder accumulates the indices needed for widening.
type graphBuilder struct {
	mod *Module
	g   *CallGraph
	// methodsBySig: method name + sigKey -> candidate node keys.
	methodsBySig map[string][]string
	// valuesBySig: sigKey -> node keys of address-taken functions.
	valuesBySig map[string][]string
}

func buildCallGraph(m *Module) *CallGraph {
	b := &graphBuilder{
		mod:          m,
		g:            &CallGraph{mod: m, Nodes: make(map[string]*FuncNode)},
		methodsBySig: make(map[string][]string),
		valuesBySig:  make(map[string][]string),
	}
	// Pass 1: nodes and widening indices. Only base (non-".test") units
	// declare graph nodes; their non-test files are the production code.
	for _, u := range m.Units {
		if strings.HasSuffix(u.Path, ".test") {
			continue
		}
		for _, file := range u.Files {
			if isTestFile(m, file) {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKey(fn)
				if _, dup := b.g.Nodes[key]; dup {
					// Multiple init functions share a full name; keep
					// them distinct by position.
					key = fmt.Sprintf("%s#%d", key, m.Fset.Position(fd.Pos()).Line)
				}
				node := &FuncNode{Key: key, Fn: fn, Decl: fd, Unit: u, Hot: isHotMarked(fd)}
				b.g.Nodes[key] = node
				sig := fn.Type().(*types.Signature)
				if sig.Recv() != nil {
					b.methodsBySig[fn.Name()+sigKey(sig)] = append(b.methodsBySig[fn.Name()+sigKey(sig)], key)
				}
			}
		}
	}
	for k := range b.g.Nodes {
		b.g.keys = append(b.g.keys, k)
	}
	sort.Strings(b.g.keys)
	// Pass 2: address-taken functions, literal value registration, and
	// test references.
	for _, u := range m.Units {
		isExtTest := strings.HasSuffix(u.Path, ".test")
		for _, file := range u.Files {
			inTest := isExtTest || isTestFile(m, file)
			b.scanValues(u, file, inTest)
		}
	}
	for sig, keys := range b.valuesBySig {
		sort.Strings(keys)
		b.valuesBySig[sig] = dedupSorted(keys)
	}
	for sig, keys := range b.methodsBySig {
		sort.Strings(keys)
		b.methodsBySig[sig] = dedupSorted(keys)
	}
	// Pass 3: call sites.
	for _, k := range b.g.keys {
		n := b.g.Nodes[k]
		b.collectSites(n)
	}
	// Reverse edges.
	for _, k := range b.g.keys {
		for _, s := range b.g.Nodes[k].Sites {
			for _, callee := range s.Callees {
				if cn := b.g.Nodes[callee]; cn != nil {
					cn.Callers = append(cn.Callers, k)
				}
			}
		}
	}
	for _, k := range b.g.keys {
		n := b.g.Nodes[k]
		sort.Strings(n.Callers)
		n.Callers = dedupSorted(n.Callers)
	}
	return b.g
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// nodeFor resolves a used *types.Func (possibly from another type-check
// universe) to its graph node key, or "" when it has no body in the
// module.
func (b *graphBuilder) nodeFor(fn *types.Func) string {
	if !b.mod.inModule(fn) {
		return ""
	}
	key := funcKey(fn)
	if _, ok := b.g.Nodes[key]; ok {
		return key
	}
	return ""
}

// scanValues walks one file recording function values: a reference to a
// declared function that is not the operand of a call marks it
// address-taken (and a widening target under its signature). Test files
// mark referenced functions as test roots instead.
func (b *graphBuilder) scanValues(u *Pkg, file *ast.File, inTest bool) {
	walkStack(file, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.Ident:
			fn, ok := u.Info.Uses[n].(*types.Func)
			if !ok {
				return
			}
			key := b.nodeFor(fn)
			if key == "" {
				return
			}
			if inTest {
				b.g.Nodes[key].TestRef = true
				return
			}
			if isCallOperand(stack) {
				return
			}
			b.g.Nodes[key].AddrTaken = true
			if fn.Name() == "main" || fn.Name() == "init" {
				return // referenced, but never callable through a value
			}
			if tv, ok := u.Info.Types[valueExpr(stack)]; ok {
				if sig, ok := tv.Type.(*types.Signature); ok {
					b.valuesBySig[sigKey(sig)] = append(b.valuesBySig[sigKey(sig)], key)
				}
			}
		}
	})
}

// valueExpr returns the outermost expression the current identifier is
// the value of (unwrapping the selector it terminates, if any).
func valueExpr(stack []ast.Node) ast.Expr {
	n := stack[len(stack)-1].(ast.Expr)
	if len(stack) >= 2 {
		if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.Sel == n {
			return sel
		}
	}
	return n
}

// isCallOperand reports whether the expression ending the stack is (the
// function operand of) a call: f(...) or x.f(...), through parens.
func isCallOperand(stack []ast.Node) bool {
	i := len(stack) - 1
	expr := stack[i].(ast.Node)
	for i--; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.SelectorExpr:
			if id, ok := expr.(*ast.Ident); ok && parent.Sel == id {
				expr = parent
				continue
			}
			return false
		case *ast.ParenExpr:
			expr = parent
			continue
		case *ast.CallExpr:
			return parent.Fun == expr
		default:
			return false
		}
	}
	return false
}

// collectSites walks n's body recording every call expression with its
// widened callee set and context attributes. Function-literal bodies are
// included (attributed to n).
func (b *graphBuilder) collectSites(n *FuncNode) {
	u := n.Unit
	walkStack(n.Decl.Body, func(node ast.Node, stack []ast.Node) {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return
		}
		callees := b.calleesOf(u, call)
		if len(callees) == 0 {
			return
		}
		site := &CallSite{Pos: call.Pos(), Callees: callees}
		for i, a := range stack[:len(stack)-1] {
			switch a := a.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				site.InLoop = true
			case *ast.FuncLit:
				site.InLit = true
			case *ast.GoStmt:
				if i == len(stack)-2 && a.Call == call {
					site.Go = true
				}
			case *ast.DeferStmt:
				if i == len(stack)-2 && a.Call == call {
					site.Defer = true
				}
			}
		}
		n.Sites = append(n.Sites, site)
	})
}

// calleesOf resolves one call expression to its (widened) module-internal
// callee keys.
func (b *graphBuilder) calleesOf(u *Pkg, call *ast.CallExpr) []string {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
		// Interface dispatch: widen by method name + signature.
		if sel, ok := u.Info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				fn, ok := sel.Obj().(*types.Func)
				if !ok {
					return nil
				}
				sig, _ := fn.Type().(*types.Signature)
				if sig == nil {
					return nil
				}
				return append([]string(nil), b.methodsBySig[fn.Name()+sigKey(sig)]...)
			}
		}
	case *ast.FuncLit:
		return nil // immediately invoked: its body is inlined already
	default:
		// Dynamic call through an arbitrary expression (map/slice of
		// funcs, call result): widen by signature.
		return b.widenDynamic(u, fun)
	}
	switch obj := u.Info.Uses[id].(type) {
	case *types.Func:
		sig, _ := obj.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil && obj.Pkg() != nil && !b.mod.inModule(obj) {
			return nil // external (stdlib) function: no module body
		}
		if key := b.nodeFor(obj); key != "" {
			return []string{key}
		}
		return nil
	case *types.Builtin, *types.TypeName, nil:
		return nil
	default:
		// A func-typed variable, field, or parameter: dynamic call.
		return b.widenDynamic(u, fun)
	}
}

// widenDynamic widens a call through a function value to every
// address-taken module function with the same signature.
func (b *graphBuilder) widenDynamic(u *Pkg, fun ast.Expr) []string {
	tv, ok := u.Info.Types[fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return append([]string(nil), b.valuesBySig[sigKey(sig)]...)
}
