// Package analysis implements covirt-vet, the repository's domain-specific
// static-analysis suite. It is built purely on the standard library
// (go/parser, go/types, go/token, go/ast): packages are loaded and
// type-checked by this package itself, so the module can stay free of
// external dependencies.
//
// Each analyzer mechanically enforces one of the simulation's correctness
// invariants (see DESIGN.md "Static analysis & invariants"):
//
//   - physmem-errcheck: errors from internal/hw accessors must not be
//     discarded — a dropped bus error silently corrupts the simulation.
//   - lock-discipline: every mutex acquisition pairs with a deferred
//     release in the same function, and sync.Cond.Wait sits in a for loop.
//   - determinism: simulation packages must not consult wall-clock time or
//     the global math/rand source; cycle accounting must be reproducible.
//   - cost-accounting: every exported field of the hw.Costs cycle model is
//     charged by some simulation code — dead entries drift from the paper.
//   - queue-protocol: the controller↔hypervisor command-queue shared-memory
//     layout is owned solely by cmdqueue.go.
//   - ledger-conservation: resources carved from the Pisces ledger must be
//     bound to an owner — a discarded AllocMemory/AllocCores result leaks
//     memory or cores from the accounting.
//   - trace-coverage: every VM-exit reason and Hobbes event kind must reach
//     a trace emission site — the enum needs a Record call fed by its
//     String method, and each constant must be used by non-test code.
//   - hotalloc: functions marked //covirt:hot are steady-state hot paths
//     and must not allocate (make/append/map literals) inside their loops.
//
// Three module-scope analyzers run interprocedurally, over a call graph
// of the whole module with conservatively widened dynamic calls
// (callgraph.go) and a fixpoint dataflow driver:
//
//   - lock-order: the module-global lock-ordering graph (which lock
//     classes are acquired while which are held, through call chains)
//     must be acyclic — a cycle is a potential deadlock, reported with
//     the witness call chain establishing each edge.
//   - atomic-discipline: a struct field must not mix sync/atomic and
//     plain access; fields declared guarded by a mutex
//     (//covirt:guards <field,...> on the mutex field) are only written
//     with that mutex held, and a consistently lock-guarded field
//     written once without the lock is reported as a latent race.
//   - transitive-hot: everything reachable from the loops of a
//     //covirt:hot function must stay allocation-free and must not
//     consult wall-clock time or global math/rand — the hotalloc and
//     determinism invariants extended through the call graph.
//   - cap-discipline: every call chain reaching a resource-mutating sink
//     (EPT map/unmap, IPI/I-O grant tables, XEMEM registry, co-kernel
//     memory map) must name an internal/authority capability somewhere,
//     or carry a reviewed //covirt:ambient <reason> annotation.
//
// Vetted exceptions are annotated in the source with a directive comment
// on (or immediately above) the offending line:
//
//	//covirt:allow <check>[,<check>...] <reason>
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Finding is one reported violation.
type Finding struct {
	Check string
	Pos   token.Position
	Msg   string
	// Witness, for interprocedural findings, is the call/acquire chain
	// establishing the violation, one human-readable step per entry.
	Witness []string
}

// String renders the finding in the conventional file:line:col form,
// with witness steps indented below.
func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
	for _, w := range f.Witness {
		s += "\n\t" + w
	}
	return s
}

// Pass is the per-unit analysis context handed to analyzers.
type Pass struct {
	Mod  *Module
	Unit *Pkg
}

// report appends a finding for node n.
func (p *Pass) report(out *[]Finding, check string, n ast.Node, format string, args ...any) {
	*out = append(*out, Finding{
		Check: check,
		Pos:   p.Mod.Fset.Position(n.Pos()),
		Msg:   fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check. Exactly one of Run (per package unit) or
// RunModule (once per module, for cross-package invariants) is set.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(p *Pass) []Finding
	RunModule func(m *Module) []Finding
}

// Analyzers lists every check in the suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		physmemErrcheck,
		lockDiscipline,
		determinism,
		costAccounting,
		queueProtocol,
		ledgerConservation,
		traceCoverage,
		genInvalidation,
		hotalloc,
		lockOrder,
		atomicDiscipline,
		transitiveHot,
		capDiscipline,
	}
}

// byName resolves a comma-separated check selection.
func byName(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return Analyzers(), nil
	}
	all := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		all[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := all[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown check %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run loads the module at or above root and runs the named checks (all of
// them when names is empty). Findings suppressed by //covirt:allow
// directives are dropped. The returned findings are sorted by position.
func Run(root string, names []string) ([]Finding, *Module, error) {
	mod, err := LoadModule(root)
	if err != nil {
		return nil, nil, err
	}
	findings, err := RunModuleChecks(mod, names)
	return findings, mod, err
}

// CheckTime records one analyzer's wall-clock cost over a module.
type CheckTime struct {
	Name    string
	Elapsed time.Duration
}

// RunModuleChecks runs the named checks over an already-loaded module.
func RunModuleChecks(mod *Module, names []string) ([]Finding, error) {
	findings, _, err := RunModuleChecksTimed(mod, names)
	return findings, err
}

// RunModuleChecksTimed is RunModuleChecks, also reporting per-analyzer
// wall-clock times (in suite order). The first interprocedural analyzer
// to run pays for the shared call-graph construction.
func RunModuleChecksTimed(mod *Module, names []string) ([]Finding, []CheckTime, error) {
	checks, err := byName(names)
	if err != nil {
		return nil, nil, err
	}
	var findings []Finding
	var times []CheckTime
	for _, a := range checks {
		start := time.Now()
		if a.RunModule != nil {
			findings = append(findings, a.RunModule(mod)...)
		} else {
			for _, u := range mod.Units {
				findings = append(findings, a.Run(&Pass{Mod: mod, Unit: u})...)
			}
		}
		times = append(times, CheckTime{Name: a.Name, Elapsed: time.Since(start)})
	}
	findings = suppress(mod, findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return findings, times, nil
}

// allowKey identifies one line of one file.
type allowKey struct {
	file string
	line int
}

// allowIndex maps file:line to the set of checks allowed there.
type allowIndex map[allowKey]map[string]bool

// buildAllowIndex collects every //covirt:allow directive in the module.
// It is built once per module (lazily) and shared: the suppression pass
// uses it to drop findings, and interprocedural analyzers use it as a
// traversal barrier — an allow on a call-site line vets everything
// beyond that call as off-path for the named checks.
func buildAllowIndex(mod *Module) allowIndex {
	if mod.allow != nil {
		return mod.allow
	}
	allowed := make(allowIndex)
	for _, u := range mod.Units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					checks, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					k := allowKey{pos.Filename, pos.Line}
					if allowed[k] == nil {
						allowed[k] = make(map[string]bool)
					}
					for _, ch := range checks {
						allowed[k][ch] = true
					}
				}
			}
		}
	}
	mod.allow = allowed
	return allowed
}

// allows reports whether check is allowed at file:line, by a directive
// on that line or the line directly above.
func (a allowIndex) allows(file string, line int, check string) bool {
	for _, l := range [2]int{line, line - 1} {
		if m := a[allowKey{file, l}]; m != nil && (m[check] || m["all"]) {
			return true
		}
	}
	return false
}

// barrier reports whether a //covirt:allow for check sits on the call
// site at pos: interprocedural analyzers stop traversing there.
func (a allowIndex) barrier(mod *Module, pos token.Pos, check string) bool {
	p := mod.Fset.Position(pos)
	return a.allows(p.Filename, p.Line, check)
}

// suppress drops findings covered by a //covirt:allow directive on the
// same line or the line directly above.
func suppress(mod *Module, findings []Finding) []Finding {
	allowed := buildAllowIndex(mod)
	out := findings[:0]
	for _, f := range findings {
		if allowed.allows(f.Pos.Filename, f.Pos.Line, f.Check) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// parseAllow extracts the check names from a //covirt:allow directive.
func parseAllow(text string) ([]string, bool) {
	rest, ok := cutDirective(text, "covirt:allow")
	if !ok {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	var checks []string
	for _, c := range strings.Split(strings.TrimSuffix(fields[0], ":"), ",") {
		if c != "" {
			checks = append(checks, c)
		}
	}
	return checks, len(checks) > 0
}

// cutDirective strips a //name directive prefix from a comment, requiring
// a word boundary after the name (so covirt:allowed is not covirt:allow).
func cutDirective(text, name string) (string, bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), name)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	return rest, true
}

// isTestFile reports whether the file (by position) is a _test.go file.
func isTestFile(mod *Module, f *ast.File) bool {
	return strings.HasSuffix(mod.Fset.Position(f.Pos()).Filename, "_test.go")
}

// fileBase returns the base filename of f.
func fileBase(mod *Module, f *ast.File) string {
	return filepath.Base(mod.Fset.Position(f.Pos()).Filename)
}

// walkStack traverses root, invoking fn with each node and the stack of
// its ancestors (outermost first, n last).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		fn(n, stack)
		return true
	})
}

// simPackages are the module-relative package suffixes whose cycle
// accounting must be deterministic and whose hw errors are load-bearing.
var simPackages = []string{
	"internal/hw",
	"internal/vmx",
	"internal/covirt",
	"internal/pisces",
	"internal/kitten",
	"internal/xemem",
	"internal/cluster",
}

// isSimPackage reports whether the unit belongs to the simulation core
// (harness, CLI, trace and workload-driver packages are exempt).
func isSimPackage(path string) bool {
	path = strings.TrimSuffix(path, ".test")
	for _, s := range simPackages {
		if strings.HasSuffix(path, s) || strings.Contains(path, "/"+s+"/") {
			return true
		}
	}
	return false
}

// Check name constants, shared between the Analyzer declarations and
// their run functions (avoiding initialization cycles).
const (
	checkPhysmem       = "physmem-errcheck"
	checkLock          = "lock-discipline"
	checkDeterminism   = "determinism"
	checkCost          = "cost-accounting"
	checkQueue         = "queue-protocol"
	checkLedger        = "ledger-conservation"
	checkTrace         = "trace-coverage"
	checkGenInval      = "gen-invalidation"
	checkHotalloc      = "hotalloc"
	checkLockOrder     = "lock-order"
	checkAtomic        = "atomic-discipline"
	checkTransHot      = "transitive-hot"
	checkCapDiscipline = "cap-discipline"
)
