package harness

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"covirt/internal/covirt"
	"covirt/internal/hobbes"
	"covirt/internal/hw"
	"covirt/internal/testbed"
	"covirt/internal/workloads"
)

func init() {
	All = append(All, Experiment{
		ID:    "ctl-saturation",
		Title: "Extension: control-plane saturation — batched ingest + epoch-coalesced shootdowns vs per-event apply",
		Run:   RunCtlSaturation,
	})
}

// ctlSatBatch is the submission batch size of the batched leg: each batch
// becomes one shootdown epoch (one merged flush per core) instead of one
// flush per event per core.
const ctlSatBatch = 32

// ctlSatPairs is the number of add/remove pairs driven per enclave.
const ctlSatPairs = 256

// ctlSatEnclaves returns the enclave count per leg: every enclave is an
// independent node job, so the stock tier stays interactive while the full
// tier drives the tentpole scale (2048 enclaves x 512 events x 2 legs ≈
// 2M control-plane events).
func ctlSatEnclaves(opt Options) int {
	if opt.Full {
		return 2048
	}
	return 16
}

// ctlSatMode is one leg of the saturation comparison.
type ctlSatMode struct {
	name  string
	batch int // events per submission batch (1 = the per-event baseline)
}

// RunCtlSaturation drives resource-assignment storms (memory grant +
// revoke pairs) through the full Hobbes→Covirt control plane and compares
// the per-event baseline against batched ingest. Every metric derives from
// simulated cycles charged on the event path — per-enclave jobs are
// deterministic, so the table is byte-identical at any -parallel. Apply
// latency is the cycle cost a revoke event accumulates across the
// controller's unmap + shootdown path; events/sec is the event count over
// the control plane's busy cycles. Repetitions would reproduce identical
// rows (the path is fully deterministic), so each leg runs once.
func RunCtlSaturation(opt Options, w io.Writer) error {
	modes := []ctlSatMode{{"per-event", 1}, {"batched", ctlSatBatch}}
	enclaves := ctlSatEnclaves(opt)

	var jobs []*Job
	for _, m := range modes {
		for e := 0; e < enclaves; e++ {
			batch := m.batch
			jobs = append(jobs, &Job{
				Experiment: fmt.Sprintf("ctl-saturation/%s", m.name),
				Config:     CfgNative, Layout: SingleCore, Rep: e,
				Run: func(j *Job) (*workloads.Result, error) {
					return runCtlSatJob(batch, ctlSatPairs)
				},
			})
		}
	}
	results := opt.engine().Run(jobs)
	if err := FirstErr(results); err != nil {
		return err
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tenclaves\tevents\tevents/sec\tp50 apply (us)\tp99 apply (us)\tflush cmds\tflush saved")
	eps := make([]float64, len(modes))
	i := 0
	for mi, m := range modes {
		var events, cycles, flushCmds, flushSaved float64
		var p50, p99 float64
		for e := 0; e < enclaves; e++ {
			r := results[i].Res
			i++
			events += r.Metric("events")
			cycles += r.Metric("ctl_cycles")
			flushCmds += r.Metric("flush_cmds")
			flushSaved += r.Metric("flush_saved")
			if v := r.Metric("p50_us"); v > p50 {
				p50 = v
			}
			if v := r.Metric("p99_us"); v > p99 {
				p99 = v
			}
		}
		eps[mi] = events / (cycles / workloads.CyclesPerSecond)
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.3f\t%.3f\t%.0f\t%.0f\n",
			m.name, enclaves, events, eps[mi], p50, p99, flushCmds, flushSaved)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "batched speedup: %.1fx events/sec over per-event\n", eps[1]/eps[0])
	return nil
}

// CtlSatLeg runs one control-plane saturation leg against a single enclave
// and returns its raw result (the bench.sh control-plane tier reports
// events/sec and p99 from it). batch 1 is the per-event baseline; larger
// values submit that many grant/revoke events per batch, one shootdown
// epoch each.
func CtlSatLeg(batch, pairs int) (*workloads.Result, error) {
	return runCtlSatJob(batch, pairs)
}

// runCtlSatJob drives one enclave's event stream: pairs memory grants each
// followed by a revoke, submitted in batches of batch events (1 = the
// per-event baseline path). It returns the control plane's cycle charges
// and queue/ingest counters.
func runCtlSatJob(batch, pairs int) (*workloads.Result, error) {
	spec := testbed.Spec{
		Machine:      hw.MachineSpec{NumNodes: 1, CoresPerNode: 5, MemPerNode: 1 << 30},
		OfflineCores: []int{1, 2, 3, 4},
		OfflineMem:   map[int]uint64{0: 256 << 20},
		Covirt:       true,
		Features:     covirt.FeaturesMem,
		Guests: []testbed.Guest{{
			Name: "ctlsat", Cores: 4, Nodes: []int{0}, MemBytes: 32 << 20,
		}},
	}
	n, err := spec.Build()
	if err != nil {
		return nil, err
	}
	defer n.Close()
	enc := n.Enc()

	// Latency probe: subscribed after the controller, so each event's Cost
	// has accumulated the full unmap + shootdown charge by the time it
	// arrives here. Revoke-side events are the apply-latency population;
	// grant-side and flush-sweep costs still count toward busy cycles.
	var applyCosts []uint64
	var ctlCycles uint64
	n.Host.Master.Bus.Subscribe(func(ev *hobbes.Event) error {
		if ev.Enclave != enc {
			return nil
		}
		switch ev.Kind {
		case hobbes.EvMemAddPre, hobbes.EvIngestFlush:
			ctlCycles += ev.Cost
		case hobbes.EvMemRemovePost:
			ctlCycles += ev.Cost
			applyCosts = append(applyCosts, ev.Cost)
		}
		return nil
	})

	fw := n.Host.Pisces
	for done := 0; done < pairs; {
		bn := batch
		if bn > pairs-done {
			bn = pairs - done
		}
		exts := make([]hw.Extent, 0, bn)
		for i := 0; i < bn; i++ {
			ext, err := fw.AddMemory(enc, 0, hw.PageSize2M)
			if err != nil {
				return nil, err
			}
			exts = append(exts, ext)
		}
		if bn == 1 {
			err = fw.RemoveMemory(enc, exts[0])
		} else {
			err = fw.RemoveMemoryBatch(enc, exts)
		}
		if err != nil {
			return nil, err
		}
		done += bn
	}

	qs := n.Ctrl.QueueStatsFor(enc.ID)
	if qs == nil {
		return nil, fmt.Errorf("ctl-saturation: no queue stats for enclave %d", enc.ID)
	}
	return &workloads.Result{
		Name: "ctl-saturation", Threads: 1, Cycles: ctlCycles,
		Metrics: map[string]float64{
			"events":       float64(2 * pairs),
			"ctl_cycles":   float64(ctlCycles),
			"p50_us":       pctileCycles(applyCosts, 0.50) / workloads.CyclesPerSecond * 1e6,
			"p99_us":       pctileCycles(applyCosts, 0.99) / workloads.CyclesPerSecond * 1e6,
			"flush_cmds":   float64(qs.Ingest.FlushCmds),
			"flush_saved":  float64(qs.Ingest.FlushCmdsSaved),
			"stall_cycles": float64(qs.Ingest.StallCycles),
		},
	}, nil
}

// pctileCycles returns the p-quantile (0 < p <= 1) of xs by the
// nearest-rank method, without mutating xs.
func pctileCycles(xs []uint64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]uint64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return float64(s[idx])
}
