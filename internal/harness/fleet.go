package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"covirt/internal/cluster"
	"covirt/internal/workloads"
)

func init() {
	All = append(All,
		Experiment{
			ID:    "fleet-mttr",
			Title: "Extension: fleet-wide MTTR — correlated node failures and re-placement across a federated fleet",
			Run:   RunFleetMTTR,
		},
		Experiment{
			ID:    "fleet-upgrade",
			Title: "Extension: rolling co-kernel upgrade — per-wave reboot windows across the fleet",
			Run:   RunFleetUpgrade,
		},
	)
}

// fleetSizes returns the fleet sizes under test. The acceptance-scale
// 256-node fleet is always in the base tier; full runs add 1024.
func fleetSizes(opt Options) []int {
	sizes := []int{64, 256}
	if opt.Full {
		sizes = append(sizes, 1024)
	}
	return sizes
}

// buildFleet stands a fleet up and gang-places two-member apps on a
// quarter of the nodes, so failures and upgrades always displace real
// placements.
func buildFleet(nodes int, seed uint64) (*cluster.Cluster, int, error) {
	c, err := cluster.New(cluster.Options{Nodes: nodes, Seed: seed, Shards: nodes})
	if err != nil {
		return nil, 0, err
	}
	apps := nodes / 4
	for i := 0; i < apps; i++ {
		app := cluster.App{Name: fmt.Sprintf("app%d", i), Members: []cluster.Member{
			{Name: "a", Cores: 1, MemBytes: 32 << 20},
			{Name: "b", Cores: 1, MemBytes: 32 << 20},
		}}
		if _, err := c.Place(app); err != nil {
			c.Close()
			return nil, 0, err
		}
	}
	return c, apps, nil
}

// RunFleetMTTR is the correlated-failure campaign: every 16th node of the
// fleet loses power at once, and one watchdog scan re-places every
// displaced member onto the survivors. MTTR is read off the fleet's
// virtual clock — detection scan plus the fabric control round trips and
// replacement boots — so the table is byte-identical at any engine
// parallelism. The resolve column prices a federated name lookup from the
// fleet's far corner (a lock-free shard read plus the fabric round trip).
func RunFleetMTTR(opt Options, w io.Writer) error {
	reps := opt.reps()
	sizes := fleetSizes(opt)
	var jobs []*Job
	for _, nodes := range sizes {
		for rep := 0; rep < reps; rep++ {
			nodes := nodes
			jobs = append(jobs, &Job{
				Experiment: fmt.Sprintf("fleet-mttr/%d", nodes),
				Config:     CfgNative, Layout: SingleCore, Rep: rep,
				Run: func(j *Job) (*workloads.Result, error) {
					return runFleetMTTRJob(j, nodes)
				},
			})
		}
	}
	results := opt.engine().Run(jobs)
	if err := FirstErr(results); err != nil {
		return err
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "nodes\tapps\tfailed\tdisplaced\treplaced\tMTTR (ms)\tMTTR max (ms)\tresolve (us)")
	i := 0
	for _, nodes := range sizes {
		var mttr, mttrMax, resolve []float64
		var apps, failed, displaced, replaced float64
		for rep := 0; rep < reps; rep++ {
			r := results[i].Res
			i++
			apps = r.Metric("apps")
			failed = r.Metric("failed")
			displaced = r.Metric("displaced")
			replaced = r.Metric("replaced")
			mttr = append(mttr, r.Metric("mttr_ms"))
			mttrMax = append(mttrMax, r.Metric("mttr_max_ms"))
			resolve = append(resolve, r.Metric("resolve_us"))
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.2f\t%.2f\t%.2f\n",
			nodes, apps, failed, displaced, replaced,
			Summarize(mttr).Mean, Summarize(mttrMax).Max, Summarize(resolve).Mean)
	}
	return tw.Flush()
}

// runFleetMTTRJob executes one correlated-failure repetition end to end.
func runFleetMTTRJob(j *Job, nodes int) (*workloads.Result, error) {
	c, apps, err := buildFleet(nodes, j.Seed())
	if err != nil {
		return nil, err
	}
	defer c.Close()

	// Price the federated resolve path from the far corner of the mesh.
	if _, _, err := c.ExportHost(0, "fleet/config", 1<<20); err != nil {
		return nil, err
	}
	_, resolveCycles, err := c.ResolveFrom(nodes-1, "fleet/config")
	if err != nil {
		return nil, err
	}

	failed := 0
	for n := 0; n < nodes; n += 16 {
		c.Nodes[n].TB.M.Crash("fleet-mttr: injected rack fault")
		failed++
	}
	rep := c.Recover()
	if len(rep.Failed) != failed || rep.Stranded != 0 || rep.Replaced != rep.Displaced {
		return nil, fmt.Errorf("fleet-mttr: recovery incomplete: %+v", rep)
	}
	quiet := c.Recover()
	if len(quiet.Failed) != 0 || quiet.Displaced != 0 {
		return nil, fmt.Errorf("fleet-mttr: fleet not quiesced: %+v", quiet)
	}

	var sum, max uint64
	for _, m := range rep.MTTR {
		sum += m
		if m > max {
			max = m
		}
	}
	mean := float64(0)
	if len(rep.MTTR) > 0 {
		mean = float64(sum) / float64(len(rep.MTTR))
	}
	return &workloads.Result{
		Name: "fleet-mttr", Threads: 1, Cycles: rep.At,
		Metrics: map[string]float64{
			"apps":        float64(apps),
			"failed":      float64(failed),
			"displaced":   float64(rep.Displaced),
			"replaced":    float64(rep.Replaced),
			"mttr_ms":     mean / workloads.CyclesPerSecond * 1e3,
			"mttr_max_ms": float64(max) / workloads.CyclesPerSecond * 1e3,
			"resolve_us":  float64(resolveCycles) / workloads.CyclesPerSecond * 1e6,
		},
	}, nil
}

// RunFleetUpgrade is the rolling co-kernel upgrade campaign: the fleet is
// upgraded in waves of eight nodes, each wave rebooting every member
// enclave on its nodes in place. The makespan accumulates the widest
// reboot window per wave (waves run their nodes concurrently; successive
// waves serialize), and availability is the fraction of node-time the
// fleet kept serving during the roll.
func RunFleetUpgrade(opt Options, w io.Writer) error {
	reps := opt.reps()
	sizes := fleetSizes(opt)
	var jobs []*Job
	for _, nodes := range sizes {
		for rep := 0; rep < reps; rep++ {
			nodes := nodes
			jobs = append(jobs, &Job{
				Experiment: fmt.Sprintf("fleet-upgrade/%d", nodes),
				Config:     CfgNative, Layout: SingleCore, Rep: rep,
				Run: func(j *Job) (*workloads.Result, error) {
					return runFleetUpgradeJob(j, nodes)
				},
			})
		}
	}
	results := opt.engine().Run(jobs)
	if err := FirstErr(results); err != nil {
		return err
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "nodes\twaves\tmembers rolled\tmakespan (ms)\tmax window (ms)\tavailability (%)")
	i := 0
	for _, nodes := range sizes {
		var makespan, window, avail []float64
		var waves, rolled float64
		for rep := 0; rep < reps; rep++ {
			r := results[i].Res
			i++
			waves = r.Metric("waves")
			rolled = r.Metric("members_rolled")
			makespan = append(makespan, r.Metric("makespan_ms"))
			window = append(window, r.Metric("max_window_ms"))
			avail = append(avail, r.Metric("availability_pct"))
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.2f\t%.2f\t%.3f\n",
			nodes, waves, rolled,
			Summarize(makespan).Mean, Summarize(window).Max, Summarize(avail).Mean)
	}
	return tw.Flush()
}

// upgradeWave is the number of nodes rebooted concurrently per wave.
const upgradeWave = 8

// runFleetUpgradeJob rolls one fleet through an upgrade, wave by wave.
func runFleetUpgradeJob(j *Job, nodes int) (*workloads.Result, error) {
	c, _, err := buildFleet(nodes, j.Seed())
	if err != nil {
		return nil, err
	}
	defer c.Close()

	rolled := 0
	for _, pl := range c.Placements() {
		rolled += len(pl.Members)
	}

	waves := 0
	var makespan, maxWindow uint64
	for start := 0; start < nodes; start += upgradeWave {
		var window uint64
		for n := start; n < start+upgradeWave && n < nodes; n++ {
			boot, err := c.UpgradeNode(n)
			if err != nil {
				return nil, fmt.Errorf("fleet-upgrade: node %d: %w", n, err)
			}
			if boot > window {
				window = boot
			}
		}
		waves++
		makespan += window
		if window > maxWindow {
			maxWindow = window
		}
	}
	for n := 0; n < nodes; n++ {
		if v := c.Version(n); v != 2 {
			return nil, fmt.Errorf("fleet-upgrade: node %d at version %d after the roll", n, v)
		}
	}
	// During each wave the other nodes keep serving; availability is the
	// served fraction of node-time across the roll.
	avail := 100.0
	if makespan > 0 {
		avail = 100 * float64(nodes-upgradeWave) / float64(nodes)
	}
	return &workloads.Result{
		Name: "fleet-upgrade", Threads: 1, Cycles: makespan,
		Metrics: map[string]float64{
			"waves":            float64(waves),
			"members_rolled":   float64(rolled),
			"makespan_ms":      float64(makespan) / workloads.CyclesPerSecond * 1e3,
			"max_window_ms":    float64(maxWindow) / workloads.CyclesPerSecond * 1e3,
			"availability_pct": avail,
		},
	}, nil
}
