package harness

import (
	"fmt"
	"runtime"
	"sync"

	"covirt/internal/hw"
	"covirt/internal/workloads"
)

// Job is one cell of a declarative experiment matrix: a single repetition
// of one workload on one configuration and hardware layout. Each job runs
// on a fresh simulated machine, so jobs are independent and can execute in
// any order or concurrently without affecting each other's measurements.
type Job struct {
	// Experiment names the figure/table this job belongs to; it feeds the
	// seed derivation and error messages.
	Experiment string
	Config     Config
	Layout     Layout
	Opt        NodeOptions
	// Workload is this job's private Runner instance (never shared across
	// jobs — workloads carry per-run state). If it implements
	// workloads.Seeder it is seeded with Seed() before running.
	Workload workloads.Runner
	// Rep is the repetition index within the job's matrix cell.
	Rep int
	// Run overrides the default node-build-and-run execution for
	// measurements that need custom host-side setup (e.g. XEMEM exports).
	// The override must build its node from j.Config/j.Layout/j.Opt.
	Run func(j *Job) (*workloads.Result, error)
}

// Seed derives the job's deterministic seed: an FNV-1a hash of the
// experiment/config/layout/repetition coordinates passed through one step
// of the hw.Rand generator (the simulator's only sanctioned randomness
// seam). No ambient state — two processes enumerating the same matrix
// derive identical seeds, which is what keeps engine output byte-identical
// at any worker count.
func (j *Job) Seed() uint64 {
	key := fmt.Sprintf("%s/%s/%s/%d", j.Experiment, j.Config.Name, j.Layout.Name, j.Rep)
	rng := hw.NewRand(hashName(key))
	return rng.Next()
}

// exec runs the job to completion.
func (j *Job) exec() (*workloads.Result, error) {
	if j.Run != nil {
		return j.Run(j)
	}
	if s, ok := j.Workload.(workloads.Seeder); ok {
		s.SetSeed(j.Seed())
	}
	n, err := NewNode(j.Config, j.Layout, j.Opt)
	if err != nil {
		return nil, err
	}
	defer n.Close()
	return j.Workload.Run(n.K, j.Layout.Cores)
}

// JobResult pairs a job with its outcome.
type JobResult struct {
	Job *Job
	Res *workloads.Result
	Err error
}

// Engine executes job matrices on a worker pool. Results are returned in
// enumeration order regardless of completion order, and every job owns a
// fresh machine whose cycle counts are pure functions of its seed — so the
// aggregate output is byte-identical whether Workers is 1 or 100.
type Engine struct {
	// Workers caps concurrently executing jobs; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
}

// Run executes all jobs and returns one JobResult per job, index-aligned
// with the input slice. Failures do not stop the remaining jobs.
func (e Engine) Run(jobs []*Job) []JobResult {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]JobResult, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				j := jobs[i]
				res, err := j.exec()
				if err != nil {
					err = fmt.Errorf("%s: %s/%s rep %d: %w",
						j.Experiment, j.Config.Name, j.Layout.Name, j.Rep+1, err)
				}
				results[i] = JobResult{Job: j, Res: res, Err: err}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// FirstErr returns the first failed job's error in enumeration order, or
// nil when every job succeeded.
func FirstErr(results []JobResult) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
