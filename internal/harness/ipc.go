package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"covirt/internal/kitten"
	"covirt/internal/workloads"
)

func init() {
	All = append(All, Experiment{
		ID:    "ipc",
		Title: "Extension: cross-enclave IPC operation costs (paper §III-B claim)",
		Run:   RunIPC,
	})
}

// ipcCosts are the per-operation cycle costs measured for one config.
type ipcCosts struct {
	shmWrite uint64 // store into an attached XEMEM segment (TLB-warm)
	shmRead  uint64
	ipiSend  uint64 // granted cross-enclave notification, sender side
	ipiRecv  uint64 // same notification, receiver side
}

// RunIPC quantifies the paper's motivating claim (§III-B): Covirt supports
// "zero overhead IPC mechanisms that do not require any invocation of the
// virtualization layer" for shared-memory data movement, in contrast to
// virtualization designs that mediate IPC. The data path (loads/stores to
// an attached XEMEM segment) must cost the same under every configuration;
// only the notification path (IPIs) pays for its protection, and posted
// interrupts reclaim the receiver's share.
func RunIPC(opt Options, w io.Writer) error {
	configs := []Config{CfgNative, CfgCovirtNone, CfgCovirtMem, CfgCovirtVAPIC, CfgCovirtPIV}
	jobs := make([]*Job, len(configs))
	for i, cfg := range configs {
		jobs[i] = &Job{
			Experiment: "ipc", Config: cfg,
			Layout: Layout{Name: "2c/2n", Cores: 2, Nodes: []int{0, 1}},
			Opt:    NodeOptions{EnclaveMem: 2 << 30},
			Run:    ipcMeasure,
		}
	}
	jres := opt.engine().Run(jobs)
	if err := FirstErr(jres); err != nil {
		return err
	}
	results := make(map[string]ipcCosts)
	for i, cfg := range configs {
		r := jres[i].Res
		results[cfg.Name] = ipcCosts{
			shmWrite: uint64(r.Metric("shm_write_cyc")),
			shmRead:  uint64(r.Metric("shm_read_cyc")),
			ipiSend:  uint64(r.Metric("ipi_send_cyc")),
			ipiRecv:  uint64(r.Metric("ipi_recv_cyc")),
		}
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tshm write (cyc)\tshm read (cyc)\tIPI send (cyc)\tIPI receive (cyc)")
	for _, cfg := range configs {
		c := results[cfg.Name]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", cfg.Name, c.shmWrite, c.shmRead, c.ipiSend, c.ipiRecv)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	base := results[CfgNative.Name]
	return ipcNarrative(w, results, base)
}

// ipcMeasure is the per-config engine job: it builds the node, runs the
// data-path and notification-path measurement tasks, and reports the four
// per-operation costs as result metrics.
func ipcMeasure(j *Job) (*workloads.Result, error) {
	const vector = 0x73
	n, err := NewNode(j.Config, j.Layout, j.Opt)
	if err != nil {
		return nil, err
	}
	defer n.Close()
	var c ipcCosts

	// Receiver-side bookkeeping: average delivery cost measured on the
	// receiving core across many notifications.
	recvCore := n.K.CPU(1)
	n.K.OnIPI(vector, func(*kitten.Env) {})

	// Shared-memory data path: producer exports, same-enclave core
	// attaches via the full XEMEM protocol. (Cross-enclave attach uses
	// the identical path; one enclave keeps the measurement loop on a
	// single clock.)
	task, err := n.K.Spawn("ipc-measure", 0, func(e *kitten.Env) error {
		seg := e.Alloc(0, 4<<20)
		if _, err := e.XemMake("ipc.seg", seg); err != nil {
			return err
		}
		// Warm the translation, then measure steady-state data ops.
		e.Write64(seg.Start, 1)
		const dataOps = 256
		t0 := e.CPU.TSC
		for i := 0; i < dataOps; i++ {
			e.Write64(seg.Start+uint64(i%64)*8, uint64(i))
		}
		c.shmWrite = (e.CPU.TSC - t0) / dataOps
		t0 = e.CPU.TSC
		var sink uint64
		for i := 0; i < dataOps; i++ {
			sink += e.Read64(seg.Start + uint64(i%64)*8)
		}
		c.shmRead = (e.CPU.TSC - t0) / dataOps
		_ = sink

		// Notification path: send a burst of granted IPIs.
		const sends = 64
		t0 = e.CPU.TSC
		for i := 0; i < sends; i++ {
			e.SendIPI(1, vector)
		}
		c.ipiSend = (e.CPU.TSC - t0) / sends
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := task.Wait(); err != nil {
		return nil, err
	}

	// Receiver cost: a self-notification on core 1 includes both the
	// send and the delivery (recognized at the send's instruction
	// boundary); subtracting the send-only cost measured on core 0
	// isolates the receiver's share.
	recv, err := n.K.Spawn("recv", 1, func(e *kitten.Env) error {
		e.Compute(0) // drain anything pending before measuring
		t0 := e.CPU.TSC
		e.SendIPI(1, vector) // self-notification through the same path
		total := e.CPU.TSC - t0
		if total > c.ipiSend {
			c.ipiRecv = total - c.ipiSend
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := recv.Wait(); err != nil {
		return nil, err
	}
	_ = recvCore
	return &workloads.Result{
		Name: "ipc", Threads: 2,
		Metrics: map[string]float64{
			"shm_write_cyc": float64(c.shmWrite),
			"shm_read_cyc":  float64(c.shmRead),
			"ipi_send_cyc":  float64(c.ipiSend),
			"ipi_recv_cyc":  float64(c.ipiRecv),
		},
	}, nil
}

// ipcNarrative prints the paper-facing interpretation under the table.
func ipcNarrative(w io.Writer, results map[string]ipcCosts, base ipcCosts) error {
	worst := results[CfgCovirtVAPIC.Name]
	fmt.Fprintf(w, "\ndata path: identical across configurations (%d-cycle stores) — no\n", base.shmWrite)
	fmt.Fprintf(w, "virtualization-layer invocation on loads/stores to shared mappings.\n")
	fmt.Fprintf(w, "notification path: IPI filtering costs the sender %+d cycles under\n",
		int64(worst.ipiSend)-int64(base.ipiSend))
	fmt.Fprintf(w, "interception; posted interrupts cut the receiver from %d back to %d cycles.\n",
		worst.ipiRecv, results[CfgCovirtPIV.Name].ipiRecv)
	_ = workloads.CyclesPerSecond
	return nil
}
