package harness

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"covirt/internal/workloads"
)

// TestJobSeedCoordinates pins the seed contract: a job's seed is a pure
// function of its (experiment, config, layout, rep) coordinates — never of
// enumeration position, worker count, or ambient state.
func TestJobSeedCoordinates(t *testing.T) {
	j := &Job{Experiment: "fig7", Config: CfgCovirtMem, Layout: EightCore, Rep: 2}
	if j.Seed() != j.Seed() {
		t.Fatal("seed is not stable across calls")
	}
	seen := map[uint64]string{}
	for _, cfg := range StandardConfigs {
		for rep := 0; rep < 3; rep++ {
			jb := &Job{Experiment: "fig7", Config: cfg, Layout: EightCore, Rep: rep}
			key := fmt.Sprintf("%s/%d", cfg.Name, rep)
			if prev, dup := seen[jb.Seed()]; dup {
				t.Fatalf("seed collision between %s and %s", prev, key)
			}
			seen[jb.Seed()] = key
		}
	}
}

// TestEngineContinuesPastFailures checks that a failing job neither stops
// the remaining jobs nor perturbs their results, and that FirstErr reports
// the first failure in enumeration order.
func TestEngineContinuesPastFailures(t *testing.T) {
	boom := errors.New("boom")
	mkJob := func(i int, fail bool) *Job {
		return &Job{
			Experiment: "t", Config: CfgNative, Layout: SingleCore, Rep: i,
			Run: func(j *Job) (*workloads.Result, error) {
				if fail {
					return nil, boom
				}
				return &workloads.Result{Name: "ok", Cycles: uint64(j.Rep)}, nil
			},
		}
	}
	jobs := []*Job{mkJob(0, false), mkJob(1, true), mkJob(2, false), mkJob(3, true)}
	results := Engine{Workers: 2}.Run(jobs)
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil || results[i].Res.Cycles != uint64(i) {
			t.Fatalf("job %d: err=%v res=%+v", i, results[i].Err, results[i].Res)
		}
	}
	err := FirstErr(results)
	if !errors.Is(err, boom) {
		t.Fatalf("FirstErr = %v, want wrapped boom", err)
	}
	// Enumeration order: the rep-1 failure, not the rep-3 one.
	if want := "t: native/1c/1n rep 2"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("FirstErr = %q, want mention of %q", err, want)
	}
}

// golden determinism: a full experiment's rendered output must be
// byte-identical whether the engine runs jobs serially or on 8 workers.

func TestFig5aOutputDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig5a matrix twice; TestTransCacheOutputEquivalence covers the short tier")
	}
	run := func(parallel int) string {
		var buf bytes.Buffer
		if err := RunFig5a(Options{Reps: 2, Parallel: parallel}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := run(1)
	if wide := run(8); wide != serial {
		t.Fatalf("fig5a output differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s--- parallel ---\n%s", serial, wide)
	}
}

func TestFig7OutputDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full HPCG scaling passes; dominates the race suite")
	}
	// The fig7 path (runScaling matrix) with a test-sized HPCG so two full
	// passes stay fast. Single-core cells only: within one simulated
	// machine, concurrent ranks race on ledger-allocation order, which can
	// shift multi-rank cycle counts by a few cycles when the Go scheduler
	// is perturbed (e.g. under -race). That jitter predates the engine and
	// exists at any worker count; the engine's own contract — coordinate
	// seeds, enumeration-order aggregation — is what this test pins.
	mk := func(Options) workloads.Runner {
		return &workloads.HPCG{NX: 24, NY: 24, NZ: 24, Iters: 12}
	}
	run := func(parallel int) string {
		var buf bytes.Buffer
		if err := runScaling("fig7", Options{Reps: 2, Parallel: parallel}, &buf, []Layout{SingleCore}, mk); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := run(1)
	if wide := run(8); wide != serial {
		t.Fatalf("fig7 output differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s--- parallel ---\n%s", serial, wide)
	}
}

// TestEngineMatrixOrderIndependent drives the full fig7-shaped matrix
// (all layouts x all configs x reps) through 1 and 8 workers with a
// seed-derived synthetic measurement, proving result order and values are
// independent of worker count even when job durations force heavy
// completion-order inversion.
func TestEngineMatrixOrderIndependent(t *testing.T) {
	reps := 3
	build := func() []*Job {
		var jobs []*Job
		for _, layout := range Layouts {
			for _, cfg := range StandardConfigs {
				for rep := 0; rep < reps; rep++ {
					jobs = append(jobs, &Job{
						Experiment: "matrix", Config: cfg, Layout: layout, Rep: rep,
						Run: func(j *Job) (*workloads.Result, error) {
							return &workloads.Result{Name: "synthetic", Cycles: j.Seed()}, nil
						},
					})
				}
			}
		}
		return jobs
	}
	render := func(workers int) string {
		results := Engine{Workers: workers}.Run(build())
		var buf bytes.Buffer
		for _, r := range results {
			fmt.Fprintf(&buf, "%s/%s/%d: %d\n", r.Job.Config.Name, r.Job.Layout.Name, r.Job.Rep, r.Res.Cycles)
		}
		return buf.String()
	}
	if a, b := render(1), render(8); a != b {
		t.Fatalf("matrix results differ between 1 and 8 workers:\n%s\nvs\n%s", a, b)
	}
}
