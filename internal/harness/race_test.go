//go:build race

package harness_test

// raceDetectorEnabled reports whether this test binary was built with
// -race. The full fig7 equivalence pass is skipped under the race
// detector (see equivalence_test.go): on a small CI host the
// instrumented run would blow the per-package test timeout, and the
// uninstrumented full suite already covers it.
const raceDetectorEnabled = true
