package harness

import "testing"

// TestCtlSaturationSpeedup is the smoke check of the issue's acceptance
// bar: on the same saturation workload the batched leg must deliver at
// least 10x the control-plane events/sec of the per-event baseline at
// equal-or-better p99 apply latency, and the epoch coalescer must have
// merged flushes away.
func TestCtlSaturationSpeedup(t *testing.T) {
	pairs := 64
	if testing.Short() {
		pairs = 32
	}
	base, err := runCtlSatJob(1, pairs)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := runCtlSatJob(ctlSatBatch, pairs)
	if err != nil {
		t.Fatal(err)
	}

	eps := func(r interface{ Metric(string) float64 }) float64 {
		return r.Metric("events") / r.Metric("ctl_cycles")
	}
	speedup := eps(batched) / eps(base)
	if speedup < 10 {
		t.Errorf("batched ingest = %.1fx events/sec over per-event, want >= 10x", speedup)
	}
	if bp, pp := batched.Metric("p99_us"), base.Metric("p99_us"); bp > pp*1.01 {
		t.Errorf("batched p99 apply = %.3f us, worse than per-event %.3f us", bp, pp)
	}
	if batched.Metric("flush_saved") == 0 {
		t.Error("batched leg coalesced no flush commands away")
	}
	if base.Metric("flush_saved") != 0 {
		t.Errorf("per-event baseline reports %v saved flushes; legs are not comparable",
			base.Metric("flush_saved"))
	}
}

// TestCtlSaturationDeterministic: identical jobs must produce identical
// metric maps — the experiment's byte-identical-at-any-parallel guarantee
// reduces to this per-job determinism plus the engine's ordered collection.
func TestCtlSaturationDeterministic(t *testing.T) {
	a, err := runCtlSatJob(ctlSatBatch, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runCtlSatJob(ctlSatBatch, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Metrics) != len(b.Metrics) {
		t.Fatalf("metric sets differ: %v vs %v", a.Metrics, b.Metrics)
	}
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Errorf("metric %s = %v then %v across identical runs", k, v, b.Metrics[k])
		}
	}
}
