package harness

import (
	"fmt"

	"covirt/internal/covirt"
	"covirt/internal/hw"
	"covirt/internal/kitten"
	"covirt/internal/linuxhost"
	"covirt/internal/pisces"
	"covirt/internal/workloads"
)

// NodeOptions configures an assembled evaluation node.
type NodeOptions struct {
	// EnclaveMem is the enclave's memory (the paper uses 14 GiB split
	// across the layout's NUMA zones).
	EnclaveMem uint64
	// TimerInterval overrides the guest timer period in cycles
	// (0 = machine default, negative = tickless).
	TimerInterval int64
	// MachineSpec overrides the simulated hardware (zero = paper platform).
	MachineSpec hw.MachineSpec
}

// Node is one fully assembled evaluation setup: the simulated machine, the
// host OS stack, an optional Covirt controller, and one booted Kitten
// enclave in the requested layout.
type Node struct {
	Cfg    Config
	Layout Layout

	M    *hw.Machine
	Host *linuxhost.Host
	Ctrl *covirt.Controller
	Enc  *pisces.Enclave
	K    *kitten.Kernel
}

// NewNode builds and boots a node for the given configuration and layout.
func NewNode(cfg Config, layout Layout, opt NodeOptions) (*Node, error) {
	spec := opt.MachineSpec
	if spec.NumNodes == 0 {
		spec = hw.DefaultSpec()
	}
	m, err := hw.NewMachine(spec)
	if err != nil {
		return nil, err
	}
	host, err := linuxhost.New(m)
	if err != nil {
		return nil, err
	}

	// Offline the enclave's resources: cores round-robin from the layout's
	// nodes (leaving core 0 of node 0 for the host), plus memory.
	perNode := make(map[int]int)
	for i := 0; i < layout.Cores; i++ {
		perNode[layout.Nodes[i%len(layout.Nodes)]]++
	}
	for node, want := range perNode {
		cores := m.Topo.Nodes[node].Cores
		avail := cores[1:] // keep the first core of each node for the host
		if want > len(avail) {
			return nil, fmt.Errorf("harness: layout %s wants %d cores on node %d, machine has %d offline-able", layout.Name, want, node, len(avail))
		}
		if err := host.OfflineCores(avail[:want]...); err != nil {
			return nil, err
		}
	}
	encMem := opt.EnclaveMem
	if encMem == 0 {
		encMem = 14 << 30 // the paper's enclave size
	}
	per := encMem / uint64(len(layout.Nodes))
	for _, node := range layout.Nodes {
		if err := host.OfflineMemory(node, per); err != nil {
			return nil, err
		}
	}

	n := &Node{Cfg: cfg, Layout: layout, M: m, Host: host}
	if cfg.Covirt {
		ctrl, err := covirt.Attach(m, host.Pisces, host.Master, cfg.Features)
		if err != nil {
			return nil, err
		}
		n.Ctrl = ctrl
	}

	enc, err := host.Pisces.CreateEnclave(pisces.EnclaveSpec{
		Name:     "bench-" + cfg.Name,
		NumCores: layout.Cores,
		Nodes:    layout.Nodes,
		MemBytes: encMem,
	})
	if err != nil {
		return nil, err
	}
	n.Enc = enc

	k := kitten.New(kitten.Config{TimerInterval: opt.TimerInterval})
	if err := host.Pisces.Boot(enc, k); err != nil {
		return nil, err
	}
	n.K = k
	return n, nil
}

// Close tears the enclave down.
func (n *Node) Close() {
	if n.Enc != nil {
		_ = n.Host.Pisces.Destroy(n.Enc)
	}
}

// RunWorkload executes w on a fresh node for each of reps repetitions,
// returning every Result. A fresh node per repetition keeps runs
// independent, like the paper's 10-trial methodology.
func RunWorkload(cfg Config, layout Layout, opt NodeOptions, w workloads.Runner, reps int) ([]*workloads.Result, error) {
	if reps <= 0 {
		reps = 1
	}
	out := make([]*workloads.Result, 0, reps)
	for rep := 0; rep < reps; rep++ {
		n, err := NewNode(cfg, layout, opt)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", cfg.Name, layout.Name, err)
		}
		res, err := w.Run(n.K, layout.Cores)
		n.Close()
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", cfg.Name, layout.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}
