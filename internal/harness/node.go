package harness

import (
	"fmt"

	"covirt/internal/covirt"
	"covirt/internal/hw"
	"covirt/internal/kitten"
	"covirt/internal/linuxhost"
	"covirt/internal/pisces"
	"covirt/internal/testbed"
	"covirt/internal/workloads"
)

// NodeOptions configures an assembled evaluation node.
type NodeOptions struct {
	// EnclaveMem is the enclave's memory (the paper uses 14 GiB split
	// across the layout's NUMA zones).
	EnclaveMem uint64
	// TimerInterval overrides the guest timer period in cycles
	// (0 = machine default, negative = tickless).
	TimerInterval int64
	// MachineSpec overrides the simulated hardware (zero = paper platform).
	MachineSpec hw.MachineSpec
	// Heartbeat enables the guest's supervision heartbeat (fault-injection
	// campaigns that attach a supervisor set this).
	Heartbeat bool
}

// Node is one fully assembled evaluation setup: the simulated machine, the
// host OS stack, an optional Covirt controller, and one booted Kitten
// enclave in the requested layout.
type Node struct {
	Cfg    Config
	Layout Layout

	M    *hw.Machine
	Host *linuxhost.Host
	Ctrl *covirt.Controller
	Enc  *pisces.Enclave
	K    *kitten.Kernel

	tb *testbed.Node
}

// NewNode builds and boots a node for the given configuration and layout
// through the declarative testbed layer.
func NewNode(cfg Config, layout Layout, opt NodeOptions) (*Node, error) {
	encMem := opt.EnclaveMem
	if encMem == 0 {
		encMem = 14 << 30 // the paper's enclave size
	}
	spec := testbed.Spec{
		Machine:  opt.MachineSpec,
		Covirt:   cfg.Covirt,
		Features: cfg.Features,
		Guests: []testbed.Guest{{
			Name:          "bench-" + cfg.Name,
			Kind:          testbed.Kitten,
			Cores:         layout.Cores,
			Nodes:         layout.Nodes,
			MemBytes:      encMem,
			TimerInterval: opt.TimerInterval,
			Heartbeat:     opt.Heartbeat,
		}},
	}
	tb, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("harness: layout %s: %w", layout.Name, err)
	}
	return &Node{
		Cfg:    cfg,
		Layout: layout,
		M:      tb.M,
		Host:   tb.Host,
		Ctrl:   tb.Ctrl,
		Enc:    tb.Enc(),
		K:      tb.Kitten(),
		tb:     tb,
	}, nil
}

// Testbed exposes the underlying testbed node (supervision and other
// management-plane extensions attach there).
func (n *Node) Testbed() *testbed.Node { return n.tb }

// Close tears the enclave down.
func (n *Node) Close() {
	if n.tb != nil {
		n.tb.Close()
	}
}

// RunWorkload executes w on a fresh node for each of reps repetitions,
// returning every Result. A fresh node per repetition keeps runs
// independent, like the paper's 10-trial methodology.
func RunWorkload(cfg Config, layout Layout, opt NodeOptions, w workloads.Runner, reps int) ([]*workloads.Result, error) {
	if reps <= 0 {
		reps = 1
	}
	out := make([]*workloads.Result, 0, reps)
	for rep := 0; rep < reps; rep++ {
		n, err := NewNode(cfg, layout, opt)
		if err != nil {
			return nil, fmt.Errorf("%s/%s rep %d/%d: %w", cfg.Name, layout.Name, rep+1, reps, err)
		}
		res, err := w.Run(n.K, layout.Cores)
		n.Close()
		if err != nil {
			return nil, fmt.Errorf("%s/%s rep %d/%d: %w", cfg.Name, layout.Name, rep+1, reps, err)
		}
		out = append(out, res)
	}
	return out, nil
}
