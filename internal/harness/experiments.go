package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"covirt/internal/hw"
	"covirt/internal/kitten"
	"covirt/internal/workloads"
)

// Options tunes experiment execution.
type Options struct {
	// Reps is the number of repetitions per data point (the paper ran 10;
	// the default here is 3 for turnaround).
	Reps int
	// Full selects the paper's full problem sizes instead of the scaled
	// simulation defaults.
	Full bool
	// Parallel caps the engine's concurrent jobs (<= 0 selects
	// runtime.GOMAXPROCS(0)). Output is byte-identical at any setting.
	Parallel int
}

func (o Options) reps() int {
	if o.Reps <= 0 {
		return 3
	}
	return o.Reps
}

func (o Options) engine() Engine { return Engine{Workers: o.Parallel} }

// Experiment regenerates one table or figure from the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(opt Options, w io.Writer) error
}

// All lists every experiment in paper order.
var All = []Experiment{
	{"table1", "Table I: benchmark versions and parameters", RunTable1},
	{"fig3", "Fig. 3: Selfish-Detour noise profile", RunFig3},
	{"fig4", "Fig. 4: XEMEM attach delay vs region size", RunFig4},
	{"fig5a", "Fig. 5a: STREAM bandwidth", RunFig5a},
	{"fig5b", "Fig. 5b: RandomAccess (GUPS)", RunFig5b},
	{"fig6", "Fig. 6: MiniFE scaling over CPU-core/NUMA-zone layouts", RunFig6},
	{"fig7", "Fig. 7: HPCG scaling over CPU-core/NUMA-zone layouts", RunFig7},
	{"fig8", "Fig. 8: LAMMPS loop times", RunFig8},
}

// ByID finds an experiment.
func ByID(id string) *Experiment {
	for i := range All {
		if All[i].ID == id {
			return &All[i]
		}
	}
	return nil
}

// workload constructors honouring the Full/scaled switch.

func mkStream(opt Options) *workloads.Stream {
	if opt.Full {
		return &workloads.Stream{N: 10_000_000, Iters: 10}
	}
	return &workloads.Stream{N: 1 << 20, Iters: 3}
}

func mkGUPS(opt Options) *workloads.RandomAccess {
	if opt.Full {
		return &workloads.RandomAccess{LogTableSize: 25, Updates: 1 << 22}
	}
	return &workloads.RandomAccess{LogTableSize: 25, Updates: 1 << 18}
}

func mkMiniFE(opt Options) *workloads.MiniFE {
	if opt.Full {
		return &workloads.MiniFE{NX: 250, NY: 250, NZ: 250, Iters: 50}
	}
	return &workloads.MiniFE{NX: 40, NY: 40, NZ: 40, Iters: 20}
}

func mkHPCG(opt Options) *workloads.HPCG {
	if opt.Full {
		return &workloads.HPCG{NX: 104, NY: 104, NZ: 104, Iters: 50}
	}
	return &workloads.HPCG{NX: 40, NY: 40, NZ: 40, Iters: 15}
}

func mkLammps(opt Options, p workloads.LammpsProblem) *workloads.Lammps {
	if opt.Full {
		return &workloads.Lammps{Problem: p, AtomsPerRank: 4000, Steps: 100}
	}
	return &workloads.Lammps{Problem: p, AtomsPerRank: 1000, Steps: 25}
}

// RunTable1 prints the benchmark inventory (Table I), mapped to this
// reproduction's workload implementations and parameters.
func RunTable1(opt Options, w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tPaper version\tPaper parameters\tReproduction (scaled defaults)")
	fmt.Fprintln(tw, "Selfish Detour\t1.0.7\tnone\tworkloads.Selfish, 4e8-cycle detection loop")
	s := mkStream(opt)
	fmt.Fprintf(tw, "STREAM\t5.10\tnone\tworkloads.Stream, N=%d, %d iters\n", s.N, s.Iters)
	g := mkGUPS(opt)
	fmt.Fprintf(tw, "RandomAccess_OMP\t10/28/04\t25\tworkloads.RandomAccess, 2^%d words, %d updates\n", g.LogTableSize, g.Updates)
	h := mkHPCG(opt)
	fmt.Fprintf(tw, "HPCG\trev 3.1\t104 104 104 330\tworkloads.HPCG, %dx%dx%d, %d CG iters\n", h.NX, h.NY, h.NZ, h.Iters)
	m := mkMiniFE(opt)
	fmt.Fprintf(tw, "MiniFE\t2.0\tnx/ny/nz 250\tworkloads.MiniFE, %dx%dx%d, %d CG iters\n", m.NX, m.NY, m.NZ, m.Iters)
	l := mkLammps(opt, workloads.LJ)
	fmt.Fprintf(tw, "LAMMPS\t3 Mar 2020\tdefault run scripts\tworkloads.Lammps lj/eam/chain/chute, %d atoms/rank, %d steps\n", l.AtomsPerRank, l.Steps)
	return tw.Flush()
}

// RunFig3 reproduces the Selfish-Detour noise comparison: the detection
// loop runs under each configuration; matching profiles across
// configurations is the paper's result ("hardware level virtualization
// does not inherently increase system noise").
func RunFig3(opt Options, w io.Writer) error {
	dur := uint64(4e8)
	if opt.Full {
		dur = 4e9
	}
	configs := append(append([]Config{}, StandardConfigs...), CfgCovirtAll)
	jobs := make([]*Job, len(configs))
	for i, cfg := range configs {
		jobs[i] = &Job{Experiment: "fig3", Config: cfg, Layout: SingleCore,
			Workload: &workloads.Selfish{DurationCycles: dur}}
	}
	results := opt.engine().Run(jobs)
	if err := FirstErr(results); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tdetours\tmax detour (us)\tlost time (%)\tseries (ms: us)")
	for i, cfg := range configs {
		sw := jobs[i].Workload.(*workloads.Selfish)
		r := results[i].Res
		// The figure's scatter: detour magnitude (us) at time offset (ms).
		series := ""
		for i, d := range sw.Detours {
			if i == 8 {
				series += " ..."
				break
			}
			series += fmt.Sprintf(" %.0f:%.1f",
				float64(d.AtCycle)/workloads.CyclesPerSecond*1e3,
				float64(d.Magnitude)/workloads.CyclesPerSecond*1e6)
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.2f\t%.4f\t%s\n",
			cfg.Name,
			r.Metric("detours"),
			r.Metric("max_detour_cycles")/workloads.CyclesPerSecond*1e6,
			r.Metric("lost_fraction")*100,
			series)
	}
	return tw.Flush()
}

// RunFig4 reproduces the XEMEM attach-delay measurement: a consumer
// enclave attaches host-exported segments of growing size, sampling the
// TSC around each attach, with Covirt enabled and disabled.
func RunFig4(opt Options, w io.Writer) error {
	sizesMB := []uint64{1, 4, 16, 64, 256, 1024}
	configs := []Config{CfgNative, CfgCovirtMem}
	reps := opt.reps()

	var jobs []*Job
	for _, cfg := range configs {
		for _, mb := range sizesMB {
			for rep := 0; rep < reps; rep++ {
				mb := mb
				jobs = append(jobs, &Job{
					Experiment: "fig4", Config: cfg, Layout: SingleCore, Rep: rep,
					Run: func(j *Job) (*workloads.Result, error) { return fig4Attach(j, mb) },
				})
			}
		}
	}
	results := opt.engine().Run(jobs)
	if err := FirstErr(results); err != nil {
		return err
	}

	table := make(map[string]map[uint64]Stats)
	i := 0
	for _, cfg := range configs {
		table[cfg.Name] = make(map[uint64]Stats)
		for _, mb := range sizesMB {
			var samples []float64
			for rep := 0; rep < reps; rep++ {
				samples = append(samples, results[i].Res.Metric("attach_us"))
				i++
			}
			table[cfg.Name][mb] = Summarize(samples)
		}
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "region size (MB)")
	for _, cfg := range configs {
		fmt.Fprintf(tw, "\t%s attach (us)", cfg.Name)
	}
	fmt.Fprintln(tw, "\tcovirt overhead (%)")
	for _, mb := range sizesMB {
		fmt.Fprintf(tw, "%d", mb)
		for _, cfg := range configs {
			fmt.Fprintf(tw, "\t%.1f", table[cfg.Name][mb].Mean)
		}
		fmt.Fprintf(tw, "\t%+.2f\n", OverheadPct(table[CfgNative.Name][mb].Mean, table[CfgCovirtMem.Name][mb].Mean))
	}
	return tw.Flush()
}

// fig4Attach is Fig. 4's per-job measurement: the host exports a segment
// of mb MiB and the guest samples the TSC around a full XEMEM attach.
func fig4Attach(j *Job, mb uint64) (*workloads.Result, error) {
	n, err := NewNode(j.Config, j.Layout, j.Opt)
	if err != nil {
		return nil, err
	}
	defer n.Close()
	// Host exports a segment of its own memory.
	seg, err := n.Host.HostAlloc(0, mb<<20)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("fig4.%d.%d", mb, j.Rep)
	if _, err := n.Host.Master.Reg.Make(hashName(name), n.Host.Pisces.RootMem, []hw.Extent{seg}); err != nil {
		return nil, err
	}
	var delay uint64
	task, err := n.K.Spawn("attach", 0, func(e *kitten.Env) error {
		segid, err := e.XemGet(name)
		if err != nil {
			return err
		}
		t0 := e.CPU.TSC
		if _, err := e.XemAttach(segid); err != nil {
			return err
		}
		delay = e.CPU.TSC - t0
		return e.XemDetach(segid)
	})
	if err == nil {
		err = task.Wait()
	}
	if err != nil {
		return nil, err
	}
	return &workloads.Result{
		Name: "fig4-attach", Threads: 1, Cycles: delay,
		Metrics: map[string]float64{"attach_us": float64(delay) / workloads.CyclesPerSecond * 1e6},
	}, nil
}

// hashName mirrors the co-kernel side's FNV-1a name hashing.
func hashName(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// matrix enumerates reps jobs per (config, layout) cell in row-major
// order: configs outermost, then layouts, then repetitions. mk builds a
// fresh workload instance per job (workloads carry per-run state and must
// never be shared across concurrently executing jobs).
func matrix(exp string, opt Options, configs []Config, layouts []Layout, mk func() workloads.Runner) []*Job {
	reps := opt.reps()
	jobs := make([]*Job, 0, len(configs)*len(layouts)*reps)
	for _, cfg := range configs {
		for _, layout := range layouts {
			for rep := 0; rep < reps; rep++ {
				jobs = append(jobs, &Job{
					Experiment: exp, Config: cfg, Layout: layout,
					Workload: mk(), Rep: rep,
				})
			}
		}
	}
	return jobs
}

// cellMeans reduces an engine result slice produced from a matrix() job
// list back to one value per (config, layout) cell: metric extracts the
// figure from each repetition, and the per-cell repetitions are averaged.
// The returned slice is cell-major in the same enumeration order.
func cellMeans(results []JobResult, reps int, metric func(*workloads.Result) float64) []float64 {
	means := make([]float64, 0, len(results)/reps)
	for i := 0; i < len(results); i += reps {
		var vals []float64
		for r := 0; r < reps; r++ {
			vals = append(vals, metric(results[i+r].Res))
		}
		means = append(means, Summarize(vals).Mean)
	}
	return means
}

// RunFig5a reproduces the STREAM comparison across configurations.
func RunFig5a(opt Options, w io.Writer) error {
	kernels := []string{"copy_GBs", "scale_GBs", "add_GBs", "triad_GBs"}
	jobs := matrix("fig5a", opt, StandardConfigs, []Layout{SingleCore},
		func() workloads.Runner { return mkStream(opt) })
	results := opt.engine().Run(jobs)
	if err := FirstErr(results); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tcopy (GB/s)\tscale (GB/s)\tadd (GB/s)\ttriad (GB/s)\ttriad overhead (%)")
	var baseTriad float64
	reps := opt.reps()
	for ci, cfg := range StandardConfigs {
		stats := make(map[string][]float64)
		for rep := 0; rep < reps; rep++ {
			r := results[ci*reps+rep].Res
			for _, kn := range kernels {
				stats[kn] = append(stats[kn], r.Metric(kn))
			}
		}
		triad := Summarize(stats["triad_GBs"]).Mean
		if cfg.Name == CfgNative.Name {
			baseTriad = triad
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%+.2f\n",
			cfg.Name,
			Summarize(stats["copy_GBs"]).Mean,
			Summarize(stats["scale_GBs"]).Mean,
			Summarize(stats["add_GBs"]).Mean,
			triad,
			OverheadPct(triad, baseTriad))
	}
	return tw.Flush()
}

// RunFig5b reproduces the RandomAccess (GUPS) comparison.
func RunFig5b(opt Options, w io.Writer) error {
	jobs := matrix("fig5b", opt, StandardConfigs, []Layout{SingleCore},
		func() workloads.Runner { return mkGUPS(opt) })
	results := opt.engine().Run(jobs)
	if err := FirstErr(results); err != nil {
		return err
	}
	means := cellMeans(results, opt.reps(), func(r *workloads.Result) float64 { return r.Metric("GUPS") })
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tGUPS\toverhead (%)")
	var base float64
	for ci, cfg := range StandardConfigs {
		gups := means[ci]
		if cfg.Name == CfgNative.Name {
			base = gups
		}
		fmt.Fprintf(tw, "%s\t%.5f\t%+.2f\n", cfg.Name, gups, OverheadPct(gups, base))
	}
	return tw.Flush()
}

// runScaling shares the Fig. 6/7 structure: one workload over the given
// hardware layouts and all configurations, reporting solve time and
// overhead vs native.
func runScaling(exp string, opt Options, w io.Writer, layouts []Layout, mk func(Options) workloads.Runner) error {
	// Layouts outermost to preserve the historical row order; the engine
	// preserves enumeration order either way.
	var jobs []*Job
	reps := opt.reps()
	for _, layout := range layouts {
		for _, cfg := range StandardConfigs {
			for rep := 0; rep < reps; rep++ {
				jobs = append(jobs, &Job{
					Experiment: exp, Config: cfg, Layout: layout,
					Workload: mk(opt), Rep: rep,
				})
			}
		}
	}
	results := opt.engine().Run(jobs)
	if err := FirstErr(results); err != nil {
		return err
	}
	means := cellMeans(results, reps, func(r *workloads.Result) float64 { return workloads.Seconds(r.Cycles) })
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "layout\tconfig\ttime (s)\toverhead vs native (%)")
	cell := 0
	for _, layout := range layouts {
		var base float64
		for _, cfg := range StandardConfigs {
			mean := means[cell]
			cell++
			if cfg.Name == CfgNative.Name {
				base = mean
			}
			fmt.Fprintf(tw, "%s\t%s\t%.4f\t%+.2f\n", layout.Name, cfg.Name, mean, OverheadPct(base, mean))
		}
	}
	return tw.Flush()
}

// RunFig6 reproduces the MiniFE scaling comparison.
func RunFig6(opt Options, w io.Writer) error {
	return runScaling("fig6", opt, w, Layouts, func(o Options) workloads.Runner { return mkMiniFE(o) })
}

// RunFig7 reproduces the HPCG scaling comparison.
func RunFig7(opt Options, w io.Writer) error {
	return runScaling("fig7", opt, w, Layouts, func(o Options) workloads.Runner { return mkHPCG(o) })
}

// RunFig8 reproduces the LAMMPS loop-time comparison (8 cores across 2
// NUMA domains, the four stock problems).
func RunFig8(opt Options, w io.Writer) error {
	problems := []workloads.LammpsProblem{workloads.LJ, workloads.EAM, workloads.Chain, workloads.Chute}
	reps := opt.reps()
	var jobs []*Job
	for _, p := range problems {
		for _, cfg := range StandardConfigs {
			for rep := 0; rep < reps; rep++ {
				jobs = append(jobs, &Job{
					Experiment: "fig8", Config: cfg, Layout: EightCore,
					Workload: mkLammps(opt, p), Rep: rep,
				})
			}
		}
	}
	results := opt.engine().Run(jobs)
	if err := FirstErr(results); err != nil {
		return err
	}
	means := cellMeans(results, reps, func(r *workloads.Result) float64 { return r.Metric("loop_time_s") })
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "problem\tconfig\tloop time (s)\toverhead vs native (%)")
	cell := 0
	for _, p := range problems {
		var base float64
		for _, cfg := range StandardConfigs {
			mean := means[cell]
			cell++
			if cfg.Name == CfgNative.Name {
				base = mean
			}
			fmt.Fprintf(tw, "%s\t%s\t%.4f\t%+.2f\n", p, cfg.Name, mean, OverheadPct(base, mean))
		}
	}
	return tw.Flush()
}
