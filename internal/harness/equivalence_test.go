package harness_test

import (
	"bytes"
	"testing"

	"covirt/internal/covirt"
	"covirt/internal/harness"
	"covirt/internal/vmx"
)

// TestTransCacheOutputEquivalence is the determinism gate on the hot-path
// caches: regenerating experiments with the VCPU translation cache
// force-disabled and enabled must produce byte-identical output. The cache
// memoizes completed nested walks (and their charged depth), so any
// divergence means a cached translation charged different cycles or masked
// a fault the slow path would have raised. The mttr experiment covers the
// supervised crash/recovery path; fig5a the streaming path; fig7 the
// TLB-missing gather path. The fig7 leg only runs in full, uninstrumented
// suites: two complete HPCG scaling matrices are too slow for -short, and
// under -race they would blow the package's test timeout on a small host
// (the race tier still diffs fig5a and mttr).
func TestTransCacheOutputEquivalence(t *testing.T) {
	ids := []string{"fig5a", "mttr"}
	if !testing.Short() && !raceDetectorEnabled {
		ids = append(ids, "fig7")
	}
	defer vmx.SetTransCacheEnabled(true)
	for _, id := range ids {
		e := harness.ByID(id)
		if e == nil {
			t.Fatalf("no experiment %q", id)
		}
		opt := harness.Options{Reps: 1, Parallel: 4}
		var off, on bytes.Buffer
		vmx.SetTransCacheEnabled(false)
		if err := e.Run(opt, &off); err != nil {
			t.Fatalf("%s (cache off): %v", id, err)
		}
		vmx.SetTransCacheEnabled(true)
		if err := e.Run(opt, &on); err != nil {
			t.Fatalf("%s (cache on): %v", id, err)
		}
		if !bytes.Equal(off.Bytes(), on.Bytes()) {
			t.Errorf("%s output diverges with translation cache disabled vs enabled:\n--- off ---\n%s\n--- on ---\n%s",
				id, off.String(), on.String())
		}
	}
}

// TestIngestTogglesOutputEquivalence is the semantic gate on the new
// control-plane machinery: workload experiments must produce byte-identical
// output with epoch coalescing forced off and with QoS admission switched
// on, at -parallel 1 and 8. The workload goldens never saturate a token
// bucket or depend on flush-merge pricing, so any divergence means the
// coalescer merged away an invalidation it owed (stale TLB entry changes a
// fault path) or admission charged cycles it shouldn't have. ctl-saturation
// itself is deliberately absent: coalescing is the effect it measures, so
// its priced output legitimately changes — its own determinism is covered
// by TestCtlSaturationDeterministic.
func TestIngestTogglesOutputEquivalence(t *testing.T) {
	ids := []string{"fig5a", "mttr"}
	legs := []struct {
		name    string
		set     func()
		restore func()
	}{
		{
			name:    "coalesce-off",
			set:     func() { covirt.SetCoalescingDefault(false) },
			restore: func() { covirt.SetCoalescingDefault(true) },
		},
		{
			// A bucket deep and fast enough that no golden workload ever
			// waits: equivalence proves the admission path itself is free
			// when tokens are available.
			name:    "qos-on",
			set:     func() { covirt.SetQoSDefault(covirt.QoS{Burst: 4096, CyclesPerToken: 2000}) },
			restore: func() { covirt.SetQoSDefault(covirt.QoS{}) },
		},
	}
	for _, id := range ids {
		e := harness.ByID(id)
		if e == nil {
			t.Fatalf("no experiment %q", id)
		}
		for _, par := range []int{1, 8} {
			opt := harness.Options{Reps: 1, Parallel: par}
			var baseline bytes.Buffer
			if err := e.Run(opt, &baseline); err != nil {
				t.Fatalf("%s (defaults, parallel %d): %v", id, par, err)
			}
			for _, leg := range legs {
				var got bytes.Buffer
				leg.set()
				err := e.Run(opt, &got)
				leg.restore()
				if err != nil {
					t.Fatalf("%s (%s, parallel %d): %v", id, leg.name, par, err)
				}
				if !bytes.Equal(baseline.Bytes(), got.Bytes()) {
					t.Errorf("%s output diverges under %s at parallel %d:\n--- defaults ---\n%s\n--- %s ---\n%s",
						id, leg.name, par, baseline.String(), leg.name, got.String())
				}
			}
		}
	}
}
