package harness_test

import (
	"bytes"
	"testing"

	"covirt/internal/harness"
	"covirt/internal/vmx"
)

// TestTransCacheOutputEquivalence is the determinism gate on the hot-path
// caches: regenerating experiments with the VCPU translation cache
// force-disabled and enabled must produce byte-identical output. The cache
// memoizes completed nested walks (and their charged depth), so any
// divergence means a cached translation charged different cycles or masked
// a fault the slow path would have raised. The mttr experiment covers the
// supervised crash/recovery path; fig5a the streaming path; fig7 the
// TLB-missing gather path. The fig7 leg only runs in full, uninstrumented
// suites: two complete HPCG scaling matrices are too slow for -short, and
// under -race they would blow the package's test timeout on a small host
// (the race tier still diffs fig5a and mttr).
func TestTransCacheOutputEquivalence(t *testing.T) {
	ids := []string{"fig5a", "mttr"}
	if !testing.Short() && !raceDetectorEnabled {
		ids = append(ids, "fig7")
	}
	defer vmx.SetTransCacheEnabled(true)
	for _, id := range ids {
		e := harness.ByID(id)
		if e == nil {
			t.Fatalf("no experiment %q", id)
		}
		opt := harness.Options{Reps: 1, Parallel: 4}
		var off, on bytes.Buffer
		vmx.SetTransCacheEnabled(false)
		if err := e.Run(opt, &off); err != nil {
			t.Fatalf("%s (cache off): %v", id, err)
		}
		vmx.SetTransCacheEnabled(true)
		if err := e.Run(opt, &on); err != nil {
			t.Fatalf("%s (cache on): %v", id, err)
		}
		if !bytes.Equal(off.Bytes(), on.Bytes()) {
			t.Errorf("%s output diverges with translation cache disabled vs enabled:\n--- off ---\n%s\n--- on ---\n%s",
				id, off.String(), on.String())
		}
	}
}
