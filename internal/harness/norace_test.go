//go:build !race

package harness_test

// raceDetectorEnabled reports whether this test binary was built with
// -race; see race_test.go.
const raceDetectorEnabled = false
