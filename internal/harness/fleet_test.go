package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestFleetMTTROutput runs the correlated-failure campaign end to end at
// both acceptance sizes and sanity-checks the rendered table.
func TestFleetMTTROutput(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFleetMTTR(Options{Reps: 1, Parallel: 1}, &buf); err != nil {
		t.Fatalf("fleet-mttr: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"nodes", "MTTR (ms)", "resolve (us)", "64", "256"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet-mttr output missing %q:\n%s", want, out)
		}
	}
	// Every fleet size must report a non-zero repair count: 64 nodes lose
	// 4, 256 lose 16, and each loss displaces placed members.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("fleet-mttr rendered %d lines:\n%s", len(lines), out)
	}
	for _, line := range lines[1:] {
		if strings.Contains(line, "\t0\t0\t") {
			t.Errorf("fleet row recovered nothing: %s", line)
		}
	}
}

func TestFleetUpgradeOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFleetUpgrade(Options{Reps: 1, Parallel: 1}, &buf); err != nil {
		t.Fatalf("fleet-upgrade: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"waves", "makespan (ms)", "availability"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet-upgrade output missing %q:\n%s", want, out)
		}
	}
}

// TestFleetOutputParallelInvariance is the fleet determinism gate: both
// fleet experiments must render byte-identical tables with one engine
// worker and with eight. Every fabric charge, placement decision, and
// MTTR figure is a pure function of (experiment, size, rep), so worker
// scheduling must not be observable.
func TestFleetOutputParallelInvariance(t *testing.T) {
	for _, e := range []Experiment{*ByID("fleet-mttr"), *ByID("fleet-upgrade")} {
		var serial, parallel bytes.Buffer
		if err := e.Run(Options{Reps: 2, Parallel: 1}, &serial); err != nil {
			t.Fatalf("%s (parallel 1): %v", e.ID, err)
		}
		if err := e.Run(Options{Reps: 2, Parallel: 8}, &parallel); err != nil {
			t.Fatalf("%s (parallel 8): %v", e.ID, err)
		}
		if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
			t.Errorf("%s output depends on engine parallelism:\n--- serial ---\n%s\n--- parallel ---\n%s",
				e.ID, serial.String(), parallel.String())
		}
	}
}
