package harness

import (
	"errors"
	"testing"

	"covirt/internal/authority"
	"covirt/internal/covirt"
	"covirt/internal/hw"
	"covirt/internal/kitten"
	"covirt/internal/pisces"
	"covirt/internal/workloads"
	"covirt/internal/xemem"
)

// capNode boots a single-core covirt-mem node for the capability tests.
func capNode(t *testing.T) *Node {
	t.Helper()
	n, err := NewNode(CfgCovirtMem, SingleCore, NodeOptions{EnclaveMem: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// TestCapabilityConfusedDeputy pins the deputy check on both grant
// crossings: a capability names its holder, so a service presenting a key
// on behalf of the wrong principal is denied even though the key itself is
// live and authentic.
func TestCapabilityConfusedDeputy(t *testing.T) {
	n := capNode(t)

	// I/O crossing: a key minted for a different enclave is refused by the
	// grant ioctl even when the deputy (the host driver issuing the ioctl)
	// is fully trusted.
	stray, err := n.Ctrl.DelegateIO(n.Enc.ID+7, hw.PortSerialCOM1, hw.PortSerialCOM1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = n.Host.Pisces.Ioctl(covirt.IoctlGrantIO,
		covirt.GrantIOArgs{EnclaveID: n.Enc.ID, Port: hw.PortSerialCOM1, Cap: stray})
	if err == nil {
		t.Fatal("grant with another holder's I/O key accepted")
	}
	own, err := n.Ctrl.DelegateIO(n.Enc.ID, hw.PortSerialCOM1, hw.PortSerialCOM1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Host.Pisces.Ioctl(covirt.IoctlGrantIO,
		covirt.GrantIOArgs{EnclaveID: n.Enc.ID, Port: hw.PortSerialCOM1, Cap: own}); err != nil {
		t.Fatalf("grant with the holder's own key: %v", err)
	}

	// XEMEM crossing: a consumer's attach key does not stand in for the
	// owner key — Remove demands the exact owner capability.
	seg, err := n.Host.HostAlloc(0, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	s, err := n.Host.Master.Reg.Make(hashName("deputy.seg"), n.Host.Pisces.RootMem, []hw.Extent{seg})
	if err != nil {
		t.Fatal(err)
	}
	_, attachKey, err := n.Host.Master.Reg.Attach(s.ID, n.Enc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Host.Master.Reg.Remove(s.ID, attachKey); !errors.Is(err, xemem.ErrDenied) {
		t.Fatalf("Remove with an attach key = %v, want ErrDenied", err)
	}
	if err := n.Host.Master.Reg.Remove(s.ID, s.OwnerCap); err != nil {
		t.Fatalf("Remove with the owner key: %v", err)
	}
}

// TestCapabilityDelegationNarrows pins that delegation only ever shrinks
// authority, end to end: a key narrowed to a window cannot export frames
// outside it, and no child can widen scope or regain dropped rights.
func TestCapabilityDelegationNarrows(t *testing.T) {
	n := capNode(t)
	tab := n.Host.Pisces.Auth

	seg, err := n.Host.HostAlloc(0, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := tab.Delegate(n.Host.Pisces.RootMem, 0,
		authority.RightRead|authority.RightWrite|authority.RightMap|authority.RightDelegate,
		authority.MemScope(seg.Start, 2<<20), "narrow-window")
	if err != nil {
		t.Fatal(err)
	}

	inside := hw.Extent{Start: seg.Start, Size: 1 << 20, Node: seg.Node}
	if _, err := n.Host.Master.Reg.Make(hashName("narrow.in"), narrow, []hw.Extent{inside}); err != nil {
		t.Fatalf("export inside the narrowed window: %v", err)
	}
	if _, err := n.Host.Master.Reg.Make(hashName("narrow.out"), narrow, []hw.Extent{seg}); !errors.Is(err, xemem.ErrDenied) {
		t.Fatalf("export past the narrowed window = %v, want ErrDenied", err)
	}

	// Widening the scope back out is refused at the table.
	if _, err := tab.Delegate(narrow, 0, authority.RightRead,
		authority.MemScope(seg.Start, 4<<20), "widen"); err == nil {
		t.Fatal("delegation widened the scope")
	}
	// So is regaining a right the parent dropped.
	if _, err := tab.Delegate(narrow, 0, authority.RightRemove,
		authority.MemScope(seg.Start, 1<<20), "regain"); err == nil {
		t.Fatal("delegation regained a dropped right")
	}
	// A child minted without RightDelegate is a leaf.
	leaf, err := tab.Delegate(narrow, 0, authority.RightRead,
		authority.MemScope(seg.Start, 1<<20), "leaf")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Delegate(leaf, 0, authority.RightRead,
		authority.MemScope(seg.Start, 4096), "from-leaf"); err == nil {
		t.Fatal("delegation from a key without RightDelegate succeeded")
	}
}

// TestRevocationMidWorkloadPrefix pins the fault semantics of revocation
// landing in the middle of a consumer's workload: every write before the
// revoke is durable, the first touch after it is a contained EPT violation
// (the enclave dies, the host does not), and nothing after the faulting
// access executes.
func TestRevocationMidWorkloadPrefix(t *testing.T) {
	n := capNode(t)
	m := n.Host.Master

	seg, err := n.Host.HostAlloc(0, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Reg.Make(hashName("mid.seg"), n.Host.Pisces.RootMem, []hw.Extent{seg})
	if err != nil {
		t.Fatal(err)
	}

	const prefix = 8
	val := func(i uint64) uint64 { return 0xC0DE_0000_0000_0000 + i }
	var base uint64
	t1, err := n.K.Spawn("prefix", 0, func(e *kitten.Env) error {
		exts, err := e.XemAttach(s.ID)
		if err != nil {
			return err
		}
		base = exts[0].Start
		for i := uint64(0); i < prefix; i++ {
			e.Write64(base+i*8, val(i))
		}
		return nil
	})
	if err == nil {
		err = t1.Wait()
	}
	if err != nil {
		t.Fatal(err)
	}

	// The storm lands mid-workload: the owner key dies, recursive
	// revocation kills the enclave's attach key, and the revocation event
	// unmaps the frames from the EPT behind the guest's back.
	oc, err := m.Reg.OwnerCapOf(s.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RevokeCap(oc); err != nil {
		t.Fatal(err)
	}

	t2, err := n.K.Spawn("stale", 0, func(e *kitten.Env) error {
		// Kitten's own memory map still carries the mapping; only the
		// protection layer below knows the key is dead.
		for i := uint64(prefix); i < prefix+8; i++ {
			e.Write64(base+i*8, val(i))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	werr := t2.Wait()
	if werr == nil {
		t.Fatal("write through a revoked mapping succeeded")
	}
	if n.M.Crashed() {
		t.Fatalf("host node crashed: %s", n.M.CrashReason())
	}
	if n.Enc.State() != pisces.StateCrashed {
		t.Fatalf("enclave state = %v, want crashed", n.Enc.State())
	}

	// Exact prefix: everything before the revoke is durable, the fault
	// names the first post-revoke touch, and no later write landed.
	for i := uint64(0); i < prefix; i++ {
		v, err := n.M.Mem.Read64(base + i*8)
		if err != nil {
			t.Fatal(err)
		}
		if v != val(i) {
			t.Fatalf("prefix write %d lost: %#x", i, v)
		}
	}
	faults := n.M.Faults()
	if len(faults) == 0 {
		t.Fatal("no fault recorded")
	}
	first := faults[0]
	if first.Kind != hw.FaultEPTViolation || first.Addr != base+prefix*8 || !first.Write {
		t.Fatalf("first fault = %+v, want EPT write violation at %#x", first, base+prefix*8)
	}
	for i := uint64(prefix); i < prefix+8; i++ {
		v, err := n.M.Mem.Read64(base + i*8)
		if err != nil {
			t.Fatal(err)
		}
		if v == val(i) {
			t.Fatalf("post-revoke write %d landed", i)
		}
	}
}

// TestTwinRunAuthorityEquivalence pins the zero-perturbation property: a
// violation-free workload executes byte-identically with enforcement on
// and off — same simulated cycles, same memory contents, same number of
// table checks — because capability verification charges no simulated
// time and only diverges control flow on a violation.
func TestTwinRunAuthorityEquivalence(t *testing.T) {
	type outcome struct {
		cycles   uint64
		verifies uint64
		denies   uint64
		sum      uint64
	}
	run := func(enforced bool) outcome {
		t.Helper()
		n := capNode(t)
		auth := n.Host.Pisces.Auth
		auth.SetEnforced(enforced)

		seg, err := n.Host.HostAlloc(0, 2<<20)
		if err != nil {
			t.Fatal(err)
		}
		s, err := n.Host.Master.Reg.Make(hashName("twin.seg"), n.Host.Pisces.RootMem, []hw.Extent{seg})
		if err != nil {
			t.Fatal(err)
		}
		v0, d0 := auth.Verifies.Load(), auth.Denies.Load()
		var o outcome
		task, err := n.K.Spawn("twin", 0, func(e *kitten.Env) error {
			t0 := e.CPU.TSC
			for round := 0; round < 4; round++ {
				exts, err := e.XemAttach(s.ID)
				if err != nil {
					return err
				}
				for i := uint64(0); i < 16; i++ {
					e.Write64(exts[0].Start+i*8, uint64(round)<<32|i)
				}
				for i := uint64(0); i < 16; i++ {
					o.sum += e.Read64(exts[0].Start + i*8)
				}
				if err := e.XemDetach(s.ID); err != nil {
					return err
				}
			}
			o.cycles = e.CPU.TSC - t0
			return nil
		})
		if err == nil {
			err = task.Wait()
		}
		if err != nil {
			t.Fatal(err)
		}
		o.verifies = auth.Verifies.Load() - v0
		o.denies = auth.Denies.Load() - d0
		return o
	}

	on := run(true)
	off := run(false)
	if on != off {
		t.Fatalf("twin runs diverge:\nenforced:   %+v\nunenforced: %+v", on, off)
	}
	if on.denies != 0 {
		t.Fatalf("violation-free run counted %d denies", on.denies)
	}
	if on.verifies == 0 {
		t.Fatal("workload crossed no capability checks")
	}
	if sec := workloads.Seconds(on.cycles); sec <= 0 {
		t.Fatalf("cycles = %d", on.cycles)
	}
}
