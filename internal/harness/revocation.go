package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"covirt/internal/authority"
	"covirt/internal/hobbes"
	"covirt/internal/hw"
	"covirt/internal/kitten"
	"covirt/internal/workloads"
)

func init() {
	All = append(All, Experiment{
		ID:    "revocation",
		Title: "Extension: capability verify overhead and revocation-storm blast radius",
		Run:   RunRevocation,
	})
}

// revVerifyRounds is the attach/detach round count of the verify leg: each
// round crosses the grant path (Make already happened; Attach delegates a
// key, the controller verifies it, the co-kernel mirrors the mapping) and
// the revoke path (DetachDone kills the key).
const revVerifyRounds = 32

// revStormSizes spans the storm leg: segments exported and attached before
// the owner keys are revoked in one burst.
var revStormSizes = []int{1, 4, 16, 64}

// RunRevocation measures the two costs of the capability model.
//
// The verify leg runs an attach/detach loop with enforcement on and off:
// every capability check is counted by the table, and since checks charge
// zero simulated cycles, the two modes execute byte-identical workloads —
// the overhead of verification is O(1) table reads per protection event,
// reported as checks per attach and checks per simulated second.
//
// The storm leg exports N segments to a consumer, then revokes every
// owner key through the master's central driver: recursive revocation
// kills each consumer attach key, EvCapRevoked propagates each kill to
// the protection layer (EPT unmap + TLB shootdown), and the blast radius
// (keys killed, consumers detached, memory withdrawn, event cost) is
// reported per storm size. Both legs run on the simulated clock and are
// byte-identical at any engine parallelism.
func RunRevocation(opt Options, w io.Writer) error {
	reps := opt.reps()
	modes := []bool{true, false}

	var jobs []*Job
	for _, enforced := range modes {
		for rep := 0; rep < reps; rep++ {
			enforced := enforced
			jobs = append(jobs, &Job{
				Experiment: fmt.Sprintf("revocation/verify/enforced=%v", enforced),
				Config:     CfgCovirtMem, Layout: SingleCore, Rep: rep,
				Run: func(j *Job) (*workloads.Result, error) { return revVerifyJob(j, enforced) },
			})
		}
	}
	for _, size := range revStormSizes {
		for rep := 0; rep < reps; rep++ {
			size := size
			jobs = append(jobs, &Job{
				Experiment: fmt.Sprintf("revocation/storm/%d", size),
				Config:     CfgCovirtMem, Layout: SingleCore, Rep: rep,
				Run: func(j *Job) (*workloads.Result, error) { return revStormJob(j, size) },
			})
		}
	}
	results := opt.engine().Run(jobs)
	if err := FirstErr(results); err != nil {
		return err
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "verify leg\tchecks\tper attach\tchecks/sec (M)\tdenies\tattach (us)")
	i := 0
	for _, enforced := range modes {
		var checks, perOp, rate, denies, attach []float64
		for rep := 0; rep < reps; rep++ {
			r := results[i].Res
			i++
			checks = append(checks, r.Metric("verifies"))
			perOp = append(perOp, r.Metric("verifies_per_attach"))
			rate = append(rate, r.Metric("verifies_per_sec"))
			denies = append(denies, r.Metric("denies"))
			attach = append(attach, r.Metric("attach_us"))
		}
		mode := "enforced"
		if !enforced {
			mode = "unenforced"
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.1f\t%.2f\t%.0f\t%.1f\n",
			mode, Summarize(checks).Mean, Summarize(perOp).Mean,
			Summarize(rate).Mean/1e6, Summarize(denies).Mean, Summarize(attach).Mean)
	}
	fmt.Fprintln(tw, "storm size\tkeys revoked\tconsumers detached\tunmapped (MB)\tstorm cost (us)")
	for _, size := range revStormSizes {
		var keys, detached, mb, cost []float64
		for rep := 0; rep < reps; rep++ {
			r := results[i].Res
			i++
			keys = append(keys, r.Metric("keys_revoked"))
			detached = append(detached, r.Metric("consumers_detached"))
			mb = append(mb, r.Metric("unmapped_mb"))
			cost = append(cost, r.Metric("storm_us"))
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.0f\t%.1f\n",
			size, Summarize(keys).Mean, Summarize(detached).Mean,
			Summarize(mb).Mean, Summarize(cost).Mean)
	}
	return tw.Flush()
}

// revVerifyJob measures the check count and rate of one attach/detach loop.
func revVerifyJob(j *Job, enforced bool) (*workloads.Result, error) {
	n, err := NewNode(j.Config, j.Layout, j.Opt)
	if err != nil {
		return nil, err
	}
	defer n.Close()
	auth := n.Host.Pisces.Auth
	auth.SetEnforced(enforced)

	seg, err := n.Host.HostAlloc(0, 4<<20)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("rev.verify.%d", j.Rep)
	if _, err := n.Host.Master.Reg.Make(hashName(name), n.Host.Pisces.RootMem, []hw.Extent{seg}); err != nil {
		return nil, err
	}

	v0, d0 := auth.Verifies.Load(), auth.Denies.Load()
	var cycles uint64
	task, err := n.K.Spawn("verify-loop", 0, func(e *kitten.Env) error {
		segid, err := e.XemGet(name)
		if err != nil {
			return err
		}
		t0 := e.CPU.TSC
		for i := 0; i < revVerifyRounds; i++ {
			if _, err := e.XemAttach(segid); err != nil {
				return err
			}
			if err := e.XemDetach(segid); err != nil {
				return err
			}
		}
		cycles = e.CPU.TSC - t0
		return nil
	})
	if err == nil {
		err = task.Wait()
	}
	if err != nil {
		return nil, err
	}
	verifies := float64(auth.Verifies.Load() - v0)
	denies := float64(auth.Denies.Load() - d0)
	secs := workloads.Seconds(cycles)
	return &workloads.Result{
		Name: "rev-verify", Threads: 1, Cycles: cycles,
		Metrics: map[string]float64{
			"verifies":            verifies,
			"verifies_per_attach": verifies / revVerifyRounds,
			"verifies_per_sec":    verifies / secs,
			"denies":              denies,
			"attach_us":           workloads.Seconds(cycles) / revVerifyRounds * 1e6,
		},
	}, nil
}

// revStormJob exports size segments, attaches the guest to each, then
// revokes every owner key and accounts the resulting storm.
func revStormJob(j *Job, size int) (*workloads.Result, error) {
	n, err := NewNode(j.Config, j.Layout, j.Opt)
	if err != nil {
		return nil, err
	}
	defer n.Close()
	m := n.Host.Master

	segids := make([]uint64, size)
	for i := 0; i < size; i++ {
		seg, err := n.Host.HostAlloc(0, 1<<20)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("rev.storm.%d.%d", j.Rep, i)
		s, err := m.Reg.Make(hashName(name), n.Host.Pisces.RootMem, []hw.Extent{seg})
		if err != nil {
			return nil, err
		}
		segids[i] = s.ID
	}
	task, err := n.K.Spawn("attach-all", 0, func(e *kitten.Env) error {
		for _, segid := range segids {
			if _, err := e.XemAttach(segid); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		err = task.Wait()
	}
	if err != nil {
		return nil, err
	}

	// Account the storm from the bus: every killed key emits EvCapRevoked,
	// attach-key events carry the frames withdrawn from their consumer.
	var keys, detached int
	var unmapped, cost uint64
	m.Bus.Subscribe(func(ev *hobbes.Event) error {
		if ev.Kind != hobbes.EvCapRevoked {
			return nil
		}
		keys++
		cost += ev.Cost
		if ev.Cap.Kind == authority.KindXemem && ev.Cap.Rights&authority.RightRemove == 0 {
			detached++
			for _, x := range ev.Extents {
				unmapped += x.Size
			}
		}
		return nil
	})
	for _, segid := range segids {
		oc, err := m.Reg.OwnerCapOf(segid, 0)
		if err != nil {
			return nil, err
		}
		if err := m.RevokeCap(oc); err != nil {
			return nil, err
		}
	}
	return &workloads.Result{
		Name: "rev-storm", Threads: 1, Cycles: cost,
		Metrics: map[string]float64{
			"keys_revoked":       float64(keys),
			"consumers_detached": float64(detached),
			"unmapped_mb":        float64(unmapped) / (1 << 20),
			"storm_us":           workloads.Seconds(cost) * 1e6,
		},
	}, nil
}
