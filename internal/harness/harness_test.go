package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"covirt/internal/pisces"
	"covirt/internal/workloads"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.N != 4 {
		t.Errorf("stats = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("std = %g, want %g", s.Std, want)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty stats = %+v", z)
	}
	one := Summarize([]float64{7})
	if one.Mean != 7 || one.Std != 0 {
		t.Errorf("single stats = %+v", one)
	}
	if !strings.Contains(s.String(), "±") {
		t.Error("stats string missing ±")
	}
}

func TestOverheadPct(t *testing.T) {
	if got := OverheadPct(100, 103); math.Abs(got-3) > 1e-9 {
		t.Errorf("overhead = %g", got)
	}
	if got := OverheadPct(100, 97); math.Abs(got+3) > 1e-9 {
		t.Errorf("overhead = %g", got)
	}
	if OverheadPct(0, 5) != 0 {
		t.Error("zero base not handled")
	}
}

func TestLayoutsMatchPaper(t *testing.T) {
	want := map[string]struct {
		cores, nodes int
	}{
		"1c/1n": {1, 1}, "4c/2n": {4, 2}, "4c/1n": {4, 1}, "8c/2n": {8, 2},
	}
	if len(Layouts) != len(want) {
		t.Fatalf("layouts = %d", len(Layouts))
	}
	for _, l := range Layouts {
		w, ok := want[l.Name]
		if !ok {
			t.Errorf("unexpected layout %q", l.Name)
			continue
		}
		if l.Cores != w.cores || len(l.Nodes) != w.nodes {
			t.Errorf("layout %q = %d cores %d nodes", l.Name, l.Cores, len(l.Nodes))
		}
	}
}

func TestStandardConfigsNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range append(append([]Config{}, StandardConfigs...), CfgCovirtAll, CfgCovirtMem4K) {
		if seen[c.Name] {
			t.Errorf("duplicate config name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Covirt == (c.Name == "native") {
			t.Errorf("config %q covirt flag inconsistent", c.Name)
		}
	}
}

func TestNewNodeBuildsEveryConfigAndLayout(t *testing.T) {
	for _, cfg := range []Config{CfgNative, CfgCovirtPIV} {
		for _, layout := range Layouts {
			n, err := NewNode(cfg, layout, NodeOptions{EnclaveMem: 1 << 30})
			if err != nil {
				t.Fatalf("%s/%s: %v", cfg.Name, layout.Name, err)
			}
			if n.Enc.State() != pisces.StateRunning {
				t.Errorf("%s/%s: state %v", cfg.Name, layout.Name, n.Enc.State())
			}
			if n.K.NumCores() != layout.Cores {
				t.Errorf("%s/%s: cores %d", cfg.Name, layout.Name, n.K.NumCores())
			}
			if cfg.Covirt && n.Ctrl == nil {
				t.Error("covirt config without controller")
			}
			n.Close()
		}
	}
}

func TestNewNodeRejectsImpossibleLayout(t *testing.T) {
	_, err := NewNode(CfgNative, Layout{Name: "16c/1n", Cores: 16, Nodes: []int{0}}, NodeOptions{EnclaveMem: 1 << 30})
	if err == nil {
		t.Fatal("16 cores on one 6-core socket accepted")
	}
}

func TestRunWorkloadRepetitions(t *testing.T) {
	s := &workloads.Stream{N: 1 << 14, Iters: 1}
	results, err := RunWorkload(CfgNative, SingleCore, NodeOptions{EnclaveMem: 1 << 30}, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	// Fresh nodes per repetition: cycle counts are identical.
	if results[0].Cycles != results[1].Cycles || results[1].Cycles != results[2].Cycles {
		t.Errorf("non-reproducible: %d %d %d", results[0].Cycles, results[1].Cycles, results[2].Cycles)
	}
}

func TestExperimentRegistry(t *testing.T) {
	wantIDs := []string{"table1", "fig3", "fig4", "fig5a", "fig5b", "fig6", "fig7", "fig8",
		"ctl-saturation", "fleet-mttr", "fleet-upgrade", "ipc", "mttr", "revocation"}
	if len(All) != len(wantIDs) {
		t.Fatalf("experiments = %d", len(All))
	}
	for _, id := range wantIDs {
		if ByID(id) == nil {
			t.Errorf("missing experiment %q", id)
		}
	}
	if ByID("fig9") != nil {
		t.Error("phantom experiment")
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable1(Options{}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Selfish Detour", "STREAM", "RandomAccess_OMP", "HPCG", "MiniFE", "LAMMPS"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestFig4SmokeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := RunFig4(Options{Reps: 1}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1024") || !strings.Contains(out, "covirt overhead") {
		t.Errorf("fig4 output:\n%s", out)
	}
	// The covirt column must track native closely (sub-1% overhead).
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 4 && fields[0] != "region" {
			if !strings.HasPrefix(fields[3], "+0.") && !strings.HasPrefix(fields[3], "-0.") {
				t.Errorf("fig4 overhead not ~0: %s", line)
			}
		}
	}
}
