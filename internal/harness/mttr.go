package harness

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"

	"covirt/internal/kitten"
	"covirt/internal/pisces"
	"covirt/internal/supervisor"
	"covirt/internal/testbed"
	"covirt/internal/workloads"
)

func init() {
	All = append(All, Experiment{
		ID:    "mttr",
		Title: "Extension: supervised recovery — detection latency and MTTR per restart policy",
		Run:   RunMTTR,
	})
}

// mttrPolicy is one supervision policy under evaluation. BeatInterval and
// MissedBeats are filled per job from the built machine's cost model.
type mttrPolicy struct {
	name string
	pol  supervisor.Policy
}

// mttrPolicies spans the policy space: immediate restart, backed-off and
// jittered restart, and a zero budget that degrades to plain
// teardown-and-quarantine.
var mttrPolicies = []mttrPolicy{
	{"restart-fast", supervisor.Policy{MaxRestarts: 3}},
	{"restart-backoff", supervisor.Policy{MaxRestarts: 3, JitterPct: 25}},
	{"no-restart", supervisor.Policy{MaxRestarts: 0}},
}

// mttrFaults are the injected failure classes: a Covirt-contained double
// fault (hard crash) and an interrupts-disabled lockup on the boot core
// (soft hang, caught only by the heartbeat watchdog).
var mttrFaults = []string{"crash", "hang"}

// RunMTTR runs the fault-injection campaign: for every (policy, fault)
// cell a supervised enclave runs a payload, takes the injected fault, and
// the watchdog drives it back to health (or quarantine). Detection latency
// and MTTR are measured on the supervisor's virtual clock, so the table is
// byte-identical at any engine parallelism.
func RunMTTR(opt Options, w io.Writer) error {
	reps := opt.reps()
	var jobs []*Job
	for _, p := range mttrPolicies {
		for _, fault := range mttrFaults {
			for rep := 0; rep < reps; rep++ {
				p, fault := p, fault
				jobs = append(jobs, &Job{
					Experiment: "mttr/" + p.name + "/" + fault,
					Config:     CfgCovirtAll, Layout: SingleCore, Rep: rep,
					Opt: NodeOptions{EnclaveMem: 1 << 30, Heartbeat: true},
					Run: func(j *Job) (*workloads.Result, error) {
						return runMTTRJob(j, p.pol, fault)
					},
				})
			}
		}
	}
	results := opt.engine().Run(jobs)
	if err := FirstErr(results); err != nil {
		return err
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tfault\tdetect (ms)\tMTTR (ms)\tMTTR min/max (ms)\trestarts\toutcome")
	i := 0
	for _, p := range mttrPolicies {
		for _, fault := range mttrFaults {
			var detect, mttr []float64
			restarts, quarantined := 0, 0
			for rep := 0; rep < reps; rep++ {
				r := results[i].Res
				i++
				detect = append(detect, r.Metric("detect_ms"))
				restarts += int(r.Metric("restarts"))
				if r.Metric("quarantined") != 0 {
					quarantined++
					continue
				}
				mttr = append(mttr, r.Metric("mttr_ms"))
			}
			d, m := Summarize(detect), Summarize(mttr)
			outcome := "recovered"
			if quarantined == reps {
				outcome = "quarantined"
			} else if quarantined > 0 {
				outcome = fmt.Sprintf("mixed (%d/%d quarantined)", quarantined, reps)
			}
			mttrCol, rangeCol := "-", "-"
			if m.N > 0 {
				mttrCol = fmt.Sprintf("%.1f", m.Mean)
				rangeCol = fmt.Sprintf("%.1f/%.1f", m.Min, m.Max)
			}
			fmt.Fprintf(tw, "%s\t%s\t%.1f\t%s\t%s\t%d\t%s\n",
				p.name, fault, d.Mean, mttrCol, rangeCol, restarts, outcome)
		}
	}
	return tw.Flush()
}

// runMTTRJob executes one fault-injection repetition end to end.
func runMTTRJob(j *Job, pol supervisor.Policy, fault string) (*workloads.Result, error) {
	n, err := NewNode(j.Config, j.Layout, j.Opt)
	if err != nil {
		return nil, err
	}
	defer n.Close()
	tb := n.Testbed()
	buf := tb.EnableTracing(4096)
	sup := supervisor.New(tb, supervisor.Options{Seed: j.Seed(), Tracer: buf})

	// The watchdog threshold must be known host-side (the hang injector
	// waits for the gap to become observable), so pin it explicitly.
	pol.MissedBeats = 3
	pol.BeatInterval = tb.M.Costs.TimerIntervalCycles
	be := tb.Encs[0]
	if err := sup.Watch(be, pol); err != nil {
		return nil, err
	}

	// Baseline payload: proves the guest works and banks >= 1 heartbeat
	// (two full timer periods of charged work on the boot core).
	if err := mttrPayload(n.K, 2*pol.BeatInterval); err != nil {
		return nil, err
	}

	switch fault {
	case "crash":
		if _, err := n.K.Spawn("inject-crash", 0, func(e *kitten.Env) error {
			return e.CPU.RaiseDoubleFault("mttr: injected double fault")
		}); err != nil {
			return nil, err
		}
		<-be.Enc.Done() // containment reported; teardown underway
	case "hang":
		if err := waitBeat(tb, be); err != nil {
			return nil, err
		}
		stall := uint64(2*pol.MissedBeats) * pol.BeatInterval
		if _, err := n.K.Spawn("inject-hang", 0, func(e *kitten.Env) error {
			return e.CPU.StallNoIRQ(stall)
		}); err != nil {
			return nil, err
		}
		waitHung(tb, be, pol)
	default:
		return nil, fmt.Errorf("mttr: unknown fault %q", fault)
	}

	// The fault is now deterministically observable: drive the watchdog to
	// a verdict.
	scans, err := sup.Settle(64)
	if err != nil {
		return nil, err
	}
	st, ok := sup.Status(be.Guest.Name)
	if !ok {
		return nil, fmt.Errorf("mttr: guest %s not supervised", be.Guest.Name)
	}

	res := &workloads.Result{
		Name: "mttr", Threads: 1, Cycles: st.RecoveredAt,
		Metrics: map[string]float64{
			"detect_ms":   float64(st.DetectedAt) / workloads.CyclesPerSecond * 1e3,
			"mttr_ms":     float64(st.RecoveredAt) / workloads.CyclesPerSecond * 1e3,
			"restarts":    float64(st.Restarts),
			"scans":       float64(scans),
			"quarantined": 0,
		},
	}
	if st.State == supervisor.Quarantined {
		if pol.MaxRestarts > 0 {
			return nil, fmt.Errorf("mttr: %s quarantined with budget %d", be.Guest.Name, pol.MaxRestarts)
		}
		res.Metrics["quarantined"] = 1
		res.Cycles = st.DetectedAt
		return res, nil
	}
	if st.State != supervisor.Healthy || st.Restarts == 0 {
		return nil, fmt.Errorf("mttr: %s not recovered: %+v", be.Guest.Name, st)
	}
	// Recovery is only real if the restarted guest does real work: rerun
	// the payload on the replacement kernel.
	if err := mttrPayload(tb.Encs[0].Kitten, 2*pol.BeatInterval); err != nil {
		return nil, fmt.Errorf("mttr: post-recovery payload: %w", err)
	}
	return res, nil
}

// mttrPayload runs a charged compute kernel on the guest's boot core.
func mttrPayload(k *kitten.Kernel, cycles uint64) error {
	task, err := k.Spawn("payload", 0, func(e *kitten.Env) error {
		e.Compute(cycles)
		return nil
	})
	if err != nil {
		return err
	}
	return task.Wait()
}

// waitBeat blocks until the guest has published at least one heartbeat.
// The wait is on published simulated state, not wall-clock time: the boot
// core banked two timer periods of work, so a beat is inevitable once its
// idle loop services the pending timer interrupt.
func waitBeat(tb *testbed.Node, be *testbed.Enclave) error {
	io := pisces.NativeMemIO{Mem: tb.M.Mem}
	hb := be.Enc.Base() + pisces.OffHeartbeat
	for {
		n, err := io.Read64(hb + pisces.HbCount)
		if err != nil {
			return err
		}
		if n > 0 {
			return nil
		}
		runtime.Gosched()
	}
}

// waitHung blocks until the injected stall is observable exactly as the
// watchdog will observe it: the boot core's published TSC has outrun the
// last heartbeat stamp by the policy threshold. Synchronizing on the
// watchdog's own predicate pins detection to the first scan regardless of
// host scheduling.
func waitHung(tb *testbed.Node, be *testbed.Enclave, pol supervisor.Policy) {
	io := pisces.NativeMemIO{Mem: tb.M.Mem}
	hb := be.Enc.Base() + pisces.OffHeartbeat
	thresh := uint64(pol.MissedBeats) * pol.BeatInterval
	for {
		beatTSC, err := io.Read64(hb + pisces.HbTSC)
		if err != nil {
			return
		}
		tsc := be.Enc.BootCPU().TSCSnapshot()
		if tsc > beatTSC && tsc-beatTSC >= thresh {
			return
		}
		runtime.Gosched()
	}
}
