package harness_test

import (
	"bytes"
	"testing"

	"covirt/internal/harness"
	"covirt/internal/workloads"
)

// TestSpanRoutingOutputEquivalence is the figure-level determinism gate on
// the batched gather routing: regenerating experiments with the workloads'
// span routing force-disabled (element-wise Compute/Access loops) and
// enabled (AccessGather batches) must produce byte-identical output. Any
// divergence means a batch charged different cycles, delivered a timer
// tick at a different element, or reordered an RNG stream. fig5b is the
// gather-dominated GUPS sweep; fig8 adds the LAMMPS rebuild/lookup paths
// but costs two full problem matrices, so it only runs in full,
// uninstrumented suites (mirroring the fig7 leg of the translation-cache
// gate).
func TestSpanRoutingOutputEquivalence(t *testing.T) {
	ids := []string{"fig5b"}
	if !testing.Short() && !raceDetectorEnabled {
		ids = append(ids, "fig8")
	}
	defer workloads.SetSpanRouting(true)
	for _, id := range ids {
		e := harness.ByID(id)
		if e == nil {
			t.Fatalf("no experiment %q", id)
		}
		opt := harness.Options{Reps: 1, Parallel: 4}
		var off, on bytes.Buffer
		workloads.SetSpanRouting(false)
		if err := e.Run(opt, &off); err != nil {
			t.Fatalf("%s (routing off): %v", id, err)
		}
		workloads.SetSpanRouting(true)
		if err := e.Run(opt, &on); err != nil {
			t.Fatalf("%s (routing on): %v", id, err)
		}
		if !bytes.Equal(off.Bytes(), on.Bytes()) {
			t.Errorf("%s output diverges with span routing disabled vs enabled:\n--- off ---\n%s\n--- on ---\n%s",
				id, off.String(), on.String())
		}
	}
}
