package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestMTTRRecoversAndQuarantines checks the campaign end to end: restart
// policies recover both fault classes (the post-recovery payload inside
// each job is the proof), and the zero budget quarantines instead.
func TestMTTRRecoversAndQuarantines(t *testing.T) {
	var buf bytes.Buffer
	if err := RunMTTR(Options{Reps: 1, Parallel: 1}, &buf); err != nil {
		t.Fatalf("mttr: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"restart-fast", "restart-backoff", "no-restart", "crash", "hang"} {
		if !strings.Contains(out, want) {
			t.Errorf("mttr output missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "restart-") && !strings.Contains(line, "recovered"):
			t.Errorf("restart policy did not recover: %s", line)
		case strings.HasPrefix(line, "no-restart") && !strings.Contains(line, "quarantined"):
			t.Errorf("zero budget did not quarantine: %s", line)
		}
	}
}

// TestMTTRDeterministicAcrossParallelism is the acceptance check for the
// supervision subsystem: the full fault-injection campaign — heartbeats,
// watchdog scans, jittered restarts, quarantine — produces byte-identical
// output whether jobs run serially or eight at a time.
func TestMTTRDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(parallel int) string {
		var buf bytes.Buffer
		if err := RunMTTR(Options{Reps: 2, Parallel: parallel}, &buf); err != nil {
			t.Fatalf("mttr parallel=%d: %v", parallel, err)
		}
		return buf.String()
	}
	serial := run(1)
	wide := run(8)
	if serial != wide {
		t.Errorf("mttr output differs between -parallel 1 and 8:\n--- serial ---\n%s\n--- parallel 8 ---\n%s", serial, wide)
	}
}
