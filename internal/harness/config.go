// Package harness assembles full simulated nodes (host OS + Pisces +
// Hobbes + optional Covirt) in the paper's evaluation configurations, runs
// the benchmark suite across them, and regenerates every table and figure
// of the evaluation section.
package harness

import (
	"fmt"
	"math"

	"covirt/internal/covirt"
	"covirt/internal/hw"
)

// Config is one protection configuration from the evaluation's legends.
type Config struct {
	Name     string
	Covirt   bool
	Features covirt.Features
}

// The standard evaluation configurations. "native" boots the enclave bare;
// the rest interpose the Covirt hypervisor with increasing feature sets.
var (
	CfgNative      = Config{Name: "native"}
	CfgCovirtNone  = Config{Name: "covirt-none", Covirt: true, Features: covirt.FeaturesNone}
	CfgCovirtMem   = Config{Name: "covirt-mem", Covirt: true, Features: covirt.FeaturesMem}
	CfgCovirtVAPIC = Config{Name: "covirt-mem+ipi-vapic", Covirt: true, Features: covirt.FeaturesMemIPIVAPIC}
	CfgCovirtPIV   = Config{Name: "covirt-mem+ipi-piv", Covirt: true, Features: covirt.FeaturesMemIPIPIV}
	CfgCovirtAll   = Config{Name: "covirt-all", Covirt: true, Features: covirt.FeaturesAll}
	// CfgCovirtMem4K is the large-page ablation: memory protection with
	// EPT coalescing disabled (4 KiB leaves only).
	CfgCovirtMem4K = Config{Name: "covirt-mem-4konly", Covirt: true,
		Features: covirt.Features{Memory: true, Abort: true, EPTMaxPage: hw.PageSize4K}}
)

// StandardConfigs is the per-figure comparison set.
var StandardConfigs = []Config{CfgNative, CfgCovirtNone, CfgCovirtMem, CfgCovirtVAPIC, CfgCovirtPIV}

// Layout is a CPU-core/NUMA-zone hardware layout from Figs. 6-7.
type Layout struct {
	Name  string
	Cores int
	Nodes []int
}

// The four evaluated layouts: single core, 4 cores across 2 NUMA domains,
// 4 cores in one domain, 8 cores across 2 domains.
var Layouts = []Layout{
	{Name: "1c/1n", Cores: 1, Nodes: []int{0}},
	{Name: "4c/2n", Cores: 4, Nodes: []int{0, 1}},
	{Name: "4c/1n", Cores: 4, Nodes: []int{0}},
	{Name: "8c/2n", Cores: 8, Nodes: []int{0, 1}},
}

// SingleCore is the microbenchmark layout (paper: "run on a single-core
// hardware configuration").
var SingleCore = Layouts[0]

// EightCore is the LAMMPS layout ("8 core enclave split across 2 NUMA
// domains").
var EightCore = Layouts[3]

// Stats summarizes repeated measurements.
type Stats struct {
	Mean, Std, Min, Max float64
	N                   int
}

// Summarize computes summary statistics.
func Summarize(xs []float64) Stats {
	s := Stats{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		return Stats{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
	}
	return s
}

// OverheadPct returns the percentage overhead of x relative to base (for
// lower-is-better metrics).
func OverheadPct(base, x float64) float64 {
	if base == 0 {
		return 0
	}
	return (x/base - 1) * 100
}

// String formats stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean, s.Std)
}
