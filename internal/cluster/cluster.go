// Package cluster federates the single-node Hobbes stack across a
// simulated multi-node fleet. Each fleet node is a full testbed stack
// (machine → linuxhost → Pisces/Hobbes → guests); the nodes are joined by
// an integer-cost fabric (Fabric), a sharded federated name service
// (FedRegistry) that any node resolves without a global lock, cross-node
// XEMEM attach that pulls a window over the fabric with every cycle
// charged through the existing cost model, and gang placement that
// atomically places multi-enclave apps across nodes under per-placement
// capability keys. The shape follows Quest-V's "distributed system on a
// chip" one level up: nodes coordinate only through explicit messages and
// shared segments, and each node stays a blast-radius boundary when
// failures correlate.
package cluster

import (
	"fmt"
	"sync"

	"covirt/internal/authority"
	"covirt/internal/hw"
	"covirt/internal/testbed"
)

// fleetConsumerBase offsets synthetic consumer ids used when a remote
// node attaches a segment through the fabric, keeping them disjoint from
// local enclave ids in the home node's registry and capability table.
const fleetConsumerBase = 1 << 20

// FleetConsumer is the consumer id node appears as in a remote node's
// XEMEM registry and capability table.
func FleetConsumer(node int) int { return fleetConsumerBase | node }

// ScanInterval is the fleet watchdog's virtual-clock scan period (one
// default timer period).
const ScanInterval = 170_000_000

// Options configures a fleet.
type Options struct {
	// Nodes is the fleet size.
	Nodes int
	// Seed feeds the fabric's per-link cost derivation.
	Seed uint64
	// Shards is the federated registry's shard count (rounded up to a
	// power of two; <= 0 selects 64).
	Shards int
	// Fabric overrides the interconnect cost model (zero = defaults).
	Fabric FabricCosts
	// NodeSpec builds node i's testbed spec (nil = DefaultNodeSpec). The
	// spec must offline capacity explicitly (OfflineCores/OfflineMem):
	// placement boots guests after Build, so derived carve-outs — which
	// need the guest list up front — cannot apply.
	NodeSpec func(id int) testbed.Spec
}

// Default per-node capacity: three offline-able cores (core 0 stays with
// the host) and 192 MiB of enclave memory — small enough that fleets of
// hundreds of nodes build in well under a second, since simulated memory
// is lazily backed.
const (
	defaultNodeCores = 3
	defaultNodeMem   = 192 << 20
)

// DefaultNodeSpec is the stock fleet node: a single-socket machine with
// spare capacity pre-offlined for placement.
func DefaultNodeSpec(id int) testbed.Spec {
	return testbed.Spec{
		Machine:      hw.MachineSpec{NumNodes: 1, CoresPerNode: defaultNodeCores + 1, MemPerNode: 512 << 20},
		OfflineCores: []int{1, 2, 3},
		OfflineMem:   map[int]uint64{0: defaultNodeMem},
	}
}

// Node is one fleet member.
type Node struct {
	ID int
	TB *testbed.Node

	// Placement bookkeeping, guarded by Cluster.mu.
	freeCores int
	freeMem   uint64
	down      bool // machine crash observed by Recover
	drained   bool // excluded from placement (rolling upgrades)
	version   int  // co-kernel image version, bumped by UpgradeNode
}

// Cluster is a built fleet.
type Cluster struct {
	Opt   Options
	Nodes []*Node
	// Reg is the fleet-wide federated name service.
	Reg *FedRegistry
	// Fab prices every cross-node interaction.
	Fab *Fabric
	// Auth is the fleet-level capability table; placement keys are
	// minted here (per-node tables keep governing node-local resources).
	Auth      *authority.Table
	rootPlace authority.Cap
	// Clock is the fleet management plane's virtual timeline, advanced
	// only by watchdog scans and priced repair work (hw.Clock
	// discipline), so fleet MTTR figures are scheduling-independent.
	Clock hw.Clock

	mu         sync.Mutex //covirt:guards placements,nextApp
	placements map[uint64]*Placement
	nextApp    uint64
}

// New builds the fleet: opt.Nodes testbed stacks in node-id order, the
// fabric, the federated registry, and the fleet capability table with its
// root placement key.
func New(opt Options) (*Cluster, error) {
	if opt.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: fleet size %d", opt.Nodes)
	}
	if opt.Shards <= 0 {
		opt.Shards = 64
	}
	shards := opt.Shards
	spec := opt.NodeSpec
	if spec == nil {
		spec = DefaultNodeSpec
	}
	c := &Cluster{
		Opt:        opt,
		Reg:        NewFedRegistry(shards, opt.Nodes),
		Fab:        NewFabric(opt.Nodes, opt.Seed, opt.Fabric),
		Auth:       authority.NewTable(),
		placements: make(map[uint64]*Placement),
	}
	c.rootPlace = c.Auth.Mint(0, authority.KindPlace, authority.RightsAll,
		authority.WildScope(), "fleet-root-place")
	for i := 0; i < opt.Nodes; i++ {
		s := spec(i)
		tb, err := s.Build()
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: build node %d: %w", i, err)
		}
		var mem uint64
		for _, sz := range s.OfflineMem {
			mem += sz
		}
		c.Nodes = append(c.Nodes, &Node{
			ID: i, TB: tb, freeCores: len(s.OfflineCores), freeMem: mem, version: 1,
		})
	}
	return c, nil
}

// Close tears the fleet down, newest node first (crashed nodes are left
// as-is, per testbed semantics).
func (c *Cluster) Close() {
	for i := len(c.Nodes) - 1; i >= 0; i-- {
		c.Nodes[i].TB.Close()
	}
}

// ResolveFrom resolves name as seen from node src. The lookup itself is
// lock-free (one atomic shard-snapshot load); the returned cycles price
// the control round trip to the shard's home node — zero when the shard
// is src-local, one fabric round trip otherwise. Management-plane callers
// advance their clock by it; the guest-side attach path folds it into the
// attach surcharge instead.
func (c *Cluster) ResolveFrom(src int, name string) (Record, uint64, error) {
	hash := hashName(name)
	cycles := 2 * c.Fab.Latency(src, c.Reg.HomeNode(hash))
	rec, ok := c.Reg.Resolve(hash)
	if !ok {
		return Record{}, cycles, fmt.Errorf("cluster: %q not registered", name)
	}
	return rec, cycles, nil
}

// ExportHost allocates size bytes of host memory on node src, exports it
// in the node-local XEMEM registry under name, and publishes the segment
// fleet-wide. The backing extent is returned so the exporter can fill it.
func (c *Cluster) ExportHost(src int, name string, size uint64) (Record, hw.Extent, error) {
	if src < 0 || src >= len(c.Nodes) {
		return Record{}, hw.Extent{}, fmt.Errorf("cluster: no node %d", src)
	}
	host := c.Nodes[src].TB.Host
	ext, err := host.HostAlloc(0, size)
	if err != nil {
		return Record{}, hw.Extent{}, err
	}
	rootMem := host.Pisces.RootMem
	seg, err := host.Master.Reg.Make(hashName(name), rootMem, []hw.Extent{ext})
	if err != nil {
		host.HostFree(ext)
		return Record{}, hw.Extent{}, err
	}
	rec := Record{Name: name, Hash: hashName(name), Node: src, SegID: seg.ID, Bytes: size}
	if err := c.Reg.Publish(rec); err != nil {
		_ = host.Master.Reg.Remove(seg.ID, seg.OwnerCap)
		host.HostFree(ext)
		return Record{}, hw.Extent{}, err
	}
	return rec, ext, nil
}

// Import is one node's established hold on a (possibly remote) fleet
// segment.
type Import struct {
	Rec  Record
	Node int
	// LocalSeg is the segment id a consumer guest on Node attaches —
	// the original segment when it is node-local, the fabric-mirrored
	// window otherwise.
	LocalSeg uint64
	// Window is the local mirror backing a remote import.
	Window hw.Extent
	// AttachKey is the fleet attach capability delegated by the home
	// node's registry (remote imports only): revoking the exporter
	// reaches this consumer exactly like a local one.
	AttachKey authority.Cap
	// ResolveCycles is the control round trip paid to resolve the name;
	// PullCycles is the per-attach fabric pull (latency + bandwidth)
	// charged to the attaching guest through the longcall cost path.
	ResolveCycles uint64
	PullCycles    uint64

	remote bool
}

// Import makes the named fleet segment attachable on node dst. The name
// resolves through the federated registry; a remote segment is recorded
// as a fleet attachment with the home node (delegating an attach key from
// the segment owner), its frames are pulled over the fabric into a local
// window, and the window is re-exported in dst's local registry under the
// same name — so a consumer guest's ordinary XemGet/XemAttach works
// unchanged, with the fabric pull surcharged onto every attach. The
// window is coherent as of the import (one-sided RDMA-get semantics);
// single-writer segments, the dominant XEMEM pattern, see identical
// bytes to a local consumer.
func (c *Cluster) Import(dst int, name string) (*Import, error) {
	if dst < 0 || dst >= len(c.Nodes) {
		return nil, fmt.Errorf("cluster: no node %d", dst)
	}
	rec, cycles, err := c.ResolveFrom(dst, name)
	if err != nil {
		return nil, err
	}
	c.Clock.Advance(cycles)
	imp := &Import{Rec: rec, Node: dst, ResolveCycles: cycles}
	if rec.Node == dst {
		imp.LocalSeg = rec.SegID
		return imp, nil
	}
	if rec.SegID == 0 {
		return nil, fmt.Errorf("cluster: %q is not a segment record", name)
	}
	home, local := c.Nodes[rec.Node], c.Nodes[dst]
	attachKey, exts, err := fleetAttach(home, rec.SegID, FleetConsumer(dst))
	if err != nil {
		return nil, err
	}
	win, err := local.TB.Host.HostAlloc(0, rec.Bytes)
	if err != nil {
		fleetDetach(home, rec.SegID, FleetConsumer(dst))
		return nil, err
	}
	if err := copyExtents(home.TB.M, local.TB.M, exts, win); err != nil {
		local.TB.Host.HostFree(win)
		fleetDetach(home, rec.SegID, FleetConsumer(dst))
		return nil, err
	}
	rootMem := local.TB.Host.Pisces.RootMem
	seg, err := local.TB.Host.Master.Reg.Make(rec.Hash, rootMem, []hw.Extent{win})
	if err != nil {
		local.TB.Host.HostFree(win)
		fleetDetach(home, rec.SegID, FleetConsumer(dst))
		return nil, err
	}
	imp.LocalSeg, imp.Window, imp.AttachKey, imp.remote = seg.ID, win, attachKey, true
	imp.PullCycles = c.Fab.Transfer(rec.Node, dst, rec.Bytes)
	local.TB.Host.SetAttachSurcharge(seg.ID, imp.PullCycles)
	return imp, nil
}

// Release tears an import down: the local mirror is unexported and its
// window freed, and the home node's fleet attachment is detached (which
// revokes the remote attach key). Local imports are a no-op.
func (c *Cluster) Release(imp *Import) error {
	if !imp.remote {
		return nil
	}
	local, home := c.Nodes[imp.Node], c.Nodes[imp.Rec.Node]
	local.TB.Host.SetAttachSurcharge(imp.LocalSeg, 0)
	ownerCap, err := local.TB.Host.Master.Reg.OwnerCapOf(imp.LocalSeg, 0)
	if err != nil {
		return err
	}
	if err := local.TB.Host.Master.Reg.Remove(imp.LocalSeg, ownerCap); err != nil {
		return err
	}
	local.TB.Host.HostFree(imp.Window)
	fleetDetach(home, imp.Rec.SegID, FleetConsumer(imp.Node))
	imp.remote = false
	return nil
}

// fleetAttach records a remote consumer's attachment with the home node's
// registry, naming the delegated attach key it rides on.
func fleetAttach(home *Node, segid uint64, consumer int) (authority.Cap, []hw.Extent, error) {
	exts, attachKey, err := home.TB.Host.Master.Reg.Attach(segid, consumer)
	if err != nil {
		return authority.Cap{}, nil, err
	}
	return attachKey, exts, nil
}

// fleetDetach completes a remote consumer's detach on the home node.
func fleetDetach(home *Node, segid uint64, consumer int) {
	if _, err := home.TB.Host.Master.Reg.DetachStart(segid, consumer); err != nil {
		return
	}
	_, _ = home.TB.Host.Master.Reg.DetachDone(segid, consumer)
}

// copyExtents materializes the remote frames in the local window — the
// simulator-level effect of the fabric's one-sided pull. The pull's cost
// is charged through the attach surcharge; the copy itself is
// management-plane data movement.
func copyExtents(src, dst *hw.Machine, exts []hw.Extent, win hw.Extent) error {
	buf := make([]byte, 64<<10)
	off := uint64(0)
	for _, e := range exts {
		for done := uint64(0); done < e.Size; {
			n := uint64(len(buf))
			if e.Size-done < n {
				n = e.Size - done
			}
			if err := src.Mem.Read(e.Start+done, buf[:n]); err != nil {
				return err
			}
			if err := dst.Mem.Write(win.Start+off, buf[:n]); err != nil {
				return err
			}
			done += n
			off += n
		}
	}
	return nil
}

// NodeStatus is one node's management-plane view, for the fleet verbs.
type NodeStatus struct {
	ID        int
	State     string // up | drained | down
	Version   int
	FreeCores int
	FreeMem   uint64
	Enclaves  []string
}

// Status reports every node's state in id order.
func (c *Cluster) Status() []NodeStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeStatus, 0, len(c.Nodes))
	for _, nd := range c.Nodes {
		st := NodeStatus{
			ID: nd.ID, State: "up", Version: nd.version,
			FreeCores: nd.freeCores, FreeMem: nd.freeMem,
		}
		if nd.drained {
			st.State = "drained"
		}
		if nd.down || nd.TB.M.Crashed() {
			st.State = "down"
		}
		for _, be := range nd.TB.Encs {
			st.Enclaves = append(st.Enclaves, be.Guest.Name)
		}
		out = append(out, st)
	}
	return out
}
