package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Record locates one fleet-visible resource — an enclave or an exported
// XEMEM segment — by the FNV-1a hash of its name.
type Record struct {
	Name string
	Hash uint64
	// Node is the home node hosting the resource.
	Node int
	// Enclave is the enclave id on the home node (0 for host exports).
	Enclave int
	// SegID names the home node's XEMEM segment for segment records
	// (0 for plain enclave records).
	SegID uint64
	// Bytes is the segment size for segment records.
	Bytes uint64
}

// shard is one partition of the federated registry. Mutations rebuild the
// record map copy-on-write under the shard mutex; resolves take no lock at
// all — one atomic pointer load plus a read of the immutable map, the
// authority.Table publication discipline.
type shard struct {
	mu   sync.Mutex // serializes publishers (copy-on-write of recs)
	recs atomic.Pointer[map[uint64]Record]
}

// FedRegistry is the fleet's sharded, federated name service. Names hash
// onto power-of-two shards, and each shard has a home node (shard index
// mod fleet size) that conceptually hosts it — resolving through a remote
// shard costs a fabric round trip, which Cluster.ResolveFrom prices.
// There is no global lock anywhere on the resolve path: a resolve touches
// exactly one shard, and only its atomically published snapshot.
type FedRegistry struct {
	shards []shard
	mask   uint64
	nodes  int
}

// NewFedRegistry builds a registry with at least the requested shard
// count (rounded up to a power of two) federated across nodes.
func NewFedRegistry(shards, nodes int) *FedRegistry {
	n := 1
	for n < shards {
		n <<= 1
	}
	r := &FedRegistry{shards: make([]shard, n), mask: uint64(n - 1), nodes: nodes}
	for i := range r.shards {
		m := make(map[uint64]Record)
		r.shards[i].recs.Store(&m)
	}
	return r
}

// ShardOf returns the shard index a hash routes to.
func (r *FedRegistry) ShardOf(hash uint64) int { return int(hash & r.mask) }

// HomeNode returns the node hosting the hash's shard.
func (r *FedRegistry) HomeNode(hash uint64) int { return r.ShardOf(hash) % r.nodes }

// Publish inserts or updates rec. Republishing the same name (e.g. after
// a re-placement moves an enclave) is allowed; two different names
// colliding on one hash is not.
func (r *FedRegistry) Publish(rec Record) error {
	s := &r.shards[r.ShardOf(rec.Hash)]
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.recs.Load()
	if existing, taken := old[rec.Hash]; taken && existing.Name != rec.Name {
		return fmt.Errorf("cluster: hash collision: %q vs %q", existing.Name, rec.Name)
	}
	next := make(map[uint64]Record, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[rec.Hash] = rec
	s.recs.Store(&next)
	return nil
}

// Drop removes the record for hash, if present.
func (r *FedRegistry) Drop(hash uint64) {
	s := &r.shards[r.ShardOf(hash)]
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.recs.Load()
	if _, ok := old[hash]; !ok {
		return
	}
	next := make(map[uint64]Record, len(old))
	for k, v := range old {
		if k != hash {
			next[k] = v
		}
	}
	s.recs.Store(&next)
}

// Resolve looks a hash up lock-free: one atomic load of the owning
// shard's snapshot. Any node (any goroutine) can resolve concurrently
// with publishers on the same shard.
func (r *FedRegistry) Resolve(hash uint64) (Record, bool) {
	recs := *r.shards[r.ShardOf(hash)].recs.Load()
	rec, ok := recs[hash]
	return rec, ok
}

// Len counts the records across all shards.
func (r *FedRegistry) Len() int {
	n := 0
	for i := range r.shards {
		n += len(*r.shards[i].recs.Load())
	}
	return n
}
