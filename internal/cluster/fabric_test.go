package cluster

import "testing"

func TestFabricLocalFree(t *testing.T) {
	f := NewFabric(16, 1, FabricCosts{})
	for _, n := range []int{0, 5, 15} {
		if c := f.Latency(n, n); c != 0 {
			t.Errorf("Latency(%d,%d) = %d, want 0", n, n, c)
		}
		if c := f.Transfer(n, n, 1<<20); c != 0 {
			t.Errorf("Transfer(%d,%d) = %d, want 0", n, n, c)
		}
	}
}

func TestFabricHops(t *testing.T) {
	f := NewFabric(9, 1, FabricCosts{}) // 3x3 mesh
	cases := []struct {
		src, dst int
		want     uint64
	}{
		{0, 1, 1}, {0, 3, 1}, {0, 4, 2}, {0, 8, 4}, {2, 6, 4}, {4, 4, 0},
	}
	for _, c := range cases {
		if got := f.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

// TestFabricDeterministicAndSymmetric pins the property the fleet's
// byte-identical parallel output rests on: link costs are a pure function
// of (seed, endpoints), independent of query order, and symmetric.
func TestFabricDeterministicAndSymmetric(t *testing.T) {
	const nodes = 16
	a := NewFabric(nodes, 42, FabricCosts{})
	b := NewFabric(nodes, 42, FabricCosts{})
	amp := a.Costs.BaseLatency * a.Costs.SkewPct / 100
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			la := a.Latency(src, dst)
			if lb := b.Latency(dst, src); la != lb {
				t.Fatalf("Latency(%d,%d)=%d but mirrored rebuild gives %d", src, dst, la, lb)
			}
			if src == dst {
				continue
			}
			base := a.Costs.BaseLatency + a.Costs.PerHop*a.Hops(src, dst)
			if la < base || la > base+amp {
				t.Fatalf("Latency(%d,%d)=%d outside [%d, %d]", src, dst, la, base, base+amp)
			}
		}
	}
}

func TestFabricSeedChangesSkew(t *testing.T) {
	a := NewFabric(16, 1, FabricCosts{})
	b := NewFabric(16, 2, FabricCosts{})
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if a.Latency(src, dst) != b.Latency(src, dst) {
				return
			}
		}
	}
	t.Error("seeds 1 and 2 produced identical link-cost matrices")
}

func TestFabricTransfer(t *testing.T) {
	costs := FabricCosts{BaseLatency: 1000, PerHop: 100, BytesPerCycle: 8, SkewPct: 0}
	f := NewFabric(4, 7, costs) // 2x2 mesh
	lat := f.Latency(0, 3)
	if want := uint64(1000 + 2*100); lat != want {
		t.Fatalf("Latency(0,3) = %d, want %d", lat, want)
	}
	// Bandwidth term rounds up to whole cycles.
	if got, want := f.Transfer(0, 3, 17), lat+3; got != want {
		t.Errorf("Transfer(0,3,17) = %d, want %d", got, want)
	}
	if got, want := f.Transfer(0, 3, 16), lat+2; got != want {
		t.Errorf("Transfer(0,3,16) = %d, want %d", got, want)
	}
}
