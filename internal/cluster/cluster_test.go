package cluster

import (
	"encoding/binary"
	"fmt"
	"testing"

	"covirt/internal/covirt"
	"covirt/internal/hw"
	"covirt/internal/kitten"
	"covirt/internal/supervisor"
	"covirt/internal/testbed"
)

func newFleet(t *testing.T, nodes int, opt Options) *Cluster {
	t.Helper()
	opt.Nodes = nodes
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// consumerGuest boots a plain one-core Kitten consumer on node n.
func consumerGuest(t *testing.T, c *Cluster, n int, name string) *testbed.Enclave {
	t.Helper()
	be, err := c.Nodes[n].TB.BootGuest(testbed.Guest{
		Name: name, Kind: testbed.Kitten, Cores: 1, Nodes: []int{0}, MemBytes: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return be
}

// attachSample runs a guest-side XemGet+XemAttach of name, returning the
// TSC cycles the attach charged and the first/last word of the segment.
func attachSample(t *testing.T, be *testbed.Enclave, name string) (uint64, [2]uint64) {
	t.Helper()
	var delta uint64
	var words [2]uint64
	task, err := be.Kitten.Spawn("attach", 0, func(e *kitten.Env) error {
		segid, err := e.XemGet(name)
		if err != nil {
			return err
		}
		t0 := e.CPU.TSC
		exts, err := e.XemAttach(segid)
		if err != nil {
			return err
		}
		delta = e.CPU.TSC - t0
		if len(exts) != 1 {
			return fmt.Errorf("attach returned %d extents, want 1", len(exts))
		}
		words[0] = e.Read64(exts[0].Start)
		words[1] = e.Read64(exts[0].Start + exts[0].Size - 8)
		return e.XemDetach(segid)
	})
	if err == nil {
		err = task.Wait()
	}
	if err != nil {
		t.Fatalf("attach %s on %s: %v", name, be.Guest.Name, err)
	}
	return delta, words
}

func write64(t *testing.T, m *hw.Machine, addr, val uint64) {
	t.Helper()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	if err := m.Mem.Write(addr, buf[:]); err != nil {
		t.Fatal(err)
	}
}

func TestImportLocalIsFree(t *testing.T) {
	c := newFleet(t, 2, Options{Seed: 1})
	rec, _, err := c.ExportHost(0, "local.seg", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := c.Import(0, "local.seg")
	if err != nil {
		t.Fatal(err)
	}
	if imp.LocalSeg != rec.SegID || imp.PullCycles != 0 || imp.remote {
		t.Fatalf("local import = %+v", imp)
	}
	if err := c.Release(imp); err != nil {
		t.Fatal(err)
	}
}

// TestCrossNodeAttachEquivalence is the tentpole's core contract: a
// consumer on a remote node sees byte-identical segment contents through
// an unchanged XemGet/XemAttach, and pays exactly the fabric pull on top
// of what a local consumer pays — the extra cycles land in the attach
// latency, nowhere else.
func TestCrossNodeAttachEquivalence(t *testing.T) {
	const name = "fleet.shared"
	const size = 2 << 20
	c := newFleet(t, 4, Options{Seed: 11})
	_, ext, err := c.ExportHost(0, name, size)
	if err != nil {
		t.Fatal(err)
	}
	write64(t, c.Nodes[0].TB.M, ext.Start, 0xFEEDFACE)
	write64(t, c.Nodes[0].TB.M, ext.Start+size-8, 0xDEADBEEF)

	imp, err := c.Import(2, name)
	if err != nil {
		t.Fatal(err)
	}
	if want := c.Fab.Transfer(0, 2, size); imp.PullCycles != want {
		t.Fatalf("PullCycles = %d, want Fab.Transfer(0,2,%d) = %d", imp.PullCycles, size, want)
	}
	if imp.PullCycles == 0 {
		t.Fatal("remote pull charged nothing")
	}
	// The attach key is delegated by the home node's registry, so it
	// lives in that node's authority table, not the fleet table.
	if !c.Nodes[0].TB.Host.Pisces.Auth.Alive(imp.AttachKey) {
		t.Fatal("fleet attach key not alive in home node's table")
	}

	local := consumerGuest(t, c, 0, "consumer0")
	remote := consumerGuest(t, c, 2, "consumer2")
	dLocal, wLocal := attachSample(t, local, name)
	dRemote, wRemote := attachSample(t, remote, name)

	if wLocal != wRemote {
		t.Errorf("contents differ: local %#x remote %#x", wLocal, wRemote)
	}
	if wLocal != [2]uint64{0xFEEDFACE, 0xDEADBEEF} {
		t.Errorf("local consumer read %#x", wLocal)
	}
	if dRemote-dLocal != imp.PullCycles {
		t.Errorf("remote attach = %d cycles, local = %d; delta %d, want PullCycles %d",
			dRemote, dLocal, dRemote-dLocal, imp.PullCycles)
	}

	// Release tears the mirror down: the name no longer resolves locally
	// and the home node drops the fleet attachment.
	if err := c.Release(imp); err != nil {
		t.Fatal(err)
	}
	if c.Nodes[0].TB.Host.Pisces.Auth.Alive(imp.AttachKey) {
		t.Error("fleet attach key survived release")
	}
	if _, err := c.Nodes[2].TB.Host.Master.Reg.Get(hashName(name)); err == nil {
		t.Error("mirror still resolvable on node 2 after release")
	}
}

func TestGangPlacementRollback(t *testing.T) {
	c := newFleet(t, 2, Options{Seed: 3})
	before := c.Reg.Len()
	// Two members fit (one per node); the third finds no node with two
	// free cores, so the whole gang must unwind.
	app := App{Name: "gang", Members: []Member{
		{Name: "a", Cores: 2, MemBytes: 64 << 20},
		{Name: "b", Cores: 2, MemBytes: 64 << 20},
		{Name: "c", Cores: 2, MemBytes: 64 << 20},
	}}
	if _, err := c.Place(app); err == nil {
		t.Fatal("oversized gang placed")
	}
	if n := c.Reg.Len(); n != before {
		t.Errorf("registry has %d records after rollback, want %d", n, before)
	}
	for _, st := range c.Status() {
		if st.FreeCores != defaultNodeCores || len(st.Enclaves) != 0 {
			t.Errorf("node %d not restored: %+v", st.ID, st)
		}
	}
	if len(c.Placements()) != 0 {
		t.Error("failed placement recorded")
	}

	// The fleet is intact: a gang that fits places cleanly afterwards.
	pl, err := c.Place(App{Name: "ok", Members: []Member{
		{Name: "a", Cores: 1, MemBytes: 32 << 20},
		{Name: "b", Cores: 1, MemBytes: 32 << 20},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Auth.Alive(pl.AppKey) {
		t.Error("gang key dead after successful placement")
	}
	if pl.Members[0].Node == pl.Members[1].Node {
		t.Errorf("both members on node %d; most-free-first should spread them", pl.Members[0].Node)
	}
	for _, m := range pl.Members {
		if !c.Auth.Alive(m.Key) {
			t.Errorf("member %s key dead", m.Member.Name)
		}
		rec, ok := c.Reg.Resolve(hashName("ok/" + m.Member.Name))
		if !ok || rec.Node != m.Node {
			t.Errorf("record for %s = %+v, %v", m.Member.Name, rec, ok)
		}
	}
}

func TestDrainMovesMembers(t *testing.T) {
	c := newFleet(t, 3, Options{Seed: 4})
	if _, err := c.Place(App{Name: "app1", Members: []Member{{Name: "m", Cores: 1, MemBytes: 32 << 20}}}); err != nil {
		t.Fatal(err)
	}
	pl := c.Placements()[0]
	src := pl.Members[0].Node
	oldKey := pl.Members[0].Key

	moved, err := c.Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("moved = %d, want 1", moved)
	}
	pl = c.Placements()[0]
	if pl.Members[0].Node == src {
		t.Fatal("member still on drained node")
	}
	if c.Auth.Alive(oldKey) {
		t.Error("old member key survived the move")
	}
	if !c.Auth.Alive(pl.Members[0].Key) {
		t.Error("new member key dead")
	}
	st := c.Status()[src]
	if st.State != "drained" || len(st.Enclaves) != 0 || st.FreeCores != defaultNodeCores {
		t.Errorf("drained node status %+v", st)
	}
	if rec, _ := c.Reg.Resolve(hashName("app1/m")); rec.Node != pl.Members[0].Node {
		t.Errorf("record points at node %d, member on %d", rec.Node, pl.Members[0].Node)
	}

	// A drained node takes no placements until undrained.
	pl2, err := c.Place(App{Name: "app2", Members: []Member{{Name: "m", Cores: 1, MemBytes: 32 << 20}}})
	if err != nil {
		t.Fatal(err)
	}
	if pl2.Members[0].Node == src {
		t.Error("placement landed on a drained node")
	}
	c.Undrain(src)
	pl3, err := c.Place(App{Name: "app3", Members: []Member{{Name: "m", Cores: 1, MemBytes: 32 << 20}}})
	if err != nil {
		t.Fatal(err)
	}
	if pl3.Members[0].Node != src {
		t.Errorf("undrained node %d (all cores free) not preferred; got %d", src, pl3.Members[0].Node)
	}
}

func TestUpgradeNodeRollsMembers(t *testing.T) {
	c := newFleet(t, 2, Options{Seed: 5})
	if _, err := c.Place(App{Name: "svc", Members: []Member{{Name: "m", Cores: 1, MemBytes: 32 << 20}}}); err != nil {
		t.Fatal(err)
	}
	pl := c.Placements()[0]
	node, oldEnc := pl.Members[0].Node, pl.Members[0].Enc.Enc.ID

	boot, err := c.UpgradeNode(node)
	if err != nil {
		t.Fatal(err)
	}
	if boot == 0 {
		t.Error("upgrade reported a zero-cycle reboot window")
	}
	if v := c.Version(node); v != 2 {
		t.Errorf("version = %d, want 2", v)
	}
	pl = c.Placements()[0]
	if pl.Members[0].Node != node {
		t.Errorf("upgrade moved the member to node %d", pl.Members[0].Node)
	}
	if pl.Members[0].Enc.Enc.ID == oldEnc {
		t.Error("member enclave not rebooted")
	}
	if rec, _ := c.Reg.Resolve(hashName("svc/m")); rec.Enclave != pl.Members[0].Enc.Enc.ID {
		t.Errorf("record enclave %d, want %d", rec.Enclave, pl.Members[0].Enc.Enc.ID)
	}
}

func TestRecoverFailsOver(t *testing.T) {
	c := newFleet(t, 4, Options{Seed: 6})
	for i := 0; i < 3; i++ {
		app := App{Name: fmt.Sprintf("app%d", i), Members: []Member{
			{Name: "a", Cores: 1, MemBytes: 32 << 20},
			{Name: "b", Cores: 1, MemBytes: 32 << 20},
		}}
		if _, err := c.Place(app); err != nil {
			t.Fatal(err)
		}
	}
	// Pick a node hosting at least one member and fail it.
	victim := c.Placements()[0].Members[0].Node
	lost := 0
	for _, pl := range c.Placements() {
		for _, m := range pl.Members {
			if m.Node == victim {
				lost++
			}
		}
	}
	c.Nodes[victim].TB.M.Crash("correlated power fault")

	rep := c.Recover()
	if len(rep.Failed) != 1 || rep.Failed[0] != victim {
		t.Fatalf("Failed = %v, want [%d]", rep.Failed, victim)
	}
	if rep.Displaced != lost || rep.Replaced != lost || rep.Stranded != 0 {
		t.Fatalf("displaced/replaced/stranded = %d/%d/%d, want %d/%d/0",
			rep.Displaced, rep.Replaced, rep.Stranded, lost, lost)
	}
	if len(rep.MTTR) != lost {
		t.Fatalf("MTTR samples = %d, want %d", len(rep.MTTR), lost)
	}
	for _, mttr := range rep.MTTR {
		if mttr <= ScanInterval {
			t.Errorf("MTTR %d does not include repair cost beyond the scan interval", mttr)
		}
	}
	if rep.At != c.Clock.Now() {
		t.Errorf("report stamped %d, clock at %d", rep.At, c.Clock.Now())
	}
	for _, pl := range c.Placements() {
		for _, m := range pl.Members {
			if m.Node == victim {
				t.Errorf("%s/%s still on failed node", pl.App.Name, m.Member.Name)
			}
			name := pl.App.Name + "/" + m.Member.Name
			if rec, ok := c.Reg.Resolve(hashName(name)); !ok || rec.Node != m.Node {
				t.Errorf("record for %s = %+v, member on %d", name, rec, m.Node)
			}
		}
	}
	if st := c.Status()[victim]; st.State != "down" {
		t.Errorf("victim state %q", st.State)
	}

	// A second scan finds a quiesced fleet.
	rep = c.Recover()
	if len(rep.Failed) != 0 || rep.Displaced != 0 {
		t.Errorf("second scan reported %+v", rep)
	}
}

// covirtNodeSpec is DefaultNodeSpec plus full Covirt protection, so an
// injected double fault is contained to its enclave instead of taking the
// simulated machine down.
func covirtNodeSpec(id int) testbed.Spec {
	s := DefaultNodeSpec(id)
	s.Covirt = true
	s.Features = covirt.FeaturesAll
	return s
}

// TestSupervisorEscalatesToFleet wires a node-local supervisor's
// quarantine escalation into fleet re-placement: when the restart budget
// is exhausted, the member is re-placed on a surviving node while the
// quarantined hardware stays with its host.
func TestSupervisorEscalatesToFleet(t *testing.T) {
	c := newFleet(t, 2, Options{Seed: 7, NodeSpec: covirtNodeSpec})
	pl, err := c.Place(App{Name: "svc", Members: []Member{{Name: "victim", Cores: 1, MemBytes: 32 << 20}}})
	if err != nil {
		t.Fatal(err)
	}
	src := pl.Members[0].Node
	be := pl.Members[0].Enc

	sup := supervisor.New(c.Nodes[src].TB, supervisor.Options{
		OnQuarantine: func(name string) {
			if err := c.ReplaceEnclave(src, name); err != nil {
				t.Errorf("escalation: %v", err)
			}
		},
	})
	if err := sup.Watch(be, supervisor.Policy{MaxRestarts: 0}); err != nil {
		t.Fatal(err)
	}

	if _, err := be.Kitten.Spawn("crash", 0, func(e *kitten.Env) error {
		return e.CPU.RaiseDoubleFault("injected")
	}); err != nil {
		t.Fatal(err)
	}
	<-be.Enc.Done()

	quarantined := false
	for i := 0; i < 64 && !quarantined; i++ {
		if err := sup.Scan(); err != nil {
			t.Fatal(err)
		}
		if st, ok := sup.Status("svc/victim"); ok && st.State == supervisor.Quarantined {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatal("supervisor never quarantined the victim")
	}

	pl = c.Placements()[0]
	if got := pl.Members[0].Node; got == src {
		t.Fatalf("member still on node %d after escalation", src)
	}
	if rec, ok := c.Reg.Resolve(hashName("svc/victim")); !ok || rec.Node != pl.Members[0].Node {
		t.Errorf("record = %+v, member on %d", rec, pl.Members[0].Node)
	}
	// Quarantined hardware stayed with node src's host: fleet capacity
	// there must NOT have been restored.
	if st := c.Status()[src]; st.FreeCores != defaultNodeCores-1 {
		t.Errorf("node %d free cores = %d; quarantined core must stay withdrawn", src, st.FreeCores)
	}
}

// TestFleetScale256 is the acceptance-scale run: 256 full node stacks, a
// fleet-wide export resolved from every node through the sharded registry,
// gang placements across the fleet, and a correlated-failure recovery.
func TestFleetScale256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node fleet build")
	}
	const nodes = 256
	c := newFleet(t, nodes, Options{Seed: 9, Shards: nodes})
	if _, _, err := c.ExportHost(3, "scale.seg", 1<<20); err != nil {
		t.Fatal(err)
	}
	home := c.Reg.HomeNode(hashName("scale.seg"))
	for n := 0; n < nodes; n++ {
		rec, cycles, err := c.ResolveFrom(n, "scale.seg")
		if err != nil {
			t.Fatal(err)
		}
		if rec.Node != 3 {
			t.Fatalf("node %d resolved %+v", n, rec)
		}
		if want := 2 * c.Fab.Latency(n, home); cycles != want {
			t.Fatalf("resolve from %d charged %d, want %d", n, cycles, want)
		}
	}
	for i := 0; i < 32; i++ {
		app := App{Name: fmt.Sprintf("app%d", i), Members: []Member{
			{Name: "a", Cores: 1, MemBytes: 32 << 20},
			{Name: "b", Cores: 1, MemBytes: 32 << 20},
		}}
		if _, err := c.Place(app); err != nil {
			t.Fatal(err)
		}
	}
	for n := 0; n < nodes; n += 16 {
		c.Nodes[n].TB.M.Crash("rack power loss")
	}
	rep := c.Recover()
	if len(rep.Failed) != nodes/16 {
		t.Fatalf("Failed = %v", rep.Failed)
	}
	if rep.Stranded != 0 || rep.Replaced != rep.Displaced {
		t.Fatalf("replaced %d of %d displaced, %d stranded", rep.Replaced, rep.Displaced, rep.Stranded)
	}
	for _, pl := range c.Placements() {
		for _, m := range pl.Members {
			if m.Node%16 == 0 {
				t.Fatalf("%s/%s left on failed node %d", pl.App.Name, m.Member.Name, m.Node)
			}
		}
	}
}
