package cluster

import (
	"fmt"
	"sync"
	"testing"
)

func TestFedRegistryPublishResolveDrop(t *testing.T) {
	r := NewFedRegistry(8, 4)
	rec := Record{Name: "seg.a", Hash: hashName("seg.a"), Node: 2, SegID: 7, Bytes: 1 << 20}
	if err := r.Publish(rec); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Resolve(rec.Hash)
	if !ok || got != rec {
		t.Fatalf("Resolve = %+v, %v", got, ok)
	}
	// Republishing the same name (re-placement) updates in place.
	rec.Node = 3
	if err := r.Publish(rec); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Resolve(rec.Hash); got.Node != 3 {
		t.Fatalf("republish: Node = %d, want 3", got.Node)
	}
	if n := r.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	r.Drop(rec.Hash)
	if _, ok := r.Resolve(rec.Hash); ok {
		t.Fatal("resolved a dropped record")
	}
}

func TestFedRegistryHashCollision(t *testing.T) {
	r := NewFedRegistry(8, 4)
	if err := r.Publish(Record{Name: "a", Hash: 99}); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish(Record{Name: "b", Hash: 99}); err == nil {
		t.Fatal("colliding publish of a different name accepted")
	}
}

func TestFedRegistrySharding(t *testing.T) {
	r := NewFedRegistry(5, 3) // rounds up to 8 shards
	if len(r.shards) != 8 {
		t.Fatalf("shard count = %d, want 8", len(r.shards))
	}
	seen := make(map[int]bool)
	for i := 0; i < 256; i++ {
		h := hashName(fmt.Sprintf("name-%d", i))
		s := r.ShardOf(h)
		if s < 0 || s >= 8 {
			t.Fatalf("ShardOf = %d", s)
		}
		home := r.HomeNode(h)
		if home != s%3 {
			t.Fatalf("HomeNode(%d) = %d, want shard %d mod 3", h, home, s)
		}
		seen[s] = true
	}
	if len(seen) < 4 {
		t.Errorf("256 names landed on only %d of 8 shards", len(seen))
	}
}

// TestFedRegistryConcurrent exercises the lock-free resolve path against
// concurrent publishers and droppers; the race detector is the oracle.
func TestFedRegistryConcurrent(t *testing.T) {
	r := NewFedRegistry(4, 8)
	const names = 64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < names; i++ {
				name := fmt.Sprintf("w%d/seg%d", g, i)
				rec := Record{Name: name, Hash: hashName(name), Node: g}
				if err := r.Publish(rec); err != nil {
					t.Error(err)
				}
				if i%3 == 0 {
					r.Drop(rec.Hash)
				}
			}
		}(g)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < names; i++ {
				for o := 0; o < 4; o++ {
					name := fmt.Sprintf("w%d/seg%d", o, i)
					if rec, ok := r.Resolve(hashName(name)); ok && rec.Name != name {
						t.Errorf("Resolve(%q) returned %q", name, rec.Name)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
