package cluster

import (
	"fmt"
	"sort"

	"covirt/internal/authority"
	"covirt/internal/testbed"
)

// Member declares one enclave of a gang-placed application.
type Member struct {
	Name      string
	Cores     int
	MemBytes  uint64
	Heartbeat bool
}

// App is a multi-enclave application placed as one atomic gang.
type App struct {
	Name    string
	Members []Member
}

// Placed is one member's realized placement.
type Placed struct {
	Member Member
	Node   int
	Enc    *testbed.Enclave
	// Key is the member's placement capability, delegated from the
	// gang's AppKey — revoking the gang key kills every member key.
	Key authority.Cap
}

// Placement is a successfully placed gang.
type Placement struct {
	ID     uint64
	App    App
	AppKey authority.Cap
	// Members is index-aligned with App.Members.
	Members []Placed
}

// Reboot cost model: a member reboot pays fixed kernel init plus
// per-4KiB-frame setup (frame-list assembly and mapping), mirroring the
// host's per-page attach pricing. An idle simulated core's TSC is frozen,
// so boot windows are priced from the declaration, not read back.
const (
	bootBaseCycles    = 2_000_000
	bootPerPageCycles = 150
)

// bootCost prices rebooting m from its declaration.
func bootCost(m Member) uint64 {
	return bootBaseCycles + m.MemBytes/4096*bootPerPageCycles
}

// memberGuest is the testbed declaration a member boots as.
func memberGuest(app App, m Member) testbed.Guest {
	return testbed.Guest{
		Name: app.Name + "/" + m.Name, Kind: testbed.Kitten,
		Cores: m.Cores, Nodes: []int{0}, MemBytes: m.MemBytes, Heartbeat: m.Heartbeat,
	}
}

// Place atomically places app across the fleet: one placement key is
// delegated from the fleet root, each member gets a key delegated from
// it, boots on the least-loaded live node, and is published in the
// federated registry. On any partial failure the booted prefix is
// destroyed, the published records dropped, capacity restored, and the
// placement key revoked — recursively killing every member key — so the
// fleet is left exactly as found.
func (c *Cluster) Place(app App) (*Placement, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(app.Members) == 0 {
		return nil, fmt.Errorf("cluster: app %s has no members", app.Name)
	}
	id := c.nextApp + 1
	appKey, err := c.Auth.Delegate(c.rootPlace, 0,
		authority.RightMap|authority.RightDelegate, authority.PlaceScope(id), "app-"+app.Name)
	if err != nil {
		return nil, err
	}
	pl := &Placement{ID: id, App: app, AppKey: appKey}
	for _, m := range app.Members {
		nd := c.pickNodeLocked(m)
		if nd == nil {
			c.unwindPlacementLocked(pl)
			return nil, fmt.Errorf("cluster: no node can host %s/%s (%d cores, %d B)",
				app.Name, m.Name, m.Cores, m.MemBytes)
		}
		key, err := c.Auth.Delegate(appKey, FleetConsumer(nd.ID),
			authority.RightMap, authority.PlaceScope(id), app.Name+"/"+m.Name)
		if err != nil {
			c.unwindPlacementLocked(pl)
			return nil, err
		}
		be, err := nd.TB.BootGuest(memberGuest(app, m))
		if err != nil {
			c.unwindPlacementLocked(pl)
			return nil, fmt.Errorf("cluster: boot %s/%s on node %d: %w", app.Name, m.Name, nd.ID, err)
		}
		nd.freeCores -= m.Cores
		nd.freeMem -= m.MemBytes
		pl.Members = append(pl.Members, Placed{Member: m, Node: nd.ID, Enc: be, Key: key})
		rec := Record{Name: be.Guest.Name, Hash: hashName(be.Guest.Name),
			Node: nd.ID, Enclave: be.Enc.ID}
		if err := c.Reg.Publish(rec); err != nil {
			c.unwindPlacementLocked(pl)
			return nil, err
		}
	}
	c.nextApp = id
	c.placements[id] = pl
	return pl, nil
}

// unwindPlacementLocked reverses a partially placed gang, newest member
// first, and revokes the gang key — recursively killing every member key.
func (c *Cluster) unwindPlacementLocked(pl *Placement) {
	for i := len(pl.Members) - 1; i >= 0; i-- {
		p := pl.Members[i]
		nd := c.Nodes[p.Node]
		if !nd.TB.M.Crashed() {
			_ = nd.TB.Host.Pisces.Destroy(p.Enc.Enc)
			removeEnc(nd.TB, p.Enc)
		}
		c.Reg.Drop(hashName(p.Enc.Guest.Name))
		nd.freeCores += p.Member.Cores
		nd.freeMem += p.Member.MemBytes
	}
	_, _ = c.Auth.Revoke(pl.AppKey)
}

// pickNodeLocked selects m's placement target: the up, undrained node
// with the most free cores (ties: most free memory, then lowest id) that
// fits — a deterministic function of fleet state.
func (c *Cluster) pickNodeLocked(m Member) *Node {
	var best *Node
	for _, nd := range c.Nodes {
		if nd.down || nd.drained || nd.TB.M.Crashed() {
			continue
		}
		if nd.freeCores < m.Cores || nd.freeMem < m.MemBytes {
			continue
		}
		if best == nil || nd.freeCores > best.freeCores ||
			(nd.freeCores == best.freeCores && nd.freeMem > best.freeMem) {
			best = nd
		}
	}
	return best
}

// placementIDsLocked returns the live placement ids in ascending order,
// so every fleet-wide sweep enumerates deterministically.
func (c *Cluster) placementIDsLocked() []uint64 {
	ids := make([]uint64, 0, len(c.placements))
	for id := range c.placements {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Placements snapshots the live placements in id order.
func (c *Cluster) Placements() []*Placement {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Placement, 0, len(c.placements))
	for _, id := range c.placementIDsLocked() {
		out = append(out, c.placements[id])
	}
	return out
}

// removeEnc splices a destroyed enclave out of its testbed's list.
func removeEnc(tb *testbed.Node, be *testbed.Enclave) {
	for i, e := range tb.Encs {
		if e == be {
			tb.Encs = append(tb.Encs[:i], tb.Encs[i+1:]...)
			return
		}
	}
}

// replaceMemberLocked moves placement member i onto a fresh node: the old
// enclave is destroyed when still running (destroyOld) and its testbed
// entry dropped, capacity is restored when restoreCap (false when the
// node died, or when quarantine already withdrew the hardware to the
// host), a new member key is delegated from the gang key, the replacement
// boots on the best surviving node, and the fleet record is republished.
// The old member key is revoked last.
func (c *Cluster) replaceMemberLocked(pl *Placement, i int, destroyOld, restoreCap bool) error {
	old := pl.Members[i]
	oldNode := c.Nodes[old.Node]
	if !oldNode.TB.M.Crashed() {
		if destroyOld {
			if err := oldNode.TB.Host.Pisces.Destroy(old.Enc.Enc); err == nil {
				<-old.Enc.Enc.Reclaimed()
			}
		}
		removeEnc(oldNode.TB, old.Enc)
	}
	if restoreCap {
		oldNode.freeCores += old.Member.Cores
		oldNode.freeMem += old.Member.MemBytes
	}
	nd := c.pickNodeLocked(old.Member)
	name := pl.App.Name + "/" + old.Member.Name
	if nd == nil {
		return fmt.Errorf("cluster: no surviving node can host %s", name)
	}
	key, err := c.Auth.Delegate(pl.AppKey, FleetConsumer(nd.ID),
		authority.RightMap, authority.PlaceScope(pl.ID), name)
	if err != nil {
		return err
	}
	be, err := nd.TB.BootGuest(memberGuest(pl.App, old.Member))
	if err != nil {
		return fmt.Errorf("cluster: re-place %s on node %d: %w", name, nd.ID, err)
	}
	nd.freeCores -= old.Member.Cores
	nd.freeMem -= old.Member.MemBytes
	rec := Record{Name: be.Guest.Name, Hash: hashName(be.Guest.Name),
		Node: nd.ID, Enclave: be.Enc.ID}
	if err := c.Reg.Publish(rec); err != nil {
		return err
	}
	if c.Auth.Alive(old.Key) {
		_, _ = c.Auth.Revoke(old.Key)
	}
	pl.Members[i] = Placed{Member: old.Member, Node: nd.ID, Enc: be, Key: key}
	return nil
}

// Drain marks node unschedulable and re-places every member currently on
// it onto the rest of the fleet, returning the number moved. The node's
// capacity is preserved but unused until Undrain.
func (c *Cluster) Drain(node int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if node < 0 || node >= len(c.Nodes) {
		return 0, fmt.Errorf("cluster: no node %d", node)
	}
	c.Nodes[node].drained = true
	moved := 0
	for _, id := range c.placementIDsLocked() {
		pl := c.placements[id]
		for i := range pl.Members {
			if pl.Members[i].Node != node {
				continue
			}
			if err := c.replaceMemberLocked(pl, i, true, true); err != nil {
				return moved, err
			}
			moved++
		}
	}
	return moved, nil
}

// Undrain returns a drained node to the placement pool.
func (c *Cluster) Undrain(node int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if node >= 0 && node < len(c.Nodes) {
		c.Nodes[node].drained = false
	}
}

// ReplaceEnclave re-places the named member off node — the hook a
// node-local supervisor calls (via Options.OnQuarantine) when an enclave
// exhausts its restart budget: node-local quarantine escalates to
// fleet-level re-placement. The quarantined member's hardware stayed with
// its node's Linux host, so no fleet capacity is restored there.
func (c *Cluster) ReplaceEnclave(node int, guestName string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.placementIDsLocked() {
		pl := c.placements[id]
		for i := range pl.Members {
			if pl.Members[i].Node == node && pl.Members[i].Enc.Guest.Name == guestName {
				return c.replaceMemberLocked(pl, i, false, false)
			}
		}
	}
	return fmt.Errorf("cluster: no placed member %q on node %d", guestName, node)
}

// UpgradeNode reboots every member enclave on node in place from its spec
// — the rolling co-kernel upgrade primitive — and bumps the node's image
// version. It returns the widest boot window among rebooted members (the
// node's unavailability in cycles).
func (c *Cluster) UpgradeNode(node int) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if node < 0 || node >= len(c.Nodes) {
		return 0, fmt.Errorf("cluster: no node %d", node)
	}
	nd := c.Nodes[node]
	if nd.down || nd.TB.M.Crashed() {
		return 0, fmt.Errorf("cluster: node %d is down", node)
	}
	var maxBoot uint64
	for _, id := range c.placementIDsLocked() {
		pl := c.placements[id]
		for i := range pl.Members {
			m := &pl.Members[i]
			if m.Node != node {
				continue
			}
			be, err := nd.TB.ReplaceGuest(m.Enc)
			if err != nil {
				return maxBoot, err
			}
			m.Enc = be
			rec := Record{Name: be.Guest.Name, Hash: hashName(be.Guest.Name),
				Node: nd.ID, Enclave: be.Enc.ID}
			if err := c.Reg.Publish(rec); err != nil {
				return maxBoot, err
			}
			if boot := bootCost(m.Member); boot > maxBoot {
				maxBoot = boot
			}
		}
	}
	nd.version++
	return maxBoot, nil
}

// Version reports a node's co-kernel image version.
func (c *Cluster) Version(node int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if node < 0 || node >= len(c.Nodes) {
		return 0
	}
	return c.Nodes[node].version
}

// RecoverReport summarizes one fleet watchdog scan.
type RecoverReport struct {
	// At is the virtual clock when the scan completed.
	At uint64
	// Failed lists nodes newly observed down this scan.
	Failed []int
	// Displaced counts members that lost their node; Replaced of those
	// were re-placed onto survivors, Stranded found no capacity.
	Displaced, Replaced, Stranded int
	// MTTR holds, per re-placed member, the cycles from scan trigger to
	// the member restored (detection + control round trip + boot).
	MTTR []uint64
}

// Recover runs one fleet watchdog scan on the virtual clock: newly
// crashed machines are marked down, and every member stranded on a dead
// node is re-placed onto the surviving fleet. Repair is coordinated from
// the lowest live node; each re-placement charges a control round trip
// over the fabric plus the replacement guest's boot cycles, so fleet MTTR
// is a pure function of the failure set and the cost model.
func (c *Cluster) Recover() RecoverReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep RecoverReport
	scanStart := c.Clock.Now()
	c.Clock.Advance(ScanInterval)
	for _, nd := range c.Nodes {
		if !nd.down && nd.TB.M.Crashed() {
			nd.down = true
			rep.Failed = append(rep.Failed, nd.ID)
		}
	}
	coord := -1
	for _, nd := range c.Nodes {
		if !nd.down {
			coord = nd.ID
			break
		}
	}
	if coord < 0 {
		rep.At = c.Clock.Now()
		return rep
	}
	for _, id := range c.placementIDsLocked() {
		pl := c.placements[id]
		for i := range pl.Members {
			if !c.Nodes[pl.Members[i].Node].down {
				continue
			}
			rep.Displaced++
			if err := c.replaceMemberLocked(pl, i, false, false); err != nil {
				rep.Stranded++
				continue
			}
			rep.Replaced++
			boot := bootCost(pl.Members[i].Member)
			now := c.Clock.Advance(2*c.Fab.Latency(coord, pl.Members[i].Node) + boot)
			rep.MTTR = append(rep.MTTR, now-scanStart)
		}
	}
	rep.At = c.Clock.Now()
	return rep
}
