package cluster

import (
	"fmt"

	"covirt/internal/hw"
)

// FabricCosts models the inter-node interconnect in integer cycles — the
// same currency as hw.Costs, so fabric charges compose with per-core TSC
// accounting. A message between distinct nodes pays a base latency plus a
// per-hop term over the mesh route; bulk transfers additionally pay a
// bandwidth term. SkewPct adds a static per-link cost spread so links are
// not all identical, the way cable lengths and switch placement spread
// real fabrics.
type FabricCosts struct {
	// BaseLatency is the one-way message latency between distinct nodes.
	BaseLatency uint64
	// PerHop is added per topological hop on the 2D-mesh route.
	PerHop uint64
	// BytesPerCycle is the link bandwidth for bulk transfers.
	BytesPerCycle uint64
	// SkewPct bounds the static per-link skew, as a percentage of
	// BaseLatency. Zero disables the spread.
	SkewPct uint64
}

// DefaultFabricCosts models a commodity HPC interconnect: ~2 us one-way
// latency at the simulator's cycle rate, with bandwidth far below local
// memory so cross-node pulls are visibly more expensive than local
// attaches.
func DefaultFabricCosts() FabricCosts {
	return FabricCosts{BaseLatency: 5000, PerHop: 400, BytesPerCycle: 16, SkewPct: 10}
}

// Fabric is the simulated interconnect joining the fleet's nodes: a 2D
// mesh (width = ceil(sqrt(nodes))) with deterministic per-link cost skew.
// Every cost is a pure function of the endpoint coordinates and the
// fabric seed — per-coordinate FNV-1a hashing through one hw.Rand step,
// the PR 3 engine discipline — so charges are identical no matter which
// order (or which goroutine) queries the links.
type Fabric struct {
	Costs FabricCosts
	seed  uint64
	width int
}

// NewFabric builds the interconnect for a fleet of nodes. A zero costs
// struct selects DefaultFabricCosts.
func NewFabric(nodes int, seed uint64, costs FabricCosts) *Fabric {
	if costs == (FabricCosts{}) {
		costs = DefaultFabricCosts()
	}
	if costs.BytesPerCycle == 0 {
		costs.BytesPerCycle = 1
	}
	width := 1
	for width*width < nodes {
		width++
	}
	return &Fabric{Costs: costs, seed: seed, width: width}
}

// Hops returns the mesh route length between two nodes: Manhattan
// distance on the width×width grid the fleet is folded onto.
func (f *Fabric) Hops(src, dst int) uint64 {
	sx, sy := src%f.width, src/f.width
	dx, dy := dst%f.width, dst/f.width
	h := uint64(0)
	if sx > dx {
		h += uint64(sx - dx)
	} else {
		h += uint64(dx - sx)
	}
	if sy > dy {
		h += uint64(sy - dy)
	} else {
		h += uint64(dy - sy)
	}
	return h
}

// skew derives the link's static cost spread from its endpoints alone:
// the canonical (lo, hi) pair and the fabric seed are FNV-1a hashed and
// passed through one hw.Rand step. No shared generator state means no
// call-order dependence — the property the whole fleet's byte-identical
// parallel output rests on.
func (f *Fabric) skew(src, dst int) uint64 {
	amp := f.Costs.BaseLatency * f.Costs.SkewPct / 100
	if amp == 0 {
		return 0
	}
	lo, hi := src, dst
	if lo > hi {
		lo, hi = hi, lo
	}
	rng := hw.NewRand(hashName(fmt.Sprintf("fabric/%d/link/%d/%d", f.seed, lo, hi)))
	return rng.Uint64n(amp + 1)
}

// Latency returns the one-way message cost between two nodes, zero for a
// node talking to itself.
func (f *Fabric) Latency(src, dst int) uint64 {
	if src == dst {
		return 0
	}
	return f.Costs.BaseLatency + f.Costs.PerHop*f.Hops(src, dst) + f.skew(src, dst)
}

// Transfer returns the cost of moving bytes from src to dst: one message
// latency plus the bandwidth term, zero for a local move.
func (f *Fabric) Transfer(src, dst int, bytes uint64) uint64 {
	if src == dst {
		return 0
	}
	return f.Latency(src, dst) + (bytes+f.Costs.BytesPerCycle-1)/f.Costs.BytesPerCycle
}

// hashName mirrors the co-kernel side's FNV-1a name hashing, so fleet
// records and guest XemGet lookups agree on every hash.
func hashName(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
