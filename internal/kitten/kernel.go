package kitten

import (
	"fmt"
	"sync"
	"sync/atomic"

	"covirt/internal/authority"
	"covirt/internal/hw"
	"covirt/internal/pisces"
)

// Kernel-internal interrupt vectors (distinct from the Pisces control
// vectors).
const (
	VectorResched  uint8 = 0xF0 // wake an idle core: new task queued
	VectorTLBFlush uint8 = 0xF1 // TLB shootdown request
)

// Config tunes a Kitten instance.
type Config struct {
	// TimerInterval is the local APIC timer period in cycles; 0 uses the
	// machine default, negative disables the tick entirely.
	TimerInterval int64
	// TaskQueueDepth bounds queued tasks per core (default 64).
	TaskQueueDepth int
}

// Kernel is one booted Kitten instance inside a Pisces enclave. It
// implements pisces.Bootable.
type Kernel struct {
	cfg Config

	mach *hw.Machine
	enc  *pisces.Enclave
	bp   *pisces.BootParams
	auth *authority.Table

	mm    *MemMap
	alloc *pisces.Ledger

	coresMu sync.RWMutex
	cores   []*coreCtx
	byCPU   map[int]*coreCtx
	done    chan struct{}
	stop    sync.Once
	wg      sync.WaitGroup
	booted  atomic.Bool

	lcMu  sync.Mutex
	lcSeq uint32

	irqMu       sync.Mutex
	irqHandlers map[uint8]func(env *Env)

	flushMu      sync.Mutex
	flushPending map[int][]hw.Extent // cpu id -> ranges awaiting local flush

	// Ticks counts timer interrupts taken (noise accounting).
	Ticks atomic.Uint64

	// hbAddr is the supervisor heartbeat page (0 = unsupervised); hbCount
	// is the monotonic beat counter, written by the boot core's timer
	// interrupt only.
	hbAddr  uint64
	hbCount atomic.Uint64
}

// coreCtx is the per-core execution context: exactly one goroutine runs a
// core at any time (the core loop), alternating between queued tasks and
// the idle loop.
type coreCtx struct {
	local  int // index within the enclave at creation time
	cpu    *hw.CPU
	tasks  chan *Task
	stop   chan struct{} // closed on hot-remove
	exited chan struct{} // closed when the core loop returns
	busy   atomic.Bool   // a task is executing
}

// Task is one run-to-completion unit of guest work.
type Task struct {
	Name string
	fn   func(*Env) error
	err  error
	done chan struct{}
	// released is closed by Spawn once the reschedule doorbell has been
	// routed. The core loop can dequeue a task before the spawner reaches
	// RouteIPI; without the handshake the doorbell's interrupt cost would
	// then land at a scheduler-dependent point in the task body instead of
	// deterministically before it (the multi-rank cycle jitter flake).
	released chan struct{}
}

// Wait blocks until the task finishes and returns its error.
func (t *Task) Wait() error {
	<-t.done
	return t.err
}

// New returns an unbooted Kitten image.
func New(cfg Config) *Kernel {
	if cfg.TaskQueueDepth <= 0 {
		cfg.TaskQueueDepth = 64
	}
	return &Kernel{
		cfg:          cfg,
		mm:           NewMemMap(),
		alloc:        pisces.NewLedgerGranule(hw.PageSize4K),
		byCPU:        make(map[int]*coreCtx),
		done:         make(chan struct{}),
		irqHandlers:  make(map[uint8]func(*Env)),
		flushPending: make(map[int][]hw.Extent),
	}
}

// verifyMemRef checks the i-th boot extent against its capability
// reference from the boot parameters. A missing table (bare-metal test
// boots outside a framework) skips verification.
func (k *Kernel) verifyMemRef(i int, ext hw.Extent) bool {
	if k.auth == nil {
		return true
	}
	if i >= len(k.bp.MemCaps) {
		return false
	}
	cap, ok := k.auth.Resolve(k.bp.MemCaps[i])
	if !ok {
		return false
	}
	return k.auth.Covers(cap, int(k.bp.EnclaveID), authority.KindMemory,
		authority.RightMap, authority.MemScope(ext.Start, ext.Size))
}

// verifyWireCap checks a hot-add command's capability reference: the key
// must resolve, belong to this enclave, and cover the granted extent.
func (k *Kernel) verifyWireCap(ref authority.Ref, ext hw.Extent) bool {
	if k.auth == nil {
		return true
	}
	cap, ok := k.auth.Resolve(ref)
	if !ok {
		return false
	}
	return k.auth.Covers(cap, int(k.bp.EnclaveID), authority.KindMemory,
		authority.RightMap, authority.MemScope(ext.Start, ext.Size))
}

// Boot implements pisces.Bootable.
func (k *Kernel) Boot(bc *pisces.BootContext) error {
	if k.booted.Load() {
		return fmt.Errorf("kitten: already booted")
	}
	k.mach = bc.Machine
	k.enc = bc.Enclave
	k.bp = bc.Params
	k.auth = bc.Auth
	k.hbAddr = bc.Params.Heartbeat

	// Build the memory map from the boot parameters and hand the
	// non-reserved portions to the physical allocator. The co-kernel
	// adopts only extents it holds a live memory capability for: a boot
	// block naming frames without keys is treated as hostile.
	for i, e := range k.bp.Mem {
		if !k.verifyMemRef(i, e) {
			return fmt.Errorf("kitten: no valid memory capability for boot extent %v", e)
		}
		k.mm.Add(e)
		usable := e
		if i == 0 {
			usable.Start += pisces.ReservedBytes
			usable.Size -= pisces.ReservedBytes
		}
		if err := k.alloc.DonateMemory(usable); err != nil {
			return fmt.Errorf("kitten: allocator: %w", err)
		}
	}

	interval := k.timerInterval()

	// Count enclave cores per NUMA node so CPUs can model bandwidth
	// sharing within the partition.
	sharers := make(map[int]int)
	for _, id := range k.bp.Cores {
		if cpu := k.mach.CPU(id); cpu != nil {
			sharers[cpu.Node]++
		}
	}

	for _, id := range k.bp.Cores {
		cpu := k.mach.CPU(id)
		if cpu == nil {
			return fmt.Errorf("kitten: no such core %d", id)
		}
		cpu.StreamSharers = sharers[cpu.Node]
		if k.hbAddr != 0 && id == k.bp.Cores[0] {
			// Initial beat, written before the core loop starts: the
			// watchdog's reference stamp is this boot's TSC from the first
			// scan on, never a stale value from the core's prior history.
			k.beat(cpu)
		}
		k.onlineCore(cpu, interval)
	}
	k.booted.Store(true)
	return nil
}

// onlineCore brings one CPU into the kernel: interrupt handler, timer, and
// a fresh scheduler loop. Used at boot and on hot-add.
func (k *Kernel) onlineCore(cpu *hw.CPU, timerInterval uint64) *coreCtx {
	cc := k.registerCore(cpu)
	cpu.SetIRQHandler(k.handleIRQ)
	if timerInterval > 0 {
		cpu.APIC.ArmTimer(cpu.TSC, timerInterval, pisces.VectorTimer)
	}
	k.wg.Add(1)
	go k.coreLoop(cc)
	return cc
}

// registerCore allocates a core context and links it into the core tables
// under the lock; IRQ wiring and the scheduler loop start outside it.
func (k *Kernel) registerCore(cpu *hw.CPU) *coreCtx {
	k.coresMu.Lock()
	defer k.coresMu.Unlock()
	cc := &coreCtx{
		local:  len(k.cores),
		cpu:    cpu,
		tasks:  make(chan *Task, k.cfg.TaskQueueDepth),
		stop:   make(chan struct{}),
		exited: make(chan struct{}),
	}
	k.cores = append(k.cores, cc)
	k.byCPU[cpu.ID] = cc
	return cc
}

// timerInterval resolves the configured timer period.
func (k *Kernel) timerInterval() uint64 {
	switch {
	case k.cfg.TimerInterval > 0:
		return uint64(k.cfg.TimerInterval)
	case k.cfg.TimerInterval == 0:
		return k.mach.Costs.TimerIntervalCycles
	}
	return 0
}

// Shutdown implements pisces.Bootable. It stops all core loops; safe to
// call multiple times and from any goroutine.
func (k *Kernel) Shutdown() {
	k.stop.Do(func() {
		close(k.done)
		k.coresMu.RLock()
		defer k.coresMu.RUnlock()
		for _, cc := range k.cores {
			cc.cpu.APIC.DisarmTimer()
			// Wake any idle loop so it notices the shutdown.
			cc.cpu.APIC.RaiseNMI()
		}
	})
}

// Wait blocks until all core loops exit (after Shutdown or a crash).
func (k *Kernel) Wait() { k.wg.Wait() }

// Quiesce implements pisces.Quiescer.
func (k *Kernel) Quiesce() { k.wg.Wait() }

// NumCores returns the enclave's current core count.
func (k *Kernel) NumCores() int {
	k.coresMu.RLock()
	defer k.coresMu.RUnlock()
	return len(k.cores)
}

// CPU returns the hw CPU of local core index i.
func (k *Kernel) CPU(i int) *hw.CPU {
	k.coresMu.RLock()
	defer k.coresMu.RUnlock()
	return k.cores[i].cpu
}

// core returns the core context at local index i, or nil.
func (k *Kernel) core(i int) *coreCtx {
	k.coresMu.RLock()
	defer k.coresMu.RUnlock()
	if i < 0 || i >= len(k.cores) {
		return nil
	}
	return k.cores[i]
}

// MemMap exposes the kernel's memory map (tests, controller integration).
func (k *Kernel) MemMap() *MemMap { return k.mm }

// Nodes returns the distinct NUMA nodes the enclave's memory spans.
func (k *Kernel) Nodes() []int {
	seen := make(map[int]bool)
	var out []int
	for _, e := range k.bp.Mem {
		if !seen[e.Node] {
			seen[e.Node] = true
			out = append(out, e.Node)
		}
	}
	return out
}

// coreLoop is the per-core scheduler: run queued tasks to completion,
// otherwise idle (servicing interrupts).
func (k *Kernel) coreLoop(cc *coreCtx) {
	defer k.wg.Done()
	defer close(cc.exited)
	for {
		select {
		case <-k.done:
			return
		case <-cc.stop:
			return
		case t := <-cc.tasks:
			k.runTask(cc, t)
		default:
			if err := cc.cpu.Idle(k.done); err != nil {
				// Machine crashed or enclave killed: stop the core.
				return
			}
			// Re-check the queue; Idle returns on any event.
			select {
			case <-k.done:
				return
			case <-cc.stop:
				return
			case t := <-cc.tasks:
				k.runTask(cc, t)
			default:
			}
		}
	}
}

// runTask executes one task on the core, converting guest panics raised by
// Env helpers into task errors.
func (k *Kernel) runTask(cc *coreCtx, t *Task) {
	// Don't start until the spawner has raised the doorbell IPI: by the
	// time fn runs, the doorbell is either already serviced (the idle loop
	// polled it) or pending for the task's first poll, so its cost is
	// charged at the same point in the cycle stream on every run.
	<-t.released
	cc.busy.Store(true)
	defer cc.busy.Store(false)
	env := &Env{K: k, CPU: cc.cpu, Core: cc.local, Task: t}
	defer close(t.done)
	defer func() {
		if r := recover(); r != nil {
			if ge, ok := r.(guestError); ok {
				t.err = ge.err
				return
			}
			panic(r)
		}
	}()
	t.err = t.fn(env)
}

// Spawn queues fn on local core index, waking the core if idle.
func (k *Kernel) Spawn(name string, core int, fn func(*Env) error) (*Task, error) {
	if !k.booted.Load() {
		return nil, fmt.Errorf("kitten: not booted")
	}
	cc := k.core(core)
	if cc == nil {
		return nil, fmt.Errorf("kitten: no local core %d", core)
	}
	t := &Task{Name: name, fn: fn, done: make(chan struct{}), released: make(chan struct{})}
	select {
	case cc.tasks <- t:
	case <-k.done:
		return nil, fmt.Errorf("kitten: kernel is down")
	}
	// Reschedule doorbell so an idle core picks the task up, released only
	// after the doorbell is raised so the task cannot observe a half-spawned
	// state (see Task.released).
	k.mach.RouteIPI(-1, cc.cpu.ID, VectorResched)
	close(t.released)
	return t, nil
}

// RunParallel spawns fn on cores 0..n-1 (rank passed to each) and waits for
// all of them, returning the first error.
func (k *Kernel) RunParallel(name string, n int, fn func(env *Env, rank int) error) error {
	if n <= 0 || n > k.NumCores() {
		return fmt.Errorf("kitten: RunParallel over %d cores, have %d", n, k.NumCores())
	}
	tasks := make([]*Task, n)
	for r := 0; r < n; r++ {
		rank := r
		t, err := k.Spawn(fmt.Sprintf("%s/%d", name, rank), rank, func(e *Env) error { return fn(e, rank) })
		if err != nil {
			return err
		}
		tasks[rank] = t
	}
	var first error
	for _, t := range tasks {
		if err := t.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// OnIPI registers an application-level handler for an IPI vector,
// mirroring Hobbes' globally-allocatable per-core IPI vectors.
func (k *Kernel) OnIPI(vector uint8, h func(env *Env)) {
	k.irqMu.Lock()
	defer k.irqMu.Unlock()
	k.irqHandlers[vector] = h
}

// ipiHandler looks up the registered handler for vector.
func (k *Kernel) ipiHandler(vector uint8) func(env *Env) {
	k.irqMu.Lock()
	defer k.irqMu.Unlock()
	return k.irqHandlers[vector]
}

// coreFor maps a machine CPU ID to its kernel core context, or nil.
func (k *Kernel) coreFor(cpuID int) *coreCtx {
	k.coresMu.RLock()
	defer k.coresMu.RUnlock()
	return k.byCPU[cpuID]
}

// handleIRQ is the kernel interrupt dispatcher; it runs in interrupt
// context on the receiving core's execution goroutine.
func (k *Kernel) handleIRQ(cpu *hw.CPU, vector uint8, external bool) {
	switch vector {
	case pisces.VectorTimer:
		k.Ticks.Add(1)
		if k.hbAddr != 0 && cpu.ID == k.bp.Cores[0] {
			k.beat(cpu)
		}
	case VectorResched, pisces.VectorLcResp:
		// Nothing: the wakeup itself is the point.
	case VectorTLBFlush:
		k.flushLocal(cpu)
	case pisces.VectorCtl:
		k.drainCtl(cpu)
	default:
		if h := k.ipiHandler(vector); h != nil {
			if cc := k.coreFor(cpu.ID); cc != nil {
				h(&Env{K: k, CPU: cpu, Core: cc.local})
			}
		}
	}
}

// beat publishes one liveness heartbeat: bump the monotonic counter and
// stamp the boot core's current TSC into the shared heartbeat page. Runs in
// timer-interrupt context on the boot core; the writes go through the
// guest's own protection path, so a supervised enclave pays for its beats.
func (k *Kernel) beat(cpu *hw.CPU) {
	io := pisces.CPUMemIO{CPU: cpu}
	n := k.hbCount.Add(1)
	if err := io.Write64(k.hbAddr+pisces.HbCount, n); err != nil {
		return // teardown race: the enclave is already being killed
	}
	if err := io.Write64(k.hbAddr+pisces.HbTSC, cpu.TSC); err != nil {
		return
	}
}

// flushLocal performs this core's share of a pending TLB shootdown.
func (k *Kernel) flushLocal(cpu *hw.CPU) {
	for _, r := range k.takePendingFlushes(cpu.ID) {
		cpu.TLB.FlushRange(r.Start, r.Size)
		cpu.TSC += cpu.Costs().TLBFlushPage
	}
}

// takePendingFlushes consumes the queued shootdown ranges for one core.
func (k *Kernel) takePendingFlushes(cpuID int) []hw.Extent {
	k.flushMu.Lock()
	defer k.flushMu.Unlock()
	ranges := k.flushPending[cpuID]
	delete(k.flushPending, cpuID)
	return ranges
}

// queueFlush records a pending shootdown range for one core.
func (k *Kernel) queueFlush(cpuID int, e hw.Extent) {
	k.flushMu.Lock()
	defer k.flushMu.Unlock()
	k.flushPending[cpuID] = append(k.flushPending[cpuID], e)
}

// snapshotCores copies the core list under the read lock.
func (k *Kernel) snapshotCores() []*coreCtx {
	k.coresMu.RLock()
	defer k.coresMu.RUnlock()
	return append([]*coreCtx(nil), k.cores...)
}

// shootdown flushes [e.Start, e.End) on the initiating core immediately and
// queues asynchronous flushes (IPI-driven) on the enclave's other cores.
func (k *Kernel) shootdown(initiator *hw.CPU, e hw.Extent) {
	initiator.TLB.FlushRange(e.Start, e.Size)
	initiator.TSC += initiator.Costs().TLBFlushPage
	for _, cc := range k.snapshotCores() {
		if cc.cpu.ID == initiator.ID {
			continue
		}
		k.queueFlush(cc.cpu.ID, e)
		k.mach.RouteIPI(initiator.ID, cc.cpu.ID, VectorTLBFlush)
	}
}

// drainCtl processes pending host control commands. Runs in interrupt
// context on the receiving core.
func (k *Kernel) drainCtl(cpu *hw.CPU) {
	io := pisces.CPUMemIO{CPU: cpu}
	for {
		var m pisces.Msg
		ok, err := k.enc.CtlReq.TryPop(io, &m)
		if err != nil || !ok {
			return
		}
		resp := pisces.Msg{Type: pisces.AckOK, Seq: m.Seq}
		switch m.Type {
		case pisces.CmdPing:
			// Liveness only.
		case pisces.CmdMemAdd:
			ext := hw.Extent{
				Start: get64(m.Payload[:], 0),
				Size:  get64(m.Payload[:], 8),
				Node:  int(get64(m.Payload[:], 16)),
			}
			ref := authority.Ref{ID: get64(m.Payload[:], 24), Gen: get64(m.Payload[:], 32)}
			if !k.verifyWireCap(ref, ext) {
				// Hot-added memory without a live key is rejected before it
				// touches the memory map or the allocator.
				resp.Type = pisces.AckErr
			} else {
				k.mm.Add(ext)
				if err := k.alloc.DonateMemory(ext); err != nil {
					resp.Type = pisces.AckErr
				}
			}
		case pisces.CmdMemRemove:
			ext := hw.Extent{Start: get64(m.Payload[:], 0), Size: get64(m.Payload[:], 8)}
			ext.Node = k.mach.Mem.NodeOf(ext.Start)
			// The extent must be unused (still free in the allocator).
			if err := k.alloc.Reserve(ext); err != nil {
				resp.Type = pisces.AckErr
			} else if !k.mm.Remove(ext) {
				resp.Type = pisces.AckErr
			} else {
				k.shootdown(cpu, ext)
			}
		case pisces.CmdCPUAdd:
			id := int(get64(m.Payload[:], 0))
			newCPU := k.mach.CPU(id)
			if newCPU == nil {
				resp.Type = pisces.AckErr
			} else {
				k.onlineCore(newCPU, k.timerInterval())
			}
		case pisces.CmdCPURemove:
			if err := k.offlineCore(int(get64(m.Payload[:], 0))); err != nil {
				resp.Type = pisces.AckErr
			}
		case pisces.CmdShutdown:
			_ = k.enc.CtlResp.Push(io, &resp)
			go k.Shutdown() // async: let this IRQ return first
			return
		default:
			resp.Type = pisces.AckErr
		}
		if err := k.enc.CtlResp.Push(io, &resp); err != nil {
			return
		}
	}
}

// offlineCore stops an idle hot-added core's scheduler loop. It refuses if
// the core is running or has queued work, or is the boot core.
func (k *Kernel) offlineCore(cpuID int) error {
	cc, err := k.detachCore(cpuID)
	if err != nil {
		return err
	}

	// Stop the core loop and wait for it to exit (it may take IRQs on the
	// way out, which need coresMu, so the lock is already released): only
	// a quiesced core may be handed back to the host.
	close(cc.stop)
	cc.cpu.APIC.DisarmTimer()
	cc.cpu.APIC.RaiseNMI() // wake the idle loop so it observes stop
	<-cc.exited
	return nil
}

// detachCore unlinks an idle hot-added core from the core tables under the
// lock, or reports why it cannot be offlined.
func (k *Kernel) detachCore(cpuID int) (*coreCtx, error) {
	k.coresMu.Lock()
	defer k.coresMu.Unlock()
	var cc *coreCtx
	idx := -1
	for i, c := range k.cores {
		if i > 0 && c.cpu.ID == cpuID {
			cc, idx = c, i
			break
		}
	}
	if cc == nil {
		return nil, fmt.Errorf("kitten: core %d not offline-able", cpuID)
	}
	if cc.busy.Load() || len(cc.tasks) > 0 {
		return nil, fmt.Errorf("kitten: core %d is busy", cpuID)
	}
	k.cores = append(k.cores[:idx], k.cores[idx+1:]...)
	delete(k.byCPU, cpuID)
	return cc, nil
}

// AllocMemory carves an application memory region from the enclave's
// assigned memory on node (contiguous, 2M-granular).
func (k *Kernel) AllocMemory(node int, size uint64) (hw.Extent, error) {
	return k.alloc.AllocMemory(node, size)
}

// FreeMemory returns an application region to the kernel allocator.
func (k *Kernel) FreeMemory(e hw.Extent) { k.alloc.FreeMemory(e) }

var _ pisces.Bootable = (*Kernel)(nil)
