// Package kitten simulates the Kitten lightweight kernel running as a
// Pisces co-kernel: a simple, POSIX-like, low-noise OS for HPC workloads.
//
// The simulated Kitten keeps the properties the paper relies on:
//
//   - contiguous physical memory management with identity mappings backed
//     by 2 MiB pages (simple resource management for performance and
//     repeatability);
//   - a run-to-completion scheduler, one task at a time per core, with an
//     idle loop that still services interrupts (so control commands, TLB
//     shootdowns and Covirt NMI doorbells are handled promptly);
//   - a minimal local-timer policy (low-frequency housekeeping tick, which
//     can be disabled entirely for noise-sensitive runs);
//   - management commands from the host arrive over the Pisces control
//     ring and are processed in interrupt context;
//   - heavyweight operations are delegated to the host OS via longcalls
//     (system-call forwarding), including all XEMEM name-service
//     operations.
//
// Guest application code runs as Task functions receiving an Env, whose
// methods charge simulated cycles on the task's CPU. Env.Access enforces
// Kitten's own memory map (the guest page tables); Env.RawAccess bypasses
// it, simulating exactly the class of co-kernel memory-map bugs Covirt is
// designed to contain.
package kitten
