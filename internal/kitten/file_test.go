package kitten

import (
	"bytes"
	"errors"
	"testing"

	"covirt/internal/pisces"
)

func TestFileWriteReadRoundTrip(t *testing.T) {
	_, _, _, k := testStack(t, 1, []int{0}, 128<<20)
	task, _ := k.Spawn("file", 0, func(e *Env) error {
		f, err := e.Open("/out/result.dat", pisces.OpenWrite)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("hello ")); err != nil {
			return err
		}
		if _, err := f.Write([]byte("filesystem")); err != nil {
			return err
		}
		size, err := f.Size()
		if err != nil {
			return err
		}
		if size != 16 {
			t.Errorf("size = %d", size)
		}
		if err := f.Close(); err != nil {
			return err
		}

		r, err := e.Open("/out/result.dat", pisces.OpenRead)
		if err != nil {
			return err
		}
		defer r.Close()
		buf := make([]byte, 32)
		n, err := r.Read(buf)
		if err != nil {
			return err
		}
		if string(buf[:n]) != "hello filesystem" {
			t.Errorf("read %q", buf[:n])
		}
		// Cursor advanced to EOF: next read returns 0.
		if n, _ := r.Read(buf); n != 0 {
			t.Errorf("post-EOF read = %d", n)
		}
		// Random access does not move the cursor.
		if n, err := r.ReadAt(buf[:5], 6); err != nil || string(buf[:n]) != "files" {
			t.Errorf("ReadAt = %q, %v", buf[:n], err)
		}
		return nil
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestFileHostStagingAndCollection(t *testing.T) {
	host, _, _, k := testStack(t, 1, []int{0}, 128<<20)
	host.WriteFile("/input/config", []byte("tolerance=1e-6\n"))

	task, _ := k.Spawn("job", 0, func(e *Env) error {
		in, err := e.Open("/input/config", pisces.OpenRead)
		if err != nil {
			return err
		}
		buf := make([]byte, 64)
		n, err := in.Read(buf)
		if err != nil {
			return err
		}
		_ = in.Close()
		out, err := e.Open("/output/log", pisces.OpenWrite)
		if err != nil {
			return err
		}
		if _, err := out.Write(append([]byte("got: "), buf[:n]...)); err != nil {
			return err
		}
		return out.Close()
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	got, ok := host.ReadFile("/output/log")
	if !ok || !bytes.Equal(got, []byte("got: tolerance=1e-6\n")) {
		t.Errorf("output = %q, %v", got, ok)
	}
	files := host.ListFiles()
	if len(files) != 2 || files[0] != "/input/config" {
		t.Errorf("files = %v", files)
	}
}

func TestFileErrors(t *testing.T) {
	_, _, _, k := testStack(t, 1, []int{0}, 128<<20)
	task, _ := k.Spawn("errs", 0, func(e *Env) error {
		if _, err := e.Open("/missing", pisces.OpenRead); err == nil {
			return errors.New("open of missing file succeeded")
		}
		if _, err := e.Open("", pisces.OpenRead); err == nil {
			return errors.New("empty path accepted")
		}
		f, err := e.Open("/ro", pisces.OpenWrite)
		if err != nil {
			return err
		}
		_, _ = f.Write([]byte("x"))
		_ = f.Close()
		r, err := e.Open("/ro", pisces.OpenRead)
		if err != nil {
			return err
		}
		if _, err := r.Write([]byte("y")); err == nil {
			return errors.New("write through read-only fd succeeded")
		}
		_ = r.Close()
		// Closed fd is invalid.
		if _, err := r.Read(make([]byte, 4)); err == nil {
			return errors.New("read on closed fd succeeded")
		}
		if err := e.Unlink("/ro"); err != nil {
			return err
		}
		if err := e.Unlink("/ro"); err == nil {
			return errors.New("double unlink succeeded")
		}
		return nil
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestFileAppendMode(t *testing.T) {
	host, _, _, k := testStack(t, 1, []int{0}, 128<<20)
	host.WriteFile("/log", []byte("line1\n"))
	task, _ := k.Spawn("append", 0, func(e *Env) error {
		f, err := e.Open("/log", pisces.OpenAppend)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = f.Write([]byte("line2\n"))
		return err
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	got, _ := host.ReadFile("/log")
	if string(got) != "line1\nline2\n" {
		t.Errorf("log = %q", got)
	}
}
