package kitten

import (
	"errors"
	"testing"

	"covirt/internal/hw"
)

// runEnvTask boots a fresh single-core stack, runs fn as a guest task, and
// returns the core's final TSC/Instret plus the task error. Two calls with
// equivalent guest bodies must land on identical counters — the harness for
// proving Env.AccessRun charges exactly what a per-element loop does.
func runEnvTask(t *testing.T, fn func(e *Env) error) (tsc, instret uint64, err error) {
	t.Helper()
	_, _, _, k := testStack(t, 1, []int{0}, 256<<20)
	task, serr := k.Spawn("batch", 0, fn)
	if serr != nil {
		t.Fatal(serr)
	}
	err = task.Wait()
	c := k.CPU(0)
	return c.TSC, c.Instret, err
}

// TestEnvAccessRunMatchesAccessLoop drives the same strided access patterns
// through a per-element Env.Access loop and through Env.AccessRun and
// requires identical simulated cycles and instruction counts — including
// the affine-modulo pattern MiniFE's boundary scatter uses.
func TestEnvAccessRunMatchesAccessLoop(t *testing.T) {
	patterns := []struct {
		name   string
		n      int
		stride uint64
	}{
		{"unaligned", 2000, 4099},
		{"page", 2000, 4096},
		{"large", 7, 1 << 20},
		{"dense", 4000, 8},
		{"repeat", 1000, 0},
	}
	body := func(batched bool) func(e *Env) error {
		return func(e *Env) error {
			a := e.Alloc(0, 8<<20)
			for _, p := range patterns {
				if batched {
					e.AccessRun(a.Start, p.n, p.stride, p.n%2 == 0, hw.AccessDRAM)
				} else {
					for i := 0; i < p.n; i++ {
						e.Access(a.Start+uint64(i)*p.stride, p.n%2 == 0, hw.AccessDRAM)
					}
				}
			}
			// Affine modulo scatter (the MiniFE pattern), decomposed into
			// wrap segments on the batched side.
			const stride, n = 4099 * 332, 600
			if batched {
				for i := uint64(0); i < n; {
					off := (i * stride) % a.Size
					run := uint64(1)
					for i+run < n && off+run*stride < a.Size {
						run++
					}
					e.AccessRun(a.Start+off, int(run), stride, true, hw.AccessDRAM)
					i += run
				}
			} else {
				for i := uint64(0); i < n; i++ {
					e.Access(a.Start+(i*stride)%a.Size, true, hw.AccessDRAM)
				}
			}
			return nil
		}
	}
	tscA, insA, errA := runEnvTask(t, body(false))
	tscB, insB, errB := runEnvTask(t, body(true))
	if errA != nil || errB != nil {
		t.Fatalf("errs = %v, %v", errA, errB)
	}
	if tscA != tscB || insA != insB {
		t.Errorf("batched run diverged: TSC %d vs %d, Instret %d vs %d", tscA, tscB, insA, insB)
	}
}

// TestEnvAccessRunCrossesAdjacentExtents hot-adds a second memory extent
// directly adjacent to the boot extent and runs a strided batch across the
// seam: per-element containment checks allow the crossing, so AccessRun
// must too — re-consulting the map at the cached extent's edge — with
// identical charges.
func TestEnvAccessRunCrossesAdjacentExtents(t *testing.T) {
	run := func(batched bool) (uint64, uint64) {
		_, fw, enc, k := testStack(t, 1, []int{0}, 256<<20)
		added, err := fw.AddMemory(enc, 0, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		boot := enc.Mem()[0]
		if boot.End() != added.Start {
			t.Skipf("hot-added extent %v not adjacent to boot extent %v", added, boot)
		}
		start := added.Start - 64<<10
		task, serr := k.Spawn("cross", 0, func(e *Env) error {
			if batched {
				e.AccessRun(start, 4000, 64, false, hw.AccessDRAM)
			} else {
				for i := 0; i < 4000; i++ {
					e.Access(start+uint64(i)*64, false, hw.AccessDRAM)
				}
			}
			return nil
		})
		if serr != nil {
			t.Fatal(serr)
		}
		if err := task.Wait(); err != nil {
			t.Fatal(err)
		}
		return k.CPU(0).TSC, k.CPU(0).Instret
	}
	tscA, insA := run(false)
	tscB, insB := run(true)
	if tscA != tscB || insA != insB {
		t.Errorf("crossing run diverged: TSC %d vs %d, Instret %d vs %d", tscA, tscB, insA, insB)
	}
}

// TestEnvAccessRunSegfaultsAtSameElement runs both paths off the end of the
// enclave's mapped memory: the batched run must abort with the same
// segfault, having charged exactly the prefix the per-element loop charged.
func TestEnvAccessRunSegfaultsAtSameElement(t *testing.T) {
	const n, stride = 500, 4096
	start := func(e *Env) uint64 {
		exts := e.K.MemMap().Extents()
		return exts[len(exts)-1].End() - 256<<10
	}
	tscA, insA, errA := runEnvTask(t, func(e *Env) error {
		s := start(e)
		for i := 0; i < n; i++ {
			e.Access(s+uint64(i)*stride, true, hw.AccessDRAM)
		}
		return nil
	})
	tscB, insB, errB := runEnvTask(t, func(e *Env) error {
		e.AccessRun(start(e), n, stride, true, hw.AccessDRAM)
		return nil
	})
	if !errors.Is(errA, ErrSegfault) || !errors.Is(errB, ErrSegfault) {
		t.Fatalf("errs = %v, %v; want segfaults", errA, errB)
	}
	if tscA != tscB || insA != insB {
		t.Errorf("fault prefix diverged: TSC %d vs %d, Instret %d vs %d", tscA, tscB, insA, insB)
	}
}

// TestMemMapGen pins the generation contract cached lookups depend on:
// every successful mutation bumps the generation, failed ones do not.
func TestMemMapGen(t *testing.T) {
	mm := NewMemMap()
	g0 := mm.Gen()
	mm.Add(hw.Extent{Start: 0x1000, Size: 0x1000})
	if mm.Gen() != g0+1 {
		t.Errorf("gen after add = %d, want %d", mm.Gen(), g0+1)
	}
	if mm.Remove(hw.Extent{Start: 0x9000, Size: 0x1000}) {
		t.Fatal("removed absent extent")
	}
	if mm.Gen() != g0+1 {
		t.Errorf("failed remove bumped gen to %d", mm.Gen())
	}
	if !mm.Remove(hw.Extent{Start: 0x1000, Size: 0x1000}) {
		t.Fatal("remove failed")
	}
	if mm.Gen() != g0+2 {
		t.Errorf("gen after remove = %d, want %d", mm.Gen(), g0+2)
	}
}
