package kitten

import (
	"sort"
	"sync"

	"covirt/internal/hw"
)

// MemMap is Kitten's view of the physical memory it may touch: the
// simulation stand-in for the kernel's identity-mapped page tables. The
// co-kernel voluntarily constrains itself to this map — and, exactly as the
// paper observes, nothing but a protection layer stops code that bypasses
// or misconfigures it.
type MemMap struct {
	mu   sync.RWMutex
	exts []hw.Extent // sorted by Start, non-overlapping
}

// NewMemMap returns an empty memory map.
func NewMemMap() *MemMap { return &MemMap{} }

// Add inserts an extent into the map.
func (m *MemMap) Add(e hw.Extent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	i := sort.Search(len(m.exts), func(i int) bool { return m.exts[i].Start >= e.Start })
	m.exts = append(m.exts, hw.Extent{})
	copy(m.exts[i+1:], m.exts[i:])
	m.exts[i] = e
}

// Remove deletes the extent that exactly matches e's range, reporting
// whether it was present.
func (m *MemMap) Remove(e hw.Extent) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, x := range m.exts {
		if x.Start == e.Start && x.Size == e.Size {
			m.exts = append(m.exts[:i], m.exts[i+1:]...)
			return true
		}
	}
	return false
}

// Contains reports whether [addr, addr+size) is fully covered by one
// mapped extent.
func (m *MemMap) Contains(addr, size uint64) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	i := sort.Search(len(m.exts), func(i int) bool { return m.exts[i].End() > addr })
	return i < len(m.exts) && m.exts[i].ContainsRange(addr, size)
}

// Extents returns a snapshot of the map.
func (m *MemMap) Extents() []hw.Extent {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]hw.Extent, len(m.exts))
	copy(out, m.exts)
	return out
}

// Bytes returns the total mapped size.
func (m *MemMap) Bytes() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return hw.TotalSize(m.exts)
}
