package kitten

import (
	"sort"
	"sync"
	"sync/atomic"

	"covirt/internal/hw"
)

// MemMap is Kitten's view of the physical memory it may touch: the
// simulation stand-in for the kernel's identity-mapped page tables. The
// co-kernel voluntarily constrains itself to this map — and, exactly as the
// paper observes, nothing but a protection layer stops code that bypasses
// or misconfigures it.
//
// Lookups are lock-free: the sorted extent slice is immutable once
// published through an atomic pointer, and mutations build a fresh copy
// under mu. A generation counter bumps after every published mutation so
// callers (kitten.Env) can cache lookup results and validate them with a
// single atomic load instead of re-searching; because the bump happens
// after the new slice is visible, a racing reader can at worst stamp a
// fresh extent with an old generation (a spurious re-lookup), never a
// stale extent with the current one.
type MemMap struct {
	mu   sync.Mutex                  // serializes mutations only
	exts atomic.Pointer[[]hw.Extent] // sorted by Start, non-overlapping
	gen  atomic.Uint64
}

// NewMemMap returns an empty memory map.
func NewMemMap() *MemMap {
	m := &MemMap{}
	m.exts.Store(&[]hw.Extent{})
	return m
}

// snapshot returns the current published extent slice (never nil).
func (m *MemMap) snapshot() []hw.Extent {
	if p := m.exts.Load(); p != nil {
		return *p
	}
	return nil
}

// Gen returns the mutation generation. Any Add or Remove bumps it, so a
// cached lookup result is valid exactly while the generation is unchanged.
func (m *MemMap) Gen() uint64 { return m.gen.Load() }

// Add inserts an extent into the map.
func (m *MemMap) Add(e hw.Extent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.snapshot()
	i := sort.Search(len(old), func(i int) bool { return old[i].Start >= e.Start })
	exts := make([]hw.Extent, 0, len(old)+1)
	exts = append(exts, old[:i]...)
	exts = append(exts, e)
	exts = append(exts, old[i:]...)
	m.exts.Store(&exts)
	m.gen.Add(1)
}

// Remove deletes the extent that exactly matches e's range, reporting
// whether it was present.
func (m *MemMap) Remove(e hw.Extent) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.snapshot()
	for i, x := range old {
		if x.Start == e.Start && x.Size == e.Size {
			exts := make([]hw.Extent, 0, len(old)-1)
			exts = append(exts, old[:i]...)
			exts = append(exts, old[i+1:]...)
			m.exts.Store(&exts)
			m.gen.Add(1)
			return true
		}
	}
	return false
}

// Find returns the mapped extent containing addr, if any. Lock-free.
func (m *MemMap) Find(addr uint64) (hw.Extent, bool) {
	exts := m.snapshot()
	i := sort.Search(len(exts), func(i int) bool { return exts[i].End() > addr })
	if i < len(exts) && exts[i].ContainsRange(addr, 1) {
		return exts[i], true
	}
	return hw.Extent{}, false
}

// Contains reports whether [addr, addr+size) is fully covered by one
// mapped extent. Lock-free.
func (m *MemMap) Contains(addr, size uint64) bool {
	exts := m.snapshot()
	i := sort.Search(len(exts), func(i int) bool { return exts[i].End() > addr })
	return i < len(exts) && exts[i].ContainsRange(addr, size)
}

// Extents returns a snapshot of the map.
func (m *MemMap) Extents() []hw.Extent {
	exts := m.snapshot()
	out := make([]hw.Extent, len(exts))
	copy(out, exts)
	return out
}

// Bytes returns the total mapped size.
func (m *MemMap) Bytes() uint64 {
	return hw.TotalSize(m.snapshot())
}
