package kitten

import (
	"errors"
	"testing"

	"covirt/internal/hw"
)

// gatherPattern builds the charger-style address stream: pseudo-random
// offsets alternating between two extents every element.
func gatherPattern(n int, a, b hw.Extent) []uint64 {
	rng := hw.NewRand(0xD1B54A32D192ED03)
	addrs := make([]uint64, n)
	for i := range addrs {
		tgt := a
		if i%2 == 1 && b.Size > 0 {
			tgt = b
		}
		addrs[i] = tgt.Start + (rng.Next()%(tgt.Size/8))*8
	}
	return addrs
}

// TestEnvAccessGatherMatchesAccessLoop drives the same extent-hopping
// address streams through a per-element Compute+Access loop and through
// Env.AccessGather and requires identical simulated cycles and instruction
// counts.
func TestEnvAccessGatherMatchesAccessLoop(t *testing.T) {
	for _, computePer := range []uint64{0, 6} {
		body := func(batched bool) func(e *Env) error {
			return func(e *Env) error {
				a := e.Alloc(0, 8<<20)
				b := e.Alloc(0, 8<<20)
				addrs := gatherPattern(20_000, a, b)
				if batched {
					e.AccessGather(addrs, computePer, false, hw.AccessDRAM)
				} else {
					for _, addr := range addrs {
						if computePer != 0 {
							e.Compute(computePer)
						}
						e.Access(addr, false, hw.AccessDRAM)
					}
				}
				return nil
			}
		}
		tscA, insA, errA := runEnvTask(t, body(false))
		tscB, insB, errB := runEnvTask(t, body(true))
		if errA != nil || errB != nil {
			t.Fatalf("errs = %v, %v", errA, errB)
		}
		if tscA != tscB || insA != insB {
			t.Errorf("computePer=%d: batched gather diverged: TSC %d vs %d, Instret %d vs %d",
				computePer, tscA, tscB, insA, insB)
		}
	}
}

// TestEnvAccessGatherSegfaultsAtSameElement puts an unmapped address in the
// middle of the stream: the batched run must abort with the same segfault,
// having charged exactly the prefix — including the faulting element's
// compute — that the per-element loop charged.
func TestEnvAccessGatherSegfaultsAtSameElement(t *testing.T) {
	const computePer = 5
	mkAddrs := func(e *Env) []uint64 {
		a := e.Alloc(0, 4<<20)
		addrs := gatherPattern(1000, a, hw.Extent{})
		exts := e.K.MemMap().Extents()
		addrs[637] = exts[len(exts)-1].End() + 4096 // unmapped
		return addrs
	}
	tscA, insA, errA := runEnvTask(t, func(e *Env) error {
		for _, addr := range mkAddrs(e) {
			e.Compute(computePer)
			e.Access(addr, true, hw.AccessDRAM)
		}
		return nil
	})
	tscB, insB, errB := runEnvTask(t, func(e *Env) error {
		e.AccessGather(mkAddrs(e), computePer, true, hw.AccessDRAM)
		return nil
	})
	if !errors.Is(errA, ErrSegfault) || !errors.Is(errB, ErrSegfault) {
		t.Fatalf("errs = %v, %v; want segfaults", errA, errB)
	}
	if tscA != tscB || insA != insB {
		t.Errorf("fault prefix diverged: TSC %d vs %d, Instret %d vs %d", tscA, tscB, insA, insB)
	}
}

// TestEnvAccessGatherSteadyStateAllocFree pins the batched gather path at
// zero allocations per call once the TLB is warm — the property that lets
// the workload chargers route their inner loops through it without
// perturbing the simulation's wall-clock behaviour.
func TestEnvAccessGatherSteadyStateAllocFree(t *testing.T) {
	var allocs float64
	_, _, _, k := testStack(t, 1, []int{0}, 256<<20)
	task, serr := k.Spawn("allocfree", 0, func(e *Env) error {
		// Quiesce the timer so the measurement sees only the gather path
		// itself, not interrupt-delivery work.
		e.CPU.APIC.DisarmTimer()
		a := e.Alloc(0, 8<<20)
		b := e.Alloc(0, 8<<20)
		addrs := gatherPattern(4096, a, b)
		allocs = testing.AllocsPerRun(100, func() {
			e.AccessGather(addrs, 6, false, hw.AccessDRAM)
		})
		return nil
	})
	if serr != nil {
		t.Fatal(serr)
	}
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("AccessGather allocates %v per call in steady state", allocs)
	}
}
