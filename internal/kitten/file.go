package kitten

import (
	"fmt"

	"covirt/internal/pisces"
)

// File is a handle to a host-OS file opened via system-call forwarding.
// Kitten itself has no filesystem — one of the heavyweight subsystems the
// co-kernel design deliberately delegates to the general-purpose OS.
type File struct {
	env *Env
	fd  uint64
}

// stagePath writes the path into the longcall data buffer.
func (e *Env) stagePath(path string) (uint64, error) {
	if len(path) == 0 || len(path) > 4096 {
		return 0, fmt.Errorf("kitten: bad path length %d", len(path))
	}
	io := pisces.CPUMemIO{CPU: e.CPU}
	if err := io.WriteBytes(e.K.enc.Base()+pisces.OffLcData, []byte(path)); err != nil {
		return 0, err
	}
	return uint64(len(path)), nil
}

// Open opens a host file. flags is one of pisces.OpenRead, OpenWrite
// (create/truncate) or OpenAppend.
func (e *Env) Open(path string, flags uint64) (*File, error) {
	n, err := e.stagePath(path)
	if err != nil {
		return nil, err
	}
	fd, _, err := e.Syscall(pisces.SysOpen, n, flags)
	if err != nil {
		return nil, fmt.Errorf("kitten: open %s: %w", path, err)
	}
	return &File{env: e, fd: fd}, nil
}

// Unlink removes a host file.
func (e *Env) Unlink(path string) error {
	n, err := e.stagePath(path)
	if err != nil {
		return err
	}
	_, _, err = e.Syscall(pisces.SysUnlink, n)
	return err
}

// cursor is the sentinel offset meaning "use the file position".
const cursor = ^uint64(0)

// Read fills p from the file's current position, returning bytes read
// (0 at EOF).
func (f *File) Read(p []byte) (int, error) { return f.readAt(p, cursor) }

// ReadAt fills p from an absolute offset, without moving the cursor.
func (f *File) ReadAt(p []byte, off uint64) (int, error) { return f.readAt(p, off) }

func (f *File) readAt(p []byte, off uint64) (int, error) {
	if len(p) > pisces.LcDataBytes {
		p = p[:pisces.LcDataBytes]
	}
	n, _, err := f.env.Syscall(pisces.SysRead, f.fd, off, uint64(len(p)))
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	io := pisces.CPUMemIO{CPU: f.env.CPU}
	if err := io.ReadBytes(f.env.K.enc.Base()+pisces.OffLcData, p[:n]); err != nil {
		return 0, err
	}
	return int(n), nil
}

// Write appends p at the file's current position, returning bytes written.
func (f *File) Write(p []byte) (int, error) { return f.writeAt(p, cursor) }

// WriteAt stores p at an absolute offset, without moving the cursor.
func (f *File) WriteAt(p []byte, off uint64) (int, error) { return f.writeAt(p, off) }

func (f *File) writeAt(p []byte, off uint64) (int, error) {
	if len(p) > pisces.LcDataBytes {
		return 0, fmt.Errorf("kitten: write of %d exceeds transfer buffer", len(p))
	}
	io := pisces.CPUMemIO{CPU: f.env.CPU}
	if err := io.WriteBytes(f.env.K.enc.Base()+pisces.OffLcData, p); err != nil {
		return 0, err
	}
	n, _, err := f.env.Syscall(pisces.SysWrite, f.fd, off, uint64(len(p)))
	return int(n), err
}

// Size returns the current file length.
func (f *File) Size() (uint64, error) {
	size, _, err := f.env.Syscall(pisces.SysFsize, f.fd)
	return size, err
}

// Close releases the descriptor.
func (f *File) Close() error {
	_, _, err := f.env.Syscall(pisces.SysClose, f.fd)
	return err
}
