package kitten

import (
	"encoding/binary"
	"errors"
	"fmt"

	"covirt/internal/hw"
	"covirt/internal/pisces"
)

// ErrSegfault is returned when a task touches memory outside Kitten's
// memory map — the guest-page-table fault the kernel turns into a task
// kill (the co-kernel itself stays up).
var ErrSegfault = errors.New("kitten: segmentation fault (outside memory map)")

// guestError wraps an error carried by a guest panic through Env helpers.
type guestError struct{ err error }

// Env is the guest programming interface handed to tasks: every method
// charges simulated cycles on the task's CPU and is subject to whatever
// protection layer is installed beneath the kernel.
type Env struct {
	K    *Kernel
	CPU  *hw.CPU
	Core int // local core index within the enclave
	Task *Task

	// extCache memoizes the last two memory-map extents a containment
	// check hit, MRU first. Two ways, not one: gather loops alternate
	// local and remote targets every element (halo and scatter traffic),
	// which a single slot thrashes on. extCacheGen records the MemMap
	// generation the entries were looked up under, and they are consulted
	// only while K.mm.Gen() still matches — an XemDetach or Free on any
	// core bumps the generation and implicitly drops them. Env is owned
	// by one task goroutine, so the fields need no locking.
	extCache    [2]hw.Extent
	extCacheGen uint64
}

// resolve is the memory-map check behind every Env access: a gen-validated
// hit on a cached extent, falling back to the map's lock-free search,
// returning the extent covering [addr, addr+size). The generation is read
// before the search so a concurrent map mutation can only make the
// refreshed cache entry look stale, never a stale one fresh.
func (e *Env) resolve(addr, size uint64) (hw.Extent, bool) {
	gen := e.K.mm.Gen()
	if e.extCacheGen == gen {
		if e.extCache[0].ContainsRange(addr, size) {
			return e.extCache[0], true
		}
		if e.extCache[1].ContainsRange(addr, size) {
			e.extCache[0], e.extCache[1] = e.extCache[1], e.extCache[0]
			return e.extCache[0], true
		}
	}
	ext, ok := e.K.mm.Find(addr)
	if !ok || !ext.ContainsRange(addr, size) {
		return hw.Extent{}, false
	}
	if e.extCacheGen != gen {
		e.extCache[1] = hw.Extent{}
		e.extCacheGen = gen
	} else {
		e.extCache[1] = e.extCache[0]
	}
	e.extCache[0] = ext
	return ext, true
}

// contains reports whether [addr, addr+size) is mapped.
func (e *Env) contains(addr, size uint64) bool {
	_, ok := e.resolve(addr, size)
	return ok
}

// fail aborts the current task with err (via panic, recovered by the task
// runner) so workload code can stay straight-line.
func (e *Env) fail(err error) {
	panic(guestError{err})
}

// check aborts the task when err is non-nil.
func (e *Env) check(err error) {
	if err != nil {
		e.fail(err)
	}
}

// Compute retires n abstract compute operations.
func (e *Env) Compute(n uint64) { e.check(e.CPU.Compute(n)) }

// TSC samples the time-stamp counter.
func (e *Env) TSC() uint64 { return e.CPU.ReadTSC() }

// Access performs one data access at addr, enforcing the kernel memory
// map (the simulation of Kitten's own page tables).
func (e *Env) Access(addr uint64, write bool, kind hw.AccessKind) {
	if !e.contains(addr, 1) {
		e.fail(fmt.Errorf("%w: %#x", ErrSegfault, addr))
	}
	e.check(e.CPU.MemAccess(addr, write, kind))
}

// AccessRun performs n strided accesses starting at addr (stride 0 repeats
// one address), equivalent to n Access calls — same memory-map checks at
// every element, same charged cycles, same fault points — but batched: the
// map is consulted once per covered extent and the accesses stream through
// hw.CPU.AccessRun's translation-batched path. A segfault aborts the task
// at exactly the element a per-element loop would have reached.
func (e *Env) AccessRun(addr uint64, n int, stride uint64, write bool, kind hw.AccessKind) {
	cur := addr
	for n > 0 {
		ext, ok := e.resolve(cur, 1)
		if !ok {
			e.fail(fmt.Errorf("%w: %#x", ErrSegfault, cur))
		}
		// Elements beyond this extent's end re-check the map (they may
		// land in an adjacent extent, as per-element checks allow).
		count := n
		if stride != 0 {
			if within := (ext.End() - cur - 1) / stride; uint64(count-1) > within {
				count = int(within) + 1
			}
		}
		e.check(e.CPU.AccessRun(cur, count, stride, write, kind))
		cur += uint64(count) * stride
		n -= count
	}
}

// AccessGather performs one data access per element of addrs, each
// optionally preceded by computePer compute operations — equivalent to
//
//	for _, a := range addrs { e.Compute(computePer); e.Access(a, write, kind) }
//
// with the same memory-map check for every element, the same charged
// cycles, and the same fault points, but batched: the mapped prefix is
// established first (resolving each element against the map in order, as
// the per-element loop would) and then streams through hw.CPU.AccessGather
// in one call. A segfault aborts the task at exactly the element a
// per-element loop would have reached, including the faulting element's
// compute charge, which the per-element loop retires before noticing the
// bad address.
func (e *Env) AccessGather(addrs []uint64, computePer uint64, write bool, kind hw.AccessKind) {
	mapped := len(addrs)
	for i, a := range addrs {
		if !e.contains(a, 1) {
			mapped = i
			break
		}
	}
	e.check(e.CPU.AccessGather(addrs[:mapped], computePer, write, kind))
	if mapped < len(addrs) {
		if computePer != 0 {
			e.Compute(computePer)
		}
		e.fail(fmt.Errorf("%w: %#x", ErrSegfault, addrs[mapped]))
	}
}

// Stream performs a sequential streaming access over [addr, addr+length).
func (e *Env) Stream(addr, length uint64, write bool) {
	if !e.contains(addr, length) {
		e.fail(fmt.Errorf("%w: [%#x,+%#x)", ErrSegfault, addr, length))
	}
	e.check(e.CPU.MemStream(addr, length, write))
}

// Read64 reads guest memory through the full protection path.
func (e *Env) Read64(addr uint64) uint64 {
	if !e.contains(addr, 8) {
		e.fail(fmt.Errorf("%w: %#x", ErrSegfault, addr))
	}
	v, err := e.CPU.Read64G(addr)
	e.check(err)
	return v
}

// Write64 writes guest memory through the full protection path.
func (e *Env) Write64(addr, val uint64) {
	if !e.contains(addr, 8) {
		e.fail(fmt.Errorf("%w: %#x", ErrSegfault, addr))
	}
	e.check(e.CPU.Write64G(addr, val))
}

// RawAccess bypasses the kernel memory map — simulating a co-kernel whose
// mapping state is buggy or stale. Only a hardware protection layer
// (Covirt's EPT) can stop it. With nothing underneath, the access reads or
// corrupts whatever physical memory is there, or crashes the node.
func (e *Env) RawAccess(addr uint64, write bool) error {
	return e.CPU.MemAccess(addr, write, hw.AccessHot)
}

// RawWrite64 is RawAccess with real data movement: the wild write lands.
func (e *Env) RawWrite64(addr, val uint64) error {
	return e.CPU.Write64G(addr, val)
}

// RawRead64 is the wild-read variant.
func (e *Env) RawRead64(addr uint64) (uint64, error) {
	return e.CPU.Read64G(addr)
}

// SendIPI sends vector to another local core of this enclave.
func (e *Env) SendIPI(localCore int, vector uint8) {
	if localCore < 0 || localCore >= len(e.K.cores) {
		e.fail(fmt.Errorf("kitten: no local core %d", localCore))
	}
	e.check(e.CPU.SendIPI(e.K.cores[localCore].cpu.ID, vector))
}

// SendIPIRaw sends vector to an arbitrary machine core — including cores
// outside the enclave, which is exactly the errant-IPI bug class Covirt's
// IPI protection filters.
func (e *Env) SendIPIRaw(machineCore int, vector uint8) error {
	return e.CPU.SendIPI(machineCore, vector)
}

// Alloc carves size bytes of contiguous memory on node from the enclave's
// assignment.
func (e *Env) Alloc(node int, size uint64) hw.Extent {
	ext, err := e.K.AllocMemory(node, size)
	e.check(err)
	return ext
}

// Free returns a region from Alloc.
func (e *Env) Free(ext hw.Extent) { e.K.FreeMemory(ext) }

// --- Longcall client (system-call forwarding to the host OS) ---

// Syscall forwards a system call to the host over the longcall channel and
// waits for the result. The host's processing cycles plus the doorbell IPI
// round trip are charged to the calling CPU as wait time.
//
// While waiting, the calling core stays responsive: it idles through the
// interrupt path, so NMI doorbells (Covirt command-queue synchronization)
// and control commands are still serviced — the property that lets Covirt
// update configurations while a process blocks on a shared-memory request.
func (e *Env) Syscall(nr uint32, args ...uint64) (val0, val1 uint64, err error) {
	if len(args) > pisces.LcReqCallerCore/8 {
		return 0, 0, fmt.Errorf("kitten: too many syscall args")
	}
	k := e.K
	// Acquire the longcall channel without parking the core: a parked
	// core could not take interrupts, and another core's flush could then
	// never complete.
	for !k.lcMu.TryLock() {
		if err := e.CPU.Compute(50); err != nil {
			return 0, 0, err
		}
	}
	defer k.lcMu.Unlock()
	k.lcSeq++
	var m pisces.Msg
	m.Type = nr
	m.Seq = k.lcSeq
	for i, a := range args {
		put64(m.Payload[:], i*8, a)
	}
	put64(m.Payload[:], pisces.LcReqCallerCore, uint64(e.CPU.ID))
	io := pisces.CPUMemIO{CPU: e.CPU}
	if err := k.enc.LcReq.Push(io, &m); err != nil {
		return 0, 0, err
	}
	// Doorbell to the host (modelled as an IPI's worth of cycles; the host
	// service is woken through the ring itself).
	e.CPU.TSC += e.CPU.Costs().IPISend

	var resp pisces.Msg
	for {
		ok, perr := k.enc.LcResp.TryPop(io, &resp)
		if perr != nil {
			return 0, 0, perr
		}
		if ok {
			break
		}
		if ierr := e.CPU.Idle(k.done); ierr != nil {
			return 0, 0, ierr
		}
	}
	if resp.Seq != m.Seq {
		return 0, 0, fmt.Errorf("kitten: longcall seq mismatch: %d != %d", resp.Seq, m.Seq)
	}
	status := get64(resp.Payload[:], pisces.LcRespStatus)
	hostCycles := get64(resp.Payload[:], pisces.LcRespCycles)
	// The caller was blocked while the host worked: advance its clock by
	// the host's processing time plus the return doorbell.
	e.CPU.TSC += hostCycles + e.CPU.Costs().IPISend
	val0 = get64(resp.Payload[:], pisces.LcRespVal0)
	val1 = get64(resp.Payload[:], pisces.LcRespVal1)
	if status != pisces.LcOK {
		return val0, val1, fmt.Errorf("kitten: longcall %d failed with status %d", nr, status)
	}
	return val0, val1, nil
}

// WriteConsole forwards a console write to the host.
func (e *Env) WriteConsole(s string) error {
	// Stage the bytes in the longcall data buffer.
	base := e.K.enc.Base() + pisces.OffLcData
	if len(s) > pisces.LcDataBytes {
		s = s[:pisces.LcDataBytes]
	}
	io := pisces.CPUMemIO{CPU: e.CPU}
	if err := io.WriteBytes(base, []byte(s)); err != nil {
		return err
	}
	_, _, err := e.Syscall(pisces.SysWriteConsole, base, uint64(len(s)))
	return err
}

// --- XEMEM application interface (forwarded to the host name service) ---

// XemMake exports [ext.Start, ext.End) as a named XEMEM segment, returning
// its segid.
func (e *Env) XemMake(name string, ext hw.Extent) (uint64, error) {
	segid, _, err := e.Syscall(pisces.SysXemMake, hashName(name), ext.Start, ext.Size)
	return segid, err
}

// XemGet looks up a segment by name.
func (e *Env) XemGet(name string) (uint64, error) {
	segid, _, err := e.Syscall(pisces.SysXemGet, hashName(name))
	return segid, err
}

// XemAttach maps a segment into this enclave, returning the now-accessible
// extents. The host transmits the page-frame extent list through the
// longcall data buffer; Kitten walks the list, adds each extent to its
// memory map, and charges per-extent mapping work — the operation whose
// latency Fig. 4 of the paper measures.
//
//covirt:ambient guest side of the attach protocol: the host verified the
// consumer's attach key and mapped the EPT before transmitting the frame
// list, so the co-kernel only mirrors an already-authorized mapping.
func (e *Env) XemAttach(segid uint64) ([]hw.Extent, error) {
	_, count, err := e.Syscall(pisces.SysXemAttach, segid)
	if err != nil {
		return nil, err
	}
	io := pisces.CPUMemIO{CPU: e.CPU}
	exts, err := pisces.GetExtents(io, e.K.enc.Base()+pisces.OffLcData, int(count))
	if err != nil {
		return nil, err
	}
	cs := e.CPU.Costs()
	for _, x := range exts {
		e.K.mm.Add(x)
		// Page-table population: one write per 2M mapping.
		pages := (x.Size + hw.PageSize2M - 1) / hw.PageSize2M
		e.CPU.TSC += pages * cs.WalkPerLevel
	}
	return exts, nil
}

// XemDetach unmaps a previously attached segment, following the paper's
// ordering: the co-kernel relinquishes its own mappings first, and only
// then is the detach completed on the host side — where the protection
// layer unmaps the hardware context and flushes TLBs before the management
// layer considers the memory released.
//
//covirt:ambient guest side of the detach protocol: dropping the enclave's
// own mirror of a host-verified mapping withdraws access, it cannot grant
// any; the authoritative unmap happens host-side at detach-done.
func (e *Env) XemDetach(segid uint64) error {
	_, count, err := e.Syscall(pisces.SysXemDetach, segid)
	if err != nil {
		return err
	}
	io := pisces.CPUMemIO{CPU: e.CPU}
	exts, err := pisces.GetExtents(io, e.K.enc.Base()+pisces.OffLcData, int(count))
	if err != nil {
		return err
	}
	for _, x := range exts {
		e.K.mm.Remove(x)
		e.K.shootdown(e.CPU, x)
	}
	_, _, err = e.Syscall(pisces.SysXemDetachDone, segid)
	return err
}

// hashName gives names a stable 64-bit wire encoding (FNV-1a).
func hashName(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// put64/get64: little-endian payload packing.
func put64(p []byte, off int, v uint64) { binary.LittleEndian.PutUint64(p[off:], v) }
func get64(p []byte, off int) uint64    { return binary.LittleEndian.Uint64(p[off:]) }
