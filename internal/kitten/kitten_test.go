package kitten

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"

	"covirt/internal/hw"
	"covirt/internal/linuxhost"
	"covirt/internal/pisces"
)

// testStack boots a host + Pisces (no Covirt) stack with one Kitten
// enclave for kernel-level tests.
func testStack(t *testing.T, cores int, nodes []int, mem uint64) (*linuxhost.Host, *pisces.Framework, *pisces.Enclave, *Kernel) {
	t.Helper()
	spec := hw.DefaultSpec()
	spec.MemPerNode = 2 << 30
	m, err := hw.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	host, err := linuxhost.New(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range m.Topo.Nodes {
		if err := host.OfflineCores(n.Cores[1:]...); err != nil {
			t.Fatal(err)
		}
		if err := host.OfflineMemory(n.ID, 1<<30); err != nil {
			t.Fatal(err)
		}
	}
	fw := host.Pisces
	enc, err := fw.CreateEnclave(pisces.EnclaveSpec{Name: "t", NumCores: cores, Nodes: nodes, MemBytes: mem})
	if err != nil {
		t.Fatal(err)
	}
	k := New(Config{})
	if err := fw.Boot(enc, k); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fw.Destroy(enc) })
	return host, fw, enc, k
}

func TestMemMapBasics(t *testing.T) {
	mm := NewMemMap()
	mm.Add(hw.Extent{Start: 0x1000, Size: 0x2000, Node: 0})
	mm.Add(hw.Extent{Start: 0x10000, Size: 0x1000, Node: 1})
	if !mm.Contains(0x1000, 1) || !mm.Contains(0x2FFF, 1) {
		t.Error("mapped range missing")
	}
	if mm.Contains(0x3000, 1) {
		t.Error("unmapped address present")
	}
	if mm.Contains(0x2800, 0x1000) {
		t.Error("range crossing extent end accepted")
	}
	if mm.Bytes() != 0x3000 {
		t.Errorf("bytes = %#x", mm.Bytes())
	}
	if !mm.Remove(hw.Extent{Start: 0x1000, Size: 0x2000}) {
		t.Error("remove failed")
	}
	if mm.Remove(hw.Extent{Start: 0x1000, Size: 0x2000}) {
		t.Error("double remove succeeded")
	}
	if mm.Contains(0x1000, 1) {
		t.Error("removed range still present")
	}
	if got := len(mm.Extents()); got != 1 {
		t.Errorf("extents = %d", got)
	}
}

// Property: after any add/remove sequence, Contains agrees with a naive
// reference model.
func TestMemMapProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		mm := NewMemMap()
		ref := map[uint64]bool{} // page -> mapped
		for _, op := range ops {
			slot := uint64(op % 16)
			ext := hw.Extent{Start: slot * 0x10000, Size: 0x10000}
			if op%2 == 0 && !ref[slot] {
				mm.Add(ext)
				ref[slot] = true
			} else if ref[slot] {
				mm.Remove(ext)
				ref[slot] = false
			}
		}
		for slot, want := range ref {
			if mm.Contains(slot*0x10000+0x8000, 8) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestKernelBootState(t *testing.T) {
	_, _, enc, k := testStack(t, 2, []int{0}, 256<<20)
	if k.NumCores() != 2 {
		t.Fatalf("cores = %d", k.NumCores())
	}
	if got := k.MemMap().Bytes(); got != 256<<20 {
		t.Errorf("memmap = %d", got)
	}
	if nodes := k.Nodes(); len(nodes) != 1 || nodes[0] != 0 {
		t.Errorf("nodes = %v", nodes)
	}
	// Boot twice is rejected.
	if err := k.Boot(&pisces.BootContext{}); err == nil {
		t.Error("double boot accepted")
	}
	// Stream sharers set from the partition.
	if k.CPU(0).StreamSharers != 2 {
		t.Errorf("sharers = %d", k.CPU(0).StreamSharers)
	}
	_ = enc
}

func TestSpawnValidation(t *testing.T) {
	_, _, _, k := testStack(t, 1, []int{0}, 128<<20)
	if _, err := k.Spawn("x", 5, func(*Env) error { return nil }); err == nil {
		t.Error("spawn on absent core accepted")
	}
	if _, err := k.Spawn("x", -1, func(*Env) error { return nil }); err == nil {
		t.Error("spawn on negative core accepted")
	}
	if err := k.RunParallel("x", 9, func(*Env, int) error { return nil }); err == nil {
		t.Error("RunParallel beyond cores accepted")
	}
	unbooted := New(Config{})
	if _, err := unbooted.Spawn("x", 0, func(*Env) error { return nil }); err == nil {
		t.Error("spawn before boot accepted")
	}
}

func TestTasksRunToCompletionInOrder(t *testing.T) {
	_, _, _, k := testStack(t, 1, []int{0}, 128<<20)
	var order []int
	var tasks []*Task
	for i := 0; i < 5; i++ {
		i := i
		task, err := k.Spawn(fmt.Sprintf("t%d", i), 0, func(e *Env) error {
			e.Compute(100)
			order = append(order, i)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	for _, task := range tasks {
		if err := task.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v; run-to-completion violated", order)
		}
	}
}

// TestSpawnDoorbellChargedBeforeTaskBody pins the spawn handshake: a task
// body never starts until the spawner's reschedule doorbell has been
// raised, so a leading drain poll (Compute(0)) consumes the doorbell's
// interrupt cost — or the idle loop already did — and the cycles charged
// after the drain are identical on every spawn. Before the handshake the
// core loop could dequeue a task ahead of Spawn's RouteIPI, and the
// doorbell then landed at a host-scheduler-dependent point inside the
// measured region (the multi-rank cycle jitter flake).
func TestSpawnDoorbellChargedBeforeTaskBody(t *testing.T) {
	_, _, _, k := testStack(t, 1, []int{0}, 128<<20)
	const repeats = 64
	deltas := make([]uint64, repeats)
	for i := 0; i < repeats; i++ {
		i := i
		task, err := k.Spawn("window", 0, func(e *Env) error {
			e.Compute(0) // drain: the doorbell is pending or already serviced
			start := e.CPU.TSC
			e.Compute(10_000)
			deltas[i] = e.CPU.TSC - start
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := task.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < repeats; i++ {
		if deltas[i] != deltas[0] {
			t.Fatalf("measured window drifted at spawn %d: %d cycles vs %d — an interrupt landed inside the drained region", i, deltas[i], deltas[0])
		}
	}
}

// TestSpawnFromTask guards the handshake against a release/queue ordering
// regression: a task spawning onto its own core must not deadlock on the
// new task's released channel (Spawn closes it unconditionally after the
// doorbell, never from the core loop).
func TestSpawnFromTask(t *testing.T) {
	_, _, _, k := testStack(t, 1, []int{0}, 128<<20)
	var inner *Task
	outer, err := k.Spawn("outer", 0, func(e *Env) error {
		t2, err := k.Spawn("inner", 0, func(e *Env) error {
			e.Compute(10)
			return nil
		})
		inner = t2
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := outer.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := inner.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestEnvAllocFree(t *testing.T) {
	_, _, _, k := testStack(t, 1, []int{0}, 128<<20)
	task, _ := k.Spawn("alloc", 0, func(e *Env) error {
		a := e.Alloc(0, 8<<20)
		b := e.Alloc(0, 8<<20)
		if a.Overlaps(b) {
			return errors.New("overlapping allocations")
		}
		if !k.MemMap().Contains(a.Start, a.Size) {
			return errors.New("allocation outside memory map")
		}
		e.Free(a)
		e.Free(b)
		return nil
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestEnvSegfaultOnRangeCrossing(t *testing.T) {
	_, _, enc, k := testStack(t, 1, []int{0}, 128<<20)
	end := enc.Mem()[0].End()
	task, _ := k.Spawn("cross", 0, func(e *Env) error {
		e.Stream(end-4096, 8192, false) // runs off the end of the enclave
		return nil
	})
	if err := task.Wait(); !errors.Is(err, ErrSegfault) {
		t.Fatalf("err = %v, want segfault", err)
	}
}

func TestTimerTickless(t *testing.T) {
	spec := hw.DefaultSpec()
	spec.MemPerNode = 1 << 30
	m, err := hw.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	ledger := pisces.NewLedger()
	_ = ledger.DonateMemory(hw.Extent{Start: hw.AlignUp(m.Topo.Nodes[0].MemBase, hw.PageSize2M), Size: 512 << 20, Node: 0})
	ledger.DonateCore(1)
	fw := pisces.NewFramework(m, ledger)
	enc, err := fw.CreateEnclave(pisces.EnclaveSpec{Name: "tickless", NumCores: 1, Nodes: []int{0}, MemBytes: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	k := New(Config{TimerInterval: -1}) // tickless
	if err := fw.Boot(enc, k); err != nil {
		t.Fatal(err)
	}
	defer fw.Destroy(enc)
	task, _ := k.Spawn("spin", 0, func(e *Env) error {
		for i := 0; i < 100; i++ {
			e.Compute(10_000_000) // a billion cycles total
		}
		return nil
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	if k.Ticks.Load() != 0 {
		t.Errorf("ticks = %d in tickless mode", k.Ticks.Load())
	}
}

func TestCustomTimerInterval(t *testing.T) {
	spec := hw.DefaultSpec()
	spec.MemPerNode = 1 << 30
	m, err := hw.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	ledger := pisces.NewLedger()
	_ = ledger.DonateMemory(hw.Extent{Start: hw.AlignUp(m.Topo.Nodes[0].MemBase, hw.PageSize2M), Size: 512 << 20, Node: 0})
	ledger.DonateCore(1)
	fw := pisces.NewFramework(m, ledger)
	enc, _ := fw.CreateEnclave(pisces.EnclaveSpec{Name: "hz", NumCores: 1, Nodes: []int{0}, MemBytes: 128 << 20})
	k := New(Config{TimerInterval: 1_000_000}) // 1700 Hz
	if err := fw.Boot(enc, k); err != nil {
		t.Fatal(err)
	}
	defer fw.Destroy(enc)
	task, _ := k.Spawn("spin", 0, func(e *Env) error {
		for i := 0; i < 1000; i++ {
			e.Compute(10_000) // 10M cycles in poll-visible steps
		}
		return nil
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	if ticks := k.Ticks.Load(); ticks < 8 || ticks > 12 {
		t.Errorf("ticks = %d, want ~10", ticks)
	}
}

func TestSyscallConcurrentCallers(t *testing.T) {
	_, _, _, k := testStack(t, 4, []int{0, 1}, 512<<20)
	// All cores hammer the longcall channel; the per-kernel serialization
	// plus seq matching must keep responses straight.
	var calls atomic.Int64
	err := k.RunParallel("syscalls", 4, func(e *Env, rank int) error {
		for i := 0; i < 25; i++ {
			pid, _, err := e.Syscall(pisces.SysGetPID)
			if err != nil {
				return err
			}
			if pid == 0 {
				return errors.New("zero pid")
			}
			calls.Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 100 {
		t.Errorf("calls = %d", calls.Load())
	}
}

func TestSyscallNosys(t *testing.T) {
	_, _, _, k := testStack(t, 1, []int{0}, 128<<20)
	task, _ := k.Spawn("nosys", 0, func(e *Env) error {
		_, _, err := e.Syscall(9999)
		if err == nil {
			return errors.New("unknown syscall succeeded")
		}
		return nil
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSyscallAdvancesClockByHostWork(t *testing.T) {
	_, _, _, k := testStack(t, 1, []int{0}, 128<<20)
	task, _ := k.Spawn("sleep", 0, func(e *Env) error {
		t0 := e.CPU.TSC
		if _, _, err := e.Syscall(pisces.SysNanosleep, 5_000_000); err != nil {
			return err
		}
		if d := e.CPU.TSC - t0; d < 5_000_000 {
			return fmt.Errorf("sleep advanced only %d cycles", d)
		}
		return nil
	})
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestShootdownReachesOtherCores(t *testing.T) {
	_, fw, enc, k := testStack(t, 2, []int{0}, 256<<20)
	ext, err := fw.AddMemory(enc, 0, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Warm core 1's TLB on the new extent.
	warm, _ := k.Spawn("warm", 1, func(e *Env) error {
		e.Access(ext.Start+4096, false, hw.AccessHot)
		return nil
	})
	if err := warm.Wait(); err != nil {
		t.Fatal(err)
	}
	if !k.CPU(1).TLB.Lookup(ext.Start + 4096) {
		t.Fatal("TLB not warmed")
	}
	if err := fw.RemoveMemory(enc, ext); err != nil {
		t.Fatal(err)
	}
	// Let core 1 process the shootdown IPI.
	drain, _ := k.Spawn("drain", 1, func(e *Env) error { e.Compute(10); return nil })
	if err := drain.Wait(); err != nil {
		t.Fatal(err)
	}
	// The stale translation must be gone (Lookup also counts as a miss).
	if k.CPU(1).TLB.Lookup(ext.Start + 4096) {
		t.Error("stale TLB entry survived shootdown")
	}
}

func TestGuestPanicBecomesTaskError(t *testing.T) {
	_, _, _, k := testStack(t, 1, []int{0}, 128<<20)
	task, _ := k.Spawn("oom", 0, func(e *Env) error {
		e.Alloc(0, 1<<40) // absurd allocation -> guest fail
		return nil
	})
	if err := task.Wait(); err == nil {
		t.Fatal("impossible allocation succeeded")
	}
	// The kernel stays healthy after the guest fault.
	ok, _ := k.Spawn("after", 0, func(e *Env) error { e.Compute(10); return nil })
	if err := ok.Wait(); err != nil {
		t.Fatalf("kernel unhealthy after guest fault: %v", err)
	}
}

func TestHashNameStable(t *testing.T) {
	if hashName("abc") != hashName("abc") {
		t.Error("hash not deterministic")
	}
	if hashName("abc") == hashName("abd") {
		t.Error("trivial collision")
	}
	if hashName("") == 0 {
		t.Error("empty hash is zero")
	}
}
