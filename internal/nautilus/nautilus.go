// Package nautilus simulates the Nautilus Aerokernel as a second co-kernel
// architecture on the Pisces framework. The paper's §V recounts porting
// Nautilus to Pisces with Covirt underneath: development could start on
// real hardware immediately because the hypervisor contained early-bringup
// faults to the enclave.
//
// Nautilus differs from Kitten in exactly the ways that exercise the
// framework's generality:
//
//   - it is an aerokernel: a single physical address space shared by
//     lightweight threads, with no processes and no virtual memory
//     management beyond the identity map;
//   - its hybrid-runtime threads are created at boot and run to
//     completion — there is no scheduler to submit work to afterwards;
//   - it services only the minimal control protocol (ping/shutdown) and
//     rejects dynamic memory reconfiguration, as a specialized runtime
//     kernel would.
package nautilus

import (
	"fmt"
	"sync"
	"sync/atomic"

	"covirt/internal/hw"
	"covirt/internal/pisces"
)

// ThreadFn is one hybrid-runtime thread body, started at boot on its core.
type ThreadFn func(env *Env, rank int) error

// Env is the aerokernel execution environment: thinner than Kitten's (no
// syscall forwarding, no dynamic tasks), with direct access to the single
// address space.
type Env struct {
	K    *Kernel
	CPU  *hw.CPU
	Rank int
}

// Compute retires n abstract operations.
func (e *Env) Compute(n uint64) error { return e.CPU.Compute(n) }

// TSC samples the time-stamp counter.
func (e *Env) TSC() uint64 { return e.CPU.ReadTSC() }

// Heap returns the aerokernel's single heap region (everything after the
// reserved boot area). All threads share it; Nautilus-style runtimes
// partition it themselves.
func (e *Env) Heap() hw.Extent { return e.K.heap }

// Read64 and Write64 access the shared address space through the
// protection path.
func (e *Env) Read64(addr uint64) (uint64, error) { return e.CPU.Read64G(addr) }

// Write64 writes the shared address space.
func (e *Env) Write64(addr, v uint64) error { return e.CPU.Write64G(addr, v) }

// Stream charges a sequential sweep.
func (e *Env) Stream(addr, size uint64, write bool) error {
	return e.CPU.MemStream(addr, size, write)
}

// SendIPI signals another rank of the aerokernel.
func (e *Env) SendIPI(rank int, vector uint8) error {
	if rank < 0 || rank >= len(e.K.cores) {
		return fmt.Errorf("nautilus: no rank %d", rank)
	}
	return e.CPU.SendIPI(e.K.cores[rank].ID, vector)
}

// Kernel is one Nautilus instance. It implements pisces.Bootable.
type Kernel struct {
	entry ThreadFn

	mach  *hw.Machine
	enc   *pisces.Enclave
	cores []*hw.CPU
	heap  hw.Extent

	done   chan struct{}
	stop   sync.Once
	wg     sync.WaitGroup
	booted atomic.Bool

	// hbAddr is the supervisor heartbeat page (0 = unsupervised). Nautilus
	// is tickless by design, so supervision arms a timer on the boot core
	// only, solely to drive beats; hbCount is written from that core's
	// timer interrupt.
	hbAddr  uint64
	hbCount atomic.Uint64

	errMu    sync.Mutex
	errs     []error
	handlers sync.Map // vector -> func(*Env)
}

// New returns an unbooted Nautilus image whose threads run entry.
func New(entry ThreadFn) *Kernel {
	return &Kernel{entry: entry, done: make(chan struct{})}
}

// Boot implements pisces.Bootable: identity-map the assignment, start one
// hybrid-runtime thread per core, and service the minimal control channel
// from interrupt context on the boot core.
func (k *Kernel) Boot(bc *pisces.BootContext) error {
	if k.booted.Load() {
		return fmt.Errorf("nautilus: already booted")
	}
	k.mach = bc.Machine
	k.enc = bc.Enclave

	first := bc.Params.Mem[0]
	k.heap = hw.Extent{
		Start: first.Start + pisces.ReservedBytes,
		Size:  first.Size - pisces.ReservedBytes,
		Node:  first.Node,
	}

	k.hbAddr = bc.Params.Heartbeat
	for i, id := range bc.Params.Cores {
		cpu := k.mach.CPU(id)
		if cpu == nil {
			return fmt.Errorf("nautilus: no core %d", id)
		}
		k.cores = append(k.cores, cpu)
		cpu.SetIRQHandler(k.handleIRQ)
		if i == 0 && k.hbAddr != 0 {
			cpu.APIC.ArmTimer(cpu.TSC, k.mach.Costs.TimerIntervalCycles, pisces.VectorTimer)
			// Initial beat before the boot thread starts, so the watchdog
			// measures hangs against this boot's TSC even if the thread
			// locks up instantly.
			k.beat(cpu)
		}
		rank := i
		k.wg.Add(1)
		go k.threadLoop(cpu, rank)
	}
	k.booted.Store(true)
	return nil
}

// threadLoop runs the rank's thread body, then idles (servicing
// interrupts — including Covirt's NMI doorbells) until shutdown.
func (k *Kernel) threadLoop(cpu *hw.CPU, rank int) {
	defer k.wg.Done()
	env := &Env{K: k, CPU: cpu, Rank: rank}
	if err := k.entry(env, rank); err != nil {
		k.recordErr(fmt.Errorf("rank %d: %w", rank, err))
	}
	for {
		select {
		case <-k.done:
			return
		default:
		}
		if err := cpu.Idle(k.done); err != nil {
			return
		}
	}
}

// recordErr appends a rank failure under the error lock.
func (k *Kernel) recordErr(err error) {
	k.errMu.Lock()
	defer k.errMu.Unlock()
	k.errs = append(k.errs, err)
}

// handleIRQ services interrupts: the Pisces control vector on any core,
// plus registered runtime vectors.
func (k *Kernel) handleIRQ(cpu *hw.CPU, vector uint8, external bool) {
	switch vector {
	case pisces.VectorTimer:
		if k.hbAddr != 0 && cpu.ID == k.cores[0].ID {
			k.beat(cpu)
		}
	case pisces.VectorCtl:
		k.drainCtl(cpu)
	default:
		if h, ok := k.handlers.Load(vector); ok {
			rank := -1
			for i, c := range k.cores {
				if c.ID == cpu.ID {
					rank = i
				}
			}
			h.(func(*Env))(&Env{K: k, CPU: cpu, Rank: rank})
		}
	}
}

// beat publishes one liveness heartbeat (boot core timer-interrupt
// context): bump the monotonic counter and stamp the current TSC into the
// shared heartbeat page through the guest's protection path.
func (k *Kernel) beat(cpu *hw.CPU) {
	io := pisces.CPUMemIO{CPU: cpu}
	n := k.hbCount.Add(1)
	if err := io.Write64(k.hbAddr+pisces.HbCount, n); err != nil {
		return // teardown race: the enclave is already being killed
	}
	if err := io.Write64(k.hbAddr+pisces.HbTSC, cpu.TSC); err != nil {
		return
	}
}

// OnIPI registers a runtime interrupt handler.
func (k *Kernel) OnIPI(vector uint8, h func(*Env)) { k.handlers.Store(vector, h) }

// drainCtl services the host control ring: Nautilus accepts ping and
// shutdown, and — being a static runtime kernel — rejects memory
// reconfiguration.
func (k *Kernel) drainCtl(cpu *hw.CPU) {
	io := pisces.CPUMemIO{CPU: cpu}
	for {
		var m pisces.Msg
		ok, err := k.enc.CtlReq.TryPop(io, &m)
		if err != nil || !ok {
			return
		}
		resp := pisces.Msg{Type: pisces.AckOK, Seq: m.Seq}
		switch m.Type {
		case pisces.CmdPing:
		case pisces.CmdShutdown:
			_ = k.enc.CtlResp.Push(io, &resp)
			go k.Shutdown()
			return
		default:
			resp.Type = pisces.AckErr
		}
		if err := k.enc.CtlResp.Push(io, &resp); err != nil {
			return
		}
	}
}

// Shutdown implements pisces.Bootable.
func (k *Kernel) Shutdown() {
	k.stop.Do(func() {
		close(k.done)
		for _, c := range k.cores {
			c.APIC.DisarmTimer() // only armed when supervised
			c.APIC.RaiseNMI()    // wake idle loops
		}
	})
}

// Quiesce implements pisces.Quiescer: wait for all thread loops to exit.
func (k *Kernel) Quiesce() { k.wg.Wait() }

// Wait blocks until all thread loops exit, returning the first thread
// error.
func (k *Kernel) Wait() error {
	k.wg.Wait()
	k.errMu.Lock()
	defer k.errMu.Unlock()
	if len(k.errs) > 0 {
		return k.errs[0]
	}
	return nil
}

// JoinThreads blocks until every thread body has returned (they may still
// be idling) and reports the first error so far.
func (k *Kernel) Errors() []error {
	k.errMu.Lock()
	defer k.errMu.Unlock()
	out := make([]error, len(k.errs))
	copy(out, k.errs)
	return out
}

var _ pisces.Bootable = (*Kernel)(nil)
