package nautilus_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"covirt/internal/covirt"
	"covirt/internal/hw"
	"covirt/internal/nautilus"
	"covirt/internal/pisces"
	"covirt/internal/testbed"
)

// stack boots a host, optionally with Covirt, ready for one enclave.
func stack(t *testing.T, protected bool) (*testbed.Node, *covirt.Controller) {
	t.Helper()
	spec := hw.DefaultSpec()
	spec.MemPerNode = 2 << 30
	node, err := testbed.Spec{
		Machine:      spec,
		OfflineCores: []int{1, 2},
		OfflineMem:   map[int]uint64{0: 512 << 20},
		Covirt:       protected,
		Features:     covirt.FeaturesMem,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return node, node.Ctrl
}

func bootNautilus(t *testing.T, n *testbed.Node, cores int, entry nautilus.ThreadFn) (*pisces.Enclave, *nautilus.Kernel) {
	t.Helper()
	be, err := n.BootGuest(testbed.Guest{
		Name: "aero", Kind: testbed.Nautilus, Cores: cores, Nodes: []int{0},
		MemBytes: 256 << 20, Entry: entry,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Host.Pisces.Destroy(be.Enc) })
	return be.Enc, be.Nautilus
}

func TestNautilusBootsAndComputes(t *testing.T) {
	n, _ := stack(t, false)
	var sum atomic.Uint64
	_, k := bootNautilus(t, n, 2, func(e *nautilus.Env, rank int) error {
		if err := e.Compute(10_000); err != nil {
			return err
		}
		heap := e.Heap()
		addr := heap.Start + uint64(rank)*4096
		if err := e.Write64(addr, uint64(rank+1)); err != nil {
			return err
		}
		v, err := e.Read64(addr)
		if err != nil {
			return err
		}
		sum.Add(v)
		return nil
	})
	// Threads run immediately at boot; give them a moment then check.
	deadline := time.After(5 * time.Second)
	for sum.Load() != 3 {
		select {
		case <-deadline:
			t.Fatalf("threads incomplete: sum = %d, errs = %v", sum.Load(), k.Errors())
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestNautilusControlProtocol(t *testing.T) {
	n, _ := stack(t, false)
	enc, _ := bootNautilus(t, n, 1, func(e *nautilus.Env, rank int) error {
		return e.Compute(100)
	})
	if err := n.Host.Pisces.Ping(enc); err != nil {
		t.Fatalf("ping: %v", err)
	}
	// Nautilus rejects dynamic memory growth (static runtime kernel).
	if _, err := n.Host.Pisces.AddMemory(enc, 0, 16<<20); err == nil {
		t.Error("aerokernel accepted mem-add")
	}
	if err := n.Host.Pisces.Destroy(enc); err != nil {
		t.Fatalf("destroy: %v", err)
	}
	if enc.State() != pisces.StateStopped {
		t.Errorf("state = %v", enc.State())
	}
}

func TestRejectedMemAddRollsBackEPT(t *testing.T) {
	// Nautilus refuses mem-add; the controller's map-before-notify EPT
	// entry must be rolled back, or the enclave would retain hardware
	// access to memory it never accepted.
	n, ctrl := stack(t, true)
	enc, _ := bootNautilus(t, n, 1, func(e *nautilus.Env, rank int) error {
		return e.Compute(100)
	})
	before := ctrl.StatusFor(enc.ID).EPT.Bytes
	if _, err := n.Host.Pisces.AddMemory(enc, 0, 16<<20); err == nil {
		t.Fatal("aerokernel accepted mem-add")
	}
	if after := ctrl.StatusFor(enc.ID).EPT.Bytes; after != before {
		t.Errorf("EPT bytes %d -> %d: rejected grant left mapped", before, after)
	}
}

func TestNautilusBringupFaultContainedUnderCovirt(t *testing.T) {
	// The §V porting story: early-bringup code touches hardware it was
	// never assigned. Under Covirt, development proceeds on "real
	// hardware" because the fault cannot leave the enclave.
	n, ctrl := stack(t, true)
	enc, k := bootNautilus(t, n, 1, func(e *nautilus.Env, rank int) error {
		// Bringup bug: probe legacy low memory that isn't ours.
		_, err := e.Read64(0x8000)
		return err
	})
	select {
	case <-enc.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("fault never surfaced")
	}
	if n.M.Crashed() {
		t.Fatal("node crashed; Covirt should contain aerokernel bringup faults")
	}
	if enc.State() != pisces.StateCrashed {
		t.Errorf("state = %v", enc.State())
	}
	// The crash report fires from inside the faulting access; the thread
	// body may not have returned yet. Wait for its error to surface.
	deadline := time.After(5 * time.Second)
	for len(k.Errors()) == 0 {
		select {
		case <-deadline:
			t.Fatal("thread error never surfaced")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	errs := k.Errors()
	if len(errs) != 1 || !hw.IsFault(errors.Unwrap(errs[0]), hw.FaultEnclaveKilled) {
		t.Errorf("thread errors = %v", errs)
	}
	_ = ctrl
}

func TestNautilusBringupFaultCrashesNodeBare(t *testing.T) {
	n, _ := stack(t, false)
	enc, _ := bootNautilus(t, n, 1, func(e *nautilus.Env, rank int) error {
		_, err := e.Read64(0x8000) // unbacked: native abort
		return err
	})
	deadline := time.After(5 * time.Second)
	for !n.M.Crashed() {
		select {
		case <-deadline:
			t.Fatal("node survived; expected the unprotected bringup crash")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	_ = enc
}

func TestNautilusIPIBetweenRanks(t *testing.T) {
	n, _ := stack(t, false)
	var got atomic.Int32
	ready := make(chan *nautilus.Kernel, 2) // entry threads fetch the kernel
	_, k := bootNautilus(t, n, 2, func(e *nautilus.Env, rank int) error {
		kn := <-ready
		if rank == 0 {
			kn.OnIPI(0x55, func(*nautilus.Env) { got.Store(1) })
			// Spin so the interrupt is serviced promptly.
			for got.Load() == 0 {
				if err := e.Compute(100); err != nil {
					return err
				}
			}
			return nil
		}
		// Rank 1 signals rank 0 (after a short delay for registration).
		if err := e.Compute(5_000); err != nil {
			return err
		}
		return e.SendIPI(0, 0x55)
	})
	ready <- k
	ready <- k
	deadline := time.After(5 * time.Second)
	for got.Load() == 0 {
		select {
		case <-deadline:
			t.Fatalf("IPI never delivered; errs=%v", k.Errors())
		default:
			time.Sleep(time.Millisecond)
		}
	}
}
