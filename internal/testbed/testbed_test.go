package testbed_test

import (
	"testing"

	"covirt/internal/covirt"
	"covirt/internal/kitten"
	"covirt/internal/nautilus"
	"covirt/internal/testbed"
)

// TestRoundTripKitten drives the declarative path end to end with the
// paper's primary guest: Build assembles machine → host → Pisces → Covirt,
// boots a Kitten enclave, the guest does real (charged) work, and Close
// tears the enclave down without crashing the machine.
func TestRoundTripKitten(t *testing.T) {
	node, err := testbed.Spec{
		Covirt:   true,
		Features: covirt.FeaturesMem,
		Guests: []testbed.Guest{{
			Name: "rt-kitten", Cores: 2, Nodes: []int{0, 1}, MemBytes: 512 << 20,
		}},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if node.Ctrl == nil {
		t.Fatal("spec asked for covirt but node has no controller")
	}
	k := node.Kitten()
	if k == nil {
		t.Fatal("kitten guest did not boot")
	}
	task, err := k.Spawn("work", 0, func(e *kitten.Env) error {
		seg := e.Alloc(0, 1<<20)
		e.Stream(seg.Start, seg.Size, true)
		e.Write64(seg.Start, 0xfeed)
		if got := e.Read64(seg.Start); got != 0xfeed {
			t.Errorf("guest read back %#x, want 0xfeed", got)
		}
		e.Free(seg)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	node.Close()
	if node.M.Crashed() {
		t.Fatal("machine crashed during round trip")
	}
	if len(node.Encs) != 0 {
		t.Fatalf("Close left %d enclaves registered", len(node.Encs))
	}
}

// TestRoundTripNautilus repeats the round trip with the second co-kernel
// kind: the aerokernel's boot threads run to completion inside a protected
// enclave and Wait surfaces their result.
func TestRoundTripNautilus(t *testing.T) {
	ran := make(chan int, 8)
	entry := func(e *nautilus.Env, rank int) error {
		heap := e.Heap()
		if err := e.Stream(heap.Start, 1<<16, rank == 0); err != nil {
			return err
		}
		if err := e.Compute(1000); err != nil {
			return err
		}
		ran <- rank
		return nil
	}
	node, err := testbed.Spec{
		Covirt:   true,
		Features: covirt.FeaturesMem,
		Guests: []testbed.Guest{{
			Name: "rt-nautilus", Kind: testbed.Nautilus,
			Cores: 2, Nodes: []int{0}, MemBytes: 256 << 20, Entry: entry,
		}},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	nk := node.Nautilus()
	if nk == nil {
		t.Fatal("nautilus guest did not boot")
	}
	// Boot threads run to completion, then idle until shutdown — collect
	// both ranks' completions before tearing the enclave down.
	ranks := map[int]bool{}
	for i := 0; i < 2; i++ {
		ranks[<-ran] = true
	}
	if !ranks[0] || !ranks[1] {
		t.Fatalf("expected both ranks to run, got %v", ranks)
	}
	node.Close()
	if err := nk.Wait(); err != nil {
		t.Fatal(err)
	}
	if node.M.Crashed() {
		t.Fatal("machine crashed during round trip")
	}
}
