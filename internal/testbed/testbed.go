// Package testbed is the one place in the repository that assembles the
// simulated co-kernel stack. A declarative Spec names the machine, the
// resources to carve out of the host, the Covirt feature set, and the
// guests to boot; Build turns it into a running node:
//
//	machine → linuxhost → Pisces/Hobbes → (Covirt controller) → guests
//
// Every consumer — the experiment harness, the examples, the fault
// campaign, the management shell, and the package test fixtures — goes
// through this path, so offline/boot logic lives exactly once.
package testbed

import (
	"fmt"

	"covirt/internal/covirt"
	"covirt/internal/hw"
	"covirt/internal/kitten"
	"covirt/internal/linuxhost"
	"covirt/internal/nautilus"
	"covirt/internal/pisces"
	"covirt/internal/trace"
)

// Kind selects the co-kernel booted into an enclave.
type Kind int

const (
	// Kitten is the Hobbes lightweight kernel (the paper's primary guest).
	Kitten Kind = iota
	// Nautilus is the aerokernel port from the paper's §V generality claim.
	Nautilus
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Kitten:
		return "kitten"
	case Nautilus:
		return "nautilus"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Guest describes one enclave and the co-kernel booted into it.
type Guest struct {
	// Name is the enclave name registered with Pisces.
	Name string
	// Kind selects the co-kernel (default Kitten).
	Kind Kind
	// Cores is the enclave's core count; Nodes the NUMA nodes they are
	// drawn from, round-robin.
	Cores int
	Nodes []int
	// MemBytes is the enclave memory, split evenly across Nodes.
	MemBytes uint64
	// TimerInterval overrides the Kitten guest timer period in cycles
	// (0 = machine default, negative = tickless).
	TimerInterval int64
	// Entry is the Nautilus boot thread (required for Kind Nautilus).
	Entry nautilus.ThreadFn
	// Features, when non-nil, overrides the controller's default feature
	// set for this enclave (IoctlSetFeatures before boot).
	Features *covirt.Features
	// Heartbeat enables the supervisor liveness protocol: the co-kernel
	// beats a shared heartbeat page from its boot core's timer interrupt.
	Heartbeat bool
	// IPIGrants are Hobbes IPI permissions established after boot — and
	// re-established identically when a supervisor reboots the guest.
	IPIGrants []IPIGrant
	// OnBoot, when set, runs after the kernel is up (every boot, including
	// supervised restarts). Guests use it to re-establish state the spec
	// cannot express structurally, e.g. XEMEM attaches.
	OnBoot func(n *Node, e *Enclave) error
}

// IPIGrant is one declarative Hobbes IPI permission: the guest may send
// Vector to machine core DestCore.
type IPIGrant struct {
	DestCore int
	Vector   uint8
}

// Spec declares a full testbed: hardware, host carve-out, Covirt, guests.
// The zero value plus one Guest is a working single-enclave node on the
// paper's dual-socket platform.
type Spec struct {
	// Machine overrides the simulated hardware (zero = hw.DefaultSpec()).
	Machine hw.MachineSpec
	// OfflineCores lists the host cores to offline for enclave use. Nil
	// derives it from Guests: each guest's cores are taken round-robin
	// from its Nodes, always leaving the first core of every node to the
	// host. Set it explicitly to keep spare capacity (hot-add headroom).
	OfflineCores []int
	// OfflineMem is the per-node memory (bytes) to offline. Nil derives
	// it from the Guests' MemBytes split across their Nodes.
	OfflineMem map[int]uint64
	// Covirt attaches the controller with Features as the default
	// per-enclave feature set.
	Covirt   bool
	Features covirt.Features
	// Guests are created and booted in order by Build. May be empty: an
	// operator shell builds a bare node and boots enclaves later.
	Guests []Guest
}

// Node is a built testbed: the simulated machine, the host stack, the
// optional controller, and one entry per booted guest.
type Node struct {
	M    *hw.Machine
	Host *linuxhost.Host
	Ctrl *covirt.Controller
	Encs []*Enclave
}

// Enclave pairs a booted guest with its Pisces enclave and kernel. Exactly
// one of Kitten/Nautilus is non-nil, matching the guest's Kind.
type Enclave struct {
	Guest    Guest
	Enc      *pisces.Enclave
	Kitten   *kitten.Kernel
	Nautilus *nautilus.Kernel
}

// Build assembles and boots the stack described by the spec.
func (s Spec) Build() (*Node, error) {
	ms := s.Machine
	if ms.NumNodes == 0 {
		ms = hw.DefaultSpec()
	}
	m, err := hw.NewMachine(ms)
	if err != nil {
		return nil, err
	}
	host, err := linuxhost.New(m)
	if err != nil {
		return nil, err
	}

	offCores := s.OfflineCores
	if offCores == nil {
		if offCores, err = deriveOfflineCores(m, s.Guests); err != nil {
			return nil, err
		}
	}
	if len(offCores) > 0 {
		if err := host.OfflineCores(offCores...); err != nil {
			return nil, err
		}
	}
	offMem := s.OfflineMem
	if offMem == nil {
		offMem = deriveOfflineMem(s.Guests)
	}
	// Deterministic order regardless of map iteration.
	for node := 0; node < len(m.Topo.Nodes); node++ {
		if size := offMem[node]; size > 0 {
			if err := host.OfflineMemory(node, size); err != nil {
				return nil, err
			}
		}
	}

	n := &Node{M: m, Host: host}
	if s.Covirt {
		ctrl, err := covirt.Attach(m, host.Pisces, host.Master, s.Features)
		if err != nil {
			return nil, err
		}
		n.Ctrl = ctrl
	}
	for _, g := range s.Guests {
		if _, err := n.BootGuest(g); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// deriveOfflineCores totals each guest's round-robin demand per node and
// picks that many offline-able cores, keeping the first core of every node
// for the host.
func deriveOfflineCores(m *hw.Machine, guests []Guest) ([]int, error) {
	perNode := make(map[int]int)
	for _, g := range guests {
		if len(g.Nodes) == 0 {
			return nil, fmt.Errorf("testbed: guest %s has no NUMA nodes", g.Name)
		}
		for i := 0; i < g.Cores; i++ {
			perNode[g.Nodes[i%len(g.Nodes)]]++
		}
	}
	var out []int
	for node := 0; node < len(m.Topo.Nodes); node++ {
		want := perNode[node]
		if want == 0 {
			continue
		}
		avail := m.Topo.Nodes[node].Cores[1:]
		if want > len(avail) {
			return nil, fmt.Errorf("testbed: guests want %d cores on node %d, machine has %d offline-able", want, node, len(avail))
		}
		out = append(out, avail[:want]...)
	}
	return out, nil
}

// deriveOfflineMem totals each guest's per-node memory split.
func deriveOfflineMem(guests []Guest) map[int]uint64 {
	out := make(map[int]uint64)
	for _, g := range guests {
		if g.MemBytes == 0 || len(g.Nodes) == 0 {
			continue
		}
		per := g.MemBytes / uint64(len(g.Nodes))
		for _, node := range g.Nodes {
			out[node] += per
		}
	}
	return out
}

// BootGuest creates g's enclave on the built node and boots its kernel.
func (n *Node) BootGuest(g Guest) (*Enclave, error) {
	enc, err := n.Host.Pisces.CreateEnclave(pisces.EnclaveSpec{
		Name:      g.Name,
		NumCores:  g.Cores,
		Nodes:     g.Nodes,
		MemBytes:  g.MemBytes,
		Heartbeat: g.Heartbeat,
	})
	if err != nil {
		return nil, err
	}
	return n.BootInto(enc, g)
}

// BootInto boots g's kernel into an already-created enclave — the operator
// workflow where create and boot are separate steps.
func (n *Node) BootInto(enc *pisces.Enclave, g Guest) (*Enclave, error) {
	if g.Features != nil {
		if n.Ctrl == nil {
			return nil, fmt.Errorf("testbed: guest %s sets features but spec has no covirt", g.Name)
		}
		args := covirt.SetFeaturesArgs{EnclaveID: enc.ID, Features: *g.Features}
		if _, err := n.Host.Pisces.Ioctl(covirt.IoctlSetFeatures, args); err != nil {
			return nil, err
		}
	}
	be := &Enclave{Guest: g, Enc: enc}
	switch g.Kind {
	case Kitten:
		k := kitten.New(kitten.Config{TimerInterval: g.TimerInterval})
		if err := n.Host.Pisces.Boot(enc, k); err != nil {
			return nil, err
		}
		be.Kitten = k
	case Nautilus:
		k := nautilus.New(g.Entry)
		if err := n.Host.Pisces.Boot(enc, k); err != nil {
			return nil, err
		}
		be.Nautilus = k
	default:
		return nil, fmt.Errorf("testbed: guest %s has unknown kind %v", g.Name, g.Kind)
	}
	for _, gr := range g.IPIGrants {
		if err := n.Host.Master.GrantIPI(enc, gr.DestCore, gr.Vector); err != nil {
			return nil, err
		}
	}
	if g.OnBoot != nil {
		if err := g.OnBoot(n, be); err != nil {
			return nil, fmt.Errorf("testbed: guest %s on-boot hook: %w", g.Name, err)
		}
	}
	n.Encs = append(n.Encs, be)
	return be, nil
}

// ReplaceGuest reboots a dead guest from its original declaration: a fresh
// enclave is created and the spec's kernel, feature set, IPI grants and
// OnBoot hook are re-established exactly as at first boot. The old entry in
// the node's enclave list is replaced. Supervised recovery uses this as the
// single reboot path, so a restarted stack cannot drift from its spec.
func (n *Node) ReplaceGuest(old *Enclave) (*Enclave, error) {
	be, err := n.BootGuest(old.Guest)
	if err != nil {
		return nil, err
	}
	// BootGuest appended the new entry; drop it and splice it over the old
	// slot so enumeration order keeps matching the spec.
	n.Encs = n.Encs[:len(n.Encs)-1]
	for i, e := range n.Encs {
		if e == old {
			n.Encs[i] = be
			return be, nil
		}
	}
	n.Encs = append(n.Encs, be)
	return be, nil
}

// EnableTracing turns on the node-wide flight recorder: the Covirt
// controller's tracer when the controller is attached (so exits, controller
// commands and bus events interleave in one timeline), else a standalone
// buffer. Hobbes bus events are routed into it either way.
func (n *Node) EnableTracing(capacity int) *trace.Buffer {
	var buf *trace.Buffer
	if n.Ctrl != nil {
		buf = n.Ctrl.EnableTracing(capacity)
	} else {
		buf = trace.New(capacity)
	}
	n.Host.Master.Bus.SetTracer(buf)
	return buf
}

// Enc returns the first guest's Pisces enclave (single-enclave specs).
func (n *Node) Enc() *pisces.Enclave {
	if len(n.Encs) == 0 {
		return nil
	}
	return n.Encs[0].Enc
}

// Kitten returns the first guest's Kitten kernel (single-enclave specs).
func (n *Node) Kitten() *kitten.Kernel {
	if len(n.Encs) == 0 {
		return nil
	}
	return n.Encs[0].Kitten
}

// Nautilus returns the first guest's Nautilus kernel.
func (n *Node) Nautilus() *nautilus.Kernel {
	if len(n.Encs) == 0 {
		return nil
	}
	return n.Encs[0].Nautilus
}

// Close destroys every enclave (newest first). A crashed node is left
// as-is: there is nothing orderly left to tear down.
func (n *Node) Close() {
	if n.M.Crashed() {
		return
	}
	for i := len(n.Encs) - 1; i >= 0; i-- {
		_ = n.Host.Pisces.Destroy(n.Encs[i].Enc)
	}
	n.Encs = nil
}
