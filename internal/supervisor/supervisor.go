// Package supervisor implements node-level enclave supervision and
// automated recovery. A Supervisor attaches to a testbed node's Hobbes
// event bus and watches enclaves for two failure classes:
//
//   - hard crashes — the Pisces framework reports them on the bus
//     (EvEnclaveCrashed), e.g. a Covirt-contained double fault;
//   - soft hangs — the guest stops beating its shared-memory heartbeat
//     page while its boot core keeps consuming (or has stopped consuming
//     after a charged lockup) cycles.
//
// Detection is driven by an explicit watchdog Scan, not wall-clock time:
// each Scan advances a virtual hw.Clock by one scan interval and compares
// the boot core's published TSC against the last heartbeat stamp. Because
// an idle simulated core's TSC is frozen, idle is never mistaken for hung;
// only a core that charged cycles without beating (a spinning or
// interrupt-disabled lockup) accumulates a gap. The whole protocol is a
// pure function of the simulated machine history, so supervised runs stay
// byte-deterministic at any host parallelism.
//
// Reaction is governed by a per-enclave Policy: restarts with
// exponentially backed-off, jittered delays on the virtual clock, a finite
// restart budget, and terminal escalation to quarantine — the enclave's
// cores and memory are withdrawn from the enclave pool and permanently
// returned to the Linux host — once the budget is exhausted. Restarts go
// through testbed.Node.ReplaceGuest, so the rebuilt stack (Covirt
// features, IPI grants, on-boot hooks) is re-established exactly as the
// guest's declaration specifies.
package supervisor

import (
	"fmt"
	"sync"

	"covirt/internal/hobbes"
	"covirt/internal/hw"
	"covirt/internal/pisces"
	"covirt/internal/testbed"
	"covirt/internal/trace"
)

// Policy configures supervision for one enclave.
type Policy struct {
	// MaxRestarts is the restart budget. Failure n (1-based) triggers a
	// restart while n <= MaxRestarts and quarantine once n exceeds it, so
	// a zero budget quarantines on the first failure: the enclave is torn
	// down and reclaimed exactly as without supervision, with its hardware
	// then returned to the host.
	MaxRestarts int
	// BackoffBase is the delay (virtual-clock cycles) before the first
	// restart attempt; attempt n waits BackoffBase << (n-1), capped at
	// BackoffCap. Zero values default to one scan interval and eight scan
	// intervals respectively.
	BackoffBase uint64
	BackoffCap  uint64
	// JitterPct adds up to this percentage of the backed-off delay, drawn
	// from the supervisor's deterministic seed, so co-scheduled enclaves
	// don't restart in lockstep.
	JitterPct int
	// MissedBeats is the hang threshold: the enclave is declared hung once
	// its boot core's TSC runs MissedBeats*BeatInterval cycles past the
	// last heartbeat stamp (default 3).
	MissedBeats int
	// BeatInterval is the guest's expected beat period in cycles (default:
	// the machine timer interval, which is what the co-kernels beat at).
	BeatInterval uint64
}

// State is a supervised enclave's recovery state.
type State int

// Supervision states.
const (
	// Healthy: running, beating (if the guest declares a heartbeat), no
	// failure being handled.
	Healthy State = iota
	// PendingRestart: a failure was detected and a restart is scheduled on
	// the virtual clock.
	PendingRestart
	// Quarantined: the restart budget is exhausted; the enclave's hardware
	// has been returned to the host. Terminal.
	Quarantined
)

// String names the state.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case PendingRestart:
		return "pending-restart"
	case Quarantined:
		return "quarantined"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Status is a point-in-time view of one supervised enclave.
type Status struct {
	Name      string
	EnclaveID int
	State     State
	// Restarts counts completed restarts; Failures counts detected
	// failures (Failures > Restarts while a restart is pending, and
	// Failures = Restarts + 1 after quarantine).
	Restarts int
	Failures int
	// LastReason is the most recent failure cause.
	LastReason string
	// LastBeat is the heartbeat counter at the last scan (0 before the
	// first beat or for guests without a heartbeat).
	LastBeat uint64
	// DetectedAt/RecoveredAt/RestartAt are virtual-clock stamps of the
	// most recent detection, recovery, and scheduled restart deadline.
	DetectedAt  uint64
	RecoveredAt uint64
	RestartAt   uint64
}

// Options configures a Supervisor.
type Options struct {
	// ScanInterval is the virtual time one watchdog pass represents
	// (default: the machine timer interval).
	ScanInterval uint64
	// Seed feeds the deterministic jitter source.
	Seed uint64
	// Tracer, when non-nil, receives sup:* records for every supervision
	// action (detect, restart, recovered, quarantined).
	Tracer *trace.Buffer
	// OnQuarantine, when non-nil, runs after an enclave's hardware has
	// been withdrawn to the host — the escalation point where a fleet
	// controller re-places the lost member on a surviving node. Called
	// without supervisor locks held, from the Scan goroutine.
	OnQuarantine func(guestName string)
}

// watch is the supervisor's per-enclave record.
type watch struct {
	be     *testbed.Enclave
	policy Policy

	state    State
	restarts int
	failures int

	// failed latches a crash report (bus event or observed terminal state)
	// until the next scan turns it into a detection.
	failed     bool
	lastReason string

	// baseTSC anchors the hang check before the first beat: the boot
	// core's TSC when the watch (re-)registered, so pre-boot cycle history
	// on a recycled core is not counted as missed beats.
	baseTSC  uint64
	lastBeat uint64

	detectedAt  uint64
	recoveredAt uint64
	restartAt   uint64
}

// Supervisor watches enclaves on one testbed node. Watch and Scan are the
// control surface; Scan must be driven from a single goroutine (the
// management plane), while crash events may latch concurrently from any
// bus emitter.
type Supervisor struct {
	// Clock is the supervision timeline: advanced one scan interval per
	// Scan, never by wall-clock time.
	Clock hw.Clock

	node         *testbed.Node
	tracer       *trace.Buffer
	io           pisces.NativeMemIO
	scanInterval uint64
	rng          hw.Rand
	onQuarantine func(guestName string)

	mu      sync.Mutex //covirt:guards watches,byEnc
	watches []*watch
	byEnc   map[int]*watch
}

// New attaches a supervisor to the node's Hobbes bus.
func New(n *testbed.Node, opt Options) *Supervisor {
	s := &Supervisor{
		node:         n,
		tracer:       opt.Tracer,
		io:           pisces.NativeMemIO{Mem: n.M.Mem},
		scanInterval: opt.ScanInterval,
		rng:          hw.NewRand(opt.Seed),
		onQuarantine: opt.OnQuarantine,
		byEnc:        make(map[int]*watch),
	}
	if s.scanInterval == 0 {
		s.scanInterval = n.M.Costs.TimerIntervalCycles
	}
	n.Host.Master.Bus.Subscribe(func(ev *hobbes.Event) error {
		if ev.Kind == hobbes.EvEnclaveCrashed && ev.Enclave != nil {
			s.latchCrash(ev.Enclave.ID, ev.Reason)
		}
		return nil
	})
	return s
}

// ScanInterval returns the virtual time one Scan represents.
func (s *Supervisor) ScanInterval() uint64 { return s.scanInterval }

// Watch registers be under p. Zero policy fields take their documented
// defaults.
func (s *Supervisor) Watch(be *testbed.Enclave, p Policy) error {
	if p.MissedBeats == 0 {
		p.MissedBeats = 3
	}
	if p.BeatInterval == 0 {
		p.BeatInterval = s.node.M.Costs.TimerIntervalCycles
	}
	if p.BackoffBase == 0 {
		p.BackoffBase = s.scanInterval
	}
	if p.BackoffCap == 0 {
		p.BackoffCap = 8 * p.BackoffBase
	}
	w := &watch{
		be:      be,
		policy:  p,
		baseTSC: be.Enc.BootCPU().TSCSnapshot(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byEnc[be.Enc.ID] != nil {
		return fmt.Errorf("supervisor: enclave %d already watched", be.Enc.ID)
	}
	s.watches = append(s.watches, w)
	s.byEnc[be.Enc.ID] = w
	return nil
}

// latchCrash records a bus-reported crash for the next scan to handle.
func (s *Supervisor) latchCrash(encID int, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.byEnc[encID]
	if w == nil || w.state != Healthy || w.failed {
		return
	}
	w.failed = true
	w.lastReason = reason
}

// Scan runs one watchdog pass: advance the virtual clock one scan
// interval, turn hang verdicts into crash reports, convert latched
// failures into scheduled restarts (or quarantine once the budget is
// exhausted), and execute restarts whose backoff deadline has passed.
func (s *Supervisor) Scan() error {
	now := s.Clock.Advance(s.scanInterval)

	// Pass 1: hang detection. The verdict is read-only; the reaction
	// (ReportCrash) re-enters the bus and must run without the lock.
	for _, w := range s.hungWatches() {
		enc := w.be.Enc
		reason := fmt.Sprintf("supervisor: %d missed heartbeats", w.policy.MissedBeats)
		s.record(now, "sup:hang", "enclave %d %s: %s", enc.ID, w.be.Guest.Name, reason)
		if err := s.node.Host.Master.Bus.Emit(&hobbes.Event{
			Kind: hobbes.EvEnclaveHung, Enclave: enc, Reason: reason,
		}); err != nil {
			return err
		}
		// The crash report tears the enclave down and echoes back through
		// the bus, latching w.failed for pass 2.
		s.node.Host.Pisces.ReportCrash(enc, reason)
	}

	// Pass 2: schedule reactions for latched failures.
	quarantines := s.scheduleFailures(now)
	for _, w := range quarantines {
		if err := s.quarantine(w, now); err != nil {
			return err
		}
	}

	// Pass 3: execute restarts that have reached their deadline.
	for _, w := range s.dueRestarts(now) {
		if err := s.restart(w, now); err != nil {
			return err
		}
	}
	return nil
}

// hungWatches returns the healthy, heartbeat-enabled watches whose boot
// core has outrun the last beat by the policy threshold. Crash latching
// for enclaves observed in a terminal state happens here too, covering
// crashes that raced a restart or predate registration.
func (s *Supervisor) hungWatches() []*watch {
	s.mu.Lock()
	defer s.mu.Unlock()
	var hung []*watch
	for _, w := range s.watches {
		if w.state != Healthy || w.failed {
			continue
		}
		enc := w.be.Enc
		switch enc.State() {
		case pisces.StateCrashed, pisces.StateStopped:
			// Terminal without a latched bus event (e.g. crashed while the
			// watch was being re-registered): latch it now.
			w.failed = true
			w.lastReason = enc.CrashReason()
			continue
		case pisces.StateRunning:
		default:
			continue
		}
		if !w.be.Guest.Heartbeat {
			continue
		}
		hb := enc.Base() + pisces.OffHeartbeat
		count, err := s.io.Read64(hb + pisces.HbCount)
		if err != nil {
			continue
		}
		beatTSC, err := s.io.Read64(hb + pisces.HbTSC)
		if err != nil {
			continue
		}
		w.lastBeat = count
		ref := beatTSC
		if count == 0 {
			ref = w.baseTSC
		}
		tsc := enc.BootCPU().TSCSnapshot()
		if tsc > ref && tsc-ref >= uint64(w.policy.MissedBeats)*w.policy.BeatInterval {
			hung = append(hung, w)
		}
	}
	return hung
}

// scheduleFailures turns latched failures into pending restarts, drawing
// jitter in registration order so the stream of random values is a pure
// function of the scan sequence. Watches whose budget is exhausted are
// returned for quarantine (executed outside the lock).
func (s *Supervisor) scheduleFailures(now uint64) []*watch {
	s.mu.Lock()
	defer s.mu.Unlock()
	var quarantines []*watch
	for _, w := range s.watches {
		if !w.failed || w.state != Healthy {
			continue
		}
		w.failed = false
		w.failures++
		w.detectedAt = now
		s.record(now, "sup:detect", "enclave %d %s failure %d: %s",
			w.be.Enc.ID, w.be.Guest.Name, w.failures, w.lastReason)
		if w.failures > w.policy.MaxRestarts {
			quarantines = append(quarantines, w)
			continue
		}
		delay := w.policy.BackoffBase << (w.failures - 1)
		if delay > w.policy.BackoffCap || delay < w.policy.BackoffBase {
			delay = w.policy.BackoffCap
		}
		if jit := delay * uint64(w.policy.JitterPct) / 100; jit > 0 {
			delay += s.rng.Uint64n(jit + 1)
		}
		w.state = PendingRestart
		w.restartAt = now + delay
	}
	return quarantines
}

// dueRestarts returns pending watches whose backoff deadline has passed.
func (s *Supervisor) dueRestarts(now uint64) []*watch {
	s.mu.Lock()
	defer s.mu.Unlock()
	var due []*watch
	for _, w := range s.watches {
		if w.state == PendingRestart && now >= w.restartAt {
			due = append(due, w)
		}
	}
	return due
}

// restart reboots w's guest from its declaration. It waits for the dead
// enclave's resources to finish reclaiming — the restart reallocates from
// the same pool — then replaces the testbed entry and rebinds the watch to
// the new enclave.
func (s *Supervisor) restart(w *watch, now uint64) error {
	old := w.be
	attempt := w.restarts + 1
	s.record(now, "sup:restart", "enclave %d %s attempt %d", old.Enc.ID, old.Guest.Name, attempt)
	if err := s.node.Host.Master.Bus.Emit(&hobbes.Event{
		Kind: hobbes.EvEnclaveRestarting, Enclave: old.Enc,
		Reason: fmt.Sprintf("attempt %d", attempt),
	}); err != nil {
		return err
	}
	<-old.Enc.Reclaimed()
	be, err := s.node.ReplaceGuest(old)
	if err != nil {
		return fmt.Errorf("supervisor: restart %s: %w", old.Guest.Name, err)
	}

	s.rebind(w, old.Enc.ID, be, now)
	s.record(now, "sup:recovered", "enclave %d %s restarts=%d", be.Enc.ID, be.Guest.Name, attempt)
	return s.node.Host.Master.Bus.Emit(&hobbes.Event{
		Kind: hobbes.EvEnclaveRecovered, Enclave: be.Enc,
		Reason: fmt.Sprintf("restart %d", attempt),
	})
}

// rebind points w at the freshly booted enclave and marks it healthy.
func (s *Supervisor) rebind(w *watch, oldID int, be *testbed.Enclave, now uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byEnc, oldID)
	s.byEnc[be.Enc.ID] = w
	w.be = be
	w.baseTSC = be.Enc.BootCPU().TSCSnapshot()
	w.lastBeat = 0
	w.state = Healthy
	w.restarts++
	w.recoveredAt = now
}

// quarantine escalates: wait for reclaim, then withdraw the enclave's
// exact cores and extents from the enclave pool back to the host.
func (s *Supervisor) quarantine(w *watch, now uint64) error {
	enc := w.be.Enc
	<-enc.Reclaimed()
	cores := append([]int(nil), enc.Cores...)
	mem := enc.Mem()
	if err := s.node.Host.QuarantineResources(cores, mem); err != nil {
		return err
	}
	s.setQuarantined(w)
	s.record(now, "sup:quarantined", "enclave %d %s after %d failures: %s",
		enc.ID, w.be.Guest.Name, w.failures, w.lastReason)
	if err := s.node.Host.Master.Bus.Emit(&hobbes.Event{
		Kind: hobbes.EvEnclaveQuarantined, Enclave: enc, Reason: w.lastReason,
	}); err != nil {
		return err
	}
	if s.onQuarantine != nil {
		s.onQuarantine(w.be.Guest.Name)
	}
	return nil
}

// setQuarantined marks w terminal under the lock.
func (s *Supervisor) setQuarantined(w *watch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.state = Quarantined
}

// Settle scans until a pass finds every watch either healthy with no
// latched failure, or quarantined — i.e. all in-flight recovery has
// completed — and returns the number of scans used. It gives up (with the
// scan count) after maxScans. Note that a hang which has not yet crossed
// its detection threshold does not hold Settle open.
func (s *Supervisor) Settle(maxScans int) (int, error) {
	for i := 1; i <= maxScans; i++ {
		if err := s.Scan(); err != nil {
			return i, err
		}
		if s.settled() {
			return i, nil
		}
	}
	return maxScans, fmt.Errorf("supervisor: not settled after %d scans", maxScans)
}

// settled reports whether no watch has recovery work outstanding.
func (s *Supervisor) settled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.watches {
		if w.failed || w.state == PendingRestart {
			return false
		}
	}
	return true
}

// Status returns the supervision status of the guest registered under
// name.
func (s *Supervisor) Status(name string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.watches {
		if w.be.Guest.Name == name {
			return w.status(), true
		}
	}
	return Status{}, false
}

// Statuses returns every watch's status in registration order.
func (s *Supervisor) Statuses() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.watches))
	for _, w := range s.watches {
		out = append(out, w.status())
	}
	return out
}

// status builds the external view. Caller holds s.mu.
func (w *watch) status() Status {
	return Status{
		Name:        w.be.Guest.Name,
		EnclaveID:   w.be.Enc.ID,
		State:       w.state,
		Restarts:    w.restarts,
		Failures:    w.failures,
		LastReason:  w.lastReason,
		LastBeat:    w.lastBeat,
		DetectedAt:  w.detectedAt,
		RecoveredAt: w.recoveredAt,
		RestartAt:   w.restartAt,
	}
}

// record stamps a supervision event on the virtual clock.
func (s *Supervisor) record(now uint64, kind, format string, args ...any) {
	s.tracer.Record(-1, now, kind, format, args...)
}
