package supervisor

import (
	"runtime"
	"sync/atomic"
	"testing"

	"covirt/internal/covirt"
	"covirt/internal/kitten"
	"covirt/internal/nautilus"
	"covirt/internal/pisces"
	"covirt/internal/testbed"
)

// buildKitten boots a supervised two-core Kitten guest with full Covirt
// protection (double faults must be contained, not crash the machine).
func buildKitten(t *testing.T, g testbed.Guest) *testbed.Node {
	t.Helper()
	g.Kind = testbed.Kitten
	if g.Cores == 0 {
		g.Cores = 2
	}
	if g.Nodes == nil {
		g.Nodes = []int{0}
	}
	if g.MemBytes == 0 {
		g.MemBytes = 256 << 20
	}
	g.Heartbeat = true
	tb, err := testbed.Spec{
		Covirt:   true,
		Features: covirt.FeaturesAll,
		Guests:   []testbed.Guest{g},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	return tb
}

// crash injects a contained double fault and waits for teardown to begin.
func crash(t *testing.T, tb *testbed.Node) {
	t.Helper()
	be := tb.Encs[0]
	if _, err := be.Kitten.Spawn("crash", 0, func(e *kitten.Env) error {
		return e.CPU.RaiseDoubleFault("injected")
	}); err != nil {
		t.Fatal(err)
	}
	<-be.Enc.Done()
}

// scanUntil drives the watchdog until cond holds, with a generous bound.
func scanUntil(t *testing.T, sup *Supervisor, name string, cond func(Status) bool) Status {
	t.Helper()
	for i := 0; i < 256; i++ {
		if err := sup.Scan(); err != nil {
			t.Fatalf("scan %d: %v", i, err)
		}
		if st, ok := sup.Status(name); ok && cond(st) {
			return st
		}
		runtime.Gosched()
	}
	st, _ := sup.Status(name)
	t.Fatalf("condition not reached after 256 scans; status %+v", st)
	return Status{}
}

// TestCrashRestartLoop is the headline recovery path: a guest crashes mid
// workload, the supervisor restarts it from its declaration, and the
// workload reruns to completion on the replacement — with IPI grants and
// the OnBoot hook re-established.
func TestCrashRestartLoop(t *testing.T) {
	var boots atomic.Int32
	tb := buildKitten(t, testbed.Guest{
		Name:      "victim",
		IPIGrants: []testbed.IPIGrant{{DestCore: 0, Vector: 0xC0}},
		OnBoot: func(n *testbed.Node, e *testbed.Enclave) error {
			boots.Add(1)
			return nil
		},
	})
	buf := tb.EnableTracing(1024)
	sup := New(tb, Options{Tracer: buf})
	if err := sup.Watch(tb.Encs[0], Policy{MaxRestarts: 2}); err != nil {
		t.Fatal(err)
	}
	oldID := tb.Encs[0].Enc.ID

	// A workload is provably in flight on the second core when the crash
	// hits; it computes until the teardown kills its CPU.
	started := make(chan struct{})
	work, err := tb.Encs[0].Kitten.Spawn("work", 1, func(e *kitten.Env) error {
		close(started)
		for {
			e.Compute(1_000_000)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	crash(t, tb)
	if work.Wait() == nil {
		t.Error("mid-crash workload reported success")
	}

	st := scanUntil(t, sup, "victim", func(st Status) bool {
		return st.State == Healthy && st.Restarts == 1
	})
	if st.Failures != 1 || st.RecoveredAt <= st.DetectedAt {
		t.Errorf("recovery accounting: %+v", st)
	}
	if boots.Load() != 2 {
		t.Errorf("OnBoot ran %d times, want 2", boots.Load())
	}
	newEnc := tb.Encs[0].Enc
	if newEnc.ID == oldID {
		t.Error("restart reused the dead enclave")
	}
	if st.EnclaveID != newEnc.ID {
		t.Errorf("watch tracks enclave %d, testbed has %d", st.EnclaveID, newEnc.ID)
	}
	if !tb.Host.Master.IPIGranted(newEnc.ID, 0, 0xC0) {
		t.Error("IPI grant not re-established after restart")
	}

	// The workload reruns to completion on the replacement kernel.
	rerun, err := tb.Encs[0].Kitten.Spawn("rerun", 1, func(e *kitten.Env) error {
		e.Compute(1 << 20)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rerun.Wait(); err != nil {
		t.Fatalf("post-recovery workload: %v", err)
	}

	for _, kind := range []string{"sup:detect", "sup:restart", "sup:recovered", "ev:enclave-restarting", "ev:enclave-recovered"} {
		if len(buf.Filter(kind)) == 0 {
			t.Errorf("trace missing %q events", kind)
		}
	}
}

// TestBudgetExhaustionQuarantines runs the budget out: one restart is
// granted, the second failure escalates. The enclave pool must end up
// empty — the dead guest's exact cores and memory moved back to the host —
// so a same-sized enclave can no longer be created.
func TestBudgetExhaustionQuarantines(t *testing.T) {
	tb := buildKitten(t, testbed.Guest{Name: "victim"})
	buf := tb.EnableTracing(1024)
	sup := New(tb, Options{Tracer: buf})
	if err := sup.Watch(tb.Encs[0], Policy{MaxRestarts: 1}); err != nil {
		t.Fatal(err)
	}

	crash(t, tb)
	scanUntil(t, sup, "victim", func(st Status) bool {
		return st.State == Healthy && st.Restarts == 1
	})
	crash(t, tb)
	st := scanUntil(t, sup, "victim", func(st Status) bool {
		return st.State == Quarantined
	})
	if st.Failures != 2 || st.Restarts != 1 {
		t.Errorf("exhaustion accounting: %+v", st)
	}
	if len(buf.Filter("sup:quarantined")) == 0 || len(buf.Filter("ev:enclave-quarantined")) == 0 {
		t.Error("quarantine not traced")
	}

	// The pool is drained: the offlined resources went back to the host.
	_, err := tb.Host.Pisces.CreateEnclave(pisces.EnclaveSpec{
		Name: "replacement", NumCores: 2, Nodes: []int{0}, MemBytes: 256 << 20,
	})
	if err == nil {
		t.Fatal("enclave pool still holds quarantined resources")
	}
	// And the host owns them again: offlining the quarantined cores
	// succeeds only for host-owned cores.
	quarantined := tb.Encs[0].Enc.Cores
	if err := tb.Host.OfflineCores(quarantined...); err != nil {
		t.Errorf("quarantined cores not returned to host: %v", err)
	}
}

// TestZeroBudgetDegradesToTeardown: with no restart budget the first
// failure goes straight to quarantine — the enclave is torn down and
// reclaimed exactly as an unsupervised crash, with no reboot attempted.
func TestZeroBudgetDegradesToTeardown(t *testing.T) {
	tb := buildKitten(t, testbed.Guest{Name: "victim"})
	sup := New(tb, Options{})
	if err := sup.Watch(tb.Encs[0], Policy{MaxRestarts: 0}); err != nil {
		t.Fatal(err)
	}
	crash(t, tb)
	st := scanUntil(t, sup, "victim", func(st Status) bool {
		return st.State == Quarantined
	})
	if st.Restarts != 0 || st.Failures != 1 {
		t.Errorf("zero-budget accounting: %+v", st)
	}
	if tb.Encs[0].Enc.State() != pisces.StateCrashed {
		t.Errorf("enclave state %v, want crashed", tb.Encs[0].Enc.State())
	}
}

// TestNautilusRecurringHang exercises the watchdog across the second
// co-kernel architecture: a Nautilus boot thread locks up with interrupts
// disabled, the heartbeat gap convicts it, and because the replacement
// locks up again the single-restart budget runs out and the enclave is
// quarantined.
func TestNautilusRecurringHang(t *testing.T) {
	gate := make(chan struct{})
	var stall uint64 // set before the gate opens
	var boots atomic.Int32
	entry := func(env *nautilus.Env, rank int) error {
		if rank != 0 {
			return nil
		}
		boots.Add(1)
		<-gate
		return env.CPU.StallNoIRQ(stall)
	}
	tb, err := testbed.Spec{
		Covirt:   true,
		Features: covirt.FeaturesAll,
		Guests: []testbed.Guest{{
			Name: "naut", Kind: testbed.Nautilus, Entry: entry,
			Cores: 2, Nodes: []int{0}, MemBytes: 256 << 20, Heartbeat: true,
		}},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	buf := tb.EnableTracing(1024)
	sup := New(tb, Options{Tracer: buf})
	if err := sup.Watch(tb.Encs[0], Policy{MaxRestarts: 1}); err != nil {
		t.Fatal(err)
	}
	stall = 8 * tb.M.Costs.TimerIntervalCycles
	close(gate) // both incarnations hang as soon as they boot

	st := scanUntil(t, sup, "naut", func(st Status) bool {
		return st.State == Quarantined
	})
	if st.Restarts != 1 || st.Failures != 2 {
		t.Errorf("recurring-hang accounting: %+v", st)
	}
	if boots.Load() != 2 {
		t.Errorf("entry booted %d times, want 2", boots.Load())
	}
	if len(buf.Filter("sup:hang")) == 0 || len(buf.Filter("ev:enclave-hung")) == 0 {
		t.Error("hang verdicts not traced")
	}
}

// TestHeartbeatStress races continuous guest heartbeats and a busy
// neighbour's crash handling against watchdog scans (run under -race in
// CI). A guest doing real work in small charged ops must never be
// convicted: beats keep pace with its TSC.
func TestHeartbeatStress(t *testing.T) {
	tb, err := testbed.Spec{
		Covirt:   true,
		Features: covirt.FeaturesAll,
		Guests: []testbed.Guest{
			{Name: "worker", Kind: testbed.Kitten, Cores: 2, Nodes: []int{0}, MemBytes: 256 << 20, Heartbeat: true},
			{Name: "crasher", Kind: testbed.Kitten, Cores: 1, Nodes: []int{1}, MemBytes: 128 << 20, Heartbeat: true},
		},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	sup := New(tb, Options{})
	for _, be := range tb.Encs {
		if err := sup.Watch(be, Policy{MaxRestarts: 4}); err != nil {
			t.Fatal(err)
		}
	}

	// The worker beats from its boot core while charging many small ops.
	work, err := tb.Encs[0].Kitten.Spawn("busy", 0, func(e *kitten.Env) error {
		for i := 0; i < 2000; i++ {
			e.Compute(1_000_000)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The neighbour crashes while scans are in flight.
	if _, err := tb.Encs[1].Kitten.Spawn("die", 0, func(e *kitten.Env) error {
		return e.CPU.RaiseDoubleFault("stress")
	}); err != nil {
		t.Fatal(err)
	}

	workDone := make(chan error, 1)
	go func() { workDone <- work.Wait() }()
	recovered, finished := false, false
	for i := 0; i < 1<<20 && !(recovered && finished); i++ {
		if err := sup.Scan(); err != nil {
			t.Fatalf("scan %d: %v", i, err)
		}
		if st, ok := sup.Status("crasher"); ok && st.Restarts >= 1 && st.State == Healthy {
			recovered = true
		}
		select {
		case err := <-workDone:
			if err != nil {
				t.Fatalf("worker: %v", err)
			}
			finished = true
		default:
			runtime.Gosched()
		}
	}
	if !recovered || !finished {
		t.Fatalf("stress loop incomplete: recovered=%v finished=%v", recovered, finished)
	}
	if st, _ := sup.Status("worker"); st.Failures != 0 || st.State != Healthy {
		t.Errorf("busy worker falsely convicted: %+v", st)
	}
}

// TestWatchRejectsDuplicates covers the registration guard.
func TestWatchRejectsDuplicates(t *testing.T) {
	tb := buildKitten(t, testbed.Guest{Name: "victim"})
	sup := New(tb, Options{})
	if err := sup.Watch(tb.Encs[0], Policy{}); err != nil {
		t.Fatal(err)
	}
	if err := sup.Watch(tb.Encs[0], Policy{}); err == nil {
		t.Error("duplicate watch accepted")
	}
	if got := len(sup.Statuses()); got != 1 {
		t.Errorf("statuses = %d, want 1", got)
	}
}

// TestJitterIsDeterministicPerSeed: the same seed yields the same restart
// schedule; different seeds may differ but stay within the jitter bound.
func TestJitterIsDeterministicPerSeed(t *testing.T) {
	restartAt := func(seed uint64) uint64 {
		tb := buildKitten(t, testbed.Guest{Name: "victim"})
		sup := New(tb, Options{Seed: seed})
		pol := Policy{MaxRestarts: 1, JitterPct: 50}
		if err := sup.Watch(tb.Encs[0], pol); err != nil {
			t.Fatal(err)
		}
		crash(t, tb)
		st := scanUntil(t, sup, "victim", func(st Status) bool {
			return st.State == PendingRestart
		})
		return st.RestartAt
	}
	a, b := restartAt(7), restartAt(7)
	if a != b {
		t.Errorf("same seed, different schedule: %d != %d", a, b)
	}
	base := uint64(0)
	tbProbe := buildKitten(t, testbed.Guest{Name: "victim"})
	base = New(tbProbe, Options{}).ScanInterval()
	// detect at scan 1 (clock = base), backoff base = one interval, jitter
	// adds at most 50%: restartAt in [2*base, 2.5*base].
	if a < 2*base || a > 2*base+base/2 {
		t.Errorf("restartAt %d outside jitter bounds [%d, %d]", a, 2*base, 2*base+base/2)
	}
}
