package vmx

import "sync"

// MSRBitmap selects which model-specific registers trap on access, like the
// VMX MSR bitmap area. The zero value intercepts nothing.
type MSRBitmap struct {
	mu    sync.RWMutex
	read  map[uint32]bool
	write map[uint32]bool
	all   bool // intercept everything (both directions)
	allWr bool // intercept all writes
}

// NewMSRBitmap returns an empty bitmap (no intercepts).
func NewMSRBitmap() *MSRBitmap {
	return &MSRBitmap{read: make(map[uint32]bool), write: make(map[uint32]bool)}
}

// InterceptAll makes every MSR access trap.
func (b *MSRBitmap) InterceptAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.all = true
}

// InterceptAllWrites makes every WRMSR trap while leaving reads direct —
// Covirt's default MSR-protection posture.
func (b *MSRBitmap) InterceptAllWrites() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.allWr = true
}

// Set marks a single MSR for read and/or write interception.
func (b *MSRBitmap) Set(msr uint32, read, write bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if read {
		b.read[msr] = true
	}
	if write {
		b.write[msr] = true
	}
}

// TrapsRead reports whether RDMSR of msr exits.
func (b *MSRBitmap) TrapsRead(msr uint32) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.all || b.read[msr]
}

// TrapsWrite reports whether WRMSR of msr exits.
func (b *MSRBitmap) TrapsWrite(msr uint32) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.all || b.allWr || b.write[msr]
}

// IOBitmap selects which I/O ports trap, like the VMX I/O bitmap pages.
type IOBitmap struct {
	mu   sync.RWMutex
	bits [65536 / 64]uint64
	all  bool
}

// NewIOBitmap returns an empty bitmap (no intercepts).
func NewIOBitmap() *IOBitmap { return &IOBitmap{} }

// InterceptAll makes every port access trap.
func (b *IOBitmap) InterceptAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.all = true
}

// Set marks one port for interception.
func (b *IOBitmap) Set(port uint16) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bits[port/64] |= 1 << (port % 64)
}

// Clear unmarks one port.
func (b *IOBitmap) Clear(port uint16) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bits[port/64] &^= 1 << (port % 64)
}

// Traps reports whether access to port exits.
func (b *IOBitmap) Traps(port uint16) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.all || b.bits[port/64]&(1<<(port%64)) != 0
}
