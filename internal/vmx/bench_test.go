package vmx

import "testing"

// benchEPT builds an EPT with 512 MiB of 2M-coalesced leaves at a fixed
// base — enough distinct leaves that walk benchmarks rotate through the
// table instead of hammering one entry.
func benchEPT(tb testing.TB) (*EPT, uint64) {
	base := uint64(1) << 31
	ept := NewEPT()
	if err := ept.MapRange(base, 512<<20, PermAll); err != nil {
		tb.Fatal(err)
	}
	return ept, base
}

// BenchmarkEPTWalkHit measures the lock-free walk of mapped addresses —
// the per-TLB-miss cost every guest memory access pays when the
// translation cache misses.
func BenchmarkEPTWalkHit(b *testing.B) {
	ept, base := benchEPT(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := base + uint64(i%256)<<21
		if _, err := ept.Walk(addr, i%4 == 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEPTWalkMiss measures the violation path: a walk that reaches an
// unmapped slot and materializes the fault.
func BenchmarkEPTWalkMiss(b *testing.B) {
	ept, base := benchEPT(b)
	unmapped := base + 1<<30
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ept.Walk(unmapped+uint64(i%256)<<21, false); err == nil {
			b.Fatal("walk of unmapped gpa succeeded")
		}
	}
}

// BenchmarkEPTWalkParallel measures concurrent walkers over one shared EPT
// — the contention profile of a multi-core enclave where every core TLB-
// misses at once. With atomic entry publication this scales linearly; the
// old RWMutex read path serialized on the lock word's cache line.
func BenchmarkEPTWalkParallel(b *testing.B) {
	ept, base := benchEPT(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			addr := base + uint64(i%256)<<21
			if _, err := ept.Walk(addr, false); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
