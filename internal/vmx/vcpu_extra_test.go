package vmx

import (
	"testing"

	"covirt/internal/hw"
)

func TestVCPUMSRReadTrapProvidesValue(t *testing.T) {
	m := vcpuTestMachine(t)
	c := m.CPU(0)
	vmcs := NewVMCS(0)
	bm := NewMSRBitmap()
	bm.Set(hw.MSR_IA32_MISC_ENABLE, true, false) // reads trap
	vmcs.MSRBitmap = bm
	// The handler virtualizes the value (hides a feature bit).
	h := ExitHandlerFunc(func(cc *hw.CPU, info *ExitInfo) ExitAction {
		if info.Reason == ExitMSRRead && info.MSR == hw.MSR_IA32_MISC_ENABLE {
			info.MSRVal = 0x1234
		}
		return ActionResume
	})
	v := Launch(c, vmcs, h)
	got, err := c.RDMSR(hw.MSR_IA32_MISC_ENABLE)
	if err != nil || got != 0x1234 {
		t.Fatalf("RDMSR = %#x, %v", got, err)
	}
	if v.Stats.Count(ExitMSRRead) != 1 {
		t.Error("read did not exit")
	}
	// Killing on a read works too.
	h2 := ExitHandlerFunc(func(cc *hw.CPU, info *ExitInfo) ExitAction {
		cc.Kill()
		return ActionKill
	})
	v.Handler = h2
	if _, err := c.RDMSR(hw.MSR_IA32_MISC_ENABLE); !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("err = %v", err)
	}
}

func TestVCPUMSRWriteDropSuppresses(t *testing.T) {
	m := vcpuTestMachine(t)
	c := m.CPU(0)
	vmcs := NewVMCS(0)
	bm := NewMSRBitmap()
	bm.InterceptAllWrites()
	vmcs.MSRBitmap = bm
	Launch(c, vmcs, ExitHandlerFunc(func(*hw.CPU, *ExitInfo) ExitAction { return ActionDrop }))
	if err := c.WRMSR(hw.MSR_IA32_PAT, 0x7777); err != nil {
		t.Fatal(err)
	}
	if got := c.MSRs.Read(hw.MSR_IA32_PAT); got == 0x7777 {
		t.Error("dropped MSR write landed")
	}
}

func TestVCPUIOReadTrapValue(t *testing.T) {
	m := vcpuTestMachine(t)
	c := m.CPU(0)
	vmcs := NewVMCS(0)
	bm := NewIOBitmap()
	bm.Set(0x60)
	vmcs.IOBitmap = bm
	Launch(c, vmcs, ExitHandlerFunc(func(cc *hw.CPU, info *ExitInfo) ExitAction {
		if info.Reason == ExitIO && !info.IOWrite {
			return ActionDrop // reads of the trapped port float
		}
		return ActionResume
	}))
	v, err := c.IOIn(0x60)
	if err != nil || v != 0xFFFFFFFF {
		t.Fatalf("IOIn = %#x, %v", v, err)
	}
}

func TestVCPUEPTWalkDepthAffectsCost(t *testing.T) {
	// 1G-backed EPT mappings make TLB misses cheaper than 4K-backed ones.
	m := vcpuTestMachine(t)
	base := m.Topo.Nodes[0].MemBase

	costFor := func(cpuID int, maxPage uint64) uint64 {
		c := m.CPU(cpuID)
		ept := NewEPT()
		if maxPage > 0 {
			ept.SetMaxPageSize(maxPage)
		}
		start := hw.AlignUp(base, hw.PageSize2M)
		if err := ept.MapRange(start, 1<<27, PermAll); err != nil {
			t.Fatal(err)
		}
		vmcs := NewVMCS(cpuID)
		vmcs.Controls.EnableEPT = true
		vmcs.EPT = ept
		Launch(c, vmcs, ExitHandlerFunc(func(*hw.CPU, *ExitInfo) ExitAction { return ActionResume }))
		t0 := c.TSC
		if err := c.MemAccess(start+0x1000, false, hw.AccessHot); err != nil {
			t.Fatal(err)
		}
		return c.TSC - t0
	}
	cost2M := costFor(0, 0)             // coalesces to 2M leaves
	cost4K := costFor(1, hw.PageSize4K) // forced 4K leaves
	if cost4K <= cost2M {
		t.Errorf("4K-leaf miss (%d) not costlier than 2M-leaf miss (%d)", cost4K, cost2M)
	}
}

func TestVCPUKilledGuestStaysKilled(t *testing.T) {
	m := vcpuTestMachine(t)
	c := m.CPU(0)
	ept := NewEPT() // empty: everything violates
	vmcs := NewVMCS(0)
	vmcs.Controls.EnableEPT = true
	vmcs.EPT = ept
	v := Launch(c, vmcs, &killHandler{})
	if err := c.MemAccess(0x1000, false, hw.AccessHot); !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("err = %v", err)
	}
	// Every subsequent operation fails fast without new exits.
	before, _ := v.Stats.Total()
	if err := c.Compute(1); !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("err = %v", err)
	}
	after, _ := v.Stats.Total()
	if after != before {
		t.Error("killed guest still causing exits")
	}
}
