package vmx

import (
	"fmt"
	"sync"
	"sync/atomic"

	"covirt/internal/hw"
)

// Perms are EPT access permissions.
type Perms uint8

// Permission bits.
const (
	PermRead Perms = 1 << iota
	PermWrite
	PermExec
	// PermAll grants read, write and execute — Covirt maps all enclave
	// memory with full permissions; violations mean "outside the map".
	PermAll = PermRead | PermWrite | PermExec
)

// page-table geometry (x86-64 4-level)
const (
	eptLevels   = 4
	eptIdxBits  = 9
	eptIdxMask  = (1 << eptIdxBits) - 1
	eptMaxLevel = eptLevels - 1 // index of the root level (L4 == 3)
)

// levelShift returns the address shift of the given level (0 == L1/4K).
func levelShift(level int) uint { return 12 + uint(level)*eptIdxBits }

// levelPageSize returns the leaf page size at a level (L1→4K, L2→2M, L3→1G).
func levelPageSize(level int) uint64 { return 1 << levelShift(level) }

// eptEntry is one slot of an EPT table node: either a pointer to the next
// level or a leaf mapping. Entries are immutable once published — mutation
// replaces the slot's pointer — so lock-free walkers always observe a fully
// constructed entry.
type eptEntry struct {
	next  *eptNode
	leaf  bool
	perms Perms
}

// eptNode is one 512-entry EPT table. Slots publish immutable entries
// atomically (nil = not present): readers walk without taking any lock,
// writers serialize under EPT.mu and store fully built subtrees.
type eptNode struct {
	entries [1 << eptIdxBits]atomic.Pointer[eptEntry]
}

// EPTStats summarizes an EPT's current mappings.
type EPTStats struct {
	Mapped4K uint64 // number of 4K leaf mappings
	Mapped2M uint64
	Mapped1G uint64
	Bytes    uint64 // total mapped bytes
}

// Pages returns the total number of leaf mappings.
func (s EPTStats) Pages() uint64 { return s.Mapped4K + s.Mapped2M + s.Mapped1G }

// EPT is a simulated nested page table. Mappings are identity (guest
// physical == host physical), matching Covirt's zero-abstraction design; the
// structure exists to *bound* what the guest may touch, not to remap it.
//
// EPT is safe for concurrent use: the controller module mutates it while
// guest CPUs walk it. The walk side is lock-free (atomic entry publication);
// mutations are serialized under mu and bump the generation counter *after*
// the edit, so a translation cached under generation g is guaranteed to
// reflect a fully applied layout once Gen() returns g. TLB shootdown is the
// hypervisor's job (see covirt's command queue).
type EPT struct {
	mu      sync.Mutex
	root    *eptNode
	stats   EPTStats
	gen     atomic.Uint64
	// maxPage caps leaf mapping sizes (0 = coalesce freely up to 1G);
	// used by the large-page ablation.
	maxPage uint64
	// walkCount counts completed full walks (diagnostics). Translation-
	// cache hits intentionally do not count: the cache exists to absorb
	// walks, and the counter measures the walks that actually happened.
	walkCount atomic.Uint64
}

// NewEPT returns an empty nested page table (nothing mapped: every access
// violates).
func NewEPT() *EPT { return &EPT{root: &eptNode{}} }

// SetMaxPageSize caps the leaf page size used by MapRange (pass
// hw.PageSize4K to disable coalescing entirely). Must be called before any
// mapping exists.
func (e *EPT) SetMaxPageSize(ps uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.maxPage = ps
}

// Gen returns the mutation generation; it increments on every Map/Unmap.
func (e *EPT) Gen() uint64 { return e.gen.Load() }

// Stats returns current mapping statistics.
func (e *EPT) Stats() EPTStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// idx extracts the table index of gpa at level.
func idx(gpa uint64, level int) int {
	return int((gpa >> levelShift(level)) & eptIdxMask)
}

// MapRange identity-maps [gpa, gpa+size) with the given permissions,
// coalescing into 2M and 1G leaf mappings wherever alignment and length
// allow — the optimization the paper calls out ("contiguous memory pages
// are coalesced into large (2MB) and giant (1GB) EPT page mappings").
// gpa and size must be 4K-aligned. Mapping over an existing mapping is an
// error (the controller tracks ownership; double-maps indicate a bug).
func (e *EPT) MapRange(gpa, size uint64, perms Perms) error {
	if gpa%hw.PageSize4K != 0 || size%hw.PageSize4K != 0 {
		return fmt.Errorf("vmx: unaligned map [%#x,+%#x)", gpa, size)
	}
	if size == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	end := gpa + size
	for cur := gpa; cur < end; {
		ps := bestPageSize(cur, end-cur)
		if e.maxPage > 0 && ps > e.maxPage {
			ps = e.maxPage
		}
		if err := e.mapOne(cur, ps, perms); err != nil {
			return err
		}
		cur += ps
	}
	e.gen.Add(1)
	return nil
}

// bestPageSize picks the largest page size usable at cur given remaining
// length.
func bestPageSize(cur, remaining uint64) uint64 {
	if cur%hw.PageSize1G == 0 && remaining >= hw.PageSize1G {
		return hw.PageSize1G
	}
	if cur%hw.PageSize2M == 0 && remaining >= hw.PageSize2M {
		return hw.PageSize2M
	}
	return hw.PageSize4K
}

// mapOne installs a single leaf of the given page size. Caller holds e.mu.
func (e *EPT) mapOne(gpa, pageSize uint64, perms Perms) error {
	leafLevel := 0
	switch pageSize {
	case hw.PageSize1G:
		leafLevel = 2
	case hw.PageSize2M:
		leafLevel = 1
	}
	n := e.root
	for level := eptMaxLevel; level > leafLevel; level-- {
		slot := &n.entries[idx(gpa, level)]
		ent := slot.Load()
		if ent != nil && ent.leaf {
			return fmt.Errorf("vmx: map %#x/%d overlaps existing %d-byte leaf", gpa, pageSize, levelPageSize(level))
		}
		if ent == nil {
			ent = &eptEntry{next: &eptNode{}}
			slot.Store(ent)
		}
		n = ent.next
	}
	slot := &n.entries[idx(gpa, leafLevel)]
	if slot.Load() != nil {
		return fmt.Errorf("vmx: map %#x/%d overlaps existing mapping", gpa, pageSize)
	}
	slot.Store(&eptEntry{leaf: true, perms: perms})
	switch pageSize {
	case hw.PageSize1G:
		e.stats.Mapped1G++
	case hw.PageSize2M:
		e.stats.Mapped2M++
	default:
		e.stats.Mapped4K++
	}
	e.stats.Bytes += pageSize
	return nil
}

// UnmapRange removes all mappings overlapping [gpa, gpa+size), splitting
// large leaves when the range covers them only partially. gpa and size must
// be 4K-aligned. Unmapping never-mapped space is a no-op, mirroring INVEPT
// semantics (the controller may conservatively unmap supersets).
func (e *EPT) UnmapRange(gpa, size uint64) error {
	if gpa%hw.PageSize4K != 0 || size%hw.PageSize4K != 0 {
		return fmt.Errorf("vmx: unaligned unmap [%#x,+%#x)", gpa, size)
	}
	if size == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.unmapNode(e.root, eptMaxLevel, 0, gpa, gpa+size)
	e.gen.Add(1)
	return nil
}

// unmapNode walks node n (covering [base, base+span) at level) removing
// leaves overlapping [lo, hi). Caller holds e.mu.
func (e *EPT) unmapNode(n *eptNode, level int, base, lo, hi uint64) {
	span := levelPageSize(level)
	for i := 0; i < 1<<eptIdxBits; i++ {
		entBase := base + uint64(i)*span
		if entBase >= hi || entBase+span <= lo {
			continue
		}
		slot := &n.entries[i]
		ent := slot.Load()
		switch {
		case ent == nil:
		case ent.leaf:
			if entBase >= lo && entBase+span <= hi {
				// Fully covered: drop the leaf.
				e.accountUnmap(span)
				slot.Store(nil)
			} else {
				// Partially covered large leaf: split one level down and
				// recurse. 4K leaves are always fully covered (alignment).
				child := e.splitLeaf(slot, ent, level)
				e.unmapNode(child, level-1, entBase, lo, hi)
			}
		default:
			e.unmapNode(ent.next, level-1, entBase, lo, hi)
			if nodeEmpty(ent.next) {
				slot.Store(nil)
			}
		}
	}
}

// splitLeaf replaces a large leaf with a table of next-size-down leaves,
// preserving permissions. The child is fully built — all 512 slots share
// one immutable leaf entry — before being published, so concurrent walkers
// see either the old large leaf or the complete split, never a partial
// table. Caller holds e.mu.
func (e *EPT) splitLeaf(slot *atomic.Pointer[eptEntry], old *eptEntry, level int) *eptNode {
	child := &eptNode{}
	childSpan := levelPageSize(level - 1)
	shared := &eptEntry{leaf: true, perms: old.perms}
	for i := range child.entries {
		child.entries[i].Store(shared)
	}
	// Accounting: one large page becomes 512 smaller ones.
	e.accountUnmap(levelPageSize(level))
	for i := 0; i < 1<<eptIdxBits; i++ {
		e.accountMap(childSpan)
	}
	slot.Store(&eptEntry{next: child})
	return child
}

func (e *EPT) accountMap(span uint64) {
	switch span {
	case hw.PageSize1G:
		e.stats.Mapped1G++
	case hw.PageSize2M:
		e.stats.Mapped2M++
	default:
		e.stats.Mapped4K++
	}
	e.stats.Bytes += span
}

func (e *EPT) accountUnmap(span uint64) {
	switch span {
	case hw.PageSize1G:
		e.stats.Mapped1G--
	case hw.PageSize2M:
		e.stats.Mapped2M--
	default:
		e.stats.Mapped4K--
	}
	e.stats.Bytes -= span
}

// nodeEmpty reports whether a node has no live entries.
func nodeEmpty(n *eptNode) bool {
	for i := range n.entries {
		if n.entries[i].Load() != nil {
			return false
		}
	}
	return true
}

// WalkResult reports the outcome of an EPT walk.
type WalkResult struct {
	PageSize uint64 // leaf page size backing the translation
	Levels   int    // table levels touched during the walk
	Perms    Perms  // leaf permissions (valid on success)
}

// Walk translates gpa, returning the leaf page size and walk depth. A miss
// or permission failure returns an hw.Fault of kind FaultEPTViolation.
// Identity mapping means the output address always equals gpa on success.
// Walk is lock-free: it reads atomically published immutable entries, so
// concurrent guest CPUs never contend with each other or block behind a
// controller mutation.
func (e *EPT) Walk(gpa uint64, write bool) (WalkResult, error) {
	e.walkCount.Add(1)
	n := e.root
	levels := 0
	for level := eptMaxLevel; level >= 0; level-- {
		levels++
		ent := n.entries[idx(gpa, level)].Load()
		if ent == nil {
			return WalkResult{Levels: levels}, &hw.Fault{Kind: hw.FaultEPTViolation, Addr: gpa, Write: write}
		}
		if ent.leaf {
			need := PermRead
			if write {
				need = PermWrite
			}
			if ent.perms&need == 0 {
				return WalkResult{Levels: levels}, &hw.Fault{Kind: hw.FaultEPTViolation, Addr: gpa, Write: write}
			}
			return WalkResult{PageSize: levelPageSize(level), Levels: levels, Perms: ent.perms}, nil
		}
		n = ent.next
	}
	// Unreachable: level 0 entries are always leaves or empty.
	return WalkResult{Levels: levels}, &hw.Fault{Kind: hw.FaultEPTViolation, Addr: gpa, Write: write}
}

// Mapped reports whether gpa is currently readable, without touching
// counters (controller-side queries).
func (e *EPT) Mapped(gpa uint64) bool {
	_, err := e.Walk(gpa, false)
	return err == nil
}

// WalkCount returns the number of walks performed (diagnostics).
func (e *EPT) WalkCount() uint64 { return e.walkCount.Load() }
