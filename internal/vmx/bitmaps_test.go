package vmx

import (
	"testing"
	"testing/quick"
)

func TestMSRBitmapDefaults(t *testing.T) {
	b := NewMSRBitmap()
	if b.TrapsRead(0x1B) || b.TrapsWrite(0x1B) {
		t.Error("fresh bitmap traps")
	}
}

func TestMSRBitmapSelective(t *testing.T) {
	b := NewMSRBitmap()
	b.Set(0x1B, true, false)
	b.Set(0x3A, false, true)
	if !b.TrapsRead(0x1B) || b.TrapsWrite(0x1B) {
		t.Error("read-only intercept wrong")
	}
	if b.TrapsRead(0x3A) || !b.TrapsWrite(0x3A) {
		t.Error("write-only intercept wrong")
	}
	if b.TrapsRead(0x999) || b.TrapsWrite(0x999) {
		t.Error("unrelated MSR trapped")
	}
}

func TestMSRBitmapAllWrites(t *testing.T) {
	b := NewMSRBitmap()
	b.InterceptAllWrites()
	if !b.TrapsWrite(0x1234) {
		t.Error("all-writes not trapping")
	}
	if b.TrapsRead(0x1234) {
		t.Error("all-writes trapped a read")
	}
	b2 := NewMSRBitmap()
	b2.InterceptAll()
	if !b2.TrapsRead(0x1) || !b2.TrapsWrite(0x1) {
		t.Error("intercept-all incomplete")
	}
}

func TestIOBitmapSetClear(t *testing.T) {
	b := NewIOBitmap()
	if b.Traps(0x3F8) {
		t.Error("fresh bitmap traps")
	}
	b.Set(0x3F8)
	if !b.Traps(0x3F8) || b.Traps(0x3F9) {
		t.Error("single-port intercept wrong")
	}
	b.Clear(0x3F8)
	if b.Traps(0x3F8) {
		t.Error("clear failed")
	}
	b.InterceptAll()
	if !b.Traps(0) || !b.Traps(0xFFFF) {
		t.Error("intercept-all incomplete")
	}
}

// Property: IOBitmap traps exactly the set ports (edge ports included).
func TestIOBitmapProperty(t *testing.T) {
	f := func(ports []uint16) bool {
		b := NewIOBitmap()
		set := map[uint16]bool{}
		for _, p := range ports {
			b.Set(p)
			set[p] = true
		}
		for _, p := range ports {
			if !b.Traps(p) {
				return false
			}
		}
		// Probe boundaries and a few non-members.
		for _, p := range []uint16{0, 1, 63, 64, 0xFFFF} {
			if b.Traps(p) != set[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVMCSLaunchState(t *testing.T) {
	v := NewVMCS(3)
	if v.Launched() {
		t.Error("fresh VMCS launched")
	}
	v.MarkLaunched()
	if !v.Launched() {
		t.Error("launch not recorded")
	}
	if v.CPUID != 3 {
		t.Error("cpu binding lost")
	}
}

func TestExitReasonStrings(t *testing.T) {
	for r := ExitReason(0); r < numExitReasons; r++ {
		if r.String() == "" {
			t.Errorf("reason %d unnamed", r)
		}
	}
	if ExitReason(99).String() == "" {
		t.Error("unknown reason empty")
	}
}

func TestEPTMaxPageSize(t *testing.T) {
	e := NewEPT()
	e.SetMaxPageSize(1 << 12)
	if err := e.MapRange(0, 1<<21, PermAll); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Mapped2M != 0 || s.Mapped4K != 512 {
		t.Errorf("stats = %+v, want 512x4K", s)
	}
	res, err := e.Walk(0x1000, false)
	if err != nil || res.Levels != 4 {
		t.Errorf("walk = %+v, %v", res, err)
	}
}
