// Package vmx simulates the Intel VMX hardware virtualization extensions
// that Covirt's hypervisor drives: the Virtual Machine Control Structure
// (VMCS), nested page tables (EPT) with 4K/2M/1G mappings and hardware-style
// splitting/coalescing, MSR and I/O port intercept bitmaps, APIC
// virtualization with posted-interrupt (PIV) support, and the VM-exit
// dispatch engine.
//
// A VCPU implements hw.VirtLayer: installing one on a simulated CPU places
// that CPU in VMX non-root operation. Privileged guest operations are then
// either executed directly (when the VMCS does not request an intercept —
// the common, zero-overhead case Covirt relies on) or cause a simulated VM
// exit, charging world-switch cycle costs and invoking the registered
// ExitHandler — the Covirt hypervisor.
//
// The EPT structure is deliberately shared mutable state: Covirt's
// controller module edits it from the management plane while the guest's
// CPU walks it concurrently, exactly as the paper's controller "directly
// modifies the hardware-level data structures associated with the
// co-kernel's virtualization context". A generation counter lets the
// hypervisor detect when local TLBs must be flushed.
package vmx
