package vmx

import "sync/atomic"

// Controls are the execution-control knobs of a VMCS that Covirt's feature
// configuration maps onto. They correspond to pin-based, primary and
// secondary processor-based VM-execution controls.
type Controls struct {
	// EnableEPT turns on nested paging (memory protection).
	EnableEPT bool
	// VirtualAPIC traps guest ICR writes for IPI filtering. Implies that
	// incoming external interrupts cause exits unless PostedInterrupts is
	// also set.
	VirtualAPIC bool
	// PostedInterrupts enables PIV: incoming IPIs are delivered through
	// the posted-interrupt descriptor without a VM exit. External (device)
	// interrupts still exit, per the architecture.
	PostedInterrupts bool
	// InterceptDF makes double faults exit instead of escalating to a
	// machine-resetting triple fault.
	InterceptDF bool
}

// GuestState is the architectural guest register state Covirt pre-loads so
// the co-kernel boots exactly as the Pisces trampoline would have booted it:
// 64-bit long mode, identity page tables, entry point and boot-parameter
// pointer in registers.
type GuestState struct {
	RIP uint64 // co-kernel entry point
	RSP uint64
	CR3 uint64 // identity-mapped page table root
	RSI uint64 // pointer to the (unmodified) Pisces boot parameters
}

// VMCS is a simulated Virtual Machine Control Structure for one CPU core.
// Covirt's controller module writes the VMCS (and the EPT it points to)
// from the management plane; the per-core hypervisor loads it and launches.
type VMCS struct {
	CPUID int // core this VMCS is bound to

	Guest    GuestState
	Controls Controls

	// EPT is the nested page table; nil when EnableEPT is false.
	EPT *EPT
	// MSRBitmap and IOBitmap select trapped MSRs/ports; nil means no traps.
	MSRBitmap *MSRBitmap
	IOBitmap  *IOBitmap
	// PID is the posted-interrupt descriptor used when
	// Controls.PostedInterrupts is set.
	PID *PostedIntDescriptor
	// NotificationVector is the PIV notification vector.
	NotificationVector uint8

	launched atomic.Bool
}

// NewVMCS returns a VMCS for core cpuID with no controls enabled.
func NewVMCS(cpuID int) *VMCS { return &VMCS{CPUID: cpuID} }

// MarkLaunched records the VM-launch; further launches are VM-resume.
func (v *VMCS) MarkLaunched() { v.launched.Store(true) }

// Launched reports whether the guest was launched on this VMCS.
func (v *VMCS) Launched() bool { return v.launched.Load() }

// PostedIntDescriptor simulates the in-memory posted-interrupt descriptor:
// a 256-bit pending-interrupt request bitmap plus the outstanding
// notification bit.
type PostedIntDescriptor struct {
	pir [4]uint64 // atomic access via index math
	on  atomic.Bool
	// PostedCount counts exitless deliveries (diagnostics).
	PostedCount atomic.Uint64
}

// Post sets vector pending and the ON bit, returning true if a notification
// should be sent (ON transitioned 0→1).
func (p *PostedIntDescriptor) Post(vector uint8) bool {
	w := &p.pir[vector/64]
	for {
		old := atomic.LoadUint64(w)
		if atomic.CompareAndSwapUint64(w, old, old|1<<(vector%64)) {
			break
		}
	}
	p.PostedCount.Add(1)
	return p.on.CompareAndSwap(false, true)
}

// Drain atomically clears and returns the pending bitmap, resetting ON.
func (p *PostedIntDescriptor) Drain() [4]uint64 {
	var out [4]uint64
	for i := range p.pir {
		out[i] = atomic.SwapUint64(&p.pir[i], 0)
	}
	p.on.Store(false)
	return out
}

// Pending reports whether any vector is posted.
func (p *PostedIntDescriptor) Pending() bool { return p.on.Load() }
