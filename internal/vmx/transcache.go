package vmx

import "sync/atomic"

// transCacheEntries is the number of translation-cache slots per VCPU. The
// cache is fully associative (a linear scan of a handful of entries) rather
// than direct-mapped because entries cover variable page sizes — with
// Covirt's 2M/1G coalesced leaves there is no single index-bit choice that
// works, and a whole enclave typically fits in a few giant leaves anyway.
const transCacheEntries = 8

// tcEntry caches one successful nested walk: the leaf it resolved to, the
// cycle-relevant walk depth, the leaf permissions, and the EPT generation
// the walk completed under. An entry is valid only while its gen matches
// EPT.Gen() — any Map/Unmap bumps the generation and implicitly drops every
// cached translation, so the cache can never outlive a controller remap.
type tcEntry struct {
	base     uint64 // leaf-aligned guest-physical base
	pageSize uint64 // 0 = slot empty
	levels   int
	perms    Perms
	gen      uint64
}

// transCache is the per-VCPU software analogue of the hardware's
// paging-structure caches: a tiny cache of completed nested walks that lets
// repeated accesses to the same large leaf skip the EPT walk entirely while
// still charging the exact walk-depth cycles the cost model prescribes.
// It is owned by the VCPU's execution goroutine; no locking.
type transCache struct {
	entries [transCacheEntries]tcEntry
	next    int // round-robin victim
}

// lookup returns the cached walk covering gpa if one is valid under gen and
// grants the needed permission. A permission mismatch is a miss (the slow
// path re-walks and raises the violation through the exit path).
func (t *transCache) lookup(gpa uint64, write bool, gen uint64) (tcEntry, bool) {
	need := PermRead
	if write {
		need = PermWrite
	}
	for i := range t.entries {
		e := &t.entries[i]
		if e.pageSize != 0 && e.gen == gen && gpa-e.base < e.pageSize && e.perms&need != 0 {
			return *e, true
		}
	}
	return tcEntry{}, false
}

// insert records a completed walk, evicting round-robin.
func (t *transCache) insert(gpa uint64, res WalkResult, gen uint64) {
	t.entries[t.next] = tcEntry{
		base:     gpa &^ (res.PageSize - 1),
		pageSize: res.PageSize,
		levels:   res.Levels,
		perms:    res.Perms,
		gen:      gen,
	}
	t.next = (t.next + 1) % transCacheEntries
}

// invalidate drops every cached translation.
func (t *transCache) invalidate() {
	*t = transCache{}
}

// transCacheOff force-disables the translation cache process-wide when set.
// The equivalence regression tests flip it to prove cached and uncached
// runs produce byte-identical simulation output.
var transCacheOff atomic.Bool

// SetTransCacheEnabled toggles the per-VCPU translation cache (default on).
// Disabling it forces every TLB miss through a full EPT walk; simulated
// costs are identical either way — only wall-clock speed changes.
func SetTransCacheEnabled(on bool) { transCacheOff.Store(!on) }

// TransCacheEnabled reports whether the translation cache is active.
func TransCacheEnabled() bool { return !transCacheOff.Load() }
