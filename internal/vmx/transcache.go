package vmx

import (
	"sync/atomic"

	"covirt/internal/hw"
)

// The translation cache is split into two direct-mapped tables, indexed at
// the two leaf granularities that matter: small entries (4K/2M leaves) hash
// the gpa's 2M granule, giant entries (1G leaves) hash its 1G granule. A
// single fully-associative array cannot serve both shapes — solver
// working sets touch hundreds of distinct 2M leaves (a handful of slots
// thrashes), while a 1G leaf must keep absorbing walks from every 2M
// granule it covers (a 2M-indexed table would re-walk per granule). Two
// one-probe tables give O(1) lookup and insert for both. Sizes are
// per-VCPU memory, not simulated state: the cache changes no charged
// cycles (see SetTransCacheEnabled), only wall-clock speed.
const (
	tcSmallEntries = 512 // 4K/2M-leaf walks, indexed by 2M granule
	tcGiantEntries = 16  // 1G-leaf walks, indexed by 1G granule
)

// tcEntry caches one successful nested walk: the leaf it resolved to, the
// cycle-relevant walk depth, the leaf permissions, and the EPT generation
// the walk completed under. An entry is valid only while its gen matches
// EPT.Gen() — any Map/Unmap bumps the generation and implicitly drops every
// cached translation, so the cache can never outlive a controller remap.
type tcEntry struct {
	base     uint64 // leaf-aligned guest-physical base
	pageSize uint64 // 0 = slot empty
	levels   int
	perms    Perms
	gen      uint64
}

// transCache is the per-VCPU software analogue of the hardware's
// paging-structure caches: a cache of completed nested walks that lets
// repeated accesses to the same leaf skip the EPT walk entirely while
// still charging the exact walk-depth cycles the cost model prescribes.
// It is owned by the VCPU's execution goroutine; no locking.
type transCache struct {
	small [tcSmallEntries]tcEntry
	giant [tcGiantEntries]tcEntry
}

// tcSmallSlot maps a gpa's 2M granule to its direct-mapped slot.
func tcSmallSlot(gpa uint64) int {
	return int(((gpa >> 21) * 0x9E3779B97F4A7C15) >> 55)
}

// tcGiantSlot maps a gpa's 1G granule to its direct-mapped slot.
func tcGiantSlot(gpa uint64) int {
	return int(((gpa >> 30) * 0x9E3779B97F4A7C15) >> 60)
}

// covers reports whether e is a live entry under gen whose leaf contains
// gpa with the needed permission.
func (e *tcEntry) covers(gpa uint64, need Perms, gen uint64) bool {
	return e.pageSize != 0 && e.gen == gen && gpa-e.base < e.pageSize && e.perms&need != 0
}

// lookup returns the cached walk covering gpa if one is valid under gen and
// grants the needed permission. A permission mismatch is a miss (the slow
// path re-walks and raises the violation through the exit path). The
// returned pointer aliases the slot and is only valid until the next
// insert; callers read it immediately.
func (t *transCache) lookup(gpa uint64, write bool, gen uint64) (*tcEntry, bool) {
	need := PermRead
	if write {
		need = PermWrite
	}
	if e := &t.small[tcSmallSlot(gpa)]; e.covers(gpa, need, gen) {
		return e, true
	}
	if e := &t.giant[tcGiantSlot(gpa)]; e.covers(gpa, need, gen) {
		return e, true
	}
	return nil, false
}

// insert records a completed walk in the table matching its leaf size,
// replacing whatever the slot held.
func (t *transCache) insert(gpa uint64, res WalkResult, gen uint64) {
	e := tcEntry{
		base:     gpa &^ (res.PageSize - 1),
		pageSize: res.PageSize,
		levels:   res.Levels,
		perms:    res.Perms,
		gen:      gen,
	}
	if res.PageSize >= hw.PageSize1G {
		t.giant[tcGiantSlot(gpa)] = e
		return
	}
	t.small[tcSmallSlot(gpa)] = e
}

// invalidate drops every cached translation.
func (t *transCache) invalidate() {
	*t = transCache{}
}

// transCacheOff force-disables the translation cache process-wide when set.
// The equivalence regression tests flip it to prove cached and uncached
// runs produce byte-identical simulation output.
var transCacheOff atomic.Bool

// SetTransCacheEnabled toggles the per-VCPU translation cache (default on).
// Disabling it forces every TLB miss through a full EPT walk; simulated
// costs are identical either way — only wall-clock speed changes.
func SetTransCacheEnabled(on bool) { transCacheOff.Store(!on) }

// TransCacheEnabled reports whether the translation cache is active.
func TransCacheEnabled() bool { return !transCacheOff.Load() }
