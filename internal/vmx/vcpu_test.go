package vmx

import (
	"testing"

	"covirt/internal/hw"
)

func vcpuTestMachine(t *testing.T) *hw.Machine {
	t.Helper()
	spec := hw.DefaultSpec()
	spec.MemPerNode = 1 << 30
	m, err := hw.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// killHandler terminates the enclave CPU on every exit that asks a verdict.
type killHandler struct{ lastInfo ExitInfo }

func (h *killHandler) HandleExit(c *hw.CPU, info *ExitInfo) ExitAction {
	h.lastInfo = *info
	switch info.Reason {
	case ExitEPTViolation, ExitDoubleFault, ExitTripleFault:
		c.Kill()
		return ActionKill
	case ExitICRWrite:
		return ActionDrop
	}
	return ActionResume
}

func TestVCPUNoEPTIsFree(t *testing.T) {
	m := vcpuTestMachine(t)
	c := m.CPU(0)
	vmcs := NewVMCS(0)
	v := Launch(c, vmcs, &killHandler{})
	addr := m.Topo.Nodes[0].MemBase + 0x1000
	if err := c.MemAccess(addr, false, hw.AccessDRAM); err != nil {
		t.Fatal(err)
	}
	if exits, _ := v.Stats.Total(); exits != 0 {
		t.Errorf("exits = %d, want 0 without EPT", exits)
	}
}

func TestVCPUEPTHitAddsNestedWalkCost(t *testing.T) {
	m := vcpuTestMachine(t)
	base := m.Topo.Nodes[0].MemBase

	// Native miss cost baseline.
	cn := m.CPU(0)
	if err := cn.MemAccess(base+0x1000, false, hw.AccessDRAM); err != nil {
		t.Fatal(err)
	}
	nativeMiss := cn.TSC

	// Virtualized with EPT: same access pattern.
	cv := m.CPU(1)
	ept := NewEPT()
	if err := ept.MapRange(base, 1<<28, PermAll); err != nil {
		t.Fatal(err)
	}
	vmcs := NewVMCS(1)
	vmcs.Controls.EnableEPT = true
	vmcs.EPT = ept
	Launch(cv, vmcs, &killHandler{})
	if err := cv.MemAccess(base+0x1000, false, hw.AccessDRAM); err != nil {
		t.Fatal(err)
	}
	eptMiss := cv.TSC
	if eptMiss <= nativeMiss {
		t.Errorf("EPT miss %d not costlier than native miss %d", eptMiss, nativeMiss)
	}
	// Subsequent (TLB hit) accesses cost the same as native hits.
	t0 := cv.TSC
	if err := cv.MemAccess(base+0x1000, false, hw.AccessDRAM); err != nil {
		t.Fatal(err)
	}
	hitCost := cv.TSC - t0
	if hitCost != m.Costs.MemDRAM {
		t.Errorf("EPT TLB-hit cost = %d, want native %d", hitCost, m.Costs.MemDRAM)
	}
}

func TestVCPUEPTViolationKillsEnclaveOnly(t *testing.T) {
	m := vcpuTestMachine(t)
	base := m.Topo.Nodes[0].MemBase
	c := m.CPU(0)
	ept := NewEPT()
	if err := ept.MapRange(base, 1<<24, PermAll); err != nil {
		t.Fatal(err)
	}
	vmcs := NewVMCS(0)
	vmcs.Controls.EnableEPT = true
	vmcs.EPT = ept
	h := &killHandler{}
	v := Launch(c, vmcs, h)

	victim := m.Topo.Nodes[1].MemBase + 0x100 // someone else's memory
	if err := m.Mem.Write64(victim, 0x1111); err != nil {
		t.Fatal(err)
	}
	err := c.Write64G(victim, 0x6666)
	if !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("err = %v, want enclave-killed", err)
	}
	if m.Crashed() {
		t.Fatal("machine crashed; violation should be contained")
	}
	val, err := m.Mem.Read64(victim)
	if err != nil {
		t.Fatal(err)
	}
	if val != 0x1111 {
		t.Fatalf("victim corrupted to %#x despite EPT", val)
	}
	if v.Stats.Count(ExitEPTViolation) != 1 {
		t.Errorf("EPT violation exits = %d", v.Stats.Count(ExitEPTViolation))
	}
	if h.lastInfo.GPA != victim || !h.lastInfo.Write {
		t.Errorf("exit qualification = %+v", h.lastInfo)
	}
	// Other cores still run.
	if err := m.CPU(5).Compute(10); err != nil {
		t.Errorf("bystander core: %v", err)
	}
	// Fault was logged for diagnostics.
	found := false
	for _, f := range m.Faults() {
		if f.Kind == hw.FaultEPTViolation && f.Addr == victim {
			found = true
		}
	}
	if !found {
		t.Error("EPT violation not in machine fault log")
	}
}

func TestVCPUIPIFiltering(t *testing.T) {
	m := vcpuTestMachine(t)
	src, dst := m.CPU(0), m.CPU(6)
	vmcs := NewVMCS(0)
	vmcs.Controls.VirtualAPIC = true
	var allowed bool
	h := ExitHandlerFunc(func(c *hw.CPU, info *ExitInfo) ExitAction {
		if info.Reason != ExitICRWrite {
			return ActionResume
		}
		if allowed {
			return ActionResume
		}
		return ActionDrop
	})
	v := Launch(src, vmcs, h)

	got := 0
	dst.SetIRQHandler(func(_ *hw.CPU, vec uint8, _ bool) { got++ })

	allowed = false
	if err := src.SendIPI(6, 0x42); err != nil {
		t.Fatal(err)
	}
	if err := dst.Compute(1); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("filtered IPI was delivered")
	}

	allowed = true
	if err := src.SendIPI(6, 0x42); err != nil {
		t.Fatal(err)
	}
	if err := dst.Compute(1); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatal("allowed IPI not delivered")
	}
	if v.Stats.Count(ExitICRWrite) != 2 {
		t.Errorf("ICR exits = %d, want 2", v.Stats.Count(ExitICRWrite))
	}
}

func TestVCPUIPINoVAPICNoExit(t *testing.T) {
	m := vcpuTestMachine(t)
	src := m.CPU(0)
	vmcs := NewVMCS(0)
	v := Launch(src, vmcs, &killHandler{})
	if err := src.SendIPI(3, 0x42); err != nil {
		t.Fatal(err)
	}
	if exits, _ := v.Stats.Total(); exits != 0 {
		t.Errorf("exits = %d, want 0 without VAPIC", exits)
	}
}

func TestVCPUMSRBitmap(t *testing.T) {
	m := vcpuTestMachine(t)
	c := m.CPU(0)
	vmcs := NewVMCS(0)
	bm := NewMSRBitmap()
	bm.Set(hw.MSR_IA32_APIC_BASE, false, true) // writes trap
	vmcs.MSRBitmap = bm
	killed := false
	h := ExitHandlerFunc(func(cc *hw.CPU, info *ExitInfo) ExitAction {
		if info.Reason == ExitMSRWrite && info.MSR == hw.MSR_IA32_APIC_BASE {
			killed = true
			cc.Kill()
			return ActionKill
		}
		return ActionResume
	})
	v := Launch(c, vmcs, h)

	// Reads are direct.
	if _, err := c.RDMSR(hw.MSR_IA32_APIC_BASE); err != nil {
		t.Fatal(err)
	}
	if exits, _ := v.Stats.Total(); exits != 0 {
		t.Error("read of write-trapped MSR exited")
	}
	// Untrapped MSR writes are direct.
	if err := c.WRMSR(hw.MSR_IA32_FS_BASE, 0x1000); err != nil {
		t.Fatal(err)
	}
	if exits, _ := v.Stats.Total(); exits != 0 {
		t.Error("untrapped MSR write exited")
	}
	// Trapped write kills.
	err := c.WRMSR(hw.MSR_IA32_APIC_BASE, 0)
	if !hw.IsFault(err, hw.FaultEnclaveKilled) || !killed {
		t.Fatalf("err = %v, killed = %v", err, killed)
	}
}

func TestVCPUIOBitmap(t *testing.T) {
	m := vcpuTestMachine(t)
	c := m.CPU(0)
	sink := &hw.SerialSink{}
	m.Ports.Register(hw.PortSerialCOM1, sink)
	vmcs := NewVMCS(0)
	bm := NewIOBitmap()
	bm.Set(hw.PortReset)
	vmcs.IOBitmap = bm
	h := ExitHandlerFunc(func(cc *hw.CPU, info *ExitInfo) ExitAction {
		if info.Reason == ExitIO && info.Port == hw.PortReset {
			return ActionDrop
		}
		return ActionResume
	})
	v := Launch(c, vmcs, h)

	// Serial port untrapped: direct.
	if err := c.IOOut(hw.PortSerialCOM1, 'x'); err != nil {
		t.Fatal(err)
	}
	if sink.String() != "x" {
		t.Error("direct port write lost")
	}
	if exits, _ := v.Stats.Total(); exits != 0 {
		t.Error("untrapped port exited")
	}
	// Reset port trapped and suppressed.
	if err := c.IOOut(hw.PortReset, 0x6); err != nil {
		t.Fatal(err)
	}
	if v.Stats.Count(ExitIO) != 1 {
		t.Error("trapped port did not exit")
	}
	if m.Crashed() {
		t.Error("reset reached hardware")
	}
}

func TestVCPUInterruptCostModes(t *testing.T) {
	m := vcpuTestMachine(t)
	mkCPU := func(id int, ctl Controls) (*hw.CPU, *VCPU) {
		c := m.CPU(id)
		vmcs := NewVMCS(id)
		vmcs.Controls = ctl
		vmcs.PID = &PostedIntDescriptor{}
		v := Launch(c, vmcs, ExitHandlerFunc(func(*hw.CPU, *ExitInfo) ExitAction { return ActionResume }))
		return c, v
	}
	deliver := func(c *hw.CPU, external bool) uint64 {
		t0 := c.TSC
		c.APIC.Raise(0x50, external)
		if err := c.Compute(1); err != nil {
			t.Fatal(err)
		}
		return c.TSC - t0
	}

	cNone, vNone := mkCPU(0, Controls{})
	cFull, vFull := mkCPU(1, Controls{VirtualAPIC: true})
	cPIV, vPIV := mkCPU(2, Controls{VirtualAPIC: true, PostedInterrupts: true})

	noVAPIC := deliver(cNone, false)
	fullIPI := deliver(cFull, false)
	pivIPI := deliver(cPIV, false)
	pivExt := deliver(cPIV, true)

	if exits, _ := vNone.Stats.Total(); exits != 0 {
		t.Error("no-VAPIC delivery exited")
	}
	if vFull.Stats.Count(ExitExternalInterrupt) != 1 {
		t.Error("full VAPIC IPI did not exit")
	}
	if vPIV.Stats.Count(ExitExternalInterrupt) != 1 {
		t.Error("PIV external interrupt should exit exactly once")
	}
	if fullIPI <= noVAPIC {
		t.Errorf("full VAPIC IPI cost %d <= direct %d", fullIPI, noVAPIC)
	}
	if pivIPI >= fullIPI {
		t.Errorf("PIV IPI cost %d >= full VAPIC %d", pivIPI, fullIPI)
	}
	if pivExt <= pivIPI {
		t.Errorf("PIV external cost %d <= posted IPI cost %d (externals must exit)", pivExt, pivIPI)
	}
	if vPIV.VMCS.PID.PostedCount.Load() != 1 {
		t.Errorf("posted deliveries = %d", vPIV.VMCS.PID.PostedCount.Load())
	}
}

func TestVCPUNMIExits(t *testing.T) {
	m := vcpuTestMachine(t)
	c := m.CPU(0)
	vmcs := NewVMCS(0)
	nmis := 0
	h := ExitHandlerFunc(func(cc *hw.CPU, info *ExitInfo) ExitAction {
		if info.Reason == ExitNMI {
			nmis++
		}
		return ActionResume
	})
	v := Launch(c, vmcs, h)
	c.APIC.RaiseNMI()
	if err := c.Compute(1); err != nil {
		t.Fatal(err)
	}
	if nmis != 1 || v.Stats.Count(ExitNMI) != 1 {
		t.Errorf("nmis = %d, exits = %d", nmis, v.Stats.Count(ExitNMI))
	}
}

func TestVCPUAbortContained(t *testing.T) {
	m := vcpuTestMachine(t)
	c := m.CPU(0)
	vmcs := NewVMCS(0)
	Launch(c, vmcs, &killHandler{})
	err := c.RaiseDoubleFault("guest IDT corrupt")
	if !hw.IsFault(err, hw.FaultEnclaveKilled) {
		t.Fatalf("err = %v, want contained", err)
	}
	if m.Crashed() {
		t.Fatal("abort escalated to node crash despite handler")
	}
}

func TestVCPUAbortNotContainedCrashes(t *testing.T) {
	m := vcpuTestMachine(t)
	c := m.CPU(0)
	vmcs := NewVMCS(0)
	Launch(c, vmcs, ExitHandlerFunc(func(*hw.CPU, *ExitInfo) ExitAction { return ActionResume }))
	err := c.RaiseDoubleFault("guest IDT corrupt")
	if !hw.IsFault(err, hw.FaultMachineCrashed) {
		t.Fatalf("err = %v, want machine crash", err)
	}
	if !m.Crashed() {
		t.Fatal("machine survived unhandled abort")
	}
}

func TestVCPUEmulatedInstructions(t *testing.T) {
	m := vcpuTestMachine(t)
	c := m.CPU(0)
	vmcs := NewVMCS(0)
	v := Launch(c, vmcs, ExitHandlerFunc(func(*hw.CPU, *ExitInfo) ExitAction { return ActionResume }))
	if err := c.CPUID(); err != nil {
		t.Fatal(err)
	}
	if v.Stats.Count(ExitCPUID) != 1 {
		t.Error("cpuid did not exit")
	}
}

func TestVCPUEPTViolationResumeRetries(t *testing.T) {
	// A handler that lazily maps the faulting page and resumes models a
	// hypervisor repairing a mapping; the access should then succeed.
	m := vcpuTestMachine(t)
	base := m.Topo.Nodes[0].MemBase
	c := m.CPU(0)
	ept := NewEPT()
	vmcs := NewVMCS(0)
	vmcs.Controls.EnableEPT = true
	vmcs.EPT = ept
	h := ExitHandlerFunc(func(cc *hw.CPU, info *ExitInfo) ExitAction {
		if info.Reason == ExitEPTViolation {
			_ = ept.MapRange(hw.AlignDown(info.GPA, hw.PageSize4K), hw.PageSize4K, PermAll)
			return ActionResume
		}
		return ActionResume
	})
	Launch(c, vmcs, h)
	if err := c.MemAccess(base+0x1000, true, hw.AccessHot); err != nil {
		t.Fatalf("lazily-mapped access failed: %v", err)
	}
}

func TestPostedIntDescriptor(t *testing.T) {
	p := &PostedIntDescriptor{}
	if p.Pending() {
		t.Fatal("new PID pending")
	}
	if !p.Post(0x41) {
		t.Fatal("first post should request notification")
	}
	if p.Post(0x42) {
		t.Fatal("second post should not re-notify while ON")
	}
	bits := p.Drain()
	if bits[1]&(1<<(0x41-64)) == 0 || bits[1]&(1<<(0x42-64)) == 0 {
		t.Errorf("drained bits = %#x", bits)
	}
	if p.Pending() {
		t.Fatal("pending after drain")
	}
}

func TestExitStats(t *testing.T) {
	var s ExitStats
	s.record(ExitNMI, 100)
	s.record(ExitNMI, 100)
	s.record(ExitIO, 50)
	if s.Count(ExitNMI) != 2 {
		t.Error("count wrong")
	}
	exits, cyc := s.Total()
	if exits != 3 || cyc != 250 {
		t.Errorf("total = %d, %d", exits, cyc)
	}
	snap := s.Snapshot()
	if snap["EXCEPTION_NMI"] != 2 || snap["IO_INSTRUCTION"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
}
