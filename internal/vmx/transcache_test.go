package vmx

import (
	"testing"

	"covirt/internal/hw"
)

// driveAccesses runs a representative guest access mix (TLB-missing random
// touches, streams, guarded reads) on a fresh machine + EPT-backed VCPU and
// returns the CPU for counter inspection.
func driveAccesses(t *testing.T, maxPage uint64) *hw.CPU {
	t.Helper()
	m := vcpuTestMachine(t)
	c := m.CPU(0)
	base := m.Topo.Nodes[0].MemBase
	ept := NewEPT()
	if maxPage != 0 {
		ept.SetMaxPageSize(maxPage)
	}
	if err := ept.MapRange(hw.AlignUp(base, hw.PageSize4K), 512<<20, PermAll); err != nil {
		t.Fatal(err)
	}
	vmcs := NewVMCS(0)
	vmcs.EPT = ept
	Launch(c, vmcs, &killHandler{})

	start := hw.AlignUp(base, hw.PageSize2M)
	rng := hw.NewRand(42)
	for i := 0; i < 20000; i++ {
		off := rng.Next() % (256 << 20)
		if err := c.MemAccess(start+off, i%3 == 0, hw.AccessDRAM); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.MemStream(start, 8<<20, true); err != nil {
		t.Fatal(err)
	}
	if err := c.AccessRun(start, 4096, 4099, false, hw.AccessDRAM); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read64G(start + 0x100); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTransCacheCostEquivalence proves the translation cache changes no
// simulated state: identical TSC, Instret, IRQ and TLB counters with the
// cache force-disabled vs enabled, across page-size configurations.
func TestTransCacheCostEquivalence(t *testing.T) {
	for _, maxPage := range []uint64{0, hw.PageSize4K, hw.PageSize2M} {
		SetTransCacheEnabled(false)
		off := driveAccesses(t, maxPage)
		SetTransCacheEnabled(true)
		on := driveAccesses(t, maxPage)
		if off.TSC != on.TSC {
			t.Errorf("maxPage %d: TSC diverged: off %d on %d", maxPage, off.TSC, on.TSC)
		}
		if off.Instret != on.Instret {
			t.Errorf("maxPage %d: Instret diverged: off %d on %d", maxPage, off.Instret, on.Instret)
		}
		if off.TLB.Stats() != on.TLB.Stats() {
			t.Errorf("maxPage %d: TLB stats diverged: off %+v on %+v", maxPage, off.TLB.Stats(), on.TLB.Stats())
		}
	}
	SetTransCacheEnabled(true)
}

// TestTransCacheAbsorbsWalks checks the cache actually works: with giant
// coalesced leaves, repeated misses over one leaf walk the EPT once.
func TestTransCacheAbsorbsWalks(t *testing.T) {
	m := vcpuTestMachine(t)
	c := m.CPU(0)
	ept := NewEPT()
	// Node 1's memory base sits on a 1G boundary, so this coalesces into a
	// single giant leaf — the case where the paging-structure cache pays:
	// one cached walk covers 512 guest TLB misses.
	start := m.Topo.Nodes[1].MemBase
	if start%hw.PageSize1G != 0 {
		t.Fatalf("node1 base %#x not 1G-aligned", start)
	}
	if err := ept.MapRange(start, 1<<30, PermAll); err != nil {
		t.Fatal(err)
	}
	vmcs := NewVMCS(0)
	vmcs.EPT = ept
	Launch(c, vmcs, &killHandler{})

	rng := hw.NewRand(7)
	for i := 0; i < 5000; i++ {
		if err := c.MemAccess(start+rng.Next()%(512<<20), false, hw.AccessDRAM); err != nil {
			t.Fatal(err)
		}
	}
	// Random touches over 512 MiB of 2M guest pages miss the TLB nearly
	// every time, but all land in one giant leaf: the translation cache
	// must absorb almost every nested walk.
	if walks := ept.WalkCount(); walks > 64 {
		t.Errorf("WalkCount = %d; translation cache should have absorbed almost all walks", walks)
	}
}

// TestTransCacheInvalidatedByGen checks a remap is visible immediately: a
// cached translation must not survive an UnmapRange even without an
// explicit shootdown, because its generation stamp goes stale.
func TestTransCacheInvalidatedByGen(t *testing.T) {
	m := vcpuTestMachine(t)
	c := m.CPU(0)
	base := m.Topo.Nodes[0].MemBase
	ept := NewEPT()
	start := hw.AlignUp(base, hw.PageSize2M)
	if err := ept.MapRange(start, 4<<20, PermAll); err != nil {
		t.Fatal(err)
	}
	vmcs := NewVMCS(0)
	vmcs.EPT = ept
	v := Launch(c, vmcs, &killHandler{})

	if err := c.MemAccess(start, false, hw.AccessDRAM); err != nil {
		t.Fatal(err)
	}
	if err := ept.UnmapRange(start, 4<<20); err != nil {
		t.Fatal(err)
	}
	c.TLB.FlushAll() // hardware TLB shootdown; transcache left to gen check
	err := c.MemAccess(start, false, hw.AccessDRAM)
	if err == nil {
		t.Fatal("access to unmapped gpa succeeded via stale translation cache")
	}
	if f, ok := err.(*hw.Fault); !ok || f.Kind != hw.FaultEnclaveKilled {
		t.Fatalf("unexpected error %v", err)
	}
	v.InvalidateTransCache() // exercise the explicit hook too
}
