package vmx

import (
	"testing"
	"testing/quick"

	"covirt/internal/hw"
)

func TestEPTEmptyViolates(t *testing.T) {
	e := NewEPT()
	if _, err := e.Walk(0x1000, false); !hw.IsFault(err, hw.FaultEPTViolation) {
		t.Fatalf("err = %v, want EPT violation", err)
	}
}

func TestEPTMapWalk(t *testing.T) {
	e := NewEPT()
	if err := e.MapRange(0x10000, 0x4000, PermAll); err != nil {
		t.Fatal(err)
	}
	res, err := e.Walk(0x10000, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.PageSize != hw.PageSize4K {
		t.Errorf("page size = %#x, want 4K", res.PageSize)
	}
	if res.Levels != 4 {
		t.Errorf("levels = %d, want 4", res.Levels)
	}
	if _, err := e.Walk(0x13FFF, false); err != nil {
		t.Errorf("last byte walk: %v", err)
	}
	if _, err := e.Walk(0x14000, false); !hw.IsFault(err, hw.FaultEPTViolation) {
		t.Errorf("walk past end = %v, want violation", err)
	}
	if _, err := e.Walk(0xFFFF, false); !hw.IsFault(err, hw.FaultEPTViolation) {
		t.Errorf("walk before start = %v, want violation", err)
	}
}

func TestEPTPermissions(t *testing.T) {
	e := NewEPT()
	if err := e.MapRange(0x1000, 0x1000, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Walk(0x1000, false); err != nil {
		t.Errorf("read of read-only page: %v", err)
	}
	if _, err := e.Walk(0x1000, true); !hw.IsFault(err, hw.FaultEPTViolation) {
		t.Errorf("write of read-only page = %v, want violation", err)
	}
}

func TestEPTCoalescing(t *testing.T) {
	e := NewEPT()
	// 1 GiB region aligned to 1 GiB: should be a single giant mapping.
	if err := e.MapRange(hw.PageSize1G, hw.PageSize1G, PermAll); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Mapped1G != 1 || s.Mapped2M != 0 || s.Mapped4K != 0 {
		t.Errorf("1G-aligned GiB: stats = %+v, want one 1G page", s)
	}
	res, err := e.Walk(hw.PageSize1G+12345, false)
	if err != nil || res.PageSize != hw.PageSize1G {
		t.Errorf("walk = %+v, %v; want 1G leaf", res, err)
	}
	if res.Levels != 2 {
		t.Errorf("1G walk levels = %d, want 2", res.Levels)
	}

	// A 2M+8K region starting 4K below a 2M boundary: 2 head 4K pages
	// cannot coalesce (misaligned), then one 2M page, no tail.
	e2 := NewEPT()
	start := uint64(hw.PageSize2M*5) - 2*hw.PageSize4K
	if err := e2.MapRange(start, hw.PageSize2M+2*hw.PageSize4K, PermAll); err != nil {
		t.Fatal(err)
	}
	s2 := e2.Stats()
	if s2.Mapped2M != 1 || s2.Mapped4K != 2 {
		t.Errorf("stats = %+v, want 1x2M + 2x4K", s2)
	}
	if res, _ := e2.Walk(hw.PageSize2M*5, false); res.Levels != 3 {
		t.Errorf("2M walk levels = %d, want 3", res.Levels)
	}
}

func TestEPTDoubleMapRejected(t *testing.T) {
	e := NewEPT()
	if err := e.MapRange(0x0, hw.PageSize2M, PermAll); err != nil {
		t.Fatal(err)
	}
	if err := e.MapRange(0x1000, 0x1000, PermAll); err == nil {
		t.Error("overlapping map accepted")
	}
	if err := e.MapRange(0x0, hw.PageSize2M, PermAll); err == nil {
		t.Error("duplicate map accepted")
	}
}

func TestEPTUnalignedRejected(t *testing.T) {
	e := NewEPT()
	if err := e.MapRange(0x100, 0x1000, PermAll); err == nil {
		t.Error("unaligned gpa accepted")
	}
	if err := e.MapRange(0x1000, 0x100, PermAll); err == nil {
		t.Error("unaligned size accepted")
	}
	if err := e.UnmapRange(0x10, 0x1000); err == nil {
		t.Error("unaligned unmap accepted")
	}
}

func TestEPTUnmapExact(t *testing.T) {
	e := NewEPT()
	if err := e.MapRange(0x10000, 0x4000, PermAll); err != nil {
		t.Fatal(err)
	}
	if err := e.UnmapRange(0x11000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Walk(0x11000, false); !hw.IsFault(err, hw.FaultEPTViolation) {
		t.Error("unmapped page still walks")
	}
	for _, ok := range []uint64{0x10000, 0x12000, 0x13000} {
		if _, err := e.Walk(ok, false); err != nil {
			t.Errorf("neighbour %#x unmapped: %v", ok, err)
		}
	}
	if got := e.Stats().Bytes; got != 0x3000 {
		t.Errorf("bytes = %#x, want 0x3000", got)
	}
}

func TestEPTUnmapSplitsLargePage(t *testing.T) {
	e := NewEPT()
	if err := e.MapRange(0, hw.PageSize1G, PermAll); err != nil {
		t.Fatal(err)
	}
	// Punch a 4K hole in the middle of the giant page.
	hole := uint64(hw.PageSize1G / 2)
	if err := e.UnmapRange(hole, hw.PageSize4K); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Walk(hole, false); !hw.IsFault(err, hw.FaultEPTViolation) {
		t.Error("hole still mapped")
	}
	if _, err := e.Walk(hole-hw.PageSize4K, false); err != nil {
		t.Errorf("page below hole: %v", err)
	}
	if _, err := e.Walk(hole+hw.PageSize4K, true); err != nil {
		t.Errorf("page above hole: %v", err)
	}
	if _, err := e.Walk(0, false); err != nil {
		t.Errorf("start of former giant page: %v", err)
	}
	s := e.Stats()
	if s.Bytes != hw.PageSize1G-hw.PageSize4K {
		t.Errorf("bytes = %#x, want 1G-4K", s.Bytes)
	}
	if s.Mapped1G != 0 {
		t.Errorf("giant pages = %d after split", s.Mapped1G)
	}
}

func TestEPTUnmapUnmappedIsNoop(t *testing.T) {
	e := NewEPT()
	if err := e.UnmapRange(0x100000, 0x10000); err != nil {
		t.Fatalf("unmap of empty EPT: %v", err)
	}
	if err := e.MapRange(0x1000, 0x1000, PermAll); err != nil {
		t.Fatal(err)
	}
	if err := e.UnmapRange(0x5000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Walk(0x1000, false); err != nil {
		t.Errorf("unrelated unmap removed mapping: %v", err)
	}
}

func TestEPTGenerationBumps(t *testing.T) {
	e := NewEPT()
	g0 := e.Gen()
	if err := e.MapRange(0, hw.PageSize4K, PermAll); err != nil {
		t.Fatal(err)
	}
	if e.Gen() != g0+1 {
		t.Error("map did not bump generation")
	}
	if err := e.UnmapRange(0, hw.PageSize4K); err != nil {
		t.Fatal(err)
	}
	if e.Gen() != g0+2 {
		t.Error("unmap did not bump generation")
	}
}

// Property: for any set of disjoint 4K-ranges mapped, every mapped page
// walks successfully, every unmapped probe violates, and Stats.Bytes equals
// the sum of mapped range sizes.
func TestEPTMapWalkProperty(t *testing.T) {
	f := func(seeds []uint16) bool {
		e := NewEPT()
		var total uint64
		mapped := map[uint64]bool{}
		for i, s := range seeds {
			if i >= 24 {
				break
			}
			start := uint64(s) * hw.PageSize2M // disjoint by construction
			size := uint64(s%5+1) * hw.PageSize4K
			if mapped[start] {
				continue
			}
			mapped[start] = true
			if err := e.MapRange(start, size, PermAll); err != nil {
				return false
			}
			total += size
			for off := uint64(0); off < size; off += hw.PageSize4K {
				if _, err := e.Walk(start+off, true); err != nil {
					return false
				}
			}
			if _, err := e.Walk(start+size, false); err == nil && size < hw.PageSize2M {
				return false
			}
		}
		return e.Stats().Bytes == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: map a range, unmap an arbitrary aligned subrange; exactly the
// pages outside the subrange remain mapped.
func TestEPTUnmapSubrangeProperty(t *testing.T) {
	f := func(startPg, sizePg, holePg, holeSzPg uint8) bool {
		size := (uint64(sizePg)%64 + 1) * hw.PageSize4K
		start := uint64(startPg) % 8 * hw.PageSize2M
		hole := start + (uint64(holePg)*hw.PageSize4K)%size
		holeSz := (uint64(holeSzPg)%32 + 1) * hw.PageSize4K
		e := NewEPT()
		if err := e.MapRange(start, size, PermAll); err != nil {
			return false
		}
		if err := e.UnmapRange(hole, holeSz); err != nil {
			return false
		}
		for off := uint64(0); off < size; off += hw.PageSize4K {
			a := start + off
			inHole := a >= hole && a < hole+holeSz
			_, err := e.Walk(a, true)
			if inHole && err == nil {
				return false
			}
			if !inHole && err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBestPageSize(t *testing.T) {
	cases := []struct {
		cur, rem, want uint64
	}{
		{0, hw.PageSize1G, hw.PageSize1G},
		{0, hw.PageSize1G - 1, hw.PageSize2M},
		{hw.PageSize2M, hw.PageSize2M, hw.PageSize2M},
		{hw.PageSize4K, hw.PageSize1G, hw.PageSize4K},
		{hw.PageSize2M, hw.PageSize2M - 1, hw.PageSize4K},
	}
	for _, c := range cases {
		if got := bestPageSize(c.cur, c.rem); got != c.want {
			t.Errorf("bestPageSize(%#x, %#x) = %#x, want %#x", c.cur, c.rem, got, c.want)
		}
	}
}
