package vmx

import (
	"covirt/internal/hw"
)

// VCPU places one simulated CPU in VMX non-root operation. It implements
// hw.VirtLayer by consulting the VMCS controls: operations the VMCS does not
// intercept execute at native cost (the zero-overhead fast path Covirt's
// design leans on); intercepted operations charge world-switch costs and
// dispatch to the ExitHandler.
type VCPU struct {
	CPU     *hw.CPU
	VMCS    *VMCS
	Handler ExitHandler
	Stats   ExitStats

	// transCache holds recently completed nested walks, validated against
	// EPT.Gen() on every hit; see transcache.go. Owned by the execution
	// goroutine (the shootdown path invalidates it from the NMI handler,
	// which also runs there).
	transCache transCache
}

// InvalidateTransCache drops all cached nested walks. The hypervisor's
// command-queue drain calls it alongside TLB shootdown so controller remaps
// invalidate both hardware-modelled caches on the same doorbell; generation
// validation would catch stale entries anyway, but the explicit hook keeps
// the cache's lifetime aligned with the architectural TLB's.
func (v *VCPU) InvalidateTransCache() { v.transCache.invalidate() }

// Launch installs the VCPU as the CPU's virtualization layer and marks the
// VMCS launched. It mirrors vmlaunch: after this, all guest operations on
// the core are subject to the VMCS controls.
func Launch(c *hw.CPU, vmcs *VMCS, h ExitHandler) *VCPU {
	v := &VCPU{CPU: c, VMCS: vmcs, Handler: h}
	c.Virt = v
	vmcs.MarkLaunched()
	return v
}

// exit performs a full VM exit + handler dispatch + re-entry, returning the
// handler's action.
func (v *VCPU) exit(c *hw.CPU, info *ExitInfo) (ExitAction, uint64) {
	cs := c.Costs()
	cost := cs.VMExit
	info.CPU = c.ID
	action := ActionResume
	if v.Handler != nil {
		action = v.Handler.HandleExit(c, info)
	}
	if action != ActionKill {
		cost += cs.VMEntry
	}
	v.Stats.record(info.Reason, cost)
	return action, cost
}

// TranslateGPA implements hw.VirtLayer. Without EPT it is free; with EPT it
// charges the nested portion of the two-dimensional walk and raises EPT
// violations through the exit path.
func (v *VCPU) TranslateGPA(c *hw.CPU, gpa uint64, write bool) (uint64, uint64, error) {
	surcharge := c.Costs().VMXWalkSurcharge
	if v.VMCS.EPT == nil {
		return surcharge, 0, nil
	}
	// Fast path: a translation cached under the current EPT generation
	// charges exactly what the walk it memoized charged (same levels, same
	// surcharge) and skips the walk. The generation is read before the
	// walk so a racing remap can only make a fresh entry look stale —
	// never a stale entry look fresh (Gen() bumps after the mutation).
	gen := v.VMCS.EPT.Gen()
	if !transCacheOff.Load() {
		if e, ok := v.transCache.lookup(gpa, write, gen); ok {
			return surcharge + uint64(e.levels)*c.Costs().EPTWalkPerLevel, e.pageSize, nil
		}
	}
	res, err := v.VMCS.EPT.Walk(gpa, write)
	if err == nil {
		v.transCache.insert(gpa, res, gen)
		// Nested-walk surcharge: paging-structure caches absorb most of
		// the architectural (g+1)*(e+1)-1 accesses, leaving roughly one
		// extra access per EPT level actually traversed.
		e := uint64(res.Levels)
		extra := surcharge + e*c.Costs().EPTWalkPerLevel
		return extra, res.PageSize, nil
	}
	// EPT violation: exit to the hypervisor.
	info := &ExitInfo{Reason: ExitEPTViolation, GPA: gpa, Write: write}
	action, cost := v.exit(c, info)
	if action == ActionResume {
		// The hypervisor claims to have repaired the mapping; retry once.
		if res2, err2 := v.VMCS.EPT.Walk(gpa, write); err2 == nil {
			e := uint64(res2.Levels)
			return cost + e*c.Costs().EPTWalkPerLevel, res2.PageSize, nil
		}
	}
	f := err.(*hw.Fault)
	f.CPU = c.ID
	c.M.RecordFault(*f)
	return cost, 0, &hw.Fault{Kind: hw.FaultEnclaveKilled, Addr: gpa, Write: write, CPU: c.ID, Msg: "EPT violation"}
}

// FilterIPI implements hw.VirtLayer: with APIC virtualization enabled every
// guest ICR write exits so the hypervisor can check the destination/vector
// whitelist.
func (v *VCPU) FilterIPI(c *hw.CPU, dest int, vector uint8) (bool, uint64, error) {
	if !v.VMCS.Controls.VirtualAPIC {
		return true, 0, nil
	}
	info := &ExitInfo{Reason: ExitICRWrite, IPIDest: dest, IPIVector: vector}
	action, cost := v.exit(c, info)
	switch action {
	case ActionDrop:
		return false, cost, nil
	case ActionKill:
		return false, cost, &hw.Fault{Kind: hw.FaultEnclaveKilled, CPU: c.ID, Msg: "forbidden IPI"}
	}
	return true, cost, nil
}

// MSRRead implements hw.VirtLayer.
func (v *VCPU) MSRRead(c *hw.CPU, msr uint32) (uint64, uint64, error) {
	if v.VMCS.MSRBitmap == nil || !v.VMCS.MSRBitmap.TrapsRead(msr) {
		return c.MSRs.Read(msr), 0, nil
	}
	info := &ExitInfo{Reason: ExitMSRRead, MSR: msr, MSRVal: c.MSRs.Read(msr)}
	action, cost := v.exit(c, info)
	if action == ActionKill {
		return 0, cost, &hw.Fault{Kind: hw.FaultEnclaveKilled, CPU: c.ID, Msg: "forbidden MSR read"}
	}
	return info.MSRVal, cost, nil
}

// MSRWrite implements hw.VirtLayer.
func (v *VCPU) MSRWrite(c *hw.CPU, msr uint32, val uint64) (uint64, error) {
	if v.VMCS.MSRBitmap == nil || !v.VMCS.MSRBitmap.TrapsWrite(msr) {
		c.MSRs.Write(msr, val)
		return 0, nil
	}
	info := &ExitInfo{Reason: ExitMSRWrite, MSR: msr, MSRVal: val}
	action, cost := v.exit(c, info)
	switch action {
	case ActionKill:
		return cost, &hw.Fault{Kind: hw.FaultEnclaveKilled, CPU: c.ID, Msg: "forbidden MSR write"}
	case ActionDrop:
		return cost, nil // write suppressed
	}
	c.MSRs.Write(msr, val)
	return cost, nil
}

// IO implements hw.VirtLayer.
func (v *VCPU) IO(c *hw.CPU, port uint16, write bool, val uint32) (uint32, uint64, error) {
	if v.VMCS.IOBitmap == nil || !v.VMCS.IOBitmap.Traps(port) {
		if write {
			c.M.Ports.Out(port, val)
			return 0, 0, nil
		}
		return c.M.Ports.In(port), 0, nil
	}
	info := &ExitInfo{Reason: ExitIO, Port: port, IOWrite: write, IOVal: val}
	action, cost := v.exit(c, info)
	switch action {
	case ActionKill:
		return 0, cost, &hw.Fault{Kind: hw.FaultEnclaveKilled, CPU: c.ID, Msg: "forbidden I/O"}
	case ActionDrop:
		if !write {
			return 0xFFFFFFFF, cost, nil
		}
		return 0, cost, nil
	}
	if write {
		c.M.Ports.Out(port, val)
		return 0, cost, nil
	}
	return c.M.Ports.In(port), cost, nil
}

// OnInterrupt implements hw.VirtLayer: delivery cost depends on APIC
// virtualization mode. Full virtualization exits for every incoming
// interrupt; posted interrupts deliver IPIs exitlessly but still exit for
// external (device) interrupts, including the local APIC timer.
func (v *VCPU) OnInterrupt(c *hw.CPU, vector uint8, external bool) uint64 {
	ctl := v.VMCS.Controls
	if !ctl.VirtualAPIC {
		return 0 // direct delivery, no interception
	}
	if ctl.PostedInterrupts && !external {
		if v.VMCS.PID != nil {
			v.VMCS.PID.Post(vector)
			v.VMCS.PID.Drain() // hardware injects immediately in our model
		}
		return c.Costs().PostedProcess
	}
	info := &ExitInfo{Reason: ExitExternalInterrupt, Vector: vector}
	_, cost := v.exit(c, info)
	return cost
}

// OnNMI implements hw.VirtLayer. NMIs always exit; Covirt uses them as the
// controller's command-queue doorbell.
func (v *VCPU) OnNMI(c *hw.CPU) uint64 {
	info := &ExitInfo{Reason: ExitNMI}
	_, cost := v.exit(c, info)
	return cost
}

// Emulate implements hw.VirtLayer for unconditionally-trapping instructions.
func (v *VCPU) Emulate(c *hw.CPU, instr hw.EmulInstr) (uint64, error) {
	reason := ExitCPUID
	if instr == hw.InstrXSETBV {
		reason = ExitXSETBV
	}
	info := &ExitInfo{Reason: reason}
	action, cost := v.exit(c, info)
	if action == ActionKill {
		return cost, &hw.Fault{Kind: hw.FaultEnclaveKilled, CPU: c.ID, Msg: "emulation refused"}
	}
	return cost, nil
}

// OnAbort implements hw.VirtLayer: abort-class guest faults exit to the
// hypervisor, which can contain them by terminating only the enclave.
func (v *VCPU) OnAbort(c *hw.CPU, f *hw.Fault) error {
	reason := ExitTripleFault
	if f.Kind == hw.FaultDoubleFault {
		reason = ExitDoubleFault
	}
	info := &ExitInfo{Reason: reason, GPA: f.Addr, Write: f.Write}
	action, _ := v.exit(c, info)
	c.M.RecordFault(*f)
	if action == ActionKill {
		return &hw.Fault{Kind: hw.FaultEnclaveKilled, CPU: c.ID, Msg: "abort contained: " + f.Error()}
	}
	// Not contained: the abort escalates and resets the node.
	c.M.Crash(f.Error())
	return &hw.Fault{Kind: hw.FaultMachineCrashed, CPU: c.ID, Msg: f.Error()}
}

var _ hw.VirtLayer = (*VCPU)(nil)
