package vmx

import (
	"fmt"
	"sync"

	"covirt/internal/hw"
)

// ExitReason identifies why a VM exit occurred. Values mirror the VMX basic
// exit reasons Covirt handles.
type ExitReason int

// Exit reasons.
const (
	ExitEPTViolation ExitReason = iota
	ExitICRWrite                // guest APIC ICR write (IPI transmission)
	ExitMSRRead
	ExitMSRWrite
	ExitIO
	ExitExternalInterrupt
	ExitNMI
	ExitCPUID
	ExitXSETBV
	ExitDoubleFault
	ExitTripleFault
	numExitReasons
)

// String returns the VMX-style name of the exit reason.
func (r ExitReason) String() string {
	switch r {
	case ExitEPTViolation:
		return "EPT_VIOLATION"
	case ExitICRWrite:
		return "APIC_ICR_WRITE"
	case ExitMSRRead:
		return "MSR_READ"
	case ExitMSRWrite:
		return "MSR_WRITE"
	case ExitIO:
		return "IO_INSTRUCTION"
	case ExitExternalInterrupt:
		return "EXTERNAL_INTERRUPT"
	case ExitNMI:
		return "EXCEPTION_NMI"
	case ExitCPUID:
		return "CPUID"
	case ExitXSETBV:
		return "XSETBV"
	case ExitDoubleFault:
		return "DOUBLE_FAULT"
	case ExitTripleFault:
		return "TRIPLE_FAULT"
	}
	return fmt.Sprintf("EXIT(%d)", int(r))
}

// ExitInfo carries the exit qualification to the handler.
type ExitInfo struct {
	Reason ExitReason
	CPU    int

	// EPT violation qualification.
	GPA   uint64
	Write bool

	// ICR write qualification.
	IPIDest   int
	IPIVector uint8

	// MSR qualification.
	MSR    uint32
	MSRVal uint64

	// IO qualification.
	Port    uint16
	IOWrite bool
	IOVal   uint32

	// Interrupt qualification.
	Vector uint8
}

// ExitAction is the handler's verdict.
type ExitAction int

const (
	// ActionResume re-enters the guest normally.
	ActionResume ExitAction = iota
	// ActionDrop resumes the guest but suppresses the trapped operation
	// (e.g. a filtered IPI is not delivered).
	ActionDrop
	// ActionKill terminates the guest: the enclave is torn down and the
	// CPU never re-enters non-root mode.
	ActionKill
)

// ExitHandler is the hypervisor logic invoked on every VM exit. Covirt's
// per-core hypervisor implements it.
type ExitHandler interface {
	HandleExit(c *hw.CPU, info *ExitInfo) ExitAction
}

// ExitHandlerFunc adapts a function to ExitHandler.
type ExitHandlerFunc func(c *hw.CPU, info *ExitInfo) ExitAction

// HandleExit calls f.
func (f ExitHandlerFunc) HandleExit(c *hw.CPU, info *ExitInfo) ExitAction { return f(c, info) }

// ExitStats counts VM exits by reason plus the cycles spent in world
// switches, for the noise/overhead analyses in the evaluation.
type ExitStats struct {
	mu     sync.Mutex
	counts [numExitReasons]uint64
	cycles uint64
}

// record adds one exit of the given reason costing cyc cycles.
func (s *ExitStats) record(r ExitReason, cyc uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts[r]++
	s.cycles += cyc
}

// Count returns the number of exits recorded for reason r.
func (s *ExitStats) Count(r ExitReason) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[r]
}

// Total returns the total exits and world-switch cycles.
func (s *ExitStats) Total() (exits, cycles uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counts {
		exits += c
	}
	return exits, s.cycles
}

// Snapshot returns a copy of the per-reason counts keyed by reason name.
func (s *ExitStats) Snapshot() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64)
	for r, c := range s.counts {
		if c > 0 {
			out[ExitReason(r).String()] = c
		}
	}
	return out
}
