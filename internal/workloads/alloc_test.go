package workloads

import (
	"math"
	"testing"

	"covirt/internal/hw"
)

// These tests are the regression teeth on the zero-alloc discipline: every
// steady-state solver loop and gather-fill helper is pinned at 0 allocs per
// call, so a reintroduced per-iteration make/append shows up as a test
// failure rather than a silent wall-clock regression.

func TestStencilKernelsAllocFree(t *testing.T) {
	s := newStencil27(24, 24, 24)
	n := s.rows()
	st := getCGState(n)
	defer putCGState(st)
	for i := range st.ones {
		st.ones[i] = 1
	}
	s.spmv(st.b, st.ones, 0, n)
	if a := testing.AllocsPerRun(10, func() { s.spmv(st.ap, st.b, 0, n) }); a != 0 {
		t.Errorf("spmv allocates %v per call", a)
	}
	if a := testing.AllocsPerRun(10, func() { s.symgs(st.z, st.b, 0, n) }); a != 0 {
		t.Errorf("symgs allocates %v per call", a)
	}
	// Partial blocks exercise the out-of-block slow path at rank boundaries.
	if a := testing.AllocsPerRun(10, func() { s.symgs(st.z, st.b, n/4, n/2) }); a != 0 {
		t.Errorf("partial-block symgs allocates %v per call", a)
	}
}

func TestLJBoxStepAllocFree(t *testing.T) {
	b := getLJBox(343, 1)
	defer putLJBox(b)
	b.computeForces() // warm up: sizes the cell index and the Verlet list
	if a := testing.AllocsPerRun(10, func() {
		b.buildCells()
		b.computeForces()
		b.integrate()
	}); a != 0 {
		t.Errorf("MD step allocates %v per step", a)
	}
	if a := testing.AllocsPerRun(5, func() { _ = b.totalEnergy() }); a != 0 {
		t.Errorf("totalEnergy allocates %v per call", a)
	}
}

func TestGatherFillHelpersAllocFree(t *testing.T) {
	ext := hw.Extent{Start: 1 << 21, Size: 1 << 20}
	rng := hw.NewRand(1)
	buf := make([]uint64, 2048)
	if a := testing.AllocsPerRun(10, func() { fillRandomAddrs(buf, &rng, ext) }); a != 0 {
		t.Errorf("fillRandomAddrs allocates %v per call", a)
	}
	table := make([]uint64, 1024)
	if a := testing.AllocsPerRun(10, func() { fillUpdates(buf, &rng, table, 1<<25, ext) }); a != 0 {
		t.Errorf("fillUpdates allocates %v per call", a)
	}
	ch := &sparseCharger{rng: hw.NewRand(2), vec: ext}
	if a := testing.AllocsPerRun(10, func() { ch.fillGatherAddrs(buf) }); a != 0 {
		t.Errorf("fillGatherAddrs allocates %v per call", a)
	}
}

func TestCGStatePoolZeroesXAndZ(t *testing.T) {
	st := getCGState(64)
	for i := range st.x {
		st.x[i], st.z[i], st.r[i] = 1, 2, 3
	}
	putCGState(st)
	st2 := getCGState(64)
	defer putCGState(st2)
	for i := range st2.x {
		if st2.x[i] != 0 || st2.z[i] != 0 {
			t.Fatalf("pooled state not zeroed at %d: x=%g z=%g", i, st2.x[i], st2.z[i])
		}
	}
}

// TestNeighborListMatchesLegacyEnumeration checks that the Verlet pair
// list finds exactly the pair interactions the legacy full-27 cell
// enumeration finds (identical forces up to floating-point summation
// order).
func TestNeighborListMatchesLegacyEnumeration(t *testing.T) {
	a := getLJBox(512, 7)
	defer putLJBox(a)
	c := getLJBox(512, 7) // same seed: identical positions
	defer putLJBox(c)
	if !a.ensureNeighbors() {
		t.Fatalf("test box too small for the neighbor list: l=%g", a.l)
	}
	c.buildCells()
	for i := 0; i < a.n; i++ {
		a.fx[i], a.fy[i], a.fz[i] = 0, 0, 0
		c.fx[i], c.fy[i], c.fz[i] = 0, 0, 0
	}
	a.forcesFromList()
	c.forcesLegacyWrap()
	for i := 0; i < a.n; i++ {
		for _, d := range [][2]float64{{a.fx[i], c.fx[i]}, {a.fy[i], c.fy[i]}, {a.fz[i], c.fz[i]}} {
			if diff := math.Abs(d[0] - d[1]); diff > 1e-9*math.Max(1, math.Abs(d[1])) {
				t.Fatalf("atom %d force diverges: list %g legacy %g", i, d[0], d[1])
			}
		}
	}
	// A drifted-atom step must invalidate and rebuild the list.
	a.x[0] = wrap(a.x[0]+ljSkin, a.l)
	if !a.drifted() {
		t.Fatal("moved atom not detected as drifted")
	}
}
