package workloads

import (
	"fmt"

	"covirt/internal/kitten"
)

// HPCG is the High Performance Conjugate Gradients benchmark (revision
// 3.1): preconditioned CG with a symmetric Gauss-Seidel smoother on a
// 27-point stencil. Table I runs 104x104x104; the default here is scaled
// for simulation turnaround and configurable back to the paper's size.
type HPCG struct {
	NX, NY, NZ int
	Iters      int
	// Seed displaces the gather streams (0 = legacy fixed stream).
	Seed uint64
}

// Name implements Runner.
func (h *HPCG) Name() string { return "hpcg" }

// SetSeed implements Seeder.
func (h *HPCG) SetSeed(s uint64) { h.Seed = s }

// Run implements Runner.
func (h *HPCG) Run(k *kitten.Kernel, threads int) (*Result, error) {
	nx, ny, nz := h.NX, h.NY, h.NZ
	if nx == 0 {
		nx, ny, nz = 48, 48, 48
	}
	iters := h.Iters
	if iters == 0 {
		iters = 20
	}
	// HPCG's multigrid hierarchy and halo buffers form a large working
	// set with poor locality: the charger scatters 8% of the gathers over
	// a 256 MiB extent, which is what exposes the small, configuration-
	// independent virtualization penalty the paper measures.
	cg := &cgSolver{
		s: newStencil27(nx, ny, nz), precond: true, iters: iters,
		gatherFrac: 0.08, scatterBytes: 256 << 20, seed: h.Seed,
	}
	var residual float64
	fn := cg.makeRankFn(threads, &residual)
	defer cg.release()
	res, err := runParallel(k, h.Name(), threads, fn)
	if err != nil {
		return nil, err
	}
	if residual > 0.01 {
		return nil, fmt.Errorf("hpcg: residual %g did not converge", residual)
	}
	rows := float64(nx * ny * nz)
	// SymGS ≈ 2 SpMV; one SpMV + one SymGS + vector work per iteration.
	flops := rows * 27 * 2 * 3 * float64(iters)
	res.Metrics["residual"] = residual
	res.Metrics["GFLOPs"] = flops / Seconds(res.Cycles) / 1e9
	res.Metrics["iterations"] = float64(iters)
	return res, nil
}
