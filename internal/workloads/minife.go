package workloads

import (
	"fmt"

	"covirt/internal/hw"
	"covirt/internal/kitten"
)

// MiniFE is the Mantevo MiniFE proxy app (v2.0): implicit finite-element
// assembly of a Poisson problem followed by an unpreconditioned CG solve.
// Table I runs nx=ny=nz=250; the default here is scaled for simulation
// turnaround.
type MiniFE struct {
	NX, NY, NZ int
	Iters      int
	// Seed displaces the gather streams (0 = legacy fixed stream).
	Seed uint64
}

// Name implements Runner.
func (m *MiniFE) Name() string { return "minife" }

// SetSeed implements Seeder.
func (m *MiniFE) SetSeed(s uint64) { m.Seed = s }

// Run implements Runner.
func (m *MiniFE) Run(k *kitten.Kernel, threads int) (*Result, error) {
	nx, ny, nz := m.NX, m.NY, m.NZ
	if nx == 0 {
		nx, ny, nz = 48, 48, 48
	}
	iters := m.Iters
	if iters == 0 {
		iters = 25
	}
	s := newStencil27(nx, ny, nz)
	n := s.rows()

	// Phase 1: FE assembly. Each rank assembles the element contributions
	// for its slab: per element, an 8x8 hex element stiffness matrix is
	// computed (real flops) and scattered into the global operator
	// (charged as matrix writes).
	// Padded: ranks store their assembly time concurrently.
	assembleCycles := make([]padUint64, threads)
	bar := NewBarrier(threads)
	var residual float64
	cg := &cgSolver{s: s, precond: false, iters: iters, seed: m.Seed}
	solveFn := cg.makeRankFn(threads, &residual)
	defer cg.release()

	ord := NewRankOrder(threads)
	res, err := runParallel(k, m.Name(), threads, func(e *kitten.Env, rank int) error {
		lo := rank * n / threads
		hi := (rank + 1) * n / threads
		rows := uint64(hi - lo)

		t0 := e.CPU.TSC
		var matrix hw.Extent
		ord.Do(rank, func() {
			matrix = allocSpread(e, hw.AlignUp(rows*matrixBytesPerRow, hw.PageSize4K))
		})
		// Element loop: ~1 element per row; 8x8 stiffness, ~500 flops each.
		var acc float64
		elems := int(rows)
		for el := 0; el < elems; el++ {
			// Representative real arithmetic for the element integral.
			x := float64(el%7) * 0.125
			acc += x*x - 0.5*x + 0.0625
		}
		if acc == -1 {
			return fmt.Errorf("unreachable")
		}
		e.Compute(rows * 500)
		// Scatter: streaming writes of the assembled rows plus some
		// random updates at slab boundaries. The update addresses are the
		// affine sequence (b*stride) mod size, which decomposes into
		// constant-stride segments between wrap points — each segment goes
		// through the batched AccessRun path, hitting the exact addresses
		// the per-element loop did.
		e.Stream(matrix.Start, rows*matrixBytesPerRow, true)
		const scatterStride = 4099 * matrixBytesPerRow
		for b, scatters := uint64(0), rows/64; b < scatters; {
			off := (b * scatterStride) % matrix.Size
			run := uint64(1)
			for b+run < scatters && off+run*scatterStride < matrix.Size {
				run++
			}
			e.AccessRun(matrix.Start+off, int(run), scatterStride, true, hw.AccessDRAM)
			b += run
		}
		// The assembly matrix is freed mid-run, while slower ranks may
		// still be allocating theirs: rank-order the free too so the
		// ledger sees one deterministic mutation sequence.
		ord.Do(rank, func() { e.Free(matrix) })
		assembleCycles[rank].v = e.CPU.TSC - t0
		bar.Wait(e, rank)

		// Phase 2: CG solve.
		return solveFn(e, rank)
	})
	if err != nil {
		return nil, err
	}
	if residual > 0.2 {
		return nil, fmt.Errorf("minife: residual %g did not converge", residual)
	}
	var maxAssemble uint64
	for i := range assembleCycles {
		if c := assembleCycles[i].v; c > maxAssemble {
			maxAssemble = c
		}
	}
	res.Metrics["residual"] = residual
	res.Metrics["assembly_cycles"] = float64(maxAssemble)
	res.Metrics["iterations"] = float64(iters)
	rows := float64(n)
	res.Metrics["GFLOPs"] = rows * 27 * 2 * float64(iters) / Seconds(res.Cycles) / 1e9
	return res, nil
}
