package workloads

import (
	"fmt"

	"covirt/internal/hw"
	"covirt/internal/kitten"
)

// Stream is the STREAM memory-bandwidth benchmark (v5.10 kernels: Copy,
// Scale, Add, Triad). Vector arithmetic is executed for real; the memory
// traffic is charged as sequential streams on the simulated CPUs.
type Stream struct {
	// N is the per-thread vector length in float64 elements.
	N int
	// Iters repeats each kernel (best-of reporting like the original).
	Iters int

	scalar float64
}

// Name implements Runner.
func (s *Stream) Name() string { return "stream" }

// Run implements Runner.
func (s *Stream) Run(k *kitten.Kernel, threads int) (*Result, error) {
	n := s.N
	if n == 0 {
		n = 1 << 21 // 16 MiB per array per thread
	}
	iters := s.Iters
	if iters == 0 {
		iters = 3
	}
	s.scalar = 3.0

	bytesPer := uint64(n * 8)
	// Padded to a cache line: each rank updates its slot inside the timed
	// kernels, and adjacent ranks must not false-share under -parallel.
	type kernelTime struct {
		copyC, scaleC, addC, triadC uint64
		_                           [32]byte
	}
	times := make([]kernelTime, threads)
	ord := NewRankOrder(threads)

	res, err := runParallel(k, s.Name(), threads, func(e *kitten.Env, rank int) error {
		// Real data, pooled across reps and ranks: a and b are re-filled
		// below and c is fully overwritten by the Copy kernel, so reuse
		// needs no clearing.
		sb := getStreamBufs(n)
		defer putStreamBufs(sb)
		a, b, c := sb.a, sb.b, sb.c
		for i := range a {
			a[i] = 1.0
			b[i] = 2.0
		}
		// Simulated placement: three arrays on the rank's NUMA node,
		// carved in rank order so the layout is scheduling-independent.
		var aX, bX, cX hw.Extent
		ord.Do(rank, func() {
			aX = allocSpread(e, bytesPer)
			bX = allocSpread(e, bytesPer)
			cX = allocSpread(e, bytesPer)
		})
		defer e.Free(aX)
		defer e.Free(bX)
		defer e.Free(cX)

		kt := &times[rank]
		best := func(dst *uint64, cycles uint64) {
			if *dst == 0 || cycles < *dst {
				*dst = cycles
			}
		}
		for it := 0; it < iters; it++ {
			// Copy: c = a
			t0 := e.CPU.TSC
			copy(c, a)
			e.Stream(aX.Start, bytesPer, false)
			e.Stream(cX.Start, bytesPer, true)
			best(&kt.copyC, e.CPU.TSC-t0)

			// Scale: b = q*c
			t0 = e.CPU.TSC
			for i := range b {
				b[i] = s.scalar * c[i]
			}
			e.Compute(uint64(n))
			e.Stream(cX.Start, bytesPer, false)
			e.Stream(bX.Start, bytesPer, true)
			best(&kt.scaleC, e.CPU.TSC-t0)

			// Add: c = a+b
			t0 = e.CPU.TSC
			for i := range c {
				c[i] = a[i] + b[i]
			}
			e.Compute(uint64(n))
			e.Stream(aX.Start, bytesPer, false)
			e.Stream(bX.Start, bytesPer, false)
			e.Stream(cX.Start, bytesPer, true)
			best(&kt.addC, e.CPU.TSC-t0)

			// Triad: a = b + q*c
			t0 = e.CPU.TSC
			for i := range a {
				a[i] = b[i] + s.scalar*c[i]
			}
			e.Compute(uint64(2 * n))
			e.Stream(bX.Start, bytesPer, false)
			e.Stream(cX.Start, bytesPer, false)
			e.Stream(aX.Start, bytesPer, true)
			best(&kt.triadC, e.CPU.TSC-t0)
		}
		// Verification (as STREAM does): expected values after iters rounds.
		wantA, wantB, wantC := 1.0, 2.0, 0.0
		for it := 0; it < iters; it++ {
			wantC = wantA
			wantB = s.scalar * wantC
			wantC = wantA + wantB
			wantA = wantB + s.scalar*wantC
		}
		if a[n/2] != wantA || b[n/2] != wantB || c[n/2] != wantC {
			return fmt.Errorf("stream: verification failed: got (%g,%g,%g) want (%g,%g,%g)",
				a[n/2], b[n/2], c[n/2], wantA, wantB, wantC)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Aggregate bandwidth: sum of per-thread rates, reported per kernel in
	// GB/s as STREAM does (bytes moved per kernel per thread / best time).
	rate := func(sel func(kernelTime) uint64, moved uint64) float64 {
		total := 0.0
		for _, kt := range times {
			c := sel(kt)
			if c == 0 {
				continue
			}
			total += float64(moved) / Seconds(c) / 1e9
		}
		return total
	}
	res.Metrics["copy_GBs"] = rate(func(k kernelTime) uint64 { return k.copyC }, 2*bytesPer)
	res.Metrics["scale_GBs"] = rate(func(k kernelTime) uint64 { return k.scaleC }, 2*bytesPer)
	res.Metrics["add_GBs"] = rate(func(k kernelTime) uint64 { return k.addC }, 3*bytesPer)
	res.Metrics["triad_GBs"] = rate(func(k kernelTime) uint64 { return k.triadC }, 3*bytesPer)
	return res, nil
}
