// Package workloads implements simulation ports of the paper's benchmark
// suite (Table I): Selfish Detour, STREAM, RandomAccess (GUPS), HPCG,
// MiniFE, and a LAMMPS proxy with the lj/eam/chain/chute problems.
//
// Each workload runs as guest tasks inside a Kitten enclave. Numerical work
// is performed for real on Go-side arrays (solvers converge, energies are
// conserved), while the memory/compute/IPI footprint is charged to the
// simulated CPUs through the kitten.Env operations — so the protection
// configuration underneath the enclave (native, Covirt feature sets)
// shapes the measured cycle counts exactly as the hardware mechanisms
// would.
package workloads

import (
	"fmt"
	"sync"

	"covirt/internal/hw"
	"covirt/internal/kitten"
)

// CyclesPerSecond converts simulated cycles to seconds (the evaluation
// platform's 1.70 GHz Xeon E5-2603 v4).
const CyclesPerSecond = 1.7e9

// Seconds converts cycles to seconds at the platform frequency.
func Seconds(cycles uint64) float64 { return float64(cycles) / CyclesPerSecond }

// VectorBarrier is the IPI vector used by the OpenMP-style runtime for
// barrier signalling inside an enclave.
const VectorBarrier uint8 = 0x61

// VectorOMPSched is the IPI vector the modelled OpenMP runtime uses for
// work-distribution signalling (periodic scheduling checks).
const VectorOMPSched uint8 = 0x62

// Result is one workload execution's outcome.
type Result struct {
	Name    string
	Threads int
	// Cycles is the wall time in simulated cycles: the maximum per-core
	// delta across the parallel region.
	Cycles uint64
	// PerCore holds each rank's cycle count.
	PerCore []uint64
	// Metrics carries workload-specific figures of merit (GB/s, GUPS,
	// residuals, detour counts, ...).
	Metrics map[string]float64
}

// Metric fetches a named metric (0 when absent).
func (r *Result) Metric(name string) float64 {
	if r == nil || r.Metrics == nil {
		return 0
	}
	return r.Metrics[name]
}

// Runner executes a named workload on a booted Kitten kernel.
type Runner interface {
	Name() string
	Run(k *kitten.Kernel, threads int) (*Result, error)
}

// Seeder is implemented by workloads whose internal pseudo-random streams
// can be displaced per run. The experiment engine derives one deterministic
// seed per job (a hash of experiment/config/layout/repetition passed
// through the hw.Rand seam) so repetitions decorrelate without consulting
// any ambient randomness. A zero seed leaves the workload's legacy fixed
// streams untouched.
type Seeder interface{ SetSeed(uint64) }

// Barrier is an OpenMP-style spin barrier for guest tasks. Rendezvous is
// Go-level; the charged footprint matches a shared-memory spin barrier
// (atomic arrival update plus sense-reversal spinning) — like real OpenMP
// barriers, it involves no interrupts on the common path, which is why the
// paper's multi-core results show IPI protection adding no cost to the
// mini-apps.
//
// Setting UseIPIWakeup models a runtime whose blocked threads sleep and
// are woken by IPI (the futex slow path): rank 0 then sends a real IPI to
// every other rank at release, traffic that traps under IPI protection.
type Barrier struct {
	n            int
	UseIPIWakeup bool
	mu           sync.Mutex
	cond         *sync.Cond
	count        int
	gen          int
}

// barrierSpinCost is the charged cost of one barrier arrival: an atomic
// RMW on the shared counter plus a short spin on the release flag.
const barrierSpinCost = 260

// NewBarrier returns a barrier for n ranks.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks rank until all n ranks arrive.
func (b *Barrier) Wait(e *kitten.Env, rank int) {
	if b.n > 1 {
		e.Compute(barrierSpinCost)
		if b.UseIPIWakeup && rank == 0 {
			for i := 1; i < b.n; i++ {
				e.SendIPI(i, VectorBarrier)
			}
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
}

// RankOrder serializes ledger-mutating sections (Alloc/Free) in rank
// order. The Pisces ledger hands out extents first-fit from an
// address-sorted free list, so the layout each rank receives — and with
// it NUMA placement and page-walk behaviour — depends on the order
// concurrent ranks reach the allocator. Left to goroutine scheduling,
// that order shifts under external CPU load or -race instrumentation
// (the multi-rank jitter caveat formerly in EXPERIMENTS.md). Rendezvous
// here is pure Go synchronization: ledger operations charge no simulated
// cycles, so imposing rank order costs nothing on the simulated clock
// while making address-space layouts reproducible.
//
// Do is a collective: every rank must call it once per round, in any
// arrival order; sections run strictly rank 0..n-1 within a round, and
// rounds do not overlap.
type RankOrder struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
	turn int // monotonically increasing; rank = turn mod n
}

// NewRankOrder returns an ordering collective for n ranks.
func NewRankOrder(n int) *RankOrder {
	r := &RankOrder{n: n}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Do runs fn when it becomes rank's turn in the current round.
func (r *RankOrder) Do(rank int, fn func()) {
	if r == nil || r.n <= 1 {
		fn()
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.turn%r.n != rank {
		r.cond.Wait()
	}
	fn()
	r.turn++
	r.cond.Broadcast()
}

// Allreduce sums per-rank values across all ranks (two barriers plus the
// combine work on rank 0, as a tree reduction would cost). The per-rank
// contribution slots are cache-line padded: every rank stores its value
// concurrently mid-iteration, and false sharing here serializes the whole
// fleet under -parallel.
type Allreduce struct {
	b    *Barrier
	vals []padFloat64
	out  float64
}

// NewAllreduce returns an all-reduce context for n ranks.
func NewAllreduce(n int) *Allreduce {
	return &Allreduce{b: NewBarrier(n), vals: make([]padFloat64, n)}
}

// Sum contributes v for rank and returns the global sum.
func (a *Allreduce) Sum(e *kitten.Env, rank int, v float64) float64 {
	a.vals[rank].v = v
	a.b.Wait(e, rank)
	if rank == 0 {
		s := 0.0
		for i := range a.vals {
			s += a.vals[i].v
		}
		a.out = s
		e.Compute(uint64(16 * len(a.vals)))
	}
	a.b.Wait(e, rank)
	return a.out
}

// runParallel executes fn on `threads` cores of k, measuring per-core cycle
// deltas, and assembles a Result.
func runParallel(k *kitten.Kernel, name string, threads int, fn func(e *kitten.Env, rank int) error) (*Result, error) {
	if threads <= 0 || threads > k.NumCores() {
		return nil, fmt.Errorf("workloads: %s wants %d threads, enclave has %d cores", name, threads, k.NumCores())
	}
	res := &Result{
		Name:    name,
		Threads: threads,
		PerCore: make([]uint64, threads),
		Metrics: make(map[string]float64),
	}
	// Ignore barrier wake IPIs beyond their (charged) delivery cost.
	k.OnIPI(VectorBarrier, func(*kitten.Env) {})
	k.OnIPI(VectorOMPSched, func(*kitten.Env) {})
	var mu sync.Mutex
	err := k.RunParallel(name, threads, func(e *kitten.Env, rank int) error {
		// Drain pending events (the spawn doorbell IPI, stray wakeups) so
		// their delivery cost lands outside the measured window; runs are
		// then cycle-deterministic for a given machine history.
		e.Compute(0)
		start := e.CPU.TSC
		if err := fn(e, rank); err != nil {
			return err
		}
		delta := e.CPU.TSC - start
		mu.Lock()
		defer mu.Unlock()
		res.PerCore[rank] = delta
		if delta > res.Cycles {
			res.Cycles = delta
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// allocSpread allocates `size` bytes of simulated address space for rank,
// placed on the NUMA node owning the rank's core, so data locality follows
// the paper's "memory divided evenly between NUMA zones" setup.
func allocSpread(e *kitten.Env, size uint64) hw.Extent {
	return e.Alloc(e.CPU.Node, size)
}
