package workloads_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"covirt/internal/harness"
	"covirt/internal/hw"
	"covirt/internal/kitten"
	"covirt/internal/workloads"
)

// TestRankOrderRounds drives the collective from goroutines released in
// reverse rank order and checks that sections still execute strictly
// rank-major, round by round.
func TestRankOrderRounds(t *testing.T) {
	const n, rounds = 4, 3
	ord := workloads.NewRankOrder(n)
	gates := make([]chan struct{}, n)
	for i := range gates {
		gates[i] = make(chan struct{})
	}
	var seq []int
	done := make(chan struct{})
	for r := 0; r < n; r++ {
		go func(rank int) {
			<-gates[rank]
			for round := 0; round < rounds; round++ {
				ord.Do(rank, func() { seq = append(seq, rank) })
			}
			done <- struct{}{}
		}(r)
	}
	// Adversarial arrival: the highest rank is released first and gets a
	// head start toward the collective.
	for r := n - 1; r >= 0; r-- {
		close(gates[r])
		time.Sleep(time.Millisecond)
	}
	for r := 0; r < n; r++ {
		<-done
	}
	if len(seq) != n*rounds {
		t.Fatalf("got %d sections, want %d", len(seq), n*rounds)
	}
	for i, rank := range seq {
		if rank != i%n {
			t.Fatalf("section %d ran on rank %d, want %d (seq %v)", i, rank, i%n, seq)
		}
	}
}

// TestRankOrderLapping covers the free-running interleaving: no gates, no
// pacing, and per-rank work so unequal that fast ranks race back to the
// collective for round R+1 while slow ranks have not yet taken their
// round-R turns. The monotonic turn counter must hold a lapping rank at
// the door until every rank of the current round has run — sections stay
// strictly rank-major no matter how far ahead a rank's goroutine gets.
func TestRankOrderLapping(t *testing.T) {
	const n, rounds = 4, 16
	ord := workloads.NewRankOrder(n)
	var seq []int // appended under the collective's own serialization
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				ord.Do(rank, func() { seq = append(seq, rank) })
				// Rank 0 sprints straight back to the collective; higher
				// ranks burn rank-proportional time between sections so
				// rank 0 is perpetually trying to lap them.
				for spin := 0; spin < rank*200; spin++ {
					runtime.Gosched()
				}
			}
		}(r)
	}
	wg.Wait()
	if len(seq) != n*rounds {
		t.Fatalf("got %d sections, want %d", len(seq), n*rounds)
	}
	for i, rank := range seq {
		if rank != i%n {
			t.Fatalf("section %d ran on rank %d, want %d (seq %v)", i, rank, i%n, seq)
		}
	}
}

// TestLedgerLayoutIndependentOfArrival is the regression test for the
// multi-rank ledger-order jitter (PR 3 caveat): the extents each rank
// receives must not depend on the order goroutine scheduling lets ranks
// reach the allocator. Two runs on identical fresh nodes — one with ranks
// released in rank order, one in reverse with a head start — must yield
// byte-identical per-rank layouts.
func TestLedgerLayoutIndependentOfArrival(t *testing.T) {
	const threads = 4
	layout := func(reverse bool) [threads]hw.Extent {
		nd := node(t, harness.CfgNative, harness.Layouts[1]) // 4 cores
		ord := workloads.NewRankOrder(threads)
		gates := make([]chan struct{}, threads)
		for i := range gates {
			gates[i] = make(chan struct{})
		}
		go func() {
			order := make([]int, threads)
			for i := range order {
				if reverse {
					order[i] = threads - 1 - i
				} else {
					order[i] = i
				}
			}
			for _, r := range order {
				close(gates[r])
				time.Sleep(time.Millisecond)
			}
		}()
		var got [threads]hw.Extent
		err := nd.K.RunParallel("layout", threads, func(e *kitten.Env, rank int) error {
			<-gates[rank]
			ord.Do(rank, func() {
				got[rank] = e.Alloc(e.CPU.Node, uint64(rank+1)<<20)
			})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	forward := layout(false)
	reverse := layout(true)
	if forward != reverse {
		t.Errorf("per-rank layout depends on arrival order:\nforward: %v\nreverse: %v", forward, reverse)
	}
}

// TestWorkloadCyclesStableAcrossRepeats reruns a multi-rank workload on
// fresh nodes and requires identical cycle counts — the user-visible form
// of the jitter the rank-ordered allocation removes.
func TestWorkloadCyclesStableAcrossRepeats(t *testing.T) {
	mk := func() *workloads.MiniFE {
		return &workloads.MiniFE{NX: 16, NY: 16, NZ: 16, Iters: 8}
	}
	a := run(t, mk(), harness.CfgNative, harness.Layouts[1])
	b := run(t, mk(), harness.CfgNative, harness.Layouts[1])
	if a.Cycles != b.Cycles {
		t.Errorf("multi-rank cycles differ across identical runs: %d vs %d", a.Cycles, b.Cycles)
	}
}
