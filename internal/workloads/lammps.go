package workloads

import (
	"fmt"
	"math"

	"covirt/internal/hw"
	"covirt/internal/kitten"
)

// LammpsProblem selects one of the stock LAMMPS benchmark inputs the paper
// runs (Fig. 8).
type LammpsProblem int

// The four problems from the default LAMMPS bench scripts.
const (
	LJ LammpsProblem = iota
	EAM
	Chain
	Chute
)

// String names the problem as the run scripts do.
func (p LammpsProblem) String() string {
	switch p {
	case LJ:
		return "lj"
	case EAM:
		return "eam"
	case Chain:
		return "chain"
	case Chute:
		return "chute"
	}
	return fmt.Sprintf("lammps(%d)", int(p))
}

// Lammps is a molecular-dynamics proxy reproducing the computational
// profile of the LAMMPS benchmarks: velocity-Verlet integration with
// cell-list neighbor finding and a real Lennard-Jones force loop; the
// problem variants adjust the force-field cost mix and synchronization
// frequency the way the real inputs differ:
//
//	lj    — baseline pairwise LJ liquid
//	eam   — adds the embedding pass: a second force sweep plus random
//	        spline-table lookups per pair
//	chain — bonded polymer: half the pair density, cheap bond terms
//	chute — granular flow: sparse contacts but frequent global reductions
//	        (pours, boundary bookkeeping), the synchronization-heavy case
type Lammps struct {
	Problem LammpsProblem
	// AtomsPerRank is the per-thread atom count (default 1728 = 12^3).
	AtomsPerRank int
	// Steps is the number of timesteps (default 40).
	Steps int
	// Seed displaces the initial condition and neighbor-churn streams
	// (0 = legacy fixed streams).
	Seed uint64
}

// SetSeed implements Seeder.
func (l *Lammps) SetSeed(s uint64) { l.Seed = s }

// Name implements Runner.
func (l *Lammps) Name() string { return "lammps-" + l.Problem.String() }

// lammpsProfile holds per-variant cost-model knobs.
type lammpsProfile struct {
	pairDensity     float64 // relative neighbor count vs lj
	flopsPerPair    uint64
	tableLookups    float64 // random DRAM lookups per pair (splines, contact history)
	lookupBytes     uint64  // size of the structure those lookups land in
	barriersPerStep int
	rebuildEvery    int // neighbor-list rebuild period in steps
	extraForcePass  bool
}

func (p LammpsProblem) profile() lammpsProfile {
	switch p {
	case EAM:
		// Embedded-atom method: a second force sweep plus spline-table
		// interpolation lookups. The tables are small (cache- and
		// TLB-resident), so EAM adds compute but little translation
		// pressure.
		return lammpsProfile{pairDensity: 1.0, flopsPerPair: 26, tableLookups: 0.05, lookupBytes: 1 << 20, barriersPerStep: 1, rebuildEvery: 10, extraForcePass: true}
	case Chain:
		// Bonded polymer: sparse pair interactions, cheap bond terms.
		return lammpsProfile{pairDensity: 0.5, flopsPerPair: 18, tableLookups: 0, barriersPerStep: 1, rebuildEvery: 10}
	case Chute:
		// Granular flow: few contacts but constantly churning neighbor
		// bins and per-contact history state — the random-access-heavy,
		// translation-sensitive case (the paper's "most sensitive to the
		// protections being enabled").
		return lammpsProfile{pairDensity: 0.3, flopsPerPair: 26, tableLookups: 0.45, lookupBytes: 256 << 20, barriersPerStep: 2, rebuildEvery: 1}
	default: // LJ
		return lammpsProfile{pairDensity: 1.0, flopsPerPair: 23, tableLookups: 0, barriersPerStep: 1, rebuildEvery: 10}
	}
}

// Run implements Runner.
func (l *Lammps) Run(k *kitten.Kernel, threads int) (*Result, error) {
	atoms := l.AtomsPerRank
	if atoms == 0 {
		atoms = 1728
	}
	steps := l.Steps
	if steps == 0 {
		steps = 40
	}
	prof := l.Problem.profile()
	bar := NewBarrier(threads)
	red := NewAllreduce(threads)
	drift := make([]float64, threads)

	ord := NewRankOrder(threads)
	res, err := runParallel(k, l.Name(), threads, func(e *kitten.Env, rank int) error {
		md := newLJBox(atoms, l.Seed^uint64(rank+1))
		var posExt, neighExt, lookupExt hw.Extent
		hasLookup := prof.lookupBytes > 0
		ord.Do(rank, func() {
			posExt = allocSpread(e, hw.AlignUp(uint64(atoms)*48, hw.PageSize4K))     // x,v per atom
			neighExt = allocSpread(e, hw.AlignUp(uint64(atoms)*40*8, hw.PageSize4K)) // neighbor lists
			if hasLookup {
				lookupExt = allocSpread(e, prof.lookupBytes)
			}
		})
		defer e.Free(posExt)
		defer e.Free(neighExt)
		if hasLookup {
			defer e.Free(lookupExt)
		} else {
			lookupExt = neighExt
		}
		rng := hw.NewRand(0xA5A5A5A5 ^ l.Seed ^ uint64(rank+7))

		md.buildCells()
		e0 := md.totalEnergy()
		avgNeigh := md.averageNeighbors() * prof.pairDensity

		for step := 0; step < steps; step++ {
			// Neighbor rebuild: binning is random access.
			if step%prof.rebuildEvery == 0 {
				md.buildCells()
				for a := 0; a < atoms/4; a++ {
					off := rng.Next() % (neighExt.Size / 8)
					e.Access(neighExt.Start+off*8, true, hw.AccessDRAM)
				}
				e.Compute(uint64(atoms) * 30)
			}
			// Force pass(es): stream neighbor lists + positions, real LJ math.
			passes := 1
			if prof.extraForcePass {
				passes = 2
			}
			for pass := 0; pass < passes; pass++ {
				md.computeForces()
				pairs := uint64(float64(atoms) * avgNeigh)
				e.Stream(neighExt.Start, pairs*8, false)
				e.Stream(posExt.Start, uint64(atoms)*24, false)
				e.Compute(pairs * prof.flopsPerPair)
				lookups := uint64(float64(pairs) * prof.tableLookups)
				for t := uint64(0); t < lookups; t++ {
					off := rng.Next() % (lookupExt.Size / 8)
					e.Access(lookupExt.Start+off*8, false, hw.AccessDRAM)
				}
			}
			// Integrate (velocity Verlet): stream positions/velocities.
			md.integrate()
			e.Stream(posExt.Start, uint64(atoms)*48, true)
			e.Compute(uint64(atoms) * 12)

			// Synchronization (halo exchange, global thermo/pour logic).
			for b := 0; b < prof.barriersPerStep; b++ {
				bar.Wait(e, rank)
			}
			if step%5 == 0 {
				_ = red.Sum(e, rank, md.kineticEnergy())
			}
		}
		e1 := md.totalEnergy()
		drift[rank] = math.Abs(e1-e0) / math.Max(math.Abs(e0), 1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for r, d := range drift {
		if math.IsNaN(d) || d > 0.2 {
			return nil, fmt.Errorf("lammps-%s: rank %d energy drift %g (integration broken)", l.Problem, r, d)
		}
	}
	res.Metrics["loop_time_s"] = Seconds(res.Cycles)
	res.Metrics["atom_steps_per_s"] = float64(atoms*threads*steps) / Seconds(res.Cycles)
	res.Metrics["energy_drift"] = drift[0]
	return res, nil
}

// ljBox is a small real Lennard-Jones MD system: FCC lattice at reduced
// density 0.8442, cutoff 2.5, velocity Verlet, cell-list neighbors.
type ljBox struct {
	n          int
	l          float64 // box edge
	rc2        float64
	dt         float64
	x, y, z    []float64
	vx, vy, vz []float64
	fx, fy, fz []float64
	cells      map[[3]int][]int
	cellW      float64
}

func newLJBox(n int, seed uint64) *ljBox {
	b := &ljBox{
		n:   n,
		rc2: 2.5 * 2.5,
		dt:  0.005,
		x:   make([]float64, n), y: make([]float64, n), z: make([]float64, n),
		vx: make([]float64, n), vy: make([]float64, n), vz: make([]float64, n),
		fx: make([]float64, n), fy: make([]float64, n), fz: make([]float64, n),
	}
	b.l = math.Cbrt(float64(n) / 0.8442)
	// Simple cubic lattice placement with slight deterministic jitter.
	side := int(math.Ceil(math.Cbrt(float64(n))))
	spacing := b.l / float64(side)
	rng := hw.NewRand(seed*2654435761 + 1)
	i := 0
	for ix := 0; ix < side && i < n; ix++ {
		for iy := 0; iy < side && i < n; iy++ {
			for iz := 0; iz < side && i < n; iz++ {
				b.x[i] = (float64(ix) + 0.5) * spacing
				b.y[i] = (float64(iy) + 0.5) * spacing
				b.z[i] = (float64(iz) + 0.5) * spacing
				b.vx[i] = (float64(rng.Next()%1000)/1000 - 0.5) * 0.1
				b.vy[i] = (float64(rng.Next()%1000)/1000 - 0.5) * 0.1
				b.vz[i] = (float64(rng.Next()%1000)/1000 - 0.5) * 0.1
				i++
			}
		}
	}
	return b
}

// buildCells rebins atoms into cutoff-sized cells.
func (b *ljBox) buildCells() {
	b.cellW = 2.5
	b.cells = make(map[[3]int][]int)
	for i := 0; i < b.n; i++ {
		c := b.cellOf(i)
		b.cells[c] = append(b.cells[c], i)
	}
}

func (b *ljBox) cellOf(i int) [3]int {
	return [3]int{int(b.x[i] / b.cellW), int(b.y[i] / b.cellW), int(b.z[i] / b.cellW)}
}

// minImage applies the minimum-image convention.
func (b *ljBox) minImage(d float64) float64 {
	if d > b.l/2 {
		return d - b.l
	}
	if d < -b.l/2 {
		return d + b.l
	}
	return d
}

// computeForces evaluates LJ forces via the cell lists.
func (b *ljBox) computeForces() {
	for i := 0; i < b.n; i++ {
		b.fx[i], b.fy[i], b.fz[i] = 0, 0, 0
	}
	maxc := int(b.l/b.cellW) + 1
	for c, atoms := range b.cells {
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					nc := [3]int{mod(c[0]+dx, maxc), mod(c[1]+dy, maxc), mod(c[2]+dz, maxc)}
					neigh := b.cells[nc]
					for _, i := range atoms {
						for _, j := range neigh {
							if j <= i {
								continue
							}
							ddx := b.minImage(b.x[i] - b.x[j])
							ddy := b.minImage(b.y[i] - b.y[j])
							ddz := b.minImage(b.z[i] - b.z[j])
							r2 := ddx*ddx + ddy*ddy + ddz*ddz
							if r2 > b.rc2 || r2 == 0 {
								continue
							}
							inv2 := 1 / r2
							inv6 := inv2 * inv2 * inv2
							f := 24 * inv2 * inv6 * (2*inv6 - 1)
							b.fx[i] += f * ddx
							b.fy[i] += f * ddy
							b.fz[i] += f * ddz
							b.fx[j] -= f * ddx
							b.fy[j] -= f * ddy
							b.fz[j] -= f * ddz
						}
					}
				}
			}
		}
	}
}

func mod(a, m int) int { return ((a % m) + m) % m }

// integrate advances one (leapfrog-ish) step with periodic wrapping.
func (b *ljBox) integrate() {
	for i := 0; i < b.n; i++ {
		b.vx[i] += b.fx[i] * b.dt
		b.vy[i] += b.fy[i] * b.dt
		b.vz[i] += b.fz[i] * b.dt
		b.x[i] = wrap(b.x[i]+b.vx[i]*b.dt, b.l)
		b.y[i] = wrap(b.y[i]+b.vy[i]*b.dt, b.l)
		b.z[i] = wrap(b.z[i]+b.vz[i]*b.dt, b.l)
	}
}

func wrap(v, l float64) float64 {
	for v < 0 {
		v += l
	}
	for v >= l {
		v -= l
	}
	return v
}

// kineticEnergy returns the system kinetic energy.
func (b *ljBox) kineticEnergy() float64 {
	ke := 0.0
	for i := 0; i < b.n; i++ {
		ke += 0.5 * (b.vx[i]*b.vx[i] + b.vy[i]*b.vy[i] + b.vz[i]*b.vz[i])
	}
	return ke
}

// potentialEnergy sums the LJ pair potential.
func (b *ljBox) potentialEnergy() float64 {
	pe := 0.0
	for i := 0; i < b.n; i++ {
		for j := i + 1; j < b.n; j++ {
			ddx := b.minImage(b.x[i] - b.x[j])
			ddy := b.minImage(b.y[i] - b.y[j])
			ddz := b.minImage(b.z[i] - b.z[j])
			r2 := ddx*ddx + ddy*ddy + ddz*ddz
			if r2 > b.rc2 || r2 == 0 {
				continue
			}
			inv6 := 1 / (r2 * r2 * r2)
			pe += 4 * inv6 * (inv6 - 1)
		}
	}
	return pe
}

// totalEnergy returns KE + PE.
func (b *ljBox) totalEnergy() float64 { return b.kineticEnergy() + b.potentialEnergy() }

// averageNeighbors estimates the neighbor count within the cutoff.
func (b *ljBox) averageNeighbors() float64 {
	// Density * cutoff-sphere volume.
	rho := float64(b.n) / (b.l * b.l * b.l)
	return rho * 4.0 / 3.0 * math.Pi * 2.5 * 2.5 * 2.5
}
