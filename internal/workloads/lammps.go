package workloads

import (
	"fmt"
	"math"

	"covirt/internal/hw"
	"covirt/internal/kitten"
)

// LammpsProblem selects one of the stock LAMMPS benchmark inputs the paper
// runs (Fig. 8).
type LammpsProblem int

// The four problems from the default LAMMPS bench scripts.
const (
	LJ LammpsProblem = iota
	EAM
	Chain
	Chute
)

// String names the problem as the run scripts do.
func (p LammpsProblem) String() string {
	switch p {
	case LJ:
		return "lj"
	case EAM:
		return "eam"
	case Chain:
		return "chain"
	case Chute:
		return "chute"
	}
	return fmt.Sprintf("lammps(%d)", int(p))
}

// Lammps is a molecular-dynamics proxy reproducing the computational
// profile of the LAMMPS benchmarks: velocity-Verlet integration with
// cell-list neighbor finding and a real Lennard-Jones force loop; the
// problem variants adjust the force-field cost mix and synchronization
// frequency the way the real inputs differ:
//
//	lj    — baseline pairwise LJ liquid
//	eam   — adds the embedding pass: a second force sweep plus random
//	        spline-table lookups per pair
//	chain — bonded polymer: half the pair density, cheap bond terms
//	chute — granular flow: sparse contacts but frequent global reductions
//	        (pours, boundary bookkeeping), the synchronization-heavy case
type Lammps struct {
	Problem LammpsProblem
	// AtomsPerRank is the per-thread atom count (default 1728 = 12^3).
	AtomsPerRank int
	// Steps is the number of timesteps (default 40).
	Steps int
	// Seed displaces the initial condition and neighbor-churn streams
	// (0 = legacy fixed streams).
	Seed uint64
}

// SetSeed implements Seeder.
func (l *Lammps) SetSeed(s uint64) { l.Seed = s }

// Name implements Runner.
func (l *Lammps) Name() string { return "lammps-" + l.Problem.String() }

// lammpsProfile holds per-variant cost-model knobs.
type lammpsProfile struct {
	pairDensity     float64 // relative neighbor count vs lj
	flopsPerPair    uint64
	tableLookups    float64 // random DRAM lookups per pair (splines, contact history)
	lookupBytes     uint64  // size of the structure those lookups land in
	barriersPerStep int
	rebuildEvery    int // neighbor-list rebuild period in steps
	extraForcePass  bool
}

func (p LammpsProblem) profile() lammpsProfile {
	switch p {
	case EAM:
		// Embedded-atom method: a second force sweep plus spline-table
		// interpolation lookups. The tables are small (cache- and
		// TLB-resident), so EAM adds compute but little translation
		// pressure.
		return lammpsProfile{pairDensity: 1.0, flopsPerPair: 26, tableLookups: 0.05, lookupBytes: 1 << 20, barriersPerStep: 1, rebuildEvery: 10, extraForcePass: true}
	case Chain:
		// Bonded polymer: sparse pair interactions, cheap bond terms.
		return lammpsProfile{pairDensity: 0.5, flopsPerPair: 18, tableLookups: 0, barriersPerStep: 1, rebuildEvery: 10}
	case Chute:
		// Granular flow: few contacts but constantly churning neighbor
		// bins and per-contact history state — the random-access-heavy,
		// translation-sensitive case (the paper's "most sensitive to the
		// protections being enabled").
		return lammpsProfile{pairDensity: 0.3, flopsPerPair: 26, tableLookups: 0.45, lookupBytes: 256 << 20, barriersPerStep: 2, rebuildEvery: 1}
	default: // LJ
		return lammpsProfile{pairDensity: 1.0, flopsPerPair: 23, tableLookups: 0, barriersPerStep: 1, rebuildEvery: 10}
	}
}

// fillRandomAddrs generates uniformly random word addresses inside ext,
// advancing rng exactly as the element-wise charge loops do.
//
//covirt:hot
func fillRandomAddrs(buf []uint64, rng *hw.Rand, ext hw.Extent) {
	words := ext.Size / 8
	for i := range buf {
		buf[i] = ext.Start + (rng.Next()%words)*8
	}
}

// Run implements Runner.
func (l *Lammps) Run(k *kitten.Kernel, threads int) (*Result, error) {
	atoms := l.AtomsPerRank
	if atoms == 0 {
		atoms = 1728
	}
	steps := l.Steps
	if steps == 0 {
		steps = 40
	}
	prof := l.Problem.profile()
	bar := NewBarrier(threads)
	red := NewAllreduce(threads)
	drift := make([]padFloat64, threads)

	ord := NewRankOrder(threads)
	res, err := runParallel(k, l.Name(), threads, func(e *kitten.Env, rank int) error {
		md := getLJBox(atoms, l.Seed^uint64(rank+1))
		defer putLJBox(md)
		var posExt, neighExt, lookupExt hw.Extent
		hasLookup := prof.lookupBytes > 0
		ord.Do(rank, func() {
			posExt = allocSpread(e, hw.AlignUp(uint64(atoms)*48, hw.PageSize4K))     // x,v per atom
			neighExt = allocSpread(e, hw.AlignUp(uint64(atoms)*40*8, hw.PageSize4K)) // neighbor lists
			if hasLookup {
				lookupExt = allocSpread(e, prof.lookupBytes)
			}
		})
		defer e.Free(posExt)
		defer e.Free(neighExt)
		if hasLookup {
			defer e.Free(lookupExt)
		} else {
			lookupExt = neighExt
		}
		rng := hw.NewRand(0xA5A5A5A5 ^ l.Seed ^ uint64(rank+7))

		md.buildCells()
		e0 := md.totalEnergy()
		avgNeigh := md.averageNeighbors() * prof.pairDensity
		// Per-step charge volumes are step-invariant: size the gather
		// scratch once, outside the measured loop.
		pairs := uint64(float64(atoms) * avgNeigh)
		lookups := uint64(float64(pairs) * prof.tableLookups)
		rebuilds := uint64(atoms / 4)
		scratchLen := rebuilds
		if lookups > scratchLen {
			scratchLen = lookups
		}
		scratch := make([]uint64, scratchLen)

		for step := 0; step < steps; step++ {
			// Neighbor rebuild: binning is random access.
			if step%prof.rebuildEvery == 0 {
				md.buildCells()
				if spanRouting() {
					buf := scratch[:rebuilds]
					fillRandomAddrs(buf, &rng, neighExt)
					e.AccessGather(buf, 0, true, hw.AccessDRAM)
				} else {
					for a := 0; a < atoms/4; a++ {
						off := rng.Next() % (neighExt.Size / 8)
						e.Access(neighExt.Start+off*8, true, hw.AccessDRAM)
					}
				}
				e.Compute(uint64(atoms) * 30)
			}
			// Force pass(es): stream neighbor lists + positions, real LJ math.
			passes := 1
			if prof.extraForcePass {
				passes = 2
			}
			for pass := 0; pass < passes; pass++ {
				md.computeForces()
				e.Stream(neighExt.Start, pairs*8, false)
				e.Stream(posExt.Start, uint64(atoms)*24, false)
				e.Compute(pairs * prof.flopsPerPair)
				if spanRouting() {
					if lookups > 0 {
						buf := scratch[:lookups]
						fillRandomAddrs(buf, &rng, lookupExt)
						e.AccessGather(buf, 0, false, hw.AccessDRAM)
					}
				} else {
					for t := uint64(0); t < lookups; t++ {
						off := rng.Next() % (lookupExt.Size / 8)
						e.Access(lookupExt.Start+off*8, false, hw.AccessDRAM)
					}
				}
			}
			// Integrate (velocity Verlet): stream positions/velocities.
			md.integrate()
			e.Stream(posExt.Start, uint64(atoms)*48, true)
			e.Compute(uint64(atoms) * 12)

			// Synchronization (halo exchange, global thermo/pour logic).
			for b := 0; b < prof.barriersPerStep; b++ {
				bar.Wait(e, rank)
			}
			if step%5 == 0 {
				_ = red.Sum(e, rank, md.kineticEnergy())
			}
		}
		e1 := md.totalEnergy()
		drift[rank].v = math.Abs(e1-e0) / math.Max(math.Abs(e0), 1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for r := range drift {
		if d := drift[r].v; math.IsNaN(d) || d > 0.2 {
			return nil, fmt.Errorf("lammps-%s: rank %d energy drift %g (integration broken)", l.Problem, r, d)
		}
	}
	res.Metrics["loop_time_s"] = Seconds(res.Cycles)
	res.Metrics["atom_steps_per_s"] = float64(atoms*threads*steps) / Seconds(res.Cycles)
	res.Metrics["energy_drift"] = drift[0].v
	return res, nil
}

// ljBox is a small real Lennard-Jones MD system: FCC lattice at reduced
// density 0.8442, cutoff 2.5, velocity Verlet, cell-list neighbors. The
// cell index is a flat CSR-style table (cellStart row pointers into
// cellAtoms) rebuilt by counting sort — no per-cell slices, no map, no
// steady-state allocation.
type ljBox struct {
	n          int
	l          float64 // box edge
	rc2        float64
	dt         float64
	x, y, z    []float64
	vx, vy, vz []float64
	fx, fy, fz []float64
	cellW      float64
	nc         int     // cells per box edge (0 until the first buildCells)
	cellStart  []int32 // CSR row starts, len nc³+1
	cellAtoms  []int32 // atom ids grouped by cell, len n, ascending within a cell
	cellCur    []int32 // counting-sort cursor scratch, len nc³

	// Verlet neighbor list: flat (i, j) pairs within rc+ljSkin at the
	// last build, plus the per-atom positions snapshotted then. The list
	// stays exact while no atom has drifted more than ljSkin/2 — two
	// atoms approaching each other can close at most ljSkin between
	// rebuilds, so no pair can enter the cutoff unlisted.
	nlPairs       []int32
	nlx, nly, nlz []float64
	nlValid       bool
}

// ljSkin is the Verlet-list skin distance: pairs are listed out to
// rc+ljSkin so the list survives many integration steps before an atom
// drifts far enough to force a rebuild.
const ljSkin = 0.3

// init (re)sets the box to the seeded lattice state: simple cubic
// placement with deterministic velocity jitter. Called by getLJBox on both
// fresh and pooled storage.
func (b *ljBox) init(seed uint64) {
	b.l = math.Cbrt(float64(b.n) / 0.8442)
	b.rc2 = 2.5 * 2.5
	b.dt = 0.005
	// Cells are sized to the list radius (cutoff + skin) so one-cell
	// adjacency covers every listable pair.
	b.cellW = 2.5 + ljSkin
	b.nc = 0
	b.nlValid = false
	side := int(math.Ceil(math.Cbrt(float64(b.n))))
	spacing := b.l / float64(side)
	rng := hw.NewRand(seed*2654435761 + 1)
	i := 0
	for ix := 0; ix < side && i < b.n; ix++ {
		for iy := 0; iy < side && i < b.n; iy++ {
			for iz := 0; iz < side && i < b.n; iz++ {
				b.x[i] = (float64(ix) + 0.5) * spacing
				b.y[i] = (float64(iy) + 0.5) * spacing
				b.z[i] = (float64(iz) + 0.5) * spacing
				b.vx[i] = (float64(rng.Next()%1000)/1000 - 0.5) * 0.1
				b.vy[i] = (float64(rng.Next()%1000)/1000 - 0.5) * 0.1
				b.vz[i] = (float64(rng.Next()%1000)/1000 - 0.5) * 0.1
				i++
			}
		}
	}
}

// cellIndex returns atom i's flat cell number.
func (b *ljBox) cellIndex(i int) int {
	cx := int(b.x[i] / b.cellW)
	cy := int(b.y[i] / b.cellW)
	cz := int(b.z[i] / b.cellW)
	return (cz*b.nc+cy)*b.nc + cx
}

// buildCells rebins atoms into cutoff-sized cells with a counting sort.
// Atom ids stay ascending within each cell, so pair enumeration order is
// deterministic (the old map-backed index iterated cells in random order).
//
//covirt:hot
func (b *ljBox) buildCells() {
	b.nc = int(b.l/b.cellW) + 1
	ncells := b.nc * b.nc * b.nc
	if cap(b.cellStart) < ncells+1 {
		b.cellStart = make([]int32, ncells+1)
		b.cellCur = make([]int32, ncells)
		b.cellAtoms = make([]int32, b.n)
	}
	start := b.cellStart[:ncells+1]
	cur := b.cellCur[:ncells]
	for c := range start {
		start[c] = 0
	}
	for i := 0; i < b.n; i++ {
		start[b.cellIndex(i)+1]++
	}
	for c := 0; c < ncells; c++ {
		start[c+1] += start[c]
		cur[c] = start[c]
	}
	for i := 0; i < b.n; i++ {
		c := b.cellIndex(i)
		b.cellAtoms[cur[c]] = int32(i)
		cur[c]++
	}
	b.cellStart = start
	b.cellCur = cur
}

// minImage applies the minimum-image convention.
func (b *ljBox) minImage(d float64) float64 {
	if d > b.l/2 {
		return d - b.l
	}
	if d < -b.l/2 {
		return d + b.l
	}
	return d
}

// forwardCellOffsets is the half stencil: of each {δ, -δ} pair of the 26
// nonzero cell offsets, exactly one appears here, so enumerating a cell
// against its 13 forward neighbours (plus itself) visits every unordered
// cell pair once.
var forwardCellOffsets = [13][3]int{
	{1, 0, 0}, {-1, 1, 0}, {0, 1, 0}, {1, 1, 0},
	{-1, -1, 1}, {0, -1, 1}, {1, -1, 1}, {-1, 0, 1},
	{0, 0, 1}, {1, 0, 1}, {-1, 1, 1}, {0, 1, 1}, {1, 1, 1},
}

// computeForces evaluates LJ forces via the Verlet pair list, rebuilding
// it only when an atom has drifted past half the skin.
//
//covirt:hot
func (b *ljBox) computeForces() {
	for i := 0; i < b.n; i++ {
		b.fx[i], b.fy[i], b.fz[i] = 0, 0, 0
	}
	if b.ensureNeighbors() {
		b.forcesFromList()
	} else {
		b.forcesLegacyWrap()
	}
}

// ensureNeighbors returns true with a current Verlet pair list, rebuilding
// it when stale. It returns false for boxes too small for distinct
// wrapped cells (nc < 3); callers fall back to the legacy enumeration.
func (b *ljBox) ensureNeighbors() bool {
	if int(b.l/b.cellW)+1 < 3 {
		return false
	}
	if b.nlValid && !b.drifted() {
		return true
	}
	b.buildNeighbors()
	return true
}

// drifted reports whether any atom has moved more than ljSkin/2 since the
// last list build — the exactness bound for reusing the list.
func (b *ljBox) drifted() bool {
	lim := ljSkin * ljSkin / 4
	for i := 0; i < b.n; i++ {
		dx := b.minImage(b.x[i] - b.nlx[i])
		dy := b.minImage(b.y[i] - b.nly[i])
		dz := b.minImage(b.z[i] - b.nlz[i])
		if dx*dx+dy*dy+dz*dz > lim {
			return true
		}
	}
	return false
}

// buildNeighbors rebins the atoms and regenerates the pair list: each
// unordered pair within rc+ljSkin appears exactly once, enumerated
// within-cell by index order then against the 13 forward neighbour cells
// (valid when nc >= 3, where every wrapped offset maps to a distinct
// cell). The pair order is deterministic, so replaying the list gives
// reproducible force summation. Growth is amortized: the slice keeps its
// capacity across rebuilds and across pooled box reuse.
func (b *ljBox) buildNeighbors() {
	b.buildCells()
	rl := 2.5 + ljSkin
	rl2 := rl * rl
	if len(b.nlx) != b.n {
		b.nlx = make([]float64, b.n)
		b.nly = make([]float64, b.n)
		b.nlz = make([]float64, b.n)
	}
	copy(b.nlx, b.x)
	copy(b.nly, b.y)
	copy(b.nlz, b.z)
	pairs := b.nlPairs[:0]
	nc := b.nc
	for cz := 0; cz < nc; cz++ {
		for cy := 0; cy < nc; cy++ {
			for cx := 0; cx < nc; cx++ {
				c := (cz*nc+cy)*nc + cx
				cell := b.cellAtoms[b.cellStart[c]:b.cellStart[c+1]]
				for ai := 0; ai < len(cell); ai++ {
					for aj := ai + 1; aj < len(cell); aj++ {
						pairs = b.appendIfClose(pairs, cell[ai], cell[aj], rl2)
					}
				}
				for _, d := range &forwardCellOffsets {
					nx, ny, nz := cx+d[0], cy+d[1], cz+d[2]
					if nx < 0 {
						nx += nc
					} else if nx >= nc {
						nx -= nc
					}
					if ny < 0 {
						ny += nc
					} else if ny >= nc {
						ny -= nc
					}
					if nz < 0 {
						nz += nc
					} else if nz >= nc {
						nz -= nc
					}
					neigh := b.cellAtoms[b.cellStart[(nz*nc+ny)*nc+nx]:b.cellStart[(nz*nc+ny)*nc+nx+1]]
					for _, i := range cell {
						for _, j := range neigh {
							pairs = b.appendIfClose(pairs, i, j, rl2)
						}
					}
				}
			}
		}
	}
	b.nlPairs = pairs
	b.nlValid = true
}

// appendIfClose appends the pair when it lies within the list radius.
func (b *ljBox) appendIfClose(pairs []int32, i, j int32, rl2 float64) []int32 {
	ddx := b.minImage(b.x[i] - b.x[j])
	ddy := b.minImage(b.y[i] - b.y[j])
	ddz := b.minImage(b.z[i] - b.z[j])
	if ddx*ddx+ddy*ddy+ddz*ddz <= rl2 {
		pairs = append(pairs, i, j)
	}
	return pairs
}

// forcesFromList replays the Verlet pair list; pairs beyond the cutoff
// (listed because of the skin) are rejected inside pairForce.
//
//covirt:hot
func (b *ljBox) forcesFromList() {
	p := b.nlPairs
	for k := 0; k < len(p); k += 2 {
		b.pairForce(int(p[k]), int(p[k+1]))
	}
}

// forcesLegacyWrap is the full 27-offset enumeration with a j<=i skip,
// kept for tiny boxes (nc < 3) where wrapped offsets alias and the half
// stencil would double-count pairs.
func (b *ljBox) forcesLegacyWrap() {
	maxc := b.nc
	ncells := maxc * maxc * maxc
	for c := 0; c < ncells; c++ {
		cx := c % maxc
		cy := (c / maxc) % maxc
		cz := c / (maxc * maxc)
		atoms := b.cellAtoms[b.cellStart[c]:b.cellStart[c+1]]
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					n2 := (mod(cz+dz, maxc)*maxc+mod(cy+dy, maxc))*maxc + mod(cx+dx, maxc)
					neigh := b.cellAtoms[b.cellStart[n2]:b.cellStart[n2+1]]
					for _, i := range atoms {
						for _, j := range neigh {
							if j <= i {
								continue
							}
							b.pairForce(int(i), int(j))
						}
					}
				}
			}
		}
	}
}

// pairForce accumulates the LJ force between atoms i and j (antisymmetric,
// so caller-side orientation is irrelevant).
func (b *ljBox) pairForce(i, j int) {
	ddx := b.minImage(b.x[i] - b.x[j])
	ddy := b.minImage(b.y[i] - b.y[j])
	ddz := b.minImage(b.z[i] - b.z[j])
	r2 := ddx*ddx + ddy*ddy + ddz*ddz
	if r2 > b.rc2 || r2 == 0 {
		return
	}
	inv2 := 1 / r2
	inv6 := inv2 * inv2 * inv2
	f := 24 * inv2 * inv6 * (2*inv6 - 1)
	b.fx[i] += f * ddx
	b.fy[i] += f * ddy
	b.fz[i] += f * ddz
	b.fx[j] -= f * ddx
	b.fy[j] -= f * ddy
	b.fz[j] -= f * ddz
}

// pairPE returns the LJ pair potential between atoms i and j (0 beyond
// the cutoff).
func (b *ljBox) pairPE(i, j int) float64 {
	ddx := b.minImage(b.x[i] - b.x[j])
	ddy := b.minImage(b.y[i] - b.y[j])
	ddz := b.minImage(b.z[i] - b.z[j])
	r2 := ddx*ddx + ddy*ddy + ddz*ddz
	if r2 > b.rc2 || r2 == 0 {
		return 0
	}
	inv6 := 1 / (r2 * r2 * r2)
	return 4 * inv6 * (inv6 - 1)
}

func mod(a, m int) int { return ((a % m) + m) % m }

// integrate advances one (leapfrog-ish) step with periodic wrapping.
//
//covirt:hot
func (b *ljBox) integrate() {
	for i := 0; i < b.n; i++ {
		b.vx[i] += b.fx[i] * b.dt
		b.vy[i] += b.fy[i] * b.dt
		b.vz[i] += b.fz[i] * b.dt
		b.x[i] = wrap(b.x[i]+b.vx[i]*b.dt, b.l)
		b.y[i] = wrap(b.y[i]+b.vy[i]*b.dt, b.l)
		b.z[i] = wrap(b.z[i]+b.vz[i]*b.dt, b.l)
	}
}

func wrap(v, l float64) float64 {
	for v < 0 {
		v += l
	}
	for v >= l {
		v -= l
	}
	return v
}

// kineticEnergy returns the system kinetic energy.
func (b *ljBox) kineticEnergy() float64 {
	ke := 0.0
	for i := 0; i < b.n; i++ {
		ke += 0.5 * (b.vx[i]*b.vx[i] + b.vy[i]*b.vy[i] + b.vz[i]*b.vz[i])
	}
	return ke
}

// potentialEnergy sums the LJ pair potential over the same pair set the
// force loop sees, so the conserved quantity matches the simulated
// dynamics. The Verlet list is refreshed through the same drift criterion
// as the force pass; tiny boxes fall back to the all-pairs sum.
//
//covirt:hot
func (b *ljBox) potentialEnergy() float64 {
	if b.ensureNeighbors() {
		pe := 0.0
		p := b.nlPairs
		for k := 0; k < len(p); k += 2 {
			pe += b.pairPE(int(p[k]), int(p[k+1]))
		}
		return pe
	}
	pe := 0.0
	for i := 0; i < b.n; i++ {
		for j := i + 1; j < b.n; j++ {
			pe += b.pairPE(i, j)
		}
	}
	return pe
}

// totalEnergy returns KE + PE.
func (b *ljBox) totalEnergy() float64 { return b.kineticEnergy() + b.potentialEnergy() }

// averageNeighbors estimates the neighbor count within the cutoff.
func (b *ljBox) averageNeighbors() float64 {
	// Density * cutoff-sphere volume.
	rho := float64(b.n) / (b.l * b.l * b.l)
	return rho * 4.0 / 3.0 * math.Pi * 2.5 * 2.5 * 2.5
}
