package workloads

import (
	"math"

	"covirt/internal/hw"
	"covirt/internal/kitten"
)

// stencil27 models the HPCG-style symmetric positive-definite problem: a
// 27-point stencil discretization on an nx x ny x nz grid with 26 on the
// diagonal and -1 off-diagonal. The matrix is implicit (regenerated from
// the stencil), matching how proxy apps avoid storing what they can
// recompute — but the *memory system* sees the CSR-equivalent traffic via
// the charge helpers below.
type stencil27 struct {
	nx, ny, nz int
	// offs holds the 26 linear offsets of the stencil neighbours in
	// dk/dj/di order, computed once at construction so the sweep kernels
	// never allocate.
	offs [26]int
	// inmask[row] caches interior(row): the sweep dispatch loops consult it
	// per boundary-band row, and the three divisions of the coordinate
	// derivation dominate that check. One setup pass trades them for a load.
	inmask []bool
}

// newStencil27 builds the stencil with its neighbour-offset table and
// interior mask filled.
func newStencil27(nx, ny, nz int) stencil27 {
	s := stencil27{nx: nx, ny: ny, nz: nz}
	i := 0
	for dk := -1; dk <= 1; dk++ {
		for dj := -1; dj <= 1; dj++ {
			for di := -1; di <= 1; di++ {
				if di == 0 && dj == 0 && dk == 0 {
					continue
				}
				s.offs[i] = (dk*ny+dj)*nx + di
				i++
			}
		}
	}
	s.inmask = make([]bool, nx*ny*nz)
	for k := 1; k < nz-1; k++ {
		for j := 1; j < ny-1; j++ {
			row := (k*ny+j)*nx + 1
			for i := 1; i < nx-1; i++ {
				s.inmask[row] = true
				row++
			}
		}
	}
	return s
}

func (s *stencil27) rows() int { return s.nx * s.ny * s.nz }

// idx maps grid coordinates to a row.
func (s *stencil27) idx(i, j, k int) int { return (k*s.ny+j)*s.nx + i }

// interior reports whether the row is away from every grid boundary, so
// all 26 neighbours exist and linear offsets are valid.
func (s *stencil27) interior(row int) bool { return s.inmask[row] }

// spmv computes dst = A*src for rows in [lo, hi) — real arithmetic. On an
// interior row, every row until the end of its x-line is also interior
// (only i advances), so the kernel runs the offset-only inner loop across
// the whole line without re-deriving (i,j,k) per row.
//
//covirt:hot
func (s *stencil27) spmv(dst, src []float64, lo, hi int) {
	offs := &s.offs
	for row := lo; row < hi; {
		if !s.interior(row) {
			s.spmvSlow(dst, src, row)
			row++
			continue
		}
		end := row - row%s.nx + s.nx - 1 // last interior i in this x-line, exclusive
		if end > hi {
			end = hi
		}
		for ; row < end; row++ {
			sum := 26.0 * src[row]
			for _, o := range offs {
				sum -= src[row+o]
			}
			dst[row] = sum
		}
	}
}

// spmvSlow handles one boundary row with explicit neighbour-existence
// checks, in the same dk/dj/di enumeration order as the offset table.
func (s *stencil27) spmvSlow(dst, src []float64, row int) {
	sum := 26.0 * src[row]
	i := row % s.nx
	j := (row / s.nx) % s.ny
	k := row / (s.nx * s.ny)
	// Hoist the per-axis bounds: di's range depends only on i, and the
	// nj/nk checks move out of the innermost loop. Neighbour visit order
	// (dk, dj, di ascending) matches the naive triple loop exactly, so the
	// floating-point summation order — and the result bits — are unchanged.
	diLo, diHi := -1, 1
	if i == 0 {
		diLo = 0
	}
	if i == s.nx-1 {
		diHi = 0
	}
	for dk := -1; dk <= 1; dk++ {
		nk := k + dk
		if nk < 0 || nk >= s.nz {
			continue
		}
		for dj := -1; dj <= 1; dj++ {
			nj := j + dj
			if nj < 0 || nj >= s.ny {
				continue
			}
			base := (nk*s.ny+nj)*s.nx + i
			for di := diLo; di <= diHi; di++ {
				if di == 0 && dj == 0 && dk == 0 {
					continue
				}
				sum -= src[base+di]
			}
		}
	}
	dst[row] = sum
}

// symgs performs one block-local symmetric Gauss-Seidel sweep (forward
// then backward) on rows [lo, hi): HPCG's preconditioner, restricted to
// the rank's own block so parallel ranks never read each other's
// in-flight values (block-Jacobi across ranks, Gauss-Seidel within — the
// standard race-free parallel formulation). Rows that are grid-interior
// AND whose whole neighbourhood lies inside the block take the
// offset-only path, batched per x-line like spmv.
//
//covirt:hot
func (s *stencil27) symgs(z, r []float64, lo, hi int) {
	offs := &s.offs
	// The fast path needs row+offs[0] >= lo and row+offs[25] < hi (offs is
	// sorted by construction: offs[0] most negative, offs[25] most
	// positive).
	fastLo := lo - s.offs[0]
	fastHi := hi - s.offs[25]
	for row := lo; row < hi; {
		if row < fastLo || row >= fastHi || !s.interior(row) {
			if s.interior(row) {
				s.sweepEdge(z, r, row, lo, hi)
			} else {
				s.sweepSlow(z, r, row, lo, hi)
			}
			row++
			continue
		}
		end := row - row%s.nx + s.nx - 1
		if end > hi {
			end = hi
		}
		if end > fastHi {
			end = fastHi
		}
		for ; row < end; row++ {
			sum := r[row]
			for _, o := range offs {
				sum += z[row+o]
			}
			z[row] = sum / 26.0
		}
	}
	for row := hi - 1; row >= lo; {
		if row < fastLo || row >= fastHi || !s.interior(row) {
			if s.interior(row) {
				s.sweepEdge(z, r, row, lo, hi)
			} else {
				s.sweepSlow(z, r, row, lo, hi)
			}
			row--
			continue
		}
		start := row - row%s.nx + 1 // first interior i in this x-line
		if start < lo {
			start = lo
		}
		if start < fastLo {
			start = fastLo
		}
		for ; row >= start; row-- {
			sum := r[row]
			for _, o := range offs {
				sum += z[row+o]
			}
			z[row] = sum / 26.0
		}
	}
}

// sweepEdge relaxes one grid-interior row whose neighbourhood crosses the
// block boundary [lo, hi): every offset lands inside the grid, so only
// the block clamp applies (out-of-block neighbours are treated as zero).
// The offset table is built in dk/dj/di order, so the summation order —
// and the result bits — match sweepSlow exactly. Block-edge bands are a
// large share of small per-rank blocks, which is why this avoids
// sweepSlow's per-row coordinate derivation.
func (s *stencil27) sweepEdge(z, r []float64, row, lo, hi int) {
	sum := r[row]
	for _, o := range s.offs {
		if nrow := row + o; nrow >= lo && nrow < hi {
			sum += z[nrow]
		}
	}
	z[row] = sum / 26.0
}

// sweepSlow relaxes one row with explicit bounds and block checks
// (out-of-block neighbours are treated as zero).
func (s *stencil27) sweepSlow(z, r []float64, row, lo, hi int) {
	sum := r[row]
	i := row % s.nx
	j := (row / s.nx) % s.ny
	k := row / (s.nx * s.ny)
	// Same bounds hoisting as spmvSlow; visit order and hence summation
	// order is identical to the naive triple loop.
	diLo, diHi := -1, 1
	if i == 0 {
		diLo = 0
	}
	if i == s.nx-1 {
		diHi = 0
	}
	for dk := -1; dk <= 1; dk++ {
		nk := k + dk
		if nk < 0 || nk >= s.nz {
			continue
		}
		for dj := -1; dj <= 1; dj++ {
			nj := j + dj
			if nj < 0 || nj >= s.ny {
				continue
			}
			base := (nk*s.ny+nj)*s.nx + i
			for di := diLo; di <= diHi; di++ {
				if di == 0 && dj == 0 && dk == 0 {
					continue
				}
				nrow := base + di
				if nrow < lo || nrow >= hi {
					continue // out-of-block: treated as zero
				}
				sum += z[nrow]
			}
		}
	}
	z[row] = sum / 26.0
}

// sparseCharger charges the memory-system footprint of sparse kernels on a
// rank's CPU: CSR-equivalent matrix streaming, vector streaming, and a
// fraction of truly random gathers (cache-missing indirect accesses).
type sparseCharger struct {
	env     *kitten.Env
	matrix  hw.Extent // simulated CSR storage for this rank's rows
	vec     hw.Extent // simulated local vector storage
	remote  hw.Extent // neighbour-rank vector storage on the other node
	scatter hw.Extent // large poor-locality working set (e.g. MG hierarchy)
	rows    uint64
	rng     hw.Rand

	// gatherMissFrac*rows random DRAM accesses per SpMV-equivalent model
	// the indirect x-gathers that fall out of cache. When the enclave
	// spans NUMA nodes, half of them target the remote node's portion of
	// the vector (halo/boundary gathers). When scatterBytes is set, the
	// local share targets the scatter extent, whose size exceeds TLB
	// reach — HPCG's multigrid hierarchy behaves this way, which is what
	// gives it the small but persistent translation overhead the paper
	// reports.
	gatherMissFrac float64
	scatterBytes   uint64

	// misses is the per-SpMV random-gather count; gatherBuf is the
	// reusable address buffer the span-routed path fills and hands to
	// Env.AccessGather in one call.
	misses    uint64
	gatherBuf []uint64

	// vecMod/remMod/scatMod are fixed-divisor reciprocals for the
	// per-target word counts (extent size / 8). The extents are fixed at
	// carve-out time, so fillGatherAddrs reduces each RNG draw with a
	// multiply instead of a per-element DIV; hw.FixedDiv.Mod is exact, so
	// the gather addresses are bit-identical to the modulo form. Zero for
	// targets that were never allocated.
	vecMod, remMod, scatMod hw.FixedDiv
}

// matrixBytesPerRow is the CSR traffic per 27-entry row (27 values + 27
// column indices + row pointer).
const matrixBytesPerRow = 27*12 + 8

// newSparseCharger sizes the simulated storage for a rank owning `rows` of
// a problem with `totalRows`. gatherFrac and scatterBytes configure the
// random-gather model (see the field docs); seed displaces the gather
// stream (0 = legacy fixed stream). ord serializes the carve-out in rank
// order so concurrent ranks see a scheduling-independent layout.
func newSparseCharger(e *kitten.Env, ord *RankOrder, rank, rows, totalRows int, gatherFrac float64, scatterBytes, seed uint64) *sparseCharger {
	c := &sparseCharger{
		env:            e,
		rows:           uint64(rows),
		rng:            hw.NewRand(0x9E3779B97F4A7C15 ^ seed ^ uint64(rank+1)),
		gatherMissFrac: gatherFrac,
		scatterBytes:   scatterBytes,
	}
	c.misses = uint64(float64(c.rows*27) * c.gatherMissFrac)
	c.gatherBuf = make([]uint64, c.misses)
	ord.Do(rank, func() {
		c.matrix = allocSpread(e, hw.AlignUp(uint64(rows)*matrixBytesPerRow, hw.PageSize4K))
		c.vec = allocSpread(e, hw.AlignUp(uint64(totalRows)*8, hw.PageSize4K))
		if scatterBytes > 0 {
			c.scatter = allocSpread(e, scatterBytes)
		}
		for _, node := range e.K.Nodes() {
			if node != e.CPU.Node {
				c.remote = e.Alloc(node, hw.AlignUp(uint64(totalRows)*8, hw.PageSize4K))
				break
			}
		}
	})
	// The extents are assigned inside the ordered carve-out above, so the
	// reciprocals can only be derived here, after ord.Do has run it.
	if w := c.vec.Size / 8; w > 0 {
		c.vecMod = hw.NewFixedDiv(w)
	}
	if w := c.remote.Size / 8; w > 0 {
		c.remMod = hw.NewFixedDiv(w)
	}
	if w := c.scatter.Size / 8; w > 0 {
		c.scatMod = hw.NewFixedDiv(w)
	}
	return c
}

// free releases the simulated storage.
func (c *sparseCharger) free() {
	c.env.Free(c.matrix)
	c.env.Free(c.vec)
	if c.remote.Size > 0 {
		c.env.Free(c.remote)
	}
	if c.scatter.Size > 0 {
		c.env.Free(c.scatter)
	}
}

// gatherTarget picks the extent a random gather hits: alternating local
// and remote when the partition spans NUMA nodes; the local share goes to
// the scatter extent when one is configured.
func (c *sparseCharger) gatherTarget(i uint64) hw.Extent {
	if c.remote.Size > 0 && i%2 == 1 {
		return c.remote
	}
	if c.scatter.Size > 0 {
		return c.scatter
	}
	return c.vec
}

// fillGatherAddrs generates one SpMV's worth of random gather addresses
// into buf, advancing the charger's RNG exactly as the element-wise loop
// does.
//
//covirt:hot
func (c *sparseCharger) fillGatherAddrs(buf []uint64) {
	// The per-target word counts are extent sizes fixed at carve-out, so
	// each draw is reduced with the precomputed reciprocal (hw.FixedDiv)
	// instead of a per-element DIV. Mod is exact, so the offsets match the
	// element-wise modulo loop bit for bit.
	haveRem := c.remMod.D() > 0
	haveScat := c.scatMod.D() > 0
	for m := range buf {
		start, mod := c.vec.Start, c.vecMod
		if haveRem && uint64(m)%2 == 1 {
			start, mod = c.remote.Start, c.remMod
		} else if haveScat {
			start, mod = c.scatter.Start, c.scatMod
		}
		buf[m] = start + mod.Mod(c.rng.Next())*8
	}
}

// chargeSpMV charges one sparse matrix-vector multiply over the rank's rows.
//
//covirt:hot
func (c *sparseCharger) chargeSpMV() {
	e := c.env
	// Stream the matrix (values + indices) and the destination vector.
	e.Stream(c.matrix.Start, c.rows*matrixBytesPerRow, false)
	e.Stream(c.vec.Start, c.rows*8, true)
	// Source vector: mostly streaming reuse, plus the cache-missing
	// indirect gathers.
	e.Stream(c.vec.Start, c.rows*8, false)
	if spanRouting() {
		c.fillGatherAddrs(c.gatherBuf)
		e.AccessGather(c.gatherBuf, 0, false, hw.AccessDRAM)
	} else {
		for m := uint64(0); m < c.misses; m++ {
			tgt := c.gatherTarget(m)
			off := c.rng.Next() % (tgt.Size / 8)
			e.Access(tgt.Start+off*8, false, hw.AccessDRAM)
		}
	}
	// 2 flops per nonzero.
	e.Compute(c.rows * 27 * 2)
}

// chargeSymGS charges one symmetric Gauss-Seidel sweep (≈2x SpMV traffic).
func (c *sparseCharger) chargeSymGS() {
	c.chargeSpMV()
	c.chargeSpMV()
}

// chargeAXPY charges y = a*x + y over the rank's rows.
func (c *sparseCharger) chargeAXPY() {
	e := c.env
	e.Stream(c.vec.Start, c.rows*8, false)
	e.Stream(c.vec.Start, c.rows*8, true)
	e.Compute(c.rows * 2)
}

// chargeDot charges a local dot product over the rank's rows.
func (c *sparseCharger) chargeDot() {
	e := c.env
	e.Stream(c.vec.Start, c.rows*8*2, false)
	e.Compute(c.rows * 2)
}

// cgSolver runs preconditioned (optional) conjugate gradients on the
// stencil problem across `threads` guest ranks with real arithmetic and
// charged memory traffic, returning the final relative residual and
// iteration count.
type cgSolver struct {
	s       stencil27
	precond bool
	iters   int
	// gatherFrac and scatterBytes configure the sparseCharger (see its
	// field docs); zero values select MiniFE-like cache-friendly gathers.
	gatherFrac   float64
	scatterBytes uint64
	// seed displaces the charger's gather streams (0 = legacy fixed).
	seed uint64
	// st is the pooled vector set, checked out by makeRankFn and returned
	// by release after the solve.
	st *cgState
}

// release returns the solver's vector set to the arena pool. Callers must
// invoke it after the parallel region has completed.
func (cg *cgSolver) release() {
	if cg.st != nil {
		putCGState(cg.st)
		cg.st = nil
	}
}

// run executes the solve; fn is invoked per rank by runParallel's caller.
func (cg *cgSolver) makeRankFn(threads int, finalRes *float64) func(e *kitten.Env, rank int) error {
	n := cg.s.rows()
	st := getCGState(n) // x and z arrive zeroed; the rest are overwritten below
	cg.st = st
	x, b, r, p, ap, z := st.x, st.b, st.r, st.p, st.ap, st.z

	// b = A * ones, so the exact solution is all-ones.
	ones := st.ones
	for i := range ones {
		ones[i] = 1
	}
	cg.s.spmv(b, ones, 0, n)

	bar := NewBarrier(threads)
	ord := NewRankOrder(threads)
	redRR := NewAllreduce(threads)
	redPAp := NewAllreduce(threads)
	var bNorm float64
	for _, v := range b {
		bNorm += v * v
	}
	bNorm = math.Sqrt(bNorm)

	// Shared scalar state (rank 0 publishes between barriers).
	var alpha, beta, rr float64

	return func(e *kitten.Env, rank int) error {
		lo := rank * n / threads
		hi := (rank + 1) * n / threads
		gf := cg.gatherFrac
		if gf == 0 {
			gf = 0.02
		}
		ch := newSparseCharger(e, ord, rank, hi-lo, n, gf, cg.scatterBytes, cg.seed)
		defer ch.free()

		// r = b (x = 0), z = precond(r) or r, p = z.
		local := 0.0
		for i := lo; i < hi; i++ {
			r[i] = b[i]
		}
		if cg.precond {
			cg.s.symgs(z, r, lo, hi)
			ch.chargeSymGS()
		} else {
			copy(z[lo:hi], r[lo:hi])
			ch.chargeAXPY()
		}
		for i := lo; i < hi; i++ {
			p[i] = z[i]
			local += r[i] * z[i]
		}
		ch.chargeDot()
		rr0 := redRR.Sum(e, rank, local)
		if rank == 0 {
			rr = rr0
		}
		bar.Wait(e, rank)

		for it := 0; it < cg.iters; it++ {
			cg.s.spmv(ap, p, lo, hi)
			ch.chargeSpMV()
			bar.Wait(e, rank) // halo: neighbours read our p rows
			local = 0
			for i := lo; i < hi; i++ {
				local += p[i] * ap[i]
			}
			ch.chargeDot()
			pap := redPAp.Sum(e, rank, local)
			if rank == 0 {
				alpha = rr / pap
			}
			bar.Wait(e, rank)
			for i := lo; i < hi; i++ {
				x[i] += alpha * p[i]
				r[i] -= alpha * ap[i]
			}
			ch.chargeAXPY()
			ch.chargeAXPY()
			if cg.precond {
				for i := lo; i < hi; i++ {
					z[i] = 0
				}
				cg.s.symgs(z, r, lo, hi)
				ch.chargeSymGS()
			} else {
				copy(z[lo:hi], r[lo:hi])
			}
			local = 0
			for i := lo; i < hi; i++ {
				local += r[i] * z[i]
			}
			ch.chargeDot()
			rrNew := redRR.Sum(e, rank, local)
			if rank == 0 {
				beta = rrNew / rr
				rr = rrNew
			}
			bar.Wait(e, rank)
			for i := lo; i < hi; i++ {
				p[i] = z[i] + beta*p[i]
			}
			ch.chargeAXPY()
			bar.Wait(e, rank)
		}

		if rank == 0 && finalRes != nil {
			// True residual ||b - Ax|| / ||b||.
			tmp := st.tmp
			cg.s.spmv(tmp, x, 0, n)
			sum := 0.0
			for i := range tmp {
				d := b[i] - tmp[i]
				sum += d * d
			}
			*finalRes = math.Sqrt(sum) / bNorm
		}
		return nil
	}
}
