package workloads

import (
	"testing"

	"covirt/internal/hw"
)

// gatherCharger builds a sparseCharger with synthetic extents, bypassing
// the Env carve-out: fillGatherAddrs only reads the extents, the RNG, and
// the precomputed reciprocals, so address generation is testable (and
// benchmarkable) without a simulated machine.
func gatherCharger(vecW, remW, scatW uint64, seed uint64) *sparseCharger {
	c := &sparseCharger{
		vec: hw.Extent{Start: 0x1000, Size: vecW * 8},
		rng: hw.NewRand(seed),
	}
	c.vecMod = hw.NewFixedDiv(vecW)
	if remW > 0 {
		c.remote = hw.Extent{Start: 0x40000000, Size: remW * 8}
		c.remMod = hw.NewFixedDiv(remW)
	}
	if scatW > 0 {
		c.scatter = hw.Extent{Start: 0x80000000, Size: scatW * 8}
		c.scatMod = hw.NewFixedDiv(scatW)
	}
	return c
}

// fillGatherAddrsModulo is the reference element-wise form fillGatherAddrs
// replaced: per-element hardware modulo, same target-selection policy,
// same RNG consumption. The equivalence test pins the reciprocal path to
// it bit for bit.
func (c *sparseCharger) fillGatherAddrsModulo(buf []uint64) {
	vecW := c.vec.Size / 8
	remW := c.remote.Size / 8
	scatW := c.scatter.Size / 8
	for m := range buf {
		start, words := c.vec.Start, vecW
		if remW > 0 && uint64(m)%2 == 1 {
			start, words = c.remote.Start, remW
		} else if scatW > 0 {
			start, words = c.scatter.Start, scatW
		}
		buf[m] = start + (c.rng.Next()%words)*8
	}
}

// TestFillGatherAddrsReciprocalEquivalence drives the reciprocal and
// modulo forms from identical RNG states across the three target
// configurations (local-only, +scatter, +remote alternation) with
// non-power-of-two word counts, requiring identical address streams.
func TestFillGatherAddrsReciprocalEquivalence(t *testing.T) {
	cases := []struct {
		name             string
		vecW, remW, scat uint64
	}{
		{"local-only", 13825, 0, 0},
		{"scatter", 13825, 0, 1<<21 + 7},
		{"remote", 13825, 13824, 0},
		{"remote-scatter", 997, 1031, 1<<21 + 7},
		{"one-word", 1, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				a := gatherCharger(tc.vecW, tc.remW, tc.scat, seed)
				b := gatherCharger(tc.vecW, tc.remW, tc.scat, seed)
				got := make([]uint64, 4096)
				want := make([]uint64, 4096)
				a.fillGatherAddrs(got)
				b.fillGatherAddrsModulo(want)
				if a.rng != b.rng {
					t.Fatalf("seed %d: RNG states diverge after fill", seed)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed %d: addr[%d] = %#x, modulo form %#x", seed, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// The benchmark pair quantifies the per-element DIV the reciprocal form
// removes; bench.sh snapshots both so the delta lands in the committed
// BENCH artifact.

func benchFill(b *testing.B, fill func(c *sparseCharger, buf []uint64)) {
	c := gatherCharger(13825, 13824, 1<<21+7, 1)
	buf := make([]uint64, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill(c, buf)
	}
	b.SetBytes(int64(len(buf) * 8))
}

func BenchmarkFillGatherAddrs(b *testing.B) {
	benchFill(b, (*sparseCharger).fillGatherAddrs)
}

func BenchmarkFillGatherAddrsModulo(b *testing.B) {
	benchFill(b, (*sparseCharger).fillGatherAddrsModulo)
}
