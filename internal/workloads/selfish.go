package workloads

import (
	"covirt/internal/kitten"
)

// Detour is one interruption detected by the Selfish Detour benchmark: the
// loop observed a timestamp gap larger than the expected iteration time.
type Detour struct {
	// AtCycle is when the detour was observed, relative to loop start.
	AtCycle uint64
	// Magnitude is the stolen time in cycles.
	Magnitude uint64
}

// Selfish is the Selfish Detour noise benchmark (Beckman et al.): a tight
// loop timestamps itself and records every iteration that took notably
// longer than the minimum, exposing OS interference events.
type Selfish struct {
	// DurationCycles is how long the detection loop runs.
	DurationCycles uint64
	// ThresholdMult flags iterations slower than ThresholdMult x the
	// calibrated minimum (the benchmark's default factor is ~9x, we use a
	// tighter factor because the simulated loop is perfectly regular).
	ThresholdMult uint64

	// Detours holds the events from the last run.
	Detours []Detour
}

// Name implements Runner.
func (s *Selfish) Name() string { return "selfish-detour" }

// Run implements Runner; the benchmark is single-core by design.
func (s *Selfish) Run(k *kitten.Kernel, threads int) (*Result, error) {
	dur := s.DurationCycles
	if dur == 0 {
		dur = 400_000_000 // a couple of timer periods at the default tick
	}
	mult := s.ThresholdMult
	if mult == 0 {
		mult = 3
	}
	// Reuse the event buffer across runs; the append in the timing loop is
	// the benchmark's own measurement semantics (a detour is rare), but the
	// buffer behind it should not regrow every repetition.
	if s.Detours == nil {
		s.Detours = make([]Detour, 0, 512)
	}
	s.Detours = s.Detours[:0]
	res, err := runParallel(k, s.Name(), 1, func(e *kitten.Env, rank int) error {
		// Calibrate the loop: minimum iteration time over a warmup run
		// (the benchmark's approach — the minimum is the interference-free
		// iteration cost).
		iter := ^uint64(0)
		prev := e.TSC()
		for i := 0; i < 256; i++ {
			e.Compute(1)
			now := e.TSC()
			if d := now - prev; d < iter {
				iter = d
			}
			prev = now
		}
		threshold := iter * mult

		start := prev
		var lost uint64
		for prev-start < dur {
			e.Compute(1)
			now := e.TSC()
			if d := now - prev; d > threshold {
				s.Detours = append(s.Detours, Detour{AtCycle: prev - start, Magnitude: d - iter})
				lost += d - iter
			}
			prev = now
		}
		_ = lost
		return nil
	})
	if err != nil {
		return nil, err
	}
	var lost, max uint64
	for _, d := range s.Detours {
		lost += d.Magnitude
		if d.Magnitude > max {
			max = d.Magnitude
		}
	}
	res.Metrics["detours"] = float64(len(s.Detours))
	res.Metrics["lost_cycles"] = float64(lost)
	res.Metrics["max_detour_cycles"] = float64(max)
	res.Metrics["lost_fraction"] = float64(lost) / float64(dur)
	return res, nil
}
