package workloads_test

import (
	"math"
	"testing"

	"covirt/internal/harness"
	"covirt/internal/kitten"
	"covirt/internal/workloads"
)

// node boots a fresh evaluation node for one workload run.
func node(t *testing.T, cfg harness.Config, layout harness.Layout) *harness.Node {
	t.Helper()
	n, err := harness.NewNode(cfg, layout, harness.NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func run(t *testing.T, w workloads.Runner, cfg harness.Config, layout harness.Layout) *workloads.Result {
	t.Helper()
	n := node(t, cfg, layout)
	res, err := w.Run(n.K, layout.Cores)
	if err != nil {
		t.Fatalf("%s: %v", w.Name(), err)
	}
	return res
}

func TestStreamVerifiesAndReports(t *testing.T) {
	s := &workloads.Stream{N: 1 << 16, Iters: 2}
	res := run(t, s, harness.CfgNative, harness.SingleCore)
	for _, kn := range []string{"copy_GBs", "scale_GBs", "add_GBs", "triad_GBs"} {
		if res.Metric(kn) <= 0 {
			t.Errorf("%s = %g", kn, res.Metric(kn))
		}
	}
	if res.Cycles == 0 || res.Threads != 1 {
		t.Errorf("result = %+v", res)
	}
}

func TestStreamMultiThreadAggregates(t *testing.T) {
	s := &workloads.Stream{N: 1 << 16, Iters: 2}
	one := run(t, s, harness.CfgNative, harness.SingleCore)
	four := run(t, &workloads.Stream{N: 1 << 16, Iters: 2}, harness.CfgNative, harness.Layouts[1]) // 4c/2n
	if four.Metric("triad_GBs") < 2*one.Metric("triad_GBs") {
		t.Errorf("4-thread triad %g not scaling over 1-thread %g",
			four.Metric("triad_GBs"), one.Metric("triad_GBs"))
	}
}

func TestRandomAccessVerifies(t *testing.T) {
	g := &workloads.RandomAccess{LogTableSize: 22, Updates: 1 << 14}
	res := run(t, g, harness.CfgNative, harness.SingleCore)
	if res.Metric("GUPS") <= 0 {
		t.Errorf("GUPS = %g", res.Metric("GUPS"))
	}
	if res.Metric("updates") != 1<<14 {
		t.Errorf("updates = %g", res.Metric("updates"))
	}
}

func TestRandomAccessDeterministic(t *testing.T) {
	mk := func() *workloads.RandomAccess {
		return &workloads.RandomAccess{LogTableSize: 22, Updates: 1 << 13}
	}
	a := run(t, mk(), harness.CfgNative, harness.SingleCore)
	b := run(t, mk(), harness.CfgNative, harness.SingleCore)
	if a.Cycles != b.Cycles {
		t.Errorf("nondeterministic cycles: %d vs %d", a.Cycles, b.Cycles)
	}
}

func TestSelfishDetectsInjectedNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("4e8 simulated cycles; slow under -race")
	}
	// With the default 10 Hz tick, a 4e8-cycle window sees ~2 ticks.
	s := &workloads.Selfish{DurationCycles: 4e8}
	res := run(t, s, harness.CfgNative, harness.SingleCore)
	if res.Metric("detours") < 1 {
		t.Fatalf("no detours detected, want timer ticks; metrics=%v", res.Metrics)
	}
	if res.Metric("max_detour_cycles") <= 0 {
		t.Error("zero max detour")
	}
	if len(s.Detours) != int(res.Metric("detours")) {
		t.Error("detour list inconsistent with metric")
	}
}

func TestHPCGConverges(t *testing.T) {
	h := &workloads.HPCG{NX: 24, NY: 24, NZ: 24, Iters: 12}
	res := run(t, h, harness.CfgNative, harness.SingleCore)
	if r := res.Metric("residual"); r <= 0 || r > 0.01 {
		t.Errorf("residual = %g", r)
	}
	if res.Metric("GFLOPs") <= 0 {
		t.Error("no GFLOPs")
	}
}

func TestHPCGParallelMatchesSerialNumerics(t *testing.T) {
	if testing.Short() {
		t.Skip("two 14-iteration HPCG solves; slow under -race")
	}
	// The block-preconditioner differs across thread counts, but both
	// must converge.
	h1 := &workloads.HPCG{NX: 24, NY: 24, NZ: 24, Iters: 14}
	h4 := &workloads.HPCG{NX: 24, NY: 24, NZ: 24, Iters: 14}
	r1 := run(t, h1, harness.CfgNative, harness.SingleCore)
	r4 := run(t, h4, harness.CfgNative, harness.Layouts[1])
	if r1.Metric("residual") > 0.01 || r4.Metric("residual") > 0.01 {
		t.Errorf("residuals: serial %g, parallel %g", r1.Metric("residual"), r4.Metric("residual"))
	}
	if r4.Cycles >= r1.Cycles {
		t.Errorf("4 threads (%d cycles) not faster than 1 (%d)", r4.Cycles, r1.Cycles)
	}
}

func TestMiniFEConvergesAndScales(t *testing.T) {
	m1 := &workloads.MiniFE{NX: 24, NY: 24, NZ: 24, Iters: 20}
	r1 := run(t, m1, harness.CfgNative, harness.SingleCore)
	if r1.Metric("residual") > 0.2 {
		t.Errorf("residual = %g", r1.Metric("residual"))
	}
	if r1.Metric("assembly_cycles") <= 0 {
		t.Error("no assembly phase recorded")
	}
	m8 := &workloads.MiniFE{NX: 24, NY: 24, NZ: 24, Iters: 20}
	r8 := run(t, m8, harness.CfgNative, harness.EightCore)
	if r8.Cycles >= r1.Cycles {
		t.Errorf("8 threads (%d) not faster than 1 (%d)", r8.Cycles, r1.Cycles)
	}
}

func TestLammpsEnergyBoundedAllProblems(t *testing.T) {
	for _, p := range []workloads.LammpsProblem{workloads.LJ, workloads.EAM, workloads.Chain, workloads.Chute} {
		l := &workloads.Lammps{Problem: p, AtomsPerRank: 343, Steps: 10}
		res := run(t, l, harness.CfgNative, harness.SingleCore)
		d := res.Metric("energy_drift")
		if math.IsNaN(d) || d > 0.2 {
			t.Errorf("%s: drift = %g", p, d)
		}
		if res.Metric("loop_time_s") <= 0 {
			t.Errorf("%s: no loop time", p)
		}
	}
}

func TestLammpsProblemNames(t *testing.T) {
	want := map[workloads.LammpsProblem]string{
		workloads.LJ: "lj", workloads.EAM: "eam",
		workloads.Chain: "chain", workloads.Chute: "chute",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("%d -> %q", p, p.String())
		}
		l := &workloads.Lammps{Problem: p}
		if l.Name() != "lammps-"+name {
			t.Errorf("runner name %q", l.Name())
		}
	}
}

func TestWorkloadRejectsTooManyThreads(t *testing.T) {
	n := node(t, harness.CfgNative, harness.SingleCore)
	s := &workloads.Stream{N: 1 << 12, Iters: 1}
	if _, err := s.Run(n.K, 4); err == nil {
		t.Error("4 threads on a 1-core enclave accepted")
	}
}

func TestBarrierAndAllreduce(t *testing.T) {
	n := node(t, harness.CfgNative, harness.Layouts[1]) // 4 cores
	bar := workloads.NewBarrier(4)
	red := workloads.NewAllreduce(4)
	sums := make([]float64, 4)
	err := n.K.RunParallel("reduce", 4, func(e *kitten.Env, rank int) error {
		for round := 0; round < 5; round++ {
			bar.Wait(e, rank)
			sums[rank] = red.Sum(e, rank, float64(rank+1))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range sums {
		if s != 10 { // 1+2+3+4
			t.Errorf("rank %d sum = %g", r, s)
		}
	}
}

func TestSecondsConversion(t *testing.T) {
	if got := workloads.Seconds(uint64(workloads.CyclesPerSecond)); math.Abs(got-1) > 1e-9 {
		t.Errorf("Seconds(1.7e9) = %g", got)
	}
}
