package workloads_test

import (
	"testing"

	"covirt/internal/harness"
	"covirt/internal/workloads"
)

// twinRoutingRun executes the same workload on identical fresh nodes with
// span routing enabled and disabled, and requires identical simulated
// timing: the batched AccessGather path must charge cycle-for-cycle what
// the element-wise loops charge.
func twinRoutingRun(t *testing.T, mk func() workloads.Runner, layout harness.Layout) {
	t.Helper()
	var results [2]*workloads.Result
	for i, routed := range []bool{true, false} {
		workloads.SetSpanRouting(routed)
		results[i] = run(t, mk(), harness.CfgNative, layout)
	}
	workloads.SetSpanRouting(true)
	a, b := results[0], results[1]
	if a.Cycles != b.Cycles {
		t.Errorf("cycles diverge: routed %d, element-wise %d", a.Cycles, b.Cycles)
	}
	for r := range a.PerCore {
		if a.PerCore[r] != b.PerCore[r] {
			t.Errorf("rank %d cycles diverge: routed %d, element-wise %d", r, a.PerCore[r], b.PerCore[r])
		}
	}
}

func TestSpanRoutingEquivalence(t *testing.T) {
	defer workloads.SetSpanRouting(true)
	cases := []struct {
		name   string
		mk     func() workloads.Runner
		layout harness.Layout
		slow   bool
	}{
		{"gups", func() workloads.Runner {
			return &workloads.RandomAccess{LogTableSize: 22, Updates: 1 << 13}
		}, harness.SingleCore, false},
		{"hpcg", func() workloads.Runner {
			return &workloads.HPCG{NX: 24, NY: 24, NZ: 24, Iters: 8}
		}, harness.SingleCore, false},
		// The 4-core/2-node layout exercises the remote-extent gather
		// alternation and concurrent per-rank chargers.
		{"hpcg-parallel", func() workloads.Runner {
			return &workloads.HPCG{NX: 24, NY: 24, NZ: 24, Iters: 14}
		}, harness.Layouts[1], true},
		{"minife", func() workloads.Runner {
			return &workloads.MiniFE{NX: 24, NY: 24, NZ: 24, Iters: 10}
		}, harness.SingleCore, true},
		// Chute is the lookup-heaviest LAMMPS variant: rebuild every step
		// plus 0.45 random table lookups per pair.
		{"lammps-chute", func() workloads.Runner {
			return &workloads.Lammps{Problem: workloads.Chute, AtomsPerRank: 343, Steps: 6}
		}, harness.SingleCore, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("twin full solves; slow under -race")
			}
			twinRoutingRun(t, tc.mk, tc.layout)
		})
	}
}
