package workloads_test

import (
	"testing"

	"covirt/internal/harness"
	"covirt/internal/workloads"
)

// BenchmarkStreamTriad measures one full STREAM run on a covirt-mem node —
// the streaming path (Env.Stream → hw.CPU.MemStream → batched page spans →
// EPT-translated charging) that dominates the bandwidth figures. The triad
// rate is reported as a benchmark metric so regressions in simulated
// behaviour show up next to wall-clock ones.
func BenchmarkStreamTriad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n, err := harness.NewNode(harness.CfgCovirtMem, harness.SingleCore, harness.NodeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		s := &workloads.Stream{N: 1 << 21, Iters: 3}
		res, err := s.Run(n.K, 1)
		n.Close()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Metric("triad_GBs"), "sim-triad-GB/s")
	}
}
