package workloads_test

import (
	"testing"

	"covirt/internal/harness"
	"covirt/internal/workloads"
)

// TestGUPSConfigOrdering checks the relative-cost ordering the paper's
// Fig. 5b rests on: native <= covirt-none <= covirt-mem <= covirt-vapic,
// with identical numerical results throughout.
func TestGUPSConfigOrdering(t *testing.T) {
	mk := func() *workloads.RandomAccess {
		return &workloads.RandomAccess{LogTableSize: 23, Updates: 1 << 14}
	}
	cycles := map[string]uint64{}
	for _, cfg := range []harness.Config{
		harness.CfgNative, harness.CfgCovirtNone, harness.CfgCovirtMem, harness.CfgCovirtVAPIC,
	} {
		res, err := harness.RunWorkload(cfg, harness.SingleCore, harness.NodeOptions{}, mk(), 1)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		cycles[cfg.Name] = res[0].Cycles
	}
	order := []string{"native", "covirt-none", "covirt-mem", "covirt-mem+ipi-vapic"}
	for i := 1; i < len(order); i++ {
		if cycles[order[i]] <= cycles[order[i-1]] {
			t.Errorf("%s (%d cycles) not costlier than %s (%d cycles)",
				order[i], cycles[order[i]], order[i-1], cycles[order[i-1]])
		}
	}
	// The overhead band is plausible: worst case under 10%.
	worst := float64(cycles["covirt-mem+ipi-vapic"]) / float64(cycles["native"])
	if worst > 1.10 {
		t.Errorf("worst-case ratio %.3f exceeds 1.10", worst)
	}
}

// TestStreamInsensitiveToConfig checks Fig. 5a's claim at test scale:
// streaming bandwidth is identical (to the cycle) across configurations.
func TestStreamInsensitiveToConfig(t *testing.T) {
	mk := func() *workloads.Stream { return &workloads.Stream{N: 1 << 16, Iters: 2} }
	var base uint64
	for i, cfg := range []harness.Config{harness.CfgNative, harness.CfgCovirtMem, harness.CfgCovirtVAPIC} {
		res, err := harness.RunWorkload(cfg, harness.SingleCore, harness.NodeOptions{}, mk(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res[0].Cycles
			continue
		}
		ratio := float64(res[0].Cycles) / float64(base)
		if ratio > 1.001 {
			t.Errorf("%s stream cycles ratio %.5f, want ~1", cfg.Name, ratio)
		}
	}
}

// TestEPTAblationOrdering checks that disabling large-page coalescing
// measurably hurts the translation-bound workload.
func TestEPTAblationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("three full RandomAccess runs; slow under -race")
	}
	mk := func() *workloads.RandomAccess {
		return &workloads.RandomAccess{LogTableSize: 23, Updates: 1 << 14}
	}
	coalesced, err := harness.RunWorkload(harness.CfgCovirtMem, harness.SingleCore, harness.NodeOptions{}, mk(), 1)
	if err != nil {
		t.Fatal(err)
	}
	small, err := harness.RunWorkload(harness.CfgCovirtMem4K, harness.SingleCore, harness.NodeOptions{}, mk(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if small[0].Cycles <= coalesced[0].Cycles {
		t.Errorf("4K-only EPT (%d cycles) not costlier than coalesced (%d cycles)",
			small[0].Cycles, coalesced[0].Cycles)
	}
}
