package workloads

import (
	"sync"
	"sync/atomic"
)

// This file is the workload state arena layer (DESIGN.md §11 "Zero-alloc
// workload discipline"): steady-state inner loops must not allocate, so
// every buffer they touch is either owned by a per-rank scratch struct
// sized once before the measured region, or — when its lifetime genuinely
// crosses repetitions, like the CG vector set and the GUPS table — drawn
// from a sync.Pool here. Per-rank result slots written concurrently under
// -parallel are padded to a cache line so ranks never false-share.

// spanRoutingOff gates the batched AccessGather routing of the workloads'
// element-wise charge loops (default on: routing enabled). The scalar
// per-element loops are kept as the semantic reference; SetSpanRouting
// (false) forces them, for the twin-run equivalence suite and for
// bisecting suspected batching bugs. Charged cycles are identical either
// way — only host-side wall clock changes.
var spanRoutingOff atomic.Bool

// SetSpanRouting toggles the batched gather routing (default on).
func SetSpanRouting(on bool) { spanRoutingOff.Store(!on) }

// spanRouting reports whether the batched routing is active.
func spanRouting() bool { return !spanRoutingOff.Load() }

// padFloat64 is a float64 padded to a cache line, for per-rank slots
// written concurrently during the measured region.
type padFloat64 struct {
	v float64
	_ [56]byte
}

// padUint64 is the uint64 variant of padFloat64.
type padUint64 struct {
	v uint64
	_ [56]byte
}

// cgState is the solver vector set for an n-row stencil problem, shared by
// all ranks of one solve (the harness reuses it across repetitions through
// cgPool — allocating seven n-row vectors per rep was the dominant
// workload-side allocation).
type cgState struct {
	n                            int
	x, b, r, p, ap, z, ones, tmp []float64
}

// cgPool recycles cgState across solves. Lifetime genuinely crosses reps
// (one solve ends, the next begins on a fresh kernel), which is the one
// case DESIGN §11 admits a sync.Pool for.
var cgPool sync.Pool

// getCGState returns a vector set for n rows with x and z zeroed — the two
// vectors the solver reads before first writing them (x accumulates from
// zero; symgs consumes the initial z of unswept neighbour rows). The rest
// are fully overwritten by setup and iteration code before any read.
func getCGState(n int) *cgState {
	if st, _ := cgPool.Get().(*cgState); st != nil && st.n == n {
		zeroVec(st.x)
		zeroVec(st.z)
		return st
	}
	return &cgState{
		n: n,
		x: make([]float64, n), b: make([]float64, n), r: make([]float64, n),
		p: make([]float64, n), ap: make([]float64, n), z: make([]float64, n),
		ones: make([]float64, n), tmp: make([]float64, n),
	}
}

// putCGState returns a vector set to the pool.
func putCGState(st *cgState) { cgPool.Put(st) }

// zeroVec clears v.
func zeroVec(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// gupsTablePool recycles the RandomAccess real table (16 MiB per rank at
// the default size) across repetitions.
var gupsTablePool sync.Pool

// getGUPSTable returns a words-long table; contents are arbitrary (the
// caller re-initializes every entry).
func getGUPSTable(words uint64) []uint64 {
	if t, _ := gupsTablePool.Get().([]uint64); uint64(len(t)) == words {
		return t
	}
	return make([]uint64, words)
}

// putGUPSTable returns a table to the pool.
func putGUPSTable(t []uint64) { gupsTablePool.Put(t) }

// streamBufs is one rank's three STREAM vectors (48 MiB at the default
// per-thread size). Contents are never cleaned on reuse: Run re-initializes
// every element of a and b, and the Copy kernel fully overwrites c before
// its first read.
type streamBufs struct {
	n       int
	a, b, c []float64
}

// streamBufPool recycles streamBufs across repetitions and ranks.
var streamBufPool sync.Pool

// getStreamBufs returns a vector triple of length n each.
func getStreamBufs(n int) *streamBufs {
	if s, _ := streamBufPool.Get().(*streamBufs); s != nil && s.n == n {
		return s
	}
	return &streamBufs{
		n: n,
		a: make([]float64, n), b: make([]float64, n), c: make([]float64, n),
	}
}

// putStreamBufs returns a triple to the pool.
func putStreamBufs(s *streamBufs) { streamBufPool.Put(s) }

// ljBoxPool recycles the per-rank MD system (nine n-length component
// arrays plus the cell index) across repetitions.
var ljBoxPool sync.Pool

// getLJBox returns an initialized n-atom box, reusing pooled storage when
// the size matches.
func getLJBox(n int, seed uint64) *ljBox {
	b, _ := ljBoxPool.Get().(*ljBox)
	if b == nil || b.n != n {
		b = &ljBox{
			n: n,
			x: make([]float64, n), y: make([]float64, n), z: make([]float64, n),
			vx: make([]float64, n), vy: make([]float64, n), vz: make([]float64, n),
			fx: make([]float64, n), fy: make([]float64, n), fz: make([]float64, n),
		}
	}
	b.init(seed)
	return b
}

// putLJBox returns a box to the pool.
func putLJBox(b *ljBox) { ljBoxPool.Put(b) }
