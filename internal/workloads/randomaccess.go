package workloads

import (
	"fmt"

	"covirt/internal/hw"
	"covirt/internal/kitten"
)

// RandomAccess is the HPCC RandomAccess (GUPS) benchmark: random read-
// modify-write updates over a table far larger than the TLB reach, making
// it the paper's most translation-sensitive workload (Fig. 5b).
//
// The updates are performed for real on a Go-side table (with the standard
// self-inverse verification) while each update is charged as one random
// DRAM access at an address spread across the full logical table, so the
// simulated TLB and nested-walk behaviour matches a table of LogTableSize.
type RandomAccess struct {
	// LogTableSize is log2 of the logical table length in 64-bit words
	// (Table I runs the benchmark with parameter 25).
	LogTableSize uint
	// Updates is the number of updates per thread (default 4x table size
	// scaled down; we use a fixed count for bounded runs).
	Updates int
	// OMPChunk models the OpenMP runtime's dynamic-scheduling signalling:
	// every OMPChunk updates, the runtime performs one APIC ICR write
	// (work-distribution check) — traffic that traps under IPI protection.
	OMPChunk int
	// Seed displaces the per-rank update streams (0 = legacy fixed stream).
	Seed uint64
}

// Name implements Runner.
func (r *RandomAccess) Name() string { return "randomaccess" }

// SetSeed implements Seeder.
func (r *RandomAccess) SetSeed(s uint64) { r.Seed = s }

// fillUpdates performs seg update steps on the real table and records the
// charged address of each: the RNG draw, logical index derivation, and
// XOR into the (capped) real table, exactly as the element-wise loop
// interleaves them — XOR is commutative, so batching the table writes
// ahead of the charges preserves the verification property.
//
//covirt:hot
func fillUpdates(buf []uint64, rng *hw.Rand, table []uint64, logicalWords uint64, ext hw.Extent) {
	realMask := uint64(len(table) - 1)
	for i := range buf {
		v := rng.Next()
		idx := v & (logicalWords - 1)
		table[idx&realMask] ^= v
		buf[i] = ext.Start + idx*8
	}
}

// Run implements Runner.
func (r *RandomAccess) Run(k *kitten.Kernel, threads int) (*Result, error) {
	logN := r.LogTableSize
	if logN == 0 {
		logN = 25
	}
	updates := r.Updates
	if updates == 0 {
		updates = 1 << 19
	}
	chunk := r.OMPChunk
	if chunk == 0 {
		chunk = 1536
	}
	logicalWords := uint64(1) << logN
	// Real table: capped so wall-clock memory stays modest; the address
	// pattern still spans the full logical table.
	realLog := logN
	if realLog > 21 {
		realLog = 21
	}
	realWords := uint64(1) << realLog

	ord := NewRankOrder(threads)
	res, err := runParallel(k, r.Name(), threads, func(e *kitten.Env, rank int) error {
		table := getGUPSTable(realWords)
		defer putGUPSTable(table)
		for i := range table {
			table[i] = uint64(i)
		}
		var ext hw.Extent
		ord.Do(rank, func() { ext = allocSpread(e, logicalWords*8) })
		defer e.Free(ext)

		rng := hw.NewRand(0x243F6A8885A308D3 ^ r.Seed ^ uint64(rank+1))
		if spanRouting() {
			// Batched path: segments never straddle an OMP chunk boundary,
			// so the dynamic-schedule IPI fires after the same update it
			// does in the element-wise loop. Each update charges 6 compute
			// ops (RNG + index arithmetic) before its table access, as the
			// scalar loop's Compute(6)+Access pairing does.
			segMax := chunk
			if segMax <= 0 {
				segMax = 4096
			}
			buf := make([]uint64, segMax)
			for u := 0; u < updates; {
				seg := updates - u
				if chunk > 0 {
					if rem := chunk - u%chunk; rem < seg {
						seg = rem
					}
				}
				if seg > segMax {
					seg = segMax
				}
				fillUpdates(buf[:seg], &rng, table, logicalWords, ext)
				e.AccessGather(buf[:seg], 6, true, hw.AccessDRAM)
				u += seg
				if chunk > 0 && u%chunk == 0 {
					// OpenMP dynamic-schedule check: one ICR write to self.
					e.SendIPI(rank, VectorOMPSched)
				}
			}
		} else {
			for u := 0; u < updates; u++ {
				v := rng.Next()
				idx := v & (logicalWords - 1)
				table[idx&(realWords-1)] ^= v
				// RNG + index arithmetic, then the table update itself.
				e.Compute(6)
				e.Access(ext.Start+idx*8, true, hw.AccessDRAM)
				if chunk > 0 && u%chunk == chunk-1 {
					// OpenMP dynamic-schedule check: one ICR write to self.
					e.SendIPI(rank, VectorOMPSched)
				}
			}
		}

		// Verify by replaying the same update stream: XOR is self-inverse,
		// so the table must return to its initial state.
		rng = hw.NewRand(0x243F6A8885A308D3 ^ r.Seed ^ uint64(rank+1))
		for u := 0; u < updates; u++ {
			v := rng.Next()
			idx := v & (logicalWords - 1)
			table[idx&(realWords-1)] ^= v
		}
		for i := 0; i < len(table); i += len(table)/64 + 1 {
			if table[i] != uint64(i) {
				return fmt.Errorf("randomaccess: verification failed at %d", i)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	totalUpdates := float64(updates * threads)
	res.Metrics["GUPS"] = totalUpdates / Seconds(res.Cycles) / 1e9
	res.Metrics["updates"] = totalUpdates
	return res, nil
}
