// Package trace provides a lightweight, fixed-capacity event tracer used
// to capture hypervisor and controller activity. The paper highlights that
// Covirt makes diagnosing co-kernel bugs dramatically easier because the
// protection layer observes the exact first bad operation; this tracer is
// the corresponding debugging artifact — a flight recorder of exits,
// commands and resource events with simulated-cycle timestamps.
package trace

import (
	"fmt"
	"strings"
	"sync"
)

// Event is one recorded occurrence.
type Event struct {
	Seq  uint64
	TSC  uint64 // issuing CPU's cycle counter at record time
	CPU  int    // issuing CPU, -1 for management-plane events
	Kind string // short category, e.g. "exit:EPT_VIOLATION", "ctl:map"
	Msg  string
}

// String formats one event line.
func (e Event) String() string {
	return fmt.Sprintf("[%8d] cpu=%-2d tsc=%-12d %-24s %s", e.Seq, e.CPU, e.TSC, e.Kind, e.Msg)
}

// Buffer is a concurrency-safe ring buffer of Events. The zero value is
// unusable; call New. A nil *Buffer is valid and records nothing, so call
// sites never need nil checks.
type Buffer struct {
	mu   sync.Mutex
	ring []Event
	next uint64 // total events ever recorded
}

// New returns a tracer retaining the last capacity events.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Buffer{ring: make([]Event, capacity)}
}

// Record appends an event. Safe on a nil buffer (no-op).
func (b *Buffer) Record(cpu int, tsc uint64, kind, format string, args ...any) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ring[b.next%uint64(len(b.ring))] = Event{
		Seq: b.next, TSC: tsc, CPU: cpu, Kind: kind, Msg: fmt.Sprintf(format, args...),
	}
	b.next++
}

// Len returns the total number of events ever recorded.
func (b *Buffer) Len() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next
}

// Events returns the retained events in chronological order.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	capn := uint64(len(b.ring))
	start := uint64(0)
	count := b.next
	if b.next > capn {
		start = b.next - capn
		count = capn
	}
	out := make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, b.ring[(start+i)%capn])
	}
	return out
}

// Filter returns retained events whose Kind has the given prefix.
func (b *Buffer) Filter(kindPrefix string) []Event {
	var out []Event
	for _, e := range b.Events() {
		if strings.HasPrefix(e.Kind, kindPrefix) {
			out = append(out, e)
		}
	}
	return out
}

// KindCounts tallies the retained events by Kind, restricted to kinds
// with the given prefix ("" tallies everything). Tools use it to render
// one-line summaries of supervision and exit activity.
func (b *Buffer) KindCounts(kindPrefix string) map[string]int {
	out := make(map[string]int)
	for _, e := range b.Events() {
		if strings.HasPrefix(e.Kind, kindPrefix) {
			out[e.Kind]++
		}
	}
	return out
}

// Dump renders the retained events, one per line.
func (b *Buffer) Dump() string {
	var sb strings.Builder
	for _, e := range b.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
