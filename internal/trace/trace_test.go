package trace

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestNilBufferIsSafe(t *testing.T) {
	var b *Buffer
	b.Record(0, 0, "x", "y")
	if b.Len() != 0 || b.Events() != nil || b.Dump() != "" {
		t.Error("nil buffer misbehaved")
	}
}

func TestRecordAndOrder(t *testing.T) {
	b := New(8)
	for i := 0; i < 5; i++ {
		b.Record(i, uint64(i*100), "k", "event %d", i)
	}
	evs := b.Events()
	if len(evs) != 5 {
		t.Fatalf("events = %d", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i) || e.CPU != i || e.Msg != strings.ReplaceAll("event N", "N", string(rune('0'+i))) {
			t.Errorf("event %d = %+v", i, e)
		}
	}
}

func TestRingWrap(t *testing.T) {
	b := New(4)
	for i := 0; i < 10; i++ {
		b.Record(0, uint64(i), "k", "%d", i)
	}
	evs := b.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d", len(evs))
	}
	if evs[0].Seq != 6 || evs[3].Seq != 9 {
		t.Errorf("window = [%d, %d]", evs[0].Seq, evs[3].Seq)
	}
	if b.Len() != 10 {
		t.Errorf("total = %d", b.Len())
	}
}

func TestFilter(t *testing.T) {
	b := New(16)
	b.Record(0, 1, "exit:EPT_VIOLATION", "a")
	b.Record(0, 2, "ctl:map", "b")
	b.Record(0, 3, "exit:NMI", "c")
	if got := len(b.Filter("exit:")); got != 2 {
		t.Errorf("exit events = %d", got)
	}
	if got := len(b.Filter("ctl:")); got != 1 {
		t.Errorf("ctl events = %d", got)
	}
	if !strings.Contains(b.Dump(), "EPT_VIOLATION") {
		t.Error("dump missing event")
	}
}

func TestKindCounts(t *testing.T) {
	b := New(16)
	b.Record(0, 1, "sup:detect", "a")
	b.Record(0, 2, "sup:restart", "b")
	b.Record(0, 3, "sup:detect", "c")
	b.Record(0, 4, "ctl:map", "d")
	got := b.KindCounts("sup:")
	if len(got) != 2 || got["sup:detect"] != 2 || got["sup:restart"] != 1 {
		t.Errorf("sup counts = %v", got)
	}
	if all := b.KindCounts(""); len(all) != 3 || all["ctl:map"] != 1 {
		t.Errorf("all counts = %v", all)
	}
	var nilBuf *Buffer
	if n := len(nilBuf.KindCounts("")); n != 0 {
		t.Errorf("nil buffer counts = %d", n)
	}
}

func TestConcurrentRecording(t *testing.T) {
	b := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Record(g, uint64(i), "k", "g%d-%d", g, i)
			}
		}(g)
	}
	wg.Wait()
	if b.Len() != 800 {
		t.Errorf("total = %d", b.Len())
	}
	if len(b.Events()) != 128 {
		t.Errorf("retained = %d", len(b.Events()))
	}
}

// Property: Events always returns min(Len, capacity) items with strictly
// increasing Seq.
func TestEventsMonotoneProperty(t *testing.T) {
	f := func(n uint8, capn uint8) bool {
		capacity := int(capn%32) + 1
		b := New(capacity)
		for i := 0; i < int(n); i++ {
			b.Record(0, 0, "k", "")
		}
		evs := b.Events()
		want := int(n)
		if want > capacity {
			want = capacity
		}
		if len(evs) != want {
			return false
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq != evs[i-1].Seq+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
